// Figure 3: CDF of object-class frequency for six streams. The x-axis is the
// fraction of ResNet152's 1000 classes (most frequent first), the y-axis the share of
// objects covered. The paper's observation: 3%-10% of classes cover >=95% of objects.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/video/dataset.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);

  // The six streams Figure 3 plots.
  const std::vector<std::string> streams = {"auburn_c", "jacksonh", "lausanne",
                                            "sittard",  "cnn",      "msnbc"};
  const std::vector<double> x_points = {0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.10};

  bench::PrintHeader("Figure 3: CDF of frequency of object classes");
  std::printf("%-10s", "classes%");
  for (const std::string& s : streams) {
    std::printf(" %10s", s.c_str());
  }
  std::printf("\n");

  std::vector<std::vector<common::CdfPoint>> cdfs;
  for (const std::string& s : streams) {
    video::StreamRun run = bench::MakeRun(catalog, s, config);
    cdfs.push_back(video::ClassFrequencyCdf(video::ComputeStreamStatistics(run)));
  }

  for (double x : x_points) {
    std::printf("%9.1f%%", 100.0 * x);
    for (const auto& cdf : cdfs) {
      double y = 0.0;
      for (const common::CdfPoint& p : cdf) {
        if (p.key_fraction <= x) {
          y = p.weight_fraction;
        } else {
          break;
        }
      }
      std::printf("     %5.1f%%", 100.0 * y);
    }
    std::printf("\n");
  }

  std::printf("\nFraction of the 1000-class space covering 95%% of objects "
              "(paper: 3%%-10%%):\n");
  for (size_t i = 0; i < streams.size(); ++i) {
    double x95 = 0.0;
    for (const common::CdfPoint& p : cdfs[i]) {
      if (p.weight_fraction >= 0.95) {
        x95 = p.key_fraction;
        break;
      }
    }
    std::printf("  %-12s %.1f%%\n", streams[i].c_str(), 100.0 * x95);
  }
  return 0;
}
