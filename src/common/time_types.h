// Virtual-time and identifier vocabulary shared across modules.
//
// The simulator runs on a virtual clock measured in seconds from the start of each
// video stream; frames are indexed from 0 at the stream's native frame rate. Ground
// truth and query results are aggregated into one-second segments, matching the
// paper's accuracy methodology (§6.1).
#ifndef FOCUS_SRC_COMMON_TIME_TYPES_H_
#define FOCUS_SRC_COMMON_TIME_TYPES_H_

#include <cstdint>

namespace focus::common {

// Frame number within a stream at the stream's native fps.
using FrameIndex = int64_t;

// One-second bucket index within a stream.
using SegmentId = int64_t;

// Unique identifier of a tracked object instance within a stream.
using ObjectId = int64_t;

// CNN class label. The generic label space is [0, kNumClasses); specialized models add
// a synthetic OTHER label (see src/cnn/specialization.h).
using ClassId = int32_t;

// Sentinel for "no class".
inline constexpr ClassId kInvalidClass = -1;

// Virtual GPU time, in milliseconds of accelerator occupancy.
using GpuMillis = double;

// Converts a frame index to its one-second segment at the given fps.
constexpr SegmentId SegmentOfFrame(FrameIndex frame, double fps) {
  return static_cast<SegmentId>(static_cast<double>(frame) / fps);
}

// Time range restriction for queries, in seconds from stream start. A negative
// |end_sec| means "until the end of the recording".
struct TimeRange {
  double begin_sec = 0.0;
  double end_sec = -1.0;

  bool ContainsFrame(FrameIndex frame, double fps) const {
    double t = static_cast<double>(frame) / fps;
    if (t < begin_sec) {
      return false;
    }
    return end_sec < 0.0 || t < end_sec;
  }
};

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_TIME_TYPES_H_
