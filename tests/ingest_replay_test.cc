// Tests for the classify-once / re-cluster-many ingest path (ClassifySample +
// RunIngestClassified) and the bounded-distance scan primitive underneath the
// clusterer. The replay path must be indistinguishable from RunIngest — the tuner's
// correctness depends on it — and the bounded distance must agree exactly with the
// plain distance on every accept/reject decision.
#include <gtest/gtest.h>

#include <limits>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/model_zoo.h"
#include "src/common/feature_vector.h"
#include "src/common/rng.h"
#include "src/core/ingest_pipeline.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

class IngestReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(17);
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    run_ = new video::StreamRun(catalog_, profile, 90.0, 30.0, 3);
  }

  static void TearDownTestSuite() {
    delete run_;
    delete catalog_;
    run_ = nullptr;
    catalog_ = nullptr;
  }

  static IngestParams Params(int k, double threshold) {
    IngestParams params;
    params.model = cnn::GenericCheapCandidates(5)[1];  // Mid-cost generic model.
    params.k = k;
    params.cluster_threshold = threshold;
    return params;
  }

  static void ExpectSameIndex(const IngestResult& a, const IngestResult& b) {
    EXPECT_EQ(a.detections, b.detections);
    EXPECT_EQ(a.cnn_invocations, b.cnn_invocations);
    EXPECT_EQ(a.suppressed, b.suppressed);
    EXPECT_DOUBLE_EQ(a.gpu_millis, b.gpu_millis);
    ASSERT_EQ(a.index.num_clusters(), b.index.num_clusters());
    for (size_t i = 0; i < a.index.num_clusters(); ++i) {
      const index::ClusterEntry& ca = a.index.clusters()[i];
      const index::ClusterEntry& cb = b.index.clusters()[i];
      EXPECT_EQ(ca.cluster_id, cb.cluster_id);
      EXPECT_EQ(ca.size, cb.size);
      EXPECT_EQ(ca.topk_classes, cb.topk_classes);
      EXPECT_EQ(ca.topk_ranks, cb.topk_ranks);
      ASSERT_EQ(ca.members.size(), cb.members.size());
      for (size_t m = 0; m < ca.members.size(); ++m) {
        EXPECT_EQ(ca.members[m].object, cb.members[m].object);
        EXPECT_EQ(ca.members[m].first_frame, cb.members[m].first_frame);
        EXPECT_EQ(ca.members[m].last_frame, cb.members[m].last_frame);
      }
    }
  }

  static video::ClassCatalog* catalog_;
  static video::StreamRun* run_;
};

video::ClassCatalog* IngestReplayTest::catalog_ = nullptr;
video::StreamRun* IngestReplayTest::run_ = nullptr;

TEST_F(IngestReplayTest, ReplayMatchesDirectIngestExactly) {
  IngestParams params = Params(32, 0.5);
  cnn::Cnn cheap(params.model, catalog_);
  IngestResult direct = RunIngest(*run_, cheap, params);
  ClassifiedSample sample = ClassifySample(*run_, cheap, params.k);
  IngestResult replayed = RunIngestClassified(sample, params);
  ExpectSameIndex(direct, replayed);
}

TEST_F(IngestReplayTest, OneClassificationServesManyThresholds) {
  IngestParams params = Params(16, 0.0);
  cnn::Cnn cheap(params.model, catalog_);
  ClassifiedSample sample = ClassifySample(*run_, cheap, params.k);
  for (double threshold : {0.3, 0.45, 0.6, 0.9}) {
    params.cluster_threshold = threshold;
    IngestResult direct = RunIngest(*run_, cheap, params);
    IngestResult replayed = RunIngestClassified(sample, params);
    ExpectSameIndex(direct, replayed);
  }
}

TEST_F(IngestReplayTest, NarrowerKIsAPrefixOfTheStoredWidth) {
  cnn::Cnn cheap(Params(1, 0).model, catalog_);
  ClassifiedSample wide = ClassifySample(*run_, cheap, 64);
  IngestParams narrow = Params(8, 0.5);
  IngestResult from_wide = RunIngestClassified(wide, narrow);
  IngestResult direct = RunIngest(*run_, cheap, narrow);
  ExpectSameIndex(direct, from_wide);
}

TEST_F(IngestReplayTest, SampleAccountsGpuOnlyForFreshClassifications) {
  cnn::Cnn cheap(Params(1, 0).model, catalog_);
  ClassifiedSample sample = ClassifySample(*run_, cheap, 8);
  EXPECT_GT(sample.suppressed, 0);  // The stream has near-duplicate crops.
  EXPECT_EQ(static_cast<int64_t>(sample.detections.size()),
            sample.cnn_invocations + sample.suppressed);
  // Accumulated per inference vs multiplied once: equal up to FP associativity.
  EXPECT_NEAR(sample.gpu_millis,
              static_cast<double>(sample.cnn_invocations) * cheap.inference_cost_millis(),
              1e-6);
}

TEST_F(IngestReplayTest, PixelDiffDisabledClassifiesEverything) {
  cnn::Cnn cheap(Params(1, 0).model, catalog_);
  IngestOptions no_diff;
  no_diff.use_pixel_diff = false;
  ClassifiedSample sample = ClassifySample(*run_, cheap, 8, no_diff);
  EXPECT_EQ(sample.suppressed, 0);
  EXPECT_EQ(sample.cnn_invocations, static_cast<int64_t>(sample.detections.size()));
}

TEST_F(IngestReplayTest, LimitSecTruncatesTheSample) {
  cnn::Cnn cheap(Params(1, 0).model, catalog_);
  IngestOptions limited;
  limited.limit_sec = 30.0;
  ClassifiedSample sample = ClassifySample(*run_, cheap, 8, limited);
  const common::FrameIndex limit_frame = static_cast<common::FrameIndex>(30.0 * run_->fps());
  for (const ClassifiedDetection& entry : sample.detections) {
    EXPECT_LT(entry.detection.frame, limit_frame);
  }
}

// --- SquaredL2DistanceBounded ---

TEST(BoundedDistanceTest, AgreesWithPlainDistanceWhenUnderBound) {
  common::Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    common::FeatureVec a = common::RandomUnitVector(64, rng);
    common::FeatureVec b = common::RandomUnitVector(64, rng);
    double exact = common::SquaredL2Distance(a, b);
    double bounded = common::SquaredL2DistanceBounded(a, b, exact + 1.0);
    // Blocked summation reassociates adds; agreement is to rounding, not bitwise.
    EXPECT_NEAR(bounded, exact, 1e-12);
  }
}

TEST(BoundedDistanceTest, ExceedsBoundWheneverExactDoes) {
  common::Pcg32 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    common::FeatureVec a = common::RandomUnitVector(64, rng);
    common::FeatureVec b = common::RandomUnitVector(64, rng);
    double exact = common::SquaredL2Distance(a, b);
    double bound = exact * 0.5;  // Deliberately below the true distance.
    EXPECT_GT(common::SquaredL2DistanceBounded(a, b, bound), bound);
  }
}

TEST(BoundedDistanceTest, HandlesNonMultipleOfEightDimensions) {
  common::Pcg32 rng(11);
  for (size_t dim : {1u, 3u, 7u, 9u, 15u, 63u, 65u}) {
    common::FeatureVec a = common::RandomUnitVector(dim, rng);
    common::FeatureVec b = common::RandomUnitVector(dim, rng);
    double exact = common::SquaredL2Distance(a, b);
    EXPECT_DOUBLE_EQ(common::SquaredL2DistanceBounded(a, b, 1e9), exact) << "dim=" << dim;
  }
}

TEST(BoundedDistanceTest, ZeroBoundStillExactForIdenticalVectors) {
  common::FeatureVec v(16, 0.25f);
  EXPECT_DOUBLE_EQ(common::SquaredL2DistanceBounded(v, v, 0.0), 0.0);
}

TEST(BoundedDistanceTest, ClusterAssignmentsIdenticalUnderExactScan) {
  // The bounded scan must not change any clustering decision: run the exact-mode
  // clusterer over a real stream twice — the implementation uses the bounded
  // primitive internally, so equality against an independent brute-force assignment
  // validates it end-to-end.
  video::ClassCatalog catalog(23);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("city_a_r", &profile));
  video::StreamRun run(&catalog, profile, 45.0, 30.0, 5);
  cnn::Cnn cheap(cnn::GenericCheapCandidates(5)[0], &catalog);

  cluster::ClustererOptions copts;
  copts.threshold = 0.5;
  copts.mode = cluster::ClustererOptions::Mode::kExact;
  cluster::IncrementalClusterer clusterer(copts);

  // Independent brute force with the plain distance.
  std::vector<common::FeatureVec> centroids;
  std::vector<int64_t> sizes;
  run.ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    for (const video::Detection& d : dets) {
      common::FeatureVec f = cheap.ExtractFeature(d);
      int64_t got = clusterer.Add(d, f);

      // Textbook rule: argmin distance (first-seen wins ties), join iff <= T^2.
      int64_t expect = -1;
      double best = std::numeric_limits<double>::max();
      for (size_t i = 0; i < centroids.size(); ++i) {
        double dist = common::SquaredL2Distance(centroids[i], f);
        if (dist < best) {
          best = dist;
          expect = static_cast<int64_t>(i);
        }
      }
      if (expect >= 0 && best > 0.5 * 0.5) {
        expect = -1;
      }
      if (expect < 0) {
        centroids.push_back(f);
        sizes.push_back(1);
        expect = static_cast<int64_t>(centroids.size()) - 1;
      } else {
        double w = 1.0 / static_cast<double>(sizes[static_cast<size_t>(expect)] + 1);
        common::FeatureVec& c = centroids[static_cast<size_t>(expect)];
        for (size_t j = 0; j < c.size(); ++j) {
          c[j] = static_cast<float>(c[j] * (1.0 - w) + f[j] * w);
        }
        ++sizes[static_cast<size_t>(expect)];
      }
      ASSERT_EQ(got, expect) << "diverged at frame " << d.frame;
    }
  });
}

}  // namespace
}  // namespace focus::core
