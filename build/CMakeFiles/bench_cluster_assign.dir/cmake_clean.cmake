file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_assign.dir/bench/bench_cluster_assign.cc.o"
  "CMakeFiles/bench_cluster_assign.dir/bench/bench_cluster_assign.cc.o.d"
  "bench_cluster_assign"
  "bench_cluster_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
