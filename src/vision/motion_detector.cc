#include "src/vision/motion_detector.h"

namespace focus::vision {

MotionDetector::MotionDetector(int width, int height, MotionDetectorOptions options)
    : background_(width, height, options.background), blobs_(options.blobs) {}

std::vector<video::BBox> MotionDetector::Detect(const video::FrameBuffer& frame) {
  video::FrameBuffer mask = background_.Apply(frame);
  return blobs_.Extract(mask);
}

double DetectionRecall(const std::vector<video::BBox>& detected,
                       const std::vector<video::BBox>& truth, float iou_threshold) {
  if (truth.empty()) {
    return 1.0;
  }
  int matched = 0;
  for (const video::BBox& t : truth) {
    for (const video::BBox& d : detected) {
      if (video::IoU(t, d) >= iou_threshold) {
        ++matched;
        break;
      }
    }
  }
  return static_cast<double>(matched) / static_cast<double>(truth.size());
}

}  // namespace focus::vision
