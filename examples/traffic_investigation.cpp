// Traffic investigation: the paper's motivating scenario (§1). After an incident,
// an investigator pulls "all frames with trucks between minute 5 and minute 15" from
// a traffic camera, compares Focus against the Query-all workflow they would
// otherwise use, and then drills down with the dynamic-Kx knob (§5) to trade a little
// recall for a much faster first batch of results.
#include <cstdio>

#include "src/baseline/baselines.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/video/stream_generator.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);

  video::ClassCatalog catalog(42);
  video::StreamProfile profile;
  if (!video::FindProfile("city_a_d", &profile)) {
    return 1;
  }
  video::StreamRun run(&catalog, profile, 30 * 60.0, 30.0, 77);

  std::printf("Recording 30 minutes of %s (%s)...\n", profile.name.c_str(),
              profile.description.c_str());
  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::printf("build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  core::FocusStream& focus = **focus_or;

  // The investigator asks for trucks in a 10-minute window.
  common::ClassId truck = catalog.IdForName("truck");
  common::TimeRange window{5 * 60.0, 15 * 60.0};
  core::QueryResult focus_result = focus.Query(truck, /*kx=*/-1, window);
  std::printf("\nFocus:      %6lld frames, %5lld GT-CNN invocations, %7.2f s GPU\n",
              static_cast<long long>(focus_result.frames_returned),
              static_cast<long long>(focus_result.centroids_classified),
              focus_result.gpu_millis / 1000.0);

  // The old workflow: run the GT-CNN over every detection in the window.
  core::QueryResult query_all =
      baseline::RunQueryAll(run, focus.gt_cnn(), truck, window);
  std::printf("Query-all:  %6lld frames, %5lld GT-CNN invocations, %7.2f s GPU",
              static_cast<long long>(query_all.frames_returned),
              static_cast<long long>(query_all.centroids_classified),
              query_all.gpu_millis / 1000.0);
  if (focus_result.gpu_millis > 0.0) {
    std::printf("  (Focus %.0fx faster)", query_all.gpu_millis / focus_result.gpu_millis);
  }
  std::printf("\n");

  // First-responders mode: take a quick low-latency batch with Kx=1 and widen later
  // (§5 "Dynamically adjusting K at query-time").
  for (int kx : {1, 2, focus.chosen_params().k}) {
    core::QueryResult quick = focus.Query(truck, kx, window);
    std::printf("  Kx=%-2d -> %6lld frames, %5lld invocations, %6.2f s GPU\n", kx,
                static_cast<long long>(quick.frames_returned),
                static_cast<long long>(quick.centroids_classified),
                quick.gpu_millis / 1000.0);
  }

  // How good were the Focus results? Evaluate against GT-CNN segment ground truth.
  cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  core::AccuracyEvaluator evaluator(&truth, run.fps());
  core::PrecisionRecall pr = evaluator.Evaluate(truck, focus.Query(truck));
  std::printf("\nFull-stream truck query accuracy vs GT-CNN: precision %.3f, recall %.3f\n",
              pr.precision, pr.recall);
  return 0;
}
