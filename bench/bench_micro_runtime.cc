// Runtime- and storage-substrate microbenchmarks (google-benchmark): virtual GPU
// scheduling throughput, worker-pool task dispatch, metrics updates, serializer
// encode/decode, CRC32, index snapshot codec, and record-log append/replay.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "src/index/topk_index.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/metrics.h"
#include "src/runtime/task_queue.h"
#include "src/runtime/worker_pool.h"
#include "src/storage/index_codec.h"
#include "src/storage/record_log.h"
#include "src/storage/serializer.h"

namespace {

using namespace focus;

void BM_GpuClusterSubmit(benchmark::State& state) {
  runtime::GpuCluster cluster(static_cast<int>(state.range(0)));
  double now = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.Submit(now, 13.0));
    now += 1.0;
  }
}
BENCHMARK(BM_GpuClusterSubmit)->Arg(1)->Arg(10)->Arg(100);

void BM_GpuClusterBatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    runtime::GpuCluster cluster(10);
    benchmark::DoNotOptimize(cluster.SubmitBatch(0.0, batch, 13.0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GpuClusterBatch)->Arg(100)->Arg(10000);

void BM_TaskQueuePushPop(benchmark::State& state) {
  runtime::TaskQueue<int64_t> queue(1024);
  int64_t i = 0;
  for (auto _ : state) {
    queue.Push(i);
    benchmark::DoNotOptimize(queue.Pop());
    ++i;
  }
}
BENCHMARK(BM_TaskQueuePushPop)->Iterations(100000);

void BM_WorkerPoolDispatch(benchmark::State& state) {
  runtime::WorkerPool pool(static_cast<int>(state.range(0)));
  std::atomic<int64_t> counter{0};
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Drain();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
// Fixed iteration count: on a single-core host the pool's context switches make
// google-benchmark's auto-tuning run for minutes otherwise.
BENCHMARK(BM_WorkerPoolDispatch)->Arg(1)->Arg(4)->Iterations(200);

void BM_MetricsIncrement(benchmark::State& state) {
  runtime::MetricsRegistry metrics;
  for (auto _ : state) {
    metrics.IncrementCounter("bench.counter");
  }
}
BENCHMARK(BM_MetricsIncrement);

void BM_Crc32(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1024)->Arg(65536);

void BM_VarintEncodeDecode(benchmark::State& state) {
  for (auto _ : state) {
    storage::Encoder enc;
    for (uint64_t v = 1; v < (1ull << 42); v <<= 3) {
      enc.PutVarint(v);
    }
    storage::Decoder dec(enc.bytes());
    uint64_t out = 0;
    while (!dec.Done()) {
      dec.GetVarint(&out);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_VarintEncodeDecode);

index::TopKIndex MakeIndex(int64_t clusters) {
  index::TopKIndex idx;
  for (int64_t c = 0; c < clusters; ++c) {
    index::ClusterEntry entry;
    entry.cluster_id = c;
    entry.size = 30;
    entry.representative.frame = c * 100;
    entry.representative.object_id = c;
    entry.representative.appearance.assign(64, 0.125f);
    entry.members.push_back({c, c * 100, c * 100 + 30});
    for (int i = 0; i < 4; ++i) {
      entry.topk_classes.push_back(static_cast<common::ClassId>((c + i) % 100));
      entry.topk_ranks.push_back(i + 1);
    }
    idx.AddCluster(std::move(entry));
  }
  return idx;
}

void BM_IndexSnapshotEncode(benchmark::State& state) {
  index::TopKIndex idx = MakeIndex(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::EncodeIndexSnapshot({}, idx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexSnapshotEncode)->Arg(100)->Arg(2000);

void BM_IndexSnapshotDecode(benchmark::State& state) {
  std::string blob = storage::EncodeIndexSnapshot({}, MakeIndex(state.range(0)));
  for (auto _ : state) {
    storage::IndexSnapshotHeader header;
    index::TopKIndex decoded;
    benchmark::DoNotOptimize(storage::DecodeIndexSnapshot(blob, &header, &decoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexSnapshotDecode)->Arg(100)->Arg(2000);

void BM_RecordLogAppend(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "focus_bench_log.bin").string();
  std::filesystem::remove(path);
  auto writer = storage::RecordLogWriter::Open(path);
  std::string payload(256, 'p');
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer->Append(payload));
  }
  state.SetBytesProcessed(state.iterations() * 256);
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecordLogAppend);

}  // namespace

BENCHMARK_MAIN();
