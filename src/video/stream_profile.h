// Per-stream statistical profiles for the 13 video streams of Table 1.
//
// Each profile captures the stream-level statistics the paper's techniques exploit:
// how many of the 1000 classes ever appear (§2.2.2), how skewed their frequencies are
// (Fig. 3), how long objects dwell in frame (§2.2.3), how busy the scene is, and how
// much activity varies between day and night. The actual content of a stream is then
// generated deterministically from the profile plus a seed.
#ifndef FOCUS_SRC_VIDEO_STREAM_PROFILE_H_
#define FOCUS_SRC_VIDEO_STREAM_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/video/class_catalog.h"

namespace focus::video {

enum class StreamType { kTraffic, kSurveillance, kNews };

const char* StreamTypeName(StreamType type);

struct StreamProfile {
  std::string name;
  StreamType type = StreamType::kTraffic;
  std::string location;
  std::string description;

  // --- Class mix (§2.2.2) ---
  // Number of the 1000 classes that ever occur in this stream (220-690 in the paper's
  // streams).
  int num_classes_present = 300;
  // Zipf exponent over the stream's class ranks; higher means a few classes dominate
  // more strongly (Fig. 3: 3-10% of classes cover >=95% of objects).
  double zipf_exponent = 1.6;
  // Weight of the domain-shared class pool when composing this stream's class list.
  // Controls the cross-stream Jaccard index (~0.46 in the paper).
  double domain_class_affinity = 0.45;

  // --- Scene dynamics ---
  // Mean moving-object arrivals per second at peak activity.
  double peak_arrival_rate_per_sec = 0.5;
  // Day/night activity ratio: arrival rate at the quietest hour as a fraction of peak.
  // News channels run flat (1.0); streets go quiet at night (0.05-0.3).
  double night_activity_fraction = 0.2;
  // Log-normal dwell time (seconds an object stays in frame).
  double mean_dwell_sec = 12.0;
  double dwell_sigma = 0.6;  // Sigma of the underlying normal.
  // Fraction of objects that are stationary (parked cars, anchored props): they are
  // present in pixels but produce no motion detections (§2.2.1).
  double stationary_fraction = 0.25;
  // Appearance drift per frame (random-walk step of the object's feature vector, as a
  // fraction of unit norm): pose/scale changes as objects cross the scene. News
  // streams have larger drift (cuts, graphics); fixed traffic cameras less.
  double appearance_walk_step = 0.05;
  // Per-frame observation jitter (sensor noise, motion blur).
  double frame_jitter = 0.05;
  // Probability that the pixel crop of an object in consecutive frames is close enough
  // for ingest-time pixel differencing to suppress re-classification (§4.2).
  double pixel_diff_suppression = 0.35;
  // How visually constrained this stream's objects are relative to a generic dataset
  // (§4.3: traffic-camera cars share angle/distortion/size). Lower values make
  // specialization more effective; 1.0 would mean ImageNet-like variability.
  double appearance_variability = 0.55;

  // --- Rendering (used by the vision substrate) ---
  int frame_width = 160;
  int frame_height = 120;
  double mean_object_px = 14.0;  // Mean object bounding-box side, pixels.

  // Native capture rate.
  double native_fps = 30.0;
};

// The 13 streams of Table 1, in paper order. Deterministic content follows from
// (profile, world seed, stream seed).
std::vector<StreamProfile> Table1Profiles();

// Look up a Table 1 profile by stream name (e.g., "auburn_c"); returns true and fills
// |out| when found.
bool FindProfile(const std::string& name, StreamProfile* out);

// The representative 9-stream subset the paper uses in Figures 8 and 9.
std::vector<std::string> RepresentativeNineStreams();

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_STREAM_PROFILE_H_
