#include "src/cluster/sharded_clusterer.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/runtime/worker_pool.h"

namespace focus::cluster {

ShardedClusterer::ShardedClusterer(ShardedClustererOptions options)
    : options_(options) {
  FOCUS_CHECK(options_.num_shards >= 1);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<IncrementalClusterer>(options_.base));
  }
  shard_items_.resize(options_.num_shards);
  merge_scanned_.resize(options_.num_shards, 0);
}

size_t ShardedClusterer::ShardOf(common::ObjectId object) const {
  if (options_.num_shards <= 1) {
    return 0;
  }
  // SplitMix64 rather than object % num_shards: object ids are often assigned
  // sequentially, and a modulo partition of a sequential range correlates with
  // arrival order (bursts land on one shard).
  return static_cast<size_t>(common::SplitMix64(static_cast<uint64_t>(object)) %
                             static_cast<uint64_t>(options_.num_shards));
}

int64_t ShardedClusterer::Add(const video::Detection& detection,
                              const common::FeatureVec& feature) {
  const size_t s = ShardOf(detection.object_id);
  const int64_t local = shards_[s]->Add(detection, feature);
  AfterAssignments(1);
  return GlobalId(s, local);
}

int64_t ShardedClusterer::AddSuppressed(const video::Detection& detection,
                                        const common::FeatureVec& feature) {
  const size_t s = ShardOf(detection.object_id);
  const int64_t local = shards_[s]->AddSuppressed(detection, feature);
  AfterAssignments(1);
  return GlobalId(s, local);
}

void ShardedClusterer::AssignBatch(const WorkItem* items, size_t count,
                                   runtime::WorkerPool* pool, int64_t* out) {
  const size_t num_shards = options_.num_shards;
  for (std::vector<size_t>& v : shard_items_) {
    v.clear();
  }
  for (size_t i = 0; i < count; ++i) {
    FOCUS_CHECK(items[i].detection != nullptr && items[i].feature != nullptr);
    shard_items_[ShardOf(items[i].detection->object_id)].push_back(i);
  }

  // One ordered task per shard: assignment order within a shard must follow
  // stream order (the clusterer is stateful), so the shard is the finest safe
  // work item. Out-slots are disjoint per item, so no synchronization beyond
  // the pool's Drain() is needed.
  auto run_shard = [this, items, out](size_t s) {
    IncrementalClusterer& shard = *shards_[s];
    for (size_t i : shard_items_[s]) {
      const WorkItem& item = items[i];
      const int64_t local = item.suppressed
                                ? shard.AddSuppressed(*item.detection, *item.feature)
                                : shard.Add(*item.detection, *item.feature);
      out[i] = GlobalId(s, local);
    }
  };

  if (pool == nullptr || num_shards == 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      run_shard(s);
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_items_[s].empty()) {
        continue;
      }
      FOCUS_CHECK(pool->Submit([run_shard, s] { run_shard(s); }));
    }
    pool->Drain();
  }
  AfterAssignments(static_cast<int64_t>(count));
}

void ShardedClusterer::AfterAssignments(int64_t count) {
  if (options_.merge_interval <= 0) {
    return;
  }
  assignments_since_merge_ += count;
  if (assignments_since_merge_ >= options_.merge_interval) {
    RunMergePass(/*full=*/false);
    assignments_since_merge_ = 0;
  }
}

int64_t ShardedClusterer::Find(int64_t global_id) const {
  const int64_t n = static_cast<int64_t>(parent_.size());
  int64_t root = global_id;
  while (root < n && parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  // Path compression toward the root keeps repeated canonical lookups cheap.
  int64_t walk = global_id;
  while (walk < n && parent_[static_cast<size_t>(walk)] != root) {
    const int64_t next = parent_[static_cast<size_t>(walk)];
    parent_[static_cast<size_t>(walk)] = root;
    walk = next;
  }
  return root;
}

void ShardedClusterer::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) {
    return;
  }
  if (ra > rb) {
    std::swap(ra, rb);
  }
  // Attach the larger root under the smaller so every component's root is its
  // minimum global id (the canonical id).
  if (rb >= static_cast<int64_t>(parent_.size())) {
    const size_t old = parent_.size();
    parent_.resize(static_cast<size_t>(rb) + 1);
    for (size_t g = old; g < parent_.size(); ++g) {
      parent_[g] = static_cast<int64_t>(g);
    }
  }
  parent_[static_cast<size_t>(rb)] = ra;
  ++merges_folded_;
}

void ShardedClusterer::MergePass() { RunMergePass(/*full=*/true); }

void ShardedClusterer::RunMergePass(bool full) {
  if (options_.num_shards <= 1) {
    return;
  }
  const float threshold_sq =
      static_cast<float>(options_.base.threshold * options_.base.threshold);
  // Fixed scan order (shard ascending, local id ascending, other shards
  // ascending as targets) plus CentroidStore's smallest-id tie break keep the
  // union-find a pure function of the stream. Only *active* centroids are
  // scanned: a retired cluster can no longer fold, which is why passes run
  // periodically rather than once at the end — folds are captured while both
  // sides are still live. Incremental passes (full == false) only use clusters
  // created since the previous pass as queries, so the steady-state cost is
  // proportional to cluster churn, not to the active working set; the full
  // pass restricts targets to earlier shards (every unordered cross-shard pair
  // is still covered, from its higher-shard side).
  for (size_t s = 0; s < options_.num_shards; ++s) {
    const std::vector<Cluster>& clusters = shards_[s]->clusters();
    const size_t first = full ? 0 : merge_scanned_[s];
    for (size_t l = first; l < clusters.size(); ++l) {
      const Cluster& c = clusters[l];
      if (!c.active) {
        continue;
      }
      for (size_t t = 0; t < (full ? s : options_.num_shards); ++t) {
        if (t == s) {
          continue;
        }
        const CentroidStore& store = shards_[t]->centroid_store();
        if (store.empty() || store.dim() != c.centroid.size()) {
          continue;
        }
        float dist_sq = 0.0f;
        const int64_t target = store.FindNearest(c.centroid.data(), c.centroid.size(),
                                                 threshold_sq, &dist_sq);
        if (target >= 0) {
          Union(GlobalId(s, static_cast<int64_t>(l)), GlobalId(t, target));
        }
      }
    }
    merge_scanned_[s] = clusters.size();
  }
}

int64_t ShardedClusterer::CanonicalOf(int64_t global_id) const { return Find(global_id); }

std::vector<Cluster> ShardedClusterer::FinalizeClusters() {
  MergePass();
  const size_t num_shards = options_.num_shards;
  size_t max_locals = 0;
  for (const auto& shard : shards_) {
    max_locals = std::max(max_locals, shard->clusters().size());
  }

  std::vector<Cluster> table;
  std::unordered_map<int64_t, size_t> slot_of_root;
  // Global ids ascend over (local asc, shard asc), and every component's root
  // is its minimum id, so a component's canonical cluster is always created
  // before any cluster folds into it.
  for (size_t l = 0; l < max_locals; ++l) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (l >= shards_[s]->clusters().size()) {
        continue;
      }
      const Cluster& src = shards_[s]->clusters()[l];
      const int64_t g = GlobalId(s, static_cast<int64_t>(l));
      const int64_t root = Find(g);
      if (root == g) {
        table.push_back(src);
        table.back().id = g;
        slot_of_root.emplace(root, table.size() - 1);
        continue;
      }
      Cluster& dst = table[slot_of_root.at(root)];
      const double total = static_cast<double>(dst.size + src.size);
      const double ws = static_cast<double>(src.size) / total;
      for (size_t i = 0; i < dst.centroid.size(); ++i) {
        dst.centroid[i] =
            static_cast<float>(dst.centroid[i] * (1.0 - ws) + src.centroid[i] * ws);
      }
      dst.size += src.size;
      dst.members.insert(dst.members.end(), src.members.begin(), src.members.end());
      dst.active = dst.active || src.active;
    }
  }
  return table;
}

int64_t ShardedClusterer::total_assignments() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->total_assignments();
  }
  return total;
}

double ShardedClusterer::FastHitRate() const {
  int64_t hits = 0;
  int64_t lookups = 0;
  for (const auto& shard : shards_) {
    hits += shard->fast_hits();
    lookups += shard->fast_lookups();
  }
  return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
}

}  // namespace focus::cluster
