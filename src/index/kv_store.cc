#include "src/index/kv_store.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace focus::index {

namespace {

constexpr char kMagic[8] = {'F', 'O', 'C', 'U', 'S', 'K', 'V', '1'};

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

}  // namespace

std::vector<std::pair<std::string, std::string>> KvStore::Scan(const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.emplace_back(it->first, it->second);
  }
  return out;
}

common::Result<bool> KvStore::SaveToFile(const std::string& path) const {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return common::IoError("cannot open " + tmp + " for writing");
    }
    out.write(kMagic, sizeof(kMagic));
    WriteU64(out, map_.size());
    for (const auto& [key, value] : map_) {
      WriteU64(out, key.size());
      out.write(key.data(), static_cast<std::streamsize>(key.size()));
      WriteU64(out, value.size());
      out.write(value.data(), static_cast<std::streamsize>(value.size()));
    }
    if (!out) {
      return common::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return common::IoError("rename " + tmp + " -> " + path + " failed");
  }
  return true;
}

common::Result<bool> KvStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::NotFound("cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return common::IoError(path + " is not a KvStore snapshot");
  }
  uint64_t count = 0;
  if (!ReadU64(in, &count)) {
    return common::IoError("truncated snapshot header in " + path);
  }
  std::map<std::string, std::string> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t klen = 0;
    if (!ReadU64(in, &klen)) {
      return common::IoError("truncated key length in " + path);
    }
    std::string key(klen, '\0');
    in.read(key.data(), static_cast<std::streamsize>(klen));
    uint64_t vlen = 0;
    if (!in || !ReadU64(in, &vlen)) {
      return common::IoError("truncated key/value in " + path);
    }
    std::string value(vlen, '\0');
    in.read(value.data(), static_cast<std::streamsize>(vlen));
    if (!in) {
      return common::IoError("truncated value in " + path);
    }
    loaded.emplace(std::move(key), std::move(value));
  }
  map_ = std::move(loaded);
  return true;
}

}  // namespace focus::index
