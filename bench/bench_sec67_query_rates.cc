// §6.7: applicability under extreme query rates.
//
// Case A — everything gets queried: every indexed class of every stream is queried
// once. Ingest-all then amortizes its cost perfectly, yet Focus's total GPU time
// (ingest + all queries) still comes out cheaper because the cheap CNN indexes
// everything once and the GT-CNN touches each cluster centroid at most once per
// class. Paper: Focus remains ~4x cheaper on average (up to 6x).
//
// Case B — almost nothing gets queried: Focus defers its whole pipeline to query
// time (query-time-only variant). Latency grows but remains far below Query-all.
// Paper: still 22x (up to 34x) faster than Query-all.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/core/parameter_tuner.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  bench::PrintHeader("Sec 6.7: Extreme query rates");
  std::printf("%-12s %18s %22s\n", "Stream", "AllQueried:cheaper", "QueryTimeOnly:faster");

  std::vector<double> all_queried;
  std::vector<double> query_time_only;
  for (const std::string& name : video::RepresentativeNineStreams()) {
    video::StreamRun run = bench::MakeRun(catalog, name, config);
    video::StreamProfile profile;
    video::FindProfile(name, &profile);

    core::FocusOptions options;
    auto focus_or = core::FocusStream::Build(&run, &catalog, options);
    if (!focus_or.ok()) {
      std::fprintf(stderr, "build failed for %s\n", name.c_str());
      continue;
    }
    const core::FocusStream& focus = **focus_or;

    // Case A: query every class the index knows about, once each.
    double total_query_millis = 0.0;
    for (common::ClassId cls : focus.ingest().index.IndexedClasses()) {
      // Map OTHER back through real queries: query the underlying classes.
      if (cls == cnn::kOtherClass) {
        continue;
      }
      total_query_millis += focus.Query(cls).gpu_millis;
    }
    double ingest_all =
        static_cast<double>(focus.ingest().detections) * gt.inference_cost_millis();
    double focus_total = focus.ingest().gpu_millis + total_query_millis;
    double cheaper = focus_total > 0 ? ingest_all / focus_total : 0.0;

    // Case B: run the whole pipeline at query time for the top dominant class.
    cnn::SegmentGroundTruth truth(run, gt);
    std::vector<common::ClassId> dominant = truth.DominantClasses(0.5, 1);
    double faster = 0.0;
    if (!dominant.empty()) {
      baseline::QueryTimeOnlyResult lazy = baseline::RunFocusQueryTimeOnly(
          run, focus.ingest_cnn(), gt, focus.chosen_params(), dominant[0]);
      double query_all = baseline::QueryAllCostMillis(run, gt);
      faster = lazy.total_gpu_millis > 0 ? query_all / lazy.total_gpu_millis : 0.0;
    }

    std::printf("%-12s %17.1fx %21.1fx\n", name.c_str(), cheaper, faster);
    all_queried.push_back(cheaper);
    query_time_only.push_back(faster);
  }
  std::printf("%-12s %17.1fx %21.1fx\n", "Average", common::Mean(all_queried),
              common::Mean(query_time_only));
  std::printf("\nPaper: all-queried case ~4x cheaper than Ingest-all (up to 6x); query-time-only\n"
              "Focus still ~22x faster than Query-all (up to 34x).\n");
  return 0;
}
