// Quickstart: index one simulated traffic stream with Focus and query it.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API in ~60 lines: build a world (class catalog),
// record a stream, let Focus tune itself and build its top-K index, then ask
// "find all frames with cars" and print what it cost.
#include <cstdio>

#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/video/stream_generator.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kInfo);

  // 1. The world: a deterministic 1000-class catalog (ImageNet-like label space).
  video::ClassCatalog catalog(/*world_seed=*/42);

  // 2. A recording: 20 minutes of the auburn_c traffic intersection at 30 fps.
  video::StreamProfile profile;
  if (!video::FindProfile("auburn_c", &profile)) {
    return 1;
  }
  video::StreamRun run(&catalog, profile, /*duration_sec=*/20 * 60.0, /*fps=*/30.0,
                       /*seed=*/1234);

  // 3. Ingest: Focus tunes its cheap CNN, K, Ls and clustering threshold on a sample
  //    of the stream, then indexes the whole recording.
  core::FocusOptions options;  // 95/95 accuracy targets, Balance policy.
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::printf("build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  core::FocusStream& focus = **focus_or;

  const core::IngestParams& chosen = focus.chosen_params();
  std::printf("\nIngest done: model=%s (%.0fx cheaper than the GT-CNN), K=%d, T=%.2f\n",
              chosen.model.name.c_str(), cnn::CheapnessFactor(chosen.model), chosen.k,
              chosen.cluster_threshold);
  std::printf("  %lld detections -> %lld clusters, %.1f s of GPU time\n",
              static_cast<long long>(focus.ingest().detections),
              static_cast<long long>(focus.ingest().num_clusters),
              focus.ingest().gpu_millis / 1000.0);

  // 4. Query: "find all frames that contain cars".
  common::ClassId car = catalog.IdForName("car");
  core::QueryResult result = focus.Query(car);
  std::printf("\nQuery 'car': %lld frames in %zu runs, %lld centroids verified, %.2f s GPU\n",
              static_cast<long long>(result.frames_returned), result.frame_runs.size(),
              static_cast<long long>(result.centroids_classified),
              result.gpu_millis / 1000.0);

  // 5. Compare against classifying every detection at query time (Query-all).
  double query_all_sec = static_cast<double>(focus.ingest().detections) *
                         focus.gt_cnn().inference_cost_millis() / 1000.0;
  if (result.gpu_millis > 0.0) {
    std::printf("Query-all would need %.1f s GPU -> Focus is %.0fx faster\n", query_all_sec,
                query_all_sec * 1000.0 / result.gpu_millis);
  }
  return 0;
}
