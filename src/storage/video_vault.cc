#include "src/storage/video_vault.h"

#include <algorithm>
#include <cstring>

#include "src/storage/serializer.h"

namespace focus::storage {

namespace {

constexpr char kMagic[4] = {'F', 'V', 'L', 'T'};
constexpr uint32_t kManifestVersion = 1;

}  // namespace

double StreamManifest::RetainedSeconds() const {
  double total = 0.0;
  for (const RecordingChunk& c : chunks) {
    total += c.duration_sec();
  }
  return total;
}

int64_t StreamManifest::RetainedBytes() const {
  int64_t total = 0;
  for (const RecordingChunk& c : chunks) {
    total += c.size_bytes;
  }
  return total;
}

std::optional<double> StreamManifest::OldestSec() const {
  if (chunks.empty()) {
    return std::nullopt;
  }
  return chunks.front().begin_sec;
}

common::Result<bool> VideoVault::AppendChunk(const std::string& stream, RecordingChunk chunk) {
  if (chunk.end_sec <= chunk.begin_sec) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "chunk has non-positive duration"};
  }
  if (chunk.size_bytes < 0) {
    return common::Error{common::ErrorCode::kInvalidArgument, "chunk has negative size"};
  }
  StreamManifest& manifest = streams_[stream];
  if (manifest.stream_name.empty()) {
    manifest.stream_name = stream;
  }
  if (!manifest.chunks.empty() && chunk.begin_sec < manifest.chunks.back().end_sec) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "chunk overlaps or precedes the previous chunk"};
  }
  manifest.chunks.push_back(std::move(chunk));
  return true;
}

void VideoVault::SetIndexSnapshot(const std::string& stream, std::string uri) {
  StreamManifest& manifest = streams_[stream];
  if (manifest.stream_name.empty()) {
    manifest.stream_name = stream;
  }
  manifest.index_snapshot_uri = std::move(uri);
}

const StreamManifest* VideoVault::Find(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? nullptr : &it->second;
}

std::vector<std::string> VideoVault::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, manifest] : streams_) {
    names.push_back(name);
  }
  return names;
}

int64_t VideoVault::TrimBefore(double horizon_sec) {
  int64_t dropped = 0;
  for (auto& [name, manifest] : streams_) {
    auto& chunks = manifest.chunks;
    size_t keep_from = 0;
    while (keep_from < chunks.size() && chunks[keep_from].end_sec <= horizon_sec) {
      ++keep_from;
    }
    dropped += static_cast<int64_t>(keep_from);
    chunks.erase(chunks.begin(), chunks.begin() + static_cast<ptrdiff_t>(keep_from));
  }
  return dropped;
}

int64_t VideoVault::TrimToBudget(int64_t budget_bytes) {
  int64_t dropped = 0;
  while (TotalBytes() > budget_bytes) {
    // Find the globally oldest chunk (stream name breaks ties deterministically
    // because map iteration is ordered).
    StreamManifest* victim = nullptr;
    for (auto& [name, manifest] : streams_) {
      if (manifest.chunks.empty()) {
        continue;
      }
      if (victim == nullptr ||
          manifest.chunks.front().begin_sec < victim->chunks.front().begin_sec) {
        victim = &manifest;
      }
    }
    if (victim == nullptr) {
      break;  // Nothing left to drop; budget is unreachable.
    }
    victim->chunks.erase(victim->chunks.begin());
    ++dropped;
  }
  return dropped;
}

int64_t VideoVault::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [name, manifest] : streams_) {
    total += manifest.RetainedBytes();
  }
  return total;
}

std::string VideoVault::EncodeManifest() const {
  Encoder enc;
  for (char c : kMagic) {
    enc.PutU8(static_cast<uint8_t>(c));
  }
  enc.PutU32(kManifestVersion);
  enc.PutVarint(streams_.size());
  for (const auto& [name, manifest] : streams_) {
    enc.PutString(name);
    enc.PutString(manifest.index_snapshot_uri);
    enc.PutVector(manifest.chunks, [](Encoder& e, const RecordingChunk& c) {
      e.PutDouble(c.begin_sec);
      e.PutDouble(c.end_sec);
      e.PutSignedVarint(c.size_bytes);
      e.PutString(c.uri);
    });
  }
  enc.PutU32(Crc32(enc.bytes()));
  return enc.TakeBytes();
}

common::Result<bool> VideoVault::DecodeManifest(const std::string& blob) {
  auto fail = [](const std::string& what) {
    return common::Error{common::ErrorCode::kIo, "vault manifest: " + what};
  };
  if (blob.size() < 12) {
    return fail("truncated");
  }
  const std::string_view body(blob.data(), blob.size() - 4);
  Decoder trailer(std::string_view(blob).substr(blob.size() - 4));
  uint32_t stored_crc = 0;
  if (!trailer.GetU32(&stored_crc) || Crc32(body) != stored_crc) {
    return fail("CRC mismatch");
  }
  Decoder dec(body);
  uint8_t magic[4] = {};
  for (uint8_t& b : magic) {
    dec.GetU8(&b);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return fail("bad magic");
  }
  uint32_t version = 0;
  if (!dec.GetU32(&version) || version != kManifestVersion) {
    return fail("unsupported version");
  }
  uint64_t count = 0;
  if (!dec.GetVarint(&count)) {
    return fail("truncated stream count");
  }
  std::map<std::string, StreamManifest> streams;
  for (uint64_t i = 0; i < count; ++i) {
    StreamManifest manifest;
    if (!dec.GetString(&manifest.stream_name) || !dec.GetString(&manifest.index_snapshot_uri)) {
      return fail("truncated stream header");
    }
    bool ok = dec.GetVector(&manifest.chunks, [](Decoder& d, RecordingChunk* c) {
      return d.GetDouble(&c->begin_sec) && d.GetDouble(&c->end_sec) &&
             d.GetSignedVarint(&c->size_bytes) && d.GetString(&c->uri);
    });
    if (!ok) {
      return fail("malformed chunk list");
    }
    std::string name = manifest.stream_name;
    streams.emplace(std::move(name), std::move(manifest));
  }
  if (!dec.Done()) {
    return fail("trailing garbage");
  }
  streams_ = std::move(streams);
  return true;
}

}  // namespace focus::storage
