// Video-specific CNN specialization (§4.3).
//
// Focus periodically samples a stream, labels the sample with the GT-CNN to estimate
// the stream's class distribution, selects the Ls most frequent classes, and
// "retrains" cheap models that classify only those classes plus a catch-all OTHER
// label. A specialized model faces a far easier task (few classes, visually
// constrained stream), so a small architecture reaches high accuracy and the top-K
// index can use K = 2-4 instead of 60-200.
//
// Training is simulated at the descriptor level: the produced ModelDesc carries the
// stream's class subset and appearance variability, and src/cnn/accuracy_model.h
// turns that into the correspondingly higher accuracy. The trainer also charges the
// GPU time spent labelling the sample with the GT-CNN, so ingest-cost accounting
// includes what retraining costs.
#ifndef FOCUS_SRC_CNN_SPECIALIZATION_H_
#define FOCUS_SRC_CNN_SPECIALIZATION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/cnn/model_desc.h"
#include "src/common/time_types.h"
#include "src/video/stream_generator.h"

namespace focus::cnn {

// Estimated class distribution of a stream, from a GT-CNN-labelled sample.
struct ClassDistributionEstimate {
  // Objects per GT label in the sample.
  std::map<common::ClassId, int64_t> objects_per_class;
  int64_t total_objects = 0;
  // GPU time spent labelling the sample.
  common::GpuMillis gpu_cost_millis = 0.0;

  // The |ls| most frequent classes, most frequent first.
  std::vector<common::ClassId> TopClasses(size_t ls) const;
  // Fraction of sampled objects covered by the |ls| most frequent classes.
  double CoverageOfTop(size_t ls) const;
};

// Labels the first |sample_sec| seconds of the stream with |gt_cnn|, sampling one
// frame in |frame_stride| (the paper samples a small fraction of frames).
ClassDistributionEstimate EstimateClassDistribution(const video::StreamRun& run,
                                                    const Cnn& gt_cnn, double sample_sec,
                                                    int frame_stride);

struct SpecializationOptions {
  // Number of popular classes the specialized model distinguishes (Ls in §4.3).
  int ls = 20;
  // Architecture of the specialized model.
  int layers = 12;
  int input_px = 56;
};

// Produces the specialized model descriptor for a stream.
//
// |stream_variability| is the visual constraint of the stream's objects relative to
// generic training data (StreamProfile::appearance_variability); in a real system
// this is implicit in the retraining data, here it parameterizes the simulated
// accuracy. Retraining is charged by the caller via the estimate's gpu_cost_millis.
ModelDesc TrainSpecializedModel(const ClassDistributionEstimate& distribution,
                                const SpecializationOptions& options, double stream_variability,
                                uint64_t weights_seed);

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_SPECIALIZATION_H_
