// End-to-end motion detection: frames in, moving-object boxes out.
//
// Combines the background model and the blob extractor into the moving-object
// detector both Focus and the strengthened baselines use as their first stage
// (§6.1 "Baselines": both baselines skip frames with no moving objects).
#ifndef FOCUS_SRC_VISION_MOTION_DETECTOR_H_
#define FOCUS_SRC_VISION_MOTION_DETECTOR_H_

#include <vector>

#include "src/vision/background_model.h"
#include "src/vision/blob_extractor.h"
#include "src/video/detection.h"
#include "src/video/frame.h"

namespace focus::vision {

struct MotionDetectorOptions {
  BackgroundModelOptions background;
  BlobExtractorOptions blobs;
};

class MotionDetector {
 public:
  MotionDetector(int width, int height, MotionDetectorOptions options = {});

  // Processes the next frame of the stream (frames must be fed in order) and returns
  // the bounding boxes of moving objects.
  std::vector<video::BBox> Detect(const video::FrameBuffer& frame);

 private:
  BackgroundModel background_;
  BlobExtractor blobs_;
};

// Match quality between detected boxes and ground-truth boxes: the fraction of truth
// boxes that have a detected box with IoU above |iou_threshold|. Used by tests to
// validate the vision substrate against the generator.
double DetectionRecall(const std::vector<video::BBox>& detected,
                       const std::vector<video::BBox>& truth, float iou_threshold);

}  // namespace focus::vision

#endif  // FOCUS_SRC_VISION_MOTION_DETECTOR_H_
