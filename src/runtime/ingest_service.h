// Multi-stream ingest service: the §5 worker fleet around the core ingest pipeline.
//
// "Focus's ingest-time work is distributed across many machines, with each machine
// running one worker process for each video stream's ingestion." This service runs
// one ingest worker per registered stream on a thread pool, accounts each stream's
// inference workload on a shared virtual GPU cluster, and answers the provisioning
// question behind the paper's cost claims: how many GPUs does it take to ingest all
// streams in real time, and what does each stream cost per month.
//
// Determinism: the per-stream ingest itself is deterministic; GPU-cluster accounting
// is applied after the parallel phase in stream registration order, so the reported
// schedule does not depend on thread interleaving.
#ifndef FOCUS_SRC_RUNTIME_INGEST_SERVICE_H_
#define FOCUS_SRC_RUNTIME_INGEST_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/core/config.h"
#include "src/core/ingest_pipeline.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/metrics.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {

// One registered stream with its tuned ingest configuration.
struct IngestJob {
  std::string name;
  const video::StreamRun* run = nullptr;  // Must outlive the service.
  core::IngestParams params;
  core::IngestOptions options;
};

// Per-stream outcome.
struct IngestReport {
  std::string name;
  core::IngestResult result;
  // GPU-seconds of cheap-CNN work per second of video: < 1.0 / num_streams_per_gpu
  // means the stream ingests in real time on its share of a device.
  double gpu_occupancy = 0.0;
  // Virtual wall time to replay the whole recording's inference workload on the
  // shared cluster (includes queueing behind other streams).
  common::GpuMillis cluster_finish_millis = 0.0;
};

struct IngestServiceOptions {
  int num_worker_threads = 4;
  int num_gpus = 1;
  // Intra-stream clustering shards (core::IngestOptions::num_shards): > 0
  // overrides every registered job so a hot deployment can be re-sharded in
  // one place; 0 leaves each job's own setting untouched.
  int num_shards = 0;
  // Root directory for durable per-stream clustering state (mmap'd centroid
  // arenas + checkpoints, docs/persistence.md). Non-empty gives every
  // registered stream the subdirectory <persist_dir>/<job name> and routes its
  // ingest through the resumable path: a crashed/restarted worker resumes the
  // stream from its recovered frame position instead of frame 0 (see
  // IngestResult::resumed_from_frame in each report). Empty (default) keeps
  // ingest volatile. Stream names must be unique and filesystem-safe.
  std::string persist_dir;
  // Dollars per GPU-month used by CostPerStreamMonthly (the paper quotes Azure
  // pricing where Ingest-all costs ~$250/month/stream).
  double dollars_per_gpu_month = 250.0;
};

struct FleetIngestSummary {
  std::vector<IngestReport> reports;  // In registration order.
  GpuClusterStats cluster;
  // Sum of per-stream occupancies: total GPUs needed for real-time ingest.
  double total_gpu_occupancy = 0.0;
  int min_gpus_for_realtime = 0;

  common::GpuMillis total_gpu_millis() const {
    common::GpuMillis total = 0;
    for (const IngestReport& r : reports) {
      total += r.result.gpu_millis;
    }
    return total;
  }
};

class IngestService {
 public:
  explicit IngestService(IngestServiceOptions options, MetricsRegistry* metrics = nullptr);

  // Registers a stream; returns its job index. |job.run| must stay valid until
  // RunAll() returns.
  size_t AddStream(IngestJob job);

  // Ingests every registered stream (parallel across |num_worker_threads|), then
  // replays the combined inference workload on a fresh |num_gpus| cluster.
  FleetIngestSummary RunAll();

  // Monthly cost of one stream whose ingest occupies |gpu_occupancy| of a device.
  double CostPerStreamMonthly(double gpu_occupancy) const;

  const IngestServiceOptions& options() const { return options_; }

 private:
  IngestServiceOptions options_;
  MetricsRegistry* metrics_;
  std::vector<IngestJob> jobs_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_INGEST_SERVICE_H_
