#include "src/core/pareto.h"

#include <algorithm>
#include <limits>

namespace focus::core {

std::vector<size_t> ParetoBoundary(const std::vector<CostPoint>& points) {
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  // Sort by ingest ascending, query ascending as tie-break; then sweep keeping points
  // that strictly improve the best query seen so far.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (points[a].ingest != points[b].ingest) {
      return points[a].ingest < points[b].ingest;
    }
    return points[a].query < points[b].query;
  });
  std::vector<size_t> boundary;
  double best_query = std::numeric_limits<double>::max();
  for (size_t idx : order) {
    if (points[idx].query < best_query) {
      boundary.push_back(idx);
      best_query = points[idx].query;
    }
  }
  return boundary;
}

}  // namespace focus::core
