// Per-stream parameter selection (§4.4).
//
// The tuner samples a representative window of the stream, labels it with the GT-CNN
// for ground truth, and evaluates a grid of configurations — ingest model (generic
// compressed candidates plus specialized models trained on the sample's class
// distribution), top-K width K, specialization breadth Ls, and clustering threshold
// T. It follows the paper's two-step navigation: CheapCNN_i / Ls / K are first
// screened against the recall target alone, then T values are admitted only when the
// precision target also holds. Among viable configurations it computes the Pareto
// boundary over (ingest cost, query latency) and picks per the policy:
//   kBalance    minimize ingest + query GPU time,
//   kOptIngest  cheapest-ingest Pareto point,
//   kOptQuery   fastest-query Pareto point.
#ifndef FOCUS_SRC_CORE_PARAMETER_TUNER_H_
#define FOCUS_SRC_CORE_PARAMETER_TUNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/core/accuracy_evaluator.h"
#include "src/core/config.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/pareto.h"

namespace focus::core {

// One evaluated configuration with its measured sample metrics.
struct EvaluatedConfig {
  IngestParams params;
  double precision = 0.0;
  double recall = 0.0;
  // Normalized to processing every sampled object with the GT-CNN (Fig. 6 axes).
  double ingest_cost_norm = 0.0;
  double query_latency_norm = 0.0;
  bool viable = false;  // Meets both accuracy targets.
};

struct TuningResult {
  std::vector<EvaluatedConfig> evaluated;   // The whole grid (Fig. 6 scatter).
  std::vector<size_t> viable_indices;       // Configs meeting both targets.
  std::vector<size_t> pareto_indices;       // Pareto boundary of the viable set.
  size_t chosen_index = 0;                  // Selected per policy.
  bool found = false;

  const EvaluatedConfig& chosen() const { return evaluated[chosen_index]; }
};

struct TunerOptions {
  // Length of the sample window, seconds.
  double sample_sec = 300.0;
  // Grids.
  // K >= 2 matches the paper (specialized models use K = 2-4, paragraph 4.3) and
  // avoids the recall fragility of single-class indexing; query-time Kx=1 remains
  // available (paragraph 5).
  std::vector<int> k_grid = {2, 4, 8, 16, 32, 64, 128, 192};
  std::vector<double> threshold_grid = {0.3, 0.45, 0.6};
  std::vector<int> ls_grid = {15, 30};
  bool include_generic_models = true;
  bool include_specialized_models = true;
  // Evaluate queries for the classes covering this share of sampled objects.
  double dominant_coverage = 0.95;
  size_t max_dominant_classes = 12;
  IngestOptions ingest;
};

class ParameterTuner {
 public:
  // |catalog| and |gt_cnn| must outlive the tuner.
  ParameterTuner(const video::ClassCatalog* catalog, const cnn::Cnn* gt_cnn,
                 TunerOptions options = {});

  // Tunes on the first |options.sample_sec| seconds of |run|. |stream_variability| is
  // the stream's appearance constraint (profile value) that specialization inherits.
  TuningResult Tune(const video::StreamRun& run, double stream_variability,
                    const AccuracyTarget& target, Policy policy) const;

  // The expensive half of Tune(): measures the whole configuration grid on the
  // sample, independent of any accuracy target. Combine with SelectFromEvaluated to
  // screen the same grid against several targets/policies without re-measuring
  // (used by the accuracy-sensitivity experiments, Figs. 10-11).
  std::vector<EvaluatedConfig> EvaluateGrid(const video::StreamRun& run,
                                            double stream_variability) const;

  // GPU time the tuner spent labelling the sample with the GT-CNN (distribution
  // estimation + ground truth); charged to ingest by the facade.
  common::GpuMillis last_tuning_gpu_millis() const { return last_tuning_gpu_millis_; }

  const TunerOptions& options() const { return options_; }

 private:
  // Builds the candidate models for this stream.
  std::vector<cnn::ModelDesc> CandidateModels(const cnn::ClassDistributionEstimate& distribution,
                                              double stream_variability, uint64_t seed) const;

  const video::ClassCatalog* catalog_;
  const cnn::Cnn* gt_cnn_;
  TunerOptions options_;
  mutable common::GpuMillis last_tuning_gpu_millis_ = 0.0;
};

// Picks the chosen index among |pareto| per |policy| (Balance = min ingest+query).
size_t ChooseByPolicy(const std::vector<EvaluatedConfig>& evaluated,
                      const std::vector<size_t>& pareto, Policy policy);

// The cheap half of Tune(): applies the accuracy targets to a measured grid, builds
// the Pareto boundary over the viable set, and picks the configuration per |policy|.
// Falls back to the closest-to-viable configuration when nothing meets the targets.
TuningResult SelectFromEvaluated(std::vector<EvaluatedConfig> evaluated,
                                 const AccuracyTarget& target, Policy policy);

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_PARAMETER_TUNER_H_
