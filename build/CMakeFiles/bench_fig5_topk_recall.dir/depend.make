# Empty dependencies file for bench_fig5_topk_recall.
# This may be replaced when dependencies are built.
