#include "src/storage/index_codec.h"

#include <cstring>
#include <utility>

#include "src/storage/serializer.h"

namespace focus::storage {

namespace {

constexpr char kMagic[4] = {'F', 'I', 'D', 'X'};

void PutDetection(Encoder& enc, const video::Detection& d) {
  enc.PutSignedVarint(d.frame);
  enc.PutSignedVarint(d.object_id);
  enc.PutFloat(d.bbox.x);
  enc.PutFloat(d.bbox.y);
  enc.PutFloat(d.bbox.w);
  enc.PutFloat(d.bbox.h);
  enc.PutU8(d.pixel_diff_suppressed ? 1 : 0);
  enc.PutU8(d.first_observation ? 1 : 0);
  enc.PutSignedVarint(d.true_class);
  enc.PutVarint(d.appearance.size());
  for (float f : d.appearance) {
    enc.PutFloat(f);
  }
}

bool GetDetection(Decoder& dec, video::Detection* d) {
  int64_t frame = 0;
  int64_t object_id = 0;
  uint8_t suppressed = 0;
  uint8_t first = 0;
  int64_t true_class = 0;
  uint64_t dim = 0;
  if (!dec.GetSignedVarint(&frame) || !dec.GetSignedVarint(&object_id) ||
      !dec.GetFloat(&d->bbox.x) || !dec.GetFloat(&d->bbox.y) || !dec.GetFloat(&d->bbox.w) ||
      !dec.GetFloat(&d->bbox.h) || !dec.GetU8(&suppressed) || !dec.GetU8(&first) ||
      !dec.GetSignedVarint(&true_class) || !dec.GetVarint(&dim)) {
    return false;
  }
  // Each float is 4 bytes; reject counts the payload cannot contain.
  if (dim > dec.remaining() / 4) {
    return false;
  }
  d->frame = frame;
  d->object_id = object_id;
  d->pixel_diff_suppressed = suppressed != 0;
  d->first_observation = first != 0;
  d->true_class = static_cast<common::ClassId>(true_class);
  d->appearance.resize(static_cast<size_t>(dim));
  for (size_t i = 0; i < d->appearance.size(); ++i) {
    if (!dec.GetFloat(&d->appearance[i])) {
      return false;
    }
  }
  return true;
}

void PutCluster(Encoder& enc, const index::ClusterEntry& c) {
  enc.PutSignedVarint(c.cluster_id);
  enc.PutSignedVarint(c.size);
  PutDetection(enc, c.representative);
  enc.PutVector(c.members, [](Encoder& e, const cluster::MemberRun& m) {
    e.PutSignedVarint(m.object);
    e.PutSignedVarint(m.first_frame);
    e.PutSignedVarint(m.last_frame);
  });
  enc.PutVector(c.topk_classes,
                [](Encoder& e, common::ClassId cls) { e.PutSignedVarint(cls); });
  enc.PutVector(c.topk_ranks, [](Encoder& e, int32_t rank) { e.PutSignedVarint(rank); });
}

bool GetCluster(Decoder& dec, index::ClusterEntry* c) {
  int64_t cluster_id = 0;
  int64_t size = 0;
  if (!dec.GetSignedVarint(&cluster_id) || !dec.GetSignedVarint(&size) ||
      !GetDetection(dec, &c->representative)) {
    return false;
  }
  c->cluster_id = cluster_id;
  c->size = size;
  bool ok = dec.GetVector(&c->members, [](Decoder& d, cluster::MemberRun* m) {
    return d.GetSignedVarint(&m->object) && d.GetSignedVarint(&m->first_frame) &&
           d.GetSignedVarint(&m->last_frame);
  });
  ok = ok && dec.GetVector(&c->topk_classes, [](Decoder& d, common::ClassId* cls) {
    int64_t v = 0;
    if (!d.GetSignedVarint(&v)) {
      return false;
    }
    *cls = static_cast<common::ClassId>(v);
    return true;
  });
  ok = ok && dec.GetVector(&c->topk_ranks, [](Decoder& d, int32_t* rank) {
    int64_t v = 0;
    if (!d.GetSignedVarint(&v)) {
      return false;
    }
    *rank = static_cast<int32_t>(v);
    return true;
  });
  return ok;
}

void PutModelDesc(Encoder& enc, const cnn::ModelDesc& m) {
  enc.PutString(m.name);
  enc.PutSignedVarint(m.layers);
  enc.PutSignedVarint(m.input_px);
  enc.PutVector(m.classes, [](Encoder& e, common::ClassId cls) { e.PutSignedVarint(cls); });
  enc.PutU8(m.has_other_class ? 1 : 0);
  enc.PutDouble(m.training_variability);
  enc.PutU64(m.weights_seed);
}

bool GetModelDesc(Decoder& dec, cnn::ModelDesc* m) {
  int64_t layers = 0;
  int64_t input_px = 0;
  uint8_t has_other = 0;
  if (!dec.GetString(&m->name) || !dec.GetSignedVarint(&layers) ||
      !dec.GetSignedVarint(&input_px)) {
    return false;
  }
  bool ok = dec.GetVector(&m->classes, [](Decoder& d, common::ClassId* cls) {
    int64_t v = 0;
    if (!d.GetSignedVarint(&v)) {
      return false;
    }
    *cls = static_cast<common::ClassId>(v);
    return true;
  });
  if (!ok || !dec.GetU8(&has_other) || !dec.GetDouble(&m->training_variability) ||
      !dec.GetU64(&m->weights_seed)) {
    return false;
  }
  m->layers = static_cast<int>(layers);
  m->input_px = static_cast<int>(input_px);
  m->has_other_class = has_other != 0;
  return true;
}

common::Error FormatError(const std::string& what) {
  return common::Error{common::ErrorCode::kIo, "index snapshot: " + what};
}

}  // namespace

std::string EncodeIndexSnapshot(const IndexSnapshotHeader& header,
                                const index::TopKIndex& index) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(kMagic[0]));
  enc.PutU8(static_cast<uint8_t>(kMagic[1]));
  enc.PutU8(static_cast<uint8_t>(kMagic[2]));
  enc.PutU8(static_cast<uint8_t>(kMagic[3]));
  enc.PutU32(kIndexCodecVersion);
  enc.PutString(header.stream_name);
  enc.PutString(header.model_name);
  enc.PutSignedVarint(header.k);
  enc.PutDouble(header.cluster_threshold);
  enc.PutU64(header.world_seed);
  enc.PutDouble(header.fps);
  PutModelDesc(enc, header.model);
  enc.PutVector(index.clusters(), PutCluster);
  const uint32_t crc = Crc32(enc.bytes());
  enc.PutU32(crc);
  return enc.TakeBytes();
}

common::Result<bool> DecodeIndexSnapshot(const std::string& blob, IndexSnapshotHeader* header,
                                         index::TopKIndex* index) {
  if (blob.size() < 8) {
    return FormatError("truncated (shorter than magic + version)");
  }
  // CRC covers everything before the trailing 4 bytes.
  const std::string_view body(blob.data(), blob.size() - 4);
  Decoder trailer(std::string_view(blob).substr(blob.size() - 4));
  uint32_t stored_crc = 0;
  if (!trailer.GetU32(&stored_crc) || Crc32(body) != stored_crc) {
    return FormatError("CRC mismatch (corrupted or truncated)");
  }

  Decoder dec(body);
  uint8_t magic[4] = {};
  for (uint8_t& b : magic) {
    if (!dec.GetU8(&b)) {
      return FormatError("truncated magic");
    }
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return FormatError("bad magic (not an index snapshot)");
  }
  uint32_t version = 0;
  if (!dec.GetU32(&version)) {
    return FormatError("truncated version");
  }
  if (version != kIndexCodecVersion) {
    return FormatError("unsupported version " + std::to_string(version));
  }

  IndexSnapshotHeader h;
  int64_t k = 0;
  if (!dec.GetString(&h.stream_name) || !dec.GetString(&h.model_name) ||
      !dec.GetSignedVarint(&k) || !dec.GetDouble(&h.cluster_threshold) ||
      !dec.GetU64(&h.world_seed) || !dec.GetDouble(&h.fps) || !GetModelDesc(dec, &h.model)) {
    return FormatError("truncated header");
  }
  h.k = static_cast<int32_t>(k);

  std::vector<index::ClusterEntry> clusters;
  if (!dec.GetVector(&clusters,
                     [](Decoder& d, index::ClusterEntry* c) { return GetCluster(d, c); })) {
    return FormatError("malformed cluster record at offset " + std::to_string(dec.offset()));
  }
  if (!dec.Done()) {
    return FormatError("trailing garbage after cluster records");
  }

  index::TopKIndex rebuilt;
  for (index::ClusterEntry& c : clusters) {
    rebuilt.AddCluster(std::move(c));
  }
  *header = std::move(h);
  *index = std::move(rebuilt);
  return true;
}

}  // namespace focus::storage
