#include "src/server/query_server.h"

#include <algorithm>
#include <sstream>

namespace focus::server {

QueryServer::QueryServer(const core::FocusFleet* fleet, const video::ClassCatalog* catalog,
                         runtime::MetricsRegistry* metrics,
                         runtime::QueryServiceOptions service_options,
                         const runtime::IngestService* live)
    : fleet_(fleet),
      catalog_(catalog),
      metrics_(metrics != nullptr ? metrics : &runtime::GlobalMetrics()),
      service_options_(service_options),
      live_(live) {}

std::string QueryServer::HandleLine(const std::string& line) {
  metrics_->IncrementCounter("server.requests");
  auto request = ParseRequest(line);
  if (!request.ok()) {
    metrics_->IncrementCounter("server.parse_errors");
    return ErrResponse(request.error().code, request.error().message);
  }
  return Handle(*request);
}

std::string QueryServer::Handle(const Request& request) {
  switch (request.verb) {
    case Verb::kPing:
      return OkResponse("PONG");
    case Verb::kCameras:
      return HandleCameras();
    case Verb::kClasses:
      return HandleClasses(request.class_filter);
    case Verb::kStats:
      return HandleStats(request.camera);
    case Verb::kHealth:
      return HandleHealth(request.camera);
    case Verb::kQuery:
      return HandleQuery(request);
  }
  return ErrResponse(common::ErrorCode::kInternal, "unhandled verb");
}

std::string QueryServer::HandleQuery(const Request& request) {
  const common::ClassId cls = catalog_->IdForName(request.class_name);
  if (cls == common::kInvalidClass) {
    return ErrResponse(common::ErrorCode::kNotFound,
                       "unknown class " + request.class_name);
  }
  const core::FocusStream* stream = fleet_->Find(request.camera);
  if (stream == nullptr) {
    if (live_ != nullptr && live_->LiveContext(request.camera) != nullptr) {
      return HandleLiveQuery(request, cls);
    }
    return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + request.camera);
  }

  // Execute through the batched query path (§5): the plan's centroid
  // classifications are packed into GT-CNN launches on a virtual cluster
  // instead of running one Top1() per centroid. Results are byte-identical to
  // the per-centroid path. The service (a virtual clock over num_gpus doubles)
  // is built per request, so concurrent HandleLine calls share nothing mutable
  // and identical requests report identical latencies.
  runtime::QueryService service(service_options_, metrics_);
  const runtime::QueryExecution execution =
      service.Execute(runtime::QueryRequest{stream, cls, request.kx, request.range});
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  // Payload: summary line, then one "RUN first last" per frame run.
  const core::QueryResult& qr = execution.result;
  std::ostringstream out;
  out << "FRAMES " << qr.frames_returned << " RUNS " << qr.frame_runs.size() << " CENTROIDS "
      << qr.centroids_classified << " GPU_MS " << qr.gpu_millis << " LATENCY_MS "
      << execution.latency_millis();
  for (const auto& [first, last] : qr.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleLiveQuery(const Request& request, common::ClassId cls) {
  const runtime::LiveStreamContext* context = live_->LiveContext(request.camera);
  // Pin the newest epoch for the whole request: the shared_ptr keeps the
  // snapshot's index entries alive even if ingest publishes a newer epoch
  // mid-query, and the response is byte-identical to halting ingest at the
  // snapshot's watermark and finalizing (docs/live_query.md).
  std::shared_ptr<const core::LiveSnapshot> snapshot = context->slot.Latest();
  // Degraded serving (docs/robustness.md): a stream whose ingest worker has
  // failed still answers from its last-good epoch — framed STALE, never
  // silently passed off as live — because an index that lags the recording is
  // still a correct index over the frames it covers.
  const runtime::StreamHealth health = live_->Health(request.camera);
  if (snapshot == nullptr) {
    if (health.state == runtime::StreamState::kDown) {
      return ErrResponse(common::ErrorCode::kUnavailable,
                         "stream " + request.camera + " is down with no published snapshot: " +
                             health.last_error);
    }
    return ErrResponse(common::ErrorCode::kFailedPrecondition,
                       "no snapshot published yet for " + request.camera);
  }
  runtime::QueryRequest query;
  query.cls = cls;
  query.kx = request.kx;
  query.range = request.range;
  query.snapshot = snapshot;
  query.ingest_cnn = context->ingest_cnn.get();
  query.gt_cnn = context->gt_cnn.get();
  query.fps = context->fps;
  runtime::QueryService service(service_options_, metrics_);
  const runtime::QueryExecution execution = service.Execute(query);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.live_queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  const bool stale = health.state != runtime::StreamState::kHealthy;
  if (stale) {
    metrics_->IncrementCounter("server.stale_queries");
  }
  const core::QueryResult& qr = execution.result;
  std::ostringstream out;
  out << (stale ? "STALE" : "LIVE") << " EPOCH " << snapshot->epoch << " WATERMARK "
      << snapshot->watermark << " FRAMES " << qr.frames_returned << " RUNS "
      << qr.frame_runs.size() << " CENTROIDS " << qr.centroids_classified << " GPU_MS "
      << qr.gpu_millis << " LATENCY_MS " << execution.latency_millis();
  for (const auto& [first, last] : qr.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleHealth(const std::string& camera) {
  // One line per stream: name, supervision state, restart/failure counters,
  // and — for live streams with a published epoch — how far the queryable
  // snapshot reaches. The last failure's code and message close the line.
  const auto stream_line = [this](const std::string& name,
                                  const runtime::StreamHealth& health) {
    std::ostringstream line;
    line << name << " STATE " << runtime::StreamStateName(health.state) << " RESTARTS "
         << health.restarts << " FAILURES " << health.consecutive_failures;
    if (live_ != nullptr) {
      if (auto snapshot = live_->LatestSnapshot(name); snapshot != nullptr) {
        line << " EPOCH " << snapshot->epoch << " WATERMARK " << snapshot->watermark;
      }
    }
    if (!health.last_error.empty()) {
      line << " LAST " << common::ErrorCodeName(health.last_code) << " "
           << health.last_error;
    }
    return line.str();
  };

  if (!camera.empty()) {
    const bool known =
        fleet_->Find(camera) != nullptr ||
        (live_ != nullptr && live_->LiveContext(camera) != nullptr);
    if (!known) {
      return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + camera);
    }
    // A fleet camera (or a live stream that never failed) reads Healthy.
    const runtime::StreamHealth health =
        live_ != nullptr ? live_->Health(camera) : runtime::StreamHealth{};
    return OkResponse(stream_line(camera, health));
  }

  // Fleet listing: every stream with a registered failure or restart. Streams
  // running clean are implicitly Healthy and omitted — an empty listing means
  // the whole fleet is healthy.
  const std::map<std::string, runtime::StreamHealth> fleet =
      live_ != nullptr ? live_->FleetHealth() : std::map<std::string, runtime::StreamHealth>{};
  std::ostringstream out;
  out << fleet.size();
  for (const auto& [name, health] : fleet) {
    out << "\n" << stream_line(name, health);
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleCameras() {
  std::ostringstream out;
  const std::vector<std::string> names = fleet_->CameraNames();
  out << names.size();
  for (const std::string& name : names) {
    out << "\n" << name;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleClasses(const std::string& filter) {
  std::ostringstream out;
  int matches = 0;
  std::ostringstream list;
  for (common::ClassId cls = 0; cls < video::kNumClasses; ++cls) {
    const std::string& name = catalog_->Name(cls);
    if (!filter.empty() && name.find(filter) == std::string::npos) {
      continue;
    }
    ++matches;
    if (matches <= 50) {  // Bounded payload; the filter narrows further.
      list << "\n" << name;
    }
  }
  out << matches << (matches > 50 ? " (first 50 shown)" : "") << list.str();
  return OkResponse(out.str());
}

std::string QueryServer::HandleStats(const std::string& camera) {
  const core::FocusStream* stream = fleet_->Find(camera);
  if (stream == nullptr) {
    return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + camera);
  }
  std::ostringstream out;
  out << "MODEL " << stream->chosen_params().model.name << " K " << stream->chosen_params().k
      << " T " << stream->chosen_params().cluster_threshold << " CLUSTERS "
      << stream->ingest().num_clusters << " DETECTIONS " << stream->ingest().detections
      << " INGEST_GPU_MS " << stream->total_ingest_gpu_millis();
  return OkResponse(out.str());
}

}  // namespace focus::server
