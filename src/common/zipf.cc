#include "src/common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace focus::common {

ZipfDistribution::ZipfDistribution(size_t n, double exponent) : exponent_(exponent) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // Guard against rounding drift at the tail.
}

size_t ZipfDistribution::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t rank) const {
  if (rank >= cdf_.size()) {
    return 0.0;
  }
  double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

}  // namespace focus::common
