#include "src/shm/epoch_plane.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <string_view>
#include <tuple>

#include "src/common/logging.h"
#include "src/storage/serializer.h"

namespace focus::shm {

namespace {

constexpr size_t kAlign = 64;

uint64_t AlignUp(uint64_t n) { return (n + kAlign - 1) & ~uint64_t{kAlign - 1}; }

uint32_t HeaderCrc(const ShmEpochHeader& header) {
  ShmEpochHeader copy = header;
  copy.header_crc = 0;
  return storage::Crc32(
      std::string_view(reinterpret_cast<const char*>(&copy), sizeof(copy)));
}

// Validates one header slot copy against the segment geometry. A slot being
// mid-write (torn) fails the CRC; a slot never written fails the magic.
bool ValidHeader(const ShmEpochHeader& header, size_t segment_bytes) {
  return header.magic == kShmMagic && header.generation != 0 &&
         header.region_index < kShmMaxRegions &&
         header.region_offset >= kShmDataOffset &&
         header.region_offset + header.payload_bytes <= segment_bytes &&
         header.header_crc == HeaderCrc(header);
}

runtime::MetricsRegistry* OrGlobal(runtime::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : &runtime::GlobalMetrics();
}

}  // namespace

ShmPlaneStats StatsOf(const SharedSegment& segment) {
  const auto* control = reinterpret_cast<const ShmControl*>(segment.data());
  ShmPlaneStats stats;
  stats.published_generation = control->published_generation.load(std::memory_order_acquire);
  stats.epochs_published = control->epochs_published.load(std::memory_order_relaxed);
  stats.stale_pins_reclaimed =
      control->stale_pins_reclaimed.load(std::memory_order_relaxed);
  stats.reader_attaches = control->reader_attaches.load(std::memory_order_relaxed);
  stats.pin_violations = control->pin_violations.load(std::memory_order_relaxed);
  stats.regions_compacted = control->regions_compacted.load(std::memory_order_relaxed);
  stats.segment_bytes = segment.size();
  stats.arena_used_bytes = control->bump_top.load(std::memory_order_relaxed) - kShmDataOffset;
  const auto* slots =
      reinterpret_cast<const ShmReaderSlot*>(segment.bytes() + kShmControlBytes);
  for (uint32_t i = 0; i < kShmMaxReaders; ++i) {
    if (slots[i].pid.load(std::memory_order_relaxed) != 0) {
      ++stats.live_readers;
    }
  }
  return stats;
}

// --- EpochPublisher ---

common::Result<std::unique_ptr<EpochPublisher>> EpochPublisher::Create(
    const std::string& name, Options options, runtime::MetricsRegistry* metrics) {
  if (options.segment_bytes < kShmDataOffset + kAlign) {
    return common::Error{common::ErrorCode::kInvalidArgument, "shm segment too small"};
  }
  // A segment already at this name is either a live plane (another publisher
  // owns it — refuse; one writer per plane) or an orphan from an owner that
  // crashed or exited without unlinking. Orphans are reclaimed: readers must
  // never be handed a dead process's stale epochs as if they were fresh.
  {
    auto existing = SharedSegment::Open(name);
    if (existing.ok()) {
      if ((*existing)->size() >= kShmControlBytes) {
        const auto* control = reinterpret_cast<const ShmControl*>((*existing)->data());
        if (control->magic.load(std::memory_order_acquire) == kShmMagic) {
          const pid_t owner =
              static_cast<pid_t>(control->writer_pid.load(std::memory_order_relaxed));
          if (owner > 0 && (::kill(owner, 0) == 0 || errno == EPERM)) {
            return common::FailedPrecondition(
                "shm segment " + name + " is owned by live publisher pid " +
                std::to_string(owner));
          }
        }
      }
      OrGlobal(metrics)->IncrementCounter("shm.stale_segments_reclaimed");
    } else if (existing.error().code != common::ErrorCode::kNotFound) {
      // Exists but unmappable (e.g. never sized): also an orphan; Create
      // below unlinks and starts over.
      OrGlobal(metrics)->IncrementCounter("shm.stale_segments_reclaimed");
    }
  }
  auto segment = SharedSegment::Create(name, options.segment_bytes);
  if (!segment.ok()) {
    return segment.error();
  }
  auto publisher = std::unique_ptr<EpochPublisher>(
      new EpochPublisher(std::move(*segment), options, OrGlobal(metrics)));
  // The fresh mapping is zero pages; initialize the control block in place and
  // store the magic last so a racing attach never validates a half-built one.
  ShmControl* control = publisher->control();
  control->version = kShmVersion;
  control->max_readers = kShmMaxReaders;
  control->max_regions = kShmMaxRegions;
  control->bump_top.store(kShmDataOffset, std::memory_order_relaxed);
  control->writer_pid.store(static_cast<uint64_t>(::getpid()), std::memory_order_relaxed);
  control->magic.store(kShmMagic, std::memory_order_release);
  return publisher;
}

EpochPublisher::~EpochPublisher() {
  if (segment_ != nullptr) {
    control()->writer_pid.store(0, std::memory_order_relaxed);
    if (unlink_on_destroy_) {
      SharedSegment::Unlink(segment_->name());
    }
  }
}

ShmControl* EpochPublisher::control() const {
  return reinterpret_cast<ShmControl*>(segment_->data());
}

common::Result<uint32_t> EpochPublisher::ClaimRegion(uint64_t g, uint64_t need) {
  ShmControl* ctl = control();
  auto* slots = reinterpret_cast<ShmReaderSlot*>(segment_->bytes() + kShmControlBytes);
  const uint64_t active = ctl->published_generation.load(std::memory_order_relaxed);

  // Candidates: every region not backing the currently published generation
  // (new readers pin that one at any moment without any handshake), oldest
  // generation first so rotation is fair and forced eviction hits the least
  // recent epoch.
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  for (uint32_t r = 0; r < kShmMaxRegions; ++r) {
    const uint64_t og = ctl->regions[r].generation.load(std::memory_order_relaxed);
    if (og != active || og == 0) {
      candidates.emplace_back(og, r);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  FOCUS_CHECK(!candidates.empty());

  // Returns an abandoned span to the free-span table: coalesce to fixpoint
  // with adjacent free spans, hand the result back to the bump allocator when
  // it ends at bump_top, otherwise record it for reuse. On table overflow the
  // smallest span is dropped (leaked — the pre-v2 behavior, now bounded by
  // table pressure instead of hit on every growth).
  const auto release_span = [&](uint64_t offset, uint64_t bytes) {
    if (bytes == 0) {
      return;
    }
    bool merged = true;
    while (merged) {
      merged = false;
      for (uint32_t i = 0; i < ctl->free_span_count; ++i) {
        const uint64_t o = ctl->free_span_offset[i];
        const uint64_t b = ctl->free_span_bytes[i];
        if (o + b == offset || offset + bytes == o) {
          offset = std::min(offset, o);
          bytes += b;
          --ctl->free_span_count;
          ctl->free_span_offset[i] = ctl->free_span_offset[ctl->free_span_count];
          ctl->free_span_bytes[i] = ctl->free_span_bytes[ctl->free_span_count];
          merged = true;
          break;
        }
      }
    }
    if (offset + bytes == ctl->bump_top.load(std::memory_order_relaxed)) {
      ctl->bump_top.store(offset, std::memory_order_relaxed);
      ctl->regions_compacted.fetch_add(1, std::memory_order_relaxed);
      metrics_->IncrementCounter("shm.regions_compacted");
      return;
    }
    if (ctl->free_span_count < kShmMaxFreeSpans) {
      ctl->free_span_offset[ctl->free_span_count] = offset;
      ctl->free_span_bytes[ctl->free_span_count] = bytes;
      ++ctl->free_span_count;
      return;
    }
    uint32_t smallest = 0;
    for (uint32_t i = 1; i < kShmMaxFreeSpans; ++i) {
      if (ctl->free_span_bytes[i] < ctl->free_span_bytes[smallest]) {
        smallest = i;
      }
    }
    if (ctl->free_span_bytes[smallest] < bytes) {
      ctl->free_span_offset[smallest] = offset;
      ctl->free_span_bytes[smallest] = bytes;
    }
  };

  const auto ensure_capacity = [&](uint32_t r) -> bool {
    const uint64_t old_capacity = ctl->regions[r].capacity.load(std::memory_order_relaxed);
    if (old_capacity >= need) {
      return true;
    }
    // Re-point the region at a larger span. Readers locate payloads by the
    // absolute offset in the epoch header, never through the region
    // descriptor, so re-pointing is invisible to them. The old span is
    // released only after the new one is secured: on failure the caller
    // un-claims the region and its descriptor must stay valid.
    const uint64_t old_offset = ctl->regions[r].offset.load(std::memory_order_relaxed);
    uint64_t new_offset = 0;
    uint64_t new_capacity = 0;
    // Best fit from the free-span table first: reuse an abandoned span
    // instead of growing the arena.
    uint32_t best = kShmMaxFreeSpans;
    for (uint32_t i = 0; i < ctl->free_span_count; ++i) {
      if (ctl->free_span_bytes[i] >= AlignUp(need) &&
          (best == kShmMaxFreeSpans || ctl->free_span_bytes[i] < ctl->free_span_bytes[best])) {
        best = i;
      }
    }
    if (best != kShmMaxFreeSpans) {
      // Take the whole span as capacity (both ends stay 64 B aligned).
      new_offset = ctl->free_span_offset[best];
      new_capacity = ctl->free_span_bytes[best];
      --ctl->free_span_count;
      ctl->free_span_offset[best] = ctl->free_span_offset[ctl->free_span_count];
      ctl->free_span_bytes[best] = ctl->free_span_bytes[ctl->free_span_count];
      ctl->regions_compacted.fetch_add(1, std::memory_order_relaxed);
      metrics_->IncrementCounter("shm.regions_compacted");
    } else {
      const uint64_t top = AlignUp(ctl->bump_top.load(std::memory_order_relaxed));
      uint64_t capacity = std::max(AlignUp(need), old_capacity * 2);
      if (top + capacity > segment_->size()) {
        capacity = AlignUp(need);  // Doubling headroom no longer fits; take the minimum.
      }
      if (top + capacity > segment_->size()) {
        return false;
      }
      new_offset = top;
      new_capacity = capacity;
      ctl->bump_top.store(top + capacity, std::memory_order_relaxed);
    }
    ctl->regions[r].offset.store(new_offset, std::memory_order_relaxed);
    ctl->regions[r].capacity.store(new_capacity, std::memory_order_relaxed);
    release_span(old_offset, old_capacity);
    return true;
  };

  const auto pinned_by_live_reader = [&](uint64_t og) {
    if (og == 0) {
      return false;
    }
    for (uint32_t s = 0; s < kShmMaxReaders; ++s) {
      if (slots[s].pid.load(std::memory_order_seq_cst) != 0 &&
          slots[s].pinned_generation.load(std::memory_order_seq_cst) == og) {
        return true;
      }
    }
    return false;
  };

  bool arena_full = false;
  for (const auto& [og, r] : candidates) {
    // Claim first, scan second: the claim store and the reader's pin store are
    // both seq_cst, so either the reader's subsequent generation re-check sees
    // our claim or our pin scan sees its pin — never neither.
    ctl->regions[r].generation.store(g, std::memory_order_seq_cst);
    if (pinned_by_live_reader(og)) {
      ctl->regions[r].generation.store(og, std::memory_order_seq_cst);  // Un-claim.
      continue;
    }
    if (!ensure_capacity(r)) {
      ctl->regions[r].generation.store(og, std::memory_order_seq_cst);
      arena_full = true;
      continue;
    }
    return r;
  }
  if (arena_full) {
    return common::Error{common::ErrorCode::kOutOfRange,
                         "shm arena exhausted in " + segment_->name()};
  }
  // Every candidate region is pinned by a live reader. Ingest must not stall:
  // forcibly evict the oldest pinned epoch. Its readers detect the theft via
  // ShmEpochView::StillValid (the generation re-check) and discard the scan.
  const auto [og, r] = candidates.front();
  ctl->regions[r].generation.store(g, std::memory_order_seq_cst);
  if (!ensure_capacity(r)) {
    ctl->regions[r].generation.store(og, std::memory_order_seq_cst);
    return common::Error{common::ErrorCode::kOutOfRange,
                         "shm arena exhausted in " + segment_->name()};
  }
  ctl->pin_violations.fetch_add(1, std::memory_order_relaxed);
  metrics_->IncrementCounter("shm.pin_violations");
  return r;
}

common::Result<uint64_t> EpochPublisher::Publish(const core::LiveSnapshot& snapshot) {
  const auto start = std::chrono::steady_clock::now();
  ShmControl* ctl = control();
  auto* slots = reinterpret_cast<ShmReaderSlot*>(segment_->bytes() + kShmControlBytes);

  // Reclaim pins of dead readers first (kill(pid, 0) == ESRCH): a crashed or
  // SIGKILL'd worker can delay region reuse by at most one publish.
  for (uint32_t s = 0; s < kShmMaxReaders; ++s) {
    const uint64_t pid = slots[s].pid.load(std::memory_order_relaxed);
    if (pid != 0 && ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      slots[s].pinned_generation.store(0, std::memory_order_seq_cst);
      slots[s].pid.store(0, std::memory_order_seq_cst);
      ctl->stale_pins_reclaimed.fetch_add(1, std::memory_order_relaxed);
      metrics_->IncrementCounter("shm.stale_pins_reclaimed");
    }
  }

  // Flatten geometry. Appearance dimensionality is uniform per stream (one
  // catalog); the centroid section is cluster-dense rows of |dim| floats.
  const auto& clusters = snapshot.index.clusters();
  const uint64_t cluster_count = clusters.size();
  uint64_t member_count = 0;
  uint64_t class_count = 0;
  uint64_t rank_count = 0;
  uint32_t dim = 0;
  for (const index::ClusterEntry& entry : clusters) {
    member_count += entry.members.size();
    class_count += entry.topk_classes.size();
    rank_count += entry.topk_ranks.size();
    const uint32_t entry_dim = static_cast<uint32_t>(entry.representative.appearance.size());
    if (dim == 0) {
      dim = entry_dim;
    }
    FOCUS_CHECK(entry_dim == dim);
  }

  ShmEpochHeader header;
  header.magic = kShmMagic;
  header.generation = ctl->published_generation.load(std::memory_order_relaxed) + 1;
  header.epoch = snapshot.epoch;
  header.watermark = snapshot.watermark;
  header.fps = snapshot.fps;
  header.detections = snapshot.detections;
  header.num_clusters = snapshot.num_clusters;
  header.entries_reused = snapshot.stats.entries_reused;
  header.entries_rebuilt = snapshot.stats.entries_rebuilt;
  header.build_millis = snapshot.stats.build_millis;
  header.dim = dim;
  header.cluster_count = cluster_count;
  header.member_count = member_count;
  header.class_count = class_count;
  header.rank_count = rank_count;
  header.off_clusters = 0;
  header.off_members = AlignUp(cluster_count * sizeof(ShmClusterRecord));
  header.off_classes = AlignUp(header.off_members + member_count * sizeof(ShmMemberRun));
  header.off_ranks = AlignUp(header.off_classes + class_count * sizeof(int32_t));
  header.off_centroids = AlignUp(header.off_ranks + rank_count * sizeof(int32_t));
  header.payload_bytes =
      header.off_centroids + cluster_count * uint64_t{dim} * sizeof(float);
  header.provenance = options_.provenance;

  auto region = ClaimRegion(header.generation, std::max<uint64_t>(header.payload_bytes, kAlign));
  if (!region.ok()) {
    return region.error();
  }
  header.region_index = *region;
  header.region_offset = ctl->regions[*region].offset.load(std::memory_order_relaxed);

  // Write the flat image. The section gaps are alignment padding; zero them so
  // the payload CRC is a function of the snapshot alone.
  char* base = segment_->bytes() + header.region_offset;
  std::memset(base, 0, header.payload_bytes);
  auto* records = reinterpret_cast<ShmClusterRecord*>(base + header.off_clusters);
  auto* runs = reinterpret_cast<ShmMemberRun*>(base + header.off_members);
  auto* classes = reinterpret_cast<int32_t*>(base + header.off_classes);
  auto* ranks = reinterpret_cast<int32_t*>(base + header.off_ranks);
  auto* centroids = reinterpret_cast<float*>(base + header.off_centroids);
  uint64_t member_at = 0;
  uint64_t class_at = 0;
  uint64_t rank_at = 0;
  for (uint64_t i = 0; i < cluster_count; ++i) {
    const index::ClusterEntry& entry = clusters[i];
    ShmClusterRecord& record = records[i];
    record.cluster_id = entry.cluster_id;
    record.size = entry.size;
    record.rep_frame = entry.representative.frame;
    record.rep_object_id = entry.representative.object_id;
    record.bbox_x = entry.representative.bbox.x;
    record.bbox_y = entry.representative.bbox.y;
    record.bbox_w = entry.representative.bbox.w;
    record.bbox_h = entry.representative.bbox.h;
    record.rep_flags = (entry.representative.pixel_diff_suppressed ? 1u : 0u) |
                       (entry.representative.first_observation ? 2u : 0u);
    record.rep_true_class = entry.representative.true_class;
    record.members_begin = member_at;
    record.members_count = entry.members.size();
    for (const cluster::MemberRun& run : entry.members) {
      runs[member_at++] = ShmMemberRun{run.object, run.first_frame, run.last_frame};
    }
    record.classes_begin = class_at;
    record.classes_count = entry.topk_classes.size();
    for (common::ClassId cls : entry.topk_classes) {
      classes[class_at++] = cls;
    }
    record.ranks_begin = rank_at;
    record.ranks_count = entry.topk_ranks.size();
    for (int32_t rank : entry.topk_ranks) {
      ranks[rank_at++] = rank;
    }
    std::memcpy(centroids + i * dim, entry.representative.appearance.data(),
                dim * sizeof(float));
  }
  header.payload_crc = storage::Crc32(std::string_view(base, header.payload_bytes));
  header.header_crc = HeaderCrc(header);

  // Ping-pong announce: write the alternate slot, then advance the published
  // generation. A reader that catches the slot mid-write fails its CRC and
  // falls back to the other slot's (previous) generation.
  char* slot = segment_->bytes() + kShmHeaderOffset +
               (header.generation % 2) * kShmHeaderSlotBytes;
  std::memcpy(slot, &header, sizeof(header));
  ctl->published_generation.store(header.generation, std::memory_order_seq_cst);
  ctl->epochs_published.fetch_add(1, std::memory_order_relaxed);

  const double millis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  metrics_->IncrementCounter("shm.epochs_published");
  metrics_->Observe("shm.publish_millis", millis);
  metrics_->Observe("shm.payload_bytes", static_cast<double>(header.payload_bytes));
  metrics_->SetGauge("shm.published_generation", static_cast<double>(header.generation));
  metrics_->SetGauge("shm.arena_used_bytes",
                     static_cast<double>(ctl->bump_top.load(std::memory_order_relaxed) -
                                         kShmDataOffset));
  return header.generation;
}

ShmPlaneStats EpochPublisher::stats() const { return StatsOf(*segment_); }

// --- ShmSnapshotReader ---

common::Result<std::unique_ptr<ShmSnapshotReader>> ShmSnapshotReader::Attach(
    const std::string& name, runtime::MetricsRegistry* metrics) {
  auto segment = SharedSegment::Open(name);
  if (!segment.ok()) {
    return segment.error();
  }
  if ((*segment)->size() < kShmDataOffset) {
    return common::Error{common::ErrorCode::kDataLoss,
                         "shm segment " + name + " is too small to hold the plane"};
  }
  auto* control = reinterpret_cast<ShmControl*>((*segment)->data());
  if (control->magic.load(std::memory_order_acquire) != kShmMagic ||
      control->version != kShmVersion) {
    return common::Error{common::ErrorCode::kFailedPrecondition,
                         "shm segment " + name + " is not an initialized epoch plane"};
  }
  auto* slots = reinterpret_cast<ShmReaderSlot*>((*segment)->bytes() + kShmControlBytes);
  const uint64_t pid = static_cast<uint64_t>(::getpid());
  for (uint32_t s = 0; s < kShmMaxReaders; ++s) {
    uint64_t expected = 0;
    if (slots[s].pid.compare_exchange_strong(expected, pid, std::memory_order_seq_cst)) {
      slots[s].pinned_generation.store(0, std::memory_order_seq_cst);
      control->reader_attaches.fetch_add(1, std::memory_order_relaxed);
      runtime::MetricsRegistry* registry = OrGlobal(metrics);
      registry->IncrementCounter("shm.reader_attaches");
      return std::unique_ptr<ShmSnapshotReader>(
          new ShmSnapshotReader(std::move(*segment), s, registry));
    }
  }
  return common::Error{common::ErrorCode::kUnavailable,
                       "all " + std::to_string(kShmMaxReaders) + " reader slots of " + name +
                           " are claimed"};
}

ShmSnapshotReader::~ShmSnapshotReader() {
  if (segment_ != nullptr) {
    ShmReaderSlot* slot = reader_slot();
    slot->pinned_generation.store(0, std::memory_order_seq_cst);
    slot->pid.store(0, std::memory_order_seq_cst);
  }
}

ShmControl* ShmSnapshotReader::control() const {
  return reinterpret_cast<ShmControl*>(segment_->data());
}

ShmReaderSlot* ShmSnapshotReader::reader_slot() const {
  return reinterpret_cast<ShmReaderSlot*>(segment_->bytes() + kShmControlBytes) + slot_;
}

common::Result<ShmEpochHeader> ShmSnapshotReader::AdoptNewestHeader() const {
  ShmEpochHeader best;
  bool any = false;
  for (int s = 0; s < 2; ++s) {
    ShmEpochHeader candidate;
    std::memcpy(&candidate,
                segment_->bytes() + kShmHeaderOffset +
                    static_cast<size_t>(s) * kShmHeaderSlotBytes,
                sizeof(candidate));
    if (ValidHeader(candidate, segment_->size()) &&
        (!any || candidate.generation > best.generation)) {
      best = candidate;
      any = true;
    }
  }
  if (!any) {
    return common::Error{common::ErrorCode::kFailedPrecondition,
                         "no epoch published yet in " + segment_->name()};
  }
  return best;
}

common::Result<ShmEpochView> ShmSnapshotReader::Acquire() {
  FOCUS_CHECK(!view_outstanding_);  // One pin slot: release the view first.
  ShmReaderSlot* slot = reader_slot();
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto header = AdoptNewestHeader();
    if (!header.ok()) {
      return header.error();
    }
    const uint64_t g = header->generation;
    // Pin-then-verify: publish the pin, then re-check that the region still
    // holds this generation. If the writer claimed it in between, its pin
    // scan may have missed us — back off and re-adopt the newer epoch.
    slot->pinned_generation.store(g, std::memory_order_seq_cst);
    if (control()->regions[header->region_index].generation.load(std::memory_order_seq_cst) !=
        g) {
      slot->pinned_generation.store(0, std::memory_order_seq_cst);
      metrics_->IncrementCounter("shm.pin_retries");
      continue;
    }
    if (validated_generation_ != g) {
      // One payload CRC per freshly seen generation; every query against the
      // pinned view afterwards is pure scan. A mismatch means a forced
      // eviction beat our pin (or genuine corruption) — retry on the newest.
      const char* base = segment_->bytes() + header->region_offset;
      if (storage::Crc32(std::string_view(
              base, static_cast<size_t>(header->payload_bytes))) != header->payload_crc) {
        slot->pinned_generation.store(0, std::memory_order_seq_cst);
        metrics_->IncrementCounter("shm.pin_retries");
        continue;
      }
      validated_generation_ = g;
    }
    view_outstanding_ = true;
    metrics_->IncrementCounter("shm.epoch_pins");
    return ShmEpochView(this, *header);
  }
  return common::Error{common::ErrorCode::kUnavailable,
                       "could not pin an epoch in " + segment_->name() +
                           " (publisher outpaced the reader)"};
}

common::Result<ShmModelProvenance> ShmSnapshotReader::Provenance() const {
  auto header = AdoptNewestHeader();
  if (!header.ok()) {
    return header.error();
  }
  return header->provenance;
}

void ShmSnapshotReader::Release(uint64_t generation) {
  (void)generation;
  reader_slot()->pinned_generation.store(0, std::memory_order_seq_cst);
  view_outstanding_ = false;
}

ShmPlaneStats ShmSnapshotReader::stats() const { return StatsOf(*segment_); }

// --- ShmEpochView ---

ShmEpochView::ShmEpochView(ShmEpochView&& other) noexcept
    : reader_(other.reader_),
      header_(other.header_),
      postings_built_(other.postings_built_),
      postings_(std::move(other.postings_)) {
  other.reader_ = nullptr;
  other.postings_built_ = false;
}

ShmEpochView& ShmEpochView::operator=(ShmEpochView&& other) noexcept {
  if (this != &other) {
    if (reader_ != nullptr) {
      reader_->Release(header_.generation);
    }
    reader_ = other.reader_;
    header_ = other.header_;
    postings_built_ = other.postings_built_;
    postings_ = std::move(other.postings_);
    other.reader_ = nullptr;
    other.postings_built_ = false;
  }
  return *this;
}

ShmEpochView::~ShmEpochView() {
  if (reader_ != nullptr) {
    reader_->Release(header_.generation);
  }
}

bool ShmEpochView::StillValid() const {
  return reader_ != nullptr &&
         reader_->control()->regions[header_.region_index].generation.load(
             std::memory_order_seq_cst) == header_.generation;
}

const ShmClusterRecord* ShmEpochView::clusters() const {
  return reinterpret_cast<const ShmClusterRecord*>(
      reader_->segment_->bytes() + header_.region_offset + header_.off_clusters);
}

const ShmMemberRun* ShmEpochView::members() const {
  return reinterpret_cast<const ShmMemberRun*>(reader_->segment_->bytes() +
                                               header_.region_offset + header_.off_members);
}

const int32_t* ShmEpochView::classes() const {
  return reinterpret_cast<const int32_t*>(reader_->segment_->bytes() +
                                          header_.region_offset + header_.off_classes);
}

const int32_t* ShmEpochView::ranks() const {
  return reinterpret_cast<const int32_t*>(reader_->segment_->bytes() +
                                          header_.region_offset + header_.off_ranks);
}

const float* ShmEpochView::centroids() const {
  return reinterpret_cast<const float*>(reader_->segment_->bytes() + header_.region_offset +
                                        header_.off_centroids);
}

ShmQueryPlan ShmEpochView::Plan(common::ClassId cls, int kx, common::TimeRange range,
                                const cnn::Cnn& ingest_cnn) const {
  ShmQueryPlan plan;
  plan.queried = cls;
  plan.kx = kx;
  plan.lookup = ingest_cnn.MapTrueLabel(cls);
  plan.range_first = 0;
  plan.range_last = std::numeric_limits<common::FrameIndex>::max();
  const bool clip = range.begin_sec > 0.0 || range.end_sec >= 0.0;
  if (clip) {
    std::tie(plan.range_first, plan.range_last) = core::FrameBoundsOfRange(range, header_.fps);
  }

  // Posting-list lookup over the scan-derived postings (built once per view);
  // the per-candidate rank test mirrors index::ClusterEntry::MatchesWithin.
  if (!postings_built_) {
    BuildPostings();
  }
  const auto it = postings_.find(plan.lookup);
  if (it == postings_.end()) {
    return plan;  // Not indexed under the lookup class at all.
  }
  for (const Posting& posting : it->second) {
    if (kx > 0 && posting.rank > static_cast<int32_t>(kx)) {
      continue;
    }
    plan.candidates.push_back(posting.record);
  }
  return plan;
}

void ShmEpochView::BuildPostings() const {
  // One scan over the cluster records in id order — the index appends dense
  // ids, so each per-class posting vector comes out in exactly the order the
  // in-process plan walks. First occurrence of a class within a record
  // decides; a rank table shorter than the class table admits every Kx
  // (rank 0), both mirroring index::ClusterEntry::MatchesWithin.
  const ShmClusterRecord* records = clusters();
  const int32_t* class_section = classes();
  const int32_t* rank_section = ranks();
  for (uint64_t i = 0; i < header_.cluster_count; ++i) {
    const ShmClusterRecord& record = records[i];
    const int32_t* record_classes = class_section + record.classes_begin;
    const bool ranked = record.ranks_count == record.classes_count;
    for (uint64_t j = 0; j < record.classes_count; ++j) {
      std::vector<Posting>& list = postings_[record_classes[j]];
      if (!list.empty() && list.back().record == i) {
        continue;  // A later duplicate never overrides the first occurrence.
      }
      list.push_back(
          Posting{i, ranked ? rank_section[record.ranks_begin + j] : 0});
    }
  }
  postings_built_ = true;
}

video::Detection ShmEpochView::MaterializeCentroid(uint64_t record) const {
  FOCUS_CHECK(record < header_.cluster_count);
  const ShmClusterRecord& rec = clusters()[record];
  video::Detection detection;
  detection.frame = rec.rep_frame;
  detection.object_id = rec.rep_object_id;
  detection.bbox = video::BBox{rec.bbox_x, rec.bbox_y, rec.bbox_w, rec.bbox_h};
  detection.pixel_diff_suppressed = (rec.rep_flags & 1u) != 0;
  detection.first_observation = (rec.rep_flags & 2u) != 0;
  detection.true_class = rec.rep_true_class;
  const float* row = centroids() + record * header_.dim;
  detection.appearance.assign(row, row + header_.dim);
  return detection;
}

core::QueryResult ShmEpochView::Resolve(const ShmQueryPlan& plan,
                                        std::span<const common::ClassId> verdicts,
                                        const cnn::Cnn& gt_cnn) const {
  FOCUS_CHECK(verdicts.size() == plan.candidates.size());
  core::QueryResult result;
  result.queried = plan.queried;

  // Term-by-term mirror of core::QueryEngine::Resolve: same accounting order,
  // same clipping, same merge — so the fold is byte-identical no matter which
  // side of the process boundary it runs on.
  const ShmClusterRecord* records = clusters();
  const ShmMemberRun* run_section = members();
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs;
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    ++result.centroids_classified;
    result.gpu_millis += gt_cnn.inference_cost_millis();
    if (verdicts[i] != plan.queried) {
      continue;
    }
    ++result.clusters_matched;
    const ShmClusterRecord& record = records[plan.candidates[i]];
    for (uint64_t m = 0; m < record.members_count; ++m) {
      const ShmMemberRun& run = run_section[record.members_begin + m];
      const common::FrameIndex first = std::max(run.first_frame, plan.range_first);
      const common::FrameIndex last = std::min(run.last_frame, plan.range_last);
      if (first > last) {
        continue;
      }
      runs.emplace_back(first, last);
    }
  }
  result.frame_runs = core::MergeFrameRuns(std::move(runs));
  for (const auto& [first, last] : result.frame_runs) {
    result.frames_returned += last - first + 1;
  }
  return result;
}

core::QueryResult ShmEpochView::Query(common::ClassId cls, int kx, common::TimeRange range,
                                      const cnn::Cnn& ingest_cnn,
                                      const cnn::Cnn& gt_cnn) const {
  const ShmQueryPlan plan = Plan(cls, kx, range, ingest_cnn);
  // Appearance-free classification through one reused stub: the GT-CNN
  // verdict is a deterministic function of (object_id, frame, true_class) —
  // the appearance feeds only the ingest-side feature path — so the query
  // path copies nothing out of the mapping, and Cnn::Top1 (documented
  // equivalent to Classify(d, 1).Top1(); the byte-identity property tests
  // hold the equivalence) skips the per-candidate Top-K scratch.
  const ShmClusterRecord* records = clusters();
  video::Detection stub;
  std::vector<common::ClassId> verdicts;
  verdicts.reserve(plan.candidates.size());
  for (uint64_t record : plan.candidates) {
    const ShmClusterRecord& rec = records[record];
    stub.frame = rec.rep_frame;
    stub.object_id = rec.rep_object_id;
    stub.bbox = video::BBox{rec.bbox_x, rec.bbox_y, rec.bbox_w, rec.bbox_h};
    stub.pixel_diff_suppressed = (rec.rep_flags & 1u) != 0;
    stub.first_observation = (rec.rep_flags & 2u) != 0;
    stub.true_class = rec.rep_true_class;
    verdicts.push_back(gt_cnn.Top1(stub));
  }
  return Resolve(plan, verdicts, gt_cnn);
}

common::Result<core::QueryResult> ShmEpochView::QueryChecked(
    common::ClassId cls, int kx, common::TimeRange range, const cnn::Cnn& ingest_cnn,
    const cnn::Cnn& gt_cnn) const {
  core::QueryResult result = Query(cls, kx, range, ingest_cnn, gt_cnn);
  // The pin protocol keeps the region stable while the view lives, except
  // under forced eviction (every region live-pinned). Re-checking after the
  // scan turns that one unsoundness window into a typed, retryable error.
  if (!StillValid()) {
    return common::Unavailable("epoch " + std::to_string(header_.epoch) + " (generation " +
                               std::to_string(header_.generation) +
                               ") was evicted mid-scan; re-acquire and retry");
  }
  return result;
}

}  // namespace focus::shm
