// Structure-of-arrays store for the active-centroid working set.
//
// The clusterer's full scan is the single hottest loop of ingest: one query
// vector against up to max_active centroids, once per detection. The seed kept
// centroids as per-cluster heap-allocated vectors (array-of-structs), which
// scatters candidates across the heap and starves the vector units. This store
// keeps every *active* centroid in one contiguous row-major float arena with
// parallel arrays of norms, member counts, and cluster ids, so a scan is a
// linear walk that the SIMD kernels in src/common/simd_distance.h can stream.
//
// The scan is staged so that almost all of the arena is never touched:
//   1. norm prune — by the reverse triangle inequality,
//      (||c|| - ||q||)^2 <= ||c - q||^2, so a candidate whose norm gap already
//      exceeds the threshold is skipped after reading one cached float;
//   2. head pass — the first head_dim() dims of every centroid (a dim-derived
//      width, HeadDimFor) are mirrored in a dense (slots x head_dim) tile; one
//      SquaredL2Batch sweep over this contiguous tile yields a monotone partial
//      distance per candidate;
//   3. probe — the candidate with the smallest head partial (in steady state,
//      the cluster the detection belongs to) is completed first, tightening the
//      scan bound from T^2 to its exact distance;
//   4. resume — only candidates whose head partial is within the tightened
//      bound continue past dim head_dim(), resuming from their stored partial
//      through the bounded SIMD kernel.
// Because squared-distance partial sums only grow (non-negative terms, monotone
// float accumulation), steps 2-4 prune exactly: no candidate the full kernel
// would have accepted is ever dropped.
//
// Removal is swap-with-last (O(dim)), so slot order is arbitrary; FindNearest
// breaks distance ties toward the smallest cluster id, which — because ids are
// assigned monotonically and every cluster enters the active set exactly once —
// reproduces the seed's first-seen-in-insertion-order tie semantics exactly.
//
// Backing is pluggable: by default every column lives on the heap
// (std::vector), but AttachArena() rebinds the five columns onto the mapped
// sections of a storage::ArenaFile, so the working set survives a crash and
// arenas larger than RAM page instead of OOM. The staged scan is unchanged —
// it walks the same contiguous base pointers either way; only the mutation
// paths differ (mapped appends reserve file capacity first, and overwrites of
// rows inside the last checkpoint log a write-ahead undo pre-image so recovery
// can restore the checkpoint exactly — see src/storage/arena_file.h).
#ifndef FOCUS_SRC_CLUSTER_CENTROID_STORE_H_
#define FOCUS_SRC_CLUSTER_CENTROID_STORE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/result.h"

namespace focus::storage {
class ArenaFile;
class RecordLogWriter;
}  // namespace focus::storage

namespace focus::cluster {

namespace detail {

// One store column: a resizable typed array on the heap, or a view over a
// mapped ArenaFile section whose capacity the store manages explicitly. Hot
// readers go through data()/operator[] — a single indirection either way.
template <typename T>
class ArenaColumn {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return mapped_ ? map_ : heap_.data(); }
  const T* data() const { return mapped_ ? map_ : heap_.data(); }
  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void append(const T* src, size_t n) {
    if (mapped_) {
      std::memcpy(map_ + size_, src, n * sizeof(T));
    } else {
      heap_.insert(heap_.end(), src, src + n);
    }
    size_ += n;
  }
  void push_back(const T& v) { append(&v, 1); }
  void resize_down(size_t n) {
    if (!mapped_) {
      heap_.resize(n);
    }
    size_ = n;
  }
  void pop_back() { resize_down(size_ - 1); }
  void clear() {
    heap_.clear();
    mapped_ = false;
    map_ = nullptr;
    size_ = 0;
  }

  // Mapped binding: |base| points into the ArenaFile section; the store
  // guarantees capacity via ArenaFile::Reserve before every append.
  void BindMap(T* base, size_t size) {
    heap_.clear();
    mapped_ = true;
    map_ = base;
    size_ = size;
  }
  // Refreshes the base pointer after a Reserve remapped the file.
  void Rebind(T* base) { map_ = base; }
  // Falls back to heap storage, copying the mapped contents. Used when the
  // write-ahead undo log fails mid-window: the mapped file must stop changing
  // so recovery can still roll it back to the last checkpoint exactly.
  void DetachToHeap() {
    if (!mapped_) {
      return;
    }
    heap_.assign(map_, map_ + size_);
    mapped_ = false;
    map_ = nullptr;
  }

 private:
  std::vector<T> heap_;
  T* map_ = nullptr;
  bool mapped_ = false;
  size_t size_ = 0;
};

}  // namespace detail

class CentroidStore {
 public:
  CentroidStore() = default;

  // Drops all centroids and detaches any file backing (heap mode again), but
  // keeps heap arena allocations, so a store reused across a tuner grid sweep
  // stops paying allocation/fault cost after the first run. The head-dim
  // override (SetHeadDim) survives the reset.
  void Reset();

  // Head-tile width used for vectors of dimensionality |dim|: a quarter of the
  // vector, clamped to [kMinHeadDim, kMaxHeadDim] (and never beyond dim). The
  // tile must be wide enough that the head partial orders candidates reliably
  // (distance mass is spread evenly across dims for near-unit vectors), but a
  // fixed 64-dim tile is half of a dim=128 vector — the head pass then costs
  // half a full scan before pruning starts, which is why bench_cluster_assign
  // saw only ~1.2-1.4x there vs ~6x at dim=1024.
  static size_t HeadDimFor(size_t dim);

  // Overrides the head-tile width chosen at the next first-Add (0 restores the
  // HeadDimFor default). Only meaningful while the store is empty/dimensionless;
  // exists for benchmarking head-tile policies against each other — pruning is
  // exact at any width, so this changes cost, never assignments. A recovered
  // arena's persisted head width takes precedence.
  void SetHeadDim(size_t head_dim) { head_override_ = head_dim; }

  // --- Persistent backing (src/storage/arena_file.h) ---

  // Rebinds the columns onto |file|'s mapped sections. Must be called while
  // the store is empty. An uninitialized file is shaped at the first Add; an
  // initialized one (recovery) is adopted as-is: dim/head_dim/rows/norms come
  // from the file (the caller must have rolled it back to a consistent
  // checkpoint first) and the id->slot map is rebuilt. |undo| (optional)
  // receives a write-ahead pre-image of every row inside the last checkpoint
  // before it is first overwritten, which is what makes recovery exact; null
  // degrades to checkpoint-only durability. Both outlive the store or its
  // next Reset/AttachArena.
  void AttachArena(storage::ArenaFile* file, storage::RecordLogWriter* undo);

  // Publishes the current rows as the new durable checkpoint (msync + header
  // commit) and opens a fresh undo window. Returns the new generation.
  common::Result<uint64_t> CommitCheckpoint();

  // Swaps the undo writer after the caller rotated (truncated) the log.
  void SetUndoWriter(storage::RecordLogWriter* undo) { undo_ = undo; }

  bool file_backed() const { return file_ != nullptr; }

  // Number of active centroids.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  // Dimensionality, fixed by the first Add after construction/Reset (0 = none).
  size_t dim() const { return dim_; }
  // Head-tile width in effect (0 until the first Add fixes the dim).
  size_t head_dim() const { return head_dim_; }

  // Inserts the centroid of cluster |id| (must not already be present).
  void Add(int64_t id, const float* centroid, size_t dim, int64_t size);

  // Whether cluster |id| currently has an active centroid.
  bool Contains(int64_t id) const;

  // Removes cluster |id| (swap-with-last; no-op if absent).
  void Remove(int64_t id);

  // Overwrites cluster |id|'s centroid (after a running-mean update) and
  // refreshes its cached norm. The cluster must be present.
  void Update(int64_t id, const float* centroid);

  // Updates the cached member count of cluster |id| (must be present).
  void SetSize(int64_t id, int64_t size);

  // Row pointer for cluster |id|, or nullptr when it is not in the store. Valid
  // until the next Add/Remove/Reset.
  const float* CentroidOf(int64_t id) const;

  // Nearest centroid to |query| with squared distance <= |threshold_sq|, ties
  // broken toward the smallest cluster id. Returns the cluster id, or -1 when no
  // centroid qualifies; on success *out_dist_sq receives the squared distance.
  int64_t FindNearest(const float* query, size_t dim, float threshold_sq,
                      float* out_dist_sq) const;

  // Invokes |fn(cluster_id)| for every centroid whose exact squared distance
  // to |query| is <= |threshold_sq|, in arbitrary slot order. Unlike
  // FindNearest the bound never tightens, so every qualifying candidate is
  // reported. The incremental boundary merge uses this to find the clusters a
  // moved centroid may now (or may no longer) fold with; callers must treat
  // the enumeration as a may-be-affected set (re-running an exact query on a
  // reported cluster is always safe), not as a nearest-neighbor answer.
  void ForEachWithin(const float* query, size_t dim, float threshold_sq,
                     const std::function<void(int64_t)>& fn) const;

  // Active cluster ids, in slot order (arbitrary).
  const detail::ArenaColumn<int64_t>& ids() const { return ids_; }
  // Cached (non-squared) norms, parallel to ids().
  const detail::ArenaColumn<float>& norms() const { return norms_; }
  // Cached member counts, parallel to ids().
  const detail::ArenaColumn<int64_t>& sizes() const { return sizes_; }

  // Scan statistics since construction/Reset: candidates considered by
  // FindNearest, how many the norm prune skipped, and how many were resolved by
  // the head tile alone (never touched past dim head_dim()).
  int64_t scan_candidates() const { return scan_candidates_; }
  int64_t scan_pruned() const { return scan_pruned_; }
  int64_t scan_head_only() const { return scan_head_only_; }

  // Bounds on the dims per candidate mirrored in the dense head tile.
  static constexpr size_t kMinHeadDim = 16;
  static constexpr size_t kMaxHeadDim = 64;

 private:
  // Slot of cluster |id|, or kNoSlot.
  int32_t SlotOf(int64_t id) const;
  // Exact distance of |query| to slot |s| resumed from its head partial, with
  // early exit at |bound|.
  float ResumeDistance(const float* query, size_t slot, float head_partial,
                       float bound) const;
  // Fixes dim_/head_dim_ at the first Add (shaping the arena file if bound).
  void FixDim(size_t dim);
  // Mapped mode: ensures file capacity for |rows| rows, rebinding the columns
  // when the mapping moved.
  void EnsureRowCapacity(size_t rows);
  // Mapped mode with an undo writer: logs the pre-image of |row| before its
  // first overwrite inside the current checkpoint window. If the write-ahead
  // append fails, the store detaches to heap mode (DetachFromFile) — the
  // mapped file must not change without a durable pre-image — records the
  // error, and fails the next CommitCheckpoint with it. The in-memory working
  // set stays fully correct either way.
  void PrepareRowMutation(size_t row);
  // Copies every column off the mapped file onto the heap and drops the file
  // and undo bindings: on-disk state freezes in a rollback-able window while
  // this attempt finishes in memory.
  void DetachFromFile();
  void BindColumns(size_t rows);

  static constexpr int32_t kNoSlot = -1;

  size_t dim_ = 0;
  size_t head_dim_ = 0;          // HeadDimFor(dim_), or the override.
  size_t head_override_ = 0;     // 0 = derive from dim (HeadDimFor).
  detail::ArenaColumn<float> arena_;     // size() rows of dim() floats.
  detail::ArenaColumn<float> head_;      // size() rows of head_dim_ floats (dense tile).
  detail::ArenaColumn<float> norms_;     // ||centroid||, parallel to ids_.
  detail::ArenaColumn<int64_t> sizes_;   // Member counts, parallel to ids_.
  detail::ArenaColumn<int64_t> ids_;     // Cluster id per slot.
  std::vector<int32_t> slot_of_id_;  // Cluster id -> slot (ids are dense).

  storage::ArenaFile* file_ = nullptr;          // Mapped backing (optional).
  storage::RecordLogWriter* undo_ = nullptr;    // Write-ahead pre-image log.
  size_t checkpoint_rows_ = 0;   // Rows covered by the last durable checkpoint.
  std::vector<bool> dirty_;      // Per checkpointed row: pre-image already logged.
  // First write-ahead failure of this attempt; sticky until Reset. While set,
  // CommitCheckpoint refuses (the durable state cannot advance past it).
  std::optional<common::Error> deferred_error_;

  mutable std::vector<float> head_dist_;  // FindNearest per-slot head partials.
  mutable int64_t scan_candidates_ = 0;
  mutable int64_t scan_pruned_ = 0;
  mutable int64_t scan_head_only_ = 0;
};

}  // namespace focus::cluster

#endif  // FOCUS_SRC_CLUSTER_CENTROID_STORE_H_
