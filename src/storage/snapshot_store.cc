#include "src/storage/snapshot_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/fault_injection.h"

namespace focus::storage {

namespace {

common::Error IoError(const std::string& what, const std::string& path) {
  return common::Error{common::ErrorCode::kIo, what + ": " + path + ": " + std::strerror(errno)};
}

}  // namespace

common::Result<bool> WriteFileAtomic(const std::string& path, const std::string& blob) {
  // The temp file must live in the same directory so the rename is atomic (same
  // filesystem).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return IoError("open for write", tmp);
    }
    if (common::FaultPoint("snapshot.write")) {
      // Leave a torn temp file behind — the atomic-rename protocol must make
      // it invisible (the target path is untouched until the rename).
      out.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
      out.flush();
      return common::Unavailable("injected snapshot.write failure: " + tmp);
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return IoError("write", tmp);
    }
  }
  if (common::FaultPoint("snapshot.rename")) {
    return common::Unavailable("injected snapshot.rename failure: " + path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return common::Error{common::ErrorCode::kIo, "rename " + tmp + " -> " + path + ": " +
                                                     ec.message()};
  }
  return true;
}

common::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoError("open for read", path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return IoError("read", path);
  }
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace focus::storage
