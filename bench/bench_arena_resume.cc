// Crash-resume vs stream replay, and mapped-arena scan parity.
//
// (a) Resume-vs-replay: a volatile deployment that loses an ingest worker must
//     re-cluster the stream from frame 0 to get back to where it crashed; a
//     persistent worker (IngestOptions::persist_dir) pages its mmap'd arenas
//     back in, rolls the undo window back, and re-processes only the frames
//     since the last checkpoint. This bench crashes a persistent ingest at
//     25/50/75% of a stream and measures the wall time of both recovery
//     strategies *to the crash point* — the state-recovery cost — plus the
//     end-to-end completion time, and verifies the resumed run's final index
//     is byte-identical to an uninterrupted persistent run's.
//
// (b) Mapped-vs-heap scan: the staged CentroidStore scan must run at parity on
//     mmap'd sections (the point of the pluggable backing: zero change to the
//     hot path). Same workload as bench_cluster_assign's store path, heap
//     backing vs a fresh arena file, identical assignments required.
//
// Emits BENCH_arena_resume.json next to the binary. FOCUS_BENCH_RESUME_SEC
// overrides the simulated stream duration (default 240 s).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/model_zoo.h"
#include "src/common/feature_vector.h"
#include "src/common/rng.h"
#include "src/core/ingest_pipeline.h"
#include "src/storage/index_codec.h"
#include "src/video/stream_generator.h"

namespace {

namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct ResumeResult {
  double crash_fraction = 0.0;
  int num_shards = 1;
  int64_t crash_frame = 0;
  int64_t resume_frame = 0;       // Checkpoint the resumed run started from.
  // Wall time of the system's own recovery work — classify + cluster (and for
  // resume, state recovery) — with the synthetic frame *generation* sweep
  // subtracted: both strategies pay the same full generator sweep here, but a
  // real deployment reads frames from the camera/vault, so generation is
  // simulator overhead, not system cost.
  double replay_ms = 0.0;         // Re-ingest of [0, crash) from scratch.
  double resume_ms = 0.0;         // Recovery + re-ingest of [checkpoint, crash).
  double speedup = 0.0;           // replay_ms / resume_ms.
  // Re-paid cheap-CNN cost of each strategy (the paper-level cost of losing
  // ingest state: the backlog goes back through the GPU).
  double replay_gpu_millis = 0.0;
  double resume_gpu_millis = 0.0;
  double gpu_ratio = 0.0;
  double complete_resume_ms = 0.0;  // Recovery + ingest of the rest of the stream.
  bool identical = false;         // Resumed final index == uninterrupted index.
};

struct MappedScanResult {
  size_t dim = 0;
  size_t active = 0;
  int64_t assigns = 0;
  double heap_ns_per_assign = 0.0;
  double mapped_ns_per_assign = 0.0;
  double mapped_over_heap = 0.0;  // < 1.10 = parity within 10%.
  bool identical = false;
};

using focus::core::IngestOptions;
using focus::core::IngestResult;
namespace core = focus::core;

core::IngestParams Params() {
  core::IngestParams params;
  params.model = focus::cnn::GenericCheapCandidates(5)[1];
  params.k = 4;
  params.cluster_threshold = 0.6;
  return params;
}

std::string IndexBytes(const IngestResult& result) {
  focus::storage::IndexSnapshotHeader header;
  header.stream_name = "bench";
  header.k = 4;
  header.model = Params().model;
  return focus::storage::EncodeIndexSnapshot(header, result.index);
}

ResumeResult RunResumeConfig(const focus::video::StreamRun& run, const focus::cnn::Cnn& cheap,
                             const fs::path& state_root, double crash_fraction, int num_shards,
                             double generator_baseline_ms) {
  ResumeResult out;
  out.crash_fraction = crash_fraction;
  out.num_shards = num_shards;
  // Offset the crash off the checkpoint grid so the resumed run re-processes a
  // representative half-window, not a lucky near-zero one.
  out.crash_frame =
      static_cast<int64_t>(static_cast<double>(run.num_frames()) * crash_fraction) + 32;

  IngestOptions base;
  base.num_shards = num_shards;
  // A tight checkpoint cadence (~2 s of video) keeps the re-processed window
  // small — the cadence cost during normal operation is what
  // complete_resume_ms pays, and it stays within noise of the volatile run.
  base.checkpoint_every_frames = 64;
  // Exact-mode assignment: the scan-bound regime where ingest state is
  // expensive to rebuild (the fast path would hide most of the re-clustering
  // cost behind its per-object cache).
  base.cluster_mode = focus::cluster::ClustererOptions::Mode::kExact;

  // Reference: uninterrupted persistent run (also the identical-index oracle).
  const fs::path uninterrupted_dir = state_root / "uninterrupted";
  fs::remove_all(uninterrupted_dir);
  IngestOptions opts = base;
  opts.persist_dir = uninterrupted_dir.string();
  const IngestResult uninterrupted = core::RunIngestResumable(run, cheap, Params(), opts);

  // Crash a persistent run at the crash point.
  const fs::path crashed_dir = state_root / "crashed";
  fs::remove_all(crashed_dir);
  opts = base;
  opts.persist_dir = crashed_dir.string();
  opts.crash_after_frames = out.crash_frame;
  core::RunIngestResumable(run, cheap, Params(), opts);

  // Both strategies are idempotent (replay is stateless; a crashed resume
  // re-recovers the same checkpoint), so the two are measured in interleaved
  // repetitions and each side reports its fastest rep. Timing noise on this
  // class of VM is strictly additive (scheduler preemption, virtio writeback
  // stalls), so best-of-N is the standard estimator of the true cost and the
  // headline speedup is min(replay) / min(resume).
  constexpr int kReps = 5;

  IngestOptions replay = base;
  replay.limit_sec = static_cast<double>(out.crash_frame) / run.fps();

  // A zero-frame probe run discovers the recovered position and the
  // at-checkpoint counters (recovery is idempotent — it re-seals the same
  // checkpoint).
  opts = base;
  opts.persist_dir = crashed_dir.string();
  opts.crash_after_frames = 0;
  const IngestResult probe = core::RunIngestResumable(run, cheap, Params(), opts);
  out.resume_frame = probe.resumed_from_frame;
  opts.crash_after_frames = out.crash_frame - out.resume_frame;

  // The setup runs above msync'd ~a hundred checkpoints; drain that writeback
  // debt before timing (it otherwise lands on whichever reps the kernel
  // picks), then warm both paths once untimed.
  ::sync();
  core::RunIngest(run, cheap, Params(), replay);
  core::RunIngestResumable(run, cheap, Params(), opts);

  (void)generator_baseline_ms;  // Reported in the banner; reps re-measure it.
  for (int rep = 0; rep < kReps; ++rep) {
    // Each rep re-measures the no-op generator sweep and subtracts *that*:
    // the sweep's cost drifts with process heap state, so a startup-time
    // baseline under-subtracts later in the run and the leftover constant
    // compresses the ratio. Net times are floored at 0.5 ms — the measured
    // cost of a clean OpenOrRecover alone, and the resolution limit of the
    // subtraction; recovery cannot be cheaper than its own state read.
    constexpr double kFloorMs = 0.5;
    auto t0 = Clock::now();
    run.ForEachFrame(
        [](focus::common::FrameIndex, const std::vector<focus::video::Detection>&) {});
    const double sweep_ms = MillisSince(t0);
    // Replay: a volatile deployment re-classifies and re-clusters [0, crash)
    // from scratch.
    t0 = Clock::now();
    const IngestResult replay_result = core::RunIngest(run, cheap, Params(), replay);
    const double replay_ms = std::max(kFloorMs, MillisSince(t0) - sweep_ms);
    out.replay_gpu_millis = replay_result.gpu_millis;
    // Resume: recovery + the re-processed checkpoint window.
    t0 = Clock::now();
    const IngestResult to_crash = core::RunIngestResumable(run, cheap, Params(), opts);
    const double resume_ms = std::max(kFloorMs, MillisSince(t0) - sweep_ms);
    // Counters are cumulative (checkpoint + window): the window's GPU bill is
    // what resume actually re-pays.
    out.resume_gpu_millis = to_crash.gpu_millis - probe.gpu_millis;

    out.replay_ms = rep == 0 ? replay_ms : std::min(out.replay_ms, replay_ms);
    out.resume_ms = rep == 0 ? resume_ms : std::min(out.resume_ms, resume_ms);
  }
  out.speedup = out.resume_ms > 0.0 ? out.replay_ms / out.resume_ms : 0.0;
  out.gpu_ratio =
      out.resume_gpu_millis > 0.0 ? out.replay_gpu_millis / out.resume_gpu_millis : 0.0;

  // And run the resumed stream to completion: the final index must be
  // byte-identical to the uninterrupted run's.
  opts.crash_after_frames = -1;
  const auto t0 = Clock::now();
  const IngestResult resumed = core::RunIngestResumable(run, cheap, Params(), opts);
  out.complete_resume_ms = MillisSince(t0);
  out.identical = IndexBytes(resumed) == IndexBytes(uninterrupted) &&
                  resumed.gpu_millis == uninterrupted.gpu_millis &&
                  resumed.detections == uninterrupted.detections;

  fs::remove_all(uninterrupted_dir);
  fs::remove_all(crashed_dir);
  return out;
}

MappedScanResult RunMappedScanConfig(const fs::path& state_root, size_t dim, size_t active,
                                     int64_t assigns) {
  using focus::cluster::ClustererOptions;
  using focus::cluster::IncrementalClusterer;
  using focus::common::FeatureVec;

  MappedScanResult out;
  out.dim = dim;
  out.active = active;
  out.assigns = assigns;

  // bench_cluster_assign's steady-state geometry: noisy observations of
  // well-separated unit archetypes, full scan per assignment (kExact).
  focus::common::Pcg32 rng(focus::common::DeriveSeed(7, dim * 131 + active));
  std::vector<FeatureVec> archetypes;
  archetypes.reserve(active);
  for (size_t i = 0; i < active; ++i) {
    archetypes.push_back(focus::common::RandomUnitVector(dim, rng));
  }
  std::vector<FeatureVec> stream;
  stream.reserve(active + static_cast<size_t>(assigns));
  for (size_t i = 0; i < active; ++i) {
    stream.push_back(focus::common::PerturbedUnitVector(archetypes[i], 0.2, rng));
  }
  for (int64_t i = 0; i < assigns; ++i) {
    stream.push_back(
        focus::common::PerturbedUnitVector(archetypes[rng.Next() % active], 0.2, rng));
  }

  ClustererOptions copts;
  copts.threshold = 0.5;
  copts.max_active = active;
  copts.mode = ClustererOptions::Mode::kExact;

  auto drive = [&](IncrementalClusterer& clusterer, std::vector<int64_t>* assignments) {
    focus::video::Detection d;
    assignments->resize(stream.size());
    for (size_t i = 0; i < active; ++i) {
      d.object_id = static_cast<int64_t>(i);
      d.frame = static_cast<int64_t>(i);
      (*assignments)[i] = clusterer.Add(d, stream[i]);
    }
    const auto t0 = Clock::now();
    for (size_t i = active; i < stream.size(); ++i) {
      d.object_id = static_cast<int64_t>(i);
      d.frame = static_cast<int64_t>(i);
      (*assignments)[i] = clusterer.Add(d, stream[i]);
    }
    return MillisSince(t0) * 1e6 / static_cast<double>(assigns);
  };

  // Fresh instances per repetition (the clusterer is stateful), best-of-3:
  // single-pass numbers at these scales carry VM scheduler + first-touch
  // page-fault noise on both backings.
  constexpr int kReps = 3;
  std::vector<int64_t> heap_assignments;
  std::vector<int64_t> mapped_assignments;
  for (int rep = 0; rep < kReps; ++rep) {
    IncrementalClusterer heap(copts);
    const double ns = drive(heap, &heap_assignments);
    out.heap_ns_per_assign = rep == 0 ? ns : std::min(out.heap_ns_per_assign, ns);
  }
  for (int rep = 0; rep < kReps; ++rep) {
    const fs::path dir = state_root / ("mapped-" + std::to_string(dim));
    fs::remove_all(dir);
    IncrementalClusterer mapped(copts);
    auto attached = mapped.OpenOrRecover(dir.string(), "store");
    if (!attached.ok()) {
      std::fprintf(stderr, "mapped attach failed: %s\n", attached.error().message.c_str());
      return out;
    }
    const double ns = drive(mapped, &mapped_assignments);
    out.mapped_ns_per_assign = rep == 0 ? ns : std::min(out.mapped_ns_per_assign, ns);
    fs::remove_all(dir);
  }
  out.mapped_over_heap =
      out.heap_ns_per_assign > 0.0 ? out.mapped_ns_per_assign / out.heap_ns_per_assign : 0.0;
  out.identical = heap_assignments == mapped_assignments;
  return out;
}

}  // namespace

int main() {
  double duration_sec = 240.0;
  if (const char* env = std::getenv("FOCUS_BENCH_RESUME_SEC")) {
    duration_sec = std::atof(env);
  }

  const fs::path state_root = fs::current_path() / "bench_arena_resume_state";
  fs::remove_all(state_root);
  fs::create_directories(state_root);

  focus::video::ClassCatalog catalog(17);
  focus::video::StreamProfile profile;
  if (!focus::video::FindProfile("auburn_c", &profile)) {
    std::fprintf(stderr, "FAIL: profile auburn_c missing\n");
    return 1;
  }
  focus::video::StreamRun run(&catalog, profile, duration_sec, 30.0, 11);
  focus::cnn::Cnn cheap(Params().model, &catalog);

  // The synthetic generator sweeps every frame regardless of what the
  // callback consumes; measure that fixed simulator overhead (best of 3) and
  // subtract it from both strategies — a real worker reads frames, it does
  // not re-synthesize the world.
  double generator_baseline_ms = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = Clock::now();
    run.ForEachFrame([](focus::common::FrameIndex, const std::vector<focus::video::Detection>&) {});
    const double ms = MillisSince(t0);
    generator_baseline_ms = i == 0 ? ms : std::min(generator_baseline_ms, ms);
  }

  std::printf(
      "crash-resume vs stream replay (%.0f s stream, checkpoint every 64 frames, "
      "generator sweep %.1f ms subtracted, speedup = best of %d interleaved reps)\n",
      duration_sec, generator_baseline_ms, 5);
  std::printf("%6s %7s %12s %13s %11s %11s %8s %11s %8s %13s %10s\n", "crash", "shards",
              "crash_frame", "resume_frame", "replay ms", "resume ms", "speedup", "gpu ms",
              "gpu-x", "complete ms", "identical");

  std::vector<ResumeResult> resume_results;
  bool ok = true;
  // Warmup pass: the first config otherwise pays one-time costs (binary
  // paging, allocator growth, stream-object materialization) that would skew
  // whichever crash fraction happens to run first.
  RunResumeConfig(run, cheap, state_root, 0.5, 1, generator_baseline_ms);
  for (const auto& [fraction, shards] :
       std::vector<std::pair<double, int>>{{0.25, 1}, {0.5, 1}, {0.75, 1}, {0.5, 4}}) {
    ResumeResult r =
        RunResumeConfig(run, cheap, state_root, fraction, shards, generator_baseline_ms);
    ok = ok && r.identical;
    std::printf("%5.0f%% %7d %12lld %13lld %11.1f %11.1f %7.1fx %11.0f %7.1fx %13.1f %10s\n",
                100.0 * r.crash_fraction, r.num_shards,
                static_cast<long long>(r.crash_frame), static_cast<long long>(r.resume_frame),
                r.replay_ms, r.resume_ms, r.speedup, r.replay_gpu_millis, r.gpu_ratio,
                r.complete_resume_ms, r.identical ? "yes" : "NO");
    resume_results.push_back(r);
  }

  std::printf("\nmapped-arena vs heap FindNearest (exact full scan)\n");
  std::printf("%6s %7s %9s %13s %14s %12s %10s\n", "dim", "active", "assigns", "heap ns/add",
              "mapped ns/add", "mapped/heap", "identical");
  std::vector<MappedScanResult> scan_results;
  for (const auto& [dim, active] :
       std::vector<std::pair<size_t, size_t>>{{128, 4096}, {512, 4096}, {1024, 4096}}) {
    MappedScanResult r = RunMappedScanConfig(state_root, dim, active, 2000);
    ok = ok && r.identical;
    std::printf("%6zu %7zu %9lld %13.0f %14.0f %11.3fx %10s\n", r.dim, r.active,
                static_cast<long long>(r.assigns), r.heap_ns_per_assign,
                r.mapped_ns_per_assign, r.mapped_over_heap, r.identical ? "yes" : "NO");
    scan_results.push_back(r);
  }
  fs::remove_all(state_root);

  FILE* f = std::fopen("BENCH_arena_resume.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"arena_resume\",\n  \"resume\": [\n");
    for (size_t i = 0; i < resume_results.size(); ++i) {
      const ResumeResult& r = resume_results[i];
      std::fprintf(f,
                   "    {\"crash_fraction\": %.2f, \"num_shards\": %d, \"crash_frame\": %lld, "
                   "\"resume_frame\": %lld, \"replay_ms\": %.2f, \"resume_ms\": %.2f, "
                   "\"speedup\": %.3f, \"replay_gpu_millis\": %.1f, "
                   "\"resume_gpu_millis\": %.1f, \"gpu_ratio\": %.3f, "
                   "\"complete_resume_ms\": %.2f, \"identical\": %s}%s\n",
                   r.crash_fraction, r.num_shards, static_cast<long long>(r.crash_frame),
                   static_cast<long long>(r.resume_frame), r.replay_ms, r.resume_ms, r.speedup,
                   r.replay_gpu_millis, r.resume_gpu_millis, r.gpu_ratio,
                   r.complete_resume_ms, r.identical ? "true" : "false",
                   i + 1 < resume_results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"mapped_scan\": [\n");
    for (size_t i = 0; i < scan_results.size(); ++i) {
      const MappedScanResult& r = scan_results[i];
      std::fprintf(f,
                   "    {\"dim\": %zu, \"active\": %zu, \"assigns\": %lld, "
                   "\"heap_ns_per_assign\": %.1f, \"mapped_ns_per_assign\": %.1f, "
                   "\"mapped_over_heap\": %.4f, \"identical\": %s}%s\n",
                   r.dim, r.active, static_cast<long long>(r.assigns), r.heap_ns_per_assign,
                   r.mapped_ns_per_assign, r.mapped_over_heap, r.identical ? "true" : "false",
                   i + 1 < scan_results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_arena_resume.json\n");
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: resumed state diverged from the uninterrupted reference\n");
    return 1;
  }
  return 0;
}
