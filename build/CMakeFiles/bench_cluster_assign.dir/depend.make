# Empty dependencies file for bench_cluster_assign.
# This may be replaced when dependencies are built.
