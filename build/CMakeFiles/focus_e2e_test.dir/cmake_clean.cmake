file(REMOVE_RECURSE
  "CMakeFiles/focus_e2e_test.dir/tests/focus_e2e_test.cc.o"
  "CMakeFiles/focus_e2e_test.dir/tests/focus_e2e_test.cc.o.d"
  "focus_e2e_test"
  "focus_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
