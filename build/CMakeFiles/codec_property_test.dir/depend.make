# Empty dependencies file for codec_property_test.
# This may be replaced when dependencies are built.
