file(REMOVE_RECURSE
  "CMakeFiles/simd_distance_test.dir/tests/simd_distance_test.cc.o"
  "CMakeFiles/simd_distance_test.dir/tests/simd_distance_test.cc.o.d"
  "simd_distance_test"
  "simd_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
