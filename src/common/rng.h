// Deterministic pseudo-random number generation for the Focus simulator.
//
// Everything in this repository derives randomness from explicit 64-bit seeds so that
// every experiment is reproducible bit-for-bit. We use PCG32 (O'Neill, 2014) as the
// core generator because it is small, fast, and has excellent statistical quality for
// simulation workloads, and SplitMix64 to derive independent sub-seeds from a root
// seed (e.g., one sub-stream per video stream, per model, per object).
#ifndef FOCUS_SRC_COMMON_RNG_H_
#define FOCUS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace focus::common {

// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value. Used both as a
// stand-alone hash and to expand a root seed into independent sub-seeds.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// PCG32: 64-bit state, 32-bit output, period 2^64 per stream.
class Pcg32 {
 public:
  using result_type = uint32_t;

  // Seeds the generator. |seq| selects one of 2^63 independent streams.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t seq = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (seq << 1u) | 1u;
    Next();
    state_ += SplitMix64(seed);
    Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint32_t>::max(); }

  result_type operator()() { return Next(); }

  uint32_t Next() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  uint64_t Next64() { return (static_cast<uint64_t>(Next()) << 32) | Next(); }

  // Uniform double in [0, 1).
  double NextDouble() { return Next() * (1.0 / 4294967296.0); }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). Uses Lemire's unbiased bounded method.
  uint32_t NextBounded(uint32_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  // Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Poisson-distributed count (Knuth for small means, normal approximation for large).
  uint32_t NextPoisson(double mean);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Derives an independent child seed from a parent seed and a stream label. Labels are
// arbitrary 64-bit tags (e.g., a hashed name plus an index).
constexpr uint64_t DeriveSeed(uint64_t parent, uint64_t label) {
  return SplitMix64(parent ^ SplitMix64(label + 0x632be59bd9b4e019ULL));
}

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_RNG_H_
