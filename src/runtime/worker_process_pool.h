// Crash-isolated query workers: a pool of forked child processes, each serving
// length-framed request/response RPCs over a private socketpair.
//
// The shm epoch plane (src/shm/epoch_plane.h) makes snapshot data readable
// from any process; this pool supplies the processes. Each worker is a fork of
// the parent running a caller-provided handler loop, so a worker that
// crashes, leaks, or is SIGKILL'd takes down exactly one process: the parent
// sees a closed socket (kUnavailable) and the ingest process at most one stale
// pin, reclaimed on its next publish. Nothing here knows about queries — the
// handler is an opaque bytes -> bytes function, which keeps the pool reusable
// and the crash-isolation tests honest (they kill real processes).
//
// Protocol: u32 little-endian length prefix + payload, one in flight per
// worker (Call is synchronous). Frames are capped at kMaxFrameBytes; a length
// prefix beyond the cap or a short read mid-frame (torn frame from a mid-write
// crash) is a typed kIo error, never a hang or an unbounded allocation. Calls
// may carry a deadline: the parent's socket end is non-blocking and every
// send/recv waits through poll(), so a hung worker yields a typed kTimeout
// instead of blocking the caller. EOF on the parent side of the socket is the
// shutdown signal; the child answers requests until EOF, then _exit(0).
//
// This layer is mechanism only: it reports typed errors and can Respawn a
// slot, but never decides to. Supervision — kill-on-timeout, restart budgets,
// sibling retry, degradation — lives in SupervisedWorkerPool
// (src/runtime/supervised_worker_pool.h).
//
// Fault sites (docs/robustness.md): `proc.spawn` fires in the parent on
// Start/Respawn (fork denied), `proc.rpc.send` / `proc.rpc.recv` fire in the
// parent around a Call's two halves, and `proc.handler` fires in the child,
// which then writes a deliberately torn frame and _exits — the seeded stand-in
// for a handler crashing mid-reply.
#ifndef FOCUS_SRC_RUNTIME_WORKER_PROCESS_POOL_H_
#define FOCUS_SRC_RUNTIME_WORKER_PROCESS_POOL_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace focus::runtime {

// Upper bound on one frame's payload. Large enough for any encoded epoch
// answer, small enough that a corrupt length prefix can never OOM the parent.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

// Outcome of one framed send/recv. kClosed is an orderly peer death (EOF
// before any byte of a frame); kTorn is EOF or reset *mid-frame* — the peer
// died while writing, and the bytes read so far must not be trusted.
enum class FrameStatus { kOk, kClosed, kTorn, kOversize, kTimeout };

const char* FrameStatusName(FrameStatus status);

// Absolute wall-clock budget for one Call, shared by its send and recv halves.
class CallDeadline {
 public:
  static CallDeadline None() { return CallDeadline{}; }
  // millis < 0 means no deadline.
  static CallDeadline After(int millis) {
    CallDeadline d;
    if (millis >= 0) {
      d.enabled_ = true;
      d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(millis);
    }
    return d;
  }

  bool enabled() const { return enabled_; }
  // Whole milliseconds left (rounded up), clamped to >= 0; -1 when disabled.
  int remaining_millis() const;

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point at_{};
};

// Wire helpers, exposed so the frame-handling regression tests can hammer
// torn/oversize/closed cases over a raw socketpair. The fd may be blocking or
// non-blocking; waits go through poll() bounded by |deadline|.
FrameStatus SendFrame(int fd, const std::string& payload, const CallDeadline& deadline);
FrameStatus RecvFrame(int fd, std::string* payload, const CallDeadline& deadline);

class WorkerProcessPool {
 public:
  // Serves one request; runs inside the child process. Anything the handler
  // captures is a fork-time copy — workers share nothing with the parent
  // except what lives in shared memory.
  using Handler = std::function<std::string(const std::string&)>;

  WorkerProcessPool() = default;
  ~WorkerProcessPool();

  WorkerProcessPool(const WorkerProcessPool&) = delete;
  WorkerProcessPool& operator=(const WorkerProcessPool&) = delete;

  // Forks |num_workers| children, each looping |handler| over its socket.
  // kFailedPrecondition if already started, kInvalidArgument if
  // num_workers <= 0. The handler is retained for Respawn.
  common::Result<std::monostate> Start(int num_workers, Handler handler);

  // Sends |request| to worker |index| and waits for its response, at most
  // |deadline_millis| (< 0 = forever) across both halves. Typed errors:
  //   kFailedPrecondition  pool not running (never started, or shut down)
  //   kInvalidArgument     index out of range, or request beyond kMaxFrameBytes
  //   kUnavailable         worker dead (crashed, killed, or slot respawn-failed)
  //   kIo                  torn or oversized frame — the reply cannot be trusted
  //   kTimeout             deadline exceeded with the worker still occupied
  // After kIo or kTimeout the conversation is poisoned (bytes may be stranded
  // in the socket): the worker must be Kill'd and Respawn'd before this slot
  // is used again. SupervisedWorkerPool owns that policy.
  common::Result<std::string> Call(int index, const std::string& request,
                                   int deadline_millis = -1);

  // Whether the worker process is still alive (waitpid WNOHANG). Out-of-range
  // index reads false.
  bool Alive(int index);

  // SIGKILLs the worker and reaps it — the crash the isolation tests inject.
  // No-op on an already-reaped worker or an out-of-range index.
  void Kill(int index);

  // Replaces slot |index| with a freshly forked worker running the Start-time
  // handler. Any previous occupant is SIGKILLed and reaped first. On failure
  // the slot is left empty (Call reads kUnavailable) and may be retried.
  common::Result<std::monostate> Respawn(int index);

  // -1 on an out-of-range index.
  pid_t worker_pid(int index) const;
  int size() const { return static_cast<int>(workers_.size()); }

  // Closes every socket (children see EOF and _exit(0)) and reaps them.
  void Shutdown();

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;        // Parent's end of the socketpair.
    bool reaped = false;
  };

  // Forks a worker into the (empty) slot |index|.
  common::Result<std::monostate> SpawnAt(int index);

  std::vector<Worker> workers_;
  Handler handler_;
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_WORKER_PROCESS_POOL_H_
