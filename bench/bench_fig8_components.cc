// Figure 8: breakdown of where Focus's gains come from, over 9 representative
// streams: (1) a generic compressed model, (2) + per-stream specialization,
// (3) + clustering. All design points keep the top-K index and GT-CNN verification
// and are screened against the same 95/95 accuracy targets. The configuration grid is
// measured once per stream; design points (1) and (2) are selections over subsets of
// that grid.
//
// Paper checkpoints: compressed models alone help but are not the main source;
// specialization brings ingest to 43x-98x cheaper and queries 5x-25x faster;
// clustering multiplies query speed (up to 56x) at negligible ingest cost.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/parameter_tuner.h"

namespace {

using namespace focus;

// Query speedup without clustering: candidates are the individual detections whose
// ingest-CNN top-K contains the queried class, each verified with the GT-CNN.
double NoClusterQuerySpeedup(const video::StreamRun& run, const cnn::Cnn& cheap, int k,
                             const std::vector<common::ClassId>& dominant) {
  std::map<common::ClassId, int64_t> candidates;
  int64_t detections = 0;
  run.ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    for (const video::Detection& d : dets) {
      ++detections;
      cnn::TopKResult topk = cheap.Classify(d, k);
      for (common::ClassId cls : dominant) {
        if (topk.Contains(cheap.MapTrueLabel(cls))) {
          ++candidates[cls];
        }
      }
    }
  });
  if (detections == 0 || dominant.empty()) {
    return 0.0;
  }
  double mean_candidates = 0.0;
  for (common::ClassId cls : dominant) {
    mean_candidates += static_cast<double>(candidates[cls]);
  }
  mean_candidates /= static_cast<double>(dominant.size());
  return mean_candidates > 0.0 ? static_cast<double>(detections) / mean_candidates : 0.0;
}

}  // namespace

int main() {
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  bench::PrintHeader("Figure 8: Effect of Focus components (ingest cheaper-by / query faster-by)");
  std::printf("%-12s | %12s %12s | %12s %12s | %12s %12s\n", "Stream", "Compr.ing",
              "Compr.qry", "+Spec.ing", "+Spec.qry", "+Clust.ing", "+Clust.qry");

  std::vector<double> sums(6, 0.0);
  int count = 0;
  for (const std::string& name : video::RepresentativeNineStreams()) {
    video::StreamRun run = bench::MakeRun(catalog, name, config);
    video::StreamProfile profile;
    video::FindProfile(name, &profile);
    core::ParameterTuner tuner(&catalog, &gt, {});
    std::vector<core::EvaluatedConfig> grid =
        tuner.EvaluateGrid(run, profile.appearance_variability);

    // Dominant classes for the no-clustering query sweeps.
    cnn::SegmentGroundTruth truth(run, gt);
    std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 12);

    // (1) Best generic compressed configuration.
    std::vector<core::EvaluatedConfig> generic_only;
    for (const core::EvaluatedConfig& c : grid) {
      if (!c.params.model.specialized()) {
        generic_only.push_back(c);
      }
    }
    core::TuningResult compressed = core::SelectFromEvaluated(
        generic_only, core::AccuracyTarget{}, core::Policy::kBalance);
    // (2)+(3) Best overall (specialized) configuration.
    core::TuningResult spec =
        core::SelectFromEvaluated(grid, core::AccuracyTarget{}, core::Policy::kBalance);
    if (!compressed.found || !spec.found) {
      std::printf("%-12s | (no viable configuration)\n", name.c_str());
      continue;
    }

    bench::StreamOutcome full =
        bench::DeployConfig(catalog, run, spec.chosen().params, gt, core::Policy::kBalance);
    cnn::Cnn compressed_cnn(compressed.chosen().params.model, &catalog);
    cnn::Cnn spec_cnn(spec.chosen().params.model, &catalog);
    double gt_all = full.gt_all_millis;
    double compressed_ingest =
        gt_all > 0 ? 1.0 / (compressed.chosen().ingest_cost_norm > 0
                                ? compressed.chosen().ingest_cost_norm
                                : 1.0)
                   : 0.0;
    double compressed_query =
        NoClusterQuerySpeedup(run, compressed_cnn, compressed.chosen().params.k, dominant);
    double spec_query = NoClusterQuerySpeedup(run, spec_cnn, spec.chosen().params.k, dominant);

    std::printf("%-12s | %11.1fx %11.1fx | %11.1fx %11.1fx | %11.1fx %11.1fx\n", name.c_str(),
                compressed_ingest, compressed_query, full.ingest_cheaper_by, spec_query,
                full.ingest_cheaper_by, full.query_faster_by);
    sums[0] += compressed_ingest;
    sums[1] += compressed_query;
    sums[2] += full.ingest_cheaper_by;
    sums[3] += spec_query;
    sums[4] += full.ingest_cheaper_by;
    sums[5] += full.query_faster_by;
    ++count;
  }
  if (count > 0) {
    std::printf("%-12s | %11.1fx %11.1fx | %11.1fx %11.1fx | %11.1fx %11.1fx\n", "Average",
                sums[0] / count, sums[1] / count, sums[2] / count, sums[3] / count,
                sums[4] / count, sums[5] / count);
  }
  std::printf("\nPaper: compressed alone is modest; specialization is the main ingest win and\n"
              "speeds queries 5x-25x; clustering adds up to 56x query speedup for free.\n");
  return 0;
}
