# Empty dependencies file for bench_sec67_query_rates.
# This may be replaced when dependencies are built.
