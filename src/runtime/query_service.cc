#include "src/runtime/query_service.h"

#include <algorithm>

#include "src/common/logging.h"

namespace focus::runtime {

QueryService::QueryService(QueryServiceOptions options, MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics != nullptr ? metrics : &GlobalMetrics()),
      cluster_(options.num_gpus) {}

QueryExecution QueryService::Execute(const QueryRequest& request) {
  return ScheduleAt(request, cluster_.EarliestFree());
}

std::vector<QueryExecution> QueryService::ExecuteConcurrently(
    const std::vector<QueryRequest>& requests) {
  // All requests share one submission instant; interleaving happens through the
  // cluster's least-loaded dispatch, so earlier requests in the vector get the first
  // slots deterministically.
  const common::GpuMillis submit = cluster_.EarliestFree();
  std::vector<QueryExecution> executions;
  executions.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    executions.push_back(ScheduleAt(request, submit));
  }
  return executions;
}

void QueryService::ResetCluster() { cluster_.Reset(); }

QueryExecution QueryService::ScheduleAt(const QueryRequest& request,
                                        common::GpuMillis submit_millis) {
  FOCUS_CHECK(request.stream != nullptr);
  QueryExecution execution;
  execution.submit_millis = submit_millis;
  execution.result = request.stream->Query(request.cls, request.kx, request.range);

  // The query's GPU work is its centroid classifications, each an independent GT-CNN
  // inference fanned out across the fleet.
  const common::GpuMillis cost_each = request.stream->gt_cnn().inference_cost_millis();
  execution.finish_millis = cluster_.SubmitBatch(
      submit_millis, execution.result.centroids_classified, cost_each);

  metrics_->IncrementCounter("query.requests");
  metrics_->IncrementCounter("query.centroids_classified",
                             execution.result.centroids_classified);
  metrics_->Observe("query.latency_millis", execution.latency_millis());
  return execution;
}

}  // namespace focus::runtime
