// Tests for the mmap-backed arena file: shape/commit round trips through
// reopen, growth preserving rows, torn-header fallback, undo-record codec, and
// RollBackTo restoring a checkpoint exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/storage/arena_file.h"
#include "src/storage/record_log.h"

namespace focus::storage {
namespace {

namespace fs = std::filesystem;

class ArenaFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("arena_file_test_" + std::to_string(::getpid()) +
                                        "_" + ::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

std::vector<float> Row(size_t dim, float seed) {
  std::vector<float> v(dim);
  for (size_t i = 0; i < dim; ++i) {
    v[i] = seed + static_cast<float>(i) * 0.25f;
  }
  return v;
}

TEST_F(ArenaFileTest, InitializeCommitReopen) {
  const std::string path = Path("a.arena");
  {
    auto file = ArenaFile::Open(path);
    ASSERT_TRUE(file.ok());
    EXPECT_FALSE((*file)->initialized());
    ASSERT_TRUE((*file)->Initialize(8, 4).ok());
    EXPECT_EQ((*file)->dim(), 8u);
    EXPECT_EQ((*file)->head_dim(), 4u);
    EXPECT_EQ((*file)->generation(), 0u);

    const std::vector<float> r0 = Row(8, 1.0f);
    const std::vector<float> r1 = Row(8, 100.0f);
    (*file)->WriteRow(0, 7, 3, 1.5f, r0.data());
    (*file)->WriteRow(1, 9, 5, 2.5f, r1.data());
    auto committed = (*file)->Commit(2);
    ASSERT_TRUE(committed.ok());
    EXPECT_EQ(*committed, 1u);
  }
  auto file = ArenaFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->initialized());
  EXPECT_EQ((*file)->dim(), 8u);
  EXPECT_EQ((*file)->head_dim(), 4u);
  EXPECT_EQ((*file)->committed_rows(), 2u);
  EXPECT_EQ((*file)->generation(), 1u);
  EXPECT_EQ((*file)->ids()[0], 7);
  EXPECT_EQ((*file)->ids()[1], 9);
  EXPECT_EQ((*file)->sizes()[1], 5);
  EXPECT_EQ((*file)->norms()[0], 1.5f);
  const std::vector<float> r1 = Row(8, 100.0f);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*file)->arena()[8 + i], r1[i]);
  }
  // The head tile mirrors the centroid prefix.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*file)->head()[4 + i], r1[i]);
  }
}

TEST_F(ArenaFileTest, GrowthPreservesRowsAcrossRemapAndReopen) {
  const std::string path = Path("grow.arena");
  constexpr size_t kDim = 16;
  constexpr size_t kRows = 500;  // Forces several capacity doublings from 64.
  {
    auto file = ArenaFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Initialize(kDim, 8).ok());
    for (size_t r = 0; r < kRows; ++r) {
      ASSERT_TRUE((*file)->Reserve(r + 1).ok());
      const std::vector<float> row = Row(kDim, static_cast<float>(r));
      (*file)->WriteRow(r, static_cast<int64_t>(r), static_cast<int64_t>(r) + 1,
                        static_cast<float>(r) * 0.5f, row.data());
    }
    EXPECT_GE((*file)->capacity_rows(), kRows);
    ASSERT_TRUE((*file)->Commit(kRows).ok());
  }
  auto file = ArenaFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ((*file)->committed_rows(), kRows);
  for (size_t r = 0; r < kRows; ++r) {
    ASSERT_EQ((*file)->ids()[r], static_cast<int64_t>(r));
    ASSERT_EQ((*file)->sizes()[r], static_cast<int64_t>(r) + 1);
    ASSERT_EQ((*file)->norms()[r], static_cast<float>(r) * 0.5f);
    const std::vector<float> row = Row(kDim, static_cast<float>(r));
    for (size_t i = 0; i < kDim; ++i) {
      ASSERT_EQ((*file)->arena()[r * kDim + i], row[i]) << "row " << r;
    }
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_EQ((*file)->head()[r * 8 + i], row[i]) << "row " << r;
    }
  }
}

TEST_F(ArenaFileTest, TornHeaderSlotFallsBackToOlderGeneration) {
  const std::string path = Path("torn.arena");
  {
    auto file = ArenaFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Initialize(4, 4).ok());
    const std::vector<float> r0 = Row(4, 1.0f);
    (*file)->WriteRow(0, 0, 1, 1.0f, r0.data());
    ASSERT_TRUE((*file)->Commit(1).ok());  // Generation 1.
    const std::vector<float> r1 = Row(4, 2.0f);
    (*file)->WriteRow(1, 1, 1, 1.0f, r1.data());
    ASSERT_TRUE((*file)->Commit(2).ok());  // Generation 2, the other slot.
  }
  // Tear each slot in turn (on a fresh copy each time): tearing the slot that
  // carries generation 2 must fall back to generation 1; tearing the other
  // leaves generation 2 intact. Either way Open never fails.
  const std::string backup = Path("torn.arena.bak");
  fs::copy_file(path, backup);
  auto generation_after_scribble = [&](size_t slot) -> uint64_t {
    fs::copy_file(backup, path, fs::copy_options::overwrite_existing);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(slot * ArenaFile::kHeaderSlotBytes) + 16);
    const char garbage[8] = {42, 42, 42, 42, 42, 42, 42, 42};
    f.write(garbage, sizeof(garbage));
    f.close();
    auto after = ArenaFile::Open(path);
    EXPECT_TRUE(after.ok());
    if (!after.ok()) {
      return 0;
    }
    // The fallback state must be internally consistent: generation 2 committed
    // two rows, generation 1 committed one.
    EXPECT_EQ((*after)->committed_rows(), (*after)->generation());
    return (*after)->generation();
  };
  const uint64_t a = generation_after_scribble(0);
  const uint64_t b = generation_after_scribble(1);
  EXPECT_EQ(std::min(a, b), 1u);
  EXPECT_EQ(std::max(a, b), 2u);
}

TEST_F(ArenaFileTest, UndoRecordCodecRoundTrips) {
  ArenaUndo marker;
  marker.kind = ArenaUndo::Kind::kMarker;
  marker.generation = 42;
  marker.rows = 17;
  ArenaUndo out;
  ASSERT_TRUE(ArenaUndo::Decode(marker.Encode(), &out));
  EXPECT_EQ(out.kind, ArenaUndo::Kind::kMarker);
  EXPECT_EQ(out.generation, 42u);
  EXPECT_EQ(out.rows, 17u);

  ArenaUndo row;
  row.kind = ArenaUndo::Kind::kRow;
  row.row = 5;
  row.id = -3;
  row.size = 99;
  row.norm = 1.25f;
  row.centroid = Row(6, 3.0f);
  ASSERT_TRUE(ArenaUndo::Decode(row.Encode(), &out));
  EXPECT_EQ(out.kind, ArenaUndo::Kind::kRow);
  EXPECT_EQ(out.row, 5u);
  EXPECT_EQ(out.id, -3);
  EXPECT_EQ(out.size, 99);
  EXPECT_EQ(out.norm, 1.25f);
  EXPECT_EQ(out.centroid, row.centroid);

  EXPECT_FALSE(ArenaUndo::Decode("", &out));
  EXPECT_FALSE(ArenaUndo::Decode("\x07junk", &out));
}

TEST_F(ArenaFileTest, RollBackRestoresCheckpointExactly) {
  const std::string path = Path("rollback.arena");
  const std::string undo_path = Path("rollback.undo");
  auto file = ArenaFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Initialize(4, 2).ok());
  const std::vector<float> r0 = Row(4, 1.0f);
  const std::vector<float> r1 = Row(4, 2.0f);
  (*file)->WriteRow(0, 0, 1, 1.0f, r0.data());
  (*file)->WriteRow(1, 1, 2, 2.0f, r1.data());
  auto committed = (*file)->Commit(2);
  ASSERT_TRUE(committed.ok());
  const uint64_t generation = *committed;

  // Window: marker first, then pre-images before each overwrite — exactly the
  // store's write-ahead protocol.
  auto writer = RecordLogWriter::Open(undo_path, /*truncate=*/true);
  ASSERT_TRUE(writer.ok());
  ArenaUndo marker;
  marker.kind = ArenaUndo::Kind::kMarker;
  marker.generation = generation;
  marker.rows = 2;
  ASSERT_TRUE(writer->Append(marker.Encode()).ok());

  ArenaUndo pre;
  pre.kind = ArenaUndo::Kind::kRow;
  pre.row = 0;
  pre.id = 0;
  pre.size = 1;
  pre.norm = 1.0f;
  pre.centroid = r0;
  ASSERT_TRUE(writer->Append(pre.Encode()).ok());
  const std::vector<float> scribble = Row(4, 777.0f);
  (*file)->WriteRow(0, 123, 456, 9.0f, scribble.data());  // Post-checkpoint mutation.
  (*file)->WriteRow(2, 2, 1, 3.0f, scribble.data());      // Uncommitted tail append.

  auto log = ReadRecordLog(undo_path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*file)->RollBackTo(generation, log->records).ok());
  EXPECT_EQ((*file)->committed_rows(), 2u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*file)->arena()[i], r0[i]);
  }
  EXPECT_EQ((*file)->ids()[0], 0);
  EXPECT_EQ((*file)->sizes()[0], 1);
  EXPECT_EQ((*file)->norms()[0], 1.0f);

  // A torn tail on the undo log (partial append) is dropped by ReadRecordLog
  // and rollback still succeeds on the valid prefix.
  {
    std::ofstream f(undo_path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00", 3);  // Half a frame header.
  }
  auto torn = ReadRecordLog(undo_path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn->truncated_tail);
  EXPECT_TRUE((*file)->RollBackTo(generation, torn->records).ok());
}

}  // namespace
}  // namespace focus::storage
