# Empty dependencies file for focus_e2e_test.
# This may be replaced when dependencies are built.
