# Empty dependencies file for bench_drift_retrain.
# This may be replaced when dependencies are built.
