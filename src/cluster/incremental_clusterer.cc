#include "src/cluster/incremental_clusterer.h"

#include <algorithm>
#include <limits>

namespace focus::cluster {

namespace {

// How many trailing member runs to scan when extending an object's frame run.
constexpr size_t kRunMergeScan = 8;

void AppendMember(Cluster& cluster, const video::Detection& detection) {
  // Extend an existing run when this is the next sampled frame of the same object.
  size_t scanned = 0;
  for (auto it = cluster.members.rbegin();
       it != cluster.members.rend() && scanned < kRunMergeScan; ++it, ++scanned) {
    if (it->object == detection.object_id) {
      if (detection.frame == it->last_frame + 1) {
        it->last_frame = detection.frame;
        return;
      }
      break;  // Same object but non-contiguous: new run.
    }
  }
  MemberRun run;
  run.object = detection.object_id;
  run.first_frame = detection.frame;
  run.last_frame = detection.frame;
  cluster.members.push_back(run);
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(ClustererOptions options) : options_(options) {}

double IncrementalClusterer::FastHitRate() const {
  return fast_lookups_ > 0 ? static_cast<double>(fast_hits_) / static_cast<double>(fast_lookups_)
                           : 0.0;
}

int64_t IncrementalClusterer::CreateCluster(const video::Detection& detection,
                                            const common::FeatureVec& feature) {
  Cluster c;
  c.id = static_cast<int64_t>(clusters_.size());
  c.centroid = feature;
  c.size = 1;
  c.representative = detection;
  AppendMember(c, detection);
  clusters_.push_back(std::move(c));
  active_ids_.push_back(clusters_.back().id);
  if (active_ids_.size() > options_.max_active) {
    RetireSmallest();
  }
  TouchLru(clusters_.back().id);
  return clusters_.back().id;
}

void IncrementalClusterer::Join(Cluster& cluster, const video::Detection& detection,
                                const common::FeatureVec& feature) {
  // Running-mean centroid update.
  double w = 1.0 / static_cast<double>(cluster.size + 1);
  for (size_t i = 0; i < cluster.centroid.size(); ++i) {
    cluster.centroid[i] =
        static_cast<float>(cluster.centroid[i] * (1.0 - w) + feature[i] * w);
  }
  ++cluster.size;
  AppendMember(cluster, detection);
}

void IncrementalClusterer::RetireSmallest() {
  auto it = std::min_element(active_ids_.begin(), active_ids_.end(), [this](int64_t a, int64_t b) {
    return clusters_[static_cast<size_t>(a)].size < clusters_[static_cast<size_t>(b)].size;
  });
  if (it == active_ids_.end()) {
    return;
  }
  clusters_[static_cast<size_t>(*it)].active = false;
  active_ids_.erase(it);
}

void IncrementalClusterer::TouchLru(int64_t id) {
  lru_.push_front(id);
  if (lru_.size() > options_.lru_probes * 2) {
    lru_.resize(options_.lru_probes);
  }
}

int64_t IncrementalClusterer::Add(const video::Detection& detection,
                                  const common::FeatureVec& feature) {
  ++total_assignments_;
  const double threshold_sq = options_.threshold * options_.threshold;

  if (options_.mode == ClustererOptions::Mode::kFast) {
    ++fast_lookups_;
    // 1. The cluster this object joined most recently.
    auto it = last_cluster_of_object_.find(detection.object_id);
    if (it != last_cluster_of_object_.end()) {
      Cluster& c = clusters_[static_cast<size_t>(it->second)];
      if (c.active &&
          common::SquaredL2DistanceBounded(c.centroid, feature, threshold_sq) <= threshold_sq) {
        Join(c, detection, feature);
        ++fast_hits_;
        return c.id;
      }
    }
    // 2. Recently used clusters.
    size_t probes = 0;
    for (int64_t id : lru_) {
      if (probes++ >= options_.lru_probes) {
        break;
      }
      Cluster& c = clusters_[static_cast<size_t>(id)];
      if (c.active &&
          common::SquaredL2DistanceBounded(c.centroid, feature, threshold_sq) <= threshold_sq) {
        Join(c, detection, feature);
        last_cluster_of_object_[detection.object_id] = c.id;
        TouchLru(c.id);
        ++fast_hits_;
        return c.id;
      }
    }
  }

  // Full scan: closest active cluster within T. Candidates beyond the current best
  // (or beyond T) exit the distance loop early; the strict < keeps first-seen tie
  // semantics identical to the plain scan.
  int64_t best = -1;
  double best_dist = std::numeric_limits<double>::max();
  double bound = threshold_sq;
  for (int64_t id : active_ids_) {
    const Cluster& c = clusters_[static_cast<size_t>(id)];
    double d = common::SquaredL2DistanceBounded(c.centroid, feature, bound);
    if (d <= bound && d < best_dist) {
      best_dist = d;
      best = id;
      bound = d;
    }
  }
  if (best >= 0 && best_dist <= threshold_sq) {
    Cluster& c = clusters_[static_cast<size_t>(best)];
    Join(c, detection, feature);
    last_cluster_of_object_[detection.object_id] = c.id;
    TouchLru(c.id);
    return c.id;
  }

  int64_t id = CreateCluster(detection, feature);
  last_cluster_of_object_[detection.object_id] = id;
  return id;
}

int64_t IncrementalClusterer::AddSuppressed(const video::Detection& detection,
                                            const common::FeatureVec& feature) {
  ++total_assignments_;
  auto it = last_cluster_of_object_.find(detection.object_id);
  if (it != last_cluster_of_object_.end()) {
    Cluster& c = clusters_[static_cast<size_t>(it->second)];
    if (c.active) {
      // Membership only: the crop did not change, so the previous classification and
      // feature are reused and the centroid is left untouched.
      ++c.size;
      AppendMember(c, detection);
      return c.id;
    }
  }
  return Add(detection, feature);
}

}  // namespace focus::cluster
