#include "src/vision/pixel_differ.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace focus::vision {

double PixelDiffer::CropDifference(const video::FrameBuffer& prev, const video::FrameBuffer& cur,
                                   const video::BBox& box) const {
  int x0 = std::max(0, static_cast<int>(box.x));
  int y0 = std::max(0, static_cast<int>(box.y));
  int x1 = std::min(cur.width(), static_cast<int>(box.x + box.w));
  int y1 = std::min(cur.height(), static_cast<int>(box.y + box.h));
  if (x1 <= x0 || y1 <= y0 || prev.width() != cur.width() || prev.height() != cur.height()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  int n = 0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      sum += std::abs(static_cast<int>(cur.At(x, y)) - static_cast<int>(prev.At(x, y)));
      ++n;
    }
  }
  return sum / n;
}

}  // namespace focus::vision
