#include "src/vision/background_model.h"

#include <cassert>
#include <cmath>

namespace focus::vision {

BackgroundModel::BackgroundModel(int width, int height, BackgroundModelOptions options)
    : options_(options), width_(width), height_(height) {
  size_t n = static_cast<size_t>(width) * height;
  mean_.assign(n, 0.0);
  variance_.assign(n, options_.min_variance);
}

video::FrameBuffer BackgroundModel::Apply(const video::FrameBuffer& frame) {
  assert(frame.width() == width_ && frame.height() == height_);
  video::FrameBuffer mask(width_, height_, 0);
  const bool warming = frames_seen_ < options_.warmup_frames;
  const double alpha = warming ? 0.5 : options_.learning_rate;
  const double thresh_sq = options_.threshold_sigma * options_.threshold_sigma;
  const std::vector<uint8_t>& px = frame.pixels();
  std::vector<uint8_t>& out = mask.pixels();
  for (size_t i = 0; i < px.size(); ++i) {
    double v = static_cast<double>(px[i]);
    double d = v - mean_[i];
    bool foreground = !warming && (d * d > thresh_sq * variance_[i]);
    if (foreground) {
      out[i] = 255;
      // Foreground pixels update the model slowly so a stopped object is eventually
      // absorbed but a passing one is not.
      double slow = alpha * 0.1;
      mean_[i] += slow * d;
      variance_[i] += slow * (d * d - variance_[i]);
    } else {
      mean_[i] += alpha * d;
      variance_[i] += alpha * (d * d - variance_[i]);
    }
    if (variance_[i] < options_.min_variance) {
      variance_[i] = options_.min_variance;
    }
  }
  ++frames_seen_;
  return mask;
}

}  // namespace focus::vision
