// Query-side batched GT-CNN execution: GPU-millis and virtual latency vs
// batch_size, for one query and for several concurrent queries.
//
// The seed query path classified matching-cluster centroids one Top1() launch at
// a time, so neither one query nor several concurrent analysts could fill a GPU
// batch (ROADMAP "Query-side batch GT-CNN"). The plan/execute redesign makes
// batching the native mode: QueryEngine::Plan emits centroid work items,
// runtime::QueryService pools them across concurrent requests, dedups shared
// (stream, centroid) classifications, and packs launches of up to batch_size
// images whose per-launch overhead is paid once (cnn cost model,
// kLaunchOverheadShare). This bench tracks, per (concurrency, batch_size):
//
//   - total GPU-millis actually charged to the 10-GPU virtual cluster,
//   - mean/max request latency on the virtual clock,
//   - launch and dedup accounting,
//
// and verifies the batched results stay identical to the per-centroid engine
// output (batch_size = 1 is exactly the legacy schedule). A separate scenario
// submits duplicate concurrent queries to expose the cross-query dedup.
//
// Emits BENCH_query_batch.json next to the binary. FOCUS_BENCH_HOURS overrides
// the simulated recording length (default 0.15 h).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/runtime/query_service.h"

namespace {

using focus::bench::BenchConfig;
using focus::bench::ConfigFromEnv;
using focus::bench::MakeRun;
using focus::core::FocusOptions;
using focus::core::FocusStream;
using focus::core::QueryResult;
using focus::runtime::QueryBatchStats;
using focus::runtime::QueryExecution;
using focus::runtime::QueryRequest;
using focus::runtime::QueryService;
using focus::runtime::QueryServiceOptions;

constexpr int kNumGpus = 10;

struct Scenario {
  int concurrency = 1;
  int batch_size = 1;
  bool duplicates = false;  // All requests the same class (dedup showcase).
  QueryBatchStats stats;
  double total_busy_millis = 0.0;
  double mean_latency_millis = 0.0;
  double max_latency_millis = 0.0;
  bool identical = true;  // Results match the direct engine query.
};

}  // namespace

int main() {
  const BenchConfig config = ConfigFromEnv();
  const focus::video::ClassCatalog catalog(config.world_seed);
  const focus::video::StreamRun run = MakeRun(catalog, "auburn_c", config);

  auto focus_or = FocusStream::Build(&run, &catalog, FocusOptions{});
  if (!focus_or.ok()) {
    std::fprintf(stderr, "FocusStream::Build failed: %s\n",
                 focus_or.error().message.c_str());
    return 1;
  }
  const FocusStream& focus = **focus_or;

  focus::cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  const std::vector<focus::common::ClassId> dominant = truth.DominantClasses(0.95, 4);
  if (dominant.empty()) {
    std::fprintf(stderr, "no dominant classes in the simulated stream\n");
    return 1;
  }

  // Ground truth for identity checks: the engine's one-call query per class.
  std::vector<QueryResult> direct;
  direct.reserve(dominant.size());
  for (focus::common::ClassId cls : dominant) {
    direct.push_back(focus.Query(cls));
  }

  const int batch_sizes[] = {1, 8, 32};
  const int concurrencies[] = {1, 4};

  std::printf("query-side batched GT-CNN on a %d-GPU virtual cluster (%s, %.2f h)\n",
              kNumGpus, "auburn_c", config.hours);
  std::printf("%5s %6s %4s %8s %7s %8s %12s %12s %12s %10s\n", "conc", "batch", "dup",
              "work", "unique", "launches", "gpu_ms", "mean_lat_ms", "max_lat_ms",
              "identical");

  std::vector<Scenario> scenarios;
  bool all_identical = true;
  bool batching_wins = true;
  for (int concurrency : concurrencies) {
    for (bool duplicates : {false, true}) {
      if (duplicates && concurrency == 1) {
        continue;  // Duplicate scenario needs >1 request.
      }
      for (int batch_size : batch_sizes) {
        Scenario s;
        s.concurrency = concurrency;
        s.batch_size = batch_size;
        s.duplicates = duplicates;

        std::vector<QueryRequest> requests;
        for (int i = 0; i < concurrency; ++i) {
          const size_t cls_index =
              duplicates ? 0 : static_cast<size_t>(i) % dominant.size();
          requests.push_back(QueryRequest{&focus, dominant[cls_index], -1, {}});
        }

        QueryService service(QueryServiceOptions{kNumGpus, batch_size});
        const std::vector<QueryExecution> executions =
            service.ExecuteConcurrently(requests);

        s.stats = service.last_stats();
        s.total_busy_millis = service.cluster().Stats().total_busy_millis;
        for (size_t i = 0; i < executions.size(); ++i) {
          const double latency = executions[i].latency_millis();
          s.mean_latency_millis += latency / static_cast<double>(executions.size());
          s.max_latency_millis = std::max(s.max_latency_millis, latency);
          const size_t cls_index =
              s.duplicates ? 0 : i % dominant.size();
          const QueryResult& expect = direct[cls_index];
          s.identical = s.identical &&
                        executions[i].result.frame_runs == expect.frame_runs &&
                        executions[i].result.frames_returned == expect.frames_returned &&
                        executions[i].result.clusters_matched == expect.clusters_matched &&
                        executions[i].result.centroids_classified ==
                            expect.centroids_classified;
        }
        all_identical = all_identical && s.identical;

        std::printf("%5d %6d %4s %8lld %7lld %8lld %12.1f %12.1f %12.1f %10s\n",
                    s.concurrency, s.batch_size, s.duplicates ? "yes" : "no",
                    static_cast<long long>(s.stats.work_items),
                    static_cast<long long>(s.stats.unique_items),
                    static_cast<long long>(s.stats.launches), s.total_busy_millis,
                    s.mean_latency_millis, s.max_latency_millis,
                    s.identical ? "yes" : "NO");
        scenarios.push_back(s);
      }
      // Acceptance: with more unique work than GPUs, batch_size > 1 must beat
      // batch_size = 1 on both total GPU time and latency (the launch overhead
      // is amortized without giving up the fleet-wide fan-out).
      const Scenario& base = scenarios[scenarios.size() - 3];  // batch_size = 1.
      for (size_t i = scenarios.size() - 2; i < scenarios.size(); ++i) {
        const Scenario& batched = scenarios[i];
        if (base.stats.unique_items > kNumGpus &&
            (batched.total_busy_millis >= base.total_busy_millis ||
             batched.max_latency_millis >= base.max_latency_millis)) {
          batching_wins = false;
        }
      }
    }
  }

  FILE* f = std::fopen("BENCH_query_batch.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"query_batch\",\n  \"num_gpus\": %d,\n", kNumGpus);
    std::fprintf(f, "  \"hours\": %.3f,\n  \"scenarios\": [\n", config.hours);
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const Scenario& s = scenarios[i];
      std::fprintf(
          f,
          "    {\"concurrency\": %d, \"batch_size\": %d, \"duplicates\": %s, "
          "\"work_items\": %lld, \"unique_items\": %lld, \"dedup_hits\": %lld, "
          "\"launches\": %lld, \"gpu_millis\": %.1f, \"mean_latency_millis\": %.1f, "
          "\"max_latency_millis\": %.1f, \"identical\": %s}%s\n",
          s.concurrency, s.batch_size, s.duplicates ? "true" : "false",
          static_cast<long long>(s.stats.work_items),
          static_cast<long long>(s.stats.unique_items),
          static_cast<long long>(s.stats.dedup_hits),
          static_cast<long long>(s.stats.launches), s.total_busy_millis,
          s.mean_latency_millis, s.max_latency_millis, s.identical ? "true" : "false",
          i + 1 < scenarios.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_query_batch.json\n");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: batched results diverge from the per-centroid path\n");
    return 1;
  }
  if (!batching_wins) {
    std::fprintf(stderr,
                 "FAIL: batch_size > 1 did not reduce GPU-millis and latency vs 1\n");
    return 1;
  }
  return 0;
}
