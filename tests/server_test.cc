// Tests for the query-server frontend: protocol parsing (strictness, options,
// errors), request handling against a real one-camera fleet, payload framing, and
// concurrent read-only query handling through a worker pool.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <set>
#include <sstream>

#include "src/cnn/ground_truth.h"
#include "src/runtime/worker_pool.h"
#include "src/server/query_server.h"

namespace focus::server {
namespace {

// --- ParseRequest ---

TEST(ProtocolTest, ParsesPingCamerasClasses) {
  auto ping = ParseRequest("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, Verb::kPing);

  auto cameras = ParseRequest("  CAMERAS  ");
  ASSERT_TRUE(cameras.ok());
  EXPECT_EQ(cameras->verb, Verb::kCameras);

  auto classes = ParseRequest("CLASSES ped");
  ASSERT_TRUE(classes.ok());
  EXPECT_EQ(classes->verb, Verb::kClasses);
  EXPECT_EQ(classes->class_filter, "ped");
}

TEST(ProtocolTest, ParsesFullQuery) {
  auto request = ParseRequest("QUERY north car BEGIN 60 END 120.5 KX 2");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->verb, Verb::kQuery);
  EXPECT_EQ(request->camera, "north");
  EXPECT_EQ(request->class_name, "car");
  EXPECT_DOUBLE_EQ(request->range.begin_sec, 60.0);
  EXPECT_DOUBLE_EQ(request->range.end_sec, 120.5);
  EXPECT_EQ(request->kx, 2);
}

TEST(ProtocolTest, QueryDefaultsAreOpenEnded) {
  auto request = ParseRequest("QUERY cam car");
  ASSERT_TRUE(request.ok());
  EXPECT_DOUBLE_EQ(request->range.begin_sec, 0.0);
  EXPECT_LT(request->range.end_sec, 0.0);
  EXPECT_EQ(request->kx, -1);
}

TEST(ProtocolTest, ParsesHealthWithOptionalCamera) {
  auto fleet_wide = ParseRequest("HEALTH");
  ASSERT_TRUE(fleet_wide.ok());
  EXPECT_EQ(fleet_wide->verb, Verb::kHealth);
  EXPECT_TRUE(fleet_wide->camera.empty());

  auto one = ParseRequest("HEALTH north");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->verb, Verb::kHealth);
  EXPECT_EQ(one->camera, "north");

  EXPECT_FALSE(ParseRequest("HEALTH north extra").ok());
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("FROB x").ok());               // Unknown verb.
  EXPECT_FALSE(ParseRequest("PING extra").ok());           // Trailing junk.
  EXPECT_FALSE(ParseRequest("QUERY cam").ok());            // Missing class.
  EXPECT_FALSE(ParseRequest("QUERY cam car BEGIN").ok());  // Option without value.
  EXPECT_FALSE(ParseRequest("QUERY cam car BEGIN abc").ok());
  EXPECT_FALSE(ParseRequest("QUERY cam car FOO 3").ok());  // Unknown option.
  EXPECT_FALSE(ParseRequest("QUERY cam car KX 0").ok());   // Non-positive Kx.
  EXPECT_FALSE(ParseRequest("QUERY cam car BEGIN 100 END 50").ok());  // Inverted range.
  EXPECT_FALSE(ParseRequest("STATS cam extra").ok());
  EXPECT_FALSE(ParseRequest("CLASSES a b").ok());
  EXPECT_FALSE(ParseRequest("QUERY REGION r").ok());        // REGION without class.
  EXPECT_FALSE(ParseRequest("QUERY a,,b car").ok());        // Empty name in list.
  EXPECT_FALSE(ParseRequest("QUERY cam car TENANT").ok());  // Option without value.
}

TEST(ProtocolTest, ParsesShmForms) {
  auto attach = ParseRequest("SHM ATTACH /focus_plane");
  ASSERT_TRUE(attach.ok());
  EXPECT_EQ(attach->verb, Verb::kShm);
  EXPECT_EQ(attach->shm_op, "ATTACH");
  EXPECT_EQ(attach->shm_name, "/focus_plane");

  auto one = ParseRequest("SHM STATUS /focus_plane");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->verb, Verb::kShm);
  EXPECT_EQ(one->shm_op, "STATUS");
  EXPECT_EQ(one->shm_name, "/focus_plane");

  auto all = ParseRequest("SHM STATUS");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->shm_op, "STATUS");
  EXPECT_TRUE(all->shm_name.empty());

  EXPECT_FALSE(ParseRequest("SHM").ok());                       // Missing op.
  EXPECT_FALSE(ParseRequest("SHM ATTACH").ok());                // Missing segment.
  EXPECT_FALSE(ParseRequest("SHM ATTACH /a /b").ok());          // Trailing junk.
  EXPECT_FALSE(ParseRequest("SHM STATUS /a extra").ok());       // Trailing junk.
  EXPECT_FALSE(ParseRequest("SHM DETACH /a").ok());             // Unknown op.
}

TEST(ProtocolTest, ParsesShmServeAndQueryForms) {
  auto serve = ParseRequest("SHM SERVE /focus_plane");
  ASSERT_TRUE(serve.ok());
  EXPECT_EQ(serve->verb, Verb::kShm);
  EXPECT_EQ(serve->shm_op, "SERVE");
  EXPECT_EQ(serve->shm_name, "/focus_plane");
  EXPECT_EQ(serve->shm_workers, 0);  // 0 = server default.

  auto sized = ParseRequest("SHM SERVE /focus_plane WORKERS 4");
  ASSERT_TRUE(sized.ok());
  EXPECT_EQ(sized->shm_workers, 4);

  auto query = ParseRequest("SHM QUERY /focus_plane car BEGIN 10 END 90.5 KX 3");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->verb, Verb::kShm);
  EXPECT_EQ(query->shm_op, "QUERY");
  EXPECT_EQ(query->shm_name, "/focus_plane");
  EXPECT_EQ(query->class_name, "car");
  EXPECT_EQ(query->kx, 3);
  EXPECT_DOUBLE_EQ(query->range.begin_sec, 10.0);
  EXPECT_DOUBLE_EQ(query->range.end_sec, 90.5);

  auto bare = ParseRequest("SHM QUERY /focus_plane ped");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->class_name, "ped");
  EXPECT_DOUBLE_EQ(bare->range.begin_sec, 0.0);
  EXPECT_LT(bare->range.end_sec, 0.0);  // Open-ended.

  EXPECT_FALSE(ParseRequest("SHM SERVE").ok());                      // Missing segment.
  EXPECT_FALSE(ParseRequest("SHM SERVE /a WORKERS").ok());           // Option without value.
  EXPECT_FALSE(ParseRequest("SHM SERVE /a WORKERS 0").ok());         // Non-positive count.
  EXPECT_FALSE(ParseRequest("SHM SERVE /a WORKERS -2").ok());        // Negative count.
  EXPECT_FALSE(ParseRequest("SHM SERVE /a WORKERS many").ok());      // Non-numeric count.
  EXPECT_FALSE(ParseRequest("SHM SERVE /a THREADS 4").ok());         // Unknown option.
  EXPECT_FALSE(ParseRequest("SHM QUERY /a").ok());                   // Missing class.
  EXPECT_FALSE(ParseRequest("SHM QUERY /a car TENANT t").ok());      // TENANT rejected.
  EXPECT_FALSE(ParseRequest("SHM QUERY /a car KX zero").ok());       // Bad option value.
  EXPECT_FALSE(ParseRequest("SHM QUERY /a car BEGIN 90 END 10").ok());  // Inverted range.
}

TEST(ProtocolTest, ParsesFederatedForms) {
  auto list = ParseRequest("QUERY north,south car KX 2 TENANT analyst");
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->camera.empty());
  ASSERT_EQ(list->cameras.size(), 2u);
  EXPECT_EQ(list->cameras[0], "north");
  EXPECT_EQ(list->cameras[1], "south");
  EXPECT_EQ(list->class_name, "car");
  EXPECT_EQ(list->kx, 2);
  EXPECT_EQ(list->tenant, "analyst");

  auto region = ParseRequest("QUERY REGION downtown truck BEGIN 10");
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->region, "downtown");
  EXPECT_TRUE(region->camera.empty());
  EXPECT_EQ(region->class_name, "truck");
  EXPECT_DOUBLE_EQ(region->range.begin_sec, 10.0);

  auto bare_stats = ParseRequest("STATS");
  ASSERT_TRUE(bare_stats.ok());
  EXPECT_EQ(bare_stats->verb, Verb::kStats);
  EXPECT_TRUE(bare_stats->camera.empty());
}

TEST(ProtocolTest, ResponsesAreFramed) {
  EXPECT_EQ(OkResponse(""), "OK");
  EXPECT_EQ(OkResponse("PONG"), "OK PONG");
  std::string err = ErrResponse(common::ErrorCode::kNotFound, "nope");
  EXPECT_EQ(err, "ERR NotFound nope");
}

// --- QueryServer over a real fleet ---

class QueryServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(29);
    fleet_ = new core::FocusFleet();
    core::FocusOptions options;
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    ASSERT_TRUE(fleet_
                    ->AddCamera("north", catalog_, profile, 120.0, 30.0, 77, options,
                                core::CameraMeta{"downtown", {"traffic"}})
                    .ok());

    const core::FocusStream* north = fleet_->Find("north");
    cnn::SegmentGroundTruth truth(north->run(), north->gt_cnn());
    auto dominant = truth.DominantClasses(0.95, 1);
    ASSERT_FALSE(dominant.empty());
    dominant_name_ = new std::string(catalog_->Name(dominant[0]));
  }

  static void TearDownTestSuite() {
    delete dominant_name_;
    delete fleet_;
    delete catalog_;
    dominant_name_ = nullptr;
    fleet_ = nullptr;
    catalog_ = nullptr;
  }

  static video::ClassCatalog* catalog_;
  static core::FocusFleet* fleet_;
  static std::string* dominant_name_;
};

video::ClassCatalog* QueryServerTest::catalog_ = nullptr;
core::FocusFleet* QueryServerTest::fleet_ = nullptr;
std::string* QueryServerTest::dominant_name_ = nullptr;

TEST_F(QueryServerTest, PingPongs) {
  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  EXPECT_EQ(server.HandleLine("PING"), "OK PONG");
  EXPECT_EQ(metrics.counter("server.requests"), 1);
}

TEST_F(QueryServerTest, CamerasListsTheFleet) {
  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  EXPECT_EQ(server.HandleLine("CAMERAS"), "OK 1\nnorth");
}

TEST_F(QueryServerTest, QueryReturnsFramesAndRuns) {
  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  std::string response = server.HandleLine("QUERY north " + *dominant_name_);
  ASSERT_EQ(response.rfind("OK FRAMES ", 0), 0u) << response;

  // Every RUN line parses as two ordered frame numbers.
  std::istringstream lines(response);
  std::string line;
  std::getline(lines, line);  // Summary.
  int64_t runs = 0;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string tag;
    int64_t first = 0;
    int64_t last = 0;
    ASSERT_TRUE(fields >> tag >> first >> last) << line;
    EXPECT_EQ(tag, "RUN");
    EXPECT_LE(first, last);
    ++runs;
  }
  EXPECT_GT(runs, 0);
  EXPECT_EQ(metrics.counter("server.queries"), 1);
}

TEST_F(QueryServerTest, QueryAgreesWithDirectFleetCall) {
  QueryServer server(fleet_, catalog_);
  std::string response =
      server.HandleLine("QUERY north " + *dominant_name_ + " BEGIN 30 END 90");
  auto direct = fleet_->Query(catalog_->IdForName(*dominant_name_), {"north"},
                              common::TimeRange{30.0, 90.0});
  ASSERT_TRUE(direct.ok());
  std::ostringstream expected;
  expected << "OK FRAMES " << direct->hits[0].result.frames_returned;
  EXPECT_EQ(response.rfind(expected.str(), 0), 0u) << response;
}

TEST_F(QueryServerTest, ErrorsAreFramedNotThrown) {
  QueryServer server(fleet_, catalog_);
  EXPECT_EQ(server.HandleLine("QUERY nowhere car").rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(server.HandleLine("QUERY north not_a_class").rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(server.HandleLine("gibberish").rfind("ERR InvalidArgument", 0), 0u);
}

TEST_F(QueryServerTest, ClassesFilterBoundsThePayload) {
  QueryServer server(fleet_, catalog_);
  std::string all = server.HandleLine("CLASSES");
  EXPECT_EQ(all.rfind("OK 1000", 0), 0u) << all.substr(0, 40);
  EXPECT_NE(all.find("first 50 shown"), std::string::npos);

  std::string none = server.HandleLine("CLASSES zzz_no_such_class");
  EXPECT_EQ(none, "OK 0");
}

TEST_F(QueryServerTest, StatsDescribesTheDeployment) {
  QueryServer server(fleet_, catalog_);
  std::string response = server.HandleLine("STATS north");
  EXPECT_EQ(response.rfind("OK MODEL ", 0), 0u);
  EXPECT_NE(response.find(" CLUSTERS "), std::string::npos);
  EXPECT_NE(response.find(" INGEST_GPU_MS "), std::string::npos);
}

TEST_F(QueryServerTest, RegionQueryFansOutFederated) {
  QueryServer server(fleet_, catalog_);
  const std::string single = server.HandleLine("QUERY north " + *dominant_name_);
  ASSERT_EQ(single.rfind("OK FRAMES ", 0), 0u) << single;
  int64_t single_frames = 0;
  {
    std::istringstream in(single.substr(std::string("OK FRAMES ").size()));
    in >> single_frames;
  }

  const std::string federated = server.HandleLine("QUERY REGION downtown " + *dominant_name_);
  ASSERT_EQ(federated.rfind("OK FEDERATED 1 FRAMES ", 0), 0u) << federated;
  int64_t fed_frames = 0;
  {
    std::istringstream in(federated.substr(std::string("OK FEDERATED 1 FRAMES ").size()));
    in >> fed_frames;
  }
  // One camera in the region: the federated aggregate is that camera's answer.
  EXPECT_EQ(fed_frames, single_frames);
  EXPECT_NE(federated.find("\nCAM north FRAMES "), std::string::npos) << federated;

  EXPECT_EQ(server.HandleLine("QUERY REGION nowhere car").rfind("ERR NotFound", 0), 0u);
}

TEST_F(QueryServerTest, BareStatsReportsTheSharedService) {
  QueryServer server(fleet_, catalog_);
  std::string idle = server.HandleLine("STATS");
  EXPECT_EQ(idle.rfind("OK SERVICE REQUESTS 0 ", 0), 0u) << idle;

  // A query, then its warm repeat: the second answers from cache alone.
  ASSERT_EQ(server.HandleLine("QUERY north " + *dominant_name_).rfind("OK ", 0), 0u);
  ASSERT_EQ(server.HandleLine("QUERY north " + *dominant_name_).rfind("OK ", 0), 0u);
  std::string warm = server.HandleLine("STATS");
  EXPECT_EQ(warm.rfind("OK SERVICE REQUESTS 2 ", 0), 0u) << warm;
  EXPECT_NE(warm.find(" HIT_RATE 0.5"), std::string::npos) << warm;
  EXPECT_NE(warm.find(" QUEUED_TENANTS 0"), std::string::npos) << warm;
}

TEST_F(QueryServerTest, ConcurrentQueriesAreConsistent) {
  QueryServer server(fleet_, catalog_);
  const std::string request = "QUERY north " + *dominant_name_;
  // The first issue pays the GT-CNN work and warms the shared verdict cache;
  // from the second on the response is the steady state (LATENCY_MS 0 — every
  // verdict cached) that all concurrent repeats must reproduce byte-for-byte.
  const std::string cold = server.HandleLine(request);
  const std::string expected = server.HandleLine(request);
  EXPECT_NE(cold.find("FRAMES"), std::string::npos);
  // Same frames/runs payload either way; only the latency figure differs.
  EXPECT_EQ(cold.substr(cold.find("\n")), expected.substr(expected.find("\n")));

  std::atomic<int> mismatches{0};
  {
    runtime::WorkerPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] {
        if (server.HandleLine(request) != expected) {
          mismatches.fetch_add(1);
        }
      });
    }
    pool.Drain();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

// SHM verb lifecycle against a real epoch plane: attach reports the plane's
// generation, duplicate attaches and unknown segments are framed errors, and
// STATUS tracks publishes that happen after the attach.
TEST_F(QueryServerTest, ShmAttachAndStatusTrackThePlane) {
  const std::string name = "/focus_server_shm_" + std::to_string(::getpid());
  auto publisher = shm::EpochPublisher::Create(name);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);
  core::LiveSnapshot snapshot;  // Empty plane image: the verb only reads stats.
  snapshot.epoch = 1;
  snapshot.watermark = 60;
  snapshot.fps = 30.0;
  ASSERT_TRUE((*publisher)->Publish(snapshot).ok());
  snapshot.epoch = 2;
  ASSERT_TRUE((*publisher)->Publish(snapshot).ok());

  runtime::MetricsRegistry metrics;
  QueryServer server(fleet_, catalog_, &metrics);
  EXPECT_EQ(server.HandleLine("SHM STATUS"), "OK 0");  // Nothing attached yet.
  EXPECT_EQ(server.HandleLine("SHM STATUS " + name).rfind("ERR NotFound", 0), 0u);

  const std::string attached = server.HandleLine("SHM ATTACH " + name);
  EXPECT_EQ(attached.rfind("OK ATTACHED " + name + " GEN 2 EPOCHS 2 READERS 1 ATTACHES 1", 0),
            0u)
      << attached;
  EXPECT_EQ(server.HandleLine("SHM ATTACH " + name).rfind("ERR FailedPrecondition", 0), 0u);

  // A publish after the attach shows up in STATUS without re-attaching.
  snapshot.epoch = 3;
  ASSERT_TRUE((*publisher)->Publish(snapshot).ok());
  const std::string status = server.HandleLine("SHM STATUS " + name);
  EXPECT_EQ(status.rfind("OK " + name + " GEN 3 EPOCHS 3", 0), 0u) << status;
  const std::string listing = server.HandleLine("SHM STATUS");
  EXPECT_EQ(listing.rfind("OK 1\n" + name + " GEN 3", 0), 0u) << listing;

  EXPECT_EQ(server.HandleLine("SHM ATTACH /focus_no_such_plane").rfind("ERR ", 0), 0u);
  EXPECT_EQ(metrics.counter("server.shm_attaches"), 1);
  EXPECT_EQ(metrics.counter("server.shm_attach_errors"), 1);
}

}  // namespace
}  // namespace focus::server
