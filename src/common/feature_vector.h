// Feature-vector math used throughout the simulator.
//
// CNN penultimate-layer activations are modelled as unit-norm real vectors (the paper
// reports 512-4096 dimensions for real classifiers; we default to 64 dimensions, which
// preserves the geometry the system depends on — same-object observations cluster
// tightly, same-class objects are near, different classes are far — at simulation
// speed). All distances are L2, matching §4.2 of the paper.
#ifndef FOCUS_SRC_COMMON_FEATURE_VECTOR_H_
#define FOCUS_SRC_COMMON_FEATURE_VECTOR_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace focus::common {

using FeatureVec = std::vector<float>;

// Default dimensionality of simulated CNN features.
inline constexpr size_t kDefaultFeatureDim = 64;

// Squared L2 distance; the workhorse for clustering (avoids the sqrt in hot loops).
double SquaredL2Distance(const FeatureVec& a, const FeatureVec& b);

// Squared L2 distance with early exit: gives up as soon as the partial sum exceeds
// |bound| and returns that partial sum. The return value is exact when it is <=
// |bound| (the loop ran to completion), and otherwise only guarantees > |bound| —
// which is all a threshold or nearest-neighbour scan needs. This is the clusterer's
// scan primitive: with a tight threshold almost every candidate exits within a few
// dimensions instead of touching all of them.
double SquaredL2DistanceBounded(const FeatureVec& a, const FeatureVec& b, double bound);

// L2 (Euclidean) distance.
double L2Distance(const FeatureVec& a, const FeatureVec& b);

// Euclidean norm.
double Norm(const FeatureVec& v);

// Dot product.
double Dot(const FeatureVec& a, const FeatureVec& b);

// Cosine similarity in [-1, 1]; returns 0 for zero-norm inputs.
double CosineSimilarity(const FeatureVec& a, const FeatureVec& b);

// Scales |v| in place to unit norm (no-op on the zero vector).
void NormalizeInPlace(FeatureVec& v);

// a += b (dimensions must match).
void AddInPlace(FeatureVec& a, const FeatureVec& b);

// a += scale * b.
void AddScaledInPlace(FeatureVec& a, const FeatureVec& b, double scale);

// v *= scale.
void ScaleInPlace(FeatureVec& v, double scale);

// Draws a vector with i.i.d. standard-normal entries (isotropic direction).
FeatureVec RandomGaussianVector(size_t dim, Pcg32& rng);

// Draws a unit vector uniformly on the sphere.
FeatureVec RandomUnitVector(size_t dim, Pcg32& rng);

// Adds isotropic Gaussian noise with expected L2 displacement |magnitude| (per-
// dimension sigma = magnitude / sqrt(dim)). All noise scales in this codebase are
// expressed as displacements, independent of the feature dimensionality.
void AddIsotropicNoise(FeatureVec& v, double magnitude, Pcg32& rng);

// Returns normalize(base + isotropic noise of displacement |noise_scale|). This is how
// the simulator perturbs an archetype vector into an instance/observation vector.
FeatureVec PerturbedUnitVector(const FeatureVec& base, double noise_scale, Pcg32& rng);

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_FEATURE_VECTOR_H_
