#include "src/video/dataset.h"

#include <algorithm>

namespace focus::video {

StreamStatistics ComputeStreamStatistics(const StreamRun& run) {
  StreamStatistics stats;
  stats.name = run.profile().name;
  stats.type = run.profile().type;

  std::map<int, uint64_t> per_class;
  SweepStats sweep = run.ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      if (d.first_observation) {
        ++per_class[d.true_class];
      }
    }
  });

  stats.total_frames = sweep.total_frames;
  stats.frames_with_moving_objects = sweep.frames_with_moving_objects;
  stats.total_detections = sweep.total_detections;
  stats.num_moving_objects = sweep.num_objects;
  stats.objects_per_class = std::move(per_class);
  stats.distinct_classes = static_cast<int>(stats.objects_per_class.size());
  stats.class_space_fraction =
      static_cast<double>(stats.distinct_classes) / static_cast<double>(kNumClasses);
  if (stats.distinct_classes > 0) {
    stats.classes_covering_95pct =
        common::FractionOfKeysCovering(stats.objects_per_class, kNumClasses, 0.95);
    uint64_t top = 0;
    uint64_t total = 0;
    for (const auto& [cls, count] : stats.objects_per_class) {
      top = std::max(top, count);
      total += count;
    }
    stats.top_class_share = total > 0 ? static_cast<double>(top) / static_cast<double>(total) : 0.0;
  }
  return stats;
}

std::vector<common::CdfPoint> ClassFrequencyCdf(const StreamStatistics& stats) {
  return common::TopHeavyCdf(stats.objects_per_class, kNumClasses);
}

double ClassJaccard(const StreamStatistics& a, const StreamStatistics& b) {
  std::vector<int> ca;
  ca.reserve(a.objects_per_class.size());
  for (const auto& [cls, count] : a.objects_per_class) {
    ca.push_back(cls);
  }
  std::vector<int> cb;
  cb.reserve(b.objects_per_class.size());
  for (const auto& [cls, count] : b.objects_per_class) {
    cb.push_back(cls);
  }
  return common::JaccardIndex(ca, cb);
}

double MeanPairwiseJaccard(const std::vector<StreamStatistics>& stats) {
  if (stats.size() < 2) {
    return 1.0;
  }
  double sum = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    for (size_t j = i + 1; j < stats.size(); ++j) {
      sum += ClassJaccard(stats[i], stats[j]);
      ++pairs;
    }
  }
  return sum / pairs;
}

}  // namespace focus::video
