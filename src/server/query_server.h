// The Focus query frontend: serves protocol requests against a camera fleet.
//
// Transport-agnostic by design — HandleLine(request) -> response string — so the
// same server backs a REPL, a pipe, or a socket loop. All state it serves (the
// fleet's indexes and models) is read-only at query time, so concurrent
// HandleLine calls from a worker pool are safe and fully parallel.
//
// QUERY requests execute through the batched plan/execute path (§5,
// query_engine.h / query_service.h): the plan's centroid classifications are
// packed into GT-CNN launches on a virtual GPU cluster instead of running one
// Top1() per centroid. Each request gets a fresh cluster (built from
// |service_options|), so identical requests always produce byte-identical
// responses — the reported LATENCY_MS is the request's wall-clock on an
// otherwise idle cluster, not a function of whoever queried before it.
//
// Live query-over-ingest: with a |live| runtime::IngestService attached, a
// QUERY for a camera not (yet) in the fleet is answered from the stream's
// newest published canonical snapshot while its ingest is still running — the
// response carries EPOCH and WATERMARK, and the frame runs are byte-identical
// to what halting ingest at that watermark and finalizing would return
// (docs/live_query.md).
//
// Degraded serving (docs/robustness.md): a live stream whose ingest worker is
// Degraded or Down still answers from its last-good epoch snapshot, framed
// "STALE EPOCH <e> WATERMARK <w>" instead of "LIVE ..." so the client knows
// the answer lags the recording. A Down stream with no published snapshot
// errs Unavailable. The HEALTH verb reports per-stream supervision state.
#ifndef FOCUS_SRC_SERVER_QUERY_SERVER_H_
#define FOCUS_SRC_SERVER_QUERY_SERVER_H_

#include <string>

#include "src/core/fleet.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/metrics.h"
#include "src/runtime/query_service.h"
#include "src/server/protocol.h"
#include "src/video/class_catalog.h"

namespace focus::server {

class QueryServer {
 public:
  // |fleet| and |catalog| must outlive the server; |metrics| may be null
  // (global). |service_options| configures the per-request virtual GPU cluster
  // and batching (defaults: 10 GPUs, batch_size 32). |live| (optional, must
  // outlive the server) serves QUERYs on cameras whose ingest is still
  // running, from their published live snapshots; fleet cameras win on a name
  // collision (a finalized index covers the whole recording).
  QueryServer(const core::FocusFleet* fleet, const video::ClassCatalog* catalog,
              runtime::MetricsRegistry* metrics = nullptr,
              runtime::QueryServiceOptions service_options = {},
              const runtime::IngestService* live = nullptr);

  // Parses and executes one request line; always returns a framed response
  // ("OK ..." or "ERR <code> ...") and never throws.
  std::string HandleLine(const std::string& line);

  // Structured entry point (for callers that already hold a Request).
  std::string Handle(const Request& request);

 private:
  std::string HandleQuery(const Request& request);
  // QUERY against a camera whose ingest is still running: plans over the
  // newest published epoch snapshot.
  std::string HandleLiveQuery(const Request& request, common::ClassId cls);
  std::string HandleCameras();
  std::string HandleClasses(const std::string& filter);
  std::string HandleStats(const std::string& camera);
  // HEALTH [camera]: supervision state of one stream, or of every stream that
  // has registered a failure or restart (clean streams read Healthy and are
  // omitted from the fleet listing).
  std::string HandleHealth(const std::string& camera);

  const core::FocusFleet* fleet_;
  const video::ClassCatalog* catalog_;
  runtime::MetricsRegistry* metrics_;
  runtime::QueryServiceOptions service_options_;
  const runtime::IngestService* live_;
};

}  // namespace focus::server

#endif  // FOCUS_SRC_SERVER_QUERY_SERVER_H_
