// Property tests for the SIMD distance kernels: every kernel must agree with the
// scalar double-precision reference in feature_vector.cc within 1e-4 relative
// tolerance, and the bounded/batched variants must honor their early-exit
// contract ("exact when <= bound, otherwise only > bound").
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/feature_vector.h"
#include "src/common/rng.h"
#include "src/common/simd_distance.h"

namespace focus::common {
namespace {

constexpr double kRelTol = 1e-4;

// Dimensions straddling the kernels' unroll (8) and bound-check (32) widths.
const size_t kDims[] = {1, 3, 7, 8, 9, 31, 32, 33, 64, 65, 100, 128, 257, 1024};

double RelErr(double got, double want) {
  double denom = std::max(std::abs(want), 1e-12);
  return std::abs(got - want) / denom;
}

TEST(SimdDistanceTest, SquaredL2MatchesScalarReference) {
  Pcg32 rng(7);
  for (size_t dim : kDims) {
    for (int rep = 0; rep < 20; ++rep) {
      FeatureVec a = RandomGaussianVector(dim, rng);
      FeatureVec b = RandomGaussianVector(dim, rng);
      double want = SquaredL2Distance(a, b);
      float got = simd::SquaredL2(a.data(), b.data(), dim);
      EXPECT_LT(RelErr(got, want), kRelTol) << "dim=" << dim;
    }
  }
}

TEST(SimdDistanceTest, DotMatchesScalarReference) {
  Pcg32 rng(8);
  for (size_t dim : kDims) {
    for (int rep = 0; rep < 20; ++rep) {
      FeatureVec a = RandomGaussianVector(dim, rng);
      FeatureVec b = RandomGaussianVector(dim, rng);
      double want = Dot(a, b);
      float got = simd::Dot(a.data(), b.data(), dim);
      // Dot products can cancel toward zero; compare against the vector scale.
      double scale = std::max(1.0, std::sqrt(SquaredL2Distance(a, b)));
      EXPECT_LT(std::abs(got - want) / scale, kRelTol) << "dim=" << dim;
    }
  }
}

TEST(SimdDistanceTest, NormSquaredMatchesScalarReference) {
  Pcg32 rng(9);
  for (size_t dim : kDims) {
    FeatureVec v = RandomGaussianVector(dim, rng);
    double want = Norm(v) * Norm(v);
    EXPECT_LT(RelErr(simd::NormSquared(v.data(), dim), want), kRelTol) << "dim=" << dim;
  }
}

TEST(SimdDistanceTest, BoundedIsExactWhenWithinBound) {
  Pcg32 rng(10);
  for (size_t dim : kDims) {
    for (int rep = 0; rep < 20; ++rep) {
      FeatureVec a = RandomGaussianVector(dim, rng);
      FeatureVec b = RandomGaussianVector(dim, rng);
      float full = simd::SquaredL2(a.data(), b.data(), dim);
      // Loose bound: must run to completion and agree with the unbounded kernel.
      float got = simd::SquaredL2Bounded(a.data(), b.data(), dim, full * 2.0f + 1.0f);
      EXPECT_LT(RelErr(got, full), kRelTol) << "dim=" << dim;
    }
  }
}

TEST(SimdDistanceTest, BoundedOnlyGuaranteesGreaterThanBoundOnExit) {
  Pcg32 rng(11);
  for (size_t dim : kDims) {
    if (dim < 64) {
      continue;  // Small vectors rarely early-exit; covered by the exact case.
    }
    for (int rep = 0; rep < 20; ++rep) {
      FeatureVec a = RandomGaussianVector(dim, rng);
      FeatureVec b = RandomGaussianVector(dim, rng);
      float full = simd::SquaredL2(a.data(), b.data(), dim);
      float bound = full * 0.25f;
      float got = simd::SquaredL2Bounded(a.data(), b.data(), dim, bound);
      EXPECT_GT(got, bound) << "dim=" << dim;
    }
  }
}

TEST(SimdDistanceTest, BatchAgreesRowByRowWithScalarReference) {
  Pcg32 rng(12);
  for (size_t dim : kDims) {
    const size_t n = 33;  // Not a multiple of any internal block size.
    FeatureVec query = RandomGaussianVector(dim, rng);
    std::vector<float> block(n * dim);
    std::vector<FeatureVec> rows;
    for (size_t r = 0; r < n; ++r) {
      FeatureVec v = RandomGaussianVector(dim, rng);
      std::copy(v.begin(), v.end(), block.begin() + r * dim);
      rows.push_back(std::move(v));
    }
    std::vector<float> out(n);
    simd::SquaredL2Batch(query.data(), block.data(), n, dim,
                         std::numeric_limits<float>::max(), out.data());
    for (size_t r = 0; r < n; ++r) {
      double want = SquaredL2Distance(query, rows[r]);
      EXPECT_LT(RelErr(out[r], want), kRelTol) << "dim=" << dim << " row=" << r;
    }
  }
}

TEST(SimdDistanceTest, BatchHonorsBoundContract) {
  Pcg32 rng(13);
  const size_t dim = 256;
  const size_t n = 64;
  FeatureVec query = RandomGaussianVector(dim, rng);
  std::vector<float> block(n * dim);
  std::vector<double> want(n);
  for (size_t r = 0; r < n; ++r) {
    FeatureVec v = RandomGaussianVector(dim, rng);
    std::copy(v.begin(), v.end(), block.begin() + r * dim);
    want[r] = SquaredL2Distance(query, v);
  }
  // Median-ish bound: some rows complete, some early-exit.
  std::vector<double> sorted = want;
  std::sort(sorted.begin(), sorted.end());
  const float bound = static_cast<float>(sorted[n / 2]);
  std::vector<float> out(n);
  simd::SquaredL2Batch(query.data(), block.data(), n, dim, bound, out.data());
  for (size_t r = 0; r < n; ++r) {
    if (out[r] <= bound) {
      EXPECT_LT(RelErr(out[r], want[r]), kRelTol) << "row=" << r;
    } else {
      EXPECT_GT(want[r], static_cast<double>(bound) * (1.0 - kRelTol)) << "row=" << r;
    }
  }
}

TEST(SimdDistanceTest, NormIdentityAgreesWithDirectDistance) {
  Pcg32 rng(14);
  for (size_t dim : {64u, 256u, 1024u}) {
    for (int rep = 0; rep < 20; ++rep) {
      FeatureVec a = RandomUnitVector(dim, rng);
      FeatureVec b = PerturbedUnitVector(a, 0.5, rng);
      float na2 = simd::NormSquared(a.data(), dim);
      float nb2 = simd::NormSquared(b.data(), dim);
      float dot = simd::Dot(a.data(), b.data(), dim);
      float via_norms = simd::SquaredL2FromNorms(na2, nb2, dot);
      double want = SquaredL2Distance(a, b);
      // The identity cancels catastrophically for tiny distances; the tolerance
      // here is absolute in the norm scale, which is how callers use it.
      EXPECT_NEAR(via_norms, want, 1e-3) << "dim=" << dim;
    }
  }
}

TEST(SimdDistanceTest, NormLowerBoundNeverExceedsDistance) {
  Pcg32 rng(15);
  for (size_t dim : {8u, 64u, 512u}) {
    for (int rep = 0; rep < 50; ++rep) {
      FeatureVec a = RandomGaussianVector(dim, rng);
      FeatureVec b = RandomGaussianVector(dim, rng);
      float na = std::sqrt(simd::NormSquared(a.data(), dim));
      float nb = std::sqrt(simd::NormSquared(b.data(), dim));
      double d = SquaredL2Distance(a, b);
      EXPECT_LE(simd::NormLowerBound(na, nb), d * (1.0 + kRelTol) + 1e-6);
    }
  }
}

}  // namespace
}  // namespace focus::common
