file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_frame_sampling.dir/bench/bench_fig12_13_frame_sampling.cc.o"
  "CMakeFiles/bench_fig12_13_frame_sampling.dir/bench/bench_fig12_13_frame_sampling.cc.o.d"
  "bench_fig12_13_frame_sampling"
  "bench_fig12_13_frame_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_frame_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
