// Connected-component blob extraction over a foreground mask.
//
// Takes the binary mask produced by background subtraction and returns bounding boxes
// of 8-connected foreground components, filtered by a minimum area so single-pixel
// noise never becomes an "object".
#ifndef FOCUS_SRC_VISION_BLOB_EXTRACTOR_H_
#define FOCUS_SRC_VISION_BLOB_EXTRACTOR_H_

#include <vector>

#include "src/video/detection.h"
#include "src/video/frame.h"

namespace focus::vision {

struct BlobExtractorOptions {
  // Minimum component area in pixels for a blob to count as an object.
  int min_area = 9;
  // Morphological dilation radius applied to the mask before labelling, to bridge
  // small gaps inside one object.
  int dilate_radius = 1;
};

class BlobExtractor {
 public:
  explicit BlobExtractor(BlobExtractorOptions options = {}) : options_(options) {}

  // Returns the bounding boxes of qualifying blobs in |mask| (255 = foreground).
  std::vector<video::BBox> Extract(const video::FrameBuffer& mask) const;

 private:
  BlobExtractorOptions options_;
};

}  // namespace focus::vision

#endif  // FOCUS_SRC_VISION_BLOB_EXTRACTOR_H_
