#include "src/core/accuracy_evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace focus::core {

AccuracyEvaluator::AccuracyEvaluator(const cnn::SegmentGroundTruth* truth, double fps)
    : truth_(truth),
      frames_per_segment_(std::max<int64_t>(1, static_cast<int64_t>(std::lround(fps)))) {
  assert(truth_ != nullptr);
}

std::set<common::SegmentId> AccuracyEvaluator::ClaimedSegments(const QueryResult& result) const {
  // Count covered frames per segment from the disjoint frame runs.
  std::map<common::SegmentId, int64_t> covered;
  for (const auto& [first, last] : result.frame_runs) {
    common::FrameIndex f = first;
    while (f <= last) {
      common::SegmentId seg = f / frames_per_segment_;
      common::FrameIndex seg_end = (seg + 1) * frames_per_segment_ - 1;
      common::FrameIndex stop = std::min(last, seg_end);
      covered[seg] += stop - f + 1;
      f = stop + 1;
    }
  }
  std::set<common::SegmentId> claimed;
  for (const auto& [seg, frames] : covered) {
    if (frames * 2 >= frames_per_segment_) {
      claimed.insert(seg);
    }
  }
  return claimed;
}

PrecisionRecall AccuracyEvaluator::Evaluate(common::ClassId cls, const QueryResult& result) const {
  const std::set<common::SegmentId>& truth = truth_->SegmentsWithClass(cls);
  std::set<common::SegmentId> claimed = ClaimedSegments(result);

  PrecisionRecall pr;
  pr.claimed_segments = static_cast<int64_t>(claimed.size());
  pr.truth_segments = static_cast<int64_t>(truth.size());
  for (common::SegmentId seg : claimed) {
    if (truth.contains(seg)) {
      ++pr.correct_segments;
    }
  }
  pr.precision = pr.claimed_segments > 0 ? static_cast<double>(pr.correct_segments) /
                                               static_cast<double>(pr.claimed_segments)
                                         : 1.0;
  pr.recall = pr.truth_segments > 0 ? static_cast<double>(pr.correct_segments) /
                                          static_cast<double>(pr.truth_segments)
                                    : 1.0;
  return pr;
}

PrecisionRecall AccuracyEvaluator::EvaluateClasses(const std::vector<common::ClassId>& classes,
                                                   const std::vector<QueryResult>& results) const {
  assert(classes.size() == results.size());
  PrecisionRecall avg;
  if (classes.empty()) {
    return avg;
  }
  double sum_p = 0.0;
  double sum_r = 0.0;
  for (size_t i = 0; i < classes.size(); ++i) {
    PrecisionRecall pr = Evaluate(classes[i], results[i]);
    sum_p += pr.precision;
    sum_r += pr.recall;
    avg.claimed_segments += pr.claimed_segments;
    avg.truth_segments += pr.truth_segments;
    avg.correct_segments += pr.correct_segments;
  }
  avg.precision = sum_p / static_cast<double>(classes.size());
  avg.recall = sum_r / static_cast<double>(classes.size());
  return avg;
}

}  // namespace focus::core
