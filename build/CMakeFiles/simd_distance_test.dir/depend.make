# Empty dependencies file for simd_distance_test.
# This may be replaced when dependencies are built.
