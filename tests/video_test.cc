// Unit tests for the video substrate: catalog, profiles, generator, dataset stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/video/class_catalog.h"
#include "src/video/dataset.h"
#include "src/video/renderer.h"
#include "src/video/stream_generator.h"
#include "src/video/stream_profile.h"

namespace focus::video {
namespace {

constexpr uint64_t kWorldSeed = 42;

TEST(ClassCatalogTest, HasThousandClasses) {
  ClassCatalog catalog(kWorldSeed);
  EXPECT_EQ(catalog.Name(0), "car");
  EXPECT_EQ(catalog.Name(8), "person");
  EXPECT_EQ(catalog.Name(999), "class_0999");
  EXPECT_EQ(catalog.IdForName("car"), 0);
  EXPECT_EQ(catalog.IdForName("no_such_class"), common::kInvalidClass);
}

TEST(ClassCatalogTest, ArchetypesAreUnitNorm) {
  ClassCatalog catalog(kWorldSeed);
  for (common::ClassId c = 0; c < 50; ++c) {
    EXPECT_NEAR(common::Norm(catalog.Archetype(c)), 1.0, 1e-5);
  }
}

TEST(ClassCatalogTest, DeterministicForSameSeed) {
  ClassCatalog a(kWorldSeed);
  ClassCatalog b(kWorldSeed);
  EXPECT_EQ(a.Archetype(123), b.Archetype(123));
  ClassCatalog c(kWorldSeed + 1);
  EXPECT_NE(a.Archetype(123), c.Archetype(123));
}

TEST(ClassCatalogTest, SameGroupArchetypesCloserThanCrossGroup) {
  ClassCatalog catalog(kWorldSeed);
  // Average same-group vs cross-group distances over vehicle classes.
  double same = 0.0;
  int same_n = 0;
  double cross = 0.0;
  int cross_n = 0;
  const auto& vehicles = catalog.ClassesInGroup(SemanticGroup::kVehicle);
  const auto& animals = catalog.ClassesInGroup(SemanticGroup::kAnimal);
  for (size_t i = 0; i < 20 && i < vehicles.size(); ++i) {
    for (size_t j = i + 1; j < 20 && j < vehicles.size(); ++j) {
      same += common::L2Distance(catalog.Archetype(vehicles[i]), catalog.Archetype(vehicles[j]));
      ++same_n;
    }
    for (size_t j = 0; j < 20 && j < animals.size(); ++j) {
      cross += common::L2Distance(catalog.Archetype(vehicles[i]), catalog.Archetype(animals[j]));
      ++cross_n;
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(ClassCatalogTest, GroupsPartitionTheClassSpace) {
  ClassCatalog catalog(kWorldSeed);
  size_t total = 0;
  for (int g = 0; g < kNumSemanticGroups; ++g) {
    total += catalog.ClassesInGroup(static_cast<SemanticGroup>(g)).size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kNumClasses));
}

TEST(StreamProfileTest, ThirteenStreamsMatchingTable1) {
  auto profiles = Table1Profiles();
  ASSERT_EQ(profiles.size(), 13u);
  int traffic = 0;
  int surveillance = 0;
  int news = 0;
  std::set<std::string> names;
  for (const auto& p : profiles) {
    names.insert(p.name);
    switch (p.type) {
      case StreamType::kTraffic:
        ++traffic;
        break;
      case StreamType::kSurveillance:
        ++surveillance;
        break;
      case StreamType::kNews:
        ++news;
        break;
    }
  }
  EXPECT_EQ(traffic, 6);
  EXPECT_EQ(surveillance, 4);
  EXPECT_EQ(news, 3);
  EXPECT_EQ(names.size(), 13u);  // Unique names.
  EXPECT_TRUE(names.contains("auburn_c"));
  EXPECT_TRUE(names.contains("jacksonh"));
  EXPECT_TRUE(names.contains("msnbc"));
}

TEST(StreamProfileTest, FindProfileByName) {
  StreamProfile p;
  EXPECT_TRUE(FindProfile("lausanne", &p));
  EXPECT_EQ(p.type, StreamType::kSurveillance);
  EXPECT_FALSE(FindProfile("nope", &p));
}

TEST(StreamProfileTest, RepresentativeNineAreValid) {
  StreamProfile p;
  for (const std::string& name : RepresentativeNineStreams()) {
    EXPECT_TRUE(FindProfile(name, &p)) << name;
  }
}

class StreamRunTest : public ::testing::Test {
 protected:
  StreamRunTest() : catalog_(kWorldSeed) {
    StreamProfile profile;
    FindProfile("auburn_c", &profile);
    run_ = std::make_unique<StreamRun>(&catalog_, profile, 120.0, 30.0, 7);
  }
  ClassCatalog catalog_;
  std::unique_ptr<StreamRun> run_;
};

TEST_F(StreamRunTest, FrameCountMatchesDuration) {
  EXPECT_EQ(run_->num_frames(), 3600);
  SweepStats stats = run_->ForEachFrame([](common::FrameIndex, const std::vector<Detection>&) {});
  EXPECT_EQ(stats.total_frames, 3600);
}

TEST_F(StreamRunTest, DetectionsOnlyFromPresentClasses) {
  const auto& present = run_->present_classes();
  std::set<common::ClassId> present_set(present.begin(), present.end());
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      EXPECT_TRUE(present_set.contains(d.true_class));
    }
  });
}

TEST_F(StreamRunTest, AppearanceVectorsAreUnitNorm) {
  int checked = 0;
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      if (++checked % 97 == 0) {
        EXPECT_NEAR(common::Norm(d.appearance), 1.0, 1e-5);
      }
    }
  });
  EXPECT_GT(checked, 0);
}

TEST_F(StreamRunTest, SweepIsDeterministic) {
  std::vector<size_t> counts_a;
  std::vector<size_t> counts_b;
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    counts_a.push_back(dets.size());
  });
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    counts_b.push_back(dets.size());
  });
  EXPECT_EQ(counts_a, counts_b);
}

TEST_F(StreamRunTest, FirstObservationOncePerObject) {
  std::map<common::ObjectId, int> firsts;
  std::set<common::ObjectId> seen;
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      if (d.first_observation) {
        ++firsts[d.object_id];
      } else {
        EXPECT_TRUE(seen.contains(d.object_id));
      }
      seen.insert(d.object_id);
    }
  });
  for (const auto& [id, count] : firsts) {
    EXPECT_EQ(count, 1) << "object " << id;
  }
}

TEST_F(StreamRunTest, ObjectFramesAreContiguous) {
  std::map<common::ObjectId, common::FrameIndex> last_frame;
  run_->ForEachFrame([&](common::FrameIndex frame, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      auto it = last_frame.find(d.object_id);
      if (it != last_frame.end()) {
        EXPECT_EQ(frame, it->second + 1) << "object " << d.object_id;
        it->second = frame;
      } else {
        last_frame[d.object_id] = frame;
      }
    }
  });
}

TEST_F(StreamRunTest, PrefixStability) {
  StreamProfile profile;
  FindProfile("auburn_c", &profile);
  StreamRun longer(&catalog_, profile, 240.0, 30.0, 7);
  std::vector<std::pair<common::FrameIndex, common::ObjectId>> a;
  std::vector<std::pair<common::FrameIndex, common::ObjectId>> b;
  run_->ForEachFrame([&](common::FrameIndex f, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      a.emplace_back(f, d.object_id);
    }
  });
  longer.ForEachFrame([&](common::FrameIndex f, const std::vector<Detection>& dets) {
    if (f < run_->num_frames()) {
      for (const Detection& d : dets) {
        b.emplace_back(f, d.object_id);
      }
    }
  });
  EXPECT_EQ(a, b);
}

TEST_F(StreamRunTest, AppearanceDriftsAcrossTrack) {
  // The appearance random walk must move an object's feature vector over time.
  std::map<common::ObjectId, common::FeatureVec> first_seen;
  double max_drift = 0.0;
  run_->ForEachFrame([&](common::FrameIndex, const std::vector<Detection>& dets) {
    for (const Detection& d : dets) {
      auto [it, inserted] = first_seen.emplace(d.object_id, d.appearance);
      if (!inserted) {
        max_drift = std::max(max_drift, common::L2Distance(it->second, d.appearance));
      }
    }
  });
  EXPECT_GT(max_drift, 0.3);
}

TEST_F(StreamRunTest, DiurnalActivityVaries) {
  StreamProfile profile;
  FindProfile("auburn_c", &profile);
  StreamRun run(&catalog_, profile, 10.0, 30.0, 7);
  double day = run.ActivityAt(2 * 3600.0);    // ~noon (start 10:00 + 2h).
  double night = run.ActivityAt(16 * 3600.0); // ~2am.
  EXPECT_GT(day, night);
  EXPECT_GE(night, profile.night_activity_fraction * 0.9);
}

TEST(StreamRunFpsTest, LowerFpsScalesDetections) {
  ClassCatalog catalog(kWorldSeed);
  StreamProfile profile;
  FindProfile("auburn_c", &profile);
  StreamRun full(&catalog, profile, 300.0, 30.0, 7);
  StreamRun low(&catalog, profile, 300.0, 5.0, 7);
  SweepStats s30 = full.ForEachFrame([](common::FrameIndex, const std::vector<Detection>&) {});
  SweepStats s5 = low.ForEachFrame([](common::FrameIndex, const std::vector<Detection>&) {});
  EXPECT_EQ(s30.total_frames, 9000);
  EXPECT_EQ(s5.total_frames, 1500);
  // Same world: ~6x fewer detections at 1/6 the sampling rate.
  EXPECT_NEAR(static_cast<double>(s30.total_detections) / s5.total_detections, 6.0, 1.2);
  // Pixel-diff suppression is rarer when frames are farther apart.
  double supp30 = static_cast<double>(s30.suppressed_detections) / s30.total_detections;
  double supp5 = static_cast<double>(s5.suppressed_detections) / s5.total_detections;
  EXPECT_GT(supp30, supp5);
}

TEST(DatasetTest, StatisticsMatchPaperCharacterization) {
  ClassCatalog catalog(kWorldSeed);
  StreamProfile profile;
  FindProfile("auburn_c", &profile);
  StreamRun run(&catalog, profile, 900.0, 30.0, 7);
  StreamStatistics stats = ComputeStreamStatistics(run);

  EXPECT_GT(stats.total_detections, 0);
  EXPECT_GT(stats.num_moving_objects, 50);
  // §2.2.1: sizeable fraction of frames have no moving objects.
  EXPECT_LT(stats.FractionFramesWithObjects(), 1.0);
  // §2.2.2: only a limited subset of the 1000 classes occurs.
  EXPECT_LT(stats.class_space_fraction, 0.75);
  // Fig. 3: a small fraction of the 1000-class space covers 95% of objects (the paper
  // reports 3%-10%).
  EXPECT_LT(stats.classes_covering_95pct, 0.10);
  EXPECT_GT(stats.top_class_share, 0.05);
}

TEST(DatasetTest, JaccardHigherWithinDomain) {
  ClassCatalog catalog(kWorldSeed);
  StreamProfile a;
  StreamProfile b;
  StreamProfile c;
  FindProfile("auburn_c", &a);
  FindProfile("city_a_d", &b);
  FindProfile("cnn", &c);
  StreamRun ra(&catalog, a, 600.0, 30.0, 1);
  StreamRun rb(&catalog, b, 600.0, 30.0, 2);
  StreamRun rc(&catalog, c, 600.0, 30.0, 3);
  auto sa = ComputeStreamStatistics(ra);
  auto sb = ComputeStreamStatistics(rb);
  auto sc = ComputeStreamStatistics(rc);
  double within = ClassJaccard(sa, sb);
  double cross = ClassJaccard(sa, sc);
  EXPECT_GT(within, 0.05);
  EXPECT_GT(within, cross);
}

TEST(RendererTest, FramesHaveConfiguredSize) {
  ClassCatalog catalog(kWorldSeed);
  StreamProfile profile;
  FindProfile("bend", &profile);
  StreamRun run(&catalog, profile, 30.0, 30.0, 11);
  Renderer renderer(&run);
  FrameBuffer fb = renderer.Render(10);
  EXPECT_EQ(fb.width(), profile.frame_width);
  EXPECT_EQ(fb.height(), profile.frame_height);
}

TEST(RendererTest, MovingObjectsChangePixels) {
  ClassCatalog catalog(kWorldSeed);
  StreamProfile profile;
  FindProfile("jacksonh", &profile);  // Busy: objects present early.
  StreamRun run(&catalog, profile, 60.0, 30.0, 11);
  Renderer renderer(&run);
  // Find a frame with moving objects.
  common::FrameIndex with_objects = -1;
  for (common::FrameIndex f = 60; f < 1800; ++f) {
    if (!renderer.MovingObjectBoxes(f).empty()) {
      with_objects = f;
      break;
    }
  }
  ASSERT_GE(with_objects, 0);
  FrameBuffer t0 = renderer.Render(with_objects);
  FrameBuffer t1 = renderer.Render(with_objects + 15);
  int diff = 0;
  for (size_t i = 0; i < t0.pixels().size(); ++i) {
    if (std::abs(static_cast<int>(t0.pixels()[i]) - static_cast<int>(t1.pixels()[i])) > 20) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 10);
}

TEST(BBoxTest, IoUBasics) {
  BBox a{0, 0, 10, 10};
  BBox b{5, 5, 10, 10};
  BBox c{20, 20, 5, 5};
  EXPECT_NEAR(IoU(a, a), 1.0, 1e-6);
  EXPECT_NEAR(IoU(a, b), 25.0 / 175.0, 1e-6);
  EXPECT_EQ(IoU(a, c), 0.0f);
}

}  // namespace
}  // namespace focus::video
