// Property tests over the query path, parameterized across streams: monotonicity of
// results in the dynamic Kx (§5), time-range consistency, agreement between the
// one-shot QueryEngine and the incremental QuerySession, and index-level invariants
// every query rests on (posting lists consistent with cluster contents, frame runs
// within the recording).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/cnn/ground_truth.h"
#include "src/common/hashing.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_engine.h"
#include "src/core/query_session.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

constexpr double kDurationSec = 75.0;
constexpr double kFps = 30.0;
constexpr int kIndexK = 16;

// One ingested fixture per stream name, shared across the parameterized cases.
struct StreamFixture {
  std::unique_ptr<video::StreamRun> run;
  std::unique_ptr<cnn::Cnn> cheap;
  std::unique_ptr<cnn::Cnn> gt;
  IngestResult ingest;
  std::vector<common::ClassId> query_classes;
};

const video::ClassCatalog& Catalog() {
  static video::ClassCatalog* catalog = new video::ClassCatalog(47);
  return *catalog;
}

const StreamFixture& FixtureFor(const std::string& name) {
  static std::map<std::string, StreamFixture>* fixtures =
      new std::map<std::string, StreamFixture>();
  auto it = fixtures->find(name);
  if (it != fixtures->end()) {
    return it->second;
  }
  StreamFixture fixture;
  video::StreamProfile profile;
  EXPECT_TRUE(video::FindProfile(name, &profile));
  fixture.run = std::make_unique<video::StreamRun>(&Catalog(), profile, kDurationSec, kFps,
                                                   common::HashString(name));
  fixture.cheap = std::make_unique<cnn::Cnn>(cnn::GenericCheapCandidates(9)[0], &Catalog());
  fixture.gt = std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(Catalog().world_seed()), &Catalog());

  IngestParams params;
  params.model = fixture.cheap->desc();
  params.k = kIndexK;
  params.cluster_threshold = 0.5;
  fixture.ingest = RunIngest(*fixture.run, *fixture.cheap, params);

  cnn::SegmentGroundTruth truth(*fixture.run, *fixture.gt);
  fixture.query_classes = truth.DominantClasses(0.95, 3);
  return fixtures->emplace(name, std::move(fixture)).first->second;
}

class QueryProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryProperty, ResultsGrowMonotonicallyWithKx) {
  const StreamFixture& f = FixtureFor(GetParam());
  QueryEngine engine(&f.ingest.index, f.cheap.get(), f.gt.get());
  for (common::ClassId cls : f.query_classes) {
    int64_t prev_frames = -1;
    int64_t prev_centroids = -1;
    std::set<common::FrameIndex> prev_set;
    for (int kx : {1, 2, 4, 8, kIndexK}) {
      QueryResult qr = engine.Query(cls, kx, {}, kFps);
      EXPECT_GE(qr.frames_returned, prev_frames) << "kx=" << kx;
      EXPECT_GE(qr.centroids_classified, prev_centroids) << "kx=" << kx;
      // Frame sets are nested: everything found at a smaller Kx stays found.
      std::set<common::FrameIndex> frames;
      for (const auto& [first, last] : qr.frame_runs) {
        for (common::FrameIndex frame = first; frame <= last; ++frame) {
          frames.insert(frame);
        }
      }
      for (common::FrameIndex frame : prev_set) {
        EXPECT_TRUE(frames.contains(frame)) << "kx=" << kx << " lost frame " << frame;
      }
      prev_frames = qr.frames_returned;
      prev_centroids = qr.centroids_classified;
      prev_set = std::move(frames);
    }
  }
}

TEST_P(QueryProperty, FrameRunsAreSortedDisjointAndInBounds) {
  const StreamFixture& f = FixtureFor(GetParam());
  QueryEngine engine(&f.ingest.index, f.cheap.get(), f.gt.get());
  for (common::ClassId cls : f.query_classes) {
    QueryResult qr = engine.Query(cls, -1, {}, kFps);
    common::FrameIndex prev_end = -2;
    int64_t counted = 0;
    for (const auto& [first, last] : qr.frame_runs) {
      EXPECT_LE(first, last);
      EXPECT_GT(first, prev_end + 1) << "adjacent or overlapping runs not merged";
      EXPECT_GE(first, 0);
      EXPECT_LT(last, f.run->num_frames());
      prev_end = last;
      counted += last - first + 1;
    }
    EXPECT_EQ(counted, qr.frames_returned);
  }
}

TEST_P(QueryProperty, TimeWindowedResultsAreExactlyTheClippedFullResults) {
  const StreamFixture& f = FixtureFor(GetParam());
  QueryEngine engine(&f.ingest.index, f.cheap.get(), f.gt.get());
  common::TimeRange window{.begin_sec = 15.0, .end_sec = 55.0};
  for (common::ClassId cls : f.query_classes) {
    QueryResult full = engine.Query(cls, -1, {}, kFps);
    QueryResult windowed = engine.Query(cls, -1, window, kFps);

    std::set<common::FrameIndex> expected;
    for (const auto& [first, last] : full.frame_runs) {
      for (common::FrameIndex frame = first; frame <= last; ++frame) {
        if (window.ContainsFrame(frame, kFps)) {
          expected.insert(frame);
        }
      }
    }
    std::set<common::FrameIndex> got;
    for (const auto& [first, last] : windowed.frame_runs) {
      for (common::FrameIndex frame = first; frame <= last; ++frame) {
        got.insert(frame);
      }
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_P(QueryProperty, SessionAtFullKMatchesEngineForEveryClass) {
  const StreamFixture& f = FixtureFor(GetParam());
  QueryEngine engine(&f.ingest.index, f.cheap.get(), f.gt.get());
  for (common::ClassId cls : f.query_classes) {
    QuerySession session(&f.ingest.index, f.cheap.get(), f.gt.get(), cls, {}, kFps);
    // Expand through an arbitrary ladder ending at the index width.
    session.ExpandTo(1);
    session.ExpandTo(5);
    session.ExpandTo(kIndexK);
    QueryResult one_shot = engine.Query(cls, -1, {}, kFps);
    EXPECT_EQ(session.total_frames(), one_shot.frames_returned);
    EXPECT_EQ(session.frame_runs(), one_shot.frame_runs);
    EXPECT_EQ(session.total_centroids_classified(), one_shot.centroids_classified);
  }
}

TEST_P(QueryProperty, PostingListsAgreeWithClusterContents) {
  const StreamFixture& f = FixtureFor(GetParam());
  const index::TopKIndex& idx = f.ingest.index;
  for (common::ClassId cls : idx.IndexedClasses()) {
    for (int64_t id : idx.ClustersForClass(cls)) {
      // Every posting points at a cluster that really lists the class.
      const index::ClusterEntry& entry = idx.cluster(id);
      EXPECT_TRUE(entry.MatchesWithin(cls, kIndexK))
          << "posting for class " << cls << " -> cluster " << id << " is stale";
    }
  }
  // And the reverse: every cluster's classes appear in the postings.
  for (const index::ClusterEntry& entry : idx.clusters()) {
    for (common::ClassId cls : entry.topk_classes) {
      const std::vector<int64_t>& postings = idx.ClustersForClass(cls);
      EXPECT_NE(std::find(postings.begin(), postings.end(), entry.cluster_id), postings.end());
    }
  }
}

TEST_P(QueryProperty, QueryCostEqualsCentroidsTimesGtCost) {
  const StreamFixture& f = FixtureFor(GetParam());
  QueryEngine engine(&f.ingest.index, f.cheap.get(), f.gt.get());
  for (common::ClassId cls : f.query_classes) {
    QueryResult qr = engine.Query(cls, -1, {}, kFps);
    EXPECT_NEAR(qr.gpu_millis,
                static_cast<double>(qr.centroids_classified) * f.gt->inference_cost_millis(),
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, QueryProperty,
                         ::testing::Values("auburn_c", "jacksonh", "lausanne", "cnn"));

}  // namespace
}  // namespace focus::core
