// User-facing configuration vocabulary for Focus (§3, §4.4).
#ifndef FOCUS_SRC_CORE_CONFIG_H_
#define FOCUS_SRC_CORE_CONFIG_H_

#include <cstdint>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/model_desc.h"

namespace focus::core {

// Accuracy the query results must achieve relative to the GT-CNN (§3). Defaults
// follow the paper's evaluation setting of 95% precision and 95% recall.
struct AccuracyTarget {
  double precision = 0.95;
  double recall = 0.95;
};

// Ingest-cost vs. query-latency preference (§4.4 "Trading off Ingest Cost and Query
// Latency").
enum class Policy {
  kBalance,    // Minimize ingest + query GPU time (the default).
  kOptIngest,  // Pareto point with the cheapest ingest.
  kOptQuery,   // Pareto point with the fastest queries.
};

const char* PolicyName(Policy policy);

// One "configuration" in the §4.4 sense: the ingest CNN and the three coupled
// parameters Focus tunes per stream.
struct IngestParams {
  cnn::ModelDesc model;           // CheapCNN_i (generic compressed or specialized).
  int k = 4;                      // Top-K index width.
  double cluster_threshold = 0.6; // T, the clustering distance threshold.
  int ls = 0;                     // Ls (0 when the model is generic).
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_CONFIG_H_
