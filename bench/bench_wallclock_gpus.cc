// Wall-clock query latency vs. GPU fleet size (§1, §5, §6.2).
//
// The paper translates GPU-time into user-visible latency: Query-all on a month of
// video is 280 GPU-hours ("to achieve a query latency of one minute ... would require
// tens of thousands of GPUs"), and with Focus "with a 10-GPU cluster, the query
// latency on a 24-hour video goes down from one hour to less than two minutes". This
// bench schedules Focus's centroid classifications and Query-all's full-object
// classifications on virtual GPU clusters of increasing size and prints both wall
// clocks, scaled to a 24-hour recording.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/runtime/gpu_device.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "auburn_c", config);

  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 8);
  if (dominant.empty()) {
    std::fprintf(stderr, "no dominant classes\n");
    return 1;
  }

  // Mean per-query centroid count and the Query-all workload, scaled from the
  // simulated duration up to a 24-hour recording.
  double mean_centroids = 0.0;
  for (common::ClassId cls : dominant) {
    mean_centroids += static_cast<double>(focus.Query(cls).centroids_classified);
  }
  mean_centroids /= static_cast<double>(dominant.size());
  const double scale = (24.0 * 3600.0) / run.duration_sec();
  const int64_t focus_jobs = static_cast<int64_t>(mean_centroids * scale);
  const int64_t query_all_jobs =
      static_cast<int64_t>(static_cast<double>(focus.ingest().detections) * scale);
  const common::GpuMillis cost = focus.gt_cnn().inference_cost_millis();

  bench::PrintHeader("Wall-clock query latency vs GPU fleet size (auburn_c, scaled to 24h)");
  std::printf("Focus centroids/query: %lld    Query-all objects: %lld    GT-CNN cost: %.1fms\n\n",
              static_cast<long long>(focus_jobs), static_cast<long long>(query_all_jobs), cost);
  std::printf("%8s %22s %22s %12s\n", "GPUs", "Query-all latency", "Focus latency", "Speedup");

  auto human = [](common::GpuMillis ms) {
    char buf[64];
    if (ms >= 3600e3) {
      std::snprintf(buf, sizeof(buf), "%.1f h", ms / 3600e3);
    } else if (ms >= 60e3) {
      std::snprintf(buf, sizeof(buf), "%.1f min", ms / 60e3);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f s", ms / 1e3);
    }
    return std::string(buf);
  };

  for (int gpus : {1, 10, 100, 1000}) {
    const common::GpuMillis focus_ms = runtime::ParallelLatencyMillis(focus_jobs, cost, gpus);
    const common::GpuMillis all_ms = runtime::ParallelLatencyMillis(query_all_jobs, cost, gpus);
    std::printf("%8d %22s %22s %12s\n", gpus, human(all_ms).c_str(), human(focus_ms).c_str(),
                bench::FormatFactor(focus_ms > 0 ? all_ms / focus_ms : 0).c_str());
  }

  std::printf(
      "\nPaper checkpoint: on 10 GPUs a 24-hour video takes ~an hour with Query-all\n"
      "and under two minutes with Focus; the speedup factor is flat across fleet\n"
      "sizes until the fleet exceeds the number of Focus centroids.\n");
  return 0;
}
