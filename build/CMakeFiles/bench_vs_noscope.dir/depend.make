# Empty dependencies file for bench_vs_noscope.
# This may be replaced when dependencies are built.
