// Surveillance sweep: query several cameras at once, the "following a theft, the
// police would query a few days of video from a handful of surveillance cameras"
// scenario of §1. Builds Focus on all four Table-1 surveillance streams with the
// Opt-Ingest policy (cameras that rarely get queried should minimize wasted ingest
// work, §4.4), then sweeps one class across all of them and aggregates.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/index/kv_store.h"
#include "src/video/stream_generator.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);

  video::ClassCatalog catalog(42);
  const std::vector<std::string> cameras = {"church_st", "lausanne", "oxford", "sittard"};

  core::FocusOptions options;
  options.policy = core::Policy::kOptIngest;  // Rarely-queried cameras: cheapest ingest.

  std::vector<std::unique_ptr<video::StreamRun>> runs;
  std::vector<std::unique_ptr<core::FocusStream>> deployments;
  std::printf("Deploying Focus (Opt-Ingest) on %zu surveillance cameras...\n", cameras.size());
  for (size_t i = 0; i < cameras.size(); ++i) {
    video::StreamProfile profile;
    if (!video::FindProfile(cameras[i], &profile)) {
      return 1;
    }
    runs.push_back(
        std::make_unique<video::StreamRun>(&catalog, profile, 20 * 60.0, 30.0, 500 + i));
    auto focus_or = core::FocusStream::Build(runs.back().get(), &catalog, options);
    if (!focus_or.ok()) {
      std::printf("  %s failed: %s\n", cameras[i].c_str(), focus_or.error().message.c_str());
      return 1;
    }
    deployments.push_back(std::move(*focus_or));
    const auto& d = *deployments.back();
    std::printf("  %-10s model=%-14s K=%d  ingest %.2f s GPU for %lld detections\n",
                cameras[i].c_str(), d.chosen_params().model.name.c_str(), d.chosen_params().k,
                d.ingest().gpu_millis / 1000.0,
                static_cast<long long>(d.ingest().detections));
  }

  // The investigator sweeps all cameras for backpacks.
  common::ClassId backpack = catalog.IdForName("backpack");
  std::printf("\nSweeping all cameras for '%s':\n", catalog.Name(backpack).c_str());
  int64_t total_frames = 0;
  double total_gpu = 0.0;
  for (size_t i = 0; i < deployments.size(); ++i) {
    core::QueryResult qr = deployments[i]->Query(backpack);
    std::printf("  %-10s %6lld frames in %4zu runs (%.2f s GPU)\n", cameras[i].c_str(),
                static_cast<long long>(qr.frames_returned), qr.frame_runs.size(),
                qr.gpu_millis / 1000.0);
    total_frames += qr.frames_returned;
    total_gpu += qr.gpu_millis;
  }
  std::printf("Sweep total: %lld candidate frames, %.2f s of GPU time across %zu cameras\n",
              static_cast<long long>(total_frames), total_gpu / 1000.0, cameras.size());

  // Persist one camera's index the way the worker processes do (§5: MongoDB in the
  // paper; the embedded KvStore here).
  index::KvStore store;
  auto saved = deployments[0]->ingest().index.SaveTo(store, "camera/" + cameras[0]);
  if (saved.ok()) {
    auto file = store.SaveToFile("/tmp/focus_surveillance_index.bin");
    std::printf("\nIndex of %s persisted to /tmp/focus_surveillance_index.bin (%s, %zu keys)\n",
                cameras[0].c_str(), file.ok() ? "ok" : file.error().message.c_str(),
                store.size());
  }
  return 0;
}
