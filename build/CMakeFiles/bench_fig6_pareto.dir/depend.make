# Empty dependencies file for bench_fig6_pareto.
# This may be replaced when dependencies are built.
