// Sharded intra-stream clustering: one stream's detections partitioned across
// per-shard IncrementalClusterer instances (§5 scale-out *within* a stream).
//
// The paper's ingest tier must keep up with live video per stream, but the
// clusterer/CentroidStore path is inherently sequential: each assignment reads
// the centroids the previous assignment may have moved. This class removes the
// single-core cap by partitioning detections onto num_shards independent
// clusterer+CentroidStore instances and merging their outputs:
//
//   shard(d) = SplitMix64(d.object_id) % num_shards
//
// Hashing on object_id (not frame or round-robin) is load-bearing twice over:
//   - every detection of one object lands in one shard, so the fast path's
//     last_cluster_of_object_ locality and the pixel-differencing
//     AddSuppressed() reuse survive sharding unchanged;
//   - MemberRun bookkeeping stays well-formed — one object's frame runs are
//     built by exactly one shard, in stream order, so runs never interleave or
//     overlap across shards.
//
// Shards cluster independently, which means two shards can each grow a cluster
// for the same real-world appearance (two similar cars whose object ids hash
// apart). A periodic cross-shard merge pass finds shard-local clusters whose
// centroids fall within the clustering threshold T of a cluster in another
// shard and folds them — via a union-find over global cluster ids — into one
// canonical cluster; FinalizeClusters() emits the canonical table the query
// side indexes, with member runs concatenated and sizes conserved.
//
// Cluster ids: a shard-local id l in shard s is published as the global id
//   g = l * num_shards + s
// which is collision-free across shards and reduces to g == l at num_shards=1.
// Canonical ids after merging are the smallest global id of each merged
// component (ties cannot occur; ids are unique).
//
// Determinism guarantees:
//   - the partition is a pure function of object_id, so each shard sees a fixed
//     subsequence of the stream in stream order regardless of thread count or
//     interleaving; each shard's assignments are those of a lone
//     IncrementalClusterer over that subsequence;
//   - the merge pass scans shards and shard-local ids in fixed ascending order
//     and resolves nearest-centroid ties toward the smallest id (CentroidStore
//     semantics), so the union-find — and hence every canonical id — is a pure
//     function of the input stream;
//   - at num_shards == 1 the global ids, the per-detection assignments, and the
//     finalized cluster table are identical to a plain IncrementalClusterer
//     with the same options (the merge pass has no cross-shard pairs and is a
//     no-op).
//
// Thread-safety: externally synchronized. AssignBatch() internally fans out one
// ordered task per shard onto a caller-supplied WorkerPool and drains it before
// returning; no other method may run concurrently with it.
#ifndef FOCUS_SRC_CLUSTER_SHARDED_CLUSTERER_H_
#define FOCUS_SRC_CLUSTER_SHARDED_CLUSTERER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/common/time_types.h"
#include "src/video/detection.h"

namespace focus::runtime {
class WorkerPool;
}  // namespace focus::runtime

namespace focus::cluster {

struct ShardedClustererOptions {
  // Per-shard clustering parameters. max_active caps each shard's active set
  // (the total active working set is up to num_shards * max_active).
  ClustererOptions base;
  size_t num_shards = 1;
  // Assignments between periodic cross-shard merge passes; 0 merges only in
  // FinalizeClusters(). Merging earlier does not change the final table (the
  // union-find only accumulates), it bounds how stale CanonicalOf() can be.
  int64_t merge_interval = 8192;
  // Incremental merge passes re-queue an already-considered active cluster
  // when its centroid has drifted more than this fraction of the clustering
  // threshold T since it was last used as a merge query, so two long-lived
  // clusters converging toward each other fold at the next periodic pass
  // instead of only at the final full pass. 0 disables re-queueing (the
  // pre-PR4 policy: periodic passes only query clusters created since the
  // previous pass).
  double merge_requeue_fraction = 0.5;
  // Boundary-merge mode: the automatic periodic passes are disabled entirely
  // and cross-shard merging happens only when the owner calls
  // BoundaryMergePass() (the windowed finalizer does this at every snapshot
  // cadence boundary) or MergePass()/FinalizeClusters(). The boundary pass is
  // incremental — it re-queries only clusters that are new, retired, or moved
  // since the previous boundary, plus the neighbourhoods those movers
  // invalidated — but it restores the *full-pass* union-find closure at every
  // boundary (see BoundaryMergePass), which is what makes a live epoch
  // byte-identical to halting the stream at that boundary. Checkpoints echo
  // this flag: merging at mid-window positions vs. only at boundaries yields
  // different (both valid) clusterings, so a resumed run must keep the mode.
  bool boundary_merge = false;
};

class ShardedClusterer {
 public:
  explicit ShardedClusterer(ShardedClustererOptions options);

  // One detection ready for assignment (pointers must stay valid through the
  // AssignBatch call that consumes the item).
  struct WorkItem {
    const video::Detection* detection = nullptr;
    const common::FeatureVec* feature = nullptr;
    // True for pixel-diff suppressed detections (routed to AddSuppressed).
    bool suppressed = false;
  };

  size_t num_shards() const { return options_.num_shards; }
  size_t ShardOf(common::ObjectId object) const;
  int64_t GlobalId(size_t shard, int64_t local_id) const {
    return local_id * static_cast<int64_t>(options_.num_shards) + static_cast<int64_t>(shard);
  }

  // Sequential single-detection assignment; returns the global cluster id.
  int64_t Add(const video::Detection& detection, const common::FeatureVec& feature);
  int64_t AddSuppressed(const video::Detection& detection, const common::FeatureVec& feature);

  // Assigns |count| items, writing each item's global cluster id to out[i].
  // With |pool| non-null, one ordered task per non-empty shard runs on the
  // pool (which must be dedicated to this call's tasks — Drain() is used to
  // wait for them); with |pool| null the shards run inline, in shard order.
  // Both paths produce identical assignments (see determinism notes above).
  void AssignBatch(const WorkItem* items, size_t count, runtime::WorkerPool* pool,
                   int64_t* out);

  // Runs one *full* cross-shard merge pass now: every active cluster (plus
  // clusters new since the last pass, even if already retired) is queried
  // against every other shard's active AND frozen retired centroids; a
  // retired cluster that already issued its one final query in an earlier
  // pass is not re-queried — its frozen centroid cannot move, and it stays
  // reachable as a *target* forever, so each duplicate pair is still covered
  // from its later-created side. FinalizeClusters() always runs one full pass
  // as its correctness backstop. The automatic periodic passes (every
  // merge_interval assignments) are *incremental* — they query clusters
  // created since the previous pass, plus already-considered active clusters
  // whose centroid drifted more than merge_requeue_fraction * T since they
  // were last considered (two long-lived clusters converging mid-stream fold
  // at the next periodic pass, not only at the final full pass) — so steady
  // state pays per cluster churn, not per active cluster.
  void MergePass();

  // Runs one *incremental boundary* merge pass: only clusters dirtied since
  // the previous boundary — created, retired, or with a centroid that moved at
  // all (exact comparison; no drift tolerance) — re-issue merge queries, each
  // with the full pass's lower-shard target bound. Because an unmoved
  // cluster's nearest-within-T answer can still change when a *neighbour*
  // moves, every mover's old and new positions are then swept against the
  // higher shards' active centroids (CentroidStore::ForEachWithin at radius
  // T) and the hit clusters re-query too. The result: after this pass a full
  // pass at the same position adds no union edge, i.e. the pass reproduces
  // the full-pass closure at O(dirty + movers * neighbourhood) query cost
  // instead of O(active). Used by the windowed finalizer in boundary_merge
  // mode; a no-op at num_shards == 1.
  void BoundaryMergePass();

  // --- Persistence (see docs/persistence.md) ---
  //
  // One arena + undo-log pair per shard (shard-<s>.arena / shard-<s>.undo)
  // plus a single sharded.meta snapshot carrying every shard's bookkeeping and
  // the cross-shard merge state. The one atomic meta write is the commit point
  // for all shards at once: a crash mid-checkpoint leaves some shard arenas a
  // generation ahead, and recovery rolls each back to the generation the meta
  // recorded — so the recovered multi-shard state is always a consistent cut.

  // Attaches persistent backing under |dir| (created if needed), recovering
  // the newest committed checkpoint when one exists. Must be called before any
  // assignment, with options matching the checkpointed run's.
  common::Result<ClustererRecovery> OpenOrRecover(const std::string& dir);

  // Durably publishes the current state of every shard plus the merge state,
  // with an opaque caller cursor and blob. Must not run concurrently with
  // AssignBatch. With |pool| non-null the per-shard work — arena msync/commit,
  // bookkeeping encode, and undo-log rotation — fans out one task per shard
  // (the pool must be idle and dedicated to this call: Drain() is used to wait
  // for the tasks); the single meta write stays the commit point either way,
  // and errors are reported in ascending shard order so both paths fail
  // identically.
  common::Result<bool> Checkpoint(int64_t position, std::string_view user_state = {},
                                  runtime::WorkerPool* pool = nullptr);

  bool persistent() const { return !meta_path_.empty(); }

  // Canonical id of |global_id| under the merges performed so far.
  int64_t CanonicalOf(int64_t global_id) const;

  // Final canonical cluster table, ascending by canonical id: one cluster per
  // merged component with member runs concatenated in global-id order, size
  // and member runs conserved, centroid the size-weighted mean of the folded
  // centroids, and the representative taken from the smallest-global-id member
  // (the component's canonical cluster).
  std::vector<Cluster> FinalizeClusters();

  int64_t total_assignments() const;
  // Aggregate fast-path hit rate across shards.
  double FastHitRate() const;
  // Cross-shard merge unions performed so far (distinct pairs folded).
  int64_t merges_folded() const { return merges_folded_; }

  const IncrementalClusterer& shard(size_t s) const { return *shards_[s]; }

 private:
  // Union-find over global ids, lazily grown; roots are component minima.
  int64_t Find(int64_t global_id) const;
  void Union(int64_t a, int64_t b);
  void AfterAssignments(int64_t count);
  // |full| re-queries every active cluster; otherwise only clusters created
  // since the last pass are used as queries (against all other shards).
  void RunMergePass(bool full);
  // One cluster's merge queries: nearest-within-T against every other shard's
  // active and retired stores (lower shards only when |lower_only|), unioning
  // on a hit. Shared by the full, periodic, and boundary passes so all three
  // produce identical edges for the same (cluster, position).
  void QueryAgainstShards(size_t s, int64_t local_id, const common::FeatureVec& centroid,
                          float threshold_sq, bool lower_only);

  ShardedClustererOptions options_;
  std::vector<std::unique_ptr<IncrementalClusterer>> shards_;
  // parent_[g] == g for roots; ids beyond the vector are implicit singletons.
  mutable std::vector<int64_t> parent_;
  // Per shard: local cluster count already used as merge queries, so periodic
  // passes only query what appeared since the previous pass.
  std::vector<size_t> merge_scanned_;
  // Per shard: the already-considered *active* clusters (ascending local id)
  // with each one's centroid as of its last use as a merge query, so
  // incremental passes can re-queue clusters that drifted since
  // (merge_requeue_fraction). Entries are dropped as clusters retire, keeping
  // every pass O(active working set) — never O(clusters ever created).
  struct MergeCandidate {
    size_t local_id = 0;
    common::FeatureVec snapshot;  // Centroid when last considered.
  };
  std::vector<std::vector<MergeCandidate>> merge_considered_;
  int64_t assignments_since_merge_ = 0;
  int64_t merges_folded_ = 0;
  // Per-shard item index lists, reused across AssignBatch calls.
  std::vector<std::vector<size_t>> shard_items_;
  // Persistence (empty when volatile).
  std::string persist_dir_;
  std::string meta_path_;
};

}  // namespace focus::cluster

#endif  // FOCUS_SRC_CLUSTER_SHARDED_CLUSTERER_H_
