// Architecture descriptors for (simulated) CNN classifiers.
//
// A ModelDesc captures everything that determines a model's cost and accuracy in this
// system: depth (convolutional layers), input resolution, the label space it
// classifies over, and the training context (generic ImageNet-style vs. specialized
// to one stream's constrained appearance). Real weights never exist — src/cnn/cnn.h
// turns a descriptor into a behavioural model with calibrated error statistics.
#ifndef FOCUS_SRC_CNN_MODEL_DESC_H_
#define FOCUS_SRC_CNN_MODEL_DESC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time_types.h"
#include "src/video/class_catalog.h"

namespace focus::cnn {

// Label id of the synthetic OTHER class in specialized models (§4.3): "not one of the
// Ls classes this model was specialized for".
inline constexpr common::ClassId kOtherClass = video::kNumClasses;

// Reference architecture constants (ResNet152 @ 224px is the paper's GT-CNN).
inline constexpr int kGtCnnLayers = 152;
inline constexpr int kGtCnnInputPx = 224;

struct ModelDesc {
  std::string name;
  // Convolutional depth; compression removes layers (§2.1).
  int layers = kGtCnnLayers;
  // Input image side in pixels; compression rescales inputs (§4.1).
  int input_px = kGtCnnInputPx;

  // Label space. Empty means the full generic space [0, kNumClasses). A specialized
  // model lists its Ls most-frequent stream classes; |has_other_class| appends the
  // OTHER catch-all label.
  std::vector<common::ClassId> classes;
  bool has_other_class = false;

  // Appearance variability of the training distribution: 1.0 for generic training
  // data (ImageNet-like); a stream-specialized model is trained on that stream's more
  // constrained objects (§4.3), so it inherits the stream's lower variability and the
  // classification task gets easier.
  double training_variability = 1.0;

  // Seed namespace for this model's deterministic error draws.
  uint64_t weights_seed = 0;

  bool specialized() const { return !classes.empty(); }

  // Number of labels the model can emit.
  int label_space_size() const {
    if (classes.empty()) {
      return video::kNumClasses;
    }
    return static_cast<int>(classes.size()) + (has_other_class ? 1 : 0);
  }
};

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_MODEL_DESC_H_
