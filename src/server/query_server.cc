#include "src/server/query_server.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"

namespace focus::server {

namespace {

runtime::FleetQueryServiceOptions FleetOptionsFrom(
    const runtime::QueryServiceOptions& options) {
  runtime::FleetQueryServiceOptions fleet_options;
  fleet_options.num_gpus = options.num_gpus;
  fleet_options.batch_size = options.batch_size;
  fleet_options.launch_retry = options.launch_retry;
  return fleet_options;
}

// --- Supervised shm serving: the server <-> worker wire -----------------
//
//   request:   Q <cls> <kx> <begin> <end>          (range bounds in hexfloat)
//   reply ok:  R <epoch> <watermark> <centroids> <matched> <frames> <gpu>
//              [<first>:<last> ...]                (gpu in hexfloat)
//   reply err: E <CodeName> <message...>
//
// Floating fields cross as hexfloat so the answer the parent frames is
// bit-exact against an in-process query of the same epoch. Decoding
// tokenizes and converts with strtod — istream extraction does not accept
// hexfloat, so a stream-based parse would silently read 0.

// Reverse of common::ErrorCodeName, so a worker-side typed error survives
// the trip as the same code instead of collapsing to a generic failure.
common::ErrorCode ErrorCodeFromName(const std::string& name) {
  static constexpr common::ErrorCode kCodes[] = {
      common::ErrorCode::kInvalidArgument, common::ErrorCode::kNotFound,
      common::ErrorCode::kFailedPrecondition, common::ErrorCode::kOutOfRange,
      common::ErrorCode::kInternal,        common::ErrorCode::kIo,
      common::ErrorCode::kUnavailable,     common::ErrorCode::kTimeout,
      common::ErrorCode::kDataLoss,
  };
  for (common::ErrorCode code : kCodes) {
    if (name == common::ErrorCodeName(code)) {
      return code;
    }
  }
  return common::ErrorCode::kInternal;
}

bool ParseI64(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end != token.c_str() && *end == '\0';
}

// strtod accepts hexfloat ("0x1.8p+3"), which the wire relies on.
bool ParseF64(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

// A shm query answer plus the epoch provenance the response frames.
struct ShmAnswer {
  uint64_t epoch = 0;
  int64_t watermark = 0;
  core::QueryResult result;
};

std::string EncodeWorkerRequest(common::ClassId cls, int kx, common::TimeRange range) {
  std::ostringstream out;
  out << "Q " << cls << ' ' << kx << ' ' << std::hexfloat << range.begin_sec << ' '
      << range.end_sec;
  return out.str();
}

std::string EncodeWorkerError(const common::Error& error) {
  return std::string("E ") + common::ErrorCodeName(error.code) + " " + error.message;
}

std::string EncodeWorkerReply(const ShmAnswer& answer) {
  std::ostringstream out;
  out << "R " << answer.epoch << ' ' << answer.watermark << ' '
      << answer.result.centroids_classified << ' ' << answer.result.clusters_matched << ' '
      << answer.result.frames_returned << ' ' << std::hexfloat << answer.result.gpu_millis;
  for (const auto& [first, last] : answer.result.frame_runs) {
    out << ' ' << first << ':' << last;
  }
  return out.str();
}

common::Result<ShmAnswer> DecodeWorkerReply(const std::string& reply,
                                            common::ClassId queried) {
  const std::vector<std::string> tokens = Tokenize(reply);
  if (tokens.empty()) {
    return common::IoError("empty worker reply");
  }
  if (tokens[0] == "E") {
    if (tokens.size() < 2) {
      return common::IoError("malformed worker error frame: " + reply);
    }
    std::string message;
    for (size_t i = 2; i < tokens.size(); ++i) {
      if (i > 2) {
        message += ' ';
      }
      message += tokens[i];
    }
    return common::Error{ErrorCodeFromName(tokens[1]), std::move(message)};
  }
  if (tokens[0] != "R" || tokens.size() < 7) {
    return common::IoError("malformed worker reply frame: " + reply);
  }
  ShmAnswer answer;
  answer.result.queried = queried;
  int64_t epoch = 0;
  int64_t centroids = 0;
  int64_t matched = 0;
  int64_t frames = 0;
  if (!ParseI64(tokens[1], &epoch) || !ParseI64(tokens[2], &answer.watermark) ||
      !ParseI64(tokens[3], &centroids) || !ParseI64(tokens[4], &matched) ||
      !ParseI64(tokens[5], &frames) || !ParseF64(tokens[6], &answer.result.gpu_millis)) {
    return common::IoError("bad number in worker reply frame: " + reply);
  }
  answer.epoch = static_cast<uint64_t>(epoch);
  answer.result.centroids_classified = centroids;
  answer.result.clusters_matched = matched;
  answer.result.frames_returned = frames;
  for (size_t i = 7; i < tokens.size(); ++i) {
    const size_t colon = tokens[i].find(':');
    int64_t first = 0;
    int64_t last = 0;
    if (colon == std::string::npos || !ParseI64(tokens[i].substr(0, colon), &first) ||
        !ParseI64(tokens[i].substr(colon + 1), &last)) {
      return common::IoError("bad frame run in worker reply: " + tokens[i]);
    }
    answer.result.frame_runs.emplace_back(first, last);
  }
  return answer;
}

// Acquire + QueryChecked under a short in-place retry budget: a pin evicted
// mid-scan, or a plane outpacing the reader, is retryable right here — the
// next Acquire pins the newer epoch.
common::Result<ShmAnswer> QueryPinned(shm::ShmSnapshotReader& reader, common::ClassId cls,
                                      int kx, common::TimeRange range, const cnn::Cnn& cheap,
                                      const cnn::Cnn& gt) {
  constexpr int kAttempts = 3;
  common::Error last = common::Unavailable("no epoch acquired");
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    auto view = reader.Acquire();
    if (!view.ok()) {
      last = view.error();
      if (!common::IsRetryable(last.code)) {
        break;
      }
      continue;
    }
    auto result = view->QueryChecked(cls, kx, range, cheap, gt);
    if (!result.ok()) {
      last = result.error();
      if (!common::IsRetryable(last.code)) {
        break;
      }
      continue;
    }
    ShmAnswer answer;
    answer.epoch = view->epoch();
    answer.watermark = view->watermark();
    answer.result = std::move(*result);
    return answer;
  }
  return last;
}

// Everything a forked query worker owns, built lazily on its first request:
// its own reader slot and the models rebuilt from the plane's seed provenance.
// Nothing crosses the fork but the segment name — the same cold-process
// discipline the focus_shm_query CLI follows.
struct ShmWorkerState {
  explicit ShmWorkerState(std::string name) : segment(std::move(name)) {}

  std::string segment;
  runtime::MetricsRegistry metrics;
  std::unique_ptr<shm::ShmSnapshotReader> reader;
  std::unique_ptr<video::ClassCatalog> catalog;
  std::unique_ptr<cnn::Cnn> cheap;
  std::unique_ptr<cnn::Cnn> gt;

  common::Result<std::monostate> EnsureAttached() {
    if (reader != nullptr) {
      return std::monostate{};
    }
    auto attached = shm::ShmSnapshotReader::Attach(segment, &metrics);
    if (!attached.ok()) {
      return attached.error();
    }
    auto provenance = (*attached)->Provenance();
    if (!provenance.ok()) {
      return provenance.error();
    }
    auto candidates = cnn::GenericCheapCandidates(provenance->cheap_weights_seed);
    if (provenance->cheap_candidate_index >= candidates.size()) {
      return common::FailedPrecondition("provenance cheap candidate index out of range");
    }
    reader = std::move(*attached);
    catalog = std::make_unique<video::ClassCatalog>(provenance->world_seed);
    cheap = std::make_unique<cnn::Cnn>(candidates[provenance->cheap_candidate_index],
                                       catalog.get());
    gt = std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(provenance->gt_weights_seed),
                                    catalog.get());
    return std::monostate{};
  }

  std::string Handle(const std::string& request) {
    const std::vector<std::string> tokens = Tokenize(request);
    int64_t cls = 0;
    int64_t kx = 0;
    common::TimeRange range;
    if (tokens.size() != 5 || tokens[0] != "Q" || !ParseI64(tokens[1], &cls) ||
        !ParseI64(tokens[2], &kx) || !ParseF64(tokens[3], &range.begin_sec) ||
        !ParseF64(tokens[4], &range.end_sec)) {
      return EncodeWorkerError(common::InvalidArgument("malformed worker request: " + request));
    }
    if (auto attached = EnsureAttached(); !attached.ok()) {
      return EncodeWorkerError(attached.error());
    }
    auto answer = QueryPinned(*reader, static_cast<common::ClassId>(cls),
                              static_cast<int>(kx), range, *cheap, *gt);
    if (!answer.ok()) {
      return EncodeWorkerError(answer.error());
    }
    return EncodeWorkerReply(*answer);
  }
};

// The response payload every shm query path shares: same formatter, so a
// worker answer, an unserved in-process answer, and a degraded fallback
// differ only in their head tag — byte-identical from EPOCH on.
std::string ShmAnswerPayload(const std::string& head, const ShmAnswer& answer) {
  std::ostringstream out;
  out << head << " EPOCH " << answer.epoch << " WATERMARK " << answer.watermark
      << " FRAMES " << answer.result.frames_returned << " RUNS "
      << answer.result.frame_runs.size() << " CENTROIDS "
      << answer.result.centroids_classified << " GPU_MS " << answer.result.gpu_millis;
  for (const auto& [first, last] : answer.result.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return out.str();
}

}  // namespace

QueryServer::QueryServer(const core::FocusFleet* fleet, const video::ClassCatalog* catalog,
                         runtime::MetricsRegistry* metrics,
                         runtime::QueryServiceOptions service_options,
                         const runtime::IngestService* live)
    : fleet_(fleet),
      catalog_(catalog),
      metrics_(metrics != nullptr ? metrics : &runtime::GlobalMetrics()),
      live_(live),
      service_(FleetOptionsFrom(service_options), metrics) {}

std::string QueryServer::HandleLine(const std::string& line) {
  metrics_->IncrementCounter("server.requests");
  auto request = ParseRequest(line);
  if (!request.ok()) {
    metrics_->IncrementCounter("server.parse_errors");
    return ErrResponse(request.error().code, request.error().message);
  }
  return Handle(*request);
}

std::string QueryServer::Handle(const Request& request) {
  switch (request.verb) {
    case Verb::kPing:
      return OkResponse("PONG");
    case Verb::kCameras:
      return HandleCameras();
    case Verb::kClasses:
      return HandleClasses(request.class_filter);
    case Verb::kStats:
      return HandleStats(request.camera);
    case Verb::kHealth:
      return HandleHealth(request.camera);
    case Verb::kQuery:
      return HandleQuery(request);
    case Verb::kShm:
      return HandleShm(request);
  }
  return ErrResponse(common::ErrorCode::kInternal, "unhandled verb");
}

std::string QueryServer::HandleShm(const Request& request) {
  // One line per plane: segment name, published generation/epoch progress,
  // and the pin-protocol accounting (docs/shm_serving.md).
  const auto plane_line = [](const std::string& name, const shm::ShmPlaneStats& stats) {
    std::ostringstream line;
    line << name << " GEN " << stats.published_generation << " EPOCHS "
         << stats.epochs_published << " READERS " << stats.live_readers << " ATTACHES "
         << stats.reader_attaches << " RECLAIMED " << stats.stale_pins_reclaimed
         << " VIOLATIONS " << stats.pin_violations << " ARENA " << stats.arena_used_bytes
         << "/" << stats.segment_bytes;
    return line.str();
  };

  // STATUS of a serving plane appends the pool's health after the plane
  // stats, so one line answers both "is the plane alive" and "who serves it".
  const auto pool_suffix = [](const ShmPlane& plane) {
    if (plane.pool == nullptr) {
      return std::string();
    }
    const runtime::SupervisedPoolStats stats = plane.pool->stats();
    std::ostringstream out;
    out << " WORKERS " << plane.pool->live_workers() << "/" << plane.pool->size()
        << " RESTARTS " << stats.restarts << " DOWN "
        << plane.pool->size() - plane.pool->live_workers();
    return out.str();
  };

  std::lock_guard<std::mutex> lock(shm_mu_);
  if (request.shm_op == "ATTACH") {
    if (shm_planes_.contains(request.shm_name)) {
      return ErrResponse(common::ErrorCode::kFailedPrecondition,
                         "already attached to " + request.shm_name);
    }
    auto reader = shm::ShmSnapshotReader::Attach(request.shm_name, metrics_);
    if (!reader.ok()) {
      metrics_->IncrementCounter("server.shm_attach_errors");
      return ErrResponse(reader.error().code, reader.error().message);
    }
    ShmPlane plane;
    plane.reader = std::move(*reader);
    const shm::ShmPlaneStats stats = plane.reader->stats();
    shm_planes_.emplace(request.shm_name, std::move(plane));
    metrics_->IncrementCounter("server.shm_attaches");
    return OkResponse("ATTACHED " + plane_line(request.shm_name, stats));
  }
  if (request.shm_op == "SERVE" || request.shm_op == "QUERY") {
    const auto it = shm_planes_.find(request.shm_name);
    if (it == shm_planes_.end()) {
      return ErrResponse(common::ErrorCode::kNotFound,
                         "not attached to " + request.shm_name);
    }
    return request.shm_op == "SERVE" ? HandleShmServe(request, it->second)
                                     : HandleShmQuery(request, it->second);
  }
  if (!request.shm_name.empty()) {
    const auto it = shm_planes_.find(request.shm_name);
    if (it == shm_planes_.end()) {
      return ErrResponse(common::ErrorCode::kNotFound,
                         "not attached to " + request.shm_name);
    }
    return OkResponse(plane_line(it->first, it->second.reader->stats()) +
                      pool_suffix(it->second));
  }
  std::ostringstream out;
  out << shm_planes_.size();
  for (const auto& [name, plane] : shm_planes_) {
    out << "\n" << plane_line(name, plane.reader->stats()) << pool_suffix(plane);
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleShmServe(const Request& request, ShmPlane& plane) {
  // A live pool is not silently replaced — but a pool whose every slot has
  // exhausted its restart budget is only good for routing around, so SERVE
  // over it is the operator's recovery verb: tear it down and start fresh.
  if (plane.pool != nullptr) {
    if (!plane.pool->AllDown()) {
      return ErrResponse(common::ErrorCode::kFailedPrecondition,
                         "already serving " + request.shm_name);
    }
    plane.pool->Shutdown();
    plane.pool.reset();
  }
  runtime::SupervisedPoolOptions options = shm_serve_options_;
  if (request.shm_workers > 0) {
    options.num_workers = request.shm_workers;
  }
  auto pool = std::make_unique<runtime::SupervisedWorkerPool>(options, metrics_);
  // Each forked worker attaches its own reader slot and rebuilds its models
  // lazily inside the child; the handler closure carries only the name.
  auto state = std::make_shared<ShmWorkerState>(request.shm_name);
  auto started =
      pool->Start([state](const std::string& line) { return state->Handle(line); });
  if (!started.ok()) {
    return ErrResponse(started.error().code, started.error().message);
  }
  plane.pool = std::move(pool);
  metrics_->IncrementCounter("server.shm_serves");
  std::ostringstream out;
  out << "SERVING " << request.shm_name << " WORKERS " << options.num_workers
      << " DEADLINE_MS " << options.call_deadline_millis;
  return OkResponse(out.str());
}

std::string QueryServer::HandleShmQuery(const Request& request, ShmPlane& plane) {
  if (auto models = EnsurePlaneModels(plane); !models.ok()) {
    return ErrResponse(models.error().code, models.error().message);
  }
  const common::ClassId cls = plane.catalog->IdForName(request.class_name);
  if (cls == common::kInvalidClass) {
    return ErrResponse(common::ErrorCode::kNotFound,
                       "unknown class " + request.class_name);
  }

  // The server's own reader answers when nothing is serving and when the
  // whole pool is Down; only the head tag differs (docs/shm_serving.md).
  const auto answer_inproc = [&](const std::string& head,
                                 bool degraded) -> std::string {
    auto answer =
        QueryPinned(*plane.reader, cls, request.kx, request.range, *plane.cheap, *plane.gt);
    if (!answer.ok()) {
      metrics_->IncrementCounter("server.query_errors");
      return ErrResponse(answer.error().code, answer.error().message);
    }
    metrics_->IncrementCounter("server.shm_queries");
    if (degraded) {
      metrics_->IncrementCounter("server.degraded_queries");
    }
    return OkResponse(ShmAnswerPayload(head, *answer));
  };

  if (plane.pool == nullptr) {
    return answer_inproc("SHM " + request.shm_name + " INPROC", /*degraded=*/false);
  }

  // Degrade only when every worker slot has exhausted its restart budget —
  // noticed up front, or by the call that burned the last budget. Any other
  // failure surfaces typed: supervision already killed, respawned, and
  // retried on a sibling before giving up.
  if (!plane.pool->AllDown()) {
    auto reply = plane.pool->Call(EncodeWorkerRequest(cls, request.kx, request.range));
    if (reply.ok()) {
      auto answer = DecodeWorkerReply(*reply, cls);
      if (!answer.ok()) {
        // The worker answered with a typed error it computed (attach or
        // acquire failure) — not a transport fault; pass it through.
        metrics_->IncrementCounter("server.query_errors");
        return ErrResponse(answer.error().code, answer.error().message);
      }
      metrics_->IncrementCounter("server.shm_queries");
      return OkResponse(ShmAnswerPayload("SHM " + request.shm_name, *answer));
    }
    if (!plane.pool->AllDown()) {
      metrics_->IncrementCounter("server.query_errors");
      return ErrResponse(reply.error().code, reply.error().message);
    }
  }
  return answer_inproc("DEGRADED INPROC " + request.shm_name, /*degraded=*/true);
}

common::Result<std::monostate> QueryServer::EnsurePlaneModels(ShmPlane& plane) {
  if (plane.catalog != nullptr) {
    return std::monostate{};
  }
  auto provenance = plane.reader->Provenance();
  if (!provenance.ok()) {
    return provenance.error();
  }
  auto candidates = cnn::GenericCheapCandidates(provenance->cheap_weights_seed);
  if (provenance->cheap_candidate_index >= candidates.size()) {
    return common::FailedPrecondition("provenance cheap candidate index out of range");
  }
  plane.catalog = std::make_unique<video::ClassCatalog>(provenance->world_seed);
  plane.cheap = std::make_unique<cnn::Cnn>(candidates[provenance->cheap_candidate_index],
                                           plane.catalog.get());
  plane.gt = std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(provenance->gt_weights_seed),
                                        plane.catalog.get());
  return std::monostate{};
}

std::string QueryServer::HandleQuery(const Request& request) {
  const common::ClassId cls = catalog_->IdForName(request.class_name);
  if (cls == common::kInvalidClass) {
    return ErrResponse(common::ErrorCode::kNotFound,
                       "unknown class " + request.class_name);
  }
  if (!request.region.empty() || !request.cameras.empty()) {
    return HandleFederatedQuery(request, cls);
  }
  const core::FocusStream* stream = fleet_->Find(request.camera);
  if (stream == nullptr) {
    if (live_ != nullptr && live_->LiveContext(request.camera) != nullptr) {
      return HandleLiveQuery(request, cls);
    }
    return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + request.camera);
  }

  // Execute through the shared fleet service (§5, docs/fleet_serving.md): the
  // plan's centroid classifications run launch-packed on the process-wide
  // virtual cluster, and their verdicts land in the global cache keyed on
  // (camera, epoch, centroid) — a repeat of this query, by anyone, pays
  // nothing. The result payload is identical either way; only LATENCY_MS
  // reflects the cache (0 on a fully warm repeat).
  runtime::FleetQueryRequest fleet_request;
  fleet_request.camera = request.camera;
  fleet_request.tenant = request.tenant;
  fleet_request.query = runtime::QueryRequest{stream, cls, request.kx, request.range};
  const runtime::QueryExecution execution = service_.Execute(fleet_request);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  // Payload: summary line, then one "RUN first last" per frame run.
  const core::QueryResult& qr = execution.result;
  std::ostringstream out;
  out << "FRAMES " << qr.frames_returned << " RUNS " << qr.frame_runs.size() << " CENTROIDS "
      << qr.centroids_classified << " GPU_MS " << qr.gpu_millis << " LATENCY_MS "
      << execution.latency_millis();
  for (const auto& [first, last] : qr.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleLiveQuery(const Request& request, common::ClassId cls) {
  const runtime::LiveStreamContext* context = live_->LiveContext(request.camera);
  // Pin the newest epoch for the whole request: the shared_ptr keeps the
  // snapshot's index entries alive even if ingest publishes a newer epoch
  // mid-query, and the response is byte-identical to halting ingest at the
  // snapshot's watermark and finalizing (docs/live_query.md).
  std::shared_ptr<const core::LiveSnapshot> snapshot = context->slot.Latest();
  // Degraded serving (docs/robustness.md): a stream whose ingest worker has
  // failed still answers from its last-good epoch — framed STALE, never
  // silently passed off as live — because an index that lags the recording is
  // still a correct index over the frames it covers.
  const runtime::StreamHealth health = live_->Health(request.camera);
  if (snapshot == nullptr) {
    if (health.state == runtime::StreamState::kDown) {
      return ErrResponse(common::ErrorCode::kUnavailable,
                         "stream " + request.camera + " is down with no published snapshot: " +
                             health.last_error);
    }
    return ErrResponse(common::ErrorCode::kFailedPrecondition,
                       "no snapshot published yet for " + request.camera);
  }
  runtime::FleetQueryRequest fleet_request;
  fleet_request.camera = request.camera;
  fleet_request.tenant = request.tenant;
  fleet_request.query.cls = cls;
  fleet_request.query.kx = request.kx;
  fleet_request.query.range = request.range;
  fleet_request.query.snapshot = snapshot;
  fleet_request.query.ingest_cnn = context->ingest_cnn.get();
  fleet_request.query.gt_cnn = context->gt_cnn.get();
  fleet_request.query.fps = context->fps;
  const runtime::QueryExecution execution = service_.Execute(fleet_request);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.live_queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  const bool stale = health.state != runtime::StreamState::kHealthy;
  if (stale) {
    metrics_->IncrementCounter("server.stale_queries");
  }
  const core::QueryResult& qr = execution.result;
  std::ostringstream out;
  out << (stale ? "STALE" : "LIVE") << " EPOCH " << snapshot->epoch << " WATERMARK "
      << snapshot->watermark << " FRAMES " << qr.frames_returned << " RUNS "
      << qr.frame_runs.size() << " CENTROIDS " << qr.centroids_classified << " GPU_MS "
      << qr.gpu_millis << " LATENCY_MS " << execution.latency_millis();
  for (const auto& [first, last] : qr.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleFederatedQuery(const Request& request, common::ClassId cls) {
  core::FederatedSelector selector;
  selector.cameras = request.cameras;
  selector.region = request.region;
  auto plan = fleet_->PlanFederated(cls, selector, request.range, request.kx);
  if (!plan.ok()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(plan.error().code, plan.error().message);
  }
  const runtime::FederatedExecution execution =
      service_.ExecuteFederated(*plan, request.tenant);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.federated_queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.total_gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  // Payload: fleet summary, then per camera one "CAM ..." provenance line
  // (EPOCH/WATERMARK for live members) followed by its "RUN first last" lines.
  const core::FleetQueryResult& fr = execution.result;
  std::ostringstream out;
  out << "FEDERATED " << fr.hits.size() << " FRAMES " << fr.total_frames << " CENTROIDS "
      << fr.total_centroids_classified << " GPU_MS " << fr.total_gpu_millis << " LATENCY_MS "
      << execution.latency_millis();
  for (const core::CameraHits& hits : fr.hits) {
    out << "\nCAM " << hits.camera << " FRAMES " << hits.result.frames_returned << " RUNS "
        << hits.result.frame_runs.size();
    if (hits.live) {
      out << " EPOCH " << hits.epoch << " WATERMARK " << hits.watermark;
    }
    for (const auto& [first, last] : hits.result.frame_runs) {
      out << "\nRUN " << first << " " << last;
    }
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleHealth(const std::string& camera) {
  // One line per stream: name, supervision state, restart/failure counters,
  // and — for live streams with a published epoch — how far the queryable
  // snapshot reaches. The last failure's code and message close the line.
  const auto stream_line = [this](const std::string& name,
                                  const runtime::StreamHealth& health) {
    std::ostringstream line;
    line << name << " STATE " << runtime::StreamStateName(health.state) << " RESTARTS "
         << health.restarts << " FAILURES " << health.consecutive_failures;
    if (live_ != nullptr) {
      if (auto snapshot = live_->LatestSnapshot(name); snapshot != nullptr) {
        line << " EPOCH " << snapshot->epoch << " WATERMARK " << snapshot->watermark;
      }
    }
    if (!health.last_error.empty()) {
      line << " LAST " << common::ErrorCodeName(health.last_code) << " "
           << health.last_error;
    }
    return line.str();
  };

  if (!camera.empty()) {
    const bool known =
        fleet_->Find(camera) != nullptr ||
        (live_ != nullptr && live_->LiveContext(camera) != nullptr);
    if (!known) {
      return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + camera);
    }
    // A fleet camera (or a live stream that never failed) reads Healthy.
    const runtime::StreamHealth health =
        live_ != nullptr ? live_->Health(camera) : runtime::StreamHealth{};
    return OkResponse(stream_line(camera, health));
  }

  // Fleet listing: every stream with a registered failure or restart. Streams
  // running clean are implicitly Healthy and omitted — an empty listing means
  // the whole fleet is healthy.
  const std::map<std::string, runtime::StreamHealth> fleet =
      live_ != nullptr ? live_->FleetHealth() : std::map<std::string, runtime::StreamHealth>{};
  std::ostringstream out;
  out << fleet.size();
  for (const auto& [name, health] : fleet) {
    out << "\n" << stream_line(name, health);
  }

  // Serving planes join the listing after the streams: one WORKERS summary
  // per pool, then one WORKER line per slot that has failed or restarted
  // (clean slots are omitted, like clean streams; the leading count stays the
  // stream count).
  std::lock_guard<std::mutex> lock(shm_mu_);
  for (const auto& [name, plane] : shm_planes_) {
    if (plane.pool == nullptr) {
      continue;
    }
    out << "\nWORKERS " << name << " " << plane.pool->live_workers() << "/"
        << plane.pool->size() << " RESTARTS " << plane.pool->stats().restarts;
    const std::vector<runtime::WorkerHealth> workers = plane.pool->FleetHealth();
    for (size_t i = 0; i < workers.size(); ++i) {
      const runtime::WorkerHealth& health = workers[i];
      if (health.state == runtime::WorkerState::kHealthy && health.restarts == 0 &&
          health.consecutive_failures == 0) {
        continue;
      }
      out << "\nWORKER " << name << "#" << i << " STATE "
          << runtime::WorkerStateName(health.state) << " RESTARTS " << health.restarts
          << " FAILURES " << health.consecutive_failures;
      if (!health.last_error.empty()) {
        out << " LAST " << common::ErrorCodeName(health.last_code) << " "
            << health.last_error;
      }
    }
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleCameras() {
  std::ostringstream out;
  const std::vector<std::string> names = fleet_->CameraNames();
  out << names.size();
  for (const std::string& name : names) {
    out << "\n" << name;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleClasses(const std::string& filter) {
  std::ostringstream out;
  int matches = 0;
  std::ostringstream list;
  for (common::ClassId cls = 0; cls < video::kNumClasses; ++cls) {
    const std::string& name = catalog_->Name(cls);
    if (!filter.empty() && name.find(filter) == std::string::npos) {
      continue;
    }
    ++matches;
    if (matches <= 50) {  // Bounded payload; the filter narrows further.
      list << "\n" << name;
    }
  }
  out << matches << (matches > 50 ? " (first 50 shown)" : "") << list.str();
  return OkResponse(out.str());
}

std::string QueryServer::HandleStats(const std::string& camera) {
  if (camera.empty()) {
    // Bare STATS: the shared fleet query service. One summary line, then one
    // "TENANT <name> DEPTH <d>" line per tenant with queued work.
    const runtime::FleetServiceStats stats = service_.stats();
    const std::map<std::string, size_t> depths = service_.QueueDepths();
    std::ostringstream out;
    out << "SERVICE REQUESTS " << stats.requests << " CACHE_HITS " << stats.cache_hits
        << " CACHE_MISSES " << stats.cache_misses << " HIT_RATE " << stats.CacheHitRate()
        << " DEDUP " << stats.dedup_hits << " LAUNCHES " << stats.launches << " GPU_MS "
        << stats.gpu_millis << " CACHE_SIZE " << stats.cache_size << " EVICTED "
        << stats.cache_evicted << " RETIRED " << stats.cache_retired << " QUEUED_TENANTS "
        << depths.size();
    for (const auto& [tenant, depth] : depths) {
      out << "\nTENANT " << tenant << " DEPTH " << depth;
    }
    return OkResponse(out.str());
  }
  const core::FocusStream* stream = fleet_->Find(camera);
  if (stream == nullptr) {
    return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + camera);
  }
  std::ostringstream out;
  out << "MODEL " << stream->chosen_params().model.name << " K " << stream->chosen_params().k
      << " T " << stream->chosen_params().cluster_threshold << " CLUSTERS "
      << stream->ingest().num_clusters << " DETECTIONS " << stream->ingest().detections
      << " INGEST_GPU_MS " << stream->total_ingest_gpu_millis();
  return OkResponse(out.str());
}

}  // namespace focus::server
