// Concurrency stress for live query-over-ingest (TSan-gated: the FOCUS_SANITIZE
// =thread build runs this as `ctest -R live_query_stress`): concurrent QUERY
// traffic executes against published snapshots while sharded ingest is still
// advancing the same streams. Asserts the RCU publication contract —
//   - epochs observed by any reader are monotone non-decreasing;
//   - no torn reads: every observed snapshot is internally consistent
//     (watermark on the cadence, entry accounting closed, index counters
//     matching) no matter when it was loaded;
//   - per-epoch result identity: every thread that queries epoch e gets
//     byte-identical frame runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/query_service.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {
namespace {

std::string Fingerprint(const core::QueryResult& result) {
  std::ostringstream out;
  out << result.frames_returned << "|" << result.centroids_classified << "|"
      << result.clusters_matched;
  for (const auto& [first, last] : result.frame_runs) {
    out << ";" << first << "-" << last;
  }
  return out.str();
}

TEST(LiveQueryStressTest, ConcurrentQueriesOverAdvancingIngest) {
  constexpr int64_t kCadence = 40;
  constexpr int kQueryThreads = 3;

  video::ClassCatalog catalog(47);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  // Long enough that ingest visibly advances while the readers hammer the
  // slot (hundreds of epochs), short enough for the sanitizer builds.
  video::StreamRun run(&catalog, profile, /*duration_sec=*/360.0, /*fps=*/30.0, 21);

  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;

  IngestServiceOptions options;
  options.num_worker_threads = 2;
  options.finalize_every_frames = kCadence;
  IngestService service(options);
  IngestJob job;
  job.name = "live";
  job.run = &run;
  job.params = params;
  job.options.num_shards = 4;
  job.options.shard_merge_interval = 512;
  service.AddStream(job);

  const std::vector<common::ClassId>& classes = run.present_classes();
  ASSERT_FALSE(classes.empty());
  const LiveStreamContext* context = service.LiveContext("live");
  ASSERT_NE(context, nullptr);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  // Per thread: epoch -> result fingerprint, merged and cross-checked after.
  std::vector<std::map<uint64_t, std::string>> seen(kQueryThreads);

  std::vector<std::thread> readers;
  readers.reserve(kQueryThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      QueryService query_service({.num_gpus = 4, .batch_size = 8});
      uint64_t last_epoch = 0;
      bool final_pass = false;
      while (true) {
        const bool ingest_done = done.load();
        std::shared_ptr<const core::LiveSnapshot> snap = service.LatestSnapshot("live");
        if (snap != nullptr) {
          // Monotone epochs per reader.
          if (snap->epoch < last_epoch) {
            ++failures;
            break;
          }
          last_epoch = snap->epoch;
          // Torn-read checks: everything inside one snapshot must be mutually
          // consistent regardless of when the pointer was loaded.
          if (snap->watermark % kCadence != 0 || snap->watermark == 0 ||
              snap->num_clusters != static_cast<int64_t>(snap->index.num_clusters()) ||
              snap->stats.entries_reused + snap->stats.entries_rebuilt !=
                  snap->num_clusters) {
            ++failures;
            break;
          }
          // The queried class is a pure function of the epoch, so every
          // thread that lands on epoch e runs the identical query.
          QueryRequest request;
          request.cls = classes[static_cast<size_t>(snap->epoch) % classes.size()];
          request.snapshot = snap;
          request.ingest_cnn = context->ingest_cnn.get();
          request.gt_cnn = context->gt_cnn.get();
          request.fps = context->fps;
          const QueryExecution execution = query_service.Execute(request);
          const std::string fingerprint = Fingerprint(execution.result);
          auto [it, inserted] = seen[static_cast<size_t>(t)].try_emplace(snap->epoch,
                                                                         fingerprint);
          if (!inserted && it->second != fingerprint) {
            ++failures;  // Same epoch, different answer: torn state.
            break;
          }
        }
        if (ingest_done) {
          // One full pass after ingest finished so the final epoch is covered.
          if (final_pass) {
            break;
          }
          final_pass = true;
        }
      }
    });
  }

  service.RunAll();
  done.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Every reader saw at least the final epoch; cross-thread per-epoch results
  // must be byte-identical.
  std::map<uint64_t, std::string> merged;
  for (const auto& thread_seen : seen) {
    EXPECT_FALSE(thread_seen.empty());
    for (const auto& [epoch, fingerprint] : thread_seen) {
      auto [it, inserted] = merged.try_emplace(epoch, fingerprint);
      if (!inserted) {
        EXPECT_EQ(it->second, fingerprint) << "epoch " << epoch;
      }
    }
  }
  const auto final_snapshot = service.LatestSnapshot("live");
  ASSERT_NE(final_snapshot, nullptr);
  EXPECT_GE(final_snapshot->epoch, 10u);  // The cadence actually produced epochs.
  // The readers genuinely raced the ingest: they caught the stream at several
  // different epochs, not just the final table (readers poll continuously
  // while hundreds of epochs publish, so a handful is a conservative floor).
  EXPECT_GE(merged.size(), 5u);
  for (const auto& [epoch, fingerprint] : merged) {
    EXPECT_GE(epoch, 1u);
    EXPECT_LE(epoch, final_snapshot->epoch);
  }
}

}  // namespace
}  // namespace focus::runtime
