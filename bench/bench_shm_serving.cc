// Zero-copy multi-process serving (src/shm/epoch_plane.h, docs/shm_serving.md):
// cold-attach latency, shm-vs-in-process query wall parity, and per-epoch
// publish overhead of the shared-memory epoch plane.
//
// The plane's claim is that a query answered from the mapped image in another
// process costs the same as the in-process snapshot query — attach is O(map +
// slot claim), the scan runs straight off the mapping, and nothing is
// serialized per query. This bench holds the claim as numbers, per stream
// length (60 s / 180 s):
//
//   attach_millis     cold ShmSnapshotReader::Attach (map + header adopt +
//                     slot claim), median of 5 fresh attaches
//   shm_query_ms      full query sweep (popular classes x Kx x range) through
//                     ShmEpochView::Query, best of 7 samples of 20 sweep
//                     iterations each (deterministic CPU-bound work; min is
//                     the noise-robust statistic on a shared host)
//   inproc_query_ms   the same sweep through core::QueryEngine on the same
//                     epoch's LiveSnapshot, same sampling
//   shm_over_inproc   shm_query_ms / inproc_query_ms — the guardrail row
//                     (acceptance: <= 1.1x on the gated 180 s row)
//   publish_mean_ms   mean EpochPublisher::Publish wall per epoch
//   publish_overhead  total publish wall / cadenced ingest wall
//   identical         every shm result byte-identical (frame runs, counts,
//                     virtual GPU millis) to the in-process result
//
// Emits BENCH_shm_serving.json next to the binary; gated by
// bench/check_bench_regression.py via run_benches.sh --check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/shm/epoch_plane.h"
#include "src/video/stream_generator.h"

namespace {

using Clock = std::chrono::steady_clock;
using focus::bench::BenchConfig;
using focus::bench::ConfigFromEnv;
using focus::core::ClassifiedSample;
using focus::core::IngestOptions;
using focus::core::LiveSnapshot;
using focus::core::QueryResult;
using focus::shm::EpochPublisher;
using focus::shm::ShmSnapshotReader;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

focus::core::IngestParams Params() {
  focus::core::IngestParams params;
  params.model = focus::cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

struct QuerySpec {
  focus::common::ClassId cls = focus::common::kInvalidClass;
  int kx = -1;
  focus::common::TimeRange range;
};

bool SameResult(const QueryResult& a, const QueryResult& b) {
  return a.queried == b.queried && a.frame_runs == b.frame_runs &&
         a.frames_returned == b.frames_returned && a.clusters_matched == b.clusters_matched &&
         a.centroids_classified == b.centroids_classified && a.gpu_millis == b.gpu_millis;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct ShmRow {
  double duration_sec = 0.0;
  int64_t epochs = 0;
  int64_t clusters = 0;
  int64_t queries = 0;
  double attach_millis = 0.0;
  double publish_mean_ms = 0.0;
  double publish_overhead = 0.0;
  double inproc_query_ms = 0.0;
  double shm_query_ms = 0.0;
  double shm_over_inproc = 0.0;
  bool gated = false;
  bool identical = true;
};

}  // namespace

int main() {
  const BenchConfig config = ConfigFromEnv();
  const focus::video::ClassCatalog catalog(config.world_seed);
  focus::video::StreamProfile profile;
  if (!focus::video::FindProfile("auburn_c", &profile)) {
    std::fprintf(stderr, "FAIL: profile auburn_c missing\n");
    return 1;
  }
  const focus::core::IngestParams params = Params();
  focus::cnn::Cnn cheap(params.model, &catalog);
  focus::cnn::Cnn gt(focus::cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  constexpr double kGuardrailDuration = 180.0;  // The acceptance row.
  constexpr int kReps = 5;

  std::printf("shared-memory epoch plane: cold attach + mapped scan vs in-process\n");
  std::printf("%7s %7s %9s %8s %11s %11s %10s %12s %10s %10s\n", "dur_s", "epochs", "clusters",
              "queries", "attach_ms", "publish_ms", "overhead", "inproc_ms", "shm_ms",
              "identical");

  std::vector<ShmRow> rows;
  bool all_identical = true;
  bool guardrail_ok = true;
  int row_index = 0;
  for (double duration_sec : {60.0, kGuardrailDuration}) {
    ShmRow row;
    row.duration_sec = duration_sec;
    row.gated = duration_sec == kGuardrailDuration;

    focus::video::StreamRun run(&catalog, profile, duration_sec, config.fps,
                                config.stream_seed_base + static_cast<uint64_t>(row_index));
    const ClassifiedSample sample = focus::core::ClassifySample(run, cheap, params.k);

    const std::string segment = "/focus_bench_shm_" + std::to_string(getpid()) + "_" +
                                std::to_string(row_index);
    ++row_index;
    EpochPublisher::Options popts;
    popts.provenance = {catalog.world_seed(), 5, 1, catalog.world_seed()};
    auto publisher = EpochPublisher::Create(segment, popts);
    if (!publisher.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", publisher.error().message.c_str());
      return 1;
    }
    (*publisher)->UnlinkOnDestroy(true);

    // Cadenced ingest, every epoch flattened into the plane as it publishes.
    double publish_total_ms = 0.0;
    std::shared_ptr<const LiveSnapshot> latest;
    IngestOptions options;
    options.finalize_every_frames = 256;
    options.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      const auto t0 = Clock::now();
      auto gen = (*publisher)->Publish(*snap);
      publish_total_ms += MillisSince(t0);
      if (!gen.ok()) {
        std::fprintf(stderr, "FAIL: publish: %s\n", gen.error().message.c_str());
        std::exit(1);
      }
      ++row.epochs;
      latest = std::move(snap);
    };
    const auto ingest_t0 = Clock::now();
    focus::core::RunIngestClassified(sample, params, options);
    const double ingest_ms = MillisSince(ingest_t0);
    if (latest == nullptr || row.epochs == 0) {
      std::fprintf(stderr, "FAIL: no epoch published\n");
      return 1;
    }
    row.clusters = static_cast<int64_t>(latest->index.clusters().size());
    row.publish_mean_ms = publish_total_ms / static_cast<double>(row.epochs);
    row.publish_overhead = ingest_ms > 0.0 ? publish_total_ms / ingest_ms : 0.0;

    // Cold attach: map + header adopt + slot claim, nothing else. Each attach
    // uses a fresh reader (fresh slot claim), median of 5.
    std::vector<double> attach_walls;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      auto reader = ShmSnapshotReader::Attach(segment);
      attach_walls.push_back(MillisSince(t0));
      if (!reader.ok()) {
        std::fprintf(stderr, "FAIL: attach: %s\n", reader.error().message.c_str());
        return 1;
      }
    }
    row.attach_millis = Median(attach_walls);

    // The sweep both sides run: the most popular classes x Kx x range. Wide
    // enough that the GT-CNN batches dominate and the wall is stable.
    std::vector<QuerySpec> specs;
    const auto& popular = run.classes_by_popularity();
    for (size_t i = 0; i < popular.size() && i < 8; ++i) {
      specs.push_back({popular[i], -1, {}});
      specs.push_back({popular[i], 1, {}});
      specs.push_back({popular[i], -1, {2.0, duration_sec / 2.0}});
    }
    row.queries = static_cast<int64_t>(specs.size());

    auto reader = ShmSnapshotReader::Attach(segment);
    if (!reader.ok()) {
      std::fprintf(stderr, "FAIL: attach: %s\n", reader.error().message.c_str());
      return 1;
    }
    auto view = (*reader)->Acquire();
    if (!view.ok()) {
      std::fprintf(stderr, "FAIL: acquire: %s\n", view.error().message.c_str());
      return 1;
    }
    const focus::core::QueryEngine engine(latest.get(), &cheap, &gt);

    // Identity pass first (also warms both paths and builds the view's
    // scan-derived postings, so the timed samples measure steady state).
    for (const QuerySpec& spec : specs) {
      if (!SameResult(engine.Query(spec.cls, spec.kx, spec.range, run.fps()),
                      view->Query(spec.cls, spec.kx, spec.range, cheap, gt))) {
        row.identical = false;
      }
    }
    row.identical = row.identical && view->StillValid() &&
                    view->generation() == (*publisher)->stats().published_generation;

    // Timing: 7 samples of 20 sweep iterations each, best (min) per side —
    // single sweeps are sub-100us and swing with scheduler noise on shared
    // hosts; min over multi-millisecond samples of deterministic CPU-bound
    // work is the stable statistic.
    constexpr int kSamples = 7;
    constexpr int kItersPerSample = 20;
    std::vector<double> inproc_walls, shm_walls;
    for (int s = 0; s < kSamples; ++s) {
      auto t0 = Clock::now();
      for (int it = 0; it < kItersPerSample; ++it) {
        for (const QuerySpec& spec : specs) {
          engine.Query(spec.cls, spec.kx, spec.range, run.fps());
        }
      }
      inproc_walls.push_back(MillisSince(t0) / kItersPerSample);
      t0 = Clock::now();
      for (int it = 0; it < kItersPerSample; ++it) {
        for (const QuerySpec& spec : specs) {
          view->Query(spec.cls, spec.kx, spec.range, cheap, gt);
        }
      }
      shm_walls.push_back(MillisSince(t0) / kItersPerSample);
    }
    row.inproc_query_ms = *std::min_element(inproc_walls.begin(), inproc_walls.end());
    row.shm_query_ms = *std::min_element(shm_walls.begin(), shm_walls.end());
    row.shm_over_inproc =
        row.inproc_query_ms > 0.0 ? row.shm_query_ms / row.inproc_query_ms : 0.0;
    all_identical = all_identical && row.identical;
    if (row.gated && row.shm_over_inproc > 1.1) {
      guardrail_ok = false;
    }

    std::printf("%7.0f %7lld %9lld %8lld %11.3f %11.3f %9.1f%% %12.3f %10.3f %10s\n",
                row.duration_sec, static_cast<long long>(row.epochs),
                static_cast<long long>(row.clusters), static_cast<long long>(row.queries),
                row.attach_millis, row.publish_mean_ms, 100.0 * row.publish_overhead,
                row.inproc_query_ms, row.shm_query_ms, row.identical ? "yes" : "NO");
    rows.push_back(row);
  }

  FILE* f = std::fopen("BENCH_shm_serving.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"shm_serving\",\n  \"shm_serving\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const ShmRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"duration_sec\": %.0f, \"gated\": %s, \"epochs\": %lld, \"clusters\": %lld, "
          "\"queries\": %lld, \"attach_millis\": %.4f, \"publish_mean_ms\": %.4f, "
          "\"publish_overhead\": %.5f, \"inproc_query_ms\": %.4f, \"shm_query_ms\": %.4f, "
          "\"shm_over_inproc\": %.4f, \"identical\": %s}%s\n",
          r.duration_sec, r.gated ? "true" : "false", static_cast<long long>(r.epochs),
          static_cast<long long>(r.clusters), static_cast<long long>(r.queries),
          r.attach_millis, r.publish_mean_ms, r.publish_overhead, r.inproc_query_ms,
          r.shm_query_ms, r.shm_over_inproc, r.identical ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_shm_serving.json\n");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: mapped query diverged from the in-process snapshot query\n");
    return 1;
  }
  if (!guardrail_ok) {
    std::fprintf(stderr, "FAIL: shm query wall > 1.1x in-process on the %.0f s row\n",
                 kGuardrailDuration);
    return 1;
  }
  return 0;
}
