#include "src/cnn/compression.h"

#include <algorithm>
#include <cstdio>

#include "src/common/hashing.h"

namespace focus::cnn {

namespace {

constexpr int kMinLayers = 4;
constexpr int kMinInputPx = 28;

void Rename(ModelDesc& desc) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "cnn%d_px%d%s", desc.layers, desc.input_px,
                desc.specialized() ? "_spec" : "");
  desc.name = buf;
  // Distinct architectures must have distinct error draws: fold the shape into the
  // weights seed as a retrained network would have fresh weights.
  desc.weights_seed = common::DeriveSeed(
      desc.weights_seed,
      common::HashCombine(static_cast<uint64_t>(desc.layers), static_cast<uint64_t>(desc.input_px)));
}

}  // namespace

ModelDesc RemoveLayers(const ModelDesc& base, int count) {
  ModelDesc desc = base;
  desc.layers = std::max(kMinLayers, base.layers - count);
  Rename(desc);
  return desc;
}

ModelDesc RescaleInput(const ModelDesc& base, int input_px) {
  ModelDesc desc = base;
  desc.input_px = std::max(kMinInputPx, input_px);
  Rename(desc);
  return desc;
}

ModelDesc Compress(const ModelDesc& base, int remove_layer_count, int input_px) {
  ModelDesc desc = base;
  desc.layers = std::max(kMinLayers, base.layers - remove_layer_count);
  desc.input_px = std::max(kMinInputPx, input_px);
  Rename(desc);
  return desc;
}

}  // namespace focus::cnn
