#include "src/index/topk_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <type_traits>

namespace focus::index {

namespace {

// Minimal binary (de)serialization into std::string values for the KvStore.
void PutRaw(std::string& out, const void* data, size_t n) {
  out.append(static_cast<const char*>(data), n);
}
template <typename T>
void PutPod(std::string& out, T v) {
  PutRaw(out, &v, sizeof(v));
}
// Length-prefixed bulk append: one memcpy for the whole array instead of one
// PutPod per element (feature vectors and posting arrays dominate blob size).
template <typename T>
void PutArray(std::string& out, const T* data, size_t n) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutPod(out, static_cast<uint32_t>(n));
  PutRaw(out, data, n * sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  template <typename T>
  bool Read(T* v) {
    if (pos_ + sizeof(T) > data_.size()) {
      return false;
    }
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  // Counterpart of PutArray: reads the length prefix, then the payload with a
  // single memcpy.
  template <typename T>
  bool ReadArray(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t n = 0;
    if (!Read(&n)) {
      return false;
    }
    const size_t bytes = static_cast<size_t>(n) * sizeof(T);
    if (pos_ + bytes > data_.size()) {
      return false;
    }
    out->resize(n);
    std::memcpy(out->data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  bool ok() const { return pos_ <= data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

std::string EncodeCluster(const ClusterEntry& e) {
  std::string out;
  PutPod(out, e.cluster_id);
  PutPod(out, e.size);
  // Representative detection.
  PutPod(out, e.representative.frame);
  PutPod(out, e.representative.object_id);
  PutPod(out, e.representative.true_class);
  PutPod(out, e.representative.bbox.x);
  PutPod(out, e.representative.bbox.y);
  PutPod(out, e.representative.bbox.w);
  PutPod(out, e.representative.bbox.h);
  PutArray(out, e.representative.appearance.data(), e.representative.appearance.size());
  // MemberRun is three contiguous int64 fields (no padding), so the run list
  // round-trips as one block.
  static_assert(sizeof(cluster::MemberRun) ==
                sizeof(common::ObjectId) + 2 * sizeof(common::FrameIndex));
  PutArray(out, e.members.data(), e.members.size());
  PutArray(out, e.topk_classes.data(), e.topk_classes.size());
  PutArray(out, e.topk_ranks.data(), e.topk_ranks.size());
  return out;
}

bool DecodeCluster(const std::string& data, ClusterEntry* e) {
  Reader r(data);
  if (!r.Read(&e->cluster_id) || !r.Read(&e->size) || !r.Read(&e->representative.frame) ||
      !r.Read(&e->representative.object_id) || !r.Read(&e->representative.true_class) ||
      !r.Read(&e->representative.bbox.x) || !r.Read(&e->representative.bbox.y) ||
      !r.Read(&e->representative.bbox.w) || !r.Read(&e->representative.bbox.h)) {
    return false;
  }
  return r.ReadArray(&e->representative.appearance) && r.ReadArray(&e->members) &&
         r.ReadArray(&e->topk_classes) && r.ReadArray(&e->topk_ranks);
}

std::string ClusterKey(const std::string& prefix, int64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/c/%012lld", static_cast<long long>(id));
  return prefix + buf;
}

}  // namespace

void TopKIndex::AddCluster(ClusterEntry entry) {
  int64_t id = static_cast<int64_t>(clusters_.size());
  entry.cluster_id = id;
  total_detections_ += entry.size;
  for (common::ClassId cls : entry.topk_classes) {
    postings_[cls].push_back(id);
  }
  clusters_.push_back(std::move(entry));
}

void TopKIndex::AddClusterFrom(const TopKIndex& prev, size_t prev_slot) {
  AddCluster(prev.clusters_[prev_slot]);
}

const std::vector<int64_t>& TopKIndex::ClustersForClass(common::ClassId cls) const {
  auto it = postings_.find(cls);
  return it == postings_.end() ? empty_ : it->second;
}

std::vector<common::ClassId> TopKIndex::IndexedClasses() const {
  std::vector<common::ClassId> out;
  out.reserve(postings_.size());
  for (const auto& [cls, ids] : postings_) {
    if (!ids.empty()) {
      out.push_back(cls);
    }
  }
  return out;
}

common::Result<bool> TopKIndex::SaveTo(KvStore& store, const std::string& prefix) const {
  std::string meta;
  PutPod(meta, static_cast<uint64_t>(clusters_.size()));
  store.Put(prefix + "/meta", meta);
  for (const ClusterEntry& e : clusters_) {
    store.Put(ClusterKey(prefix, e.cluster_id), EncodeCluster(e));
  }
  return true;
}

common::Result<bool> TopKIndex::LoadFrom(const KvStore& store, const std::string& prefix) {
  auto meta = store.Get(prefix + "/meta");
  if (!meta.has_value()) {
    return common::NotFound("no index under prefix " + prefix);
  }
  Reader r(*meta);
  uint64_t count = 0;
  if (!r.Read(&count)) {
    return common::IoError("corrupt index meta under " + prefix);
  }
  clusters_.clear();
  postings_.clear();
  total_detections_ = 0;
  for (uint64_t i = 0; i < count; ++i) {
    auto blob = store.Get(ClusterKey(prefix, static_cast<int64_t>(i)));
    if (!blob.has_value()) {
      return common::IoError("missing cluster blob " + std::to_string(i));
    }
    ClusterEntry e;
    if (!DecodeCluster(*blob, &e)) {
      return common::IoError("corrupt cluster blob " + std::to_string(i));
    }
    AddCluster(std::move(e));
  }
  return true;
}

void TopKIndex::MergeFrom(TopKIndex other, common::FrameIndex frame_offset) {
  for (ClusterEntry& entry : other.clusters_) {
    entry.representative.frame += frame_offset;
    for (cluster::MemberRun& run : entry.members) {
      run.first_frame += frame_offset;
      run.last_frame += frame_offset;
    }
    // AddCluster renumbers the id and rebuilds the postings.
    AddCluster(std::move(entry));
  }
}

}  // namespace focus::index
