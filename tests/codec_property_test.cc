// Property tests for the storage formats, parameterized over seeds:
//   * random structured indexes round-trip bit-exactly through the snapshot codec;
//   * random corruptions are always detected (CRC) and never crash the decoder;
//   * completely random bytes never decode successfully and never crash;
//   * random record-log truncations recover exactly the fully-written prefix;
//   * serializer primitives round-trip under randomized interleavings.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/index/topk_index.h"
#include "src/storage/index_codec.h"
#include "src/storage/serializer.h"

namespace focus::storage {
namespace {

index::TopKIndex RandomIndex(uint64_t seed) {
  common::Pcg32 rng(seed);
  index::TopKIndex idx;
  const int clusters = 1 + static_cast<int>(rng.NextBounded(40));
  for (int c = 0; c < clusters; ++c) {
    index::ClusterEntry entry;
    entry.cluster_id = c;
    entry.size = static_cast<int64_t>(rng.NextBounded(1000));
    entry.representative.frame = static_cast<int64_t>(rng.NextBounded(1 << 20));
    entry.representative.object_id = static_cast<int64_t>(rng.NextBounded(1 << 16));
    entry.representative.true_class = static_cast<common::ClassId>(rng.NextBounded(1001));
    entry.representative.bbox = {static_cast<float>(rng.NextDouble() * 160),
                                 static_cast<float>(rng.NextDouble() * 120),
                                 static_cast<float>(rng.NextDouble() * 30 + 1),
                                 static_cast<float>(rng.NextDouble() * 30 + 1)};
    entry.representative.pixel_diff_suppressed = rng.NextBool(0.3);
    entry.representative.first_observation = rng.NextBool(0.1);
    const int dim = static_cast<int>(rng.NextBounded(65));
    for (int i = 0; i < dim; ++i) {
      entry.representative.appearance.push_back(
          static_cast<float>(rng.NextDouble() * 2.0 - 1.0));
    }
    const int members = 1 + static_cast<int>(rng.NextBounded(8));
    common::FrameIndex frame = entry.representative.frame;
    for (int m = 0; m < members; ++m) {
      cluster::MemberRun run;
      run.object = static_cast<int64_t>(rng.NextBounded(1 << 16));
      run.first_frame = frame;
      run.last_frame = frame + static_cast<int64_t>(rng.NextBounded(300));
      frame = run.last_frame + 1 + static_cast<int64_t>(rng.NextBounded(100));
      entry.members.push_back(run);
    }
    const int topk = static_cast<int>(rng.NextBounded(12));
    for (int t = 0; t < topk; ++t) {
      entry.topk_classes.push_back(static_cast<common::ClassId>(rng.NextBounded(1001)));
      entry.topk_ranks.push_back(static_cast<int32_t>(t) + 1);
    }
    idx.AddCluster(std::move(entry));
  }
  return idx;
}

IndexSnapshotHeader RandomHeader(uint64_t seed) {
  common::Pcg32 rng(seed ^ 0x5EED);
  IndexSnapshotHeader h;
  h.stream_name = "stream_" + std::to_string(rng.NextBounded(100));
  h.model_name = "model_" + std::to_string(rng.NextBounded(100));
  h.k = 1 + static_cast<int32_t>(rng.NextBounded(200));
  h.cluster_threshold = rng.NextDouble();
  h.world_seed = rng.Next();
  h.fps = rng.NextBool(0.5) ? 30.0 : 1.0;
  h.model.name = h.model_name;
  h.model.layers = 6 + static_cast<int>(rng.NextBounded(30));
  h.model.input_px = 56 << rng.NextBounded(3);
  if (rng.NextBool(0.5)) {
    for (int i = 0; i < 10; ++i) {
      h.model.classes.push_back(static_cast<common::ClassId>(rng.NextBounded(1000)));
    }
    h.model.has_other_class = true;
  }
  h.model.training_variability = rng.NextDouble();
  h.model.weights_seed = rng.Next();
  return h;
}

class CodecRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundTripProperty, EncodeDecodeIsIdentity) {
  const uint64_t seed = GetParam();
  index::TopKIndex original = RandomIndex(seed);
  IndexSnapshotHeader header = RandomHeader(seed);
  std::string blob = EncodeIndexSnapshot(header, original);

  IndexSnapshotHeader decoded_header;
  index::TopKIndex decoded;
  auto result = DecodeIndexSnapshot(blob, &decoded_header, &decoded);
  ASSERT_TRUE(result.ok()) << result.error().message;

  EXPECT_EQ(decoded_header.stream_name, header.stream_name);
  EXPECT_EQ(decoded_header.k, header.k);
  EXPECT_EQ(decoded_header.world_seed, header.world_seed);
  EXPECT_EQ(decoded_header.model.classes, header.model.classes);
  ASSERT_EQ(decoded.num_clusters(), original.num_clusters());
  for (size_t i = 0; i < original.num_clusters(); ++i) {
    const index::ClusterEntry& a = original.clusters()[i];
    const index::ClusterEntry& b = decoded.clusters()[i];
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.topk_classes, b.topk_classes);
    EXPECT_EQ(a.topk_ranks, b.topk_ranks);
    EXPECT_EQ(a.representative.appearance, b.representative.appearance);
    EXPECT_EQ(a.representative.pixel_diff_suppressed, b.representative.pixel_diff_suppressed);
    ASSERT_EQ(a.members.size(), b.members.size());
    for (size_t m = 0; m < a.members.size(); ++m) {
      EXPECT_EQ(a.members[m].object, b.members[m].object);
      EXPECT_EQ(a.members[m].first_frame, b.members[m].first_frame);
      EXPECT_EQ(a.members[m].last_frame, b.members[m].last_frame);
    }
  }
  // Re-encoding the decoded index reproduces the exact bytes (canonical format).
  EXPECT_EQ(EncodeIndexSnapshot(decoded_header, decoded), blob);
}

TEST_P(CodecRoundTripProperty, SingleByteCorruptionIsAlwaysDetected) {
  const uint64_t seed = GetParam();
  std::string blob = EncodeIndexSnapshot(RandomHeader(seed), RandomIndex(seed));
  common::Pcg32 rng(seed ^ 0xC0DE);
  for (int trial = 0; trial < 16; ++trial) {
    std::string mutated = blob;
    const size_t pos = static_cast<size_t>(rng.NextBounded(static_cast<uint32_t>(blob.size())));
    const uint8_t bit = static_cast<uint8_t>(1u << rng.NextBounded(8));
    mutated[pos] = static_cast<char>(mutated[pos] ^ bit);
    IndexSnapshotHeader header;
    index::TopKIndex decoded;
    EXPECT_FALSE(DecodeIndexSnapshot(mutated, &header, &decoded).ok())
        << "flip at byte " << pos << " went undetected";
  }
}

TEST_P(CodecRoundTripProperty, RandomTruncationIsAlwaysDetected) {
  const uint64_t seed = GetParam();
  std::string blob = EncodeIndexSnapshot(RandomHeader(seed), RandomIndex(seed));
  common::Pcg32 rng(seed ^ 0x7A11);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t keep = static_cast<size_t>(rng.NextBounded(static_cast<uint32_t>(blob.size())));
    IndexSnapshotHeader header;
    index::TopKIndex decoded;
    EXPECT_FALSE(DecodeIndexSnapshot(blob.substr(0, keep), &header, &decoded).ok());
  }
}

TEST_P(CodecRoundTripProperty, RandomGarbageNeverDecodes) {
  common::Pcg32 rng(GetParam() ^ 0x6A5B);
  for (int trial = 0; trial < 8; ++trial) {
    std::string garbage(rng.NextBounded(4096), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    IndexSnapshotHeader header;
    index::TopKIndex decoded;
    EXPECT_FALSE(DecodeIndexSnapshot(garbage, &header, &decoded).ok());
  }
}

TEST_P(CodecRoundTripProperty, SerializerInterleavingsRoundTrip) {
  common::Pcg32 rng(GetParam() ^ 0x1EaF);
  // Build a random sequence of typed puts, then read it back in the same order.
  enum class Kind { kU8, kU32, kU64, kVarint, kSigned, kDouble, kString };
  std::vector<Kind> kinds;
  std::vector<uint64_t> u64s;
  std::vector<int64_t> i64s;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  Encoder enc;
  const int ops = 1 + static_cast<int>(rng.NextBounded(64));
  for (int i = 0; i < ops; ++i) {
    Kind kind = static_cast<Kind>(rng.NextBounded(7));
    kinds.push_back(kind);
    switch (kind) {
      case Kind::kU8:
        u64s.push_back(rng.NextBounded(256));
        enc.PutU8(static_cast<uint8_t>(u64s.back()));
        break;
      case Kind::kU32:
        u64s.push_back(rng.Next() & 0xFFFFFFFFu);
        enc.PutU32(static_cast<uint32_t>(u64s.back()));
        break;
      case Kind::kU64:
        u64s.push_back(rng.Next() | (static_cast<uint64_t>(rng.Next()) << 32));
        enc.PutU64(u64s.back());
        break;
      case Kind::kVarint:
        u64s.push_back(rng.Next() >> rng.NextBounded(32));
        enc.PutVarint(u64s.back());
        break;
      case Kind::kSigned:
        i64s.push_back(static_cast<int64_t>(rng.Next()) - (1ll << 31));
        enc.PutSignedVarint(i64s.back());
        break;
      case Kind::kDouble:
        doubles.push_back(rng.NextDouble() * 1e6 - 5e5);
        enc.PutDouble(doubles.back());
        break;
      case Kind::kString: {
        std::string s(rng.NextBounded(64), '\0');
        for (char& c : s) {
          c = static_cast<char>(rng.NextBounded(256));
        }
        strings.push_back(s);
        enc.PutString(s);
        break;
      }
    }
  }
  Decoder dec(enc.bytes());
  size_t ui = 0;
  size_t ii = 0;
  size_t di = 0;
  size_t si = 0;
  for (Kind kind : kinds) {
    switch (kind) {
      case Kind::kU8: {
        uint8_t v = 0;
        ASSERT_TRUE(dec.GetU8(&v));
        EXPECT_EQ(v, u64s[ui++]);
        break;
      }
      case Kind::kU32: {
        uint32_t v = 0;
        ASSERT_TRUE(dec.GetU32(&v));
        EXPECT_EQ(v, u64s[ui++]);
        break;
      }
      case Kind::kU64: {
        uint64_t v = 0;
        ASSERT_TRUE(dec.GetU64(&v));
        EXPECT_EQ(v, u64s[ui++]);
        break;
      }
      case Kind::kVarint: {
        uint64_t v = 0;
        ASSERT_TRUE(dec.GetVarint(&v));
        EXPECT_EQ(v, u64s[ui++]);
        break;
      }
      case Kind::kSigned: {
        int64_t v = 0;
        ASSERT_TRUE(dec.GetSignedVarint(&v));
        EXPECT_EQ(v, i64s[ii++]);
        break;
      }
      case Kind::kDouble: {
        double v = 0;
        ASSERT_TRUE(dec.GetDouble(&v));
        EXPECT_DOUBLE_EQ(v, doubles[di++]);
        break;
      }
      case Kind::kString: {
        std::string v;
        ASSERT_TRUE(dec.GetString(&v));
        EXPECT_EQ(v, strings[si++]);
        break;
      }
    }
  }
  EXPECT_TRUE(dec.Done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace focus::storage
