#include "src/core/live_snapshot.h"

#include <chrono>
#include <utility>

#include "src/common/logging.h"

namespace focus::core {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::shared_ptr<const LiveSnapshot> SnapshotSlot::Publish(
    std::unique_ptr<LiveSnapshot> snapshot) {
  FOCUS_CHECK(snapshot != nullptr);
  std::shared_ptr<const LiveSnapshot> published;
  std::shared_ptr<const LiveSnapshot> retired;  // Freed outside the lock.
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot->epoch = (latest_ != nullptr ? latest_->epoch : 0) + 1;
    published = std::move(snapshot);
    retired = std::move(latest_);
    latest_ = published;
  }
  // |retired| drops here: if this was the last reference, the old epoch's
  // table is destroyed without holding the slot lock.
  return published;
}

SnapshotBuilder::SnapshotBuilder(SnapshotSlot* slot, Sink sink, bool background)
    : slot_(slot), sink_(std::move(sink)) {
  if (background) {
    thread_ = std::thread([this] { BuilderMain(); });
  }
}

SnapshotBuilder::~SnapshotBuilder() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    thread_.join();  // BuilderMain drains the queue before exiting.
  }
}

void SnapshotBuilder::Submit(SnapshotBuildJob job) {
  if (!thread_.joinable()) {
    Assemble(std::move(job));
    return;
  }
  const auto wait_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return queue_.size() < kMaxQueuedJobs; });
    job.stall_millis = MillisSince(wait_start);
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_.notify_all();
}

void SnapshotBuilder::Flush() {
  if (!thread_.joinable()) {
    return;  // Synchronous mode: Submit already published everything.
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return completed_ == submitted_; });
}

void SnapshotBuilder::BuilderMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
    if (queue_.empty()) {
      return;  // Shutdown with a drained queue.
    }
    SnapshotBuildJob job = std::move(queue_.front());
    queue_.pop_front();
    cv_.notify_all();  // A queue slot freed; the submitter may refill while we assemble.
    lock.unlock();
    Assemble(std::move(job));
    lock.lock();
    ++completed_;
    cv_.notify_all();
  }
}

void SnapshotBuilder::Assemble(SnapshotBuildJob job) {
  const auto start = std::chrono::steady_clock::now();
  auto snapshot = std::make_unique<LiveSnapshot>();
  snapshot->watermark = job.watermark;
  snapshot->fps = job.fps;
  snapshot->detections = job.detections;
  for (SnapshotBuildItem& item : job.items) {
    if (item.reused) {
      FOCUS_CHECK(prev_ != nullptr);
      snapshot->index.AddClusterFrom(prev_->index, item.prev_slot);
      ++snapshot->stats.entries_reused;
    } else {
      snapshot->index.AddCluster(std::move(item.entry));
      ++snapshot->stats.entries_rebuilt;
    }
  }
  snapshot->num_clusters = static_cast<int64_t>(snapshot->index.num_clusters());
  snapshot->stats.cut_millis = job.cut_millis;
  snapshot->stats.stall_millis = job.stall_millis;
  // Synchronous mode keeps build_millis' historical meaning (the whole
  // publication: cut + assembly); background mode reports the builder-thread
  // assembly alone — the ingest thread's share is cut_millis + stall_millis.
  const double assemble_millis = MillisSince(start);
  snapshot->stats.build_millis =
      background() ? assemble_millis : assemble_millis + job.cut_millis;
  if (slot_ != nullptr) {
    prev_ = slot_->Publish(std::move(snapshot));
  } else {
    snapshot->epoch = ++fallback_epoch_;
    prev_ = std::move(snapshot);
  }
  if (sink_) {
    sink_(prev_);
  }
}

}  // namespace focus::core
