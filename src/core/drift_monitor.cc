#include "src/core/drift_monitor.h"

#include <algorithm>
#include <cmath>

namespace focus::core {

double TotalVariationDistance(const std::map<common::ClassId, int64_t>& a,
                              const std::map<common::ClassId, int64_t>& b) {
  int64_t total_a = 0;
  int64_t total_b = 0;
  for (const auto& [cls, n] : a) {
    total_a += n;
  }
  for (const auto& [cls, n] : b) {
    total_b += n;
  }
  if (total_a == 0 || total_b == 0) {
    return total_a == total_b ? 0.0 : 1.0;
  }
  // TV = 1/2 * sum over the union of |p(c) - q(c)|.
  double tv = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    double pa = 0.0;
    double pb = 0.0;
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      pa = static_cast<double>(ia->second) / static_cast<double>(total_a);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      pb = static_cast<double>(ib->second) / static_cast<double>(total_b);
      ++ib;
    } else {
      pa = static_cast<double>(ia->second) / static_cast<double>(total_a);
      pb = static_cast<double>(ib->second) / static_cast<double>(total_b);
      ++ia;
      ++ib;
    }
    tv += std::abs(pa - pb);
  }
  return tv / 2.0;
}

DriftMonitor::DriftMonitor(const cnn::ClassDistributionEstimate& reference,
                           std::vector<common::ClassId> ls_classes,
                           DriftMonitorOptions options)
    : reference_(reference.objects_per_class),
      ls_classes_(std::move(ls_classes)),
      options_(options) {}

DriftReport DriftMonitor::AddProbe(ProbeSample probe) {
  probe_gpu_millis_ += probe.gpu_cost_millis;
  window_.push_back(std::move(probe));
  while (window_.size() > options_.window_probes) {
    window_.pop_front();
  }
  return Current();
}

DriftReport DriftMonitor::Current() const {
  DriftReport report;
  std::map<common::ClassId, int64_t> pooled;
  for (const ProbeSample& probe : window_) {
    for (const auto& [cls, n] : probe.objects_per_class) {
      pooled[cls] += n;
    }
    report.recent_objects += probe.total_objects;
  }
  if (report.recent_objects == 0) {
    return report;  // Nothing observed: no drift claim.
  }
  report.total_variation = TotalVariationDistance(reference_, pooled);

  int64_t covered = 0;
  for (common::ClassId cls : ls_classes_) {
    auto it = pooled.find(cls);
    if (it != pooled.end()) {
      covered += it->second;
    }
  }
  int64_t pooled_total = 0;
  for (const auto& [cls, n] : pooled) {
    pooled_total += n;
  }
  report.ls_coverage =
      pooled_total > 0 ? static_cast<double>(covered) / static_cast<double>(pooled_total) : 1.0;

  report.retrain_recommended = report.recent_objects >= options_.min_objects &&
                               (report.total_variation > options_.max_total_variation ||
                                report.ls_coverage < options_.min_ls_coverage);
  return report;
}

void DriftMonitor::Rebase(const cnn::ClassDistributionEstimate& reference,
                          std::vector<common::ClassId> ls_classes) {
  reference_ = reference.objects_per_class;
  ls_classes_ = std::move(ls_classes);
  window_.clear();
}

ProbeSample ProbeStream(const video::StreamRun& run, const cnn::Cnn& gt_cnn, double begin_sec,
                        double end_sec, int frame_stride) {
  ProbeSample probe;
  const common::FrameIndex begin_frame = static_cast<common::FrameIndex>(begin_sec * run.fps());
  const common::FrameIndex end_frame = static_cast<common::FrameIndex>(end_sec * run.fps());
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (frame < begin_frame || frame >= end_frame ||
        (frame - begin_frame) % frame_stride != 0) {
      return;
    }
    for (const video::Detection& d : dets) {
      ++probe.objects_per_class[gt_cnn.Top1(d)];
      ++probe.total_objects;
      probe.gpu_cost_millis += gt_cnn.inference_cost_millis();
    }
  });
  return probe;
}

RetrainController::RetrainController(const video::StreamRun* run,
                                     const video::ClassCatalog* catalog, const cnn::Cnn* gt_cnn,
                                     const cnn::ClassDistributionEstimate& initial,
                                     RetrainControllerOptions options)
    : run_(run),
      catalog_(catalog),
      gt_cnn_(gt_cnn),
      options_(options),
      monitor_(initial, initial.TopClasses(static_cast<size_t>(options.specialization.ls)),
               options.monitor),
      model_(cnn::TrainSpecializedModel(initial, options.specialization,
                                        run->profile().appearance_variability, run->seed())) {}

TickOutcome RetrainController::Tick(double now_sec) {
  TickOutcome outcome;
  if (last_probe_sec_ >= 0.0 && now_sec - last_probe_sec_ < options_.probe_period_sec) {
    outcome.report = monitor_.Current();
    return outcome;
  }
  last_probe_sec_ = now_sec;
  outcome.probed = true;

  const double begin = std::max(0.0, now_sec - options_.probe_window_sec);
  outcome.report =
      monitor_.AddProbe(ProbeStream(*run_, *gt_cnn_, begin, now_sec, options_.probe_frame_stride));
  const bool in_cooldown =
      last_retrain_sec_ >= 0.0 && now_sec - last_retrain_sec_ < options_.min_retrain_interval_sec;
  if (!outcome.report.retrain_recommended || in_cooldown) {
    return outcome;
  }

  // §4.3 retraining: re-estimate on recent content (a denser sample of the same
  // window), re-specialize, rebase the monitor on the new reference.
  cnn::ClassDistributionEstimate fresh;
  ProbeSample dense = ProbeStream(*run_, *gt_cnn_, begin, now_sec, /*frame_stride=*/2);
  fresh.objects_per_class = dense.objects_per_class;
  fresh.total_objects = dense.total_objects;
  fresh.gpu_cost_millis = dense.gpu_cost_millis;
  retrain_gpu_millis_ += dense.gpu_cost_millis;

  model_ = cnn::TrainSpecializedModel(
      fresh, options_.specialization, run_->profile().appearance_variability,
      run_->seed() + static_cast<uint64_t>(retrain_count_) + 1);
  monitor_.Rebase(fresh, fresh.TopClasses(static_cast<size_t>(options_.specialization.ls)));
  ++retrain_count_;
  last_retrain_sec_ = now_sec;
  outcome.retrained = true;
  return outcome;
}

common::GpuMillis RetrainController::maintenance_gpu_millis() const {
  return monitor_.probe_gpu_millis() + retrain_gpu_millis_;
}

}  // namespace focus::core
