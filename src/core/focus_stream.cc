#include "src/core/focus_stream.h"

#include "src/common/logging.h"

namespace focus::core {

common::Result<std::unique_ptr<FocusStream>> FocusStream::Build(
    const video::StreamRun* run, const video::ClassCatalog* catalog,
    const FocusOptions& options) {
  if (run == nullptr || catalog == nullptr) {
    return common::InvalidArgument("run and catalog must be non-null");
  }
  std::unique_ptr<FocusStream> focus(new FocusStream());
  focus->run_ = run;
  focus->catalog_ = catalog;
  focus->gt_cnn_ =
      std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(catalog->world_seed()), catalog);

  ParameterTuner tuner(catalog, focus->gt_cnn_.get(), options.tuner);
  focus->tuning_ = tuner.Tune(*run, run->profile().appearance_variability, options.target,
                              options.policy);
  focus->tuning_gpu_millis_ = tuner.last_tuning_gpu_millis();
  if (!focus->tuning_.found) {
    return common::FailedPrecondition("tuning produced no usable configuration for " +
                                      run->profile().name);
  }
  const IngestParams& params = focus->tuning_.chosen().params;
  FOCUS_LOG(kInfo) << "focus[" << run->profile().name << "]: chose model "
                   << params.model.name << " K=" << params.k
                   << " T=" << params.cluster_threshold << " ("
                   << PolicyName(options.policy) << ")";

  focus->ingest_cnn_ = std::make_unique<cnn::Cnn>(params.model, catalog);
  focus->ingest_ = RunIngest(*run, *focus->ingest_cnn_, params, options.ingest);
  focus->engine_ = std::make_unique<QueryEngine>(&focus->ingest_.index,
                                                 focus->ingest_cnn_.get(), focus->gt_cnn_.get());
  return focus;
}

QueryResult FocusStream::Query(common::ClassId cls, int kx, common::TimeRange range) const {
  return engine_->Query(cls, kx, range, run_->fps());
}

QueryPlan FocusStream::Plan(common::ClassId cls, int kx, common::TimeRange range) const {
  return engine_->Plan(cls, kx, range, run_->fps());
}

QueryResult FocusStream::Resolve(const QueryPlan& plan,
                                 std::span<const common::ClassId> verdicts) const {
  return engine_->Resolve(plan, verdicts);
}

}  // namespace focus::core
