// Tests for the IoU multi-object tracker: identity maintenance on synthetic
// trajectories, occlusion coasting, crossing objects, retirement, and an
// end-to-end check against the stream generator's ground-truth object ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/video/stream_generator.h"
#include "src/vision/tracker.h"

namespace focus::vision {
namespace {

video::BBox Box(float x, float y, float w = 10.0f, float h = 10.0f) {
  return video::BBox{x, y, w, h};
}

TEST(IouTrackerTest, SingleObjectKeepsOneId) {
  IouTracker tracker;
  common::ObjectId id = -1;
  for (int f = 0; f < 30; ++f) {
    auto tracked = tracker.Update(f, {Box(10.0f + 2.0f * f, 20.0f)});
    ASSERT_EQ(tracked.size(), 1u);
    if (f == 0) {
      EXPECT_TRUE(tracked[0].is_new_track);
      id = tracked[0].track_id;
    } else {
      EXPECT_FALSE(tracked[0].is_new_track) << "lost identity at frame " << f;
      EXPECT_EQ(tracked[0].track_id, id);
    }
  }
  EXPECT_EQ(tracker.tracks_started(), 1);
}

TEST(IouTrackerTest, EmptyFramesAreLegal) {
  IouTracker tracker;
  EXPECT_TRUE(tracker.Update(0, {}).empty());
  auto tracked = tracker.Update(1, {Box(5, 5)});
  EXPECT_EQ(tracked.size(), 1u);
  EXPECT_TRUE(tracker.Update(2, {}).empty());
}

TEST(IouTrackerTest, TwoSeparatedObjectsKeepDistinctIds) {
  IouTracker tracker;
  std::vector<common::ObjectId> ids(2, -1);
  for (int f = 0; f < 20; ++f) {
    auto tracked = tracker.Update(f, {Box(10.0f + 1.5f * f, 10.0f),
                                      Box(100.0f - 1.5f * f, 80.0f)});
    ASSERT_EQ(tracked.size(), 2u);
    if (f == 0) {
      ids[0] = tracked[0].track_id;
      ids[1] = tracked[1].track_id;
      EXPECT_NE(ids[0], ids[1]);
    } else {
      EXPECT_EQ(tracked[0].track_id, ids[0]);
      EXPECT_EQ(tracked[1].track_id, ids[1]);
    }
  }
  EXPECT_EQ(tracker.tracks_started(), 2);
}

TEST(IouTrackerTest, CoastsThroughShortOcclusion) {
  IouTracker tracker;
  common::ObjectId id = tracker.Update(0, {Box(10, 10)})[0].track_id;
  tracker.Update(1, {Box(12, 10)});
  // Frames 2-4: occluded (no detection).
  tracker.Update(2, {});
  tracker.Update(3, {});
  tracker.Update(4, {});
  // Reappears roughly where the constant-velocity prediction says.
  auto tracked = tracker.Update(5, {Box(20, 10)});
  ASSERT_EQ(tracked.size(), 1u);
  EXPECT_EQ(tracked[0].track_id, id);
  EXPECT_FALSE(tracked[0].is_new_track);
}

TEST(IouTrackerTest, RetiresAfterMaxCoastAndStartsFresh) {
  TrackerOptions options;
  options.max_coast_frames = 3;
  IouTracker tracker(options);
  common::ObjectId id = tracker.Update(0, {Box(10, 10)})[0].track_id;
  for (int f = 1; f <= 4; ++f) {
    tracker.Update(f, {});
  }
  EXPECT_EQ(tracker.live_tracks(), 0);
  auto tracked = tracker.Update(5, {Box(10, 10)});
  EXPECT_TRUE(tracked[0].is_new_track);
  EXPECT_NE(tracked[0].track_id, id);
}

TEST(IouTrackerTest, PredictionSeparatesCrossingObjects) {
  // Two objects on converging then diverging horizontal paths; velocity prediction
  // should carry identities through the near-miss.
  IouTracker tracker;
  auto first = tracker.Update(0, {Box(0, 40), Box(80, 44)});
  common::ObjectId left = first[0].track_id;
  common::ObjectId right = first[1].track_id;
  for (int f = 1; f <= 20; ++f) {
    // Left object moves +4 px/frame, right object -4 px/frame; they pass near
    // frame 10 with a small vertical offset.
    auto tracked = tracker.Update(f, {Box(0.0f + 4.0f * f, 40), Box(80.0f - 4.0f * f, 44)});
    ASSERT_EQ(tracked.size(), 2u);
    EXPECT_EQ(tracked[0].track_id, left) << "left identity flipped at frame " << f;
    EXPECT_EQ(tracked[1].track_id, right) << "right identity flipped at frame " << f;
  }
  EXPECT_EQ(tracker.tracks_started(), 2);
}

TEST(IouTrackerTest, OutputOrderMatchesInputOrder) {
  IouTracker tracker;
  tracker.Update(0, {Box(10, 10), Box(50, 50)});
  // Swap the detection order; track ids must follow the boxes, not the positions.
  auto tracked = tracker.Update(1, {Box(50, 50), Box(10, 10)});
  ASSERT_EQ(tracked.size(), 2u);
  EXPECT_GT(tracked[0].bbox.x, tracked[1].bbox.x);
  EXPECT_NE(tracked[0].track_id, tracked[1].track_id);
}

TEST(IouTrackerTest, ManyTracksCompactionKeepsLiveIdsStable) {
  TrackerOptions options;
  options.max_coast_frames = 1;
  IouTracker tracker(options);
  // 100 short-lived tracks force the compaction path; one long-lived track must
  // keep its id across it.
  common::ObjectId persistent = tracker.Update(0, {Box(200, 200)})[0].track_id;
  for (int f = 1; f < 100; ++f) {
    std::vector<video::BBox> boxes = {Box(200, 200)};                 // The survivor.
    boxes.push_back(Box(static_cast<float>(5 * (f % 20)), 0.0f));    // Churn.
    auto tracked = tracker.Update(f, boxes);
    EXPECT_EQ(tracked[0].track_id, persistent) << "id lost at frame " << f;
  }
}

TEST(IouTrackerTest, AgreesWithGeneratorGroundTruthIdentities) {
  // End-to-end against the stream generator: track its detections by box alone and
  // compare fragmentation to the unavoidable identity breaks. The generator wraps
  // object trajectories at the frame edges, and a wrap is a teleport no box-only
  // tracker can follow — so the principled invariant is
  //   fragments(object) <= 1 + teleports(object) + slack,
  // where a teleport is a between-frame jump larger than the object's own box.
  video::ClassCatalog catalog(3);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 60.0, 30.0, 19);

  IouTracker tracker;
  std::map<common::ObjectId, std::set<common::ObjectId>> tracks_per_object;
  std::map<common::ObjectId, int64_t> teleports;
  std::map<common::ObjectId, video::BBox> last_box;
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    std::vector<video::BBox> boxes;
    boxes.reserve(dets.size());
    for (const video::Detection& d : dets) {
      boxes.push_back(d.bbox);
    }
    auto tracked = tracker.Update(frame, boxes);
    for (size_t i = 0; i < dets.size(); ++i) {
      const video::Detection& d = dets[i];
      tracks_per_object[d.object_id].insert(tracked[i].track_id);
      auto it = last_box.find(d.object_id);
      if (it != last_box.end()) {
        const float dx = d.bbox.x - it->second.x;
        const float dy = d.bbox.y - it->second.y;
        const float jump_sq = dx * dx + dy * dy;
        const float span = std::max(d.bbox.w, d.bbox.h);
        if (jump_sq > span * span) {
          ++teleports[d.object_id];
        }
      }
      last_box[d.object_id] = d.bbox;
    }
  });
  ASSERT_FALSE(tracks_per_object.empty());

  int64_t excess = 0;
  int64_t objects = 0;
  for (const auto& [object, tracks] : tracks_per_object) {
    ++objects;
    const int64_t allowed = 1 + teleports[object];
    excess += std::max<int64_t>(0, static_cast<int64_t>(tracks.size()) - allowed);
  }
  // Beyond teleports, fragmentation should be rare (occlusion/overlap only).
  EXPECT_LE(excess, objects) << excess << " unexplained fragments over " << objects
                             << " objects";
}

}  // namespace
}  // namespace focus::vision
