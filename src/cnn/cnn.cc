#include "src/cnn/cnn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/hashing.h"

namespace focus::cnn {

namespace {

// Draw kinds for the deterministic per-(model, object[, frame]) RNG streams.
constexpr uint64_t kKindBaseRank = 0x01;
constexpr uint64_t kKindFlicker = 0x02;
constexpr uint64_t kKindFrameRank = 0x03;
constexpr uint64_t kKindConfusion = 0x04;
constexpr uint64_t kKindFeature = 0x05;

// Probability that a wrong high-ranked class comes from the true class's semantic
// group rather than anywhere in the label space.
constexpr double kGroupConfusionBias = 0.55;

// CNN outputs are strongly temporally correlated: consecutive frames of one object
// yield near-identical softmax vectors, and output "flicker" happens at the multi-
// second scale, not per frame. Rank re-draws therefore apply per window of this many
// frames (~4 s at 30 fps, longer than a typical cluster's span). This is what keeps a
// cluster's member top-Ks from acting as a large independent ensemble: cluster-level
// recall tracks per-object recall, so the tuner genuinely needs K = 2-4 even for
// specialized models (§4.3).
constexpr int64_t kFlickerWindowFrames = 128;

// Geometric confidence decay of the synthesized ranked output.
constexpr float kTopConfidence = 0.5f;
constexpr float kConfidenceDecay = 0.8f;

}  // namespace

Cnn::Cnn(ModelDesc desc, const video::ClassCatalog* catalog)
    : desc_(std::move(desc)),
      catalog_(catalog),
      accuracy_(ComputeAccuracy(desc_)),
      cost_millis_(InferenceCostMillis(desc_)) {
  assert(catalog_ != nullptr);
  // Materialize the label space.
  if (desc_.classes.empty()) {
    labels_.resize(video::kNumClasses);
    for (common::ClassId c = 0; c < video::kNumClasses; ++c) {
      labels_[static_cast<size_t>(c)] = c;
    }
  } else {
    labels_ = desc_.classes;
    std::sort(labels_.begin(), labels_.end());
    if (desc_.has_other_class) {
      labels_.push_back(kOtherClass);
    }
  }
  label_index_.assign(video::kNumClasses + 1, -1);
  for (size_t i = 0; i < labels_.size(); ++i) {
    label_index_[static_cast<size_t>(labels_[i])] = static_cast<int>(i);
  }
  labels_by_group_.resize(video::kNumSemanticGroups);
  for (common::ClassId label : labels_) {
    if (label == kOtherClass) {
      continue;
    }
    labels_by_group_[static_cast<int>(catalog_->Group(label))].push_back(label);
  }
}

common::Pcg32 Cnn::RngFor(const video::Detection& detection, uint64_t kind,
                          bool per_frame) const {
  uint64_t label = common::HashCombine(kind, static_cast<uint64_t>(detection.object_id),
                                       per_frame ? static_cast<uint64_t>(detection.frame) + 1 : 0);
  return common::Pcg32(common::DeriveSeed(desc_.weights_seed, label));
}

int Cnn::LabelIndex(common::ClassId cls) const {
  if (cls < 0 || cls > video::kNumClasses) {
    return -1;
  }
  return label_index_[static_cast<size_t>(cls)];
}

common::ClassId Cnn::MapTrueLabel(common::ClassId true_class) const {
  if (desc_.classes.empty()) {
    return true_class;
  }
  if (LabelIndex(true_class) >= 0) {
    return true_class;
  }
  return desc_.has_other_class ? kOtherClass : labels_.front();
}

int Cnn::TrueClassRank(const video::Detection& detection) const {
  int space = static_cast<int>(labels_.size());
  // The object's stable base rank...
  common::Pcg32 base_rng = RngFor(detection, kKindBaseRank, /*per_frame=*/false);
  int rank = SampleRank(accuracy_, space, base_rng);
  // ...re-drawn on flicker *windows* (outputs are temporally correlated within ~1 s).
  const uint64_t window = static_cast<uint64_t>(detection.frame / kFlickerWindowFrames) + 1;
  common::Pcg32 flick_rng(common::DeriveSeed(
      desc_.weights_seed,
      common::HashCombine(kKindFlicker, static_cast<uint64_t>(detection.object_id), window)));
  if (flick_rng.NextBool(accuracy_.flicker_prob)) {
    common::Pcg32 window_rng(common::DeriveSeed(
        desc_.weights_seed, common::HashCombine(kKindFrameRank,
                                                static_cast<uint64_t>(detection.object_id),
                                                window)));
    rank = SampleRank(accuracy_, space, window_rng);
  }
  return rank;
}

TopKResult Cnn::Classify(const video::Detection& detection, int k) const {
  const int space = static_cast<int>(labels_.size());
  k = std::clamp(k, 1, space);
  const common::ClassId true_label = MapTrueLabel(detection.true_class);
  const int true_rank = TrueClassRank(detection);

  TopKResult result;
  result.entries.reserve(static_cast<size_t>(k));

  common::Pcg32 confuse_rng = RngFor(detection, kKindConfusion, /*per_frame=*/false);
  // Wrong-class fill: biased toward the true class's *visual* semantic group (the
  // object looks like what it is, even when a specialized model calls it OTHER).
  const std::vector<common::ClassId>* group_pool = nullptr;
  if (detection.true_class >= 0 && detection.true_class < video::kNumClasses) {
    const auto& pool = labels_by_group_[static_cast<int>(catalog_->Group(detection.true_class))];
    if (!pool.empty()) {
      group_pool = &pool;
    }
  }

  // Membership bitmap over label indices to deduplicate fills.
  std::vector<bool> used(labels_.size(), false);
  auto try_emit = [&](common::ClassId label) -> bool {
    int idx = LabelIndex(label);
    if (idx < 0 || used[static_cast<size_t>(idx)]) {
      return false;
    }
    used[static_cast<size_t>(idx)] = true;
    float conf = kTopConfidence *
                 std::pow(kConfidenceDecay, static_cast<float>(result.entries.size()));
    result.entries.emplace_back(label, conf);
    return true;
  };

  int misses_in_a_row = 0;
  while (static_cast<int>(result.entries.size()) < k) {
    int position = static_cast<int>(result.entries.size()) + 1;
    if (position == true_rank) {
      try_emit(true_label);
      continue;
    }
    common::ClassId candidate;
    if (group_pool != nullptr && confuse_rng.NextBool(kGroupConfusionBias)) {
      candidate = (*group_pool)[confuse_rng.NextBounded(static_cast<uint32_t>(group_pool->size()))];
    } else {
      candidate = labels_[confuse_rng.NextBounded(static_cast<uint32_t>(labels_.size()))];
    }
    if (candidate == true_label) {
      // The true label only appears at its sampled rank. Counts as a miss so a tiny
      // label pool cannot spin forever.
      if (++misses_in_a_row > 64) {
        break;
      }
      continue;
    }
    if (try_emit(candidate)) {
      misses_in_a_row = 0;
    } else if (++misses_in_a_row > 64) {
      // Dense fill fallback (k close to the label space): take the first unused.
      for (size_t i = 0; i < labels_.size() && static_cast<int>(result.entries.size()) < k; ++i) {
        if (!used[i] && labels_[i] != true_label) {
          try_emit(labels_[i]);
        } else if (!used[i] && static_cast<int>(result.entries.size()) + 1 == true_rank) {
          try_emit(true_label);
        }
      }
      break;
    }
  }
  return result;
}

void Cnn::ClassifyBatch(std::span<const video::Detection> detections, int k,
                        std::vector<TopKResult>* results) const {
  results->clear();
  results->reserve(detections.size());
  for (const video::Detection& detection : detections) {
    results->push_back(Classify(detection, k));
  }
}

void Cnn::ClassifyBatch(std::span<const video::Detection* const> detections, int k,
                        std::vector<TopKResult>* results) const {
  results->clear();
  results->reserve(detections.size());
  for (const video::Detection* detection : detections) {
    results->push_back(Classify(*detection, k));
  }
}

common::GpuMillis Cnn::BatchCostMillis(int64_t batch_size) const {
  return BatchInferenceCostMillis(desc_, batch_size);
}

common::ClassId Cnn::Top1(const video::Detection& detection) const {
  const common::ClassId true_label = MapTrueLabel(detection.true_class);
  if (TrueClassRank(detection) == 1) {
    return true_label;
  }
  // The top slot is a confusable wrong answer; draw it the same way Classify fills
  // position 1.
  common::Pcg32 confuse_rng = RngFor(detection, kKindConfusion, /*per_frame=*/false);
  const std::vector<common::ClassId>* group_pool = nullptr;
  if (detection.true_class >= 0 && detection.true_class < video::kNumClasses) {
    const auto& pool = labels_by_group_[static_cast<int>(catalog_->Group(detection.true_class))];
    if (!pool.empty()) {
      group_pool = &pool;
    }
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    common::ClassId candidate;
    if (group_pool != nullptr && confuse_rng.NextBool(kGroupConfusionBias)) {
      candidate = (*group_pool)[confuse_rng.NextBounded(static_cast<uint32_t>(group_pool->size()))];
    } else {
      candidate = labels_[confuse_rng.NextBounded(static_cast<uint32_t>(labels_.size()))];
    }
    if (candidate != true_label) {
      return candidate;
    }
  }
  return labels_.front();
}

common::FeatureVec Cnn::ExtractFeature(const video::Detection& detection) const {
  common::Pcg32 rng = RngFor(detection, kKindFeature, /*per_frame=*/true);
  common::FeatureVec v = detection.appearance;
  common::AddIsotropicNoise(v, accuracy_.feature_noise, rng);
  common::NormalizeInPlace(v);
  return v;
}

}  // namespace focus::cnn
