file(REMOVE_RECURSE
  "CMakeFiles/noscope_test.dir/tests/noscope_test.cc.o"
  "CMakeFiles/noscope_test.dir/tests/noscope_test.cc.o.d"
  "noscope_test"
  "noscope_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noscope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
