#include "src/cnn/cost_model.h"

namespace focus::cnn {

double RelativeCost(const ModelDesc& desc) {
  double depth = static_cast<double>(desc.layers) / kGtCnnLayers;
  double res = static_cast<double>(desc.input_px) / kGtCnnInputPx;
  return kFixedOverheadShare + (1.0 - kFixedOverheadShare) * depth * res * res;
}

common::GpuMillis InferenceCostMillis(const ModelDesc& desc) {
  return RelativeCost(desc) * kGtCnnUnitMillis;
}

common::GpuMillis BatchInferenceCostMillis(const ModelDesc& desc, int64_t batch_size) {
  if (batch_size < 1) {
    batch_size = 1;
  }
  // kLaunchOverheadShare + (1 - kLaunchOverheadShare) is exactly 1.0 in binary
  // floating point, so a batch of 1 reproduces the single-inference cost to the
  // bit — the batched path must be byte-identical to the per-centroid path there.
  return InferenceCostMillis(desc) *
         (kLaunchOverheadShare +
          (1.0 - kLaunchOverheadShare) * static_cast<double>(batch_size));
}

common::GpuMillis LaunchOverheadMillis(const ModelDesc& desc) {
  return InferenceCostMillis(desc) * kLaunchOverheadShare;
}

common::GpuMillis MarginalImageCostMillis(const ModelDesc& desc) {
  return InferenceCostMillis(desc) * (1.0 - kLaunchOverheadShare);
}

BatchCostModel BatchCostModel::For(const ModelDesc& desc) {
  return BatchCostModel{LaunchOverheadMillis(desc), MarginalImageCostMillis(desc)};
}

double CheapnessFactor(const ModelDesc& desc) { return 1.0 / RelativeCost(desc); }

}  // namespace focus::cnn
