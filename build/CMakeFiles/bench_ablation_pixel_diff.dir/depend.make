# Empty dependencies file for bench_ablation_pixel_diff.
# This may be replaced when dependencies are built.
