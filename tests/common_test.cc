// Unit tests for the common substrate: RNG, hashing, zipf, stats, feature math.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/common/feature_vector.h"
#include "src/common/hashing.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time_types.h"
#include "src/common/zipf.h"

namespace focus::common {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123);
  Pcg32 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32Test, DifferentSeedsDiverge) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32Test, NextBoundedIsUnbiasedAcrossRange) {
  Pcg32 rng(11);
  std::map<uint32_t, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    uint32_t v = rng.NextBounded(6);
    ASSERT_LT(v, 6u);
    ++counts[v];
  }
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, kDraws / 6, kDraws / 60);
  }
}

TEST(Pcg32Test, NextBoundedZeroAndOne) {
  Pcg32 rng(3);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg32Test, GaussianMoments) {
  Pcg32 rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Pcg32Test, ExponentialMean) {
  Pcg32 rng(6);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextExponential(2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Pcg32Test, PoissonMeanSmallAndLarge) {
  Pcg32 rng(8);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 50000; ++i) {
    small.Add(rng.NextPoisson(3.5));
    large.Add(rng.NextPoisson(80.0));
  }
  EXPECT_NEAR(small.mean(), 3.5, 0.1);
  EXPECT_NEAR(large.mean(), 80.0, 1.0);
}

TEST(Pcg32Test, NextIntCoversInclusiveRange) {
  Pcg32 rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SeedDerivationTest, ChildSeedsIndependent) {
  uint64_t parent = 42;
  EXPECT_NE(DeriveSeed(parent, 1), DeriveSeed(parent, 2));
  EXPECT_NE(DeriveSeed(parent, 1), parent);
  // Stable across calls.
  EXPECT_EQ(DeriveSeed(parent, 1), DeriveSeed(parent, 1));
}

TEST(HashingTest, HashStringStableAndDistinct) {
  EXPECT_EQ(HashString("car"), HashString("car"));
  EXPECT_NE(HashString("car"), HashString("cat"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashingTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2, 3), HashCombine(HashCombine(1, 2), 3));
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.5);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) {
    sum += zipf.Pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroDominatesWithHighExponent) {
  ZipfDistribution zipf(1000, 2.0);
  EXPECT_GT(zipf.Pmf(0), 0.5);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfDistribution zipf(50, 1.2);
  Pcg32 rng(17);
  std::map<size_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, zipf.Pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kDraws, zipf.Pmf(1), 0.01);
}

TEST(FeatureVectorTest, DistanceBasics) {
  FeatureVec a = {1.0f, 0.0f};
  FeatureVec b = {0.0f, 1.0f};
  EXPECT_DOUBLE_EQ(SquaredL2Distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, a), 0.0);
  EXPECT_NEAR(L2Distance(a, b), std::sqrt(2.0), 1e-12);
}

TEST(FeatureVectorTest, NormalizeProducesUnitNorm) {
  Pcg32 rng(19);
  FeatureVec v = RandomGaussianVector(64, rng);
  NormalizeInPlace(v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);
}

TEST(FeatureVectorTest, NormalizeZeroVectorIsNoop) {
  FeatureVec v(8, 0.0f);
  NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(Norm(v), 0.0);
}

TEST(FeatureVectorTest, RandomUnitVectorsNearlyOrthogonalInHighDim) {
  Pcg32 rng(23);
  FeatureVec a = RandomUnitVector(64, rng);
  FeatureVec b = RandomUnitVector(64, rng);
  EXPECT_LT(std::abs(CosineSimilarity(a, b)), 0.5);
}

TEST(FeatureVectorTest, PerturbedVectorStaysClose) {
  Pcg32 rng(29);
  FeatureVec base = RandomUnitVector(64, rng);
  FeatureVec near = PerturbedUnitVector(base, 0.05, rng);
  FeatureVec far = PerturbedUnitVector(base, 1.5, rng);
  EXPECT_LT(L2Distance(base, near), 0.3);
  EXPECT_GT(L2Distance(base, far), L2Distance(base, near));
  EXPECT_NEAR(Norm(near), 1.0, 1e-6);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(StatsTest, GeometricMeanOfFactors) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeometricMean({1.0, -2.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(StatsTest, TopHeavyCdfOrdersHeaviestFirst) {
  std::map<int, uint64_t> weights = {{1, 90}, {2, 9}, {3, 1}};
  auto cdf = TopHeavyCdf(weights, 10);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_NEAR(cdf[0].weight_fraction, 0.9, 1e-12);
  EXPECT_NEAR(cdf[0].key_fraction, 0.1, 1e-12);
  EXPECT_NEAR(cdf[2].weight_fraction, 1.0, 1e-12);
}

TEST(StatsTest, FractionOfKeysCovering) {
  std::map<int, uint64_t> weights = {{1, 90}, {2, 9}, {3, 1}};
  EXPECT_NEAR(FractionOfKeysCovering(weights, 10, 0.89), 0.1, 1e-12);
  EXPECT_NEAR(FractionOfKeysCovering(weights, 10, 0.95), 0.2, 1e-12);
}

TEST(StatsTest, JaccardIndex) {
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardIndex({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardIndex({1, 2}, {1, 2}), 1.0);
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err(NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(err.error().message, "missing");
  EXPECT_STREQ(ErrorCodeName(err.error().code), "NotFound");
}

TEST(TimeTypesTest, SegmentOfFrame) {
  EXPECT_EQ(SegmentOfFrame(0, 30.0), 0);
  EXPECT_EQ(SegmentOfFrame(29, 30.0), 0);
  EXPECT_EQ(SegmentOfFrame(30, 30.0), 1);
  EXPECT_EQ(SegmentOfFrame(59, 1.0), 59);
}

TEST(TimeTypesTest, TimeRangeContains) {
  TimeRange all;
  EXPECT_TRUE(all.ContainsFrame(0, 30.0));
  EXPECT_TRUE(all.ContainsFrame(1000000, 30.0));

  TimeRange window{10.0, 20.0};
  EXPECT_FALSE(window.ContainsFrame(299, 30.0));  // 9.97s
  EXPECT_TRUE(window.ContainsFrame(300, 30.0));   // 10.0s
  EXPECT_TRUE(window.ContainsFrame(599, 30.0));   // 19.97s
  EXPECT_FALSE(window.ContainsFrame(600, 30.0));  // 20.0s
}

}  // namespace
}  // namespace focus::common
