// GPU-time cost model for CNN inference.
//
// Both of the paper's metrics are GPU time (§6.1): ingest cost is GPU time spent by
// the cheap CNN, query latency is GPU time spent by the GT-CNN on candidate
// centroids. We charge each inference an analytically derived cost:
//
//   cost(m) = (C0 + (1 - C0) * (layers/152) * (input_px/224)^2) * unit
//
// where unit is the GT-CNN's per-image time (13 ms: ResNet152 classifies 77 images/s
// on an NVIDIA K80, §2.1) and C0 is a small fixed overhead share (kernel launch,
// memory movement) that keeps tiny models from becoming unrealistically free. The
// model reproduces the paper's reference points: ResNet18 @ 224 comes out 8.0x
// cheaper than ResNet152 (§2.1 says 8x), and the specialized models land in the
// 7x-71x-cheaper band reported in §6.3.
#ifndef FOCUS_SRC_CNN_COST_MODEL_H_
#define FOCUS_SRC_CNN_COST_MODEL_H_

#include "src/common/time_types.h"
#include "src/cnn/model_desc.h"

namespace focus::cnn {

// GT-CNN (ResNet152) per-inference GPU time, milliseconds.
inline constexpr double kGtCnnUnitMillis = 13.0;

// Fixed-overhead share of an inference that does not shrink with the architecture.
// Calibrated so the three Figure 5 reference models come out ~7x/28x/58x cheaper than
// ResNet152, the factors the paper quotes.
inline constexpr double kFixedOverheadShare = 0.012;

// Share of a *single-image* inference spent on per-launch work (kernel launch,
// weight/activation memory movement, host-device transfer setup) rather than
// per-image compute. Packing b images into one launch pays it once:
//
//   BatchInferenceCostMillis(desc, b) = C(1) * (kLaunchOverheadShare
//                                              + (1 - kLaunchOverheadShare) * b)
//
// with C(1) = InferenceCostMillis(desc), so a batch of 1 costs exactly C(1) and
// the amortized per-image cost approaches (1 - kLaunchOverheadShare) * C(1) at
// large b (a ~1.33x throughput ceiling from batching alone). This is what makes
// filling GPU batches — §5's rationale for parallelizing a query's GT-CNN work
// and sharing idle GPUs across queries — measurably cheaper on the virtual
// clock than issuing the same classifications one launch each.
inline constexpr double kLaunchOverheadShare = 0.25;

// GPU milliseconds for one inference of |desc|.
common::GpuMillis InferenceCostMillis(const ModelDesc& desc);

// GPU milliseconds for classifying |batch_size| images of |desc| in one launch.
// Exactly InferenceCostMillis(desc) at batch_size = 1 (values below 1 clamp up),
// strictly cheaper than batch_size independent launches above it.
common::GpuMillis BatchInferenceCostMillis(const ModelDesc& desc, int64_t batch_size);

// Per-launch fixed cost of |desc|: what one more launch pays regardless of how
// many images it carries. The fleet packer minimizes the number of times this
// is paid per model.
common::GpuMillis LaunchOverheadMillis(const ModelDesc& desc);

// Per-image marginal cost of |desc| within an existing launch.
common::GpuMillis MarginalImageCostMillis(const ModelDesc& desc);

// Batch-cost estimator for one model, precomputed so a packer weighing many
// candidate launches does not re-derive the cost curve per decision. Estimates
// track BatchInferenceCostMillis to rounding; anything *billed* to a GpuCluster
// must still use Cnn::BatchCostMillis so accounting stays bit-exact with the
// per-model curve.
struct BatchCostModel {
  common::GpuMillis launch_overhead_millis = 0.0;
  common::GpuMillis marginal_image_millis = 0.0;

  common::GpuMillis EstimateMillis(int64_t batch_size) const {
    if (batch_size < 1) {
      batch_size = 1;
    }
    return launch_overhead_millis +
           marginal_image_millis * static_cast<double>(batch_size);
  }

  static BatchCostModel For(const ModelDesc& desc);
};

// Packing identity of a model: two Cnn instances with the same key have the
// same architecture — the same cost curve and the same launch semantics — so a
// fleet packer may carry both instances' work items in one launch (each item
// still classifies through its own instance). Instances with different keys
// are different models and must never share a launch.
struct ModelPackKey {
  std::string name;
  int layers = 0;
  int input_px = 0;

  auto operator<=>(const ModelPackKey&) const = default;

  static ModelPackKey Of(const ModelDesc& desc) {
    return ModelPackKey{desc.name, desc.layers, desc.input_px};
  }
};

// Cost of |desc| relative to the GT-CNN (1.0 = as expensive as ResNet152).
double RelativeCost(const ModelDesc& desc);

// Convenience: how many times cheaper than the GT-CNN |desc| is.
double CheapnessFactor(const ModelDesc& desc);

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_COST_MODEL_H_
