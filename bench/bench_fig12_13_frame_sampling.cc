// Figures 12 and 13: sensitivity to the frame sampling rate (30 / 10 / 5 / 1 fps),
// over the 9 representative streams with the Balance policy.
//
// Paper: ingest savings are roughly flat across frame rates (the specialized model is
// the source of the saving, orthogonal to sampling); query speedups degrade at lower
// rates because there is less redundancy for clustering to remove, but remain around
// an order of magnitude even at 1 fps.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);

  const std::vector<double> rates = {30.0, 10.0, 5.0, 1.0};

  bench::PrintHeader("Figures 12+13: Sensitivity to frame sampling rate (Balance policy)");
  std::printf("%-12s", "Stream");
  for (double fps : rates) {
    std::printf("  %2.0ffps:ing  %2.0ffps:qry", fps, fps);
  }
  std::printf("\n");

  std::vector<std::vector<double>> ing(rates.size()), qry(rates.size());
  for (const std::string& name : video::RepresentativeNineStreams()) {
    std::printf("%-12s", name.c_str());
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      bench::BenchConfig rate_config = config;
      rate_config.fps = rates[ri];
      core::FocusOptions options;
      bench::StreamOutcome out;
      if (!bench::TryRunFocusOnStream(catalog, name, rate_config, options, &out)) {
        std::printf(" %9s %9s", "-", "-");
        continue;
      }
      ing[ri].push_back(out.ingest_cheaper_by);
      qry[ri].push_back(out.query_faster_by);
      std::printf(" %8.1fx %8.1fx", out.ingest_cheaper_by, out.query_faster_by);
    }
    std::printf("\n");
  }

  std::printf("%-12s", "Average");
  for (size_t ri = 0; ri < rates.size(); ++ri) {
    std::printf(" %8.1fx %8.1fx", common::Mean(ing[ri]), common::Mean(qry[ri]));
  }
  std::printf("\n\nPaper checkpoints: ingest factors ~58x-64x at every rate; query factors\n"
              "highest at 30 fps and degraded-but-substantial at 1 fps.\n");
  return 0;
}
