// Single-pass incremental object clustering (§4.2).
//
// The paper's algorithm: the first object starts cluster c1; each new object joins
// the closest existing cluster within L2 distance T of its feature vector, otherwise
// it starts a new cluster. The number of *active* (assignable) clusters is capped at
// M by retiring the smallest ones — retired clusters stay in the output (they go to
// the top-K index) but no longer accept members, keeping the pass O(M n).
//
// Membership is stored as per-object frame runs: consecutive sampled frames of one
// object that land in the same cluster collapse into [first_frame, last_frame], which
// keeps memory linear in the number of track segments instead of detections.
//
// Two assignment modes:
//   kExact scans all active clusters and picks the closest within T (the textbook
//     algorithm; used by tests and small runs).
//   kFast first tries the cluster that this object joined last frame, then a small
//     LRU of recently used clusters, and only falls back to the full scan on a miss.
//     Because object appearance drifts slowly, the hit rate is very high and results
//     are nearly identical at a fraction of the cost; large benches use this.
//
// Active centroids live in a contiguous structure-of-arrays CentroidStore; the
// full scan norm-prunes candidates and batch-evaluates survivors through the SIMD
// distance kernels, with tie semantics identical to the seed's in-order scan.
// RetireSmallest is O(log M) amortized via a lazy min-size heap.
#ifndef FOCUS_SRC_CLUSTER_INCREMENTAL_CLUSTERER_H_
#define FOCUS_SRC_CLUSTER_INCREMENTAL_CLUSTERER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cluster/centroid_store.h"
#include "src/common/feature_vector.h"
#include "src/storage/fsync_policy.h"
#include "src/common/result.h"
#include "src/common/time_types.h"
#include "src/video/detection.h"

namespace focus::storage {
class ArenaFile;
class RecordLogWriter;
}  // namespace focus::storage

namespace focus::cluster {

// A contiguous frame range of one object inside one cluster.
struct MemberRun {
  common::ObjectId object = 0;
  common::FrameIndex first_frame = 0;
  common::FrameIndex last_frame = 0;

  int64_t FrameCount() const { return last_frame - first_frame + 1; }
};

struct Cluster {
  int64_t id = 0;
  // Running mean of member features (not re-normalized; distances use it directly).
  // While the cluster is active this is mirrored into the clusterer's
  // CentroidStore; mutating it externally mid-stream desynchronizes the scan.
  common::FeatureVec centroid;
  int64_t size = 0;  // Number of member detections.
  std::vector<MemberRun> members;
  // The first detection that formed the cluster: the "centroid object" the GT-CNN
  // classifies at query time (§3 QT3).
  video::Detection representative;
  bool active = true;
};

struct ClustererOptions {
  // L2 distance threshold T.
  double threshold = 0.7;
  // Cap M on simultaneously active clusters.
  size_t max_active = 4096;
  enum class Mode { kExact, kFast };
  Mode mode = Mode::kFast;
  // Fast mode: number of recently used clusters probed before the full scan.
  size_t lru_probes = 48;
  // Head-tile width override for the centroid store's staged scan (0 derives
  // it from the feature dim, CentroidStore::HeadDimFor). Pruning is exact at
  // any width, so this is a cost knob — bench_cluster_assign uses it to compare
  // head-tile policies on identical workloads.
  size_t head_dim = 0;
  // Persistent path only: fsync cadence of the centroid arena's checkpoint
  // commits and of the write-ahead undo log (see storage/fsync_policy.h and
  // the durability table in docs/persistence.md). Defaults match the original
  // hard-coded behavior: arena synced every commit, undo log never.
  storage::FsyncOptions arena_fsync = storage::FsyncOptions::EveryCommit();
  storage::FsyncOptions undo_fsync = storage::FsyncOptions::Never();
};

// Outcome of OpenOrRecover: whether a prior checkpoint was adopted, and the
// caller cursor + opaque caller blob that checkpoint carried.
struct ClustererRecovery {
  bool recovered = false;
  int64_t position = 0;
  std::string user_state;
};

class IncrementalClusterer {
 public:
  explicit IncrementalClusterer(ClustererOptions options = {});
  ~IncrementalClusterer();

  IncrementalClusterer(const IncrementalClusterer&) = delete;
  IncrementalClusterer& operator=(const IncrementalClusterer&) = delete;

  // Drops all clusters and statistics and adopts |options|, keeping the
  // centroid-store arenas and the outer containers' capacity (per-cluster
  // inner allocations — centroids, member runs — are freed with the clusters).
  // A clusterer reused across a tuner grid sweep (one run per threshold)
  // avoids re-paying the arena growth on every run. Not available on a
  // persistent clusterer (the checkpoint files would silently go stale).
  void Reset(ClustererOptions options);

  // --- Persistence (see docs/persistence.md) ---
  //
  // State lives in three files under |dir|: <stem>.arena (the mmap'd centroid
  // working set, mutated in place), <stem>.undo (write-ahead pre-images of
  // checkpointed arena rows, rotated at every checkpoint), and <stem>.meta
  // (everything else — cluster table, member runs, fast-path maps, counters —
  // snapshotted atomically at each checkpoint; its atomic rename is the commit
  // point). Recovery restores the exact state of the newest committed
  // checkpoint: subsequent assignments are byte-identical to a clusterer that
  // processed the same prefix without the crash.

  // Attaches persistent backing under |dir| (created if needed), recovering
  // the newest checkpoint when one exists. Must be called on an empty
  // clusterer whose options match the checkpointed run's.
  common::Result<ClustererRecovery> OpenOrRecover(const std::string& dir,
                                                  const std::string& stem);

  // Durably publishes the current state together with an opaque caller cursor
  // (e.g. the next frame index to ingest) and caller blob. The arena side is
  // O(dirty working set) (msync + header); the bookkeeping snapshot re-encodes
  // the full cluster table, so its cost grows with accumulated member runs —
  // delta-encoding the bookkeeping through the existing RecordLogWriter is
  // the recorded follow-up for multi-hour retention windows.
  common::Result<bool> Checkpoint(int64_t position, std::string_view user_state = {});

  bool persistent() const { return arena_file_ != nullptr; }

  // Building blocks for a coordinator (ShardedClusterer) that checkpoints
  // several clusterers under one atomic meta file. Standalone users call
  // OpenOrRecover/Checkpoint instead.
  //
  // Binds a fresh (possibly uninitialized) arena + undo log; store must be empty.
  common::Result<bool> AttachPersistence(std::unique_ptr<storage::ArenaFile> arena,
                                         const std::string& undo_path);
  // Adopts an arena already rolled back to a consistent checkpoint, plus the
  // bookkeeping blob snapshotted at that same checkpoint.
  common::Result<bool> RestorePersistent(std::unique_ptr<storage::ArenaFile> arena,
                                         const std::string& undo_path,
                                         std::string_view bookkeeping);
  // Checkpoint step 1: msync + commit the arena header. Returns the generation.
  common::Result<uint64_t> CommitArena();
  // Checkpoint step 3 (after the coordinator's meta commit): truncate the undo
  // log and open the new window with a marker for |generation|.
  common::Result<bool> RotateUndoLog(uint64_t generation);
  // Bookkeeping beyond the arena: cluster table (centroids only for retired
  // clusters — active ones live in the arena), member runs, fast-path maps,
  // counters, and an options echo validated on restore.
  std::string EncodeBookkeeping() const;

  // Assigns |detection| (with ingest-CNN feature |feature|) to a cluster and returns
  // the cluster id.
  int64_t Add(const video::Detection& detection, const common::FeatureVec& feature);

  // Re-assigns |detection| to the cluster of the same object's previous frame without
  // touching the centroid — the pixel-differencing path (§4.2): the crop didn't
  // change, so the previous result is reused. Returns the cluster id, or Add()'s
  // behaviour if the object has no previous cluster.
  int64_t AddSuppressed(const video::Detection& detection, const common::FeatureVec& feature);

  const std::vector<Cluster>& clusters() const { return clusters_; }
  std::vector<Cluster>& mutable_clusters() { return clusters_; }
  size_t num_clusters() const { return clusters_.size(); }
  size_t num_active() const { return store_.size(); }
  int64_t total_assignments() const { return total_assignments_; }
  // Fraction of fast-mode assignments resolved without the full scan.
  double FastHitRate() const;
  // Raw fast-path counters (for aggregating hit rates across sharded instances).
  int64_t fast_hits() const { return fast_hits_; }
  int64_t fast_lookups() const { return fast_lookups_; }

  // The structure-of-arrays working set behind the full scan (scan statistics,
  // arena introspection).
  const CentroidStore& centroid_store() const { return store_; }

  // --- Retired-centroid merge targets (sharded cross-shard merging) ---
  //
  // A retired cluster's centroid is frozen, but it is still a legitimate merge
  // target: a duplicate appearance can arise in another shard *after* the
  // cluster retired, and folding the pair is exactly what the periodic
  // cross-shard merge is for. When enabled (ShardedClusterer does this at
  // num_shards > 1), every retirement freezes the centroid into a secondary
  // read-only CentroidStore that merge passes query alongside the active one.
  // Must be called before the first assignment; volatile-cost is one row copy
  // per retirement, and the store is rebuilt from the bookkeeping snapshot on
  // recovery.
  void EnableRetiredMergeTargets();
  // Frozen centroids of retired clusters (empty unless enabled). Rows are
  // appended in retirement order on a live run and in ascending-id order after
  // recovery; FindNearest semantics (smallest-id tie break, exact pruning) are
  // slot-order independent, so merge results do not depend on which.
  const CentroidStore& retired_store() const { return retired_store_; }

 private:
  int64_t CreateCluster(const video::Detection& detection, const common::FeatureVec& feature);
  void Join(Cluster& cluster, const video::Detection& detection,
            const common::FeatureVec& feature);
  void RetireSmallest();
  void TouchLru(int64_t id);
  // Squared distance from |feature| to the active centroid of |id| with early
  // exit at |bound|; > bound when the cluster is not active.
  float ActiveDistance(int64_t id, const common::FeatureVec& feature, float bound) const;
  common::Result<bool> DecodeBookkeeping(std::string_view bookkeeping);

  ClustererOptions options_;
  std::vector<Cluster> clusters_;
  CentroidStore store_;
  // Frozen centroids of retired clusters (EnableRetiredMergeTargets); always
  // heap-backed — the centroids are already durable inside the bookkeeping
  // snapshot, so the store is derived state.
  CentroidStore retired_store_;
  bool retired_targets_ = false;
  // Lazy min-heap of (size-at-push, cluster id) over active clusters; stale
  // entries (the size grew since push) are re-keyed on pop, so RetireSmallest
  // finds the (size, id)-smallest active cluster in O(log M) amortized instead
  // of the seed's O(M) min_element.
  std::vector<std::pair<int64_t, int64_t>> retire_heap_;
  std::unordered_map<common::ObjectId, int64_t> last_cluster_of_object_;
  std::deque<int64_t> lru_;
  int64_t total_assignments_ = 0;
  int64_t fast_hits_ = 0;
  int64_t fast_lookups_ = 0;

  // Persistent backing (null when volatile). The store holds raw pointers to
  // both but never dereferences them in its destructor, so teardown order is
  // immaterial.
  std::unique_ptr<storage::ArenaFile> arena_file_;
  std::unique_ptr<storage::RecordLogWriter> undo_writer_;
  std::string undo_path_;
  std::string meta_path_;
};

}  // namespace focus::cluster

#endif  // FOCUS_SRC_CLUSTER_INCREMENTAL_CLUSTERER_H_
