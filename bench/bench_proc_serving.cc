// Supervised multi-process serving (src/runtime/supervised_worker_pool.h,
// docs/shm_serving.md, docs/robustness.md): no-fault overhead of the
// supervision layer — deadline plumbing, health bookkeeping, restart budgets,
// sibling-retry routing — over the raw WorkerProcessPool RPC on the same
// shm-query worker handler.
//
// The supervisor's claim is that its machinery is bookkeeping around the
// blocking RPC, not work on the request path: with no fault plan armed, a
// query through SupervisedWorkerPool::Call costs the same socket round-trip +
// mapped scan as WorkerProcessPool::Call, plus a mutex and a few counters.
// This bench holds the claim as numbers, per pool size (2 / 4 workers):
//
//   direct_sweep_ms        full query sweep round-robined over the raw pool,
//                          best of 7 samples of 20 sweep iterations each
//                          (serialized RPC round-trips; min is the
//                          noise-robust statistic on a shared host)
//   supervised_sweep_ms    the same sweep through SupervisedWorkerPool::Call,
//                          same handler, same deadline, same sampling
//   supervised_over_direct the guardrail row (acceptance: <= 1.05x — the
//                          bench hard-fails past it, and
//                          check_bench_regression.py gates drift)
//   identical              every reply on both paths byte-identical to the
//                          parent's own mapped-scan answer
//
// Emits BENCH_proc_serving.json next to the binary; gated by
// bench/check_bench_regression.py via run_benches.sh --check.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/runtime/supervised_worker_pool.h"
#include "src/runtime/worker_process_pool.h"
#include "src/shm/epoch_plane.h"
#include "src/video/stream_generator.h"

namespace {

using Clock = std::chrono::steady_clock;
using focus::core::LiveSnapshot;
using focus::shm::EpochPublisher;
using focus::shm::ShmSnapshotReader;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

focus::core::IngestParams Params() {
  focus::core::IngestParams params;
  params.model = focus::cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

struct QuerySpec {
  focus::common::ClassId cls = focus::common::kInvalidClass;
  int kx = -1;
  focus::common::TimeRange range;
};

// Exact textual encoding of a QueryResult (hexfloat GPU accounting), so
// byte-identity over the worker RPC is plain string equality.
std::string EncodeResult(const focus::core::QueryResult& r) {
  std::ostringstream out;
  out << r.queried << ' ' << r.centroids_classified << ' ' << r.clusters_matched << ' '
      << r.frames_returned << ' ' << std::hexfloat << r.gpu_millis;
  for (const auto& [first, last] : r.frame_runs) {
    out << ' ' << first << ':' << last;
  }
  return out.str();
}

std::string QueryLine(const QuerySpec& spec) {
  std::ostringstream out;
  out << "Q " << spec.cls << ' ' << spec.kx << ' ' << std::hexfloat << spec.range.begin_sec
      << ' ' << spec.range.end_sec;
  return out.str();
}

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

// The worker-side handler both pools fork: lazy attach, models rebuilt from
// the header's seed provenance, one mapped-scan query per request. Range
// bounds arrive in hexfloat and are parsed with strtod — istream extraction
// rejects hexfloat.
struct ProcWorker {
  std::string segment;
  std::unique_ptr<ShmSnapshotReader> reader;
  std::unique_ptr<focus::video::ClassCatalog> catalog;
  std::unique_ptr<focus::cnn::Cnn> cheap;
  std::unique_ptr<focus::cnn::Cnn> gt;

  std::string EnsureAttached() {
    if (reader != nullptr) {
      return "";
    }
    auto attached = ShmSnapshotReader::Attach(segment);
    if (!attached.ok()) {
      return "ERR attach: " + attached.error().message;
    }
    reader = std::move(*attached);
    auto provenance = reader->Provenance();
    if (!provenance.ok()) {
      return "ERR provenance: " + provenance.error().message;
    }
    catalog = std::make_unique<focus::video::ClassCatalog>(provenance->world_seed);
    cheap = std::make_unique<focus::cnn::Cnn>(
        focus::cnn::GenericCheapCandidates(
            provenance->cheap_weights_seed)[provenance->cheap_candidate_index],
        catalog.get());
    gt = std::make_unique<focus::cnn::Cnn>(focus::cnn::GtCnnDesc(provenance->gt_weights_seed),
                                           catalog.get());
    return "";
  }

  std::string Handle(const std::string& request) {
    if (std::string err = EnsureAttached(); !err.empty()) {
      return err;
    }
    const std::vector<std::string> tokens = Split(request);
    if (tokens.size() != 5 || tokens[0] != "Q") {
      return "ERR bad request " + request;
    }
    const auto cls =
        static_cast<focus::common::ClassId>(std::strtol(tokens[1].c_str(), nullptr, 10));
    const int kx = static_cast<int>(std::strtol(tokens[2].c_str(), nullptr, 10));
    focus::common::TimeRange range;
    range.begin_sec = std::strtod(tokens[3].c_str(), nullptr);
    range.end_sec = std::strtod(tokens[4].c_str(), nullptr);
    auto view = reader->Acquire();
    if (!view.ok()) {
      return "ERR acquire: " + view.error().message;
    }
    auto result = view->QueryChecked(cls, kx, range, *cheap, *gt);
    if (!result.ok()) {
      return "ERR evicted: " + result.error().message;
    }
    return EncodeResult(*result);
  }
};

struct ProcRow {
  int workers = 0;
  int64_t epochs = 0;
  int64_t queries = 0;
  double direct_sweep_ms = 0.0;
  double supervised_sweep_ms = 0.0;
  double supervised_over_direct = 0.0;
  bool gated = true;
  bool identical = true;
};

}  // namespace

int main() {
  constexpr uint64_t kWorldSeed = 23;
  constexpr double kDurationSec = 20.0;
  constexpr int kDeadlineMillis = 5000;
  constexpr double kGuardrail = 1.05;

  const focus::video::ClassCatalog catalog(kWorldSeed);
  focus::video::StreamProfile profile;
  if (!focus::video::FindProfile("auburn_c", &profile)) {
    std::fprintf(stderr, "FAIL: profile auburn_c missing\n");
    return 1;
  }
  const focus::core::IngestParams params = Params();
  focus::cnn::Cnn cheap(params.model, &catalog);
  focus::cnn::Cnn gt(focus::cnn::GtCnnDesc(kWorldSeed), &catalog);

  // One plane for every row: a cadenced run flattened epoch by epoch.
  const std::string segment = "/focus_bench_proc_" + std::to_string(::getpid());
  EpochPublisher::Options popts;
  popts.provenance = {kWorldSeed, 5, 1, kWorldSeed};
  auto publisher = EpochPublisher::Create(segment, popts);
  if (!publisher.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", publisher.error().message.c_str());
    return 1;
  }
  (*publisher)->UnlinkOnDestroy(true);

  focus::video::StreamRun run(&catalog, profile, kDurationSec, /*fps=*/30.0,
                              /*stream_seed=*/11);
  const focus::core::ClassifiedSample sample = focus::core::ClassifySample(run, cheap, params.k);
  int64_t epochs = 0;
  std::shared_ptr<const LiveSnapshot> latest;
  focus::core::IngestOptions ingest;
  ingest.finalize_every_frames = 60;
  ingest.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
    auto gen = (*publisher)->Publish(*snap);
    if (!gen.ok()) {
      std::fprintf(stderr, "FAIL: publish: %s\n", gen.error().message.c_str());
      std::exit(1);
    }
    ++epochs;
    latest = std::move(snap);
  };
  focus::core::RunIngestClassified(sample, params, ingest);
  if (latest == nullptr) {
    std::fprintf(stderr, "FAIL: no epoch published\n");
    return 1;
  }

  // The sweep both pools serve: the plane's populated classes x Kx x range,
  // plus a near-certain miss.
  std::set<focus::common::ClassId> classes;
  for (const auto& entry : latest->index.clusters()) {
    for (focus::common::ClassId c : entry.topk_classes) {
      classes.insert(c);
    }
    if (classes.size() >= 4) {
      break;
    }
  }
  classes.insert(focus::video::kNumClasses - 1);
  std::vector<QuerySpec> specs;
  for (focus::common::ClassId c : classes) {
    specs.push_back({c, -1, {}});
    specs.push_back({c, 1, {}});
    specs.push_back({c, -1, {2.0, kDurationSec / 2.0}});
  }

  // Parent-side reference answers from its own mapping.
  auto ref_reader = ShmSnapshotReader::Attach(segment);
  if (!ref_reader.ok()) {
    std::fprintf(stderr, "FAIL: attach: %s\n", ref_reader.error().message.c_str());
    return 1;
  }
  auto ref_view = (*ref_reader)->Acquire();
  if (!ref_view.ok()) {
    std::fprintf(stderr, "FAIL: acquire: %s\n", ref_view.error().message.c_str());
    return 1;
  }
  std::vector<std::string> lines, expected;
  for (const QuerySpec& spec : specs) {
    lines.push_back(QueryLine(spec));
    expected.push_back(EncodeResult(ref_view->Query(spec.cls, spec.kx, spec.range, cheap, gt)));
  }

  std::printf("supervised worker RPC: no-fault overhead over the raw pool\n");
  std::printf("%8s %7s %8s %11s %14s %12s %10s\n", "workers", "epochs", "queries", "direct_ms",
              "supervised_ms", "sup/direct", "identical");

  std::vector<ProcRow> rows;
  bool all_identical = true;
  bool guardrail_ok = true;
  for (int workers : {2, 4}) {
    ProcRow row;
    row.workers = workers;
    row.epochs = epochs;
    row.queries = static_cast<int64_t>(specs.size());

    // Raw pool: the bare RPC under the same deadline, round-robined by hand.
    focus::runtime::WorkerProcessPool direct;
    auto direct_state = std::make_shared<ProcWorker>();
    direct_state->segment = segment;
    auto started = direct.Start(
        workers, [direct_state](const std::string& line) { return direct_state->Handle(line); });
    if (!started.ok()) {
      std::fprintf(stderr, "FAIL: direct start: %s\n", started.error().message.c_str());
      return 1;
    }

    focus::runtime::SupervisedPoolOptions sopts;
    sopts.num_workers = workers;
    sopts.call_deadline_millis = kDeadlineMillis;
    focus::runtime::MetricsRegistry metrics;
    focus::runtime::SupervisedWorkerPool supervised(sopts, &metrics);
    auto sup_state = std::make_shared<ProcWorker>();
    sup_state->segment = segment;
    auto sup_started = supervised.Start(
        [sup_state](const std::string& line) { return sup_state->Handle(line); });
    if (!sup_started.ok()) {
      std::fprintf(stderr, "FAIL: supervised start: %s\n", sup_started.error().message.c_str());
      return 1;
    }

    // Identity pass first (also warms every worker's lazy attach + postings,
    // so the timed samples measure steady state on both sides).
    for (int warm = 0; warm < 2; ++warm) {
      for (size_t i = 0; i < lines.size(); ++i) {
        const int slot = static_cast<int>(i) % workers;
        auto d = direct.Call(slot, lines[i], kDeadlineMillis);
        auto s = supervised.Call(lines[i]);
        if (!d.ok() || *d != expected[i] || !s.ok() || *s != expected[i]) {
          row.identical = false;
        }
      }
    }

    // Timing: 9 samples of 60 sweep iterations each, best (min) per side —
    // single sweeps are serialized sub-100us round-trips and swing with
    // scheduler noise on shared hosts; min over multi-millisecond samples is
    // the stable statistic, and a tight 1.05x guardrail needs ~1% noise.
    constexpr int kSamples = 9;
    constexpr int kItersPerSample = 60;
    std::vector<double> direct_walls, supervised_walls;
    for (int s = 0; s < kSamples; ++s) {
      auto t0 = Clock::now();
      for (int it = 0; it < kItersPerSample; ++it) {
        for (size_t i = 0; i < lines.size(); ++i) {
          direct.Call(static_cast<int>(i) % workers, lines[i], kDeadlineMillis);
        }
      }
      direct_walls.push_back(MillisSince(t0) / kItersPerSample);
      t0 = Clock::now();
      for (int it = 0; it < kItersPerSample; ++it) {
        for (const std::string& line : lines) {
          supervised.Call(line);
        }
      }
      supervised_walls.push_back(MillisSince(t0) / kItersPerSample);
    }
    row.direct_sweep_ms = *std::min_element(direct_walls.begin(), direct_walls.end());
    row.supervised_sweep_ms =
        *std::min_element(supervised_walls.begin(), supervised_walls.end());
    row.supervised_over_direct =
        row.direct_sweep_ms > 0.0 ? row.supervised_sweep_ms / row.direct_sweep_ms : 0.0;

    // No-fault means no supervision events: any restart or sibling retry in
    // this bench is itself a correctness failure, not noise.
    const auto stats = supervised.stats();
    if (stats.restarts != 0 || stats.sibling_retries != 0 || stats.timeouts != 0) {
      row.identical = false;
    }
    all_identical = all_identical && row.identical;
    if (row.gated && row.supervised_over_direct > kGuardrail) {
      guardrail_ok = false;
    }

    std::printf("%8d %7lld %8lld %11.3f %14.3f %12.3f %10s\n", row.workers,
                static_cast<long long>(row.epochs), static_cast<long long>(row.queries),
                row.direct_sweep_ms, row.supervised_sweep_ms, row.supervised_over_direct,
                row.identical ? "yes" : "NO");
    rows.push_back(row);

    supervised.Shutdown();
    direct.Shutdown();
  }

  FILE* f = std::fopen("BENCH_proc_serving.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"proc_serving\",\n  \"proc_serving\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const ProcRow& r = rows[i];
      std::fprintf(f,
                   "    {\"workers\": %d, \"gated\": %s, \"epochs\": %lld, \"queries\": %lld, "
                   "\"direct_sweep_ms\": %.4f, \"supervised_sweep_ms\": %.4f, "
                   "\"supervised_over_direct\": %.4f, \"identical\": %s}%s\n",
                   r.workers, r.gated ? "true" : "false", static_cast<long long>(r.epochs),
                   static_cast<long long>(r.queries), r.direct_sweep_ms, r.supervised_sweep_ms,
                   r.supervised_over_direct, r.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_proc_serving.json\n");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: supervised/direct reply diverged from the parent's mapped answer "
                 "(or supervision fired with no faults armed)\n");
    return 1;
  }
  if (!guardrail_ok) {
    std::fprintf(stderr, "FAIL: supervised call wall > %.2fx the raw pool\n", kGuardrail);
    return 1;
  }
  return 0;
}
