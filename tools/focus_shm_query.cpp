// focus_shm_query: cold-process serving off the shared-memory epoch plane
// (src/shm/epoch_plane.h, docs/shm_serving.md).
//
// The demonstration the plane exists for: one process ingests a stream and
// publishes every live epoch into a named shm segment; any other process —
// started later, configured with nothing but the segment name — attaches,
// rebuilds the catalog and CNNs from the header's seed provenance, and
// answers queries straight off the mapping. The query path is O(map + scan):
// no snapshot file, no deserialization, no copies except the candidate
// centroids handed to the GT-CNN. `query` prints the attach/plan/classify
// timing split to make that visible.
//
//   focus_shm_query publish --segment /focus_demo --stream auburn_c
//                   [--minutes M] [--seed N] [--fps F] [--every FRAMES]
//                   [--cheap IDX] [--k K] [--threshold T]
//       Ingest the simulated stream, publishing each finalize epoch into the
//       plane. The segment outlives the process; readers attach any time.
//   focus_shm_query query --segment /focus_demo --class car
//                   [--kx N] [--begin SEC] [--end SEC]
//       Cold attach + answer from the newest published epoch.
//   focus_shm_query status --segment /focus_demo
//       Plane stats: generation, pins, reclaims, arena usage.
//   focus_shm_query unlink --segment /focus_demo
//       Remove the segment name (existing mappings survive).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/common/logging.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_engine.h"
#include "src/shm/epoch_plane.h"
#include "src/shm/shm_segment.h"
#include "src/video/stream_generator.h"

namespace {

using namespace focus;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Minimal --flag value parser (same shape as focusctl's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        ok_ = false;
        return;
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  bool ok() const { return ok_; }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }
  int GetInt(const std::string& key, int fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atoi(v.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  focus_shm_query publish --segment /NAME --stream NAME [--minutes M]\n"
      "                  [--seed N] [--fps F] [--every FRAMES] [--cheap IDX]\n"
      "                  [--k K] [--threshold T]\n"
      "  focus_shm_query query   --segment /NAME --class NAME [--kx N]\n"
      "                  [--begin SEC] [--end SEC]\n"
      "  focus_shm_query status  --segment /NAME\n"
      "  focus_shm_query unlink  --segment /NAME\n");
  return 2;
}

void PrintStats(const shm::ShmPlaneStats& stats) {
  std::printf("  generation:      %llu (%llu epochs published)\n",
              static_cast<unsigned long long>(stats.published_generation),
              static_cast<unsigned long long>(stats.epochs_published));
  std::printf("  readers:         %llu live (%llu attaches ever)\n",
              static_cast<unsigned long long>(stats.live_readers),
              static_cast<unsigned long long>(stats.reader_attaches));
  std::printf("  stale pins:      %llu reclaimed, %llu forced evictions\n",
              static_cast<unsigned long long>(stats.stale_pins_reclaimed),
              static_cast<unsigned long long>(stats.pin_violations));
  std::printf("  arena:           %.1f KiB used of %.1f MiB\n",
              static_cast<double>(stats.arena_used_bytes) / 1024.0,
              static_cast<double>(stats.segment_bytes) / (1024.0 * 1024.0));
}

int CmdPublish(const Args& args) {
  const std::string segment = args.Get("segment");
  const std::string stream = args.Get("stream");
  if (segment.empty() || stream.empty()) {
    return Usage();
  }
  const double minutes = args.GetDouble("minutes", 2.0);
  const uint64_t seed = args.GetU64("seed", 23);
  const double fps = args.GetDouble("fps", 30.0);
  const int64_t every = args.GetInt("every", 300);
  const int cheap_index = args.GetInt("cheap", 1);
  video::StreamProfile profile;
  if (!video::FindProfile(stream, &profile)) {
    std::fprintf(stderr, "unknown stream '%s'\n", stream.c_str());
    return 1;
  }
  const auto candidates = cnn::GenericCheapCandidates(seed);
  if (cheap_index < 0 || cheap_index >= static_cast<int>(candidates.size())) {
    std::fprintf(stderr, "--cheap must be in [0, %zu)\n", candidates.size());
    return 1;
  }

  core::IngestParams params;
  params.model = candidates[cheap_index];
  params.k = args.GetInt("k", 3);
  params.cluster_threshold = args.GetDouble("threshold", 0.6);

  shm::EpochPublisher::Options options;
  options.provenance.world_seed = seed;
  options.provenance.cheap_weights_seed = seed;
  options.provenance.cheap_candidate_index = static_cast<uint32_t>(cheap_index);
  options.provenance.gt_weights_seed = seed;
  auto publisher = shm::EpochPublisher::Create(segment, options);
  if (!publisher.ok()) {
    std::fprintf(stderr, "create %s: %s\n", segment.c_str(),
                 publisher.error().message.c_str());
    return 1;
  }

  video::ClassCatalog catalog(seed);
  video::StreamRun run(&catalog, profile, minutes * 60.0, fps, seed + 1);
  cnn::Cnn cheap(params.model, &catalog);
  std::printf("ingesting %.1f min of %s with %s, publishing into %s every %lld frames...\n",
              minutes, stream.c_str(), params.model.name.c_str(), segment.c_str(),
              static_cast<long long>(every));
  const core::ClassifiedSample sample = core::ClassifySample(run, cheap, params.k);

  core::IngestOptions ingest;
  ingest.finalize_every_frames = every;
  double publish_millis = 0.0;
  int failed = 0;
  ingest.snapshot_sink = [&](std::shared_ptr<const core::LiveSnapshot> snap) {
    const auto start = std::chrono::steady_clock::now();
    auto published = (*publisher)->Publish(*snap);
    publish_millis += MillisSince(start);
    if (!published.ok()) {
      ++failed;  // Ingest keeps running; the plane just lags (arena full).
    }
  };
  core::RunIngestClassified(sample, params, ingest);

  const shm::ShmPlaneStats stats = (*publisher)->stats();
  std::printf("published %llu epochs (%.2f ms/epoch flatten+announce, %d failed)\n",
              static_cast<unsigned long long>(stats.epochs_published),
              stats.epochs_published > 0
                  ? publish_millis / static_cast<double>(stats.epochs_published)
                  : 0.0,
              failed);
  PrintStats(stats);
  std::printf("segment %s stays linked; attach with:\n  focus_shm_query query --segment %s "
              "--class <name>\n",
              segment.c_str(), segment.c_str());
  return failed == 0 ? 0 : 1;
}

int CmdQuery(const Args& args) {
  const std::string segment = args.Get("segment");
  const std::string class_name = args.Get("class");
  if (segment.empty() || class_name.empty()) {
    return Usage();
  }
  const int kx = args.GetInt("kx", -1);
  common::TimeRange range;
  range.begin_sec = args.GetDouble("begin", 0.0);
  range.end_sec = args.GetDouble("end", -1.0);

  // Cold attach: map the segment and claim a reader slot.
  const auto attach_start = std::chrono::steady_clock::now();
  auto reader = shm::ShmSnapshotReader::Attach(segment);
  if (!reader.ok()) {
    std::fprintf(stderr, "attach %s: %s\n", segment.c_str(), reader.error().message.c_str());
    return 1;
  }
  const double attach_millis = MillisSince(attach_start);

  // Rebuild the world from the header's provenance — no other configuration.
  auto provenance = (*reader)->Provenance();
  if (!provenance.ok()) {
    std::fprintf(stderr, "no published epoch in %s yet: %s\n", segment.c_str(),
                 provenance.error().message.c_str());
    return 1;
  }
  const auto rebuild_start = std::chrono::steady_clock::now();
  video::ClassCatalog catalog(provenance->world_seed);
  cnn::Cnn cheap(cnn::GenericCheapCandidates(
                     provenance->cheap_weights_seed)[provenance->cheap_candidate_index],
                 &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(provenance->gt_weights_seed), &catalog);
  const double rebuild_millis = MillisSince(rebuild_start);

  const common::ClassId cls = catalog.IdForName(class_name);
  if (cls == common::kInvalidClass) {
    std::fprintf(stderr, "unknown class '%s'\n", class_name.c_str());
    return 1;
  }

  auto view = (*reader)->Acquire();
  if (!view.ok()) {
    std::fprintf(stderr, "acquire: %s\n", view.error().message.c_str());
    return 1;
  }

  const auto plan_start = std::chrono::steady_clock::now();
  const shm::ShmQueryPlan plan = view->Plan(cls, kx, range, cheap);
  const double plan_millis = MillisSince(plan_start);
  const auto classify_start = std::chrono::steady_clock::now();
  const core::QueryResult result = view->Query(cls, kx, range, cheap, gt);
  const double query_millis = MillisSince(classify_start);
  if (!view->StillValid()) {
    std::fprintf(stderr, "epoch evicted mid-scan (plane under pin pressure); retry\n");
    return 1;
  }

  std::printf("epoch %llu (watermark frame %lld, %llu clusters, generation %llu)\n",
              static_cast<unsigned long long>(view->epoch()),
              static_cast<long long>(view->watermark()),
              static_cast<unsigned long long>(view->num_clusters()),
              static_cast<unsigned long long>(view->generation()));
  std::printf("query '%s' (Kx=%d):\n", class_name.c_str(), kx);
  std::printf("  frames returned:    %lld (%zu runs)\n",
              static_cast<long long>(result.frames_returned), result.frame_runs.size());
  std::printf("  clusters confirmed: %lld of %lld candidates\n",
              static_cast<long long>(result.clusters_matched),
              static_cast<long long>(result.centroids_classified));
  std::printf("  GT-CNN work:        %.1f ms GPU time\n", result.gpu_millis);
  for (size_t i = 0; i < std::min<size_t>(5, result.frame_runs.size()); ++i) {
    const auto& [first, last] = result.frame_runs[i];
    std::printf("  e.g. frames [%lld, %lld]  (t=%.1fs..%.1fs)\n",
                static_cast<long long>(first), static_cast<long long>(last),
                static_cast<double>(first) / view->fps(),
                static_cast<double>(last) / view->fps());
  }
  std::printf("cold-process cost: map+slot %.3f ms, model rebuild %.3f ms, "
              "scan/plan %.3f ms (%zu candidates), full query %.3f ms\n",
              attach_millis, rebuild_millis, plan_millis, plan.candidates.size(),
              query_millis);
  if (plan.candidates.empty()) {
    // Nothing indexed under that class — show what this epoch does index.
    std::set<common::ClassId> indexed;
    for (uint64_t i = 0; i < view->num_clusters(); ++i) {
      const shm::ShmClusterRecord& rec = view->clusters()[i];
      for (uint64_t c = 0; c < rec.classes_count; ++c) {
        indexed.insert(view->classes()[rec.classes_begin + c]);
      }
    }
    std::printf("no clusters index '%s'; this epoch's classes:", class_name.c_str());
    int shown = 0;
    for (common::ClassId c : indexed) {
      if (c == cnn::kOtherClass || shown >= 6) {
        continue;
      }
      std::printf(" %s", catalog.Name(c).c_str());
      ++shown;
    }
    std::printf("\n");
  }
  return 0;
}

int CmdStatus(const Args& args) {
  const std::string segment = args.Get("segment");
  if (segment.empty()) {
    return Usage();
  }
  auto mapped = shm::SharedSegment::Open(segment);
  if (!mapped.ok()) {
    std::fprintf(stderr, "open %s: %s\n", segment.c_str(), mapped.error().message.c_str());
    return 1;
  }
  std::printf("%s:\n", segment.c_str());
  PrintStats(shm::StatsOf(**mapped));
  return 0;
}

int CmdUnlink(const Args& args) {
  const std::string segment = args.Get("segment");
  if (segment.empty()) {
    return Usage();
  }
  shm::SharedSegment::Unlink(segment);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::SetLogLevel(common::LogLevel::kWarning);
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) {
    return Usage();
  }
  if (command == "publish") {
    return CmdPublish(args);
  }
  if (command == "query") {
    return CmdQuery(args);
  }
  if (command == "status") {
    return CmdStatus(args);
  }
  if (command == "unlink") {
    return CmdUnlink(args);
  }
  return Usage();
}
