// Deterministic fault injection for chaos testing.
//
// Production code marks its failure-prone operations with named *sites*:
//
//   if (common::FaultPoint("arena.commit.msync")) return common::Unavailable(...);
//
// With no plan armed (the default, and the only production configuration) a site is a
// single relaxed atomic load — cheap enough to leave compiled into release builds, so
// the chaos suite exercises the exact binaries the benches measure.
//
// Tests arm a FaultPlan describing *when* each site fires:
//   - FireOnHit(site, n):       fire exactly on the nth time the site is reached
//                               (1-based), once.
//   - FireAlwaysFrom(site, n):  fire on the nth and every later hit — a persistent
//                               failure (dead disk, wedged GPU).
//   - FireWithProbability(site, p): independent Bernoulli(p) per hit from a per-site
//                               PCG stream seeded by (plan seed, site name) — random
//                               but reproducible given the same hit sequence.
//
// Determinism caveat: hit counts are global per site, so concurrent threads racing
// through the same site interleave nondeterministically. The chaos suites pin the
// fault-bearing paths to one thread (single ingest worker, sequential checkpoint);
// see docs/robustness.md.
//
// Process-boundary caveat: a forked worker inherits the plan armed at fork time
// with its own copy of the hit counters. The worker-pool sites exploit both
// halves: proc.spawn / proc.rpc.send / proc.rpc.recv count in the parent
// (arm after Start to leave children clean), while proc.handler counts in each
// child (arm before Start; every worker carries it) — firing it makes the
// worker write a torn frame and _exit, the crash the supervision layer must
// absorb (src/runtime/worker_process_pool.cc, docs/robustness.md).
#ifndef FOCUS_SRC_COMMON_FAULT_INJECTION_H_
#define FOCUS_SRC_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace focus::common {

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}

  // Fire exactly on the |hit|th (1-based) time |site| is reached.
  FaultPlan& FireOnHit(const std::string& site, int64_t hit);
  // Fire on the |hit|th (1-based) and every subsequent hit of |site|.
  FaultPlan& FireAlwaysFrom(const std::string& site, int64_t hit);
  // Fire each hit of |site| independently with probability |p|, from a per-site
  // deterministic stream.
  FaultPlan& FireWithProbability(const std::string& site, double p);

  // Called by FaultPoint(); counts the hit and decides whether it fires.
  bool ShouldFail(const char* site);

  // Observability for tests: how often a site was reached / actually fired.
  int64_t HitCount(const std::string& site) const;
  int64_t FireCount(const std::string& site) const;
  // Total fires across all sites.
  int64_t TotalFires() const;

 private:
  struct SiteRule {
    int64_t fire_on_hit = 0;      // 1-based; 0 = disabled.
    bool sticky = false;          // FireAlwaysFrom semantics.
    double probability = 0.0;     // Bernoulli per hit when > 0.
    bool rng_seeded = false;
    Pcg32 rng;
  };
  struct SiteState {
    SiteRule rule;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  SiteState& StateFor(const std::string& site);

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
};

// Arms |plan| process-wide for the current scope. Nesting replaces the outer plan
// until the inner scope exits. Not thread-safe against concurrent arming; tests arm
// once, run, disarm.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan* plan);
  ~ScopedFaultPlan();

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan* previous_;
};

// The injection site check. Returns true when the armed plan says this hit of |site|
// fails; always false when no plan is armed.
bool FaultPoint(const char* site);

// The currently armed plan, or nullptr. Exposed for decorators (FlakyStreamRun) that
// need richer behavior than a boolean at a point.
FaultPlan* ActiveFaultPlan();

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_FAULT_INJECTION_H_
