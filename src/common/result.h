// Lightweight StatusOr-style result type for fallible APIs.
//
// Library code in this repository does not throw for expected failure modes (bad
// configuration, missing file, empty input); it returns Result<T> instead, reserving
// exceptions for programming errors surfaced by the standard library.
#ifndef FOCUS_SRC_COMMON_RESULT_H_
#define FOCUS_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace focus::common {

// Error payload: machine-readable code plus human-readable message.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIo,
  // A transient fault: the operation failed now but a retry (possibly after a
  // restart-and-resume) may succeed — a flapping camera, a failed GPU launch,
  // a worker whose checkpoint commit was interrupted.
  kUnavailable,
  // The operation exceeded its (virtual-time) deadline; the work it occupied
  // is wasted but the system state is unchanged.
  kTimeout,
  // Durable state is unrecoverably inconsistent: recovery found corruption it
  // could not repair. Never retryable.
  kDataLoss,
};

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kNotFound:
      return "NotFound";
    case ErrorCode::kFailedPrecondition:
      return "FailedPrecondition";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kIo:
      return "Io";
    case ErrorCode::kUnavailable:
      return "Unavailable";
    case ErrorCode::kTimeout:
      return "Timeout";
    case ErrorCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

// Whether a failed operation with this code is worth retrying (in place or by
// restarting the worker and resuming from its checkpoint). kIo is retryable
// because the storage layer's recovery path repairs torn writes on reopen: an
// interrupted commit leaves the arena restorable at the previous generation,
// so the retry re-runs the commit rather than compounding the damage.
inline bool IsRetryable(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout || code == ErrorCode::kIo;
}

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse.
  Result(T value) : value_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Error error) : value_(std::in_place_index<1>, std::move(error)) {}  // NOLINT

  bool ok() const { return value_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(value_);
  }

 private:
  std::variant<T, Error> value_;
};

// Helpers for building errors at call sites.
inline Error InvalidArgument(std::string message) {
  return Error{ErrorCode::kInvalidArgument, std::move(message)};
}
inline Error NotFound(std::string message) { return Error{ErrorCode::kNotFound, std::move(message)}; }
inline Error FailedPrecondition(std::string message) {
  return Error{ErrorCode::kFailedPrecondition, std::move(message)};
}
inline Error OutOfRange(std::string message) { return Error{ErrorCode::kOutOfRange, std::move(message)}; }
inline Error Internal(std::string message) { return Error{ErrorCode::kInternal, std::move(message)}; }
inline Error IoError(std::string message) { return Error{ErrorCode::kIo, std::move(message)}; }
inline Error Unavailable(std::string message) {
  return Error{ErrorCode::kUnavailable, std::move(message)};
}
inline Error Timeout(std::string message) { return Error{ErrorCode::kTimeout, std::move(message)}; }
inline Error DataLoss(std::string message) { return Error{ErrorCode::kDataLoss, std::move(message)}; }

}  // namespace focus::common

#endif  // FOCUS_SRC_COMMON_RESULT_H_
