// Supervised multi-process serving under seeded chaos
// (src/runtime/supervised_worker_pool.h, src/server/query_server.h,
// docs/robustness.md, docs/shm_serving.md).
//
// The headline property: under sustained query load with seeded SIGKILL,
// hang, and torn-frame storms, every request completes — byte-identical to
// the in-process answer when it succeeds, a typed retryable error or an
// honestly framed DEGRADED INPROC answer when it cannot — with zero hangs,
// zero parent crashes, and ingest publishing unimpeded throughout. Around
// it: restart budgets (exhaustion -> Down -> AllDown -> typed rejection),
// deadline-bounded hung workers, sibling-retry identity, and the server's
// SERVE/QUERY/degrade/re-SERVE lifecycle.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/common/fault_injection.h"
#include "src/common/result.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/runtime/metrics.h"
#include "src/runtime/supervised_worker_pool.h"
#include "src/server/query_server.h"
#include "src/shm/epoch_plane.h"
#include "src/video/stream_generator.h"

namespace focus::shm {
namespace {

core::IngestParams Params() {
  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

ShmModelProvenance Provenance() {
  ShmModelProvenance p;
  p.world_seed = 23;
  p.cheap_weights_seed = 5;
  p.cheap_candidate_index = 1;
  p.gt_weights_seed = 23;
  return p;
}

std::string SegmentName(const std::string& tag) {
  return "/focus_proc_test_" + tag + "_" + std::to_string(::getpid());
}

// Exact textual encoding of a QueryResult (hexfloat GPU accounting), so
// byte-identity over the worker RPC is plain string equality.
std::string EncodeResult(const core::QueryResult& r) {
  std::ostringstream out;
  out << r.queried << ' ' << r.centroids_classified << ' ' << r.clusters_matched << ' '
      << r.frames_returned << ' ' << std::hexfloat << r.gpu_millis;
  for (const auto& [first, last] : r.frame_runs) {
    out << ' ' << first << ':' << last;
  }
  return out.str();
}

struct QuerySpec {
  common::ClassId cls;
  int kx;
  common::TimeRange range;
};

std::vector<QuerySpec> SpecsFor(const core::LiveSnapshot& snapshot) {
  std::set<common::ClassId> classes;
  for (const auto& entry : snapshot.index.clusters()) {
    for (common::ClassId c : entry.topk_classes) {
      classes.insert(c);
    }
    if (classes.size() >= 4) {
      break;
    }
  }
  classes.insert(video::kNumClasses - 1);  // Near-certain miss.
  std::vector<QuerySpec> specs;
  int i = 0;
  for (common::ClassId c : classes) {
    specs.push_back({c, -1, {}});
    if (i % 2 == 0) {
      specs.push_back({c, 1, {}});
      specs.push_back({c, -1, {2.0, 9.0}});
    }
    ++i;
  }
  return specs;
}

// Publishes every live epoch of a short classified run into |publisher|.
std::vector<std::shared_ptr<const core::LiveSnapshot>> PublishRun(
    EpochPublisher* publisher, double duration_sec, uint64_t stream_seed,
    const std::function<void(const core::LiveSnapshot&)>& after_publish = nullptr) {
  video::ClassCatalog catalog(23);
  video::StreamProfile profile;
  if (!video::FindProfile("auburn_c", &profile)) {
    ADD_FAILURE() << "missing profile";
    return {};
  }
  const core::IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  video::StreamRun run(&catalog, profile, duration_sec, /*fps=*/30.0, stream_seed);
  const core::ClassifiedSample sample = core::ClassifySample(run, cheap, params.k);

  std::vector<std::shared_ptr<const core::LiveSnapshot>> snapshots;
  core::IngestOptions options;
  options.finalize_every_frames = 60;
  options.snapshot_sink = [&](std::shared_ptr<const core::LiveSnapshot> snap) {
    auto published = publisher->Publish(*snap);
    EXPECT_TRUE(published.ok()) << "epoch " << snap->epoch << ": "
                                << (published.ok() ? "" : published.error().message);
    snapshots.push_back(snap);
    if (after_publish) {
      after_publish(*snap);
    }
  };
  core::RunIngestClassified(sample, params, options);
  return snapshots;
}

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

// The worker-side handler the pool-level tests fork: lazy attach, models
// rebuilt from provenance, one shm query per request. Range bounds arrive in
// hexfloat and are parsed with strtod — istream extraction rejects hexfloat.
struct ProcWorker {
  std::string segment;
  runtime::MetricsRegistry metrics;
  std::unique_ptr<ShmSnapshotReader> reader;
  std::unique_ptr<video::ClassCatalog> catalog;
  std::unique_ptr<cnn::Cnn> cheap;
  std::unique_ptr<cnn::Cnn> gt;

  std::string EnsureAttached() {
    if (reader != nullptr) {
      return "";
    }
    auto attached = ShmSnapshotReader::Attach(segment, &metrics);
    if (!attached.ok()) {
      return "ERR attach: " + attached.error().message;
    }
    reader = std::move(*attached);
    auto provenance = reader->Provenance();
    if (!provenance.ok()) {
      return "ERR provenance: " + provenance.error().message;
    }
    catalog = std::make_unique<video::ClassCatalog>(provenance->world_seed);
    cheap = std::make_unique<cnn::Cnn>(
        cnn::GenericCheapCandidates(
            provenance->cheap_weights_seed)[provenance->cheap_candidate_index],
        catalog.get());
    gt = std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(provenance->gt_weights_seed),
                                    catalog.get());
    return "";
  }

  // "Q <cls> <kx> <begin> <end>" -> EncodeResult of the newest epoch's answer.
  // "HANG" parks the worker forever (deadline tests SIGKILL it).
  std::string Handle(const std::string& request) {
    if (request == "HANG") {
      while (true) {
        ::pause();
      }
    }
    if (std::string err = EnsureAttached(); !err.empty()) {
      return err;
    }
    const std::vector<std::string> tokens = Split(request);
    if (tokens.size() != 5 || tokens[0] != "Q") {
      return "ERR bad request " + request;
    }
    const common::ClassId cls =
        static_cast<common::ClassId>(std::strtol(tokens[1].c_str(), nullptr, 10));
    const int kx = static_cast<int>(std::strtol(tokens[2].c_str(), nullptr, 10));
    common::TimeRange range;
    range.begin_sec = std::strtod(tokens[3].c_str(), nullptr);
    range.end_sec = std::strtod(tokens[4].c_str(), nullptr);
    auto view = reader->Acquire();
    if (!view.ok()) {
      return "ERR acquire: " + view.error().message;
    }
    auto result = view->QueryChecked(cls, kx, range, *cheap, *gt);
    if (!result.ok()) {
      return "ERR evicted: " + result.error().message;
    }
    return EncodeResult(*result);
  }
};

std::string QueryLine(const QuerySpec& spec) {
  std::ostringstream out;
  out << "Q " << spec.cls << ' ' << spec.kx << ' ' << std::hexfloat << spec.range.begin_sec
      << ' ' << spec.range.end_sec;
  return out.str();
}

std::string Echo(const std::string& request) { return request; }

std::string HangOrEcho(const std::string& request) {
  if (request == "HANG") {
    while (true) {
      ::pause();
    }
  }
  return request;
}

// In-process reference: the models and reader the parent test holds.
struct Reference {
  explicit Reference(const std::string& segment) {
    auto attached = ShmSnapshotReader::Attach(segment);
    EXPECT_TRUE(attached.ok());
    reader = std::move(*attached);
    catalog = std::make_unique<video::ClassCatalog>(23);
    cheap = std::make_unique<cnn::Cnn>(Params().model, catalog.get());
    gt = std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(23), catalog.get());
  }
  std::string Answer(const QuerySpec& spec) {
    auto view = reader->Acquire();
    EXPECT_TRUE(view.ok());
    return EncodeResult(view->Query(spec.cls, spec.kx, spec.range, *cheap, *gt));
  }
  std::unique_ptr<ShmSnapshotReader> reader;
  std::unique_ptr<video::ClassCatalog> catalog;
  std::unique_ptr<cnn::Cnn> cheap;
  std::unique_ptr<cnn::Cnn> gt;
};

// --- Supervision mechanics (echo workers; no shm needed) ------------------

TEST(SupervisedWorkerPoolTest, HungWorkersTimeOutRespawnAndRecover) {
  runtime::SupervisedPoolOptions options;
  options.num_workers = 2;
  options.call_deadline_millis = 100;
  options.max_worker_restarts = 3;
  runtime::SupervisedWorkerPool pool(options);
  ASSERT_TRUE(pool.Start(HangOrEcho).ok());

  // Both the first pick and the sibling retry hang past the deadline: the
  // call surfaces kTimeout after two bounded attempts, and both slots were
  // killed and respawned rather than left occupying anything.
  auto hung = pool.Call("HANG");
  ASSERT_FALSE(hung.ok());
  EXPECT_EQ(hung.error().code, common::ErrorCode::kTimeout);
  const runtime::SupervisedPoolStats stats = pool.stats();
  EXPECT_EQ(stats.timeouts, 2);
  EXPECT_EQ(stats.restarts, 2);
  EXPECT_EQ(stats.sibling_retries, 1);
  EXPECT_GT(stats.backoff_millis, 0.0);  // Virtual backoff accounted, not slept.
  EXPECT_EQ(pool.live_workers(), 2);     // Restarting, not Down.

  auto reply = pool.Call("ok");
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  EXPECT_EQ(*reply, "ok");
  pool.Shutdown();
}

TEST(SupervisedWorkerPoolTest, RestartBudgetExhaustionMeansDownThenTypedRejection) {
  runtime::SupervisedPoolOptions options;
  options.num_workers = 2;
  options.call_deadline_millis = 2000;
  options.max_worker_restarts = 0;  // Any failure is terminal for its slot.
  runtime::SupervisedWorkerPool pool(options);
  ASSERT_TRUE(pool.Start(Echo).ok());
  EXPECT_FALSE(pool.AllDown());

  pool.KillWorker(0);
  pool.KillWorker(1);
  auto failed = pool.Call("x");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, common::ErrorCode::kUnavailable);
  EXPECT_TRUE(pool.AllDown());
  EXPECT_EQ(pool.live_workers(), 0);
  EXPECT_EQ(pool.Health(0).state, runtime::WorkerState::kDown);
  EXPECT_EQ(pool.Health(1).state, runtime::WorkerState::kDown);

  // With every budget exhausted the pool refuses up front — no socket is
  // touched, the caller gets the degradation signal.
  auto rejected = pool.Call("y");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, common::ErrorCode::kUnavailable);
  EXPECT_NE(rejected.error().message.find("down"), std::string::npos);
  EXPECT_GE(pool.stats().failed_calls, 2);
  pool.Shutdown();
}

// --- Byte-identity over real shm workers ----------------------------------

TEST(SupervisedWorkerPoolTest, SiblingRetryAnswersByteIdentically) {
  const std::string name = SegmentName("sibling");
  EpochPublisher::Options popts;
  popts.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, popts);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);
  auto snapshots = PublishRun(publisher->get(), /*duration_sec=*/8.0, /*stream_seed=*/11);
  ASSERT_FALSE(snapshots.empty());
  const std::vector<QuerySpec> specs = SpecsFor(*snapshots.back());
  Reference reference(name);

  runtime::SupervisedPoolOptions options;
  options.num_workers = 2;
  options.call_deadline_millis = 10000;
  options.max_worker_restarts = 4;
  runtime::SupervisedWorkerPool pool(options);
  auto worker = std::make_shared<ProcWorker>();
  worker->segment = name;
  ASSERT_TRUE(pool.Start([worker](const std::string& r) { return worker->Handle(r); }).ok());

  // Baseline: worker answers match the in-process reference exactly.
  const std::string expected = reference.Answer(specs[0]);
  auto baseline = pool.Call(QueryLine(specs[0]));
  ASSERT_TRUE(baseline.ok()) << baseline.error().message;
  EXPECT_EQ(*baseline, expected);

  // Kill the slot the round-robin cursor will pick next (slot 1, after the
  // baseline consumed slot 0). The call must route around the corpse: the
  // dead worker is respawned, the request retried on its sibling, and the
  // answer is byte-identical — the caller never learns anything happened.
  pool.KillWorker(1);
  auto retried = pool.Call(QueryLine(specs[0]));
  ASSERT_TRUE(retried.ok()) << retried.error().message;
  EXPECT_EQ(*retried, expected);
  const runtime::SupervisedPoolStats stats = pool.stats();
  EXPECT_EQ(stats.sibling_retries, 1);
  EXPECT_EQ(stats.restarts, 1);
  EXPECT_EQ(stats.failed_calls, 0);
  EXPECT_EQ(pool.Health(1).state, runtime::WorkerState::kRestarting);

  // The respawned worker serves again (fresh attach, same answers) and is
  // marked Healthy by its next success.
  for (const QuerySpec& spec : specs) {
    auto reply = pool.Call(QueryLine(spec));
    ASSERT_TRUE(reply.ok()) << reply.error().message;
    EXPECT_EQ(*reply, reference.Answer(spec));
  }
  EXPECT_EQ(pool.Health(1).state, runtime::WorkerState::kHealthy);
  EXPECT_EQ(pool.live_workers(), 2);
  pool.Shutdown();
}

// The headline chaos property. Seeded torn-frame crashes inside the workers
// (proc.handler, inherited at fork), seeded send/recv/spawn faults in the
// parent, and explicit SIGKILLs — under all of it, every call either
// returns the byte-identical answer or a typed retryable error; the pool
// self-heals when the storm lifts; and the publisher keeps publishing.
TEST(SupervisedWorkerPoolTest, ChaosStormEveryAnswerByteIdenticalOrTyped) {
  const std::string name = SegmentName("storm");
  EpochPublisher::Options popts;
  popts.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, popts);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);
  auto snapshots = PublishRun(publisher->get(), /*duration_sec=*/8.0, /*stream_seed=*/29);
  ASSERT_FALSE(snapshots.empty());
  std::vector<QuerySpec> specs = SpecsFor(*snapshots.back());
  if (specs.size() > 8) {
    specs.resize(8);  // Bound respawn churn: reader slots are finite (64).
  }
  Reference reference(name);
  std::vector<std::string> expected;
  expected.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    expected.push_back(reference.Answer(spec));
  }

  runtime::SupervisedPoolOptions options;
  options.num_workers = 3;
  options.call_deadline_millis = 10000;
  options.max_worker_restarts = 1000;  // The storm must never exhaust the pool.
  runtime::SupervisedWorkerPool pool(options);
  auto worker = std::make_shared<ProcWorker>();
  worker->segment = name;

  // Child-side chaos is armed BEFORE Start so every forked worker inherits
  // it: each request has a seeded chance of a torn-frame crash mid-reply.
  common::FaultPlan child_plan(/*seed=*/1789);
  child_plan.FireWithProbability("proc.handler", 0.20);
  int successes = 0;
  {
    common::ScopedFaultPlan arm_children(&child_plan);
    ASSERT_TRUE(
        pool.Start([worker](const std::string& r) { return worker->Handle(r); }).ok());

    // Parent-side chaos replaces the plan after the fork: send faults, recv
    // faults (stranded replies), and denied respawns.
    common::FaultPlan parent_plan(/*seed=*/431);
    parent_plan.FireWithProbability("proc.rpc.send", 0.10);
    parent_plan.FireWithProbability("proc.rpc.recv", 0.15);
    parent_plan.FireWithProbability("proc.spawn", 0.10);
    common::ScopedFaultPlan arm_parent(&parent_plan);

    common::Pcg32 rng(97, 13);
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < specs.size(); ++i) {
        if (rng.NextDouble() < 0.15) {
          pool.KillWorker(static_cast<int>(rng.Next64() % options.num_workers));
        }
        auto reply = pool.Call(QueryLine(specs[i]));
        if (reply.ok()) {
          EXPECT_EQ(*reply, expected[i]) << "spec " << i << " round " << round;
          ++successes;
        } else {
          // Never a hang, never a crash — always a typed, retryable error.
          EXPECT_TRUE(common::IsRetryable(reply.error().code))
              << common::ErrorCodeName(reply.error().code) << ": "
              << reply.error().message;
        }
      }
    }
    EXPECT_GT(successes, 0);
    EXPECT_FALSE(pool.AllDown());
    EXPECT_GT(pool.stats().restarts, 0);
  }

  // Storm over: ingest was never stalled — the publisher advances the plane —
  // and the pool self-heals to serve the new epochs byte-identically.
  auto more = PublishRun(publisher->get(), /*duration_sec=*/4.0, /*stream_seed=*/31);
  ASSERT_FALSE(more.empty());
  const std::string healed_expected = reference.Answer(specs[0]);
  common::Result<std::string> healed = common::Unavailable("never called");
  for (int attempt = 0; attempt < 10; ++attempt) {
    healed = pool.Call(QueryLine(specs[0]));
    if (healed.ok()) {
      break;
    }
  }
  ASSERT_TRUE(healed.ok()) << healed.error().message;
  EXPECT_EQ(*healed, healed_expected);
  pool.Shutdown();
}

// --- The server wired through the supervised pool -------------------------

TEST(ProcServingServerTest, ServeQueryDegradeAndReServeLifecycle) {
  const std::string name = SegmentName("server");
  EpochPublisher::Options popts;
  popts.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, popts);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);
  auto snapshots = PublishRun(publisher->get(), /*duration_sec=*/8.0, /*stream_seed=*/11);
  ASSERT_FALSE(snapshots.empty());
  const std::vector<QuerySpec> specs = SpecsFor(*snapshots.back());

  video::ClassCatalog world(23);  // The plane's world: class names resolve here.
  const std::string cls_name = world.Name(specs[0].cls);

  video::ClassCatalog server_catalog(29);
  core::FocusFleet fleet;
  runtime::MetricsRegistry metrics;
  server::QueryServer server(&fleet, &server_catalog, &metrics);
  runtime::SupervisedPoolOptions serve_options;
  serve_options.num_workers = 2;
  serve_options.call_deadline_millis = 10000;
  serve_options.max_worker_restarts = 0;  // One failure downs a slot: degradation test.
  server.set_shm_serve_options(serve_options);

  ASSERT_EQ(server.HandleLine("SHM ATTACH " + name).substr(0, 11), "OK ATTACHED");

  // Unserved: the server's own reader answers, framed INPROC.
  const std::string query = "SHM QUERY " + name + " " + cls_name;
  const std::string inproc = server.HandleLine(query);
  const std::string inproc_head = "OK SHM " + name + " INPROC ";
  ASSERT_EQ(inproc.substr(0, inproc_head.size()), inproc_head) << inproc;
  const std::string body = inproc.substr(inproc_head.size());  // "EPOCH ...\nRUN ..."

  // Served: a worker process answers — byte-identical from EPOCH on.
  const std::string serving = server.HandleLine("SHM SERVE " + name + " WORKERS 2");
  EXPECT_EQ(serving, "OK SERVING " + name + " WORKERS 2 DEADLINE_MS 10000");
  EXPECT_NE(server.HandleLine("SHM SERVE " + name).find("already serving"),
            std::string::npos);
  const std::string served = server.HandleLine(query);
  EXPECT_EQ(served, "OK SHM " + name + " " + body);
  EXPECT_EQ(metrics.counter("server.shm_queries"), 2);
  EXPECT_EQ(metrics.counter("server.degraded_queries"), 0);

  // Queries with options flow through to the workers.
  const std::string ranged =
      server.HandleLine("SHM QUERY " + name + " " + cls_name + " BEGIN 2 END 9 KX 1");
  EXPECT_EQ(ranged.substr(0, 7), "OK SHM ") << ranged;

  // A persistent recv fault with a zero restart budget downs both slots on
  // one call; the server notices AllDown and answers from its own reader,
  // framed DEGRADED INPROC — same bytes, honest label.
  {
    common::FaultPlan plan;
    plan.FireAlwaysFrom("proc.rpc.recv", 1);
    common::ScopedFaultPlan armed(&plan);
    const std::string degraded = server.HandleLine(query);
    EXPECT_EQ(degraded, "OK DEGRADED INPROC " + name + " " + body);
  }
  EXPECT_EQ(metrics.counter("server.degraded_queries"), 1);

  // Down pools are visible in STATUS and HEALTH.
  const std::string status = server.HandleLine("SHM STATUS " + name);
  EXPECT_NE(status.find("WORKERS 0/2"), std::string::npos) << status;
  EXPECT_NE(status.find("DOWN 2"), std::string::npos) << status;
  const std::string health = server.HandleLine("HEALTH");
  EXPECT_NE(health.find("WORKERS " + name + " 0/2"), std::string::npos) << health;
  EXPECT_NE(health.find("STATE Down"), std::string::npos) << health;

  // The pool stays Down after the storm lifts (budget is spent), the server
  // keeps degrading — until SERVE, the recovery verb, replaces the pool.
  EXPECT_EQ(server.HandleLine(query), "OK DEGRADED INPROC " + name + " " + body);
  EXPECT_EQ(server.HandleLine("SHM SERVE " + name + " WORKERS 2"),
            "OK SERVING " + name + " WORKERS 2 DEADLINE_MS 10000");
  EXPECT_EQ(server.HandleLine(query), "OK SHM " + name + " " + body);

  // Typed errors for the non-shm failure modes.
  EXPECT_EQ(server.HandleLine("SHM QUERY /nonexistent car").substr(0, 12), "ERR NotFound");
  EXPECT_EQ(server.HandleLine("SHM SERVE /nonexistent").substr(0, 12), "ERR NotFound");
  EXPECT_EQ(server.HandleLine("SHM QUERY " + name + " not_a_class").substr(0, 12),
            "ERR NotFound");
}

TEST(ProcServingServerTest, LivePublisherChaosStormNeverStallsIngest) {
  const std::string name = SegmentName("liveserver");
  EpochPublisher::Options popts;
  popts.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, popts);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);
  // Seed the plane so attach/serve find an epoch and a provenance header.
  auto seed_run = PublishRun(publisher->get(), /*duration_sec=*/4.0, /*stream_seed=*/53);
  ASSERT_FALSE(seed_run.empty());
  const std::vector<QuerySpec> specs = SpecsFor(*seed_run.back());
  video::ClassCatalog world(23);

  video::ClassCatalog server_catalog(29);
  core::FocusFleet fleet;
  runtime::MetricsRegistry metrics;
  server::QueryServer server(&fleet, &server_catalog, &metrics);
  runtime::SupervisedPoolOptions serve_options;
  serve_options.num_workers = 2;
  serve_options.call_deadline_millis = 10000;
  serve_options.max_worker_restarts = 1000;
  server.set_shm_serve_options(serve_options);
  ASSERT_EQ(server.HandleLine("SHM ATTACH " + name).substr(0, 2), "OK");

  // Workers fork under an armed torn-frame plan; parent faults arm next.
  common::FaultPlan child_plan(/*seed=*/7321);
  child_plan.FireWithProbability("proc.handler", 0.15);
  int queries = 0;
  int ok_responses = 0;
  {
    common::ScopedFaultPlan arm_children(&child_plan);
    ASSERT_EQ(server.HandleLine("SHM SERVE " + name).substr(0, 2), "OK");
    common::FaultPlan parent_plan(/*seed=*/911);
    parent_plan.FireWithProbability("proc.rpc.send", 0.10);
    parent_plan.FireWithProbability("proc.rpc.recv", 0.10);
    common::ScopedFaultPlan arm_parent(&parent_plan);

    // Sustained load while ingest republishes the plane epoch by epoch: every
    // response is a success frame or a typed error — the publisher's own
    // EXPECTs inside PublishRun prove ingest never stalled behind a worker.
    size_t at = 0;
    auto storm = PublishRun(publisher->get(), /*duration_sec=*/8.0, /*stream_seed=*/59,
                            [&](const core::LiveSnapshot&) {
                              for (int i = 0; i < 2; ++i) {
                                const QuerySpec& spec = specs[at++ % specs.size()];
                                const std::string response = server.HandleLine(
                                    "SHM QUERY " + name + " " + world.Name(spec.cls));
                                ++queries;
                                if (response.substr(0, 3) == "OK ") {
                                  ++ok_responses;
                                  EXPECT_NE(response.find(" EPOCH "), std::string::npos)
                                      << response;
                                } else {
                                  const std::vector<std::string> tokens = Split(response);
                                  ASSERT_GE(tokens.size(), 2u) << response;
                                  EXPECT_EQ(tokens[0], "ERR");
                                  EXPECT_TRUE(tokens[1] == "Io" || tokens[1] == "Timeout" ||
                                              tokens[1] == "Unavailable")
                                      << response;
                                }
                              }
                            });
    ASSERT_FALSE(storm.empty());
  }
  EXPECT_GT(queries, 0);
  EXPECT_GT(ok_responses, 0);

  // Storm over: the very next query round-trips through a worker again.
  std::string final_response;
  for (int attempt = 0; attempt < 10; ++attempt) {
    final_response = server.HandleLine("SHM QUERY " + name + " " + world.Name(specs[0].cls));
    if (final_response.substr(0, 3) == "OK ") {
      break;
    }
  }
  EXPECT_EQ(final_response.substr(0, 7), "OK SHM ") << final_response;
  EXPECT_EQ(final_response.find("DEGRADED"), std::string::npos) << final_response;
}

}  // namespace
}  // namespace focus::shm
