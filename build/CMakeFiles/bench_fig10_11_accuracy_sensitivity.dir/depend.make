# Empty dependencies file for bench_fig10_11_accuracy_sensitivity.
# This may be replaced when dependencies are built.
