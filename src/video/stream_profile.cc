#include "src/video/stream_profile.h"

namespace focus::video {

const char* StreamTypeName(StreamType type) {
  switch (type) {
    case StreamType::kTraffic:
      return "Traffic";
    case StreamType::kSurveillance:
      return "Surveillance";
    case StreamType::kNews:
      return "News";
  }
  return "?";
}

namespace {

StreamProfile Base(StreamType type) {
  StreamProfile p;
  p.type = type;
  switch (type) {
    case StreamType::kTraffic:
      p.num_classes_present = 280;
      p.zipf_exponent = 2.0;
      p.peak_arrival_rate_per_sec = 0.4;
      p.night_activity_fraction = 0.15;
      p.mean_dwell_sec = 10.0;
      p.dwell_sigma = 0.6;
      p.stationary_fraction = 0.3;
      p.appearance_walk_step = 0.20;
      p.pixel_diff_suppression = 0.35;
      p.appearance_variability = 0.5;
      break;
    case StreamType::kSurveillance:
      p.num_classes_present = 260;
      p.zipf_exponent = 2.2;
      p.peak_arrival_rate_per_sec = 0.25;
      p.night_activity_fraction = 0.1;
      p.mean_dwell_sec = 20.0;
      p.dwell_sigma = 0.7;
      p.stationary_fraction = 0.35;
      p.appearance_walk_step = 0.18;
      p.pixel_diff_suppression = 0.4;
      p.appearance_variability = 0.55;
      break;
    case StreamType::kNews:
      p.num_classes_present = 600;
      p.zipf_exponent = 1.7;
      p.peak_arrival_rate_per_sec = 0.5;
      p.night_activity_fraction = 0.9;
      p.mean_dwell_sec = 15.0;
      p.dwell_sigma = 0.8;
      p.stationary_fraction = 0.2;
      p.appearance_walk_step = 0.24;
      p.pixel_diff_suppression = 0.3;
      p.appearance_variability = 0.7;
      break;
  }
  return p;
}

}  // namespace

std::vector<StreamProfile> Table1Profiles() {
  std::vector<StreamProfile> profiles;
  profiles.reserve(13);

  {
    StreamProfile p = Base(StreamType::kTraffic);
    p.name = "auburn_c";
    p.location = "AL, USA";
    p.description = "A commercial area intersection in the City of Auburn";
    p.num_classes_present = 300;
    p.zipf_exponent = 1.85;
    p.peak_arrival_rate_per_sec = 0.55;  // Busy commercial intersection.
    p.appearance_variability = 0.48;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kTraffic);
    p.name = "auburn_r";
    p.location = "AL, USA";
    p.description = "A residential area intersection in the City of Auburn";
    p.num_classes_present = 230;
    p.zipf_exponent = 2.5;  // Quiet residential: one class (cars) dominates strongly.
    p.peak_arrival_rate_per_sec = 0.12;
    p.appearance_variability = 0.52;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kTraffic);
    p.name = "city_a_d";
    p.location = "USA";
    p.description = "A downtown intersection in City A";
    p.num_classes_present = 320;
    p.zipf_exponent = 1.8;
    p.peak_arrival_rate_per_sec = 0.5;
    p.appearance_variability = 0.56;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kTraffic);
    p.name = "city_a_r";
    p.location = "USA";
    p.description = "A residential area intersection in City A";
    p.num_classes_present = 250;
    p.zipf_exponent = 2.1;
    p.peak_arrival_rate_per_sec = 0.2;
    p.appearance_variability = 0.56;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kTraffic);
    p.name = "bend";
    p.location = "OR, USA";
    p.description = "A road-side camera in the City of Bend";
    p.num_classes_present = 220;
    p.zipf_exponent = 2.7;  // Road-side: almost exclusively vehicles.
    p.peak_arrival_rate_per_sec = 0.12;
    p.appearance_variability = 0.56;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kTraffic);
    p.name = "jacksonh";
    p.location = "WY, USA";
    p.description = "A busy intersection (Town Square) in Jackson Hole";
    p.num_classes_present = 330;
    p.zipf_exponent = 1.75;
    p.peak_arrival_rate_per_sec = 0.6;
    p.mean_dwell_sec = 14.0;  // Pedestrians linger in the square.
    p.appearance_variability = 0.6;
    profiles.push_back(p);
  }

  {
    StreamProfile p = Base(StreamType::kSurveillance);
    p.name = "church_st";
    p.location = "VT, USA";
    p.description = "A video stream rotating among cameras in a shopping mall (Church Street Marketplace)";
    p.num_classes_present = 280;
    p.zipf_exponent = 1.95;
    p.peak_arrival_rate_per_sec = 0.25;
    p.appearance_walk_step = 0.28;  // Camera rotation resets views frequently.
    p.mean_dwell_sec = 9.0;         // Rotation truncates dwell.
    p.appearance_variability = 0.42;  // Each fixed view is extremely constrained.
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kSurveillance);
    p.name = "lausanne";
    p.location = "Switzerland";
    p.description = "A pedestrian plaza (Place de la Palud) in Lausanne";
    p.num_classes_present = 240;
    p.zipf_exponent = 2.6;  // Pedestrians dominate overwhelmingly.
    p.peak_arrival_rate_per_sec = 0.15;
    p.mean_dwell_sec = 30.0;  // People linger in the plaza.
    p.appearance_variability = 0.45;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kSurveillance);
    p.name = "oxford";
    p.location = "England";
    p.description = "A bookshop street in the University of Oxford";
    p.num_classes_present = 230;
    p.zipf_exponent = 2.9;  // The least diverse stream: nearly all pedestrians.
    p.peak_arrival_rate_per_sec = 0.1;
    p.mean_dwell_sec = 35.0;
    p.appearance_walk_step = 0.13;   // Slow walkers, stable viewpoint.
    p.appearance_variability = 0.58;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kSurveillance);
    p.name = "sittard";
    p.location = "Netherlands";
    p.description = "A market square in Sittard";
    p.num_classes_present = 300;
    p.zipf_exponent = 2.05;
    p.peak_arrival_rate_per_sec = 0.3;
    p.mean_dwell_sec = 22.0;
    p.appearance_variability = 0.52;
    profiles.push_back(p);
  }

  {
    StreamProfile p = Base(StreamType::kNews);
    p.name = "cnn";
    p.location = "USA";
    p.description = "News channel";
    p.num_classes_present = 620;
    p.zipf_exponent = 1.7;
    p.appearance_variability = 0.62;
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kNews);
    p.name = "foxnews";
    p.location = "USA";
    p.description = "News channel";
    p.num_classes_present = 560;
    p.zipf_exponent = 1.75;
    p.appearance_variability = 0.72;  // Heavier graphics overlays: hardest to specialize.
    profiles.push_back(p);
  }
  {
    StreamProfile p = Base(StreamType::kNews);
    p.name = "msnbc";
    p.location = "USA";
    p.description = "News channel";
    p.num_classes_present = 690;
    p.zipf_exponent = 1.65;
    p.appearance_variability = 0.6;
    profiles.push_back(p);
  }

  return profiles;
}

bool FindProfile(const std::string& name, StreamProfile* out) {
  for (const StreamProfile& p : Table1Profiles()) {
    if (p.name == name) {
      *out = p;
      return true;
    }
  }
  return false;
}

std::vector<std::string> RepresentativeNineStreams() {
  return {"auburn_c", "city_a_r", "jacksonh", "church_st", "lausanne",
          "sittard",  "cnn",      "foxnews",  "msnbc"};
}

}  // namespace focus::video
