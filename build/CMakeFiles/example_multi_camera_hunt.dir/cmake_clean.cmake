file(REMOVE_RECURSE
  "CMakeFiles/example_multi_camera_hunt.dir/examples/multi_camera_hunt.cpp.o"
  "CMakeFiles/example_multi_camera_hunt.dir/examples/multi_camera_hunt.cpp.o.d"
  "example_multi_camera_hunt"
  "example_multi_camera_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_camera_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
