// Supervision policy over WorkerProcessPool: deadline-bounded calls, restart
// budgets, sibling retry, and a health registry — the serving-side twin of
// IngestService's per-stream worker supervision (docs/robustness.md).
//
// WorkerProcessPool is mechanism: typed errors, Respawn. This layer is policy:
//
//   - Every Call carries the configured deadline; a hung worker surfaces as a
//     typed kTimeout, is SIGKILLed, and reaped — it can never occupy a server
//     thread past the deadline.
//   - A worker whose call fails retryably (died, torn frame, timeout) is
//     respawned up to |max_worker_restarts| times per slot, with the wait a
//     production system would impose between restarts accounted in virtual
//     time through RetryPolicy (accounted, not slept — the same discipline as
//     src/common/retry.h).
//   - The failed request is re-dispatched once to a healthy sibling before an
//     error reaches the caller; because every worker answers from the same
//     pinned shm epoch, the retried answer is byte-identical (property-tested
//     in tests/proc_serving_chaos_test.cc).
//   - A slot whose budget is exhausted is Down. When every slot is Down the
//     pool refuses calls with kUnavailable and AllDown() reads true — the
//     server uses that to fall back to its in-process reader and frame the
//     answer DEGRADED INPROC (docs/shm_serving.md).
//
// Thread-safe: calls are serialized through one mutex (one request in flight
// per pool — the underlying sockets carry one frame at a time anyway).
#ifndef FOCUS_SRC_RUNTIME_SUPERVISED_WORKER_POOL_H_
#define FOCUS_SRC_RUNTIME_SUPERVISED_WORKER_POOL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/retry.h"
#include "src/runtime/worker_process_pool.h"

namespace focus::runtime {

class MetricsRegistry;

// Supervision state of one worker slot, mirroring ingest's StreamState.
enum class WorkerState {
  kHealthy,     // Serving clean (or not yet asked).
  kRestarting,  // Failed and was respawned; healthy again on its next success.
  kDown,        // Restart budget exhausted.
};

const char* WorkerStateName(WorkerState state);

struct WorkerHealth {
  WorkerState state = WorkerState::kHealthy;
  // Failures since the last successful call (reset on success).
  int consecutive_failures = 0;
  // Respawns consumed from this slot's restart budget.
  int restarts = 0;
  std::string last_error;  // Message of the most recent failure; empty if none.
  common::ErrorCode last_code = common::ErrorCode::kInternal;  // Valid when last_error set.
};

struct SupervisedPoolOptions {
  int num_workers = 2;
  // Per-call send+recv budget; < 0 disables the deadline (not recommended —
  // a hung worker then blocks its caller, which is the bug this layer fixes).
  int call_deadline_millis = 2000;
  // Respawns allowed per slot before it is marked Down.
  int max_worker_restarts = 3;
  // Virtual-time backoff accounted per respawn (max_attempts is ignored here;
  // the budget above bounds attempts).
  common::RetryPolicy restart_backoff;
  // Re-dispatch a failed call once to a healthy sibling.
  bool retry_on_sibling = true;
};

struct SupervisedPoolStats {
  int64_t calls = 0;
  int64_t failed_calls = 0;      // Calls that surfaced an error to the caller.
  int64_t timeouts = 0;          // Worker-level deadline expiries.
  int64_t restarts = 0;          // Respawns attempted (budget consumed).
  int64_t respawn_failures = 0;  // Respawns that themselves failed.
  int64_t sibling_retries = 0;   // Re-dispatches to a sibling.
  double backoff_millis = 0.0;   // Virtual restart backoff accounted.
};

class SupervisedWorkerPool {
 public:
  using Handler = WorkerProcessPool::Handler;

  explicit SupervisedWorkerPool(SupervisedPoolOptions options,
                                MetricsRegistry* metrics = nullptr);
  ~SupervisedWorkerPool() = default;

  SupervisedWorkerPool(const SupervisedWorkerPool&) = delete;
  SupervisedWorkerPool& operator=(const SupervisedWorkerPool&) = delete;

  common::Result<std::monostate> Start(Handler handler);

  // Dispatches |request| to a live worker (round-robin over Healthy and
  // Restarting slots) under the configured deadline, supervising any failure: the worker
  // is killed and respawned within its budget, and the request retried once on
  // a sibling. Errors reaching the caller are typed; kUnavailable with every
  // slot Down is the signal to degrade (AllDown() confirms).
  common::Result<std::string> Call(const std::string& request);

  // SIGKILLs the worker in |slot| without telling supervision — the chaos
  // suite's crash injection. Supervision notices on the next call it serves.
  void KillWorker(int slot);

  // Out-of-range slots read a default (Healthy, untouched) record.
  WorkerHealth Health(int slot) const;
  std::vector<WorkerHealth> FleetHealth() const;

  // True when every slot has exhausted its restart budget.
  bool AllDown() const;
  // Slots currently not Down (Healthy or Restarting).
  int live_workers() const;
  int size() const;

  SupervisedPoolStats stats() const;

  void Shutdown();

 private:
  // Picks the next live slot to try round-robin (Restarting serves alongside
  // Healthy), skipping Down slots and |exclude|; -1 when none qualify.
  int PickWorkerLocked(int exclude);
  // One supervised call: pool call + failure bookkeeping + kill/respawn.
  common::Result<std::string> CallOnceLocked(int slot, const std::string& request);
  void NoteFailureLocked(int slot, const common::Error& error);

  const SupervisedPoolOptions options_;
  MetricsRegistry* const metrics_;

  mutable std::mutex mu_;
  WorkerProcessPool pool_;
  std::vector<WorkerHealth> health_;
  SupervisedPoolStats stats_;
  int cursor_ = 0;  // Round-robin position.
};

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_SUPERVISED_WORKER_POOL_H_
