#include "src/runtime/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace focus::runtime {

void MetricsRegistry::IncrementCounter(const std::string& name, int64_t delta) {
  FOCUS_CHECK(delta >= 0);
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Distribution& d = distributions_[name];
  if (d.count == 0) {
    d.min = value;
    d.max = value;
  } else {
    d.min = std::min(d.min, value);
    d.max = std::max(d.max, value);
  }
  ++d.count;
  d.sum += value;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsRegistry::Distribution MetricsRegistry::distribution(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = distributions_.find(name);
  return it == distributions_.end() ? Distribution{} : it->second;
}

std::string MetricsRegistry::Render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << "=" << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out << name << "=" << value << "\n";
  }
  for (const auto& [name, d] : distributions_) {
    out << name << "_count=" << d.count << "\n";
    out << name << "_mean=" << d.Mean() << "\n";
    out << name << "_min=" << d.min << "\n";
    out << name << "_max=" << d.max << "\n";
  }
  return out.str();
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace focus::runtime
