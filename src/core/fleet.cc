#include "src/core/fleet.h"

#include <utility>

namespace focus::core {

std::vector<std::string> FleetQueryResult::CamerasWithHits() const {
  std::vector<std::string> names;
  for (const CameraHits& h : hits) {
    if (h.result.frames_returned > 0) {
      names.push_back(h.camera);
    }
  }
  return names;
}

common::Result<bool> FocusFleet::AddCamera(const std::string& name,
                                           const video::ClassCatalog* catalog,
                                           const video::StreamProfile& profile,
                                           double duration_sec, double fps, uint64_t seed,
                                           const FocusOptions& options) {
  if (cameras_.contains(name)) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "camera already registered: " + name};
  }
  auto run = std::make_unique<video::StreamRun>(catalog, profile, duration_sec, fps, seed);
  auto stream_or = FocusStream::Build(run.get(), catalog, options);
  if (!stream_or.ok()) {
    return stream_or.error();
  }
  Camera camera;
  camera.run = std::move(run);
  camera.stream = std::move(*stream_or);
  cameras_.emplace(name, std::move(camera));
  order_.push_back(name);
  return true;
}

common::Result<bool> FocusFleet::AdoptCamera(const std::string& name,
                                             std::unique_ptr<video::StreamRun> run,
                                             std::unique_ptr<FocusStream> stream) {
  if (run == nullptr || stream == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument, "null run or stream"};
  }
  if (cameras_.contains(name)) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "camera already registered: " + name};
  }
  Camera camera;
  camera.run = std::move(run);
  camera.stream = std::move(stream);
  cameras_.emplace(name, std::move(camera));
  order_.push_back(name);
  return true;
}

common::Result<FleetQueryResult> FocusFleet::Query(common::ClassId cls,
                                                   const std::vector<std::string>& cameras,
                                                   common::TimeRange range, int kx) const {
  FleetQueryResult fleet_result;
  fleet_result.queried = cls;
  const std::vector<std::string>& selected = cameras.empty() ? order_ : cameras;
  for (const std::string& name : selected) {
    auto it = cameras_.find(name);
    if (it == cameras_.end()) {
      return common::Error{common::ErrorCode::kNotFound, "unknown camera: " + name};
    }
    CameraHits hits;
    hits.camera = name;
    hits.result = it->second.stream->Query(cls, kx, range);
    fleet_result.total_frames += hits.result.frames_returned;
    fleet_result.total_centroids_classified += hits.result.centroids_classified;
    fleet_result.total_gpu_millis += hits.result.gpu_millis;
    fleet_result.hits.push_back(std::move(hits));
  }
  return fleet_result;
}

const FocusStream* FocusFleet::Find(const std::string& name) const {
  auto it = cameras_.find(name);
  return it == cameras_.end() ? nullptr : it->second.stream.get();
}

std::vector<std::string> FocusFleet::CameraNames() const { return order_; }

common::GpuMillis FocusFleet::TotalIngestGpuMillis() const {
  common::GpuMillis total = 0;
  for (const auto& [name, camera] : cameras_) {
    total += camera.stream->total_ingest_gpu_millis();
  }
  return total;
}

}  // namespace focus::core
