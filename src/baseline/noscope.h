// NoScope-style per-query cascade baseline (Kang et al., PVLDB 2017; §7.3).
//
// NoScope optimizes one query over one stream entirely at query time: it trains a
// tiny query-specific binary model ("does this frame contain class X?"), filters the
// stream with a difference detector and that model, and escalates only uncertain
// frames to the reference CNN. The paper positions Focus against it on two axes:
//   (1) NoScope redoes all of its work — including training the specialized model —
//       for every new (class, stream) pair, while Focus's index is built once and
//       serves all classes;
//   (2) NoScope's specialization is single-class, so querying the long tail means
//       training yet another model.
//
// This implementation reproduces that cost structure on our simulated substrate: the
// per-query cost is (sample labelling for training data) + (binary model pass over
// every detection in range) + (GT-CNN verification of positives). Accuracy-relevant
// behaviour (binary-model error as a function of its capacity) reuses the same
// calibrated accuracy model as every other CNN in this repository.
#ifndef FOCUS_SRC_BASELINE_NOSCOPE_H_
#define FOCUS_SRC_BASELINE_NOSCOPE_H_

#include <map>

#include "src/cnn/cnn.h"
#include "src/common/time_types.h"
#include "src/core/query_engine.h"
#include "src/video/stream_generator.h"

namespace focus::baseline {

struct NoScopeOptions {
  // Seconds of stream labelled with the GT-CNN to train the per-query binary model
  // (NoScope trains on reference-model output).
  double train_sample_sec = 120.0;
  // Binary specialized model architecture (NoScope's models are very shallow).
  int layers = 6;
  int input_px = 56;
  // Skip detections whose crop barely changed (NoScope's difference detector),
  // reusing the previous verdict for the same object.
  bool use_difference_detector = true;
};

struct NoScopeQueryResult {
  core::QueryResult query;
  // Cost breakdown, all at query time.
  common::GpuMillis train_gpu_millis = 0.0;      // GT-CNN labelling of the train sample.
  common::GpuMillis filter_gpu_millis = 0.0;     // Binary-model pass over the range.
  common::GpuMillis verify_gpu_millis = 0.0;     // GT-CNN on binary-model positives.
  int64_t binary_invocations = 0;
  int64_t verified_detections = 0;

  common::GpuMillis total_gpu_millis() const {
    return train_gpu_millis + filter_gpu_millis + verify_gpu_millis;
  }
};

// A per-(stream, class) NoScope session. The binary model is trained on first use
// and cached, so repeated queries for the same class skip the training cost but
// still pay the filter + verify passes (NoScope has no persistent index).
class NoScopeSession {
 public:
  // |run|, |catalog| and |gt_cnn| must outlive the session.
  NoScopeSession(const video::StreamRun* run, const video::ClassCatalog* catalog,
                 const cnn::Cnn* gt_cnn, NoScopeOptions options = {});

  // Runs the cascade for |cls| over |range|.
  NoScopeQueryResult Query(common::ClassId cls, common::TimeRange range = {});

  // Number of per-class binary models trained so far.
  size_t models_trained() const { return models_.size(); }

 private:
  const cnn::Cnn& ModelFor(common::ClassId cls, common::GpuMillis* train_cost);

  const video::StreamRun* run_;
  const video::ClassCatalog* catalog_;
  const cnn::Cnn* gt_cnn_;
  NoScopeOptions options_;
  std::map<common::ClassId, cnn::Cnn> models_;
};

}  // namespace focus::baseline

#endif  // FOCUS_SRC_BASELINE_NOSCOPE_H_
