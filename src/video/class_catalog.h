// The 1000-class label space and its appearance geometry.
//
// Mirrors the ImageNet-1000 label space the paper's GT-CNN (ResNet152) classifies
// over. Each class has a deterministic "archetype" feature vector; classes belong to
// semantic groups (vehicles, people, animals, ...) whose archetypes are closer to one
// another than to other groups, which is what makes some classes genuinely confusable
// (car vs. truck) and drives the precision/recall trade-offs in clustering and top-K
// indexing.
#ifndef FOCUS_SRC_VIDEO_CLASS_CATALOG_H_
#define FOCUS_SRC_VIDEO_CLASS_CATALOG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/feature_vector.h"
#include "src/common/time_types.h"

namespace focus::video {

// Size of the generic label space (matches ResNet152's ImageNet head).
inline constexpr common::ClassId kNumClasses = 1000;

// Semantic groups used to lay out archetypes. Streams draw their class mix with a
// domain-dependent bias over these groups (traffic cameras see vehicles and people,
// news channels see people and studio objects, etc.).
enum class SemanticGroup : int {
  kVehicle = 0,
  kPerson,
  kAnimal,
  kBag,
  kFurniture,
  kElectronics,
  kClothing,
  kFood,
  kBuilding,
  kPlant,
  kSign,
  kMisc,
};
inline constexpr int kNumSemanticGroups = 12;

// Immutable catalog of the 1000 classes: names, groups, and archetype vectors. The
// catalog is derived entirely from |world_seed|, so two catalogs with the same seed
// are identical.
class ClassCatalog {
 public:
  explicit ClassCatalog(uint64_t world_seed, size_t feature_dim = common::kDefaultFeatureDim);

  size_t feature_dim() const { return feature_dim_; }
  uint64_t world_seed() const { return world_seed_; }

  // Human-readable class name ("car", "person", ..., "class_0417").
  const std::string& Name(common::ClassId id) const { return names_[static_cast<size_t>(id)]; }

  // Class id for a name; common::kInvalidClass if unknown.
  common::ClassId IdForName(const std::string& name) const;

  SemanticGroup Group(common::ClassId id) const { return groups_[static_cast<size_t>(id)]; }

  // Unit-norm appearance archetype of the class.
  const common::FeatureVec& Archetype(common::ClassId id) const {
    return archetypes_[static_cast<size_t>(id)];
  }

  // All classes in a semantic group.
  const std::vector<common::ClassId>& ClassesInGroup(SemanticGroup group) const {
    return by_group_[static_cast<int>(group)];
  }

 private:
  uint64_t world_seed_;
  size_t feature_dim_;
  std::vector<std::string> names_;
  std::vector<SemanticGroup> groups_;
  std::vector<common::FeatureVec> archetypes_;
  std::vector<std::vector<common::ClassId>> by_group_;
};

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_CLASS_CATALOG_H_
