// FocusStream: the end-to-end public API of the system for one video stream.
//
// Usage:
//   video::ClassCatalog catalog(seed);
//   video::StreamRun run(&catalog, profile, duration, fps, seed);
//   auto focus = core::FocusStream::Build(&run, &catalog, options);   // tune + ingest
//   core::QueryResult cars = focus->Query(catalog.IdForName("car"));  // query
//
// Build() performs the full ingest-time side: parameter tuning on a sample window
// (§4.4), specialization (§4.3), and indexing of the whole recording (§4.1, §4.2).
// Query() performs the query-time side (§3 QT1-QT4) with optional dynamic Kx (§5).
#ifndef FOCUS_SRC_CORE_FOCUS_STREAM_H_
#define FOCUS_SRC_CORE_FOCUS_STREAM_H_

#include <memory>

#include "src/cnn/cnn.h"
#include "src/cnn/ground_truth.h"
#include "src/common/result.h"
#include "src/core/accuracy_evaluator.h"
#include "src/core/config.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/parameter_tuner.h"
#include "src/core/query_engine.h"
#include "src/video/stream_generator.h"

namespace focus::core {

struct FocusOptions {
  AccuracyTarget target;
  Policy policy = Policy::kBalance;
  TunerOptions tuner;
  IngestOptions ingest;
};

class FocusStream {
 public:
  // Tunes parameters on a sample of |run| and ingests the whole recording. |run| and
  // |catalog| must outlive the returned object.
  static common::Result<std::unique_ptr<FocusStream>> Build(const video::StreamRun* run,
                                                            const video::ClassCatalog* catalog,
                                                            const FocusOptions& options);

  FocusStream(const FocusStream&) = delete;
  FocusStream& operator=(const FocusStream&) = delete;

  // Query for all frames containing objects of |cls| (§3). |kx| <= K optionally
  // narrows the index filter (§5); |range| restricts to a time window. One-call
  // form of the plan/execute pair below (byte-identical results).
  QueryResult Query(common::ClassId cls, int kx = -1, common::TimeRange range = {}) const;

  // Plan/execute form (§5; see query_engine.h): Plan() is the free index-lookup
  // half at this stream's recording fps; an executor classifies the plan's
  // centroid work items (batched, possibly shared across concurrent queries —
  // runtime::QueryService) and Resolve() folds the verdicts into the result.
  QueryPlan Plan(common::ClassId cls, int kx = -1, common::TimeRange range = {}) const;
  QueryResult Resolve(const QueryPlan& plan,
                      std::span<const common::ClassId> verdicts) const;

  const TuningResult& tuning() const { return tuning_; }
  const IngestParams& chosen_params() const { return tuning_.chosen().params; }
  const IngestResult& ingest() const { return ingest_; }
  const cnn::Cnn& gt_cnn() const { return *gt_cnn_; }
  const cnn::Cnn& ingest_cnn() const { return *ingest_cnn_; }
  const video::StreamRun& run() const { return *run_; }

  // Total ingest-side GPU time: indexing plus the tuning/retraining sample labelling.
  common::GpuMillis total_ingest_gpu_millis() const {
    return ingest_.gpu_millis + tuning_gpu_millis_;
  }
  common::GpuMillis tuning_gpu_millis() const { return tuning_gpu_millis_; }

 private:
  FocusStream() = default;

  const video::StreamRun* run_ = nullptr;
  const video::ClassCatalog* catalog_ = nullptr;
  std::unique_ptr<cnn::Cnn> gt_cnn_;
  std::unique_ptr<cnn::Cnn> ingest_cnn_;
  TuningResult tuning_;
  IngestResult ingest_;
  common::GpuMillis tuning_gpu_millis_ = 0.0;
  std::unique_ptr<QueryEngine> engine_;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_FOCUS_STREAM_H_
