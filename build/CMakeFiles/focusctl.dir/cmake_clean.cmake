file(REMOVE_RECURSE
  "CMakeFiles/focusctl.dir/tools/focusctl.cpp.o"
  "CMakeFiles/focusctl.dir/tools/focusctl.cpp.o.d"
  "focusctl"
  "focusctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focusctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
