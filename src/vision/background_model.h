// Adaptive per-pixel Gaussian background subtraction.
//
// A simplified single-Gaussian variant of the adaptive mixture models the paper uses
// via OpenCV ([43] KaewTraKulPong & Bowden 2001, [81] Zivkovic 2004): each pixel keeps
// a running mean and variance updated with exponential forgetting; a pixel is
// foreground when it deviates from the background mean by more than
// |threshold_sigma| standard deviations. Stationary objects are absorbed into the
// background after ~1/learning_rate frames, matching the paper's observation that
// parked cars stop producing detections (§2.2.1).
#ifndef FOCUS_SRC_VISION_BACKGROUND_MODEL_H_
#define FOCUS_SRC_VISION_BACKGROUND_MODEL_H_

#include <vector>

#include "src/video/frame.h"

namespace focus::vision {

struct BackgroundModelOptions {
  // Exponential forgetting factor per frame.
  double learning_rate = 0.05;
  // Foreground threshold, in standard deviations from the background mean.
  double threshold_sigma = 3.0;
  // Variance floor (sensor noise), in intensity units squared.
  double min_variance = 16.0;
  // Frames to treat as pure "burn-in": everything is background while the model warms.
  int warmup_frames = 5;
};

class BackgroundModel {
 public:
  BackgroundModel(int width, int height, BackgroundModelOptions options = {});

  // Updates the model with |frame| and returns the foreground mask (1 byte per pixel,
  // 255 = foreground, 0 = background).
  video::FrameBuffer Apply(const video::FrameBuffer& frame);

  int frames_seen() const { return frames_seen_; }

 private:
  BackgroundModelOptions options_;
  int width_;
  int height_;
  int frames_seen_ = 0;
  std::vector<double> mean_;
  std::vector<double> variance_;
};

}  // namespace focus::vision

#endif  // FOCUS_SRC_VISION_BACKGROUND_MODEL_H_
