// Pareto-boundary selection over (ingest cost, query latency) points (§4.4, Fig. 6).
#ifndef FOCUS_SRC_CORE_PARETO_H_
#define FOCUS_SRC_CORE_PARETO_H_

#include <cstddef>
#include <vector>

namespace focus::core {

struct CostPoint {
  double ingest = 0.0;
  double query = 0.0;
};

// Indices of the points on the Pareto boundary (minimizing both coordinates): a point
// is kept iff no other point is <= in both coordinates and < in at least one.
// Returned in increasing-ingest order.
std::vector<size_t> ParetoBoundary(const std::vector<CostPoint>& points);

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_PARETO_H_
