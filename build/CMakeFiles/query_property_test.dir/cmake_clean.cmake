file(REMOVE_RECURSE
  "CMakeFiles/query_property_test.dir/tests/query_property_test.cc.o"
  "CMakeFiles/query_property_test.dir/tests/query_property_test.cc.o.d"
  "query_property_test"
  "query_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
