// Tests for drift monitoring and the §4.3 periodic retraining loop: the TV-distance
// metric, window pooling, recommendation thresholds, GPU accounting for probes, and
// an end-to-end retrain scenario where the stream's class mix shifts and a
// re-specialized model restores Ls coverage.
#include <gtest/gtest.h>

#include "src/cnn/ground_truth.h"
#include "src/cnn/specialization.h"
#include "src/core/drift_monitor.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

std::map<common::ClassId, int64_t> Hist(std::initializer_list<std::pair<int, int64_t>> items) {
  std::map<common::ClassId, int64_t> h;
  for (const auto& [cls, n] : items) {
    h[static_cast<common::ClassId>(cls)] = n;
  }
  return h;
}

// --- TotalVariationDistance ---

TEST(TotalVariationTest, IdenticalDistributionsAreZero) {
  auto h = Hist({{1, 10}, {2, 30}});
  EXPECT_DOUBLE_EQ(TotalVariationDistance(h, h), 0.0);
}

TEST(TotalVariationTest, ScaleInvariant) {
  auto a = Hist({{1, 1}, {2, 3}});
  auto b = Hist({{1, 100}, {2, 300}});
  EXPECT_NEAR(TotalVariationDistance(a, b), 0.0, 1e-12);
}

TEST(TotalVariationTest, DisjointSupportsAreOne) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance(Hist({{1, 5}}), Hist({{2, 5}})), 1.0);
}

TEST(TotalVariationTest, PartialOverlapIsBetween) {
  // p = (0.5, 0.5, 0), q = (0.5, 0, 0.5) -> TV = 0.5.
  auto a = Hist({{1, 5}, {2, 5}});
  auto b = Hist({{1, 5}, {3, 5}});
  EXPECT_NEAR(TotalVariationDistance(a, b), 0.5, 1e-12);
}

TEST(TotalVariationTest, EmptyHistograms) {
  std::map<common::ClassId, int64_t> empty;
  EXPECT_DOUBLE_EQ(TotalVariationDistance(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance(empty, Hist({{1, 3}})), 1.0);
}

TEST(TotalVariationTest, Symmetric) {
  auto a = Hist({{1, 7}, {2, 2}, {5, 1}});
  auto b = Hist({{2, 4}, {5, 6}});
  EXPECT_DOUBLE_EQ(TotalVariationDistance(a, b), TotalVariationDistance(b, a));
}

// --- DriftMonitor ---

cnn::ClassDistributionEstimate Reference(std::initializer_list<std::pair<int, int64_t>> items) {
  cnn::ClassDistributionEstimate ref;
  ref.objects_per_class = Hist(items);
  for (const auto& [cls, n] : ref.objects_per_class) {
    ref.total_objects += n;
  }
  return ref;
}

ProbeSample Probe(std::initializer_list<std::pair<int, int64_t>> items,
                  common::GpuMillis cost = 10.0) {
  ProbeSample probe;
  probe.objects_per_class = Hist(items);
  for (const auto& [cls, n] : probe.objects_per_class) {
    probe.total_objects += n;
  }
  probe.gpu_cost_millis = cost;
  return probe;
}

TEST(DriftMonitorTest, StableMixRecommendsNothing) {
  DriftMonitor monitor(Reference({{1, 60}, {2, 40}}), {1, 2});
  DriftReport report = monitor.AddProbe(Probe({{1, 61}, {2, 39}}));
  EXPECT_LT(report.total_variation, 0.05);
  EXPECT_GT(report.ls_coverage, 0.99);
  EXPECT_FALSE(report.retrain_recommended);
}

TEST(DriftMonitorTest, NewDominantClassTriggersRetrain) {
  DriftMonitor monitor(Reference({{1, 60}, {2, 40}}), {1, 2});
  // Class 9 (not in Ls) takes over half the scene.
  DriftReport report = monitor.AddProbe(Probe({{1, 25}, {2, 15}, {9, 60}}));
  EXPECT_GT(report.total_variation, 0.25);
  EXPECT_LT(report.ls_coverage, 0.90);
  EXPECT_TRUE(report.retrain_recommended);
}

TEST(DriftMonitorTest, TinyProbesNeverRecommend) {
  DriftMonitorOptions options;
  options.min_objects = 50;
  DriftMonitor monitor(Reference({{1, 100}}), {1}, options);
  DriftReport report = monitor.AddProbe(Probe({{9, 10}}));  // Total drift, 10 objects.
  EXPECT_FALSE(report.retrain_recommended);
  EXPECT_EQ(report.recent_objects, 10);
}

TEST(DriftMonitorTest, WindowSlidesOldProbesOut) {
  DriftMonitorOptions options;
  options.window_probes = 2;
  options.min_objects = 10;
  DriftMonitor monitor(Reference({{1, 100}}), {1}, options);
  monitor.AddProbe(Probe({{9, 100}}));  // Drifted probe...
  monitor.AddProbe(Probe({{1, 100}}));
  DriftReport report = monitor.AddProbe(Probe({{1, 100}}));  // ...now outside the window.
  EXPECT_LT(report.total_variation, 0.05);
  EXPECT_FALSE(report.retrain_recommended);
}

TEST(DriftMonitorTest, ProbeGpuCostAccumulates) {
  DriftMonitor monitor(Reference({{1, 10}}), {1});
  monitor.AddProbe(Probe({{1, 10}}, 12.5));
  monitor.AddProbe(Probe({{1, 10}}, 7.5));
  EXPECT_DOUBLE_EQ(monitor.probe_gpu_millis(), 20.0);
}

TEST(DriftMonitorTest, RebaseResetsReferenceAndWindow) {
  DriftMonitor monitor(Reference({{1, 100}}), {1});
  monitor.AddProbe(Probe({{9, 100}}));
  monitor.Rebase(Reference({{9, 100}}), {9});
  DriftReport report = monitor.AddProbe(Probe({{9, 100}}));
  EXPECT_LT(report.total_variation, 0.05);
  EXPECT_FALSE(report.retrain_recommended);
}

TEST(DriftMonitorTest, EmptyWindowReportsNoDrift) {
  DriftMonitor monitor(Reference({{1, 100}}), {1});
  DriftReport report = monitor.Current();
  EXPECT_EQ(report.recent_objects, 0);
  EXPECT_FALSE(report.retrain_recommended);
}

// --- End-to-end probe + retrain over a real stream ---

TEST(DriftRetrainTest, ProbeStreamMatchesDistributionEstimate) {
  video::ClassCatalog catalog(5);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 120.0, 30.0, 7);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  ProbeSample probe = ProbeStream(run, gt, 0.0, 60.0, /*frame_stride=*/10);
  EXPECT_GT(probe.total_objects, 0);
  EXPECT_DOUBLE_EQ(probe.gpu_cost_millis,
                   static_cast<double>(probe.total_objects) * gt.inference_cost_millis());
  // A later window of the same stationary-mix stream should look similar.
  ProbeSample later = ProbeStream(run, gt, 60.0, 120.0, 10);
  EXPECT_LT(TotalVariationDistance(probe.objects_per_class, later.objects_per_class), 0.5);
}

TEST(DriftRetrainTest, RetrainRestoresLsCoverageAfterSimulatedShift) {
  // Simulate a content shift by using two different streams as "before" and
  // "after": specialize on stream A's mix, probe with stream B's detections, watch
  // the monitor demand a retrain, retrain on B, and verify coverage recovers.
  video::ClassCatalog catalog(5);
  video::StreamProfile profile_a;
  video::StreamProfile profile_b;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile_a));
  ASSERT_TRUE(video::FindProfile("cnn", &profile_b));  // News: very different mix.
  video::StreamRun before(&catalog, profile_a, 90.0, 30.0, 7);
  video::StreamRun after(&catalog, profile_b, 90.0, 30.0, 8);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  cnn::ClassDistributionEstimate ref = cnn::EstimateClassDistribution(before, gt, 90.0, 5);
  std::vector<common::ClassId> ls = ref.TopClasses(12);
  DriftMonitorOptions options;
  options.min_objects = 20;
  DriftMonitor monitor(ref, ls, options);

  ProbeSample shifted = ProbeStream(after, gt, 0.0, 60.0, 10);
  DriftReport drifted = monitor.AddProbe(shifted);
  EXPECT_TRUE(drifted.retrain_recommended)
      << "TV=" << drifted.total_variation << " coverage=" << drifted.ls_coverage;

  // §4.3 retraining loop: re-estimate on the new content, re-specialize, rebase.
  cnn::ClassDistributionEstimate new_ref = cnn::EstimateClassDistribution(after, gt, 90.0, 5);
  monitor.Rebase(new_ref, new_ref.TopClasses(12));
  DriftReport recovered = monitor.AddProbe(ProbeStream(after, gt, 60.0, 90.0, 10));
  EXPECT_FALSE(recovered.retrain_recommended)
      << "TV=" << recovered.total_variation << " coverage=" << recovered.ls_coverage;
}

// --- RetrainController ---

TEST(RetrainControllerTest, ProbesOnScheduleOnly) {
  video::ClassCatalog catalog(5);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 180.0, 30.0, 7);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);
  cnn::ClassDistributionEstimate ref = cnn::EstimateClassDistribution(run, gt, 60.0, 10);

  RetrainControllerOptions options;
  options.probe_period_sec = 60.0;
  RetrainController controller(&run, &catalog, &gt, ref, options);

  TickOutcome first = controller.Tick(60.0);
  EXPECT_TRUE(first.probed);
  TickOutcome again = controller.Tick(90.0);  // Within the period: no probe.
  EXPECT_FALSE(again.probed);
  TickOutcome next = controller.Tick(121.0);
  EXPECT_TRUE(next.probed);
}

TEST(RetrainControllerTest, StableStreamNeverRetrains) {
  video::ClassCatalog catalog(5);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 300.0, 30.0, 7);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);
  cnn::ClassDistributionEstimate ref = cnn::EstimateClassDistribution(run, gt, 120.0, 5);

  RetrainControllerOptions options;
  options.probe_period_sec = 60.0;
  options.probe_window_sec = 60.0;
  RetrainController controller(&run, &catalog, &gt, ref, options);
  const std::string initial_model = controller.current_model().name;

  for (double now = 60.0; now <= 300.0; now += 60.0) {
    controller.Tick(now);
  }
  EXPECT_EQ(controller.retrain_count(), 0);
  EXPECT_EQ(controller.current_model().name, initial_model);
  EXPECT_GT(controller.maintenance_gpu_millis(), 0.0);  // Probes still cost GPU.
}

TEST(RetrainControllerTest, ForeignReferenceForcesOneRetrainThenSettles) {
  // Deploy a model specialized on a *different* stream's mix; the first probes see
  // total drift, force a retrain, and subsequent probes accept the new model.
  video::ClassCatalog catalog(5);
  video::StreamProfile news;
  video::StreamProfile traffic;
  ASSERT_TRUE(video::FindProfile("cnn", &news));
  ASSERT_TRUE(video::FindProfile("auburn_c", &traffic));
  video::StreamRun news_run(&catalog, news, 120.0, 30.0, 8);
  video::StreamRun traffic_run(&catalog, traffic, 300.0, 30.0, 7);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  cnn::ClassDistributionEstimate wrong_ref =
      cnn::EstimateClassDistribution(news_run, gt, 120.0, 5);
  RetrainControllerOptions options;
  options.probe_period_sec = 60.0;
  options.probe_window_sec = 60.0;
  options.monitor.min_objects = 20;
  RetrainController controller(&traffic_run, &catalog, &gt, wrong_ref, options);

  int64_t retrains = 0;
  for (double now = 60.0; now <= 300.0; now += 60.0) {
    TickOutcome outcome = controller.Tick(now);
    retrains += outcome.retrained ? 1 : 0;
  }
  EXPECT_GE(retrains, 1);
  // After rebasing on the actual stream, the loop settles instead of thrashing.
  EXPECT_LE(retrains, 2);
  EXPECT_EQ(controller.retrain_count(), retrains);
}

}  // namespace
}  // namespace focus::core
