// Grayscale frame buffer shared by the renderer and the vision substrate.
#ifndef FOCUS_SRC_VIDEO_FRAME_H_
#define FOCUS_SRC_VIDEO_FRAME_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace focus::video {

// Row-major 8-bit grayscale image.
class FrameBuffer {
 public:
  FrameBuffer() = default;
  FrameBuffer(int width, int height, uint8_t fill = 0)
      : width_(width), height_(height), pixels_(static_cast<size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  uint8_t At(int x, int y) const {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void Set(int x, int y, uint8_t v) {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    pixels_[static_cast<size_t>(y) * width_ + x] = v;
  }

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& pixels() { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_FRAME_H_
