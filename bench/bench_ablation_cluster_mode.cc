// Ablation: clustering assignment mode (exact scan vs LRU-accelerated fast path).
//
// The paper's algorithm scans all active clusters per object (O(Mn)); our kFast mode
// first probes the object's previous cluster and a small LRU before falling back to
// the scan. This bench validates the engineering choice DESIGN.md calls out: the
// fast path must produce near-identical clusters and accuracy while resolving almost
// every assignment without a full scan. It also reports real CPU wall time for the
// clustering-heavy ingest, the one place simulator CPU time is the relevant metric.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "jacksonh", config);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  core::IngestParams params = (*focus_or)->chosen_params();

  bench::PrintHeader("Ablation: clustering assignment mode (jacksonh, model=" +
                     params.model.name + ")");
  std::printf("%-8s %10s %12s %12s %8s %8s %12s\n", "Mode", "Clusters", "FastHit", "CpuMs",
              "Prec", "Recall", "QueryFaster");

  for (auto mode : {cluster::ClustererOptions::Mode::kExact,
                    cluster::ClustererOptions::Mode::kFast}) {
    cnn::Cnn cheap(params.model, &catalog);
    core::IngestOptions ingest_options;
    ingest_options.cluster_mode = mode;
    const auto start = std::chrono::steady_clock::now();
    core::IngestResult ingest = core::RunIngest(run, cheap, params, ingest_options);
    const double cpu_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();

    cnn::SegmentGroundTruth truth(run, gt);
    core::AccuracyEvaluator evaluator(&truth, run.fps());
    core::QueryEngine engine(&ingest.index, &cheap, &gt);
    std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 8);
    double sum_p = 0.0;
    double sum_r = 0.0;
    double query_ms = 0.0;
    for (common::ClassId cls : dominant) {
      core::QueryResult qr = engine.Query(cls, params.k, {}, run.fps());
      core::PrecisionRecall pr = evaluator.Evaluate(cls, qr);
      sum_p += pr.precision;
      sum_r += pr.recall;
      query_ms += qr.gpu_millis;
    }
    const double n = static_cast<double>(dominant.size());
    const double gt_all = static_cast<double>(ingest.detections) * gt.inference_cost_millis();
    std::printf("%-8s %10lld %11.1f%% %12.1f %8.3f %8.3f %12s\n",
                mode == cluster::ClustererOptions::Mode::kExact ? "exact" : "fast",
                static_cast<long long>(ingest.num_clusters),
                100.0 * ingest.clusterer_fast_hit_rate, cpu_ms, n > 0 ? sum_p / n : 0.0,
                n > 0 ? sum_r / n : 0.0,
                bench::FormatFactor(n > 0 ? gt_all / (query_ms / n) : 0.0).c_str());
  }

  std::printf(
      "\nExpected shape: fast mode resolves >90%% of assignments via the previous-\n"
      "cluster/LRU probes, runs several times faster on CPU, and matches exact\n"
      "mode's cluster count and accuracy within noise.\n");
  return 0;
}
