// Atomic file snapshots.
//
// Writes a blob to a temporary file in the destination directory, fsyncs, then
// renames into place, so readers either see the previous complete snapshot or the new
// complete snapshot — never a torn write. This is the durability contract under the
// index snapshots and vault manifests.
#ifndef FOCUS_SRC_STORAGE_SNAPSHOT_STORE_H_
#define FOCUS_SRC_STORAGE_SNAPSHOT_STORE_H_

#include <string>

#include "src/common/result.h"

namespace focus::storage {

// Atomically replaces |path| with |blob|.
common::Result<bool> WriteFileAtomic(const std::string& path, const std::string& blob);

// Reads the whole file at |path|.
common::Result<std::string> ReadFile(const std::string& path);

// True when |path| exists and is a regular file.
bool FileExists(const std::string& path);

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_SNAPSHOT_STORE_H_
