// Dataset-level statistics over one or more stream runs.
//
// Computes the characterization numbers from §2.2 and Table 1 of the paper: fraction
// of frames with moving objects, number of distinct classes observed, the class
// frequency CDF (Fig. 3), the share of classes needed to cover 95% of objects, and
// cross-stream Jaccard indexes.
#ifndef FOCUS_SRC_VIDEO_DATASET_H_
#define FOCUS_SRC_VIDEO_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/video/stream_generator.h"

namespace focus::video {

struct StreamStatistics {
  std::string name;
  StreamType type = StreamType::kTraffic;
  int64_t total_frames = 0;
  int64_t frames_with_moving_objects = 0;
  int64_t total_detections = 0;
  int64_t num_moving_objects = 0;
  // Objects per true class (computed from generator ground truth; in the paper this
  // comes from running the GT-CNN over everything).
  std::map<int, uint64_t> objects_per_class;
  int distinct_classes = 0;
  // Fraction of the 1000-class space that ever occurs.
  double class_space_fraction = 0.0;
  // Smallest fraction of the full 1000-class space whose most frequent classes cover
  // >=95% of objects (Fig. 3's x-axis; the paper reports 3%-10%).
  double classes_covering_95pct = 0.0;
  // Share of objects belonging to the single most frequent class.
  double top_class_share = 0.0;

  double FractionFramesWithObjects() const {
    return total_frames > 0
               ? static_cast<double>(frames_with_moving_objects) / static_cast<double>(total_frames)
               : 0.0;
  }
};

// Sweeps the run once and gathers its statistics. O(detections).
StreamStatistics ComputeStreamStatistics(const StreamRun& run);

// CDF of class frequency over the full 1000-class space (Fig. 3 x-axis construction).
std::vector<common::CdfPoint> ClassFrequencyCdf(const StreamStatistics& stats);

// Jaccard index of the observed class sets of two streams.
double ClassJaccard(const StreamStatistics& a, const StreamStatistics& b);

// Mean pairwise Jaccard over a set of streams (the paper reports 0.46).
double MeanPairwiseJaccard(const std::vector<StreamStatistics>& stats);

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_DATASET_H_
