// Integration tests for multi-camera fleets (src/core/fleet.h) and incremental
// query sessions (src/core/query_session.h). Built as a single-process suite: the
// fixture constructs a two-camera fleet once and every case queries it.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/cnn/ground_truth.h"
#include "src/core/fleet.h"
#include "src/core/query_session.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

constexpr double kDurationSec = 240.0;
constexpr double kFps = 30.0;

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(11);
    fleet_ = new FocusFleet();
    FocusOptions options;
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    ASSERT_TRUE(fleet_->AddCamera("north", catalog_, profile, kDurationSec, kFps, 101, options)
                    .ok());
    ASSERT_TRUE(video::FindProfile("jacksonh", &profile));
    ASSERT_TRUE(fleet_->AddCamera("south", catalog_, profile, kDurationSec, kFps, 202, options)
                    .ok());

    // A class guaranteed queryable on "north": its most dominant GT class.
    const FocusStream* north = fleet_->Find("north");
    ASSERT_NE(north, nullptr);
    truth_ = new cnn::SegmentGroundTruth(north->run(), north->gt_cnn());
    auto dominant = truth_->DominantClasses(0.95, 3);
    ASSERT_FALSE(dominant.empty());
    dominant_class_ = dominant[0];
  }

  static void TearDownTestSuite() {
    delete truth_;
    delete fleet_;
    delete catalog_;
    truth_ = nullptr;
    fleet_ = nullptr;
    catalog_ = nullptr;
  }

  static video::ClassCatalog* catalog_;
  static FocusFleet* fleet_;
  static cnn::SegmentGroundTruth* truth_;
  static common::ClassId dominant_class_;
};

video::ClassCatalog* FleetTest::catalog_ = nullptr;
FocusFleet* FleetTest::fleet_ = nullptr;
cnn::SegmentGroundTruth* FleetTest::truth_ = nullptr;
common::ClassId FleetTest::dominant_class_ = common::kInvalidClass;

TEST_F(FleetTest, RegistrationOrderAndLookup) {
  EXPECT_EQ(fleet_->size(), 2u);
  EXPECT_EQ(fleet_->CameraNames(), (std::vector<std::string>{"north", "south"}));
  EXPECT_NE(fleet_->Find("north"), nullptr);
  EXPECT_NE(fleet_->Find("south"), nullptr);
  EXPECT_EQ(fleet_->Find("missing"), nullptr);
}

TEST_F(FleetTest, DuplicateCameraNameRejected) {
  FocusOptions options;
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  auto result = fleet_->AddCamera("north", catalog_, profile, 30.0, kFps, 9, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::ErrorCode::kInvalidArgument);
}

TEST_F(FleetTest, QueryAllCamerasAggregates) {
  auto result = fleet_->Query(dominant_class_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 2u);
  int64_t frames = 0;
  int64_t centroids = 0;
  common::GpuMillis gpu = 0;
  for (const CameraHits& h : result->hits) {
    frames += h.result.frames_returned;
    centroids += h.result.centroids_classified;
    gpu += h.result.gpu_millis;
  }
  EXPECT_EQ(result->total_frames, frames);
  EXPECT_EQ(result->total_centroids_classified, centroids);
  EXPECT_DOUBLE_EQ(result->total_gpu_millis, gpu);
  EXPECT_GT(result->total_frames, 0);
}

TEST_F(FleetTest, QuerySubsetTouchesOnlySelectedCameras) {
  auto result = fleet_->Query(dominant_class_, {"north"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].camera, "north");

  auto both = fleet_->Query(dominant_class_);
  ASSERT_TRUE(both.ok());
  // The single-camera query matches the same camera's slice of the full query.
  EXPECT_EQ(result->hits[0].result.frames_returned, both->hits[0].result.frames_returned);
}

TEST_F(FleetTest, UnknownCameraIsNotFound) {
  auto result = fleet_->Query(dominant_class_, {"north", "nope"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, common::ErrorCode::kNotFound);
}

TEST_F(FleetTest, TimeRangeRestrictsFramesOnEveryCamera) {
  common::TimeRange window{.begin_sec = 60.0, .end_sec = 120.0};
  auto windowed = fleet_->Query(dominant_class_, {}, window);
  auto full = fleet_->Query(dominant_class_);
  ASSERT_TRUE(windowed.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(windowed->total_frames, full->total_frames);
  for (const CameraHits& h : windowed->hits) {
    for (const auto& [first, last] : h.result.frame_runs) {
      EXPECT_GE(static_cast<double>(first) / kFps, window.begin_sec);
      EXPECT_LT(static_cast<double>(last) / kFps, window.end_sec);
    }
  }
}

TEST_F(FleetTest, CamerasWithHitsFiltersEmptyResults) {
  auto result = fleet_->Query(dominant_class_);
  ASSERT_TRUE(result.ok());
  std::vector<std::string> with_hits = result->CamerasWithHits();
  for (const std::string& name : with_hits) {
    bool found = false;
    for (const CameraHits& h : result->hits) {
      if (h.camera == name) {
        EXPECT_GT(h.result.frames_returned, 0);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(FleetTest, TotalIngestCostSumsCameras) {
  common::GpuMillis total = fleet_->TotalIngestGpuMillis();
  common::GpuMillis expected = fleet_->Find("north")->total_ingest_gpu_millis() +
                               fleet_->Find("south")->total_ingest_gpu_millis();
  EXPECT_DOUBLE_EQ(total, expected);
  EXPECT_GT(total, 0.0);
}

// --- QuerySession (§5 dynamic Kx) ---

class QuerySessionTest : public FleetTest {
 protected:
  static const FocusStream& North() { return *fleet_->Find("north"); }

  static QuerySession MakeSession() {
    const FocusStream& north = North();
    // Session over the stream's own index and models.
    return QuerySession(&north.ingest().index, &north.ingest_cnn(), &north.gt_cnn(),
                        dominant_class_, {}, kFps);
  }

  static int IndexK() { return North().chosen_params().k; }
};

TEST_F(QuerySessionTest, ExpandingToFullKMatchesOneShotQuery) {
  QuerySession session = MakeSession();
  session.ExpandTo(IndexK());
  QueryResult one_shot = North().Query(dominant_class_);
  EXPECT_EQ(session.total_frames(), one_shot.frames_returned);
  EXPECT_EQ(session.total_centroids_classified(), one_shot.centroids_classified);
  EXPECT_DOUBLE_EQ(session.total_gpu_millis(), one_shot.gpu_millis);
  EXPECT_EQ(session.frame_runs(), one_shot.frame_runs);
}

TEST_F(QuerySessionTest, IncrementalExpansionCostsNoMoreThanOneShot) {
  QuerySession incremental = MakeSession();
  for (int kx = 1; kx <= IndexK(); ++kx) {
    incremental.ExpandTo(kx);
  }
  QueryResult one_shot = North().Query(dominant_class_);
  // Centroids are never re-classified, so the total cost through any expansion
  // sequence equals the one-shot cost at K.
  EXPECT_EQ(incremental.total_centroids_classified(), one_shot.centroids_classified);
  EXPECT_DOUBLE_EQ(incremental.total_gpu_millis(), one_shot.gpu_millis);
  EXPECT_EQ(incremental.total_frames(), one_shot.frames_returned);
}

TEST_F(QuerySessionTest, BatchesAreDisjoint) {
  QuerySession session = MakeSession();
  std::set<common::FrameIndex> seen;
  for (int kx = 1; kx <= IndexK(); ++kx) {
    QueryBatch batch = session.ExpandTo(kx);
    for (const auto& [first, last] : batch.new_frame_runs) {
      for (common::FrameIndex f = first; f <= last; ++f) {
        EXPECT_TRUE(seen.insert(f).second) << "frame " << f << " returned twice";
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), session.total_frames());
}

TEST_F(QuerySessionTest, LowKxReturnsSomethingQuickly) {
  QuerySession session = MakeSession();
  QueryBatch first = session.ExpandTo(1);
  QueryResult full = North().Query(dominant_class_);
  // Kx=1 pays for at most the full candidate set and usually much less.
  EXPECT_LE(first.centroids_classified, full.centroids_classified);
  // For a dominant class the top-1 index already finds most frames.
  EXPECT_GT(first.new_frames, 0);
}

TEST_F(QuerySessionTest, NonMonotonicExpandIsEmptyNoop) {
  QuerySession session = MakeSession();
  session.ExpandTo(2);
  int64_t centroids = session.total_centroids_classified();
  QueryBatch repeat = session.ExpandTo(2);
  EXPECT_EQ(repeat.new_frames, 0);
  EXPECT_EQ(repeat.centroids_classified, 0);
  QueryBatch lower = session.ExpandTo(1);
  EXPECT_EQ(lower.new_frames, 0);
  EXPECT_EQ(session.total_centroids_classified(), centroids);
}

TEST_F(QuerySessionTest, TimeRangeRestrictsSessionBatches) {
  const FocusStream& north = North();
  common::TimeRange window{.begin_sec = 0.0, .end_sec = 60.0};
  QuerySession session(&north.ingest().index, &north.ingest_cnn(), &north.gt_cnn(),
                       dominant_class_, window, kFps);
  session.ExpandTo(IndexK());
  for (const auto& [first, last] : session.frame_runs()) {
    EXPECT_LT(static_cast<double>(last) / kFps, window.end_sec);
  }
  QueryResult windowed = north.Query(dominant_class_, -1, window);
  EXPECT_EQ(session.total_frames(), windowed.frames_returned);
}

}  // namespace
}  // namespace focus::core
