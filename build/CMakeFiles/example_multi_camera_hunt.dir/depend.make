# Empty dependencies file for example_multi_camera_hunt.
# This may be replaced when dependencies are built.
