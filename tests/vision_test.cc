// Unit tests for the vision substrate: background subtraction, blobs, motion
// detection against generator ground truth, pixel differencing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/vision/background_model.h"
#include "src/vision/blob_extractor.h"
#include "src/vision/motion_detector.h"
#include "src/vision/pixel_differ.h"
#include "src/video/renderer.h"
#include "src/video/stream_generator.h"

namespace focus::vision {
namespace {

video::FrameBuffer FlatFrame(int w, int h, uint8_t value) { return video::FrameBuffer(w, h, value); }

// Paints a filled rectangle of the given intensity.
void PaintRect(video::FrameBuffer& fb, int x0, int y0, int w, int h, uint8_t value) {
  for (int y = y0; y < y0 + h && y < fb.height(); ++y) {
    for (int x = x0; x < x0 + w && x < fb.width(); ++x) {
      fb.Set(x, y, value);
    }
  }
}

TEST(BackgroundModelTest, StaticSceneProducesNoForeground) {
  BackgroundModel model(32, 32);
  video::FrameBuffer frame = FlatFrame(32, 32, 100);
  video::FrameBuffer mask;
  for (int i = 0; i < 20; ++i) {
    mask = model.Apply(frame);
  }
  int fg = std::count(mask.pixels().begin(), mask.pixels().end(), 255);
  EXPECT_EQ(fg, 0);
}

TEST(BackgroundModelTest, NewObjectIsForeground) {
  BackgroundModel model(32, 32);
  video::FrameBuffer background = FlatFrame(32, 32, 100);
  for (int i = 0; i < 20; ++i) {
    model.Apply(background);
  }
  video::FrameBuffer with_object = background;
  PaintRect(with_object, 10, 10, 6, 6, 220);
  video::FrameBuffer mask = model.Apply(with_object);
  int fg = std::count(mask.pixels().begin(), mask.pixels().end(), 255);
  EXPECT_NEAR(fg, 36, 6);
}

TEST(BackgroundModelTest, StationaryObjectIsAbsorbed) {
  BackgroundModelOptions opts;
  opts.learning_rate = 0.1;
  BackgroundModel model(32, 32, opts);
  video::FrameBuffer background = FlatFrame(32, 32, 100);
  for (int i = 0; i < 20; ++i) {
    model.Apply(background);
  }
  video::FrameBuffer parked = background;
  PaintRect(parked, 10, 10, 6, 6, 220);
  int last_fg = 0;
  for (int i = 0; i < 400; ++i) {
    video::FrameBuffer mask = model.Apply(parked);
    last_fg = std::count(mask.pixels().begin(), mask.pixels().end(), 255);
  }
  // The parked object no longer triggers motion (§2.2.1: parked cars stop being
  // detected).
  EXPECT_EQ(last_fg, 0);
}

TEST(BlobExtractorTest, FindsIsolatedComponents) {
  video::FrameBuffer mask(64, 64, 0);
  PaintRect(mask, 5, 5, 6, 6, 255);
  PaintRect(mask, 40, 40, 8, 4, 255);
  BlobExtractorOptions opts;
  opts.dilate_radius = 0;
  BlobExtractor extractor(opts);
  auto blobs = extractor.Extract(mask);
  ASSERT_EQ(blobs.size(), 2u);
}

TEST(BlobExtractorTest, MinAreaFiltersNoise) {
  video::FrameBuffer mask(64, 64, 0);
  mask.Set(3, 3, 255);  // Single-pixel noise.
  PaintRect(mask, 20, 20, 5, 5, 255);
  BlobExtractorOptions opts;
  opts.dilate_radius = 0;
  opts.min_area = 9;
  BlobExtractor extractor(opts);
  auto blobs = extractor.Extract(mask);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].x, 20.0f);
}

TEST(BlobExtractorTest, DilationBridgesGaps) {
  video::FrameBuffer mask(64, 64, 0);
  PaintRect(mask, 10, 10, 4, 4, 255);
  PaintRect(mask, 15, 10, 4, 4, 255);  // 1px gap at x=14.
  BlobExtractorOptions no_dilate;
  no_dilate.dilate_radius = 0;
  no_dilate.min_area = 4;
  // A one-column gap separates the rectangles under plain 8-connectivity...
  EXPECT_EQ(BlobExtractor(no_dilate).Extract(mask).size(), 2u);
  // ...and dilation bridges it into a single blob.
  BlobExtractorOptions dilate;
  dilate.dilate_radius = 1;
  dilate.min_area = 4;
  EXPECT_EQ(BlobExtractor(dilate).Extract(mask).size(), 1u);
}

TEST(BlobExtractorTest, BoundingBoxIsTight) {
  video::FrameBuffer mask(64, 64, 0);
  PaintRect(mask, 12, 8, 10, 6, 255);
  BlobExtractorOptions opts;
  opts.dilate_radius = 0;
  auto blobs = BlobExtractor(opts).Extract(mask);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].x, 12.0f);
  EXPECT_EQ(blobs[0].y, 8.0f);
  EXPECT_EQ(blobs[0].w, 10.0f);
  EXPECT_EQ(blobs[0].h, 6.0f);
}

TEST(MotionDetectorTest, DetectsGeneratedMovingObjects) {
  // End-to-end vision check: render synthetic frames, subtract background, and match
  // detected blobs against the generator's ground-truth boxes.
  video::ClassCatalog catalog(42);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("jacksonh", &profile));
  video::StreamRun run(&catalog, profile, 90.0, 30.0, 5);
  video::Renderer renderer(&run);
  MotionDetector detector(profile.frame_width, profile.frame_height);

  double recall_sum = 0.0;
  int frames_with_truth = 0;
  for (common::FrameIndex f = 0; f < 900; ++f) {
    video::FrameBuffer frame = renderer.Render(f);
    auto detected = detector.Detect(frame);
    if (f < 30) {
      continue;  // Model warm-up.
    }
    auto truth = renderer.MovingObjectBoxes(f);
    if (truth.empty()) {
      continue;
    }
    recall_sum += DetectionRecall(detected, truth, 0.25f);
    ++frames_with_truth;
  }
  ASSERT_GT(frames_with_truth, 50);
  // Background subtraction finds the bulk of moving objects.
  EXPECT_GT(recall_sum / frames_with_truth, 0.7);
}

TEST(PixelDifferTest, IdenticalCropsSuppress) {
  video::FrameBuffer a = FlatFrame(32, 32, 90);
  PaintRect(a, 8, 8, 8, 8, 200);
  video::FrameBuffer b = a;
  PixelDiffer differ;
  video::BBox box{8, 8, 8, 8};
  EXPECT_EQ(differ.CropDifference(a, b, box), 0.0);
  EXPECT_TRUE(differ.ShouldSuppress(a, b, box));
}

TEST(PixelDifferTest, MovedObjectDoesNotSuppress) {
  video::FrameBuffer a = FlatFrame(32, 32, 90);
  PaintRect(a, 8, 8, 8, 8, 200);
  video::FrameBuffer b = FlatFrame(32, 32, 90);
  PaintRect(b, 14, 14, 8, 8, 200);  // Object moved.
  PixelDiffer differ;
  video::BBox box{8, 8, 8, 8};
  EXPECT_FALSE(differ.ShouldSuppress(a, b, box));
}

TEST(PixelDifferTest, DegenerateBoxIsInfinite) {
  video::FrameBuffer a = FlatFrame(16, 16, 10);
  video::FrameBuffer b = FlatFrame(16, 16, 10);
  PixelDiffer differ;
  video::BBox off_screen{100, 100, 5, 5};
  EXPECT_TRUE(std::isinf(differ.CropDifference(a, b, off_screen)));
  EXPECT_FALSE(differ.ShouldSuppress(a, b, off_screen));
}

}  // namespace
}  // namespace focus::vision
