// Shared-memory epoch plane + crash-isolated query workers
// (src/shm/epoch_plane.h, src/runtime/worker_process_pool.h,
// docs/shm_serving.md).
//
// The load-bearing property: a query answered from the mapped plane in
// another process — cold, with models rebuilt from the header's seed
// provenance alone — is byte-identical to core::QueryEngine against the
// in-process snapshot of the same epoch, across advancing epochs. Around it:
// the pin protocol (a pinned epoch's bytes survive arbitrary publishes; a
// forced eviction is detectable), the torn-header fallback, and the crash
// model (a SIGKILL'd reader never stalls ingest; its pin is reclaimed; a
// sibling keeps answering identically).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/runtime/metrics.h"
#include "src/runtime/worker_process_pool.h"
#include "src/shm/epoch_plane.h"
#include "src/shm/shm_segment.h"
#include "src/video/stream_generator.h"

namespace focus::shm {
namespace {

core::IngestParams Params() {
  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

ShmModelProvenance Provenance() {
  ShmModelProvenance p;
  p.world_seed = 23;
  p.cheap_weights_seed = 5;
  p.cheap_candidate_index = 1;
  p.gt_weights_seed = 23;
  return p;
}

// Unique per test case so parallel ctest shards never collide.
std::string SegmentName(const std::string& tag) {
  return "/focus_shm_test_" + tag + "_" + std::to_string(::getpid());
}

// Exact textual encoding of a QueryResult (hexfloat for the GPU accounting),
// so byte-identity survives a trip over the worker RPC as string equality.
std::string EncodeResult(const core::QueryResult& r) {
  std::ostringstream out;
  out << r.queried << ' ' << r.centroids_classified << ' ' << r.clusters_matched << ' '
      << r.frames_returned << ' ' << std::hexfloat << r.gpu_millis;
  for (const auto& [first, last] : r.frame_runs) {
    out << ' ' << first << ':' << last;
  }
  return out.str();
}

// The query mix the identity tests sweep: the classes the epoch actually
// indexed (plus one guaranteed miss), each at several Kx and range settings.
struct QuerySpec {
  common::ClassId cls;
  int kx;
  common::TimeRange range;
};

std::vector<QuerySpec> SpecsFor(const core::LiveSnapshot& snapshot) {
  std::set<common::ClassId> classes;
  for (const auto& entry : snapshot.index.clusters()) {
    for (common::ClassId c : entry.topk_classes) {
      classes.insert(c);
    }
    if (classes.size() >= 6) {
      break;
    }
  }
  classes.insert(video::kNumClasses - 1);  // Near-certain miss: empty plan path.
  std::vector<QuerySpec> specs;
  int i = 0;
  for (common::ClassId c : classes) {
    specs.push_back({c, -1, {}});
    if (i % 2 == 0) {
      specs.push_back({c, 1, {}});
      specs.push_back({c, -1, {2.0, 9.0}});
    }
    ++i;
  }
  return specs;
}

void ExpectSameResult(const core::QueryResult& want, const core::QueryResult& got) {
  EXPECT_EQ(want.queried, got.queried);
  EXPECT_EQ(want.frame_runs, got.frame_runs);
  EXPECT_EQ(want.centroids_classified, got.centroids_classified);
  EXPECT_EQ(want.clusters_matched, got.clusters_matched);
  EXPECT_EQ(want.frames_returned, got.frames_returned);
  EXPECT_EQ(want.gpu_millis, got.gpu_millis);  // Exact: same deterministic terms.
}

// Publishes every live epoch of a short classified run into |publisher| and
// returns the snapshots in publish order.
std::vector<std::shared_ptr<const core::LiveSnapshot>> PublishRun(
    EpochPublisher* publisher, double duration_sec, uint64_t stream_seed,
    const std::function<void(const core::LiveSnapshot&)>& after_publish = nullptr) {
  video::ClassCatalog catalog(23);
  video::StreamProfile profile;
  if (!video::FindProfile("auburn_c", &profile)) {
    ADD_FAILURE() << "missing profile";
    return {};
  }
  const core::IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  video::StreamRun run(&catalog, profile, duration_sec, /*fps=*/30.0, stream_seed);
  const core::ClassifiedSample sample = core::ClassifySample(run, cheap, params.k);

  std::vector<std::shared_ptr<const core::LiveSnapshot>> snapshots;
  uint64_t expected_generation = publisher->stats().published_generation;
  core::IngestOptions options;
  options.finalize_every_frames = 60;
  options.snapshot_sink = [&](std::shared_ptr<const core::LiveSnapshot> snap) {
    auto published = publisher->Publish(*snap);
    EXPECT_TRUE(published.ok()) << "epoch " << snap->epoch;
    if (published.ok()) {
      EXPECT_EQ(*published, ++expected_generation);  // Dense, monotone generations.
    }
    snapshots.push_back(snap);
    if (after_publish) {
      after_publish(*snap);
    }
  };
  core::RunIngestClassified(sample, params, options);
  return snapshots;
}

// State a worker process builds lazily on its first request: its own reader
// slot and the models rebuilt from the plane's seed provenance — nothing is
// inherited from the parent but the segment name.
struct WorkerState {
  std::string segment;
  runtime::MetricsRegistry metrics;
  std::unique_ptr<ShmSnapshotReader> reader;
  std::unique_ptr<video::ClassCatalog> catalog;
  std::unique_ptr<cnn::Cnn> cheap;
  std::unique_ptr<cnn::Cnn> gt;
  std::optional<ShmEpochView> held;

  std::string EnsureAttached() {
    if (reader != nullptr) {
      return "";
    }
    auto attached = ShmSnapshotReader::Attach(segment, &metrics);
    if (!attached.ok()) {
      return "ERR attach: " + attached.error().message;
    }
    reader = std::move(*attached);
    auto provenance = reader->Provenance();
    if (!provenance.ok()) {
      return "ERR provenance: " + provenance.error().message;
    }
    catalog = std::make_unique<video::ClassCatalog>(provenance->world_seed);
    cheap = std::make_unique<cnn::Cnn>(
        cnn::GenericCheapCandidates(
            provenance->cheap_weights_seed)[provenance->cheap_candidate_index],
        catalog.get());
    gt = std::make_unique<cnn::Cnn>(cnn::GtCnnDesc(provenance->gt_weights_seed),
                                    catalog.get());
    return "";
  }

  // "QUERY <cls> <kx> <begin> <end>" -> "<generation> <encoded result>"
  // "HOLD"                           -> "<pinned generation>" (view kept alive)
  // "RELEASE"                        -> "ok"
  std::string Handle(const std::string& request) {
    if (std::string err = EnsureAttached(); !err.empty()) {
      return err;
    }
    std::istringstream in(request);
    std::string op;
    in >> op;
    if (op == "HOLD") {
      auto view = reader->Acquire();
      if (!view.ok()) {
        return "ERR acquire: " + view.error().message;
      }
      held.emplace(std::move(*view));
      return std::to_string(held->generation());
    }
    if (op == "RELEASE") {
      held.reset();
      return "ok";
    }
    if (op != "QUERY") {
      return "ERR bad op " + op;
    }
    common::ClassId cls = 0;
    int kx = -1;
    common::TimeRange range;
    in >> cls >> kx >> range.begin_sec >> range.end_sec;
    auto view = reader->Acquire();
    if (!view.ok()) {
      return "ERR acquire: " + view.error().message;
    }
    const core::QueryResult result = view->Query(cls, kx, range, *cheap, *gt);
    if (!view->StillValid()) {
      return "ERR evicted mid-scan";
    }
    return std::to_string(view->generation()) + " " + EncodeResult(result);
  }
};

std::string QueryLine(const QuerySpec& spec) {
  std::ostringstream out;
  out << "QUERY " << spec.cls << ' ' << spec.kx << ' ' << std::hexfloat
      << spec.range.begin_sec << ' ' << spec.range.end_sec;
  return out.str();
}

TEST(ShmEpochPlaneTest, PublishAttachRoundtripsHeaderAndStats) {
  const std::string name = SegmentName("roundtrip");
  runtime::MetricsRegistry metrics;
  EpochPublisher::Options options;
  options.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, options, &metrics);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  const auto snapshots = PublishRun(publisher->get(), /*duration_sec=*/8.0, /*seed=*/11);
  ASSERT_GE(snapshots.size(), 3u);

  auto reader = ShmSnapshotReader::Attach(name, &metrics);
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  auto view = (*reader)->Acquire();
  ASSERT_TRUE(view.ok()) << view.error().message;

  const core::LiveSnapshot& last = *snapshots.back();
  EXPECT_EQ(view->epoch(), last.epoch);
  EXPECT_EQ(view->watermark(), last.watermark);
  EXPECT_DOUBLE_EQ(view->fps(), last.fps);
  EXPECT_EQ(view->num_clusters(), last.index.num_clusters());
  EXPECT_EQ(view->detections(), last.detections);
  EXPECT_EQ(view->header().entries_reused, last.stats.entries_reused);
  EXPECT_EQ(view->header().entries_rebuilt, last.stats.entries_rebuilt);
  EXPECT_TRUE(view->StillValid());

  auto provenance = (*reader)->Provenance();
  ASSERT_TRUE(provenance.ok());
  EXPECT_EQ(provenance->world_seed, 23u);
  EXPECT_EQ(provenance->cheap_weights_seed, 5u);
  EXPECT_EQ(provenance->cheap_candidate_index, 1u);
  EXPECT_EQ(provenance->gt_weights_seed, 23u);

  const ShmPlaneStats stats = (*publisher)->stats();
  EXPECT_EQ(stats.epochs_published, snapshots.size());
  EXPECT_EQ(stats.published_generation, snapshots.size());
  EXPECT_EQ(stats.reader_attaches, 1u);
  EXPECT_EQ(stats.live_readers, 1u);
  EXPECT_EQ(stats.pin_violations, 0u);
  EXPECT_GT(stats.arena_used_bytes, 0u);
  EXPECT_EQ(metrics.counter("shm.epochs_published"),
            static_cast<int64_t>(snapshots.size()));
  EXPECT_EQ(metrics.counter("shm.reader_attaches"), 1);

  // The flattened sections mirror the canonical index exactly.
  const auto& clusters = last.index.clusters();
  ASSERT_EQ(view->num_clusters(), clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ShmClusterRecord& rec = view->clusters()[i];
    EXPECT_EQ(rec.cluster_id, clusters[i].cluster_id);
    EXPECT_EQ(rec.size, clusters[i].size);
    EXPECT_EQ(static_cast<size_t>(rec.members_count), clusters[i].members.size());
    EXPECT_EQ(static_cast<size_t>(rec.classes_count), clusters[i].topk_classes.size());
    for (size_t m = 0; m < clusters[i].members.size(); ++m) {
      const ShmMemberRun& run = view->members()[rec.members_begin + m];
      EXPECT_EQ(run.object, clusters[i].members[m].object);
      EXPECT_EQ(run.first_frame, clusters[i].members[m].first_frame);
      EXPECT_EQ(run.last_frame, clusters[i].members[m].last_frame);
    }
    for (size_t c = 0; c < clusters[i].topk_classes.size(); ++c) {
      EXPECT_EQ(view->classes()[rec.classes_begin + c], clusters[i].topk_classes[c]);
    }
  }
}

// The identity property, in-process half: every published epoch answers the
// full query mix off the mapping byte-identically to core::QueryEngine over
// the same snapshot — while epochs keep advancing underneath.
TEST(ShmEpochPlaneTest, MappedQueryByteIdenticalAcrossAdvancingEpochs) {
  const std::string name = SegmentName("identity");
  EpochPublisher::Options options;
  options.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, options);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  video::ClassCatalog catalog(23);
  const core::IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  auto reader = ShmSnapshotReader::Attach(name);
  // Attaching before the first publish is an error only for Acquire, not
  // Attach — the slot claim is independent of published state.
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  EXPECT_FALSE((*reader)->Acquire().ok());  // No epoch yet.

  int epochs_checked = 0;
  int queries_checked = 0;
  PublishRun(publisher->get(), /*duration_sec=*/12.0, /*seed=*/7,
             [&](const core::LiveSnapshot& snap) {
               auto view = (*reader)->Acquire();
               ASSERT_TRUE(view.ok()) << view.error().message;
               EXPECT_EQ(view->epoch(), snap.epoch);
               const core::QueryEngine engine(&snap, &cheap, &gt);
               for (const QuerySpec& spec : SpecsFor(snap)) {
                 const core::QueryResult want =
                     engine.Query(spec.cls, spec.kx, spec.range, snap.fps);
                 const core::QueryResult got =
                     view->Query(spec.cls, spec.kx, spec.range, cheap, gt);
                 ExpectSameResult(want, got);
                 ++queries_checked;
               }
               ++epochs_checked;
             });
  EXPECT_GE(epochs_checked, 4);
  EXPECT_GT(queries_checked, 20);
}

// The identity property, cross-process half: worker processes attach cold,
// rebuild catalog and CNNs from the header provenance alone, and answer the
// advancing plane byte-identically to the in-process engine.
TEST(ShmEpochPlaneTest, CrossProcessColdWorkerAnswersByteIdentically) {
  const std::string name = SegmentName("xproc");
  EpochPublisher::Options options;
  options.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, options);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  auto state = std::make_shared<WorkerState>();
  state->segment = name;
  runtime::WorkerProcessPool pool;
  auto started =
      pool.Start(2, [state](const std::string& request) { return state->Handle(request); });
  ASSERT_TRUE(started.ok()) << started.error().message;

  video::ClassCatalog catalog(23);
  const core::IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  int epoch = 0;
  int cross_checked = 0;
  const auto snapshots = PublishRun(
      publisher->get(), /*duration_sec=*/12.0, /*seed=*/13,
      [&](const core::LiveSnapshot& snap) {
        ++epoch;
        if (epoch % 2 != 0) {
          return;  // Let generations advance between worker round-trips.
        }
        const core::QueryEngine engine(&snap, &cheap, &gt);
        const auto specs = SpecsFor(snap);
        const QuerySpec& spec = specs[epoch % specs.size()];
        auto reply = pool.Call(epoch / 2 % 2, QueryLine(spec));
        ASSERT_TRUE(reply.ok()) << reply.error().message;
        const std::string want =
            std::to_string(snap.epoch) + " " +
            EncodeResult(engine.Query(spec.cls, spec.kx, spec.range, snap.fps));
        EXPECT_EQ(*reply, want);
        ++cross_checked;
      });
  ASSERT_GE(snapshots.size(), 4u);
  EXPECT_GE(cross_checked, 2);

  // Full mix against the settled final epoch, from both workers.
  const core::LiveSnapshot& last = *snapshots.back();
  const core::QueryEngine engine(&last, &cheap, &gt);
  for (const QuerySpec& spec : SpecsFor(last)) {
    const std::string want =
        std::to_string(last.epoch) + " " +
        EncodeResult(engine.Query(spec.cls, spec.kx, spec.range, last.fps));
    for (int worker = 0; worker < pool.size(); ++worker) {
      auto reply = pool.Call(worker, QueryLine(spec));
      ASSERT_TRUE(reply.ok()) << reply.error().message;
      EXPECT_EQ(*reply, want) << "worker " << worker;
    }
  }
  EXPECT_EQ((*publisher)->stats().reader_attaches, 2u);
  pool.Shutdown();
}

// Crash model: SIGKILL a worker while it holds a pin. Ingest keeps publishing
// without a single failed or delayed epoch, the dead reader's pin is
// reclaimed, and the surviving sibling keeps answering byte-identically.
TEST(ShmEpochPlaneTest, KilledReaderNeverStallsIngestAndPinIsReclaimed) {
  const std::string name = SegmentName("crash");
  runtime::MetricsRegistry metrics;
  EpochPublisher::Options options;
  options.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, options, &metrics);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  auto state = std::make_shared<WorkerState>();
  state->segment = name;
  runtime::WorkerProcessPool pool;
  auto started =
      pool.Start(2, [state](const std::string& request) { return state->Handle(request); });
  ASSERT_TRUE(started.ok()) << started.error().message;

  video::ClassCatalog catalog(23);
  const core::IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  int epoch = 0;
  bool killed = false;
  const auto snapshots = PublishRun(
      publisher->get(), /*duration_sec=*/14.0, /*seed=*/17,
      [&](const core::LiveSnapshot& snap) {
        ++epoch;
        if (epoch == 2) {
          // Worker 0 pins this epoch and is killed holding it — the plane now
          // carries a pin owned by a corpse.
          auto pinned = pool.Call(0, "HOLD");
          ASSERT_TRUE(pinned.ok()) << pinned.error().message;
          EXPECT_EQ(*pinned, std::to_string(snap.epoch));
          pool.Kill(0);
          EXPECT_FALSE(pool.Alive(0));
          killed = true;
          return;
        }
        if (killed && epoch % 2 == 0) {
          // The sibling keeps answering the advancing plane, identically.
          const core::QueryEngine engine(&snap, &cheap, &gt);
          const QuerySpec spec = SpecsFor(snap).front();
          auto reply = pool.Call(1, QueryLine(spec));
          ASSERT_TRUE(reply.ok()) << reply.error().message;
          EXPECT_EQ(*reply,
                    std::to_string(snap.epoch) + " " +
                        EncodeResult(engine.Query(spec.cls, spec.kx, spec.range, snap.fps)));
        }
      });
  ASSERT_TRUE(killed);
  ASSERT_GE(snapshots.size(), 5u);  // Every publish after the kill succeeded.

  const ShmPlaneStats stats = (*publisher)->stats();
  EXPECT_EQ(stats.epochs_published, snapshots.size());
  EXPECT_GE(stats.stale_pins_reclaimed, 1u);
  EXPECT_EQ(stats.pin_violations, 0u);  // Reclaim, never a forced eviction.
  EXPECT_GE(metrics.counter("shm.stale_pins_reclaimed"), 1);

  // The dead worker's Call path reports unavailability; the sibling is fine.
  auto dead = pool.Call(0, "HOLD");
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, common::ErrorCode::kUnavailable);
  EXPECT_TRUE(pool.Call(1, "RELEASE").ok());
  pool.Shutdown();
}

// Pin protocol: a pinned epoch's bytes are never overwritten, however many
// epochs publish past it — the held view stays valid and re-answers
// identically. When every region is pinned the publisher forcibly evicts the
// oldest pin rather than stall, counts the violation, and the evicted view
// detects it.
TEST(ShmEpochPlaneTest, PinnedEpochSurvivesPublishesUntilForcedEviction) {
  const std::string name = SegmentName("pin");
  EpochPublisher::Options options;
  options.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, options);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  video::ClassCatalog catalog(23);
  const core::IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  std::vector<std::unique_ptr<ShmSnapshotReader>> readers;
  std::vector<ShmEpochView> held;
  std::vector<std::string> held_answers;
  QuerySpec probe{0, -1, {}};

  // A fresh reader pins each of the first few epochs and records its answer.
  // Half the region table stays unpinned, so rotation never needs an eviction.
  auto pin_newest = [&](const core::LiveSnapshot& snap) {
    auto reader = ShmSnapshotReader::Attach(name);
    ASSERT_TRUE(reader.ok());
    auto view = (*reader)->Acquire();
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->epoch(), snap.epoch);
    if (held.empty()) {
      probe = SpecsFor(snap).front();
    }
    held_answers.push_back(
        EncodeResult(view->Query(probe.cls, probe.kx, probe.range, cheap, gt)));
    held.push_back(std::move(*view));
    readers.push_back(std::move(*reader));
  };
  const auto all = PublishRun(publisher->get(), /*duration_sec=*/20.0, /*seed=*/19,
                              [&](const core::LiveSnapshot& snap) {
                                if (held.size() < kShmMaxRegions / 2) {
                                  pin_newest(snap);
                                }
                              });
  ASSERT_GE(held.size(), 3u);
  ASSERT_GT(all.size(), held.size() + 2);

  // Many epochs published past every pin: each held view still maps its
  // original generation and re-answers byte-identically.
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_TRUE(held[i].StillValid()) << "pin " << i;
    EXPECT_EQ(held[i].epoch(), i + 1);
    EXPECT_EQ(EncodeResult(held[i].Query(probe.cls, probe.kx, probe.range, cheap, gt)),
              held_answers[i])
        << "pin " << i;
  }
  EXPECT_EQ((*publisher)->stats().pin_violations, 0u);

  // Force the publisher's hand: keep pinning each new epoch until every
  // region is protected by a live pin. The next publish then evicts the
  // oldest pin instead of stalling ingest, counts the violation, and the
  // evicted view detects it.
  const auto before = (*publisher)->stats();
  auto extra = PublishRun(publisher->get(), /*duration_sec=*/14.0, /*seed=*/21,
                          [&](const core::LiveSnapshot& snap) {
                            if (held.size() < kShmMaxRegions) {
                              pin_newest(snap);
                            }
                          });
  ASSERT_GE(extra.size(), 6u);  // Enough to fill every region and keep going.
  const auto after = (*publisher)->stats();
  EXPECT_GT(after.pin_violations, before.pin_violations);
  EXPECT_FALSE(held.front().StillValid());  // The evicted reader can tell.
}

// Torn-header fallback: corrupting the newest header slot makes readers adopt
// the previous CRC-valid generation instead of ever believing torn bytes.
TEST(ShmEpochPlaneTest, TornHeaderFallsBackToPreviousGeneration) {
  const std::string name = SegmentName("torn");
  EpochPublisher::Options options;
  options.provenance = Provenance();
  auto publisher = EpochPublisher::Create(name, options);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  const auto snapshots = PublishRun(publisher->get(), /*duration_sec=*/8.0, /*seed=*/29);
  ASSERT_GE(snapshots.size(), 2u);
  const uint64_t newest = snapshots.size();

  auto raw = SharedSegment::Open(name);
  ASSERT_TRUE(raw.ok());
  char* slot = reinterpret_cast<char*>((*raw)->bytes()) + kShmHeaderOffset +
               (newest % 2) * kShmHeaderSlotBytes;
  slot[9] ^= '\xFF';  // Torn write in the newest header.

  auto reader = ShmSnapshotReader::Attach(name);
  ASSERT_TRUE(reader.ok());
  auto view = (*reader)->Acquire();
  ASSERT_TRUE(view.ok()) << view.error().message;
  EXPECT_EQ(view->generation(), newest - 1);
  EXPECT_EQ(view->epoch(), snapshots[newest - 2]->epoch);
  EXPECT_TRUE(view->StillValid());
}

TEST(ShmEpochPlaneTest, OrphanedSegmentIsReclaimedAndLiveOwnerRefused) {
  const std::string name = SegmentName("orphan");
  runtime::MetricsRegistry metrics;
  EpochPublisher::Options options;
  options.provenance = Provenance();

  // Generation A publishes, then goes away without unlinking (the segment
  // outlives its owner, as after a crash).
  uint64_t gen_a_epochs = 0;
  {
    auto gen_a = EpochPublisher::Create(name, options, &metrics);
    ASSERT_TRUE(gen_a.ok()) << gen_a.error().message;
    (*gen_a)->UnlinkOnDestroy(false);
    const auto snapshots = PublishRun(gen_a->get(), /*duration_sec=*/8.0, /*seed=*/11);
    ASSERT_FALSE(snapshots.empty());
    gen_a_epochs = snapshots.size();
  }
  EXPECT_EQ(metrics.counter("shm.stale_segments_reclaimed"), 0);

  {
    auto raw = SharedSegment::Open(name);
    ASSERT_TRUE(raw.ok()) << raw.error().message;
    auto* control = reinterpret_cast<ShmControl*>((*raw)->data());

    // While the recorded owner is a live process, Create refuses: one writer
    // per plane, and a second publisher must not unlink it out from under it.
    control->writer_pid.store(static_cast<uint64_t>(::getpid()), std::memory_order_relaxed);
    auto refused = EpochPublisher::Create(name, options, &metrics);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error().code, common::ErrorCode::kFailedPrecondition);
    EXPECT_NE(refused.error().message.find("live publisher"), std::string::npos);
    EXPECT_EQ(metrics.counter("shm.stale_segments_reclaimed"), 0);

    // Swap in a genuinely dead owner: a reaped child's pid no longer exists.
    pid_t corpse = fork();
    ASSERT_GE(corpse, 0);
    if (corpse == 0) {
      _exit(0);
    }
    ASSERT_EQ(waitpid(corpse, nullptr, 0), corpse);
    control->writer_pid.store(static_cast<uint64_t>(corpse), std::memory_order_relaxed);
  }

  // Generation B reclaims the orphan: the segment is recreated fresh (the dead
  // owner's stale epochs are not served), counted in the reclaim metric, and
  // the generation counter restarts from scratch.
  auto gen_b = EpochPublisher::Create(name, options, &metrics);
  ASSERT_TRUE(gen_b.ok()) << gen_b.error().message;
  (*gen_b)->UnlinkOnDestroy(true);
  EXPECT_EQ(metrics.counter("shm.stale_segments_reclaimed"), 1);

  const auto fresh = PublishRun(gen_b->get(), /*duration_sec=*/8.0, /*seed=*/29);
  ASSERT_FALSE(fresh.empty());
  auto reader = ShmSnapshotReader::Attach(name);
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  auto view = (*reader)->Acquire();
  ASSERT_TRUE(view.ok()) << view.error().message;
  EXPECT_EQ(view->generation(), fresh.size());  // Restarted, not gen_a_epochs + n.
  EXPECT_EQ(view->epoch(), fresh.back()->epoch);
  (void)gen_a_epochs;
}

// Regression: a payload outgrowing its region used to leak the abandoned span
// inside the fixed arena — a long run with steadily growing snapshots
// exhausted the segment (kOutOfRange) even though the live working set fit
// comfortably. Abandoned spans now go to the control block's free-span table
// and are reused (or returned to the bump allocator when adjacent), so the
// same run publishes every epoch, counts compactions, and the arena's
// high-water mark stays well under the pre-fix append-only total.
TEST(ShmEpochPlaneTest, GrowingPayloadsCompactAbandonedSpansInsteadOfLeaking) {
  const std::string name = SegmentName("leak");
  runtime::MetricsRegistry metrics;
  EpochPublisher::Options options;
  options.provenance = Provenance();
  options.segment_bytes = 1 << 20;  // Small arena: leaks exhaust it fast.
  auto publisher = EpochPublisher::Create(name, options, &metrics);
  ASSERT_TRUE(publisher.ok()) << publisher.error().message;
  (*publisher)->UnlinkOnDestroy(true);

  // Synthetic snapshots with precisely controlled, steadily growing payloads:
  // one cluster whose member-run table adds a fixed stride every epoch.
  constexpr int kEpochs = 100;
  constexpr size_t kBaseMembers = 400;
  constexpr size_t kStride = 10;
  auto snapshot_with = [](uint64_t epoch, size_t members) {
    core::LiveSnapshot snap;
    snap.epoch = epoch;
    snap.watermark = static_cast<common::FrameIndex>(epoch * 60);
    snap.fps = 30.0;
    snap.detections = static_cast<int64_t>(members);
    index::ClusterEntry entry;
    entry.size = static_cast<int64_t>(members);
    entry.members.reserve(members);
    for (size_t m = 0; m < members; ++m) {
      cluster::MemberRun run;
      run.object = static_cast<common::ObjectId>(m);
      run.first_frame = static_cast<common::FrameIndex>(2 * m);
      run.last_frame = static_cast<common::FrameIndex>(2 * m + 1);
      entry.members.push_back(run);
    }
    entry.topk_classes = {1, 2};
    entry.topk_ranks = {1, 2};
    snap.index.AddCluster(std::move(entry));
    return snap;
  };

  uint64_t generation = 0;
  for (int e = 1; e <= kEpochs; ++e) {
    const core::LiveSnapshot snap =
        snapshot_with(static_cast<uint64_t>(e), kBaseMembers + kStride * static_cast<size_t>(e));
    auto published = (*publisher)->Publish(snap);
    ASSERT_TRUE(published.ok()) << "epoch " << e << ": " << published.error().message;
    EXPECT_EQ(*published, ++generation);
  }

  const ShmPlaneStats stats = (*publisher)->stats();
  EXPECT_EQ(stats.epochs_published, static_cast<uint64_t>(kEpochs));
  EXPECT_GT(stats.regions_compacted, 0u);
  EXPECT_GT(metrics.counter("shm.regions_compacted"), 0);
  EXPECT_LE(stats.arena_used_bytes, stats.segment_bytes);

  // The plane still serves the final epoch coherently after all the churn.
  auto reader = ShmSnapshotReader::Attach(name, &metrics);
  ASSERT_TRUE(reader.ok()) << reader.error().message;
  auto view = (*reader)->Acquire();
  ASSERT_TRUE(view.ok()) << view.error().message;
  EXPECT_EQ(view->epoch(), static_cast<uint64_t>(kEpochs));
  ASSERT_EQ(view->num_clusters(), 1u);
  const ShmClusterRecord& rec = view->clusters()[0];
  const size_t final_members = kBaseMembers + kStride * kEpochs;
  ASSERT_EQ(static_cast<size_t>(rec.members_count), final_members);
  for (size_t m : {size_t{0}, final_members / 2, final_members - 1}) {
    const ShmMemberRun& run = view->members()[rec.members_begin + m];
    EXPECT_EQ(run.object, static_cast<common::ObjectId>(m));
    EXPECT_EQ(run.first_frame, static_cast<common::FrameIndex>(2 * m));
    EXPECT_EQ(run.last_frame, static_cast<common::FrameIndex>(2 * m + 1));
  }
  EXPECT_TRUE(view->StillValid());
}

TEST(WorkerProcessPoolTest, EchoKillAndSiblingIsolation) {
  runtime::WorkerProcessPool pool;
  auto started = pool.Start(3, [](const std::string& request) {
    return "echo:" + request;
  });
  ASSERT_TRUE(started.ok()) << started.error().message;
  ASSERT_EQ(pool.size(), 3);

  // Round-trips, including an empty and a large (multi-read) payload.
  auto small = pool.Call(0, "ping");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(*small, "echo:ping");
  auto empty = pool.Call(1, "");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "echo:");
  const std::string big(256 * 1024, 'x');
  auto large = pool.Call(2, big);
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large->size(), big.size() + 5);

  for (int i = 0; i < pool.size(); ++i) {
    EXPECT_TRUE(pool.Alive(i));
    EXPECT_GT(pool.worker_pid(i), 0);
  }

  pool.Kill(1);
  EXPECT_FALSE(pool.Alive(1));
  auto dead = pool.Call(1, "ping");
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, common::ErrorCode::kUnavailable);

  // Siblings are unaffected by the crash.
  EXPECT_TRUE(pool.Call(0, "a").ok());
  EXPECT_TRUE(pool.Call(2, "b").ok());
  EXPECT_TRUE(pool.Alive(0));
  EXPECT_TRUE(pool.Alive(2));

  pool.Shutdown();  // Reaps everyone; the pool is empty afterwards.
  EXPECT_EQ(pool.size(), 0);
}

TEST(ShmSegmentTest, CreateOpenValidateAndReject) {
  const std::string name = SegmentName("segment");
  auto created = SharedSegment::Create(name, 1 << 20);
  ASSERT_TRUE(created.ok()) << created.error().message;
  EXPECT_EQ((*created)->size(), size_t{1} << 20);
  (*created)->bytes()[100] = 42;

  auto opened = SharedSegment::Open(name);
  ASSERT_TRUE(opened.ok()) << opened.error().message;
  EXPECT_EQ((*opened)->size(), size_t{1} << 20);
  EXPECT_EQ((*opened)->bytes()[100], 42);  // Same physical pages.

  EXPECT_FALSE(SharedSegment::Open("/focus_shm_test_does_not_exist").ok());
  EXPECT_FALSE(SharedSegment::Create("no-leading-slash", 4096).ok());
  EXPECT_FALSE(SharedSegment::Create("/bad/inner/slash", 4096).ok());

  SharedSegment::Unlink(name);
  EXPECT_FALSE(SharedSegment::Open(name).ok());
  // Existing mappings survive the unlink.
  EXPECT_EQ((*opened)->bytes()[100], 42);
}

}  // namespace
}  // namespace focus::shm
