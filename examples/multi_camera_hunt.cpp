// Multi-camera hunt: cross-camera, time-windowed querying through the FocusFleet API
// (§3: queries "can be restricted to a subset of cameras and a time range").
//
// Scenario: a city operations team runs Focus on three intersections. After a report
// of a vehicle fleeing east between minute 3 and minute 8, they ask every camera for
// that class inside the window, narrow to the cameras that saw it, and then expand
// the window on just those cameras — paying GT-CNN work only where the index says
// there is something to verify.
#include <cstdio>

#include "src/common/logging.h"
#include "src/core/fleet.h"
#include "src/video/stream_generator.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);

  video::ClassCatalog catalog(42);
  core::FocusFleet fleet;
  core::FocusOptions options;  // Balance policy, 95/95 targets.

  // Three intersections, 10 minutes each (a demo-sized slice of a real deployment).
  struct CameraSpec {
    const char* name;
    const char* profile;
    uint64_t seed;
  };
  const CameraSpec specs[] = {{"main_and_1st", "auburn_c", 301},
                              {"main_and_5th", "city_a_d", 302},
                              {"riverside", "jacksonh", 303}};
  std::printf("Building a 3-camera fleet (tuning + ingest per camera)...\n");
  for (const CameraSpec& spec : specs) {
    video::StreamProfile profile;
    if (!video::FindProfile(spec.profile, &profile)) {
      std::printf("unknown profile %s\n", spec.profile);
      return 1;
    }
    auto added = fleet.AddCamera(spec.name, &catalog, profile, /*duration_sec=*/600.0,
                                 /*fps=*/30.0, spec.seed, options);
    if (!added.ok()) {
      std::printf("AddCamera(%s) failed: %s\n", spec.name, added.error().message.c_str());
      return 1;
    }
    const core::FocusStream* stream = fleet.Find(spec.name);
    std::printf("  %-14s model=%-18s K=%d clusters=%lld\n", spec.name,
                stream->chosen_params().model.name.c_str(), stream->chosen_params().k,
                static_cast<long long>(stream->ingest().num_clusters));
  }

  // The class to hunt: whatever dominates the first camera (stands in for "the
  // fleeing vehicle's class" — a car/truck-like label on a traffic stream).
  const core::FocusStream* first = fleet.Find("main_and_1st");
  cnn::SegmentGroundTruth truth(first->run(), first->gt_cnn());
  auto dominant = truth.DominantClasses(0.95, 1);
  if (dominant.empty()) {
    std::printf("no dominant class on %s\n", specs[0].name);
    return 1;
  }
  const common::ClassId suspect = dominant[0];
  std::printf("\nHunting class '%s' across all cameras, minutes [3, 8):\n",
              catalog.Name(suspect).c_str());

  common::TimeRange window{.begin_sec = 3 * 60.0, .end_sec = 8 * 60.0};
  auto hunt = fleet.Query(suspect, {}, window);
  if (!hunt.ok()) {
    std::printf("query failed: %s\n", hunt.error().message.c_str());
    return 1;
  }
  for (const core::CameraHits& hits : hunt->hits) {
    std::printf("  %-14s frames=%-7lld clusters_confirmed=%-4lld gt_cnn_ms=%.0f\n",
                hits.camera.c_str(), static_cast<long long>(hits.result.frames_returned),
                static_cast<long long>(hits.result.clusters_matched), hits.result.gpu_millis);
  }

  // Narrow to cameras with hits and widen the window on just those.
  std::vector<std::string> confirmed = hunt->CamerasWithHits();
  std::printf("\nCameras with sightings: %zu; expanding those to the full recording...\n",
              confirmed.size());
  if (!confirmed.empty()) {
    auto expanded = fleet.Query(suspect, confirmed);
    if (expanded.ok()) {
      std::printf("  full-recording frames across %zu camera(s): %lld (GT-CNN %.0f ms)\n",
                  confirmed.size(), static_cast<long long>(expanded->total_frames),
                  expanded->total_gpu_millis);
    }
  }

  std::printf("\nTotal fleet ingest GPU time: %.1f s (one-time, shared by every query)\n",
              fleet.TotalIngestGpuMillis() / 1000.0);
  return 0;
}
