// Live query-over-ingest: epoch-published canonical snapshots of a stream that
// is still being ingested.
//
// The paper's headline scenario is querying video while it is still arriving —
// low-latency answers over streams that never end. A one-shot FinalizeClusters()
// at end-of-stream can never serve that: an infinite stream has no end, so every
// query would wait forever. The windowed streaming finalize
// (core::IngestOptions::finalize_every_frames) instead runs the cross-shard
// merge to convergence every N sampled frames and publishes the result as an
// immutable LiveSnapshot: the canonical cluster table (carried as the top-K
// index's cluster entries), the frame watermark the table covers, and a
// monotone epoch number.
//
// Publication is an RCU-style pointer swap (SnapshotSlot): the ingest thread
// builds the snapshot off to the side and swaps it in atomically; query threads
// load the current pointer and keep the snapshot alive through their own
// shared_ptr reference for as long as the query runs, so a reader never sees a
// half-built table and never blocks the writer. Epochs are stamped by the slot
// and strictly monotone; the watermark is the first sampled frame NOT covered,
// so a snapshot with watermark w answers exactly what a query against a stream
// halted at frame w and finalized the old way would answer — byte-identically
// (tests/live_snapshot_test.cc holds this as a property over random streams).
//
// Snapshots are volatile: they are never written to disk and are rebuilt from
// the ingest state after a crash-resume (docs/live_query.md covers the
// interaction with Checkpoint()/OpenOrRecover()).
#ifndef FOCUS_SRC_CORE_LIVE_SNAPSHOT_H_
#define FOCUS_SRC_CORE_LIVE_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/time_types.h"
#include "src/index/topk_index.h"

namespace focus::core {

// Build accounting of one snapshot (the publication overhead the live-query
// bench tracks).
struct LiveSnapshotStats {
  // Index entries carried forward unchanged from the previous epoch (their
  // component composition, members, and ranks did not change) vs rebuilt from
  // the rank table. reused + rebuilt == index.num_clusters().
  int64_t entries_reused = 0;
  int64_t entries_rebuilt = 0;
  // Wall-clock of the whole publication in synchronous mode: cross-shard merge
  // pass, canonical table build, index assembly, and the pointer swap. In
  // background mode, the builder-thread assembly alone — the ingest thread's
  // share is cut_millis + stall_millis.
  double build_millis = 0.0;
  // Ingest-thread wall-clock spent cutting this epoch at the boundary (merge
  // pass, dirty census, dirty-entry builds) — the part that cannot leave the
  // ingest thread.
  double cut_millis = 0.0;
  // Ingest-thread wall-clock spent blocked on a full build queue (background
  // mode backpressure; 0 when the builder kept up or in synchronous mode).
  double stall_millis = 0.0;
};

// One immutable published snapshot. Everything here is frozen at publication;
// readers share the object via shared_ptr and never synchronize further.
struct LiveSnapshot {
  // 1-based, strictly monotone per SnapshotSlot (stamped by Publish).
  uint64_t epoch = 0;
  // First sampled frame NOT covered: the snapshot answers queries over frames
  // [0, watermark) exactly as halting ingest at |watermark| and finalizing
  // would.
  common::FrameIndex watermark = 0;
  // Recording fps, for time-range-to-frame mapping at plan time.
  double fps = 30.0;
  // The canonical cluster table as the query side consumes it: one ClusterEntry
  // per canonical cluster (representative, member runs, ranked top-K classes)
  // plus the class postings.
  index::TopKIndex index;
  // Stream counters as of the watermark.
  int64_t detections = 0;
  int64_t num_clusters = 0;
  LiveSnapshotStats stats;
};

// The RCU slot one ingest run publishes through. Single writer (the ingest
// thread), any number of concurrent readers. The mutex guards only the
// pointer copy/swap — nanoseconds — so readers never wait out a merge and the
// writer never waits out a query: a reader pins its epoch via the shared_ptr
// refcount and works lock-free from there. (An std::atomic<shared_ptr> would
// drop even the micro-lock, but GCC 12's _Sp_atomic lock-bit protocol is
// opaque to ThreadSanitizer and the sanitize gate runs this type.)
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  // The newest published snapshot, or null before the first epoch. The caller's
  // shared_ptr keeps the snapshot (and every index entry a plan points into)
  // alive even if a newer epoch is published mid-query.
  std::shared_ptr<const LiveSnapshot> Latest() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_;
  }

  // Stamps the next epoch (previous + 1) onto |snapshot| and swaps it in.
  // Returns the published (now immutable) snapshot. Single-writer only.
  std::shared_ptr<const LiveSnapshot> Publish(std::unique_ptr<LiveSnapshot> snapshot);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const LiveSnapshot> latest_;
};

// One slot of a snapshot build job, in index slot order: either "carry the
// entry at |prev_slot| of the previous epoch's index forward unchanged" or a
// fully built entry for a dirtied canonical cluster.
struct SnapshotBuildItem {
  bool reused = false;
  size_t prev_slot = 0;       // Valid when |reused|.
  index::ClusterEntry entry;  // Valid when !|reused|.
};

// Everything needed to assemble and publish one epoch, cut from the live
// clusterer state at a cadence boundary by the ingest thread. The job owns all
// its bytes (dirty entries are deep copies; reused entries are named by their
// slot in the *previous epoch's published index*, which the builder owns) —
// nothing aliases ingest state, which is what lets assembly run on another
// thread while assignments continue.
struct SnapshotBuildJob {
  common::FrameIndex watermark = 0;
  double fps = 30.0;
  int64_t detections = 0;
  // Ingest-thread wall-clock spent producing this cut. Copied into the
  // published snapshot's stats.
  double cut_millis = 0.0;
  // Filled by Submit: wall-clock the ingest thread spent blocked on a full
  // build queue before this job was accepted.
  double stall_millis = 0.0;
  std::vector<SnapshotBuildItem> items;
};

// Assembles cut jobs into published LiveSnapshots, either inline on the
// submitting thread (synchronous mode — the pre-existing behavior) or on one
// dedicated builder thread fed through a small bounded FIFO (background mode:
// ingest hands over the cut and keeps assigning while the index assembles).
// Both modes run the identical assembly code over identical job bytes, so for
// the same stream the published snapshot sequence is byte-identical;
// background mode changes only *when* the bytes are assembled. The builder
// owns the previous-epoch chain (reused entries copy from its own last
// published index), publishes through the owner's SnapshotSlot in submit
// (FIFO) order — epoch stamps stay monotone — and invokes the sink on
// whichever thread assembles: the builder thread in background mode.
class SnapshotBuilder {
 public:
  using Sink = std::function<void(std::shared_ptr<const LiveSnapshot>)>;

  // |slot| may be null (sink-only consumers get fallback epoch numbering);
  // |sink| may be empty. |background| spawns the builder thread.
  SnapshotBuilder(SnapshotSlot* slot, Sink sink, bool background);
  // Flushes pending jobs, then joins the builder thread.
  ~SnapshotBuilder();

  SnapshotBuilder(const SnapshotBuilder&) = delete;
  SnapshotBuilder& operator=(const SnapshotBuilder&) = delete;

  // Hands one cut over. Synchronous mode assembles and publishes inline.
  // Background mode enqueues and returns; when the queue is full it blocks
  // until the builder frees a slot and accounts the wait into the job's
  // stall_millis. Single submitter (the ingest thread).
  void Submit(SnapshotBuildJob job);

  // Blocks until every job submitted so far has been assembled and published.
  // The ingest loop calls this before a same-frame checkpoint — the publish
  // must be observable before the durable cut, exactly as in synchronous
  // mode — and at end of run before sealing.
  void Flush();

  bool background() const { return thread_.joinable(); }

  // Queue depth bound: deep enough to ride out a transiently descheduled
  // builder — at high shard counts the epoch interval leaves little headroom
  // over one assembly, so a single scheduler hiccup puts the builder several
  // epochs behind — yet small enough that a *persistently* slow builder
  // backpressures ingest (visible as stall_millis) instead of ballooning
  // memory. Queued jobs are deltas (reused entries carry a slot number, not
  // an index copy), so eight of them stay far smaller than one snapshot.
  static constexpr size_t kMaxQueuedJobs = 8;

 private:
  void BuilderMain();
  void Assemble(SnapshotBuildJob job);

  SnapshotSlot* const slot_;
  const Sink sink_;

  // Assembly-side state: touched only by the builder thread in background
  // mode, only by the submitting thread in synchronous mode.
  std::shared_ptr<const LiveSnapshot> prev_;
  uint64_t fallback_epoch_ = 0;

  std::mutex mu_;
  // One condvar for all three waits (builder: work available; submitter:
  // queue space; Flush: all done) — publication cadence makes signal traffic
  // negligible, and notify_all keeps the protocol obviously deadlock-free.
  std::condition_variable cv_;
  std::deque<SnapshotBuildJob> queue_;
  int64_t submitted_ = 0;
  int64_t completed_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_LIVE_SNAPSHOT_H_
