// Incremental query sessions: the §5 "Dynamically adjusting K at query-time"
// enhancement as a stateful API.
//
// "If we want to retrieve only some objects of class X, we can use very low Kx to
// quickly retrieve them. If more objects are required, we can increase Kx to extract
// a new batch of results." A QuerySession keeps the per-query state that makes the
// expansion cheap: centroids already classified by the GT-CNN are never re-classified
// when Kx grows, so the total GPU cost of reaching Kx = K through any sequence of
// batches equals the cost of a single query at K.
//
// Each ExpandTo(kx) step is planned and executed through the QueryEngine
// plan/execute API: Plan(cls, kx, range, fps, min_kx = current Kx) emits exactly
// the centroid work a step newly admits, the uncached work items are classified
// as ONE GT-CNN batch (cnn::Cnn::ClassifyBatch — so even incremental expansion
// fills GPU launches, §5), and the verdicts fold into the cumulative result.
#ifndef FOCUS_SRC_CORE_QUERY_SESSION_H_
#define FOCUS_SRC_CORE_QUERY_SESSION_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/common/time_types.h"
#include "src/core/query_engine.h"
#include "src/index/topk_index.h"

namespace focus::core {

// One expansion step's incremental output.
struct QueryBatch {
  int kx = 0;  // The Kx this batch expanded to.
  // Frames newly added by this batch (disjoint from all earlier batches' frames).
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> new_frame_runs;
  int64_t new_frames = 0;
  int64_t centroids_classified = 0;  // GT-CNN inferences paid by this batch alone.
  common::GpuMillis gpu_millis = 0.0;
};

class QuerySession {
 public:
  // |index|, |ingest_cnn| and |gt_cnn| must outlive the session. |range| restricts
  // every batch.
  QuerySession(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn,
               const cnn::Cnn* gt_cnn, common::ClassId cls, common::TimeRange range = {},
               double fps = 30.0);

  // Expands the session to |kx| (monotonic: values at or below the current Kx return
  // an empty batch). Classifies only centroids of clusters that newly match, as one
  // GT-CNN batch.
  QueryBatch ExpandTo(int kx);

  // Routes this session's classification through a shared executor instead of
  // the direct engine batch: the callback receives each expansion step's fresh
  // sub-plan and must return top-1 verdicts in plan order, byte-identical to
  // QueryEngine::ClassifyPlan. runtime::FleetQueryService::ClassifySessionPlan
  // is the intended target — concurrent sessions then share a global verdict
  // cache and never re-pay a centroid any of them (or any past query) paid.
  // Per-batch gpu_millis accounting is unchanged (the execution-independent
  // per-centroid figure); the shared executor's stats show the saved cost.
  using PlanClassifier = std::function<std::vector<common::ClassId>(const QueryPlan&)>;
  void SetClassifier(PlanClassifier classifier) { classifier_ = std::move(classifier); }

  // Cumulative results across all batches so far (merged, sorted frame runs).
  const std::vector<std::pair<common::FrameIndex, common::FrameIndex>>& frame_runs() const {
    return cumulative_runs_;
  }
  int64_t total_frames() const { return total_frames_; }
  int64_t total_centroids_classified() const { return total_centroids_; }
  common::GpuMillis total_gpu_millis() const { return total_gpu_millis_; }
  int current_kx() const { return current_kx_; }
  common::ClassId queried() const { return cls_; }

 private:
  QueryEngine engine_;  // Plans, classifies, and folds each expansion step.
  PlanClassifier classifier_;  // Optional shared executor (SetClassifier).
  common::ClassId cls_;
  common::TimeRange range_;
  double fps_;

  int current_kx_ = 0;
  // Centroid verdicts already paid for: cluster id -> confirmed as cls_.
  std::unordered_map<int64_t, bool> verdicts_;
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> cumulative_runs_;
  int64_t total_frames_ = 0;
  int64_t total_centroids_ = 0;
  common::GpuMillis total_gpu_millis_ = 0.0;
};

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_QUERY_SESSION_H_
