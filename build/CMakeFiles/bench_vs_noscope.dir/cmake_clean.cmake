file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_noscope.dir/bench/bench_vs_noscope.cc.o"
  "CMakeFiles/bench_vs_noscope.dir/bench/bench_vs_noscope.cc.o.d"
  "bench_vs_noscope"
  "bench_vs_noscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_noscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
