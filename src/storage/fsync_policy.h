// Fsync cadence: how hard the storage layer pushes bytes toward the platter.
//
// Every setting keeps the *format* crash-safe — CRC'd ping-pong headers and the
// length+CRC framed undo log mean recovery always reconstructs a consistent prefix.
// The policy only changes which crashes can eat acknowledged work:
//
//   kEveryCommit  - msync/fsync on every commit. Survives kernel panic and power
//                   loss; an acknowledged checkpoint is durable. The arena default.
//   kEveryN       - sync every Nth commit. Bounded loss window under kernel crash
//                   (up to N-1 commits), full durability against process crash.
//   kNever        - never sync; rely on the page cache. Survives *process* crashes
//                   (the kernel still owns the dirty pages) but a kernel panic or
//                   power cut can roll the file back arbitrarily far. The undo-log
//                   default, matching its advisory role.
//
// See docs/persistence.md for the durability table.
#ifndef FOCUS_SRC_STORAGE_FSYNC_POLICY_H_
#define FOCUS_SRC_STORAGE_FSYNC_POLICY_H_

#include <cstdint>

namespace focus::storage {

enum class FsyncPolicy {
  kEveryCommit,
  kEveryN,
  kNever,
};

struct FsyncOptions {
  FsyncPolicy policy = FsyncPolicy::kEveryCommit;
  // Cadence for kEveryN (sync on commits N, 2N, ...). Ignored otherwise.
  int64_t every_n = 16;

  static FsyncOptions EveryCommit() { return {FsyncPolicy::kEveryCommit, 16}; }
  static FsyncOptions EveryN(int64_t n) { return {FsyncPolicy::kEveryN, n}; }
  static FsyncOptions Never() { return {FsyncPolicy::kNever, 16}; }

  // Stateless decision: should the |commit_index|th (1-based) commit sync?
  bool ShouldSync(int64_t commit_index) const {
    switch (policy) {
      case FsyncPolicy::kEveryCommit:
        return true;
      case FsyncPolicy::kEveryN:
        return every_n > 0 && commit_index % every_n == 0;
      case FsyncPolicy::kNever:
        return false;
    }
    return true;
  }
};

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_FSYNC_POLICY_H_
