// Query-time processing (§3 right side: QT1-QT4).
//
// For a query "find all frames with objects of class X": look up the top-K index for
// clusters indexed under X (mapping X to OTHER when the ingest model was specialized
// and X is not one of its Ls classes), classify each matching cluster's centroid
// object with the GT-CNN, and return the member frames of the clusters whose centroid
// the GT-CNN confirmed as X. Query GPU time = centroid classifications.
//
// Supports the §5 enhancement of a dynamic Kx <= K: filtering with a smaller Kx
// shrinks the candidate set (lower latency) at some recall cost.
#ifndef FOCUS_SRC_CORE_QUERY_ENGINE_H_
#define FOCUS_SRC_CORE_QUERY_ENGINE_H_

#include <vector>

#include "src/cnn/cnn.h"
#include "src/common/time_types.h"
#include "src/index/topk_index.h"

namespace focus::core {

struct QueryResult {
  common::ClassId queried = common::kInvalidClass;
  // Returned frames as sorted, disjoint [first, last] runs.
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> frame_runs;
  int64_t centroids_classified = 0;
  int64_t clusters_matched = 0;  // Centroid confirmed as the queried class.
  int64_t frames_returned = 0;
  common::GpuMillis gpu_millis = 0.0;
};

class QueryEngine {
 public:
  // |index|, |ingest_cnn| (the model that built the index, for label-space mapping)
  // and |gt_cnn| must outlive the engine.
  QueryEngine(const index::TopKIndex* index, const cnn::Cnn* ingest_cnn, const cnn::Cnn* gt_cnn);

  // Runs the query. |kx| <= K restricts matching to the top-kx indexed classes
  // (negative: use the full indexed width K). |range| restricts returned frames.
  QueryResult Query(common::ClassId cls, int kx = -1, common::TimeRange range = {},
                    double fps = 30.0) const;

 private:
  const index::TopKIndex* index_;
  const cnn::Cnn* ingest_cnn_;
  const cnn::Cnn* gt_cnn_;
};

// Merges possibly-overlapping frame runs into sorted disjoint runs.
std::vector<std::pair<common::FrameIndex, common::FrameIndex>> MergeFrameRuns(
    std::vector<std::pair<common::FrameIndex, common::FrameIndex>> runs);

// The frames |range| admits at |fps| as an inclusive [first, last] frame
// interval (last = max FrameIndex for an open-ended range). Derived
// arithmetically but agreeing frame-for-frame with TimeRange::ContainsFrame, so
// clipping a member run to a query's time range is O(1) arithmetic on the run
// bounds instead of a per-frame walk.
std::pair<common::FrameIndex, common::FrameIndex> FrameBoundsOfRange(common::TimeRange range,
                                                                     double fps);

}  // namespace focus::core

#endif  // FOCUS_SRC_CORE_QUERY_ENGINE_H_
