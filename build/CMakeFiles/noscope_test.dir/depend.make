# Empty dependencies file for noscope_test.
# This may be replaced when dependencies are built.
