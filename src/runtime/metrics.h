// Process-wide metrics registry: named monotonic counters and last-value gauges.
//
// The observability surface a production deployment of Focus would scrape: ingest
// workers count detections, CNN invocations and suppressions; the query service
// records candidate set sizes and latencies. Thread-safe; cheap enough to update from
// worker threads.
#ifndef FOCUS_SRC_RUNTIME_METRICS_H_
#define FOCUS_SRC_RUNTIME_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace focus::runtime {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Adds |delta| (>= 0) to the counter named |name|, creating it at zero.
  void IncrementCounter(const std::string& name, int64_t delta = 1);

  // Sets the gauge named |name| to |value|.
  void SetGauge(const std::string& name, double value);

  // Records one |value| into the distribution named |name| (count/sum/min/max).
  void Observe(const std::string& name, double value);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  struct Distribution {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  };
  Distribution distribution(const std::string& name) const;

  // One line per metric, "name=value", sorted by name. For logs and examples.
  std::string Render() const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Distribution> distributions_;
};

// The process-global registry used by services unless given their own.
MetricsRegistry& GlobalMetrics();

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_METRICS_H_
