// Live query-over-ingest: query latency against published epoch snapshots vs
// the status-quo "halt, finalize, then query", plus snapshot-publication
// overhead (src/core/live_snapshot.h, docs/live_query.md).
//
// The paper's headline scenario is querying video that is still being
// ingested. Without the windowed streaming finalize, the pipeline owns no
// canonical cluster table until the stream ends: answering "what is on this
// camera right now?" means materializing one — replaying the stream's
// clustering and finalizing — before the first index lookup can run, a cost
// that grows with the length of the stream. With it, the ingest loop
// publishes an epoch snapshot every finalize_every_frames, so a query pays
// plan + classify + resolve against a prebuilt immutable index — independent
// of how long the stream has been running.
//
// Per (num_shards in {1, 4}) x (stream length in {1/4, 1/2, 1/1} of the run):
//   live_query_ms       plan+classify+resolve on the newest snapshot (best of 7)
//   on_demand_ms        replay+one-shot-finalize at the same watermark + query
//   latency_ratio       on_demand_ms / live_query_ms
//   publish_total_ms    sum of all snapshot build times over the whole run
//   publish_overhead    publish_total_ms / ingest wall (the guardrail row)
//   entries_reused_frac fraction of index entries carried across epochs (delta)
//   identical           snapshot index == halt+finalize index, byte-compared
//
// Emits BENCH_live_query.json next to the binary. FOCUS_BENCH_LIVE_SEC
// overrides the simulated stream duration (default 240 s).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/storage/index_codec.h"
#include "src/video/stream_generator.h"

namespace {

using Clock = std::chrono::steady_clock;
using focus::core::ClassifiedSample;
using focus::core::IngestOptions;
using focus::core::IngestResult;
using focus::core::LiveSnapshot;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

focus::core::IngestParams Params() {
  focus::core::IngestParams params;
  params.model = focus::cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

ClassifiedSample Truncate(const ClassifiedSample& sample, focus::common::FrameIndex watermark,
                          const focus::cnn::Cnn& cheap) {
  ClassifiedSample out;
  out.k = sample.k;
  out.fps = sample.fps;
  for (const focus::core::ClassifiedDetection& d : sample.detections) {
    if (d.detection.frame >= watermark) {
      break;
    }
    if (d.reused) {
      ++out.suppressed;
    } else {
      ++out.cnn_invocations;
      out.gpu_millis += cheap.inference_cost_millis();
    }
    out.detections.push_back(d);
  }
  return out;
}

std::string Fingerprint(const focus::index::TopKIndex& index) {
  return focus::storage::EncodeIndexSnapshot(focus::storage::IndexSnapshotHeader{}, index);
}

struct LiveQueryRow {
  int num_shards = 1;
  // Guardrail row (bench/check_bench_regression.py): only the full-length
  // stream rows gate publish_overhead — the short rows' publish sums are
  // sub-millisecond and swing with scheduler noise.
  bool gated = false;
  // Background publication mode: the builder thread assembles and publishes,
  // incremental boundary merges at every cadence, and publish_total_ms counts
  // only the ingest thread's share (cut + queue stall) — the cost the mode
  // exists to hide. Sync rows keep the historical whole-publication sum.
  bool background = false;
  int64_t stream_frames = 0;   // Frames fed before the query moment.
  int64_t watermark = 0;       // Newest snapshot's watermark at that moment.
  int64_t epochs = 0;
  double ingest_ms = 0.0;      // Wall of the cadenced ingest run.
  double publish_total_ms = 0.0;
  double cut_total_ms = 0.0;   // Ingest-thread cut share of publish_total_ms.
  double stall_total_ms = 0.0;  // Queue-backpressure share (background only).
  double publish_overhead = 0.0;
  double entries_reused_frac = 0.0;
  double live_query_ms = 0.0;
  double on_demand_ms = 0.0;
  double latency_ratio = 0.0;
  int64_t candidate_clusters = 0;
  bool identical = false;
};

LiveQueryRow RunConfig(const focus::video::StreamRun& run, const ClassifiedSample& sample,
                       const focus::cnn::Cnn& cheap, const focus::cnn::Cnn& gt, int num_shards,
                       double fraction, int64_t cadence_frames, bool background) {
  LiveQueryRow row;
  row.num_shards = num_shards;
  row.background = background;

  const focus::core::IngestParams params = Params();
  IngestOptions options;
  options.num_shards = num_shards;
  options.finalize_every_frames = cadence_frames;

  const int64_t total_frames = run.num_frames();
  row.stream_frames = std::max<int64_t>(cadence_frames + cadence_frames / 2,
                                        static_cast<int64_t>(fraction * total_frames));
  const ClassifiedSample fed = Truncate(sample, row.stream_frames, cheap);

  // The live deployment: cadenced ingest publishing snapshots as it goes.
  // Three reps, median overhead ratio: the guardrail gates the *share* of
  // ingest wall spent publishing, and a single rep's sub-millisecond sums
  // swing with scheduler noise.
  constexpr int kIngestReps = 3;
  std::shared_ptr<const LiveSnapshot> latest;
  std::vector<double> overheads;
  for (int rep = 0; rep < kIngestReps; ++rep) {
    latest = nullptr;
    row.epochs = 0;
    row.publish_total_ms = 0.0;
    row.cut_total_ms = 0.0;
    row.stall_total_ms = 0.0;
    int64_t reused = 0;
    int64_t rebuilt = 0;
    IngestOptions live = options;
    live.background_publish = background;
    live.incremental_boundary_merge = background;
    // In background mode the sink runs on the builder thread, but the ingest
    // loop is blocked inside RunIngestClassified until the final flush joins,
    // so these captures are never touched concurrently.
    live.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      row.publish_total_ms += background
                                  ? snap->stats.cut_millis + snap->stats.stall_millis
                                  : snap->stats.build_millis;
      row.cut_total_ms += snap->stats.cut_millis;
      row.stall_total_ms += snap->stats.stall_millis;
      reused += snap->stats.entries_reused;
      rebuilt += snap->stats.entries_rebuilt;
      ++row.epochs;
      latest = std::move(snap);
    };
    const auto ingest_t0 = Clock::now();
    focus::core::RunIngestClassified(fed, params, live);
    row.ingest_ms = MillisSince(ingest_t0);
    if (latest == nullptr) {
      std::fprintf(stderr, "FAIL: no snapshot published (frames=%lld cadence=%lld)\n",
                   static_cast<long long>(row.stream_frames),
                   static_cast<long long>(cadence_frames));
      return row;
    }
    overheads.push_back(row.ingest_ms > 0.0 ? row.publish_total_ms / row.ingest_ms : 0.0);
    row.entries_reused_frac =
        reused + rebuilt > 0
            ? static_cast<double>(reused) / static_cast<double>(reused + rebuilt)
            : 0.0;
  }
  std::sort(overheads.begin(), overheads.end());
  row.publish_overhead = overheads[overheads.size() / 2];
  row.watermark = latest->watermark;

  // "What is on this camera right now?" — the heaviest query (most popular
  // class) against the newest snapshot. Best of 7: the snapshot is prebuilt,
  // so this is pure plan + classify + resolve.
  const focus::common::ClassId cls = run.classes_by_popularity().front();
  const focus::core::QueryEngine snapshot_engine(latest.get(), &cheap, &gt);
  focus::core::QueryResult live_result;
  for (int rep = 0; rep < 7; ++rep) {
    const auto t0 = Clock::now();
    live_result = snapshot_engine.Query(cls, -1, {}, run.fps());
    const double ms = MillisSince(t0);
    row.live_query_ms = rep == 0 ? ms : std::min(row.live_query_ms, ms);
  }
  row.candidate_clusters = live_result.centroids_classified;

  // The status quo at the same moment: no published table exists, so the
  // query must first materialize one — replay the stream's clustering to the
  // watermark and finalize one-shot — before it can plan.
  const ClassifiedSample halted_sample = Truncate(sample, row.watermark, cheap);
  const auto on_demand_t0 = Clock::now();
  const IngestResult halted = focus::core::RunIngestClassified(halted_sample, params, options);
  const focus::core::QueryEngine halted_engine(&halted.index, &cheap, &gt);
  const focus::core::QueryResult on_demand_result = halted_engine.Query(cls, -1, {}, run.fps());
  row.on_demand_ms = MillisSince(on_demand_t0);
  row.latency_ratio = row.live_query_ms > 0.0 ? row.on_demand_ms / row.live_query_ms : 0.0;

  // Byte-identity: the snapshot answers exactly what halting at its watermark
  // and finalizing answers.
  row.identical = Fingerprint(latest->index) == Fingerprint(halted.index) &&
                  live_result.frame_runs == on_demand_result.frame_runs;
  return row;
}

}  // namespace

int main() {
  double duration_sec = 240.0;
  if (const char* env = std::getenv("FOCUS_BENCH_LIVE_SEC")) {
    duration_sec = std::atof(env);
  }
  constexpr int64_t kCadenceFrames = 256;

  focus::video::ClassCatalog catalog(17);
  focus::video::StreamProfile profile;
  if (!focus::video::FindProfile("auburn_c", &profile)) {
    std::fprintf(stderr, "FAIL: profile auburn_c missing\n");
    return 1;
  }
  focus::video::StreamRun run(&catalog, profile, duration_sec, 30.0, 11);
  focus::cnn::Cnn cheap(Params().model, &catalog);
  focus::cnn::Cnn gt(focus::cnn::GtCnnDesc(catalog.world_seed()), &catalog);
  const ClassifiedSample sample = focus::core::ClassifySample(run, cheap, Params().k);

  std::printf(
      "live query-over-ingest (%.0f s stream, snapshot every %lld sampled frames)\n"
      "%6s %3s %8s %9s %7s %10s %9s %8s %10s %11s %7s %6s %9s\n",
      duration_sec, static_cast<long long>(kCadenceFrames), "shards", "bg", "frames",
      "watermark", "epochs", "publish ms", "overhead", "reused", "live q ms", "on-demand",
      "ratio", "cand", "identical");

  std::vector<LiveQueryRow> rows;
  bool ok = true;
  const auto print_row = [](const LiveQueryRow& row) {
    std::printf(
        "%6d %3s %8lld %9lld %7lld %10.1f %8.1f%% %7.0f%% %10.3f %11.1f %6.1fx %6lld %9s\n",
        row.num_shards, row.background ? "yes" : "no",
        static_cast<long long>(row.stream_frames), static_cast<long long>(row.watermark),
        static_cast<long long>(row.epochs), row.publish_total_ms, 100.0 * row.publish_overhead,
        100.0 * row.entries_reused_frac, row.live_query_ms, row.on_demand_ms, row.latency_ratio,
        static_cast<long long>(row.candidate_clusters), row.identical ? "yes" : "NO");
  };
  // Warmup: first config otherwise pays one-time allocator/paging costs.
  RunConfig(run, sample, cheap, gt, 1, 0.5, kCadenceFrames, /*background=*/false);
  for (int num_shards : {1, 4}) {
    for (double fraction : {0.25, 0.5, 1.0}) {
      LiveQueryRow row = RunConfig(run, sample, cheap, gt, num_shards, fraction, kCadenceFrames,
                                   /*background=*/false);
      row.gated = fraction == 1.0;
      ok = ok && row.identical;
      print_row(row);
      rows.push_back(row);
    }
    // Background publication row: full-length stream only — the mode exists
    // to hide publication cost on long runs, and the short rows' ingest walls
    // are too small for a meaningful overhead ratio.
    LiveQueryRow bg =
        RunConfig(run, sample, cheap, gt, num_shards, 1.0, kCadenceFrames, /*background=*/true);
    bg.gated = true;
    ok = ok && bg.identical;
    print_row(bg);
    rows.push_back(bg);
  }

  // Hard ceiling, not just a tracked guardrail: with the builder thread doing
  // the assembly, the ingest thread's publication share (cut + stall) on the
  // sharded full-length rows must stay under 5% of ingest wall. The 1-shard
  // background row is exempt from the ceiling (the regression guardrail still
  // tracks it): sequential ingest advances faster than one index assembly per
  // epoch, so the bounded build queue backpressures by design — its overhead
  // is stall, not cut, and shrinking it would mean unbounded queue memory.
  for (const LiveQueryRow& r : rows) {
    if (r.background && r.gated && r.num_shards > 1 && r.publish_overhead >= 0.05) {
      std::fprintf(stderr, "FAIL: background publish_overhead %.2f%% >= 5%% (shards=%d)\n",
                   100.0 * r.publish_overhead, r.num_shards);
      ok = false;
    }
  }

  FILE* f = std::fopen("BENCH_live_query.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"live_query\",\n  \"live_query\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const LiveQueryRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"num_shards\": %d, \"background\": %s, \"gated\": %s, "
          "\"stream_frames\": %lld, \"watermark\": %lld, "
          "\"epochs\": %lld, \"ingest_ms\": %.3f, \"publish_total_ms\": %.3f, "
          "\"cut_total_ms\": %.3f, \"stall_total_ms\": %.3f, "
          "\"publish_overhead\": %.5f, \"entries_reused_frac\": %.4f, "
          "\"live_query_ms\": %.4f, \"on_demand_ms\": %.3f, \"latency_ratio\": %.2f, "
          "\"candidate_clusters\": %lld, \"identical\": %s}%s\n",
          r.num_shards, r.background ? "true" : "false", r.gated ? "true" : "false",
          static_cast<long long>(r.stream_frames), static_cast<long long>(r.watermark),
          static_cast<long long>(r.epochs), r.ingest_ms, r.publish_total_ms, r.cut_total_ms,
          r.stall_total_ms, r.publish_overhead,
          r.entries_reused_frac, r.live_query_ms, r.on_demand_ms, r.latency_ratio,
          static_cast<long long>(r.candidate_clusters), r.identical ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_live_query.json\n");
  }

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: live snapshot diverged from halt+finalize, or background "
                 "publication overhead exceeded its ceiling\n");
    return 1;
  }
  return 0;
}
