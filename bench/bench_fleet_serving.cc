// Fleet-scale serving (src/runtime/fleet_query_service.h, docs/fleet_serving.md):
// federated fan-out cost and latency vs fleet size, cold vs warm verdict cache.
//
// A region-wide investigation ("which cameras saw a truck?") fans one query out
// across the whole fleet. Executed per camera sequentially, every camera pays
// its own GT-CNN launches; the persistent service pools the per-camera work
// items into shared cost-aware launches (one model architecture per launch,
// heaviest first onto the least-loaded GPU) and answers repeats from the global
// verdict cache. This bench tracks, per fleet size (8 / 32 / 128 cameras):
//
//   - sequential_gpu_millis: the per-centroid cost of the sequential oracle,
//   - packed_gpu_millis: what the packed cold-cache execution actually charged,
//   - saving: 1 - packed/sequential (guardrail: >= 15% on the 32-camera row),
//   - cold/warm virtual latency and the warm execution's extra GPU time
//     (acceptance: a fully warm repeat pays zero),
//
// and verifies every packed/cached result stays byte-identical to the
// sequential oracle (`identical` flags, gated by check_bench_regression.py).
//
// Emits BENCH_fleet_serving.json next to the binary. Per-camera durations
// shrink as the fleet grows (the tracked quantities are ratios and stay
// duration-stable); FOCUS_BENCH_SEED varies the world.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/core/fleet.h"
#include "src/runtime/fleet_query_service.h"
#include "src/video/stream_profile.h"

namespace {

using focus::bench::BenchConfig;
using focus::bench::ConfigFromEnv;
using focus::core::FederatedPlan;
using focus::core::FleetQueryResult;
using focus::core::FocusFleet;
using focus::core::FocusOptions;
using focus::runtime::FederatedExecution;
using focus::runtime::FleetQueryService;
using focus::runtime::FleetServiceStats;

const char* const kProfiles[] = {
    "auburn_c", "auburn_r", "bend",     "church_st", "city_a_d", "city_a_r", "cnn",
    "foxnews",  "jacksonh", "lausanne", "msnbc",     "oxford",   "sittard",
};

struct FleetRow {
  int cameras = 0;
  double duration_sec = 0.0;
  long long work_items = 0;
  double sequential_gpu_millis = 0.0;
  double packed_gpu_millis = 0.0;
  double saving = 0.0;
  long long launches = 0;
  double cold_latency_millis = 0.0;
  double warm_latency_millis = 0.0;
  double warm_extra_gpu_millis = 0.0;
  double cache_hit_rate = 0.0;
  bool identical = true;
};

bool SameFleetResult(const FleetQueryResult& a, const FleetQueryResult& b) {
  if (a.queried != b.queried || a.total_frames != b.total_frames ||
      a.total_centroids_classified != b.total_centroids_classified ||
      a.total_gpu_millis != b.total_gpu_millis || a.hits.size() != b.hits.size()) {
    return false;
  }
  for (size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].camera != b.hits[i].camera ||
        a.hits[i].result.frame_runs != b.hits[i].result.frame_runs ||
        a.hits[i].result.frames_returned != b.hits[i].result.frames_returned ||
        a.hits[i].result.clusters_matched != b.hits[i].result.clusters_matched ||
        a.hits[i].result.centroids_classified != b.hits[i].result.centroids_classified ||
        a.hits[i].result.gpu_millis != b.hits[i].result.gpu_millis) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const BenchConfig config = ConfigFromEnv();
  const focus::video::ClassCatalog catalog(config.world_seed);

  // Per-camera duration shrinks as the fleet grows: the row cost stays
  // tractable and the tracked quantities are ratios over the same plan.
  const struct {
    int cameras;
    double duration_sec;
  } sizes[] = {{8, 90.0}, {32, 45.0}, {128, 20.0}};
  constexpr int kGuardrailCameras = 32;  // The acceptance row.

  std::printf("federated fleet serving: packed/cached vs per-camera sequential\n");
  std::printf("%8s %8s %6s %14s %12s %8s %10s %12s %12s %10s\n", "cameras", "dur_s",
              "work", "seq_gpu_ms", "packed_ms", "saving", "launches", "cold_lat_ms",
              "warm_lat_ms", "identical");

  std::vector<FleetRow> rows;
  bool all_identical = true;
  bool guardrail_ok = true;
  for (const auto& size : sizes) {
    FocusFleet fleet;
    FocusOptions options;
    // Deterministic fill: cycle (profile, seed) combos, skipping the rare
    // short-sample combos the tuner rejects, until the fleet is full.
    int added = 0;
    for (int attempt = 0; added < size.cameras && attempt < 4 * size.cameras; ++attempt) {
      focus::video::StreamProfile profile;
      if (!focus::video::FindProfile(kProfiles[attempt % std::size(kProfiles)], &profile)) {
        std::fprintf(stderr, "missing stream profile\n");
        return 1;
      }
      if (fleet
              .AddCamera("cam" + std::to_string(added), &catalog, profile,
                         size.duration_sec, config.fps,
                         config.stream_seed_base + static_cast<uint64_t>(attempt), options)
              .ok()) {
        ++added;
      }
    }
    if (added < size.cameras) {
      std::fprintf(stderr, "only %d of %d cameras tuned\n", added, size.cameras);
      return 1;
    }

    // The fleet-wide investigation class: among the dominant GT classes of the
    // first cameras, the one with the widest federated fan-out.
    focus::common::ClassId queried = focus::common::kInvalidClass;
    long long widest = 0;
    for (int i = 0; i < 4; ++i) {
      const auto* stream = fleet.Find("cam" + std::to_string(i));
      focus::cnn::SegmentGroundTruth truth(stream->run(), stream->gt_cnn());
      for (focus::common::ClassId cls : truth.DominantClasses(0.95, 3)) {
        auto candidate = fleet.PlanFederated(cls);
        if (candidate.ok() && candidate->TotalWorkItems() > widest) {
          widest = candidate->TotalWorkItems();
          queried = cls;
        }
      }
    }
    if (widest == 0) {
      std::fprintf(stderr, "no queryable class fans out across the fleet\n");
      return 1;
    }
    auto plan_or = fleet.PlanFederated(queried);
    if (!plan_or.ok()) {
      std::fprintf(stderr, "PlanFederated failed: %s\n", plan_or.error().message.c_str());
      return 1;
    }
    const FederatedPlan& plan = *plan_or;
    const FleetQueryResult sequential = fleet.ExecuteFederatedSequential(plan);

    FleetQueryService service;
    const FederatedExecution cold = service.ExecuteFederated(plan);
    const FleetServiceStats cold_stats = service.stats();
    const FederatedExecution warm = service.ExecuteFederated(plan);
    const FleetServiceStats warm_stats = service.stats();

    FleetRow row;
    row.cameras = size.cameras;
    row.duration_sec = size.duration_sec;
    row.work_items = plan.TotalWorkItems();
    row.sequential_gpu_millis = sequential.total_gpu_millis;
    row.packed_gpu_millis = cold_stats.gpu_millis;
    row.saving = row.sequential_gpu_millis > 0.0
                     ? 1.0 - row.packed_gpu_millis / row.sequential_gpu_millis
                     : 0.0;
    row.launches = cold_stats.launches;
    row.cold_latency_millis = cold.latency_millis();
    row.warm_latency_millis = warm.latency_millis();
    row.warm_extra_gpu_millis = warm_stats.gpu_millis - cold_stats.gpu_millis;
    row.cache_hit_rate = warm_stats.CacheHitRate();
    row.identical = !cold.error.has_value() && !warm.error.has_value() &&
                    SameFleetResult(cold.result, sequential) &&
                    SameFleetResult(warm.result, sequential) &&
                    row.warm_extra_gpu_millis == 0.0;
    all_identical = all_identical && row.identical;
    if (row.cameras == kGuardrailCameras && row.saving < 0.15) {
      guardrail_ok = false;
    }

    std::printf("%8d %8.0f %6lld %14.1f %12.1f %7.1f%% %10lld %12.1f %12.1f %10s\n",
                row.cameras, row.duration_sec, row.work_items, row.sequential_gpu_millis,
                row.packed_gpu_millis, 100.0 * row.saving, row.launches,
                row.cold_latency_millis, row.warm_latency_millis,
                row.identical ? "yes" : "NO");
    rows.push_back(row);
  }

  FILE* f = std::fopen("BENCH_fleet_serving.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"fleet_serving\",\n  \"fleets\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const FleetRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"cameras\": %d, \"duration_sec\": %.0f, \"work_items\": %lld, "
          "\"sequential_gpu_millis\": %.1f, \"packed_gpu_millis\": %.1f, "
          "\"saving\": %.4f, \"launches\": %lld, \"cold_latency_millis\": %.1f, "
          "\"warm_latency_millis\": %.1f, \"warm_extra_gpu_millis\": %.1f, "
          "\"cache_hit_rate\": %.4f, \"identical\": %s}%s\n",
          r.cameras, r.duration_sec, r.work_items, r.sequential_gpu_millis,
          r.packed_gpu_millis, r.saving, r.launches, r.cold_latency_millis,
          r.warm_latency_millis, r.warm_extra_gpu_millis, r.cache_hit_rate,
          r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_fleet_serving.json\n");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: packed/cached execution diverges from the sequential oracle\n");
    return 1;
  }
  if (!guardrail_ok) {
    std::fprintf(stderr, "FAIL: packed launches saved < 15%% on the %d-camera row\n",
                 kGuardrailCameras);
    return 1;
  }
  return 0;
}
