// Unit tests for the CNN substrate: cost model, accuracy model, inference simulator,
// compression, ground truth, and specialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/cnn/accuracy_model.h"
#include "src/cnn/cnn.h"
#include "src/cnn/compression.h"
#include "src/cnn/cost_model.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/cnn/specialization.h"
#include "src/video/stream_generator.h"

namespace focus::cnn {
namespace {

constexpr uint64_t kSeed = 42;

video::Detection MakeDetection(const video::ClassCatalog& catalog, common::ClassId cls,
                               common::ObjectId object, common::FrameIndex frame,
                               uint64_t seed = 99) {
  video::Detection d;
  d.frame = frame;
  d.object_id = object;
  d.true_class = cls;
  common::Pcg32 rng(common::DeriveSeed(seed, static_cast<uint64_t>(object)));
  d.appearance = common::PerturbedUnitVector(catalog.Archetype(cls), 0.25, rng);
  return d;
}

TEST(CostModelTest, GtCnnCostsOneUnit) {
  ModelDesc gt = GtCnnDesc(kSeed);
  EXPECT_NEAR(RelativeCost(gt), 1.0, 1e-9);
  EXPECT_NEAR(InferenceCostMillis(gt), kGtCnnUnitMillis, 1e-9);
}

TEST(CostModelTest, ResNet18IsEightTimesCheaper) {
  // §2.1: "ResNet18, which is a ResNet152 variant with only 18 layers is 8x cheaper".
  ModelDesc d;
  d.layers = 18;
  d.input_px = 224;
  EXPECT_NEAR(CheapnessFactor(d), 8.0, 0.5);
}

TEST(CostModelTest, InputRescalingShrinksCostQuadratically) {
  ModelDesc full;
  full.layers = 18;
  full.input_px = 224;
  ModelDesc half = RescaleInput(full, 112);
  // Without the fixed overhead the ratio would be exactly 4.
  double ratio = RelativeCost(full) / RelativeCost(half);
  EXPECT_GT(ratio, 2.8);
  EXPECT_LT(ratio, 4.0);
}

TEST(CostModelTest, FixedOverheadBoundsCheapness) {
  ModelDesc tiny;
  tiny.layers = 4;
  tiny.input_px = 28;
  EXPECT_LT(CheapnessFactor(tiny), 1.0 / kFixedOverheadShare);
}

TEST(AccuracyModelTest, CapacityMonotoneInDepthAndResolution) {
  ModelDesc big;
  big.layers = 152;
  big.input_px = 224;
  ModelDesc fewer_layers = big;
  fewer_layers.layers = 18;
  ModelDesc smaller_input = big;
  smaller_input.input_px = 56;
  EXPECT_GT(ModelCapacity(big), ModelCapacity(fewer_layers));
  EXPECT_GT(ModelCapacity(big), ModelCapacity(smaller_input));
}

TEST(AccuracyModelTest, SpecializationLowersDifficulty) {
  ModelDesc generic;
  generic.layers = 12;
  generic.input_px = 56;
  ModelDesc specialized = generic;
  specialized.classes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  specialized.has_other_class = true;
  specialized.training_variability = 0.5;
  EXPECT_LT(TaskDifficulty(specialized), TaskDifficulty(generic));
  EXPECT_GT(ComputeAccuracy(specialized).top1_accuracy, ComputeAccuracy(generic).top1_accuracy);
}

TEST(AccuracyModelTest, RecallAtKMonotoneAndBounded) {
  ModelDesc d;
  d.layers = 18;
  d.input_px = 224;
  AccuracyParams p = ComputeAccuracy(d);
  double prev = 0.0;
  for (int k : {1, 2, 5, 10, 50, 100, 500, 1000}) {
    double r = RecallAtK(p, k, 1000);
    EXPECT_GE(r, prev);
    EXPECT_LE(r, 1.0);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(RecallAtK(p, 1000, 1000), 1.0);
  EXPECT_NEAR(RecallAtK(p, 1, 1000), p.top1_accuracy, 1e-12);
}

TEST(AccuracyModelTest, Figure5AnchorsReproduce) {
  // The three generic cheap CNNs reach high recall only at large K, ordered by cost:
  // the cheaper the model, the larger the K needed (Fig. 5).
  auto zoo = GenericCheapCandidates(kSeed);
  ASSERT_GE(zoo.size(), 3u);
  AccuracyParams c1 = ComputeAccuracy(zoo[0]);  // ~8x cheaper.
  AccuracyParams c2 = ComputeAccuracy(zoo[1]);  // ~28x.
  AccuracyParams c3 = ComputeAccuracy(zoo[2]);  // ~58x.
  EXPECT_GT(RecallAtK(c1, 60, 1000), 0.85);
  EXPECT_GT(RecallAtK(c2, 100, 1000), 0.85);
  EXPECT_GT(RecallAtK(c3, 200, 1000), 0.85);
  // Same K, cheaper model -> lower recall.
  for (int k : {10, 20, 60, 100}) {
    EXPECT_GT(RecallAtK(c1, k, 1000), RecallAtK(c2, k, 1000));
    EXPECT_GT(RecallAtK(c2, k, 1000), RecallAtK(c3, k, 1000));
  }
}

TEST(AccuracyModelTest, SampledRankMatchesAnalyticRecall) {
  ModelDesc d;
  d.layers = 15;
  d.input_px = 112;
  AccuracyParams p = ComputeAccuracy(d);
  common::Pcg32 rng(123);
  constexpr int kDraws = 200000;
  for (int k : {1, 10, 60, 200}) {
    int hits = 0;
    common::Pcg32 local(k * 7919 + 1);
    for (int i = 0; i < kDraws; ++i) {
      if (SampleRank(p, 1000, local) <= k) {
        ++hits;
      }
    }
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, RecallAtK(p, k, 1000), 0.01) << "K=" << k;
  }
}

TEST(CompressionTest, TransformsFloorAndRename) {
  ModelDesc base;
  base.name = "resnet18";
  base.layers = 18;
  base.input_px = 224;
  ModelDesc cut = RemoveLayers(base, 30);
  EXPECT_EQ(cut.layers, 4);  // Floored.
  ModelDesc small = RescaleInput(base, 8);
  EXPECT_EQ(small.input_px, 28);  // Floored.
  ModelDesc both = Compress(base, 3, 112);
  EXPECT_EQ(both.layers, 15);
  EXPECT_EQ(both.input_px, 112);
  EXPECT_NE(both.name, base.name);
  EXPECT_NE(both.weights_seed, base.weights_seed);
  EXPECT_LT(RelativeCost(both), RelativeCost(base));
}

class CnnTest : public ::testing::Test {
 protected:
  CnnTest() : catalog_(kSeed), gt_(GtCnnDesc(kSeed), &catalog_) {}
  video::ClassCatalog catalog_;
  Cnn gt_;
};

TEST_F(CnnTest, ClassifyIsDeterministic) {
  video::Detection d = MakeDetection(catalog_, 0, 1, 100);
  TopKResult a = gt_.Classify(d, 5);
  TopKResult b = gt_.Classify(d, 5);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].first, b.entries[i].first);
  }
}

TEST_F(CnnTest, TopKEntriesAreDistinctAndConfidencesDecay) {
  video::Detection d = MakeDetection(catalog_, 3, 2, 7);
  TopKResult r = gt_.Classify(d, 20);
  ASSERT_EQ(r.entries.size(), 20u);
  std::set<common::ClassId> seen;
  float prev_conf = 2.0f;
  for (const auto& [cls, conf] : r.entries) {
    EXPECT_TRUE(seen.insert(cls).second) << "duplicate class in top-K";
    EXPECT_LT(conf, prev_conf);
    prev_conf = conf;
  }
}

TEST_F(CnnTest, GtCnnIsHighlyAccurate) {
  int correct = 0;
  constexpr int kObjects = 2000;
  for (int i = 0; i < kObjects; ++i) {
    video::Detection d = MakeDetection(catalog_, i % 100, i, 0);
    if (gt_.Top1(d) == d.true_class) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / kObjects, 0.93);
}

TEST_F(CnnTest, Top1AgreesWithClassify) {
  for (int i = 0; i < 200; ++i) {
    video::Detection d = MakeDetection(catalog_, i % 40, 1000 + i, i);
    EXPECT_EQ(gt_.Top1(d), gt_.Classify(d, 3).Top1());
  }
}

TEST_F(CnnTest, CheapModelRecallImprovesWithK) {
  auto zoo = GenericCheapCandidates(kSeed);
  Cnn cheap(zoo[2], &catalog_);  // The cheapest Figure 5 model.
  constexpr int kObjects = 3000;
  std::map<int, int> hits;
  for (int i = 0; i < kObjects; ++i) {
    video::Detection d = MakeDetection(catalog_, i % 50, i, 0);
    int rank = cheap.TrueClassRank(d);
    for (int k : {10, 60, 200}) {
      if (rank <= k) {
        ++hits[k];
      }
    }
  }
  EXPECT_LT(hits[10], hits[60]);
  EXPECT_LT(hits[60], hits[200]);
  EXPECT_GT(static_cast<double>(hits[200]) / kObjects, 0.85);
}

TEST_F(CnnTest, FeatureVectorsClusterByObjectAndClass) {
  // §2.2.3: nearest neighbor by cheap-CNN features is nearly always the same class.
  auto zoo = GenericCheapCandidates(kSeed);
  Cnn cheap(zoo[0], &catalog_);
  video::Detection obj_a0 = MakeDetection(catalog_, 0, 1, 10);
  video::Detection obj_a1 = MakeDetection(catalog_, 0, 1, 11);  // Same object, next frame.
  video::Detection obj_b = MakeDetection(catalog_, 0, 2, 10);   // Same class, other object.
  video::Detection obj_c = MakeDetection(catalog_, 500, 3, 10); // Different class.
  auto fa0 = cheap.ExtractFeature(obj_a0);
  auto fa1 = cheap.ExtractFeature(obj_a1);
  auto fb = cheap.ExtractFeature(obj_b);
  auto fc = cheap.ExtractFeature(obj_c);
  double same_object = common::L2Distance(fa0, fa1);
  double same_class = common::L2Distance(fa0, fb);
  double cross_class = common::L2Distance(fa0, fc);
  EXPECT_LT(same_object, same_class);
  EXPECT_LT(same_class, cross_class);
}

TEST_F(CnnTest, SpecializedModelMapsUnknownToOther) {
  ModelDesc spec;
  spec.layers = 12;
  spec.input_px = 56;
  spec.classes = {0, 1, 2};
  spec.has_other_class = true;
  spec.training_variability = 0.5;
  spec.weights_seed = 7;
  Cnn cnn(spec, &catalog_);
  EXPECT_EQ(cnn.MapTrueLabel(1), 1);
  EXPECT_EQ(cnn.MapTrueLabel(999), kOtherClass);
  EXPECT_EQ(cnn.label_space_size(), 4);

  // A detection of an unknown class classifies as OTHER with decent probability.
  int other = 0;
  for (int i = 0; i < 500; ++i) {
    video::Detection d = MakeDetection(catalog_, 900, 5000 + i, 0);
    if (cnn.Top1(d) == kOtherClass) {
      ++other;
    }
  }
  EXPECT_GT(other, 250);
}

TEST(GroundTruthTest, SegmentRuleFiltersFlicker) {
  video::ClassCatalog catalog(kSeed);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 180.0, 30.0, 3);
  Cnn gt(GtCnnDesc(kSeed), &catalog);
  SegmentGroundTruth truth(run, gt);
  EXPECT_GT(truth.total_detections(), 0);
  EXPECT_EQ(truth.num_segments(), 180);
  // Dominant classes exist and are ordered by frequency.
  auto dominant = truth.DominantClasses(0.95, 10);
  ASSERT_FALSE(dominant.empty());
  auto counts = truth.objects_per_class();
  for (size_t i = 1; i < dominant.size(); ++i) {
    EXPECT_GE(counts[dominant[i - 1]], counts[dominant[i]]);
  }
  // Segments of the top class are a plausible subset.
  const auto& segs = truth.SegmentsWithClass(dominant[0]);
  EXPECT_GT(segs.size(), 0u);
  EXPECT_LE(static_cast<int64_t>(segs.size()), truth.num_segments());
}

TEST(SpecializationTest, DistributionEstimateFindsDominantClasses) {
  video::ClassCatalog catalog(kSeed);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("bend", &profile));  // Heavily dominated stream.
  video::StreamRun run(&catalog, profile, 600.0, 30.0, 3);
  Cnn gt(GtCnnDesc(kSeed), &catalog);
  ClassDistributionEstimate est = EstimateClassDistribution(run, gt, 600.0, 5);
  ASSERT_GT(est.total_objects, 0);
  EXPECT_GT(est.gpu_cost_millis, 0.0);
  // Top classes cover the bulk of objects (power law, §2.2.2).
  EXPECT_GT(est.CoverageOfTop(30), 0.8);
  auto top = est.TopClasses(5);
  ASSERT_EQ(top.size(), 5u);
  // Top-1 estimated class should be the stream's actual most popular class.
  EXPECT_EQ(top[0], run.classes_by_popularity()[0]);
}

TEST(SpecializationTest, TrainedModelIsCheapAndAccurate) {
  video::ClassCatalog catalog(kSeed);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("sittard", &profile));
  video::StreamRun run(&catalog, profile, 600.0, 30.0, 3);
  Cnn gt(GtCnnDesc(kSeed), &catalog);
  ClassDistributionEstimate est = EstimateClassDistribution(run, gt, 600.0, 5);
  SpecializationOptions opts;
  opts.ls = 20;
  opts.layers = 15;
  opts.input_px = 112;
  ModelDesc spec = TrainSpecializedModel(est, opts, profile.appearance_variability, kSeed);
  EXPECT_TRUE(spec.specialized());
  EXPECT_TRUE(spec.has_other_class);
  // Ls caps the class count; a quiet stream may have fewer distinct classes.
  EXPECT_LE(spec.classes.size(), 20u);
  EXPECT_GE(spec.classes.size(), 5u);
  // §6.3: specialized models are 7x-71x cheaper than the GT-CNN... our grid spans
  // roughly that band (the smallest models exceed it slightly).
  EXPECT_GT(CheapnessFactor(spec), 7.0);
  // §4.3: small K suffices for high recall.
  AccuracyParams p = ComputeAccuracy(spec);
  EXPECT_GT(RecallAtK(p, 4, spec.label_space_size()), 0.9);
}

TEST(ModelZooTest, CandidatesSpanCostRange) {
  auto zoo = GenericCheapCandidates(kSeed);
  ASSERT_GE(zoo.size(), 3u);
  EXPECT_NEAR(CheapnessFactor(zoo[0]), 8.0, 1.0);
  EXPECT_NEAR(CheapnessFactor(zoo[1]), 28.0, 6.0);
  EXPECT_NEAR(CheapnessFactor(zoo[2]), 58.0, 15.0);
  // Distinct weight seeds (independently trained networks).
  std::set<uint64_t> seeds;
  for (const auto& m : zoo) {
    seeds.insert(m.weights_seed);
  }
  EXPECT_EQ(seeds.size(), zoo.size());
}

}  // namespace
}  // namespace focus::cnn
