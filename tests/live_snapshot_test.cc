// Windowed streaming finalize / live query-over-ingest tests
// (src/core/live_snapshot.h, docs/live_query.md).
//
// The load-bearing property: querying published snapshot epoch e is
// byte-identical to halting ingest at e's frame watermark (with the same
// options) and running the old one-shot finalize. Held here over random
// streams, random cadences, shard counts, both clusterer modes, the streaming
// and classified-replay pipelines, the crash-resume path, and the server's
// QUERY verb on a live stream.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/common/rng.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/query_service.h"
#include "src/server/query_server.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

namespace fs = std::filesystem;

IngestParams Params() {
  IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

// The halted-run counterpart of a live snapshot: the classified sample cut at
// the snapshot's watermark, with the classification counters recomputed for
// the prefix (frame order makes the cut exact; reuse decisions depend only on
// the prefix, so this equals classifying the halted stream directly).
ClassifiedSample Truncate(const ClassifiedSample& sample, common::FrameIndex watermark,
                          const cnn::Cnn& cheap) {
  ClassifiedSample out;
  out.k = sample.k;
  out.fps = sample.fps;
  for (const ClassifiedDetection& d : sample.detections) {
    if (d.detection.frame >= watermark) {
      break;
    }
    if (d.reused) {
      ++out.suppressed;
    } else {
      ++out.cnn_invocations;
      out.gpu_millis += cheap.inference_cost_millis();
    }
    out.detections.push_back(d);
  }
  return out;
}

void ExpectSameIndex(const index::TopKIndex& a, const index::TopKIndex& b) {
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  for (size_t i = 0; i < a.num_clusters(); ++i) {
    const index::ClusterEntry& ea = a.clusters()[i];
    const index::ClusterEntry& eb = b.clusters()[i];
    EXPECT_EQ(ea.cluster_id, eb.cluster_id);
    EXPECT_EQ(ea.size, eb.size);
    EXPECT_EQ(ea.topk_classes, eb.topk_classes);
    EXPECT_EQ(ea.topk_ranks, eb.topk_ranks);
    EXPECT_EQ(ea.representative.object_id, eb.representative.object_id);
    EXPECT_EQ(ea.representative.frame, eb.representative.frame);
    ASSERT_EQ(ea.members.size(), eb.members.size()) << "cluster " << i;
    for (size_t m = 0; m < ea.members.size(); ++m) {
      EXPECT_EQ(ea.members[m].object, eb.members[m].object);
      EXPECT_EQ(ea.members[m].first_frame, eb.members[m].first_frame);
      EXPECT_EQ(ea.members[m].last_frame, eb.members[m].last_frame);
    }
  }
}

TEST(SnapshotSlotTest, PublishStampsMonotoneEpochsAndSwapsLatest) {
  SnapshotSlot slot;
  EXPECT_EQ(slot.Latest(), nullptr);
  auto first = slot.Publish(std::make_unique<LiveSnapshot>());
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(slot.Latest(), first);

  auto snap = std::make_unique<LiveSnapshot>();
  snap->watermark = 128;
  auto second = slot.Publish(std::move(snap));
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(second->watermark, 128);
  EXPECT_EQ(slot.Latest(), second);
  // The old epoch stays alive through its own reference (RCU).
  EXPECT_EQ(first->epoch, 1u);
}

// The core property, over random streams and random finalize_every_frames:
// every published epoch's index is byte-identical to halting ingest at its
// watermark (same options) and finalizing one-shot — across shard counts and
// clusterer modes, through the classified-replay pipeline.
TEST(LiveSnapshotPropertyTest, SnapshotEqualsHaltAndFinalize) {
  video::ClassCatalog catalog(23);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);

  common::Pcg32 rng(0xF1A5);
  int epochs_checked = 0;
  for (int num_shards : {1, 2, 4}) {
    for (auto mode :
         {cluster::ClustererOptions::Mode::kExact, cluster::ClustererOptions::Mode::kFast}) {
      const uint64_t seed = 100 + rng.Next() % 1000;
      video::StreamRun run(&catalog, profile, /*duration_sec=*/20.0, /*fps=*/30.0, seed);
      const ClassifiedSample sample = ClassifySample(run, cheap, params.k);

      IngestOptions options;
      options.num_shards = num_shards;
      options.cluster_mode = mode;
      options.shard_merge_interval = 500 + rng.Next() % 1000;
      options.finalize_every_frames = 40 + static_cast<int64_t>(rng.Next() % 200);
      SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                   " mode=" + std::to_string(static_cast<int>(mode)) +
                   " every=" + std::to_string(options.finalize_every_frames) +
                   " seed=" + std::to_string(seed));

      std::vector<std::shared_ptr<const LiveSnapshot>> snapshots;
      IngestOptions live = options;
      live.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
        snapshots.push_back(std::move(snap));
      };
      const IngestResult full = RunIngestClassified(sample, params, live);
      ASSERT_FALSE(snapshots.empty());

      uint64_t last_epoch = 0;
      for (const auto& snap : snapshots) {
        EXPECT_EQ(snap->epoch, last_epoch + 1);  // Dense, monotone epochs.
        last_epoch = snap->epoch;
        EXPECT_EQ(snap->watermark % options.finalize_every_frames, 0);
        EXPECT_EQ(snap->stats.entries_reused + snap->stats.entries_rebuilt,
                  snap->num_clusters);

        // Halt at the watermark and finalize the old one-shot way (same
        // options — the cadence is part of the clustering semantics).
        const ClassifiedSample halted_sample = Truncate(sample, snap->watermark, cheap);
        const IngestResult halted = RunIngestClassified(halted_sample, params, options);
        EXPECT_EQ(snap->detections, halted.detections);
        ExpectSameIndex(snap->index, halted.index);
        ++epochs_checked;
      }
      // Attaching a consumer never changes the stream's final result.
      const IngestResult without_sink = RunIngestClassified(sample, params, options);
      EXPECT_EQ(full.detections, without_sink.detections);
      ExpectSameIndex(full.index, without_sink.index);
    }
  }
  EXPECT_GT(epochs_checked, 20);
}

// Same property through the volatile *streaming* path (per-frame cadence,
// including windows with no detections): RunIngest at one shard publishes
// sequentially; every epoch equals the truncated replay's one-shot finalize.
TEST(LiveSnapshotPropertyTest, StreamingSequentialSnapshotsMatchHaltedReplay) {
  video::ClassCatalog catalog(29);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  video::StreamRun run(&catalog, profile, /*duration_sec=*/15.0, /*fps=*/30.0, 5);
  const ClassifiedSample sample = ClassifySample(run, cheap, params.k);

  IngestOptions options;
  options.finalize_every_frames = 75;
  std::vector<std::shared_ptr<const LiveSnapshot>> snapshots;
  IngestOptions live = options;
  live.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
    snapshots.push_back(std::move(snap));
  };
  RunIngest(run, cheap, params, live);
  ASSERT_GE(snapshots.size(), 4u);
  for (const auto& snap : snapshots) {
    EXPECT_DOUBLE_EQ(snap->fps, run.fps());
    const IngestResult halted =
        RunIngestClassified(Truncate(sample, snap->watermark, cheap), params, options);
    EXPECT_EQ(snap->detections, halted.detections);
    ExpectSameIndex(snap->index, halted.index);
  }
}

// Crash-resume: a resumed persistent run re-publishes epochs from live state
// past its recovery point, and they are byte-identical to the uninterrupted
// run's snapshots at the same watermarks.
TEST(LiveSnapshotPropertyTest, ResumableSnapshotsMatchUninterrupted) {
  video::ClassCatalog catalog(31);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  video::StreamRun run(&catalog, profile, /*duration_sec=*/20.0, /*fps=*/30.0, 9);

  const fs::path dir = fs::temp_directory_path() /
                       ("live_snap_resume_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  for (int num_shards : {1, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    IngestOptions options;
    options.num_shards = num_shards;
    options.finalize_every_frames = 90;
    options.checkpoint_every_frames = 64;

    std::vector<std::shared_ptr<const LiveSnapshot>> uninterrupted;
    IngestOptions a = options;
    a.persist_dir = (dir / ("u" + std::to_string(num_shards))).string();
    a.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      uninterrupted.push_back(std::move(snap));
    };
    const IngestResult full = RunIngestResumable(run, cheap, params, a);
    ASSERT_GE(uninterrupted.size(), 4u);

    IngestOptions b = options;
    b.persist_dir = (dir / ("c" + std::to_string(num_shards))).string();
    b.crash_after_frames = run.num_frames() / 2;
    RunIngestResumable(run, cheap, params, b);

    std::vector<std::shared_ptr<const LiveSnapshot>> resumed;
    b.crash_after_frames = -1;
    b.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      resumed.push_back(std::move(snap));
    };
    const IngestResult after = RunIngestResumable(run, cheap, params, b);
    EXPECT_GT(after.resumed_from_frame, 0);
    ASSERT_FALSE(resumed.empty());
    ExpectSameIndex(after.index, full.index);

    // Epoch numbering restarts per process/run (snapshots are volatile), but
    // every resumed watermark's table matches the uninterrupted run's.
    for (const auto& snap : resumed) {
      const auto match =
          std::find_if(uninterrupted.begin(), uninterrupted.end(),
                       [&](const auto& u) { return u->watermark == snap->watermark; });
      ASSERT_NE(match, uninterrupted.end()) << "watermark " << snap->watermark;
      EXPECT_EQ(snap->detections, (*match)->detections);
      ExpectSameIndex(snap->index, (*match)->index);
    }
  }
  fs::remove_all(dir);
}

// The tentpole property for background publication: with the snapshot builder
// on its own thread and boundary merges incremental, every published epoch is
// STILL byte-identical to halting ingest at its watermark and finalizing
// one-shot — and the background run's snapshot sequence is byte-identical to
// the synchronous run's (the builder assembles from a copied cut; threading
// moves work, never content).
TEST(LiveSnapshotPropertyTest, BackgroundIncrementalSnapshotsEqualHaltAndFinalize) {
  video::ClassCatalog catalog(47);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);

  common::Pcg32 rng(0xBB51);
  int epochs_checked = 0;
  for (int num_shards : {1, 2, 4}) {
    const uint64_t seed = 100 + rng.Next() % 1000;
    video::StreamRun run(&catalog, profile, /*duration_sec=*/20.0, /*fps=*/30.0, seed);
    const ClassifiedSample sample = ClassifySample(run, cheap, params.k);

    IngestOptions options;
    options.num_shards = num_shards;
    options.finalize_every_frames = 40 + static_cast<int64_t>(rng.Next() % 100);
    options.incremental_boundary_merge = true;
    SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                 " every=" + std::to_string(options.finalize_every_frames) +
                 " seed=" + std::to_string(seed));

    std::vector<std::shared_ptr<const LiveSnapshot>> background;
    IngestOptions bg = options;
    bg.background_publish = true;
    bg.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      background.push_back(std::move(snap));  // Builder thread; read post-run.
    };
    const IngestResult full_bg = RunIngestClassified(sample, params, bg);
    ASSERT_FALSE(background.empty());

    std::vector<std::shared_ptr<const LiveSnapshot>> sync;
    IngestOptions sy = options;
    sy.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      sync.push_back(std::move(snap));
    };
    const IngestResult full_sync = RunIngestClassified(sample, params, sy);

    // Background vs synchronous: the same dense epochs, byte-identical.
    ASSERT_EQ(background.size(), sync.size());
    for (size_t i = 0; i < background.size(); ++i) {
      EXPECT_EQ(background[i]->epoch, sync[i]->epoch);
      EXPECT_EQ(background[i]->epoch, i + 1);
      EXPECT_EQ(background[i]->watermark, sync[i]->watermark);
      EXPECT_EQ(background[i]->detections, sync[i]->detections);
      EXPECT_EQ(background[i]->stats.entries_reused, sync[i]->stats.entries_reused);
      EXPECT_EQ(background[i]->stats.entries_rebuilt, sync[i]->stats.entries_rebuilt);
      ExpectSameIndex(background[i]->index, sync[i]->index);
    }
    ExpectSameIndex(full_bg.index, full_sync.index);

    // Each background epoch ≡ halting at its watermark (same options) and
    // finalizing one-shot.
    for (const auto& snap : background) {
      const IngestResult halted =
          RunIngestClassified(Truncate(sample, snap->watermark, cheap), params, options);
      EXPECT_EQ(snap->detections, halted.detections);
      ExpectSameIndex(snap->index, halted.index);
      ++epochs_checked;
    }
  }
  EXPECT_GT(epochs_checked, 10);
}

// Crash-resume under background builds: the builder is flushed before every
// durable checkpoint (publish-before-cut ordering), so a crashed and resumed
// persistent run with background publication and incremental boundary merges
// re-publishes epochs byte-identical to the uninterrupted run's at the same
// watermarks, across shard counts.
TEST(LiveSnapshotPropertyTest, BackgroundResumableSnapshotsMatchUninterrupted) {
  video::ClassCatalog catalog(53);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  video::StreamRun run(&catalog, profile, /*duration_sec=*/20.0, /*fps=*/30.0, 11);

  const fs::path dir = fs::temp_directory_path() /
                       ("live_snap_bg_resume_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  for (int num_shards : {1, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    IngestOptions options;
    options.num_shards = num_shards;
    options.finalize_every_frames = 90;
    options.checkpoint_every_frames = 64;
    options.background_publish = true;
    options.incremental_boundary_merge = true;

    std::vector<std::shared_ptr<const LiveSnapshot>> uninterrupted;
    IngestOptions a = options;
    a.persist_dir = (dir / ("u" + std::to_string(num_shards))).string();
    a.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      uninterrupted.push_back(std::move(snap));
    };
    const IngestResult full = RunIngestResumable(run, cheap, params, a);
    ASSERT_GE(uninterrupted.size(), 4u);

    IngestOptions b = options;
    b.persist_dir = (dir / ("c" + std::to_string(num_shards))).string();
    b.crash_after_frames = run.num_frames() / 2;
    RunIngestResumable(run, cheap, params, b);

    std::vector<std::shared_ptr<const LiveSnapshot>> resumed;
    b.crash_after_frames = -1;
    b.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      resumed.push_back(std::move(snap));
    };
    const IngestResult after = RunIngestResumable(run, cheap, params, b);
    EXPECT_GT(after.resumed_from_frame, 0);
    ASSERT_FALSE(resumed.empty());
    ExpectSameIndex(after.index, full.index);

    for (const auto& snap : resumed) {
      const auto match =
          std::find_if(uninterrupted.begin(), uninterrupted.end(),
                       [&](const auto& u) { return u->watermark == snap->watermark; });
      ASSERT_NE(match, uninterrupted.end()) << "watermark " << snap->watermark;
      EXPECT_EQ(snap->detections, (*match)->detections);
      ExpectSameIndex(snap->index, (*match)->index);
    }
  }
  fs::remove_all(dir);
}

// Delta build accounting: entries of canonical clusters untouched between
// epochs are carried forward, and on a stream whose objects exit the scene the
// reuse is the common case by the tail of the run.
TEST(LiveSnapshotTest, DeltaBuildReusesUnchangedEntries) {
  video::ClassCatalog catalog(37);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  video::StreamRun run(&catalog, profile, /*duration_sec=*/30.0, /*fps=*/30.0, 13);

  for (int num_shards : {1, 2}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    IngestOptions options;
    options.num_shards = num_shards;
    options.finalize_every_frames = 60;
    std::vector<std::shared_ptr<const LiveSnapshot>> snapshots;
    options.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
      snapshots.push_back(std::move(snap));
    };
    RunIngest(run, cheap, params, options);
    ASSERT_GE(snapshots.size(), 8u);
    EXPECT_EQ(snapshots.front()->stats.entries_reused, 0);  // Nothing precedes epoch 1.
    int64_t total_reused = 0;
    for (const auto& snap : snapshots) {
      EXPECT_EQ(snap->stats.entries_reused + snap->stats.entries_rebuilt,
                snap->num_clusters);
      total_reused += snap->stats.entries_reused;
    }
    // Objects exit the scene (finite dwell), so later epochs must carry
    // settled clusters forward instead of rebuilding the whole table.
    EXPECT_GT(total_reused, 0);
    EXPECT_GT(snapshots.back()->stats.entries_reused, 0);
  }
}

// Cross-query verdict sharing extends to snapshots: two concurrent requests
// against the same epoch classify each shared centroid once, and results are
// identical to the one-query execution.
TEST(LiveSnapshotTest, QueryServiceDedupsSnapshotRequests) {
  video::ClassCatalog catalog(41);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);
  video::StreamRun run(&catalog, profile, /*duration_sec=*/12.0, /*fps=*/30.0, 17);

  IngestOptions options;
  options.finalize_every_frames = 120;
  std::shared_ptr<const LiveSnapshot> latest;
  options.snapshot_sink = [&](std::shared_ptr<const LiveSnapshot> snap) {
    latest = std::move(snap);
  };
  RunIngest(run, cheap, params, options);
  ASSERT_NE(latest, nullptr);

  const common::ClassId cls = run.present_classes().front();
  runtime::QueryRequest request;
  request.cls = cls;
  request.snapshot = latest;
  request.ingest_cnn = &cheap;
  request.gt_cnn = &gt;
  request.fps = run.fps();

  runtime::QueryService service({.num_gpus = 4, .batch_size = 8});
  const auto executions = service.ExecuteConcurrently({request, request});
  const runtime::QueryBatchStats stats = service.last_stats();
  EXPECT_EQ(stats.work_items, 2 * stats.unique_items);
  EXPECT_EQ(stats.dedup_hits, stats.unique_items);
  ASSERT_EQ(executions.size(), 2u);
  EXPECT_EQ(executions[0].result.frame_runs, executions[1].result.frame_runs);

  // And the snapshot-target execution equals the plain engine over the
  // snapshot's index.
  const QueryResult direct = QueryEngine(latest.get(), &cheap, &gt)
                                 .Query(cls, -1, {}, run.fps());
  EXPECT_EQ(executions[0].result.frame_runs, direct.frame_runs);
  EXPECT_EQ(executions[0].result.frames_returned, direct.frames_returned);
}

// The server's QUERY verb over a live stream: answers come from the newest
// published epoch, carry EPOCH/WATERMARK, and the frame runs are
// byte-identical to halting ingest at that watermark and finalizing.
TEST(LiveSnapshotTest, ServerLiveQueryMatchesHaltedFinalize) {
  video::ClassCatalog catalog(43);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  const IngestParams params = Params();
  video::StreamRun run(&catalog, profile, /*duration_sec=*/15.0, /*fps=*/30.0, 19);

  runtime::IngestServiceOptions service_options;
  service_options.num_worker_threads = 2;
  service_options.finalize_every_frames = 64;
  runtime::IngestService ingest(service_options);
  runtime::IngestJob job;
  job.name = "gate";
  job.run = &run;
  job.params = params;
  job.options.num_shards = 2;
  ingest.AddStream(job);
  EXPECT_EQ(ingest.LatestSnapshot("gate"), nullptr);  // Nothing published yet.
  ingest.RunAll();

  const auto snapshot = ingest.LatestSnapshot("gate");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->watermark % 64, 0);

  core::FocusFleet fleet;  // Empty: "gate" resolves through the live service.
  server::QueryServer server(&fleet, &catalog, nullptr, {}, &ingest);

  const common::ClassId cls = run.present_classes().front();
  const std::string response =
      server.HandleLine("QUERY gate " + catalog.Name(cls));
  ASSERT_EQ(response.rfind("OK LIVE EPOCH ", 0), 0u) << response;
  EXPECT_NE(response.find("WATERMARK " + std::to_string(snapshot->watermark)),
            std::string::npos);

  // Reference: halt at the watermark (same options the service ran with) and
  // finalize one-shot, then query with the live context's models.
  const runtime::LiveStreamContext* context = ingest.LiveContext("gate");
  ASSERT_NE(context, nullptr);
  core::IngestOptions halted_options = job.options;
  halted_options.finalize_every_frames = 64;
  const ClassifiedSample sample =
      ClassifySample(run, *context->ingest_cnn, params.k);
  const IngestResult halted = RunIngestClassified(
      Truncate(sample, snapshot->watermark, *context->ingest_cnn), params, halted_options);
  const QueryResult expected =
      QueryEngine(&halted.index, context->ingest_cnn.get(), context->gt_cnn.get())
          .Query(cls, -1, {}, run.fps());

  std::string expected_runs;
  for (const auto& [first, last] : expected.frame_runs) {
    expected_runs += "\nRUN " + std::to_string(first) + " " + std::to_string(last);
  }
  const size_t runs_pos = response.find("\nRUN");
  const std::string actual_runs =
      runs_pos == std::string::npos ? "" : response.substr(runs_pos);
  EXPECT_EQ(actual_runs, expected_runs);
  // Unknown cameras still fail cleanly with a live service attached.
  EXPECT_EQ(server.HandleLine("QUERY nowhere car").rfind("ERR", 0), 0u);
}

}  // namespace
}  // namespace focus::core
