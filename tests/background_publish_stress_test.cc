// Concurrency stress for background snapshot publication (TSan-gated:
// tools/check_all.sh runs this under FOCUS_SANITIZE=thread): reader threads
// hammer SnapshotSlot::Latest() and execute queries against whatever epoch
// they catch while a persistent sharded ingest advances underneath with
//   - the snapshot builder assembling and publishing on its own thread,
//   - incremental boundary merges at every cadence boundary,
//   - parallel per-shard checkpoint persistence racing the builder flushes.
// Asserts the RCU publication contract under that full concurrency mix:
// monotone epochs per reader, no torn snapshots, and per-epoch byte-identical
// query results across threads.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/live_snapshot.h"
#include "src/runtime/query_service.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {
namespace {

namespace fs = std::filesystem;

std::string Fingerprint(const core::QueryResult& result) {
  std::ostringstream out;
  out << result.frames_returned << "|" << result.centroids_classified << "|"
      << result.clusters_matched;
  for (const auto& [first, last] : result.frame_runs) {
    out << ";" << first << "-" << last;
  }
  return out.str();
}

TEST(BackgroundPublishStressTest, ReadersRaceBackgroundBuildsAndCheckpoints) {
  constexpr int64_t kCadence = 40;
  constexpr int kQueryThreads = 3;

  video::ClassCatalog catalog(59);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  // Long enough that hundreds of epochs publish (and dozens of checkpoints
  // persist) while the readers poll; short enough for the sanitizer build.
  video::StreamRun run(&catalog, profile, /*duration_sec=*/240.0, /*fps=*/30.0, 25);

  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  cnn::Cnn cheap(params.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  const fs::path dir = fs::temp_directory_path() /
                       ("bg_publish_stress_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  core::SnapshotSlot slot;
  core::IngestOptions options;
  options.num_shards = 4;
  options.finalize_every_frames = kCadence;
  options.checkpoint_every_frames = 160;
  options.background_publish = true;
  options.incremental_boundary_merge = true;
  options.persist_dir = dir.string();
  options.snapshot_slot = &slot;

  const std::vector<common::ClassId>& classes = run.present_classes();
  ASSERT_FALSE(classes.empty());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  // Per thread: epoch -> result fingerprint, merged and cross-checked after.
  std::vector<std::map<uint64_t, std::string>> seen(kQueryThreads);

  std::vector<std::thread> readers;
  readers.reserve(kQueryThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      QueryService query_service({.num_gpus = 4, .batch_size = 8});
      uint64_t last_epoch = 0;
      bool final_pass = false;
      while (true) {
        const bool ingest_done = done.load();
        std::shared_ptr<const core::LiveSnapshot> snap = slot.Latest();
        if (snap != nullptr) {
          if (snap->epoch < last_epoch) {
            ++failures;  // Epochs must be monotone per reader.
            break;
          }
          last_epoch = snap->epoch;
          // Torn-read checks: everything inside one snapshot must be mutually
          // consistent regardless of when the pointer was loaded.
          if (snap->watermark % kCadence != 0 || snap->watermark == 0 ||
              snap->num_clusters != static_cast<int64_t>(snap->index.num_clusters()) ||
              snap->stats.entries_reused + snap->stats.entries_rebuilt !=
                  snap->num_clusters) {
            ++failures;
            break;
          }
          // The queried class is a pure function of the epoch, so every
          // thread that lands on epoch e runs the identical query.
          QueryRequest request;
          request.cls = classes[static_cast<size_t>(snap->epoch) % classes.size()];
          request.snapshot = snap;
          request.ingest_cnn = &cheap;
          request.gt_cnn = &gt;
          request.fps = run.fps();
          const QueryExecution execution = query_service.Execute(request);
          const std::string fingerprint = Fingerprint(execution.result);
          auto [it, inserted] =
              seen[static_cast<size_t>(t)].try_emplace(snap->epoch, fingerprint);
          if (!inserted && it->second != fingerprint) {
            ++failures;  // Same epoch, different answer: torn state.
            break;
          }
        }
        if (ingest_done) {
          // One full pass after ingest finished so the final epoch is covered.
          if (final_pass) {
            break;
          }
          final_pass = true;
        }
      }
    });
  }

  const core::IngestResult result = core::RunIngestResumable(run, cheap, params, options);
  done.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(result.index.num_clusters(), 0u);

  // Builder stall accounting never goes negative, and the final epoch is the
  // last boundary of the run.
  const auto final_snapshot = slot.Latest();
  ASSERT_NE(final_snapshot, nullptr);
  EXPECT_GE(final_snapshot->epoch, 10u);
  EXPECT_GE(final_snapshot->stats.build_millis, 0.0);
  EXPECT_GE(final_snapshot->stats.stall_millis, 0.0);

  // Cross-thread per-epoch results must be byte-identical, and the readers
  // genuinely raced the ingest (several distinct epochs observed).
  std::map<uint64_t, std::string> merged;
  for (const auto& thread_seen : seen) {
    EXPECT_FALSE(thread_seen.empty());
    for (const auto& [epoch, fingerprint] : thread_seen) {
      auto [it, inserted] = merged.try_emplace(epoch, fingerprint);
      if (!inserted) {
        EXPECT_EQ(it->second, fingerprint) << "epoch " << epoch;
      }
    }
  }
  EXPECT_GE(merged.size(), 5u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace focus::runtime
