file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_components.dir/bench/bench_fig8_components.cc.o"
  "CMakeFiles/bench_fig8_components.dir/bench/bench_fig8_components.cc.o.d"
  "bench_fig8_components"
  "bench_fig8_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
