# Empty dependencies file for focus_bench_util.
# This may be replaced when dependencies are built.
