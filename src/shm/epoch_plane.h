// The shared-memory epoch plane: zero-copy multi-process serving of live
// snapshots (docs/shm_serving.md).
//
// PR 5's live query-over-ingest publishes each epoch as an in-process
// LiveSnapshot through an RCU SnapshotSlot; this plane carries that contract
// across a process boundary. The ingest process owns an EpochPublisher: every
// published snapshot's canonical cluster table — member runs, ranked top-K
// classes, and centroid appearance vectors — is flattened once into a POD
// image inside a named POSIX shm segment and announced through the same
// generation/CRC ping-pong header protocol the mmap arena uses
// (src/storage/arena_file.h): two 4 KiB header slots, writer alternates,
// readers adopt the highest CRC-valid generation, so a torn header falls back
// to the previous epoch instead of ever being believed.
//
// Independent query-worker *processes* attach a ShmSnapshotReader and pin
// epochs with a futex-free cross-process reference count: each reader owns one
// slot {pid, pinned_generation}; pinning is a store of the generation followed
// by a re-check that the backing region still holds it, while the writer
// claims a region (stores the new generation into its descriptor) *before*
// scanning the pin slots — a seq_cst store/load pair on each side, so at least
// one of writer and reader always sees the other (the classic Dekker
// handshake) and a pinned epoch's bytes are never overwritten. A reader that
// dies holding a pin is reclaimed by the publisher via kill(pid, 0) == ESRCH
// on the next publish — a crashed worker can delay region reuse by at most one
// epoch and can never stall ingest.
//
// Queries run straight off the mapped image: the segment carries no index —
// ShmEpochView derives per-class posting lists from one id-order scan of the
// cluster records the first time an epoch is queried (id order IS posting-list
// order, since the index appends dense ids), then plans each query off those,
// mirroring core::QueryEngine::Plan/Resolve term by term. A query answered
// from the mapping in another process is therefore byte-identical to the
// in-process snapshot query against the same epoch (tests/shm_serving_test.cc
// holds this as a property across advancing epochs) at in-process query cost:
// nothing is serialized or copied per query — the GT-CNN verdict is a
// deterministic function of a centroid's identity fields, so classification
// runs through lightweight stubs; MaterializeCentroid copies the dim floats
// only when a caller wants the appearance itself.
#ifndef FOCUS_SRC_SHM_EPOCH_PLANE_H_
#define FOCUS_SRC_SHM_EPOCH_PLANE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/common/result.h"
#include "src/common/time_types.h"
#include "src/core/live_snapshot.h"
#include "src/core/query_engine.h"
#include "src/runtime/metrics.h"
#include "src/shm/shm_segment.h"
#include "src/video/detection.h"

namespace focus::shm {

// --- Segment layout (all offsets fixed at creation) ---
//
//   [ ShmControl     4096 B ]  magic/version, bump allocator, region table, stats
//   [ ReaderSlot[64] 4096 B ]  one {pid, pinned_generation} slot per reader
//   [ header slot A  4096 B ]  ShmEpochHeader, even generations
//   [ header slot B  4096 B ]  ShmEpochHeader, odd generations
//   [ data regions   ...    ]  append-only bump allocations, 64 B aligned

inline constexpr uint64_t kShmMagic = 0x464F435553534D31ULL;  // "FOCUSSM1"
// v2: ShmControl grew the free-span table (abandoned region spans are
// compacted and reused instead of leaked). Readers refuse other versions.
inline constexpr uint32_t kShmVersion = 2;
inline constexpr size_t kShmControlBytes = 4096;
inline constexpr size_t kShmReaderSlotsBytes = 4096;
inline constexpr size_t kShmHeaderSlotBytes = 4096;
inline constexpr size_t kShmHeaderOffset = kShmControlBytes + kShmReaderSlotsBytes;
inline constexpr size_t kShmDataOffset = kShmHeaderOffset + 2 * kShmHeaderSlotBytes;
inline constexpr uint32_t kShmMaxReaders = 64;
inline constexpr uint32_t kShmMaxRegions = 8;
inline constexpr uint32_t kShmMaxFreeSpans = 16;
inline constexpr size_t kShmDefaultSegmentBytes = size_t{256} << 20;  // Virtual; lazy pages.

// One data region: a bump-allocated span holding the payload of exactly one
// generation at a time. The publisher rotates generations across regions and
// re-points a region at a larger span when a payload outgrows it; the old
// span goes to the control block's free-span table and is reused (compacted)
// by later growths instead of leaking inside the fixed arena.
struct ShmRegionDesc {
  std::atomic<uint64_t> offset{0};    // Absolute byte offset into the segment.
  std::atomic<uint64_t> capacity{0};  // Bytes reserved at |offset|.
  // Generation whose payload the region holds; the writer's claim — storing
  // the NEW generation here before scanning pins — is half the handshake.
  std::atomic<uint64_t> generation{0};
};

// One attached reader process. |pid| claims the slot (CAS 0 -> getpid());
// |pinned_generation| != 0 protects that generation's region from reuse.
struct ShmReaderSlot {
  std::atomic<uint64_t> pid{0};
  std::atomic<uint64_t> pinned_generation{0};
};

// Plane control block at offset 0. |magic| is stored last at creation, so a
// reader racing a creator never validates a half-initialized block.
struct ShmControl {
  std::atomic<uint64_t> magic{0};
  uint32_t version = 0;
  uint32_t max_readers = 0;
  uint32_t max_regions = 0;
  uint32_t reserved = 0;
  std::atomic<uint64_t> bump_top{0};  // Next free arena byte (absolute offset).
  std::atomic<uint64_t> published_generation{0};
  std::atomic<uint64_t> writer_pid{0};
  // Plane-wide stats, readable by any attached process.
  std::atomic<uint64_t> epochs_published{0};
  std::atomic<uint64_t> stale_pins_reclaimed{0};
  std::atomic<uint64_t> reader_attaches{0};
  std::atomic<uint64_t> pin_violations{0};  // Forced evictions of a live pin.
  // Abandoned spans reused or returned to the bump allocator instead of
  // leaked (one count per region growth served from the free-span table or
  // coalesced back into bump_top).
  std::atomic<uint64_t> regions_compacted{0};
  ShmRegionDesc regions[kShmMaxRegions];
  // Free-span table: spans abandoned when a region outgrew its allocation,
  // kept for reuse. Writer-private — only the (single-threaded) publisher
  // reads or writes these, and readers locate payloads by absolute offsets in
  // epoch headers, never through this table — so plain fields are safe.
  uint32_t free_span_count = 0;
  uint32_t free_reserved = 0;
  uint64_t free_span_offset[kShmMaxFreeSpans] = {};
  uint64_t free_span_bytes[kShmMaxFreeSpans] = {};
};

// Model provenance carried in every epoch header, so a cold process (the
// focus_shm_query CLI) can rebuild the exact catalog and CNNs from seeds alone
// and answer without any out-of-band configuration.
struct ShmModelProvenance {
  uint64_t world_seed = 0;
  uint64_t cheap_weights_seed = 0;
  uint32_t cheap_candidate_index = 0;  // Into cnn::GenericCheapCandidates.
  uint64_t gt_weights_seed = 0;
};

// The per-epoch header written into the ping-pong slots. POD; CRC'd twice:
// |payload_crc| over the region payload (validated once per epoch by each
// reader), |header_crc| over this struct with the field itself zeroed.
struct ShmEpochHeader {
  uint64_t magic = 0;
  uint64_t generation = 0;
  uint64_t epoch = 0;
  int64_t watermark = 0;
  double fps = 0.0;
  int64_t detections = 0;
  int64_t num_clusters = 0;
  int64_t entries_reused = 0;
  int64_t entries_rebuilt = 0;
  double build_millis = 0.0;
  uint32_t region_index = 0;
  uint32_t dim = 0;  // Centroid appearance dimensionality (uniform per stream).
  uint64_t region_offset = 0;   // Absolute payload offset.
  uint64_t payload_bytes = 0;
  uint64_t cluster_count = 0;
  uint64_t member_count = 0;
  uint64_t class_count = 0;  // Total ranked-class entries across clusters.
  uint64_t rank_count = 0;   // May differ from class_count (index semantics).
  // Section offsets relative to |region_offset|, 64 B aligned.
  uint64_t off_clusters = 0;
  uint64_t off_members = 0;
  uint64_t off_classes = 0;
  uint64_t off_ranks = 0;
  uint64_t off_centroids = 0;
  ShmModelProvenance provenance;
  uint32_t payload_crc = 0;
  uint32_t header_crc = 0;
};
static_assert(sizeof(ShmEpochHeader) <= kShmHeaderSlotBytes);
static_assert(sizeof(ShmControl) <= kShmControlBytes);
static_assert(kShmMaxReaders * sizeof(ShmReaderSlot) <= kShmReaderSlotsBytes);

// One flattened canonical cluster (index::ClusterEntry as POD). The centroid
// appearance lives in the centroid section at row |record index| * dim.
struct ShmClusterRecord {
  int64_t cluster_id = 0;
  int64_t size = 0;
  int64_t rep_frame = 0;
  int64_t rep_object_id = 0;
  float bbox_x = 0.0f;
  float bbox_y = 0.0f;
  float bbox_w = 0.0f;
  float bbox_h = 0.0f;
  uint32_t rep_flags = 0;  // Bit 0: pixel_diff_suppressed; bit 1: first_observation.
  int32_t rep_true_class = 0;
  uint64_t members_begin = 0;  // Into the member-run section.
  uint64_t members_count = 0;
  uint64_t classes_begin = 0;  // Into the class section.
  uint64_t classes_count = 0;
  uint64_t ranks_begin = 0;  // Into the rank section.
  uint64_t ranks_count = 0;
};

struct ShmMemberRun {
  int64_t object = 0;
  int64_t first_frame = 0;
  int64_t last_frame = 0;
};

// Plane-wide accounting, readable from either side.
struct ShmPlaneStats {
  uint64_t published_generation = 0;
  uint64_t epochs_published = 0;
  uint64_t stale_pins_reclaimed = 0;
  uint64_t reader_attaches = 0;
  uint64_t pin_violations = 0;
  uint64_t regions_compacted = 0;  // Abandoned spans reused instead of leaked.
  uint64_t live_readers = 0;  // Slots with a claimed pid.
  uint64_t segment_bytes = 0;
  uint64_t arena_used_bytes = 0;  // Bump-allocated so far.
};

class ShmSnapshotReader;

// The free half of a scan query: candidate record indices, in id order — which
// equals the in-process plan's posting-list order, since the index appends
// dense cluster ids (see file comment).
struct ShmQueryPlan {
  common::ClassId queried = common::kInvalidClass;
  common::ClassId lookup = common::kInvalidClass;
  int kx = -1;
  common::FrameIndex range_first = 0;
  common::FrameIndex range_last = 0;
  std::vector<uint64_t> candidates;
};

// A pinned, validated epoch mapped into this process. Movable RAII: the pin is
// released on destruction. Everything it returns points into (or is computed
// from) the shared mapping; no serialization happens on this path. Not safe
// for concurrent use from multiple threads (the worker model is one view per
// process; Plan lazily builds the per-class postings on first use).
class ShmEpochView {
 public:
  ShmEpochView(ShmEpochView&& other) noexcept;
  ShmEpochView& operator=(ShmEpochView&& other) noexcept;
  ShmEpochView(const ShmEpochView&) = delete;
  ShmEpochView& operator=(const ShmEpochView&) = delete;
  ~ShmEpochView();

  uint64_t generation() const { return header_.generation; }
  uint64_t epoch() const { return header_.epoch; }
  common::FrameIndex watermark() const { return header_.watermark; }
  double fps() const { return header_.fps; }
  int64_t detections() const { return header_.detections; }
  uint64_t num_clusters() const { return header_.cluster_count; }
  uint32_t dim() const { return header_.dim; }
  const ShmEpochHeader& header() const { return header_; }

  // Whether the pinned region still holds this generation. The pin protocol
  // guarantees it does as long as the view lives — unless the publisher was
  // forced to evict a live pin (all regions pinned; counted as a
  // pin_violation), in which case the scan's result must be discarded.
  bool StillValid() const;

  // QT1/QT2 off the mapping: posting-list lookup + ranked-class filter,
  // mirroring core::QueryEngine::Plan (same lookup mapping, same Kx
  // semantics, same range-to-frame-bounds arithmetic). The postings are
  // derived from one id-order scan of the mapped records on the first Plan
  // against this view, then reused — cold cost O(map + scan), every query
  // after at in-process plan cost.
  ShmQueryPlan Plan(common::ClassId cls, int kx, common::TimeRange range,
                    const cnn::Cnn& ingest_cnn) const;

  // Materializes the centroid detection of |record|, appearance included (one
  // Detection + dim floats). Tooling/inspection path — Query classifies
  // through appearance-free stubs and copies nothing.
  video::Detection MaterializeCentroid(uint64_t record) const;

  // QT4: folds |verdicts| (parallel to plan.candidates) exactly as
  // core::QueryEngine::Resolve does, including its per-item GPU accounting.
  core::QueryResult Resolve(const ShmQueryPlan& plan,
                            std::span<const common::ClassId> verdicts,
                            const cnn::Cnn& gt_cnn) const;

  // Plan -> one GT-CNN batch -> Resolve. Byte-identical to
  // core::QueryEngine::Query against the in-process snapshot of this epoch.
  core::QueryResult Query(common::ClassId cls, int kx, common::TimeRange range,
                          const cnn::Cnn& ingest_cnn, const cnn::Cnn& gt_cnn) const;

  // Query with the eviction check folded in: re-checks StillValid() *after*
  // the scan and returns a typed kUnavailable instead of a result computed
  // from bytes the publisher may have overwritten (forced eviction of a live
  // pin). The RPC worker path uses this so an evicted pin surfaces as a typed
  // error across the process boundary instead of a silently wrong answer.
  common::Result<core::QueryResult> QueryChecked(common::ClassId cls, int kx,
                                                 common::TimeRange range,
                                                 const cnn::Cnn& ingest_cnn,
                                                 const cnn::Cnn& gt_cnn) const;

  // Raw sections (for tests and the status tooling).
  const ShmClusterRecord* clusters() const;
  const ShmMemberRun* members() const;
  const int32_t* classes() const;
  const int32_t* ranks() const;
  const float* centroids() const;

 private:
  friend class ShmSnapshotReader;
  ShmEpochView(ShmSnapshotReader* reader, ShmEpochHeader header)
      : reader_(reader), header_(header) {}

  // One posting: a candidate record plus the rank of the queried class inside
  // it (0 when the record carries no rank table — admits every Kx, matching
  // index::ClusterEntry::MatchesWithin).
  struct Posting {
    uint64_t record = 0;
    int32_t rank = 0;
  };

  // Builds |postings_| from one id-order scan of the mapped cluster records
  // (first occurrence of a class within a record decides, like the in-process
  // index). Called lazily by Plan.
  void BuildPostings() const;

  ShmSnapshotReader* reader_ = nullptr;  // Null after move/release.
  ShmEpochHeader header_;
  mutable bool postings_built_ = false;
  mutable std::unordered_map<common::ClassId, std::vector<Posting>> postings_;
};

// The ingest-side publisher. Single-owner, single-threaded (call Publish from
// the snapshot sink); creates the segment and holds the writer role.
class EpochPublisher {
 public:
  struct Options {
    size_t segment_bytes = kShmDefaultSegmentBytes;
    ShmModelProvenance provenance;
  };

  // Creates segment |name| and initializes the plane. A leftover segment from
  // a *dead* owner (publisher crashed before unlinking: valid magic but
  // writer_pid exited, or unrecognizable bytes) is reclaimed — unlinked and
  // recreated fresh, counted in shm.stale_segments_reclaimed — so a restarted
  // ingest process never fails on its own corpse or serves its stale epochs.
  // A segment whose writer_pid is still alive is refused with
  // kFailedPrecondition (one writer per plane). |metrics| may be null
  // (process-global registry).
  static common::Result<std::unique_ptr<EpochPublisher>> Create(
      const std::string& name, Options options, runtime::MetricsRegistry* metrics = nullptr);
  static common::Result<std::unique_ptr<EpochPublisher>> Create(const std::string& name) {
    return Create(name, Options());
  }

  ~EpochPublisher();

  EpochPublisher(const EpochPublisher&) = delete;
  EpochPublisher& operator=(const EpochPublisher&) = delete;

  // Flattens |snapshot| into a region and announces it as the next generation.
  // Reclaims dead readers' pins first; never blocks on a live reader (a fully
  // pinned plane forcibly evicts the oldest pinned region and counts a
  // pin_violation — the evicted reader detects it via StillValid). Errors only
  // on arena exhaustion (kOutOfRange) — ingest keeps running either way.
  common::Result<uint64_t> Publish(const core::LiveSnapshot& snapshot);

  ShmPlaneStats stats() const;
  const std::string& name() const { return segment_->name(); }

  // Removes the segment name from the namespace (attached readers keep their
  // mappings until they detach).
  void UnlinkOnDestroy(bool unlink) { unlink_on_destroy_ = unlink; }

 private:
  EpochPublisher(std::unique_ptr<SharedSegment> segment, Options options,
                 runtime::MetricsRegistry* metrics)
      : segment_(std::move(segment)), options_(options), metrics_(metrics) {}

  ShmControl* control() const;

  // Picks (claim-then-scan) a region for generation |g| with >= |need| bytes,
  // growing via the bump allocator when necessary. Returns the region index
  // or kOutOfRange.
  common::Result<uint32_t> ClaimRegion(uint64_t g, uint64_t need);

  std::unique_ptr<SharedSegment> segment_;
  Options options_;
  runtime::MetricsRegistry* metrics_;
  bool unlink_on_destroy_ = false;
};

// A query-side attach: claims one reader slot in the plane. One process may
// hold several readers; each reader pins at most one epoch at a time.
class ShmSnapshotReader {
 public:
  // Attaches to segment |name| and claims a reader slot. |metrics| may be
  // null (process-global registry).
  static common::Result<std::unique_ptr<ShmSnapshotReader>> Attach(
      const std::string& name, runtime::MetricsRegistry* metrics = nullptr);

  ~ShmSnapshotReader();

  ShmSnapshotReader(const ShmSnapshotReader&) = delete;
  ShmSnapshotReader& operator=(const ShmSnapshotReader&) = delete;

  // Pins and validates the newest published epoch: adopt the highest
  // CRC-valid header, store the pin, re-check the region generation (retry if
  // the writer won the race), then CRC the payload once per new generation.
  // kFailedPrecondition before the first epoch; kUnavailable if the plane
  // outpaces the reader past the retry budget.
  common::Result<ShmEpochView> Acquire();

  // Provenance of the newest valid header (for cold-process model rebuild).
  common::Result<ShmModelProvenance> Provenance() const;

  ShmPlaneStats stats() const;
  const std::string& name() const { return segment_->name(); }

 private:
  friend class ShmEpochView;

  ShmSnapshotReader(std::unique_ptr<SharedSegment> segment, uint32_t slot,
                    runtime::MetricsRegistry* metrics)
      : segment_(std::move(segment)), slot_(slot), metrics_(metrics) {}

  ShmControl* control() const;
  ShmReaderSlot* reader_slot() const;

  // Reads both header slots and returns the highest CRC-valid one (torn-write
  // fallback), or kFailedPrecondition when neither validates.
  common::Result<ShmEpochHeader> AdoptNewestHeader() const;

  void Release(uint64_t generation);

  std::unique_ptr<SharedSegment> segment_;
  uint32_t slot_ = 0;
  runtime::MetricsRegistry* metrics_;
  bool view_outstanding_ = false;
  uint64_t validated_generation_ = 0;  // Payload CRC already checked for this gen.
};

// Plane stats for any attached segment (publisher- or reader-side object).
ShmPlaneStats StatsOf(const SharedSegment& segment);

}  // namespace focus::shm

#endif  // FOCUS_SRC_SHM_EPOCH_PLANE_H_
