// Property tests for the persistent fleet query runtime
// (src/runtime/fleet_query_service.h, docs/fleet_serving.md).
//
// The central contract: results are byte-identical to per-camera sequential
// execution (core::FocusFleet::ExecuteFederatedSequential) no matter how work
// was packed into launches, what the global verdict cache held, or in which
// order tenants were admitted. The fixture builds a 32-camera fleet once
// (cycling the 13 built-in stream profiles across two regions) and every case
// checks an executor property against the sequential oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/core/fleet.h"
#include "src/core/query_session.h"
#include "src/runtime/fleet_query_service.h"
#include "src/video/stream_generator.h"

namespace focus::runtime {
namespace {

constexpr double kDurationSec = 60.0;
constexpr double kFps = 30.0;
constexpr int kNumCameras = 32;

const char* const kProfiles[] = {
    "auburn_c", "auburn_r", "bend",     "church_st", "city_a_d", "city_a_r", "cnn",
    "foxnews",  "jacksonh", "lausanne", "msnbc",     "oxford",   "sittard",
};

std::string CameraName(int i) { return "cam" + std::to_string(i / 10) + std::to_string(i % 10); }

void ExpectSameQueryResult(const core::QueryResult& got, const core::QueryResult& want) {
  EXPECT_EQ(got.queried, want.queried);
  EXPECT_EQ(got.frame_runs, want.frame_runs);
  EXPECT_EQ(got.centroids_classified, want.centroids_classified);
  EXPECT_EQ(got.clusters_matched, want.clusters_matched);
  EXPECT_EQ(got.frames_returned, want.frames_returned);
  EXPECT_DOUBLE_EQ(got.gpu_millis, want.gpu_millis);
}

void ExpectSameFleetResult(const core::FleetQueryResult& got,
                           const core::FleetQueryResult& want) {
  EXPECT_EQ(got.queried, want.queried);
  EXPECT_EQ(got.total_frames, want.total_frames);
  EXPECT_EQ(got.total_centroids_classified, want.total_centroids_classified);
  EXPECT_DOUBLE_EQ(got.total_gpu_millis, want.total_gpu_millis);
  ASSERT_EQ(got.hits.size(), want.hits.size());
  for (size_t i = 0; i < got.hits.size(); ++i) {
    SCOPED_TRACE("camera=" + want.hits[i].camera);
    EXPECT_EQ(got.hits[i].camera, want.hits[i].camera);
    EXPECT_EQ(got.hits[i].live, want.hits[i].live);
    EXPECT_EQ(got.hits[i].epoch, want.hits[i].epoch);
    EXPECT_EQ(got.hits[i].watermark, want.hits[i].watermark);
    ExpectSameQueryResult(got.hits[i].result, want.hits[i].result);
  }
}

class FleetQueryServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(11);
    fleet_ = new core::FocusFleet();
    core::FocusOptions options;
    // Deterministic fill: cycle (profile, seed) combos, skipping the rare
    // short-sample combos the tuner rejects, until the fleet holds 32 cameras.
    int added = 0;
    for (int attempt = 0; added < kNumCameras && attempt < 4 * kNumCameras; ++attempt) {
      video::StreamProfile profile;
      ASSERT_TRUE(
          video::FindProfile(kProfiles[attempt % std::size(kProfiles)], &profile));
      core::CameraMeta meta;
      meta.region = added < kNumCameras / 2 ? "east" : "west";
      if (added % 8 == 0) meta.tags.push_back("hub");
      if (fleet_
              ->AddCamera(CameraName(added), catalog_, profile, kDurationSec, kFps,
                          1000 + static_cast<uint64_t>(attempt), options, meta)
              .ok()) {
        ++added;
      }
    }
    ASSERT_EQ(added, kNumCameras);
    // The fleet-wide investigation class: among the dominant GT classes of the
    // first cameras, the one with the widest federated fan-out.
    int64_t widest = 0;
    for (int i = 0; i < 4; ++i) {
      const core::FocusStream* stream = fleet_->Find(CameraName(i));
      ASSERT_NE(stream, nullptr);
      cnn::SegmentGroundTruth truth(stream->run(), stream->gt_cnn());
      for (common::ClassId cls : truth.DominantClasses(0.95, 3)) {
        auto plan = fleet_->PlanFederated(cls);
        if (plan.ok() && plan->TotalWorkItems() > widest) {
          widest = plan->TotalWorkItems();
          dominant_class_ = cls;
        }
      }
    }
    ASSERT_GT(widest, 0);
  }

  static void TearDownTestSuite() {
    delete fleet_;
    delete catalog_;
    fleet_ = nullptr;
    catalog_ = nullptr;
  }

  static video::ClassCatalog* catalog_;
  static core::FocusFleet* fleet_;
  static common::ClassId dominant_class_;
};

video::ClassCatalog* FleetQueryServiceTest::catalog_ = nullptr;
core::FocusFleet* FleetQueryServiceTest::fleet_ = nullptr;
common::ClassId FleetQueryServiceTest::dominant_class_ = common::kInvalidClass;

// The tentpole property: a federated fan-out over the whole fleet (and over
// each narrowing selector) executed through the packed/cached service is
// byte-identical to the per-camera sequential oracle — cold cache, warm cache,
// either way.
TEST_F(FleetQueryServiceTest, FederatedMatchesSequentialOracle) {
  std::vector<core::FederatedSelector> selectors(5);  // [0]: whole fleet.
  selectors[1].region = "east";
  selectors[2].region = "west";
  selectors[3].tag = "hub";
  selectors[4].cameras = {CameraName(3), CameraName(17), CameraName(30)};
  FleetQueryService service;
  for (const auto& selector : selectors) {
    SCOPED_TRACE("region=" + selector.region + " tag=" + selector.tag +
                 " explicit=" + std::to_string(selector.cameras.size()));
    auto plan = fleet_->PlanFederated(dominant_class_, selector);
    ASSERT_TRUE(plan.ok()) << plan.error().message;
    const core::FleetQueryResult sequential = fleet_->ExecuteFederatedSequential(*plan);

    const FederatedExecution cold = service.ExecuteFederated(*plan);
    ASSERT_FALSE(cold.error.has_value());
    ExpectSameFleetResult(cold.result, sequential);

    // Re-executing the same pinned plan answers fully from the verdict cache —
    // still byte-identical.
    const FederatedExecution warm = service.ExecuteFederated(*plan);
    ASSERT_FALSE(warm.error.has_value());
    ExpectSameFleetResult(warm.result, sequential);
  }
}

// Acceptance guardrail: on a fan-out wide enough to fill the cluster, packing
// work items across cameras into shared GT-CNN launches costs >= 15% less
// GPU-time than the per-centroid sequential execution. (With 10 GPUs and
// batch_size 32 the saving is 0.25 - 2.5/n, so n >= 25 unique items suffices.)
TEST_F(FleetQueryServiceTest, PackedLaunchesSaveAtLeastFifteenPercent) {
  auto plan = fleet_->PlanFederated(dominant_class_);
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(plan->TotalWorkItems(), 25) << "fleet too small to exercise the guardrail";

  FleetQueryService service;  // Fresh: cold cache, cluster at time 0.
  const FederatedExecution exec = service.ExecuteFederated(*plan);
  ASSERT_FALSE(exec.error.has_value());

  const FleetServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, plan->TotalWorkItems());
  // The sequential per-centroid cost is what the merged result itself accounts.
  EXPECT_DOUBLE_EQ(exec.result.total_gpu_millis,
                   static_cast<double>(stats.cache_misses) *
                       fleet_->Find(CameraName(0))->gt_cnn().inference_cost_millis());
  EXPECT_LE(stats.gpu_millis, 0.85 * exec.result.total_gpu_millis)
      << "packed launches saved less than 15%";
  // Parallelism first: the packer never leaves a GPU idle while work remains,
  // so a fleet-wide fan-out uses every device.
  EXPECT_GE(stats.launches, static_cast<int64_t>(service.options().num_gpus));
}

// Warm-cache acceptance: a duplicate federated query pays zero additional
// GT-CNN GPU-time — every item answers from the global verdict cache at the
// cluster's current frontier (latency 0 in virtual time).
TEST_F(FleetQueryServiceTest, WarmCacheRepeatPaysZero) {
  core::FederatedSelector east;
  east.region = "east";
  auto plan = fleet_->PlanFederated(dominant_class_, east);
  ASSERT_TRUE(plan.ok());
  FleetQueryService service;
  const FederatedExecution cold = service.ExecuteFederated(*plan);
  ASSERT_FALSE(cold.error.has_value());
  const FleetServiceStats before = service.stats();

  const FederatedExecution warm = service.ExecuteFederated(*plan);
  ASSERT_FALSE(warm.error.has_value());
  const FleetServiceStats after = service.stats();

  ExpectSameFleetResult(warm.result, cold.result);
  EXPECT_EQ(after.launches, before.launches);
  EXPECT_DOUBLE_EQ(after.gpu_millis, before.gpu_millis);
  EXPECT_EQ(after.cache_hits, before.cache_hits + plan->TotalWorkItems());
  EXPECT_EQ(after.cache_misses, before.cache_misses);
  EXPECT_DOUBLE_EQ(warm.latency_millis(), 0.0);
}

// Single-camera requests through the shared service — sequential, pooled
// concurrently in one admission, with in-admission duplicates, cold or warm —
// all reproduce FocusStream::Query byte-for-byte.
TEST_F(FleetQueryServiceTest, RequestsMatchDirectStreamQuery) {
  FleetQueryService service;
  std::vector<FleetQueryRequest> requests;
  std::vector<core::QueryResult> direct;
  for (int i : {0, 7, 13, 21, 31}) {
    const core::FocusStream* stream = fleet_->Find(CameraName(i));
    ASSERT_NE(stream, nullptr);
    FleetQueryRequest request;
    request.camera = CameraName(i);
    request.query.stream = stream;
    request.query.cls = dominant_class_;
    if (i == 13) request.query.kx = 1;                        // Narrowed Kx.
    if (i == 21) request.query.range = {5.0, 30.0};           // Time window.
    requests.push_back(request);
    direct.push_back(stream->Query(dominant_class_, request.query.kx, request.query.range));
  }
  // One at a time (cold, then increasingly warm cache).
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryExecution exec = service.Execute(requests[i]);
    ASSERT_FALSE(exec.error.has_value());
    ExpectSameQueryResult(exec.result, direct[i]);
  }
  // Pooled into one admission, duplicated, and reversed: request order in,
  // request order out, every result still identical.
  std::vector<FleetQueryRequest> pooled(requests.rbegin(), requests.rend());
  pooled.insert(pooled.end(), requests.begin(), requests.end());
  const auto execs = service.ExecuteConcurrently(pooled);
  ASSERT_EQ(execs.size(), pooled.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_FALSE(execs[i].error.has_value());
    ExpectSameQueryResult(execs[i].result, direct[requests.size() - 1 - i]);
    ASSERT_FALSE(execs[requests.size() + i].error.has_value());
    ExpectSameQueryResult(execs[requests.size() + i].result, direct[i]);
  }
}

// Weighted-fair admission: a deep backlog from one tenant drains in rounds
// interleaved with another tenant's work (weight 2 admits two per round), and
// the admission order never changes any result.
TEST_F(FleetQueryServiceTest, WeightedFairDrainInterleavesTenants) {
  FleetQueryService service;
  service.SetTenantWeight("b", 2.0);

  auto request_for = [&](int i, const std::string& tenant) {
    FleetQueryRequest request;
    request.camera = CameraName(i);
    request.tenant = tenant;
    request.query.stream = fleet_->Find(CameraName(i));
    request.query.cls = dominant_class_;
    return request;
  };
  std::vector<uint64_t> a_tickets, b_tickets;
  for (int i = 0; i < 6; ++i) a_tickets.push_back(service.Enqueue(request_for(i, "a")));
  for (int i = 6; i < 9; ++i) b_tickets.push_back(service.Enqueue(request_for(i, "b")));

  const auto depths = service.QueueDepths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths.at("a"), 6u);
  EXPECT_EQ(depths.at("b"), 3u);

  const auto drained = service.DrainAdmitted();
  ASSERT_EQ(drained.size(), 9u);
  // Rounds: {a1,b1,b2}, {a2,b3}, then a alone.
  const std::vector<uint64_t> want_order = {
      a_tickets[0], b_tickets[0], b_tickets[1], a_tickets[1], b_tickets[2],
      a_tickets[2], a_tickets[3], a_tickets[4], a_tickets[5],
  };
  std::vector<uint64_t> got_order;
  for (const auto& [ticket, exec] : drained) got_order.push_back(ticket);
  EXPECT_EQ(got_order, want_order);
  EXPECT_TRUE(service.QueueDepths().empty());

  // Admission order shapes latency, never results: every drained execution
  // matches the direct per-camera query.
  for (const auto& [ticket, exec] : drained) {
    ASSERT_FALSE(exec.error.has_value());
    const int i = static_cast<int>(ticket - 1);  // Tickets issued in enqueue order.
    ExpectSameQueryResult(exec.result, fleet_->Find(CameraName(i))->Query(dominant_class_));
  }
}

// S2: concurrent QuerySessions routed through the shared service never re-pay
// a centroid any of them already paid — total GT-CNN time equals the union of
// unique centroids, while every session's own results and accounting stay
// byte-identical to a session running on the engine directly.
TEST_F(FleetQueryServiceTest, ConcurrentSessionsShareVerdictsAcrossTheService) {
  const std::string camera = CameraName(1);
  const core::FocusStream* stream = fleet_->Find(camera);
  ASSERT_NE(stream, nullptr);
  const int full_k = stream->chosen_params().k;
  ASSERT_GE(full_k, 2);
  // The union every session eventually requests: the full-width plan.
  const size_t unique = stream->Plan(dominant_class_).work.size();
  ASSERT_GT(unique, 0u);

  // batch_size 1: every fresh centroid is exactly one launch of one inference,
  // so service gpu time counts paid centroids with no amortization noise.
  FleetQueryServiceOptions options;
  options.batch_size = 1;
  FleetQueryService service(options);

  constexpr int kSessions = 3;
  std::vector<std::unique_ptr<core::QuerySession>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(std::make_unique<core::QuerySession>(
        &stream->ingest().index, &stream->ingest_cnn(), &stream->gt_cnn(), dominant_class_));
    sessions.back()->SetClassifier([&service, &camera, stream](const core::QueryPlan& plan) {
      return service.ClassifySessionPlan(camera, *stream, plan);
    });
  }
  // Each session expands 1 -> 2 -> full K on its own thread; the service
  // serializes and shares verdicts between them.
  std::vector<std::thread> threads;
  for (auto& session : sessions) {
    threads.emplace_back([&session, full_k] {
      session->ExpandTo(1);
      session->ExpandTo(2);
      session->ExpandTo(full_k);
    });
  }
  for (auto& thread : threads) thread.join();

  // Reference: the same expansion sequence on the engine directly.
  core::QuerySession reference(&stream->ingest().index, &stream->ingest_cnn(),
                               &stream->gt_cnn(), dominant_class_);
  reference.ExpandTo(1);
  reference.ExpandTo(2);
  reference.ExpandTo(full_k);
  for (const auto& session : sessions) {
    EXPECT_EQ(session->frame_runs(), reference.frame_runs());
    EXPECT_EQ(session->total_frames(), reference.total_frames());
    EXPECT_EQ(session->total_centroids_classified(), reference.total_centroids_classified());
    EXPECT_DOUBLE_EQ(session->total_gpu_millis(), reference.total_gpu_millis());
  }

  // The service paid each unique centroid exactly once, fleet-wide.
  const FleetServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, static_cast<int64_t>(unique));
  EXPECT_EQ(stats.work_items, static_cast<int64_t>(kSessions * unique));
  EXPECT_EQ(stats.cache_hits, static_cast<int64_t>((kSessions - 1) * unique));
  EXPECT_EQ(stats.dedup_hits, 0);
  EXPECT_DOUBLE_EQ(stats.gpu_millis,
                   static_cast<double>(unique) * stream->gt_cnn().inference_cost_millis());
}

// The verdict cache never grows past its configured capacity, and a cache too
// small for the working set only costs re-paid classifications — results stay
// byte-identical.
TEST_F(FleetQueryServiceTest, TinyCacheStaysBoundedAndCorrect) {
  core::FederatedSelector west;
  west.region = "west";
  auto plan = fleet_->PlanFederated(dominant_class_, west);
  ASSERT_TRUE(plan.ok());
  ASSERT_GT(plan->TotalWorkItems(), 8);
  const core::FleetQueryResult sequential = fleet_->ExecuteFederatedSequential(*plan);

  FleetQueryServiceOptions options;
  options.verdict_cache_capacity = 8;
  FleetQueryService service(options);
  for (int pass = 0; pass < 3; ++pass) {
    SCOPED_TRACE("pass=" + std::to_string(pass));
    const FederatedExecution exec = service.ExecuteFederated(*plan);
    ASSERT_FALSE(exec.error.has_value());
    ExpectSameFleetResult(exec.result, sequential);
    EXPECT_LE(service.stats().cache_size, options.verdict_cache_capacity);
  }
  EXPECT_GT(service.stats().cache_evicted, 0);
}

// Federated fan-outs route through the same tenant queues as single-camera
// traffic: a two-fan-out burst from tenant a drains in rounds interleaved
// with tenant b's singles (visible as shared per-round submit instants on a
// one-GPU cluster), and every result — federated and single — stays
// byte-identical to its oracle.
TEST_F(FleetQueryServiceTest, FederatedDrainsThroughTenantQueuesFairly) {
  core::FederatedSelector east;
  east.region = "east";
  core::FederatedSelector hub;
  hub.tag = "hub";
  auto plan_east = fleet_->PlanFederated(dominant_class_, east);
  auto plan_hub = fleet_->PlanFederated(dominant_class_, hub);
  ASSERT_TRUE(plan_east.ok());
  ASSERT_TRUE(plan_hub.ok());
  const core::FleetQueryResult seq_east = fleet_->ExecuteFederatedSequential(*plan_east);
  const core::FleetQueryResult seq_hub = fleet_->ExecuteFederatedSequential(*plan_hub);

  // One GPU: the virtual frontier advances with every round's fresh work, so
  // admission rounds are visible as strictly increasing submit times.
  FleetQueryServiceOptions options;
  options.num_gpus = 1;
  FleetQueryService service(options);

  const uint64_t fed_east = service.EnqueueFederated(*plan_east, "a");
  const uint64_t fed_hub = service.EnqueueFederated(*plan_hub, "a");
  std::vector<uint64_t> b_tickets;
  for (int i = 20; i < 23; ++i) {
    FleetQueryRequest request;
    request.camera = CameraName(i);
    request.tenant = "b";
    request.query.stream = fleet_->Find(CameraName(i));
    request.query.cls = dominant_class_;
    b_tickets.push_back(service.Enqueue(request));
  }
  const auto depths = service.QueueDepths();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_EQ(depths.at("a"), 2u);  // A fan-out queues as ONE entry.
  EXPECT_EQ(depths.at("b"), 3u);

  // Rounds: {fed_east, b1}, {fed_hub, b2}, {b3}.
  const auto drained = service.DrainAdmitted();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].first, b_tickets[0]);
  EXPECT_EQ(drained[1].first, b_tickets[1]);
  EXPECT_EQ(drained[2].first, b_tickets[2]);
  EXPECT_TRUE(service.QueueDepths().empty());

  auto east_exec = service.TakeFederated(fed_east);
  auto hub_exec = service.TakeFederated(fed_hub);
  ASSERT_TRUE(east_exec.has_value());
  ASSERT_TRUE(hub_exec.has_value());
  ASSERT_FALSE(east_exec->error.has_value());
  ASSERT_FALSE(hub_exec->error.has_value());
  ExpectSameFleetResult(east_exec->result, seq_east);
  ExpectSameFleetResult(hub_exec->result, seq_hub);
  EXPECT_FALSE(service.TakeFederated(fed_east).has_value());  // Claimed once.
  EXPECT_FALSE(service.TakeFederated(99999).has_value());

  // Fairness in virtual time: round members share a submit instant, rounds
  // submit strictly later than their predecessors — tenant a's burst never
  // pushes tenant b's queue behind both fan-outs.
  EXPECT_DOUBLE_EQ(east_exec->submit_millis, drained[0].second.submit_millis);
  EXPECT_DOUBLE_EQ(hub_exec->submit_millis, drained[1].second.submit_millis);
  EXPECT_LT(east_exec->submit_millis, hub_exec->submit_millis);
  EXPECT_LT(drained[1].second.submit_millis, drained[2].second.submit_millis);

  // Admission order never changes results.
  for (size_t i = 0; i < drained.size(); ++i) {
    ASSERT_FALSE(drained[i].second.error.has_value());
    ExpectSameQueryResult(drained[i].second.result,
                          fleet_->Find(CameraName(20 + static_cast<int>(i)))
                              ->Query(dominant_class_));
  }
}

// The striped verdict cache under concurrent warm traffic: once the fleet-wide
// plan is cached, parallel single-camera requests answer entirely from their
// stripes (zero launches, zero fresh GPU time) and stay byte-identical.
TEST_F(FleetQueryServiceTest, StripedCacheAnswersConcurrentWarmTrafficIdentically) {
  FleetQueryService service;
  auto plan = fleet_->PlanFederated(dominant_class_);
  ASSERT_TRUE(plan.ok());
  const FederatedExecution cold = service.ExecuteFederated(*plan);
  ASSERT_FALSE(cold.error.has_value());
  const FleetServiceStats before = service.stats();

  std::vector<core::QueryResult> direct;
  int64_t warm_items = 0;
  for (int i = 0; i < kNumCameras; ++i) {
    direct.push_back(fleet_->Find(CameraName(i))->Query(dominant_class_));
    warm_items += static_cast<int64_t>(fleet_->Find(CameraName(i))->Plan(dominant_class_).work.size());
  }

  constexpr int kThreads = 8;
  constexpr int kPasses = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int pass = 0; pass < kPasses; ++pass) {
        for (int i = t; i < kNumCameras; i += kThreads) {
          FleetQueryRequest request;
          request.camera = CameraName(i);
          request.query.stream = fleet_->Find(CameraName(i));
          request.query.cls = dominant_class_;
          const QueryExecution exec = service.Execute(request);
          const core::QueryResult& want = direct[i];
          const bool same = !exec.error.has_value() &&
                            exec.result.queried == want.queried &&
                            exec.result.frame_runs == want.frame_runs &&
                            exec.result.centroids_classified == want.centroids_classified &&
                            exec.result.clusters_matched == want.clusters_matched &&
                            exec.result.frames_returned == want.frames_returned &&
                            exec.result.gpu_millis == want.gpu_millis;
          if (!same) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  const FleetServiceStats after = service.stats();
  EXPECT_EQ(after.cache_misses, before.cache_misses);  // Nothing fresh.
  EXPECT_EQ(after.launches, before.launches);          // Fully-cached fast path.
  EXPECT_DOUBLE_EQ(after.gpu_millis, before.gpu_millis);
  EXPECT_EQ(after.cache_hits, before.cache_hits + kPasses * warm_items);
  EXPECT_LE(after.cache_size, service.options().verdict_cache_capacity);
}

// Regression: all-or-nothing admission starves oversized plans. With a
// per-round cost budget and splitting disabled (the pre-fix packer), an entry
// whose estimated cost alone exceeds a whole round's budget is skipped every
// round: other tenants keep flowing, the oversized tenant's queue depth never
// drops, and a direct ExecuteFederated surfaces a typed error instead of
// blocking on a completion that can never arrive.
TEST_F(FleetQueryServiceTest, OversizedPlanStarvesWhenSplittingDisabled) {
  auto plan = fleet_->PlanFederated(dominant_class_);
  ASSERT_TRUE(plan.ok());
  const core::FocusStream* small_stream = fleet_->Find(CameraName(5));
  ASSERT_NE(small_stream, nullptr);
  const size_t small_items = small_stream->Plan(dominant_class_).work.size();
  ASSERT_GT(small_items, 0u);
  ASSERT_GT(plan->TotalWorkItems(), static_cast<int64_t>(2 * small_items));
  const double per_item = small_stream->gt_cnn().batch_cost_model().EstimateMillis(1);

  FleetQueryServiceOptions options;
  options.round_cost_budget_millis = static_cast<double>(small_items) * per_item;
  options.split_oversized_plans = false;  // The pre-fix all-or-nothing packer.
  FleetQueryService service(options);

  const uint64_t fed = service.EnqueueFederated(*plan, "a");
  FleetQueryRequest small;
  small.camera = CameraName(5);
  small.tenant = "b";
  small.query.stream = small_stream;
  small.query.cls = dominant_class_;
  const uint64_t small_ticket = service.Enqueue(small);

  // The drain terminates, completes the small tenant, and leaves the
  // oversized entry parked at its queue front.
  const auto drained = service.DrainAdmitted();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].first, small_ticket);
  ASSERT_FALSE(drained[0].second.error.has_value());
  ExpectSameQueryResult(drained[0].second.result, small_stream->Query(dominant_class_));
  EXPECT_FALSE(service.TakeFederated(fed).has_value());
  const auto depths = service.QueueDepths();
  ASSERT_EQ(depths.count("a"), 1u);
  EXPECT_EQ(depths.at("a"), 1u);
  EXPECT_EQ(service.stats().plans_split, 0);

  // Direct execution of an un-admittable plan: typed error, entry observable
  // in the queue, no crash.
  FleetQueryService direct(options);
  const FederatedExecution exec = direct.ExecuteFederated(*plan);
  ASSERT_TRUE(exec.error.has_value());
  EXPECT_EQ(exec.error->code, common::ErrorCode::kFailedPrecondition);
  EXPECT_EQ(direct.QueueDepths().count("default"), 1u);
}

// The fix: the packer splits an oversized plan into budget-sized slices
// executed across consecutive rounds — the entry completes, other tenants
// still interleave, and the merged result is byte-identical to the sequential
// oracle (verdicts are pure per-centroid, so slicing cannot change them).
TEST_F(FleetQueryServiceTest, OversizedPlanSplitsAcrossRoundsByteIdentically) {
  auto plan = fleet_->PlanFederated(dominant_class_);
  ASSERT_TRUE(plan.ok());
  const core::FocusStream* small_stream = fleet_->Find(CameraName(5));
  ASSERT_NE(small_stream, nullptr);
  const size_t small_items = small_stream->Plan(dominant_class_).work.size();
  ASSERT_GT(small_items, 0u);
  ASSERT_GT(plan->TotalWorkItems(), static_cast<int64_t>(2 * small_items));
  const double per_item = small_stream->gt_cnn().batch_cost_model().EstimateMillis(1);
  const core::FleetQueryResult sequential = fleet_->ExecuteFederatedSequential(*plan);

  FleetQueryServiceOptions options;
  options.round_cost_budget_millis = static_cast<double>(small_items) * per_item;
  ASSERT_TRUE(options.split_oversized_plans);  // The default.
  MetricsRegistry metrics;
  FleetQueryService service(options, &metrics);

  const uint64_t fed = service.EnqueueFederated(*plan, "a");
  FleetQueryRequest small;
  small.camera = CameraName(5);
  small.tenant = "b";
  small.query.stream = small_stream;
  small.query.cls = dominant_class_;
  const uint64_t small_ticket = service.Enqueue(small);

  const auto drained = service.DrainAdmitted();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].first, small_ticket);
  ASSERT_FALSE(drained[0].second.error.has_value());
  ExpectSameQueryResult(drained[0].second.result, small_stream->Query(dominant_class_));

  auto fed_exec = service.TakeFederated(fed);
  ASSERT_TRUE(fed_exec.has_value());
  ASSERT_FALSE(fed_exec->error.has_value());
  ExpectSameFleetResult(fed_exec->result, sequential);
  EXPECT_TRUE(service.QueueDepths().empty());
  EXPECT_EQ(service.stats().plans_split, 1);
  EXPECT_EQ(metrics.counter("fleet.plans_split"), 1);
  EXPECT_GT(metrics.counter("fleet.plan_slices"), 1);

  // Direct execution splits too, and a warm repeat stays byte-identical.
  FleetQueryService direct(options);
  const FederatedExecution cold = direct.ExecuteFederated(*plan);
  ASSERT_FALSE(cold.error.has_value());
  ExpectSameFleetResult(cold.result, sequential);
  const FederatedExecution warm = direct.ExecuteFederated(*plan);
  ASSERT_FALSE(warm.error.has_value());
  ExpectSameFleetResult(warm.result, sequential);
  EXPECT_GE(direct.stats().plans_split, 1);

  // An oversized single-camera request splits through the same path.
  const core::FocusStream* wide_stream = fleet_->Find(CameraName(1));
  ASSERT_NE(wide_stream, nullptr);
  const size_t wide_items = wide_stream->Plan(dominant_class_).work.size();
  if (wide_items > 1) {
    FleetQueryServiceOptions tight = options;
    tight.round_cost_budget_millis =
        wide_stream->gt_cnn().batch_cost_model().EstimateMillis(1) * 1.5;
    FleetQueryService single(tight);
    FleetQueryRequest wide;
    wide.camera = CameraName(1);
    wide.query.stream = wide_stream;
    wide.query.cls = dominant_class_;
    const uint64_t ticket = single.Enqueue(wide);
    const auto singles = single.DrainAdmitted();
    ASSERT_EQ(singles.size(), 1u);
    EXPECT_EQ(singles[0].first, ticket);
    ASSERT_FALSE(singles[0].second.error.has_value());
    ExpectSameQueryResult(singles[0].second.result, wide_stream->Query(dominant_class_));
    EXPECT_EQ(single.stats().plans_split, 1);
  }
}

// Per-tenant admission accounting reaches the metrics registry: enqueue and
// admit counters per tenant, live queue-depth gauges, and the fleet-wide
// request/federated counters.
TEST_F(FleetQueryServiceTest, PerTenantAdmissionMetricsSurface) {
  MetricsRegistry metrics;
  FleetQueryService service({}, &metrics);

  for (int i = 3; i < 5; ++i) {
    FleetQueryRequest request;
    request.camera = CameraName(i);
    request.tenant = "ops";
    request.query.stream = fleet_->Find(CameraName(i));
    request.query.cls = dominant_class_;
    service.Enqueue(request);
  }
  core::FederatedSelector east;
  east.region = "east";
  auto plan = fleet_->PlanFederated(dominant_class_, east);
  ASSERT_TRUE(plan.ok());
  const uint64_t fed = service.EnqueueFederated(*plan, "analysts");

  EXPECT_EQ(metrics.counter("fleet.enqueued"), 3);
  EXPECT_EQ(metrics.counter("fleet.tenant.ops.enqueued"), 2);
  EXPECT_EQ(metrics.counter("fleet.tenant.analysts.enqueued"), 1);
  EXPECT_DOUBLE_EQ(metrics.gauge("fleet.tenant.ops.queue_depth"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("fleet.tenant.analysts.queue_depth"), 1.0);

  const auto drained = service.DrainAdmitted();
  EXPECT_EQ(drained.size(), 2u);
  ASSERT_TRUE(service.TakeFederated(fed).has_value());

  EXPECT_EQ(metrics.counter("fleet.tenant.ops.admitted"), 2);
  EXPECT_EQ(metrics.counter("fleet.tenant.analysts.admitted"), 1);
  EXPECT_DOUBLE_EQ(metrics.gauge("fleet.tenant.ops.queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("fleet.tenant.analysts.queue_depth"), 0.0);
  EXPECT_EQ(metrics.counter("fleet.requests"), 2);
  EXPECT_EQ(metrics.counter("fleet.federated_queries"), 1);
  EXPECT_EQ(metrics.counter("fleet.federated_cameras"),
            static_cast<int64_t>(plan->cameras.size()));
  EXPECT_GT(metrics.counter("fleet.admissions"), 0);
}

}  // namespace
}  // namespace focus::runtime
