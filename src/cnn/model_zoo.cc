#include "src/cnn/model_zoo.h"

#include "src/cnn/compression.h"
#include "src/cnn/ground_truth.h"
#include "src/common/hashing.h"

namespace focus::cnn {

std::vector<ModelDesc> GenericCheapCandidates(uint64_t weights_seed) {
  ModelDesc resnet18;
  resnet18.name = "resnet18";
  resnet18.layers = 18;
  resnet18.input_px = kGtCnnInputPx;
  resnet18.weights_seed = common::DeriveSeed(weights_seed, common::HashString("resnet18"));

  ModelDesc alexnet;
  alexnet.name = "alexnet";
  alexnet.layers = 8;
  alexnet.input_px = kGtCnnInputPx;
  alexnet.weights_seed = common::DeriveSeed(weights_seed, common::HashString("alexnet"));

  std::vector<ModelDesc> zoo;
  // Figure 5's three reference cheap CNNs.
  zoo.push_back(Compress(resnet18, 0, 224));  // CheapCNN1 (~8x cheaper).
  zoo.push_back(Compress(resnet18, 3, 112));  // CheapCNN2 (~28x cheaper).
  zoo.push_back(Compress(resnet18, 5, 56));   // CheapCNN3 (~58x cheaper).
  // Additional generic options in the search space.
  zoo.push_back(Compress(resnet18, 0, 112));
  zoo.push_back(Compress(alexnet, 0, 112));
  zoo.push_back(Compress(alexnet, 2, 56));
  return zoo;
}

std::vector<SpecializedArch> SpecializedArchGrid() {
  return {
      {18, 112}, {12, 112}, {18, 56}, {12, 56}, {9, 56}, {6, 56},
  };
}

std::vector<std::pair<ModelDesc, BatchCostModel>> GenericCandidateBatchCosts(
    uint64_t weights_seed) {
  std::vector<std::pair<ModelDesc, BatchCostModel>> table;
  for (ModelDesc& desc : GenericCheapCandidates(weights_seed)) {
    BatchCostModel cost = BatchCostModel::For(desc);
    table.emplace_back(std::move(desc), cost);
  }
  return table;
}

}  // namespace focus::cnn
