// Unit tests for the storage substrate: serializer primitives, index snapshot codec,
// atomic snapshot files, the append-only record log (including torn-tail recovery),
// and the video vault's retention logic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

#include "src/index/topk_index.h"
#include "src/storage/index_codec.h"
#include "src/storage/record_log.h"
#include "src/storage/serializer.h"
#include "src/storage/snapshot_store.h"
#include "src/storage/video_vault.h"

namespace focus::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("focus_storage_test_" + name)).string();
}

// --- Serializer ---

TEST(SerializerTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  Decoder dec(enc.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(dec.GetU8(&u8));
  ASSERT_TRUE(dec.GetU32(&u32));
  ASSERT_TRUE(dec.GetU64(&u64));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializerTest, VarintRoundTripAcrossMagnitudes) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  Encoder enc;
  for (uint64_t v : values) {
    enc.PutVarint(v);
  }
  Decoder dec(enc.bytes());
  for (uint64_t expected : values) {
    uint64_t got = 0;
    ASSERT_TRUE(dec.GetVarint(&got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(dec.Done());
}

TEST(SerializerTest, SignedVarintRoundTripIncludingNegatives) {
  const int64_t values[] = {0, -1, 1, -64, 64, std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  Encoder enc;
  for (int64_t v : values) {
    enc.PutSignedVarint(v);
  }
  Decoder dec(enc.bytes());
  for (int64_t expected : values) {
    int64_t got = 0;
    ASSERT_TRUE(dec.GetSignedVarint(&got));
    EXPECT_EQ(got, expected);
  }
}

TEST(SerializerTest, SmallSignedValuesEncodeCompactly) {
  Encoder enc;
  enc.PutSignedVarint(-1);  // ZigZag: one byte.
  EXPECT_EQ(enc.size(), 1u);
}

TEST(SerializerTest, DoubleAndFloatRoundTripExactly) {
  Encoder enc;
  enc.PutDouble(3.14159265358979);
  enc.PutDouble(-0.0);
  enc.PutFloat(2.5f);
  Decoder dec(enc.bytes());
  double d1 = 0;
  double d2 = 0;
  float f = 0;
  ASSERT_TRUE(dec.GetDouble(&d1));
  ASSERT_TRUE(dec.GetDouble(&d2));
  ASSERT_TRUE(dec.GetFloat(&f));
  EXPECT_DOUBLE_EQ(d1, 3.14159265358979);
  EXPECT_EQ(std::signbit(d2), true);
  EXPECT_FLOAT_EQ(f, 2.5f);
}

TEST(SerializerTest, StringRoundTripIncludingEmbeddedNul) {
  Encoder enc;
  enc.PutString(std::string("ab\0cd", 5));
  enc.PutString("");
  Decoder dec(enc.bytes());
  std::string a;
  std::string b;
  ASSERT_TRUE(dec.GetString(&a));
  ASSERT_TRUE(dec.GetString(&b));
  EXPECT_EQ(a, std::string("ab\0cd", 5));
  EXPECT_TRUE(b.empty());
}

TEST(SerializerTest, TruncatedReadsFailCleanly) {
  Encoder enc;
  enc.PutU64(42);
  Decoder dec(std::string_view(enc.bytes()).substr(0, 5));
  uint64_t v = 0;
  EXPECT_FALSE(dec.GetU64(&v));
}

TEST(SerializerTest, MalformedVarintFails) {
  // Eleven continuation bytes exceed the 64-bit range.
  std::string bad(11, static_cast<char>(0xFF));
  Decoder dec(bad);
  uint64_t v = 0;
  EXPECT_FALSE(dec.GetVarint(&v));
}

TEST(SerializerTest, StringLengthBeyondPayloadFails) {
  Encoder enc;
  enc.PutVarint(1000);  // Claims 1000 bytes; none follow.
  Decoder dec(enc.bytes());
  std::string s;
  EXPECT_FALSE(dec.GetString(&s));
}

TEST(SerializerTest, SkipAdvancesAndBoundsChecks) {
  Encoder enc;
  enc.PutU32(7);
  enc.PutU8(9);
  Decoder dec(enc.bytes());
  ASSERT_TRUE(dec.Skip(4));
  uint8_t v = 0;
  ASSERT_TRUE(dec.GetU8(&v));
  EXPECT_EQ(v, 9);
  EXPECT_FALSE(dec.Skip(1));
}

TEST(SerializerTest, Crc32MatchesKnownVector) {
  // Standard check value for the IEEE polynomial.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(SerializerTest, Crc32DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  uint32_t clean = Crc32(data);
  data[3] = static_cast<char>(data[3] ^ 0x01);
  EXPECT_NE(Crc32(data), clean);
}

// --- Index codec ---

index::TopKIndex MakeSmallIndex() {
  index::TopKIndex idx;
  for (int64_t c = 0; c < 3; ++c) {
    index::ClusterEntry entry;
    entry.cluster_id = c;
    entry.size = 10 * (c + 1);
    entry.representative.frame = 100 * c;
    entry.representative.object_id = 7 + c;
    entry.representative.bbox = {1.0f, 2.0f, 14.0f, 14.0f};
    entry.representative.true_class = static_cast<common::ClassId>(42 + c);
    entry.representative.appearance = {0.5f, -0.25f, 0.125f};
    entry.members.push_back({7 + c, 100 * c, 100 * c + 30});
    entry.topk_classes = {static_cast<common::ClassId>(42 + c),
                          static_cast<common::ClassId>(142 + c)};
    entry.topk_ranks = {1, 3};
    idx.AddCluster(std::move(entry));
  }
  return idx;
}

TEST(IndexCodecTest, RoundTripPreservesEverything) {
  index::TopKIndex original = MakeSmallIndex();
  IndexSnapshotHeader header;
  header.stream_name = "auburn_c";
  header.model_name = "spec12_px56";
  header.k = 4;
  header.cluster_threshold = 0.6;
  header.world_seed = 42;
  header.fps = 10.0;
  header.model.name = "spec12_px56";
  header.model.layers = 12;
  header.model.input_px = 56;
  header.model.classes = {3, 9, 27};
  header.model.has_other_class = true;
  header.model.training_variability = 0.55;
  header.model.weights_seed = 77;

  std::string blob = EncodeIndexSnapshot(header, original);
  IndexSnapshotHeader decoded_header;
  index::TopKIndex decoded;
  auto result = DecodeIndexSnapshot(blob, &decoded_header, &decoded);
  ASSERT_TRUE(result.ok()) << result.error().message;

  EXPECT_EQ(decoded_header.stream_name, "auburn_c");
  EXPECT_EQ(decoded_header.model_name, "spec12_px56");
  EXPECT_EQ(decoded_header.k, 4);
  EXPECT_DOUBLE_EQ(decoded_header.cluster_threshold, 0.6);
  EXPECT_EQ(decoded_header.world_seed, 42u);
  EXPECT_DOUBLE_EQ(decoded_header.fps, 10.0);
  EXPECT_EQ(decoded_header.model.name, "spec12_px56");
  EXPECT_EQ(decoded_header.model.layers, 12);
  EXPECT_EQ(decoded_header.model.input_px, 56);
  EXPECT_EQ(decoded_header.model.classes, (std::vector<common::ClassId>{3, 9, 27}));
  EXPECT_TRUE(decoded_header.model.has_other_class);
  EXPECT_DOUBLE_EQ(decoded_header.model.training_variability, 0.55);
  EXPECT_EQ(decoded_header.model.weights_seed, 77u);

  ASSERT_EQ(decoded.num_clusters(), original.num_clusters());
  for (size_t i = 0; i < original.num_clusters(); ++i) {
    const index::ClusterEntry& a = original.clusters()[i];
    const index::ClusterEntry& b = decoded.clusters()[i];
    EXPECT_EQ(a.cluster_id, b.cluster_id);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.representative.frame, b.representative.frame);
    EXPECT_EQ(a.representative.object_id, b.representative.object_id);
    EXPECT_EQ(a.representative.appearance, b.representative.appearance);
    ASSERT_EQ(a.members.size(), b.members.size());
    EXPECT_EQ(a.members[0].first_frame, b.members[0].first_frame);
    EXPECT_EQ(a.topk_classes, b.topk_classes);
    EXPECT_EQ(a.topk_ranks, b.topk_ranks);
  }
  // Postings survive the rebuild.
  EXPECT_EQ(decoded.ClustersForClass(42).size(), 1u);
  EXPECT_EQ(decoded.ClustersForClass(143).size(), 1u);
}

TEST(IndexCodecTest, EmptyIndexRoundTrips) {
  index::TopKIndex empty;
  std::string blob = EncodeIndexSnapshot(IndexSnapshotHeader{}, empty);
  IndexSnapshotHeader header;
  index::TopKIndex decoded;
  ASSERT_TRUE(DecodeIndexSnapshot(blob, &header, &decoded).ok());
  EXPECT_EQ(decoded.num_clusters(), 0u);
}

TEST(IndexCodecTest, RejectsCorruptedByte) {
  std::string blob = EncodeIndexSnapshot(IndexSnapshotHeader{}, MakeSmallIndex());
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x40);
  IndexSnapshotHeader header;
  index::TopKIndex decoded;
  EXPECT_FALSE(DecodeIndexSnapshot(blob, &header, &decoded).ok());
}

TEST(IndexCodecTest, RejectsTruncation) {
  std::string blob = EncodeIndexSnapshot(IndexSnapshotHeader{}, MakeSmallIndex());
  blob.resize(blob.size() - 7);
  IndexSnapshotHeader header;
  index::TopKIndex decoded;
  EXPECT_FALSE(DecodeIndexSnapshot(blob, &header, &decoded).ok());
}

TEST(IndexCodecTest, RejectsBadMagicEvenWithValidCrc) {
  std::string blob = EncodeIndexSnapshot(IndexSnapshotHeader{}, MakeSmallIndex());
  // Flip the magic, then re-stamp the CRC so only the magic check can object.
  blob[0] = 'X';
  const std::string_view body(blob.data(), blob.size() - 4);
  uint32_t crc = Crc32(body);
  for (int i = 0; i < 4; ++i) {
    blob[blob.size() - 4 + static_cast<size_t>(i)] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  IndexSnapshotHeader header;
  index::TopKIndex decoded;
  auto result = DecodeIndexSnapshot(blob, &header, &decoded);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("magic"), std::string::npos);
}

TEST(IndexCodecTest, RejectsEmptyBlob) {
  IndexSnapshotHeader header;
  index::TopKIndex decoded;
  EXPECT_FALSE(DecodeIndexSnapshot("", &header, &decoded).ok());
}

// --- Snapshot store ---

TEST(SnapshotStoreTest, WriteThenReadBack) {
  const std::string path = TempPath("snap.bin");
  std::string payload = "hello\0world";
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  EXPECT_TRUE(FileExists(path));
  std::filesystem::remove(path);
}

TEST(SnapshotStoreTest, OverwriteReplacesAtomically) {
  const std::string path = TempPath("snap_overwrite.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "v2-longer-content").ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v2-longer-content");
  EXPECT_FALSE(FileExists(path + ".tmp"));  // Temp cleaned up.
  std::filesystem::remove(path);
}

TEST(SnapshotStoreTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFile(TempPath("does_not_exist.bin")).ok());
  EXPECT_FALSE(FileExists(TempPath("does_not_exist.bin")));
}

TEST(SnapshotStoreTest, IndexSnapshotSurvivesDiskRoundTrip) {
  const std::string path = TempPath("index_snap.bin");
  index::TopKIndex original = MakeSmallIndex();
  ASSERT_TRUE(WriteFileAtomic(path, EncodeIndexSnapshot(IndexSnapshotHeader{}, original)).ok());
  auto blob = ReadFile(path);
  ASSERT_TRUE(blob.ok());
  IndexSnapshotHeader header;
  index::TopKIndex decoded;
  ASSERT_TRUE(DecodeIndexSnapshot(*blob, &header, &decoded).ok());
  EXPECT_EQ(decoded.num_clusters(), original.num_clusters());
  std::filesystem::remove(path);
}

// --- Record log ---

TEST(RecordLogTest, AppendAndReplay) {
  const std::string path = TempPath("log1.bin");
  std::filesystem::remove(path);
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("alpha").ok());
    ASSERT_TRUE(writer->Append("beta").ok());
    ASSERT_TRUE(writer->Append(std::string("\0\x01\x02", 3)).ok());
    EXPECT_EQ(writer->records_written(), 3);
  }
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0], "alpha");
  EXPECT_EQ(contents->records[1], "beta");
  EXPECT_EQ(contents->records[2], std::string("\0\x01\x02", 3));
  EXPECT_FALSE(contents->truncated_tail);
  std::filesystem::remove(path);
}

TEST(RecordLogTest, MissingLogReadsAsEmpty) {
  auto contents = ReadRecordLog(TempPath("never_created.bin"));
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_FALSE(contents->truncated_tail);
}

TEST(RecordLogTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = TempPath("log_reopen.bin");
  std::filesystem::remove(path);
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("first").ok());
  }
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("second").ok());
  }
  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[0], "first");
  EXPECT_EQ(contents->records[1], "second");
  std::filesystem::remove(path);
}

TEST(RecordLogTest, TornTailIsDroppedNotFatal) {
  const std::string path = TempPath("log_torn.bin");
  std::filesystem::remove(path);
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("complete-record").ok());
    ASSERT_TRUE(writer->Append("will-be-torn").ok());
  }
  // Simulate a crash mid-append: chop bytes off the final record's payload.
  auto blob = ReadFile(path);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(WriteFileAtomic(path, blob->substr(0, blob->size() - 4)).ok());

  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], "complete-record");
  EXPECT_TRUE(contents->truncated_tail);
  std::filesystem::remove(path);
}

TEST(RecordLogTest, CorruptMiddleRecordStopsReplayAtThatPoint) {
  const std::string path = TempPath("log_corrupt.bin");
  std::filesystem::remove(path);
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("good").ok());
    ASSERT_TRUE(writer->Append("bad-soon").ok());
    ASSERT_TRUE(writer->Append("unreachable").ok());
  }
  auto blob = ReadFile(path);
  ASSERT_TRUE(blob.ok());
  std::string mutated = *blob;
  // Flip a byte inside the second record's payload (after the first frame: 8 header
  // bytes + 4 payload bytes; second frame header is 8 more; flip its first byte).
  mutated[8 + 4 + 8] = static_cast<char>(mutated[8 + 4 + 8] ^ 0xFF);
  ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());

  auto contents = ReadRecordLog(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0], "good");
  EXPECT_TRUE(contents->truncated_tail);
  std::filesystem::remove(path);
}

// --- Video vault ---

RecordingChunk Chunk(double begin, double end, int64_t bytes) {
  RecordingChunk c;
  c.begin_sec = begin;
  c.end_sec = end;
  c.size_bytes = bytes;
  c.uri = "chunk://" + std::to_string(static_cast<int64_t>(begin));
  return c;
}

TEST(VideoVaultTest, AppendAndAccounting) {
  VideoVault vault;
  ASSERT_TRUE(vault.AppendChunk("cam1", Chunk(0, 60, 1000)).ok());
  ASSERT_TRUE(vault.AppendChunk("cam1", Chunk(60, 120, 1200)).ok());
  ASSERT_TRUE(vault.AppendChunk("cam2", Chunk(0, 30, 500)).ok());
  const StreamManifest* cam1 = vault.Find("cam1");
  ASSERT_NE(cam1, nullptr);
  EXPECT_DOUBLE_EQ(cam1->RetainedSeconds(), 120.0);
  EXPECT_EQ(cam1->RetainedBytes(), 2200);
  EXPECT_DOUBLE_EQ(cam1->OldestSec().value(), 0.0);
  EXPECT_EQ(vault.TotalBytes(), 2700);
  EXPECT_EQ(vault.StreamNames().size(), 2u);
}

TEST(VideoVaultTest, RejectsOverlapAndBadChunks) {
  VideoVault vault;
  ASSERT_TRUE(vault.AppendChunk("cam", Chunk(0, 60, 10)).ok());
  EXPECT_FALSE(vault.AppendChunk("cam", Chunk(30, 90, 10)).ok());   // Overlap.
  EXPECT_FALSE(vault.AppendChunk("cam", Chunk(100, 100, 10)).ok()); // Zero length.
  EXPECT_FALSE(vault.AppendChunk("cam", Chunk(100, 90, 10)).ok());  // Negative length.
  RecordingChunk negative = Chunk(100, 160, -5);
  EXPECT_FALSE(vault.AppendChunk("cam", negative).ok());
}

TEST(VideoVaultTest, TrimBeforeDropsWholeChunksOnly) {
  VideoVault vault;
  ASSERT_TRUE(vault.AppendChunk("cam", Chunk(0, 60, 10)).ok());
  ASSERT_TRUE(vault.AppendChunk("cam", Chunk(60, 120, 10)).ok());
  ASSERT_TRUE(vault.AppendChunk("cam", Chunk(120, 180, 10)).ok());
  EXPECT_EQ(vault.TrimBefore(119.0), 1);  // Second chunk ends at 120 > 119: kept.
  EXPECT_EQ(vault.Find("cam")->chunks.size(), 2u);
  EXPECT_EQ(vault.TrimBefore(180.0), 2);
  EXPECT_TRUE(vault.Find("cam")->chunks.empty());
}

TEST(VideoVaultTest, TrimToBudgetEvictsOldestFirst) {
  VideoVault vault;
  ASSERT_TRUE(vault.AppendChunk("a", Chunk(0, 60, 100)).ok());
  ASSERT_TRUE(vault.AppendChunk("a", Chunk(60, 120, 100)).ok());
  ASSERT_TRUE(vault.AppendChunk("b", Chunk(10, 70, 100)).ok());
  EXPECT_EQ(vault.TrimToBudget(250), 1);  // Drops a's [0,60) — globally oldest.
  EXPECT_EQ(vault.TotalBytes(), 200);
  EXPECT_DOUBLE_EQ(vault.Find("a")->OldestSec().value(), 60.0);
  EXPECT_EQ(vault.TrimToBudget(0), 2);
  EXPECT_EQ(vault.TotalBytes(), 0);
}

TEST(VideoVaultTest, ManifestRoundTrip) {
  VideoVault vault;
  ASSERT_TRUE(vault.AppendChunk("cam1", Chunk(0, 60, 1000)).ok());
  ASSERT_TRUE(vault.AppendChunk("cam2", Chunk(5, 35, 700)).ok());
  vault.SetIndexSnapshot("cam1", "snap://cam1/latest");

  VideoVault restored;
  ASSERT_TRUE(restored.DecodeManifest(vault.EncodeManifest()).ok());
  const StreamManifest* cam1 = restored.Find("cam1");
  ASSERT_NE(cam1, nullptr);
  EXPECT_EQ(cam1->index_snapshot_uri, "snap://cam1/latest");
  ASSERT_EQ(cam1->chunks.size(), 1u);
  EXPECT_DOUBLE_EQ(cam1->chunks[0].end_sec, 60.0);
  EXPECT_EQ(restored.TotalBytes(), 1700);
}

TEST(VideoVaultTest, ManifestRejectsCorruption) {
  VideoVault vault;
  ASSERT_TRUE(vault.AppendChunk("cam", Chunk(0, 60, 10)).ok());
  std::string blob = vault.EncodeManifest();
  blob[6] = static_cast<char>(blob[6] ^ 0x10);
  VideoVault restored;
  EXPECT_FALSE(restored.DecodeManifest(blob).ok());
}

}  // namespace
}  // namespace focus::storage
