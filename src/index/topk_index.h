// The top-K ingest index (§3, §4.1).
//
// Maps object class -> clusters whose ingest-time top-K classification included that
// class, and cluster -> [centroid object, member frame runs]. This is the sole output
// of ingest-time processing and the sole input of query-time processing:
//
//   object class -> <cluster ID>
//   cluster ID   -> [centroid object, <objects> in cluster, <frame IDs> of objects]
//
// Each cluster stores its indexed classes *ranked* by aggregated ingest-CNN
// confidence, which is what enables the dynamic query-time Kx refinement of §5
// (filtering with a smaller Kx <= K uses a prefix of the ranked list).
#ifndef FOCUS_SRC_INDEX_TOPK_INDEX_H_
#define FOCUS_SRC_INDEX_TOPK_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/incremental_clusterer.h"
#include "src/common/result.h"
#include "src/common/time_types.h"
#include "src/index/kv_store.h"
#include "src/video/detection.h"

namespace focus::index {

struct ClusterEntry {
  int64_t cluster_id = 0;
  // The centroid object: the detection the GT-CNN classifies at query time.
  video::Detection representative;
  // Member frame runs (per object).
  std::vector<cluster::MemberRun> members;
  // Indexed classes: the union of the members' ingest-CNN top-K classes, ordered by
  // |topk_ranks| (a cluster is indexed under X when any member's top-K contained X).
  std::vector<common::ClassId> topk_classes;
  // Parallel to |topk_classes|: the best (smallest, 1-based) rank the class achieved
  // in any member's output. Enables the §5 dynamic-Kx filter: the cluster matches X
  // within Kx iff best_rank(X) <= Kx.
  std::vector<int32_t> topk_ranks;
  int64_t size = 0;  // Member detections.

  // Whether |cls| was within the top |kx| of some member's classification.
  bool MatchesWithin(common::ClassId cls, int kx) const {
    for (size_t i = 0; i < topk_classes.size(); ++i) {
      if (topk_classes[i] == cls) {
        return topk_ranks.size() != topk_classes.size() ||
               topk_ranks[i] <= static_cast<int32_t>(kx);
      }
    }
    return false;
  }

  int64_t TotalFrameCount() const {
    int64_t n = 0;
    for (const cluster::MemberRun& run : members) {
      n += run.FrameCount();
    }
    return n;
  }
};

class TopKIndex {
 public:
  TopKIndex() = default;

  // Adds a finalized cluster and updates the class postings.
  void AddCluster(ClusterEntry entry);

  // Delta build (windowed streaming finalize, src/core/live_snapshot.h):
  // carries cluster |prev_slot| of the previous epoch's index forward into
  // this one unchanged (renumbered to this index's next dense id). Skips the
  // per-entry construction work — the rank fold and ranked-class sort — that
  // a canonical cluster untouched since the previous snapshot would only
  // repeat verbatim.
  void AddClusterFrom(const TopKIndex& prev, size_t prev_slot);

  // Cluster ids whose top-K classes include |cls| (posting list; unordered).
  const std::vector<int64_t>& ClustersForClass(common::ClassId cls) const;

  const ClusterEntry& cluster(int64_t id) const { return clusters_.at(static_cast<size_t>(id)); }
  const std::vector<ClusterEntry>& clusters() const { return clusters_; }
  size_t num_clusters() const { return clusters_.size(); }

  // All classes with a non-empty posting list.
  std::vector<common::ClassId> IndexedClasses() const;

  // Total member detections across clusters.
  int64_t total_indexed_detections() const { return total_detections_; }

  // --- Persistence (MongoDB-equivalent storage, §5) ---
  common::Result<bool> SaveTo(KvStore& store, const std::string& prefix) const;
  common::Result<bool> LoadFrom(const KvStore& store, const std::string& prefix);

  // Absorbs every cluster of |other| into this index, renumbering cluster ids to
  // stay dense and shifting all frame references (member runs and representatives)
  // by |frame_offset|. This is the compaction step for continuous recording: each
  // ingest shard (hour, day) indexes frames from zero, and merging with the shard's
  // global start frame as the offset yields one queryable index for the whole
  // retention window.
  void MergeFrom(TopKIndex other, common::FrameIndex frame_offset = 0);

 private:
  std::vector<ClusterEntry> clusters_;
  std::map<common::ClassId, std::vector<int64_t>> postings_;
  std::vector<int64_t> empty_;
  int64_t total_detections_ = 0;
};

}  // namespace focus::index

#endif  // FOCUS_SRC_INDEX_TOPK_INDEX_H_
