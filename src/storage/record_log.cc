#include "src/storage/record_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/fault_injection.h"
#include "src/storage/serializer.h"
#include "src/storage/snapshot_store.h"

namespace focus::storage {
namespace {

// write(2) until done or error; returns bytes written (short on error).
size_t WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += static_cast<size_t>(n);
  }
  return written;
}

}  // namespace

common::Result<RecordLogWriter> RecordLogWriter::Open(const std::string& path, bool truncate,
                                                      FsyncOptions fsync) {
  int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return common::Error{common::ErrorCode::kIo,
                         "record log open: " + path + ": " + std::strerror(errno)};
  }
  RecordLogWriter writer;
  writer.path_ = path;
  writer.fd_ = fd;
  writer.fsync_ = fsync;
  return writer;
}

RecordLogWriter::RecordLogWriter(RecordLogWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      fsync_(other.fsync_),
      records_written_(other.records_written_) {}

RecordLogWriter& RecordLogWriter::operator=(RecordLogWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    fsync_ = other.fsync_;
    records_written_ = other.records_written_;
  }
  return *this;
}

RecordLogWriter::~RecordLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

common::Result<bool> RecordLogWriter::Append(const std::string& payload) {
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  std::string bytes = frame.TakeBytes();
  bytes.append(payload);
  if (common::FaultPoint("record_log.append")) {
    // Tear the write for real: half the frame lands in the file, then the
    // "device" errors. Recovery must truncate this tail on replay.
    WriteAll(fd_, bytes.data(), bytes.size() / 2);
    return common::Unavailable("injected record_log.append short write: " + path_);
  }
  if (WriteAll(fd_, bytes.data(), bytes.size()) != bytes.size()) {
    return common::Error{common::ErrorCode::kIo,
                         "record log append: " + path_ + ": " + std::strerror(errno)};
  }
  ++records_written_;
  if (fsync_.ShouldSync(records_written_)) {
    if (::fsync(fd_) != 0) {
      return common::Error{common::ErrorCode::kIo,
                           "record log fsync: " + path_ + ": " + std::strerror(errno)};
    }
  }
  return true;
}

common::Result<RecordLogContents> ReadRecordLog(const std::string& path) {
  RecordLogContents contents;
  if (!FileExists(path)) {
    return contents;
  }
  auto blob = ReadFile(path);
  if (!blob.ok()) {
    return blob.error();
  }
  Decoder dec(*blob);
  while (!dec.Done()) {
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!dec.GetU32(&length) || !dec.GetU32(&crc) || length > dec.remaining()) {
      contents.truncated_tail = true;  // Torn frame header or short payload.
      break;
    }
    std::string payload(blob->data() + dec.offset(), length);
    if (Crc32(payload) != crc) {
      contents.truncated_tail = true;  // Torn payload write.
      break;
    }
    dec.Skip(length);  // Past the payload just validated.
    contents.records.push_back(std::move(payload));
  }
  return contents;
}

}  // namespace focus::storage
