// Substrate microbenchmarks (google-benchmark): the per-operation costs behind the
// system-level numbers — simulated CNN classification and feature extraction,
// incremental clustering, top-K index operations, KvStore persistence, and the
// pixel-level vision path.
#include <benchmark/benchmark.h>

#include "src/cluster/incremental_clusterer.h"
#include "src/cnn/cnn.h"
#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/common/logging.h"
#include "src/index/kv_store.h"
#include "src/index/topk_index.h"
#include "src/video/renderer.h"
#include "src/video/stream_generator.h"
#include "src/vision/motion_detector.h"

namespace {

using namespace focus;

const video::ClassCatalog& Catalog() {
  static video::ClassCatalog catalog(42);
  return catalog;
}

video::Detection MakeDetection(common::ObjectId object, common::FrameIndex frame) {
  video::Detection d;
  d.object_id = object;
  d.frame = frame;
  d.true_class = static_cast<common::ClassId>(object % 50);
  common::Pcg32 rng(common::DeriveSeed(7, static_cast<uint64_t>(object)));
  d.appearance = common::PerturbedUnitVector(Catalog().Archetype(d.true_class), 0.75, rng);
  return d;
}

void BM_CnnClassifyTopK(benchmark::State& state) {
  cnn::Cnn cheap(cnn::GenericCheapCandidates(42)[0], &Catalog());
  int k = static_cast<int>(state.range(0));
  int64_t i = 0;
  for (auto _ : state) {
    video::Detection d = MakeDetection(i % 256, i / 256);
    benchmark::DoNotOptimize(cheap.Classify(d, k));
    ++i;
  }
}
BENCHMARK(BM_CnnClassifyTopK)->Arg(4)->Arg(16)->Arg(64)->Arg(192);

void BM_CnnExtractFeature(benchmark::State& state) {
  cnn::Cnn cheap(cnn::GenericCheapCandidates(42)[0], &Catalog());
  int64_t i = 0;
  for (auto _ : state) {
    video::Detection d = MakeDetection(i % 256, i / 256);
    benchmark::DoNotOptimize(cheap.ExtractFeature(d));
    ++i;
  }
}
BENCHMARK(BM_CnnExtractFeature);

void BM_GtCnnTop1(benchmark::State& state) {
  cnn::Cnn gt(cnn::GtCnnDesc(42), &Catalog());
  int64_t i = 0;
  for (auto _ : state) {
    video::Detection d = MakeDetection(i % 256, i / 256);
    benchmark::DoNotOptimize(gt.Top1(d));
    ++i;
  }
}
BENCHMARK(BM_GtCnnTop1);

void BM_ClustererAdd(benchmark::State& state) {
  cluster::ClustererOptions opts;
  opts.threshold = 0.6;
  opts.mode = state.range(0) == 0 ? cluster::ClustererOptions::Mode::kExact
                                  : cluster::ClustererOptions::Mode::kFast;
  cluster::IncrementalClusterer clusterer(opts);
  cnn::Cnn cheap(cnn::GenericCheapCandidates(42)[0], &Catalog());
  int64_t i = 0;
  for (auto _ : state) {
    video::Detection d = MakeDetection(i % 64, i / 64);
    clusterer.Add(d, cheap.ExtractFeature(d));
    ++i;
  }
  state.counters["clusters"] = static_cast<double>(clusterer.num_clusters());
}
BENCHMARK(BM_ClustererAdd)->Arg(0)->Arg(1);

void BM_TopKIndexLookup(benchmark::State& state) {
  index::TopKIndex idx;
  common::Pcg32 rng(5);
  for (int64_t c = 0; c < 20000; ++c) {
    index::ClusterEntry e;
    e.cluster_id = c;
    e.size = 10;
    e.members.push_back({c, c * 10, c * 10 + 9});
    for (int j = 0; j < 4; ++j) {
      e.topk_classes.push_back(static_cast<common::ClassId>(rng.NextBounded(1000)));
    }
    idx.AddCluster(std::move(e));
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.ClustersForClass(static_cast<common::ClassId>(i++ % 1000)));
  }
}
BENCHMARK(BM_TopKIndexLookup);

void BM_KvStoreRoundTrip(benchmark::State& state) {
  index::KvStore store;
  for (int i = 0; i < 1000; ++i) {
    store.Put("key" + std::to_string(i), std::string(200, 'x'));
  }
  std::string path = "/tmp/focus_bench_kv.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.SaveToFile(path).ok());
    index::KvStore loaded;
    benchmark::DoNotOptimize(loaded.LoadFromFile(path).ok());
  }
}
BENCHMARK(BM_KvStoreRoundTrip);

void BM_BackgroundSubtraction(benchmark::State& state) {
  video::StreamProfile profile;
  video::FindProfile("jacksonh", &profile);
  video::StreamRun run(&Catalog(), profile, 30.0, 30.0, 3);
  video::Renderer renderer(&run);
  vision::MotionDetector detector(profile.frame_width, profile.frame_height);
  common::FrameIndex f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(renderer.Render(f % 900)));
    ++f;
  }
}
BENCHMARK(BM_BackgroundSubtraction);

void BM_StreamSweep(benchmark::State& state) {
  video::StreamProfile profile;
  video::FindProfile("auburn_c", &profile);
  video::StreamRun run(&Catalog(), profile, 60.0, 30.0, 3);
  for (auto _ : state) {
    int64_t n = 0;
    run.ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
      n += static_cast<int64_t>(dets.size());
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_StreamSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  focus::common::SetLogLevel(focus::common::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
