file(REMOVE_RECURSE
  "CMakeFiles/bench_wallclock_gpus.dir/bench/bench_wallclock_gpus.cc.o"
  "CMakeFiles/bench_wallclock_gpus.dir/bench/bench_wallclock_gpus.cc.o.d"
  "bench_wallclock_gpus"
  "bench_wallclock_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wallclock_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
