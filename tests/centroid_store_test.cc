// Unit and property tests for the SoA centroid store: bookkeeping invariants
// under add/update/remove churn, and FindNearest agreement (including tie
// semantics) with a brute-force scalar scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/cluster/centroid_store.h"
#include "src/common/feature_vector.h"
#include "src/common/rng.h"

namespace focus::cluster {
namespace {

using common::FeatureVec;

FeatureVec Vec(std::initializer_list<float> values) { return FeatureVec(values); }

TEST(CentroidStoreTest, AddContainsRemoveRoundTrip) {
  CentroidStore store;
  FeatureVec a = Vec({1.0f, 0.0f});
  FeatureVec b = Vec({0.0f, 1.0f});
  store.Add(0, a.data(), 2, 1);
  store.Add(1, b.data(), 2, 1);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(0));
  EXPECT_TRUE(store.Contains(1));
  EXPECT_FALSE(store.Contains(2));

  const float* row = store.CentroidOf(1);
  ASSERT_NE(row, nullptr);
  EXPECT_FLOAT_EQ(row[0], 0.0f);
  EXPECT_FLOAT_EQ(row[1], 1.0f);

  store.Remove(0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains(0));
  EXPECT_EQ(store.CentroidOf(0), nullptr);
  // Swap-with-last must keep the survivor addressable.
  row = store.CentroidOf(1);
  ASSERT_NE(row, nullptr);
  EXPECT_FLOAT_EQ(row[1], 1.0f);
}

TEST(CentroidStoreTest, UpdateRefreshesCentroidAndNorm) {
  CentroidStore store;
  FeatureVec a = Vec({3.0f, 4.0f});
  store.Add(0, a.data(), 2, 1);
  EXPECT_NEAR(store.norms()[0], 5.0f, 1e-6);
  FeatureVec b = Vec({0.0f, 2.0f});
  store.Update(0, b.data());
  EXPECT_NEAR(store.norms()[0], 2.0f, 1e-6);
  EXPECT_FLOAT_EQ(store.CentroidOf(0)[1], 2.0f);
}

TEST(CentroidStoreTest, FindNearestEmptyReturnsMinusOne) {
  CentroidStore store;
  FeatureVec q = Vec({1.0f});
  EXPECT_EQ(store.FindNearest(q.data(), 1, 1.0f, nullptr), -1);
}

TEST(CentroidStoreTest, FindNearestRespectsThreshold) {
  CentroidStore store;
  FeatureVec a = Vec({0.0f, 0.0f});
  store.Add(0, a.data(), 2, 1);
  FeatureVec q = Vec({1.0f, 0.0f});
  float d = -1.0f;
  EXPECT_EQ(store.FindNearest(q.data(), 2, 0.5f, &d), -1);  // 1.0 > 0.5.
  EXPECT_EQ(store.FindNearest(q.data(), 2, 1.0f, &d), 0);   // 1.0 <= 1.0.
  EXPECT_NEAR(d, 1.0f, 1e-6);
}

TEST(CentroidStoreTest, FindNearestBreaksTiesTowardSmallestId) {
  CentroidStore store;
  // Two centroids exactly equidistant from the query, inserted with the larger
  // id occupying the earlier slot after a remove/re-add shuffle.
  FeatureVec left = Vec({-1.0f, 0.0f});
  FeatureVec right = Vec({1.0f, 0.0f});
  FeatureVec filler = Vec({5.0f, 5.0f});
  store.Add(7, right.data(), 2, 1);
  store.Add(9, filler.data(), 2, 1);
  store.Add(3, left.data(), 2, 1);
  store.Remove(9);  // Swap-with-last: id 3 now sits in slot 1, before nothing.
  FeatureVec q = Vec({0.0f, 0.0f});
  float d = -1.0f;
  // Both at distance 1; the smaller id must win regardless of slot order.
  EXPECT_EQ(store.FindNearest(q.data(), 2, 2.0f, &d), 3);
  EXPECT_NEAR(d, 1.0f, 1e-6);
}

// Brute-force scalar reference over the store's current contents with the exact
// (distance, id) tie ordering FindNearest promises.
int64_t BruteForceNearest(const CentroidStore& store, const FeatureVec& q, size_t dim,
                          double threshold_sq) {
  int64_t best = -1;
  double best_dist = std::numeric_limits<double>::max();
  for (int64_t id : store.ids()) {
    const float* row = store.CentroidOf(id);
    FeatureVec c(row, row + dim);
    double d = common::SquaredL2Distance(c, q);
    if (d <= threshold_sq && (d < best_dist || (d == best_dist && id < best))) {
      best_dist = d;
      best = id;
    }
  }
  return best;
}

TEST(CentroidStoreTest, FindNearestAgreesWithBruteForceUnderChurn) {
  // Dims straddling the head-tile width to cover head-only and resumed scans.
  for (size_t dim : {8u, 63u, 64u, 65u, 200u}) {
    common::Pcg32 rng(1000 + dim);
    CentroidStore store;
    std::vector<int64_t> live;
    int64_t next_id = 0;
    const double threshold = 1.1;  // Unit-sphere scale: some hits, some misses.
    const double threshold_sq = threshold * threshold;
    for (int step = 0; step < 400; ++step) {
      double action = rng.NextDouble();
      if (action < 0.5 || live.empty()) {
        FeatureVec v = common::RandomUnitVector(dim, rng);
        store.Add(next_id, v.data(), dim, 1);
        live.push_back(next_id++);
      } else if (action < 0.65) {
        size_t pick = rng.Next() % live.size();
        store.Remove(live[pick]);
        live.erase(live.begin() + static_cast<long>(pick));
        if (live.empty()) {
          continue;
        }
      } else if (action < 0.8) {
        size_t pick = rng.Next() % live.size();
        FeatureVec v = common::RandomUnitVector(dim, rng);
        store.Update(live[pick], v.data());
      }
      FeatureVec q = common::RandomUnitVector(dim, rng);
      float d = -1.0f;
      int64_t got = store.FindNearest(q.data(), dim, static_cast<float>(threshold_sq), &d);
      int64_t want = BruteForceNearest(store, q, dim, threshold_sq);
      ASSERT_EQ(got, want) << "dim=" << dim << " step=" << step;
    }
  }
}

TEST(CentroidStoreTest, ResetKeepsStoreUsable) {
  CentroidStore store;
  FeatureVec a = Vec({1.0f, 2.0f, 3.0f});
  store.Add(0, a.data(), 3, 1);
  store.Reset();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dim(), 0u);
  EXPECT_FALSE(store.Contains(0));
  // A Reset store accepts a different dimensionality.
  FeatureVec b = Vec({1.0f, 0.0f});
  store.Add(5, b.data(), 2, 1);
  EXPECT_EQ(store.size(), 1u);
  FeatureVec q = Vec({0.9f, 0.0f});
  EXPECT_EQ(store.FindNearest(q.data(), 2, 1.0f, nullptr), 5);
}

TEST(CentroidStoreTest, NormPruneSkipsFarNormCandidatesExactly) {
  const size_t dim = 128;
  common::Pcg32 rng(77);
  CentroidStore store;
  // Centroids at wildly different norms; the prune should fire for most of them
  // without ever changing the winner.
  for (int64_t id = 0; id < 50; ++id) {
    FeatureVec v = common::RandomUnitVector(dim, rng);
    common::ScaleInPlace(v, 0.1 * static_cast<double>(id + 1));
    store.Add(id, v.data(), dim, 1);
  }
  for (int rep = 0; rep < 50; ++rep) {
    FeatureVec q = common::RandomUnitVector(dim, rng);
    common::ScaleInPlace(q, 0.1 * static_cast<double>(1 + rng.Next() % 50));
    float d = -1.0f;
    int64_t got = store.FindNearest(q.data(), dim, 0.25f, &d);
    EXPECT_EQ(got, BruteForceNearest(store, q, dim, 0.25)) << "rep=" << rep;
  }
  EXPECT_GT(store.scan_pruned(), 0);
}

}  // namespace
}  // namespace focus::cluster
