// A fault decorator over StreamRun: the camera misbehaves, deterministically.
//
// Real deployments (§5) lose frames to encoder hiccups, deliver duplicates from
// RTSP retries, go dark for seconds when the camera flaps, and cut the stream
// entirely when the uplink dies. FlakyStreamRun injects all four over an intact
// underlying recording:
//
//   - restart_at_frames: delivery attempt k stops (SweepStats::aborted) when it
//     reaches restart_at_frames[k] — a mid-stream cut. Attempts beyond the list
//     run clean, so a supervised, checkpoint-resuming consumer converges to the
//     uninterrupted result. Frame *content* is untouched in restarts-only mode,
//     which is what makes the byte-identity property testable.
//   - drop_probability: a sampled frame is never delivered.
//   - duplicate_probability: a delivered frame is delivered again (same index).
//   - flap_probability/flap_length_frames: the camera goes dark for a window.
//
// Content faults draw from Pcg32(DeriveSeed(seed, attempt)): every attempt's
// fault sequence is a pure function of (seed, attempt), so chaos runs reproduce.
#ifndef FOCUS_SRC_VIDEO_FLAKY_STREAM_H_
#define FOCUS_SRC_VIDEO_FLAKY_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/common/time_types.h"
#include "src/video/stream_generator.h"

namespace focus::video {

struct FlakyStreamOptions {
  // Attempt k (0-based) aborts delivery upon reaching frame restart_at_frames[k].
  std::vector<common::FrameIndex> restart_at_frames;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double flap_probability = 0.0;  // Per-delivered-frame chance a flap window opens.
  common::FrameIndex flap_length_frames = 0;
  uint64_t seed = 0;
};

class FlakyStreamRun : public StreamRun {
 public:
  FlakyStreamRun(const StreamRun& base, FlakyStreamOptions options)
      : StreamRun(base), options_(std::move(options)) {}

  SweepStats ForEachFrame(const FrameCallback& callback) const override;

  // Delivery attempts so far (each ForEachFrame call is one attempt).
  int attempts() const { return attempts_; }

 private:
  FlakyStreamOptions options_;
  mutable int attempts_ = 0;
};

}  // namespace focus::video

#endif  // FOCUS_SRC_VIDEO_FLAKY_STREAM_H_
