// focusctl: command-line front end for the Focus library.
//
// The operator workflow the paper implies — index a stream, ship the index, answer
// queries later on another machine — as four subcommands over self-contained index
// snapshot files (.fidx, see src/storage/index_codec.h). The snapshot embeds the
// ingest model descriptor and world seed, so `query` needs nothing but the file.
//
//   focusctl streams
//       List the 13 Table-1 stream profiles.
//   focusctl ingest --stream auburn_c --minutes 10 [--seed 7] [--fps 30]
//                   [--policy balance|opt-ingest|opt-query] --out auburn.fidx
//       Simulate the recording, tune, ingest, and write the index snapshot.
//   focusctl inspect --snapshot auburn.fidx
//       Print header and index statistics.
//   focusctl query --snapshot auburn.fidx --class car [--kx 2]
//                  [--begin 60] [--end 300] [--gpus 10]
//       Answer "find frames with <class>" from the snapshot; report frames, GPU
//       cost, and wall-clock latency on a GPU fleet.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"
#include "src/core/query_engine.h"
#include "src/runtime/gpu_device.h"
#include "src/storage/index_codec.h"
#include "src/storage/snapshot_store.h"
#include "src/video/stream_generator.h"

namespace {

using namespace focus;

// Minimal --flag value parser: flags may appear in any order; unknown flags fail.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        ok_ = false;
        bad_ = key;
        return;
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::string Get(const std::string& key, const std::string& fallback = "") {
    seen_.push_back(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }

  uint64_t GetU64(const std::string& key, uint64_t fallback) {
    std::string v = Get(key);
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }

  int GetInt(const std::string& key, int fallback) {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atoi(v.c_str());
  }

  // Flags the subcommand never asked about.
  std::vector<std::string> Unknown() const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : values_) {
      bool used = false;
      for (const std::string& s : seen_) {
        used = used || s == key;
      }
      if (!used) {
        unknown.push_back("--" + key);
      }
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> seen_;
  bool ok_ = true;
  std::string bad_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  focusctl streams\n"
               "  focusctl ingest  --stream NAME --minutes M --out FILE\n"
               "                   [--seed N] [--fps F] [--policy balance|opt-ingest|opt-query]\n"
               "  focusctl inspect --snapshot FILE\n"
               "  focusctl query   --snapshot FILE --class NAME\n"
               "                   [--kx N] [--begin SEC] [--end SEC] [--gpus N]\n");
  return 2;
}

int CmdStreams() {
  std::printf("%-12s %-13s %-14s %s\n", "Name", "Type", "Location", "Description");
  for (const video::StreamProfile& p : video::Table1Profiles()) {
    std::printf("%-12s %-13s %-14s %s\n", p.name.c_str(), video::StreamTypeName(p.type),
                p.location.c_str(), p.description.c_str());
  }
  return 0;
}

int CmdIngest(Args& args) {
  const std::string stream = args.Get("stream");
  const double minutes = args.GetDouble("minutes", 10.0);
  const std::string out = args.Get("out");
  const uint64_t seed = args.GetU64("seed", 42);
  const double fps = args.GetDouble("fps", 30.0);
  const std::string policy_name = args.Get("policy", "balance");
  if (stream.empty() || out.empty()) {
    return Usage();
  }

  video::StreamProfile profile;
  if (!video::FindProfile(stream, &profile)) {
    std::fprintf(stderr, "unknown stream '%s' (see: focusctl streams)\n", stream.c_str());
    return 1;
  }
  core::FocusOptions options;
  if (policy_name == "opt-ingest") {
    options.policy = core::Policy::kOptIngest;
  } else if (policy_name == "opt-query") {
    options.policy = core::Policy::kOptQuery;
  } else if (policy_name != "balance") {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 1;
  }

  video::ClassCatalog catalog(seed);
  video::StreamRun run(&catalog, profile, minutes * 60.0, fps, seed + 1);
  std::printf("tuning + ingesting %.1f min of %s (policy %s)...\n", minutes, stream.c_str(),
              core::PolicyName(options.policy));
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  const core::FocusStream& focus = **focus_or;
  const core::IngestParams& params = focus.chosen_params();

  storage::IndexSnapshotHeader header;
  header.stream_name = stream;
  header.model_name = params.model.name;
  header.k = params.k;
  header.cluster_threshold = params.cluster_threshold;
  header.world_seed = seed;
  header.fps = fps;
  header.model = params.model;
  std::string blob = storage::EncodeIndexSnapshot(header, focus.ingest().index);
  auto written = storage::WriteFileAtomic(out, blob);
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n", written.error().message.c_str());
    return 1;
  }

  const double gt_all = static_cast<double>(focus.ingest().detections) *
                        focus.gt_cnn().inference_cost_millis();
  std::printf("  model=%s K=%d T=%.2f\n", params.model.name.c_str(), params.k,
              params.cluster_threshold);
  std::printf("  detections=%lld clusters=%lld ingest_gpu=%.1fs (%.0fx cheaper than GT-all)\n",
              static_cast<long long>(focus.ingest().detections),
              static_cast<long long>(focus.ingest().num_clusters),
              focus.ingest().gpu_millis / 1000.0, gt_all / focus.ingest().gpu_millis);
  std::printf("  wrote %s (%.1f KiB)\n", out.c_str(),
              static_cast<double>(blob.size()) / 1024.0);
  return 0;
}

common::Result<std::pair<storage::IndexSnapshotHeader, index::TopKIndex>> LoadSnapshot(
    const std::string& path) {
  auto blob = storage::ReadFile(path);
  if (!blob.ok()) {
    return blob.error();
  }
  storage::IndexSnapshotHeader header;
  index::TopKIndex index;
  auto decoded = storage::DecodeIndexSnapshot(*blob, &header, &index);
  if (!decoded.ok()) {
    return decoded.error();
  }
  return std::make_pair(std::move(header), std::move(index));
}

int CmdInspect(Args& args) {
  const std::string path = args.Get("snapshot");
  if (path.empty()) {
    return Usage();
  }
  auto loaded = LoadSnapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
    return 1;
  }
  const auto& [header, index] = *loaded;
  video::ClassCatalog catalog(header.world_seed);

  std::printf("snapshot:   %s\n", path.c_str());
  std::printf("stream:     %s @ %.0f fps (world seed %llu)\n", header.stream_name.c_str(),
              header.fps, static_cast<unsigned long long>(header.world_seed));
  std::printf("model:      %s (layers=%d, input=%dpx, labels=%d%s)\n",
              header.model_name.c_str(), header.model.layers, header.model.input_px,
              header.model.label_space_size(),
              header.model.has_other_class ? " incl. OTHER" : "");
  std::printf("parameters: K=%d T=%.2f\n", header.k, header.cluster_threshold);
  std::printf("clusters:   %zu (%lld indexed detections)\n", index.num_clusters(),
              static_cast<long long>(index.total_indexed_detections()));

  // Top indexed classes by posting size.
  std::vector<std::pair<size_t, common::ClassId>> by_postings;
  for (common::ClassId cls : index.IndexedClasses()) {
    by_postings.emplace_back(index.ClustersForClass(cls).size(), cls);
  }
  std::sort(by_postings.rbegin(), by_postings.rend());
  std::printf("top indexed classes (of %zu):\n", by_postings.size());
  for (size_t i = 0; i < std::min<size_t>(8, by_postings.size()); ++i) {
    common::ClassId cls = by_postings[i].second;
    const char* name = cls == cnn::kOtherClass ? "OTHER" : catalog.Name(cls).c_str();
    std::printf("  %-20s %zu clusters\n", name, by_postings[i].first);
  }
  return 0;
}

int CmdQuery(Args& args) {
  const std::string path = args.Get("snapshot");
  const std::string class_name = args.Get("class");
  const int kx = args.GetInt("kx", -1);
  const int gpus = args.GetInt("gpus", 10);
  common::TimeRange range;
  range.begin_sec = args.GetDouble("begin", 0.0);
  range.end_sec = args.GetDouble("end", -1.0);
  if (path.empty() || class_name.empty()) {
    return Usage();
  }

  auto loaded = LoadSnapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
    return 1;
  }
  const auto& [header, index] = *loaded;

  video::ClassCatalog catalog(header.world_seed);
  common::ClassId cls = catalog.IdForName(class_name);
  if (cls == common::kInvalidClass) {
    std::fprintf(stderr, "unknown class '%s'\n", class_name.c_str());
    return 1;
  }

  cnn::Cnn ingest_cnn(header.model, &catalog);
  cnn::Cnn gt(cnn::GtCnnDesc(header.world_seed), &catalog);
  core::QueryEngine engine(&index, &ingest_cnn, &gt);
  core::QueryResult result = engine.Query(cls, kx, range, header.fps);

  std::printf("query '%s' on %s (Kx=%d):\n", class_name.c_str(), header.stream_name.c_str(),
              kx > 0 ? kx : header.k);
  std::printf("  frames returned:      %lld (%lld runs)\n",
              static_cast<long long>(result.frames_returned),
              static_cast<long long>(result.frame_runs.size()));
  std::printf("  clusters confirmed:   %lld of %lld candidates\n",
              static_cast<long long>(result.clusters_matched),
              static_cast<long long>(result.centroids_classified));
  std::printf("  GT-CNN work:          %.1f s GPU time\n", result.gpu_millis / 1000.0);
  std::printf("  wall latency (%d GPUs): %.2f s\n", gpus,
              runtime::ParallelLatencyMillis(result.centroids_classified,
                                             gt.inference_cost_millis(), gpus) /
                  1000.0);
  for (size_t i = 0; i < std::min<size_t>(5, result.frame_runs.size()); ++i) {
    const auto& [first, last] = result.frame_runs[i];
    std::printf("  e.g. frames [%lld, %lld]  (t=%.1fs..%.1fs)\n",
                static_cast<long long>(first), static_cast<long long>(last),
                static_cast<double>(first) / header.fps,
                static_cast<double>(last) / header.fps);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::SetLogLevel(common::LogLevel::kWarning);
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) {
    std::fprintf(stderr, "bad argument '%s' (flags take values: --flag value)\n",
                 args.bad().c_str());
    return 2;
  }

  int rc = 0;
  if (command == "streams") {
    rc = CmdStreams();
  } else if (command == "ingest") {
    rc = CmdIngest(args);
  } else if (command == "inspect") {
    rc = CmdInspect(args);
  } else if (command == "query") {
    rc = CmdQuery(args);
  } else {
    return Usage();
  }
  for (const std::string& flag : args.Unknown()) {
    std::fprintf(stderr, "warning: unused flag %s\n", flag.c_str());
  }
  return rc;
}
