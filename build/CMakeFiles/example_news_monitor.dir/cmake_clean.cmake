file(REMOVE_RECURSE
  "CMakeFiles/example_news_monitor.dir/examples/news_monitor.cpp.o"
  "CMakeFiles/example_news_monitor.dir/examples/news_monitor.cpp.o.d"
  "example_news_monitor"
  "example_news_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_news_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
