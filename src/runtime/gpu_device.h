// Virtual GPU devices and clusters (§5 "GPUs for CNN classification").
//
// The paper's metrics are measured in GPU time, but its latency claims ("with a
// 10-GPU cluster, the query latency on a 24-hour video goes down from one hour to
// less than two minutes") depend on how that GPU time schedules onto a fleet of
// accelerators. This module models that scheduling in virtual time: a GpuDevice is a
// FIFO execution resource; a GpuCluster dispatches jobs to the least-loaded device.
// Jobs are CNN inference batches with costs taken from the cnn cost model; no real
// accelerator is involved, which is exactly the substitution DESIGN.md documents for
// the authors' NVIDIA testbed.
//
// All times are common::GpuMillis on a virtual clock owned by the caller. Devices are
// deterministic: the same submission sequence always yields the same schedule.
#ifndef FOCUS_SRC_RUNTIME_GPU_DEVICE_H_
#define FOCUS_SRC_RUNTIME_GPU_DEVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/time_types.h"

namespace focus::runtime {

// Completion record of one submitted job.
struct GpuJobTicket {
  int device = -1;                      // Index of the executing device.
  common::GpuMillis start_millis = 0;   // When the device began the job.
  common::GpuMillis finish_millis = 0;  // When the job completed.
};

// One accelerator: a FIFO queue in virtual time. A job submitted at virtual time t
// with cost c starts at max(t, device_free_at) and occupies the device for c.
class GpuDevice {
 public:
  GpuDevice() = default;

  // Submits a job of |cost_millis| at virtual time |now_millis|; returns its
  // schedule. |cost_millis| must be >= 0.
  GpuJobTicket Submit(common::GpuMillis now_millis, common::GpuMillis cost_millis);

  // Virtual time at which the device next becomes idle.
  common::GpuMillis free_at() const { return free_at_; }

  // Total virtual time the device has spent executing jobs.
  common::GpuMillis busy_millis() const { return busy_millis_; }

  int64_t jobs_executed() const { return jobs_executed_; }

  // Fraction of [0, horizon] the device spent busy; 0 for a zero horizon.
  double UtilizationOver(common::GpuMillis horizon_millis) const;

  // Forgets all state (free_at, counters).
  void Reset();

 private:
  common::GpuMillis free_at_ = 0;
  common::GpuMillis busy_millis_ = 0;
  int64_t jobs_executed_ = 0;
};

// Aggregate load statistics for a cluster.
struct GpuClusterStats {
  int num_devices = 0;
  int64_t jobs_executed = 0;
  common::GpuMillis total_busy_millis = 0;
  common::GpuMillis makespan_millis = 0;  // max over devices of free_at.
  double imbalance = 0.0;                 // max busy / mean busy (1.0 = perfectly even).
};

// A fleet of identical devices with least-loaded (earliest-free) dispatch. This is
// the "disaggregated on a remote cluster" deployment of §5; the same interface also
// models the single local GPU (size 1).
class GpuCluster {
 public:
  // |num_devices| must be >= 1.
  explicit GpuCluster(int num_devices);

  // Submits one job at |now_millis| to the device that frees up earliest (ties to
  // the lowest index, keeping dispatch deterministic).
  GpuJobTicket Submit(common::GpuMillis now_millis, common::GpuMillis cost_millis);

  // Fallible submit, consulting the fault-injection sites:
  //   "gpu.launch"  - the launch is rejected up front (driver error, OOM on the
  //                   device): no device time is occupied; returns Unavailable.
  //   "gpu.timeout" - the job wedges: it occupies its device for the full cost
  //                   (the virtual time is genuinely wasted) but returns Timeout
  //                   instead of a usable result.
  // With no fault armed, behaves exactly like Submit. Callers that must survive
  // flaky GPUs route launches through this and retry per their RetryPolicy.
  common::Result<GpuJobTicket> TrySubmit(common::GpuMillis now_millis,
                                         common::GpuMillis cost_millis);

  // Submits |count| identical jobs at |now_millis| and returns the virtual time at
  // which the last one finishes. This is the wall-clock latency of an
  // embarrassingly-parallel classification batch (a query's centroid set, §5
  // "We parallelize a query's work across many worker processes").
  common::GpuMillis SubmitBatch(common::GpuMillis now_millis, int64_t count,
                                common::GpuMillis cost_each_millis);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const GpuDevice& device(int i) const { return devices_.at(static_cast<size_t>(i)); }

  // Earliest virtual time at which some device is idle.
  common::GpuMillis EarliestFree() const;

  GpuClusterStats Stats() const;
  void Reset();

 private:
  std::vector<GpuDevice> devices_;
};

// Wall-clock latency (virtual millis) of classifying |count| images of cost
// |cost_each_millis| on a fresh |num_gpus|-device cluster. Pure convenience for
// benches and examples reporting "query latency on an N-GPU cluster".
common::GpuMillis ParallelLatencyMillis(int64_t count, common::GpuMillis cost_each_millis,
                                        int num_gpus);

}  // namespace focus::runtime

#endif  // FOCUS_SRC_RUNTIME_GPU_DEVICE_H_
