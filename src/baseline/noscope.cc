#include "src/baseline/noscope.h"

#include <algorithm>
#include <unordered_map>

#include "src/cnn/model_desc.h"
#include "src/common/hashing.h"

namespace focus::baseline {

NoScopeSession::NoScopeSession(const video::StreamRun* run, const video::ClassCatalog* catalog,
                               const cnn::Cnn* gt_cnn, NoScopeOptions options)
    : run_(run), catalog_(catalog), gt_cnn_(gt_cnn), options_(options) {}

const cnn::Cnn& NoScopeSession::ModelFor(common::ClassId cls, common::GpuMillis* train_cost) {
  auto it = models_.find(cls);
  if (it != models_.end()) {
    *train_cost = 0.0;  // Cached from an earlier query for the same class.
    return it->second;
  }

  // Training data: GT-CNN labels over the train sample. The labelling is the
  // GPU-bearing part of training (NoScope distills from the reference model).
  const double sample_sec = std::min(options_.train_sample_sec, run_->duration_sec());
  const common::FrameIndex limit = static_cast<common::FrameIndex>(sample_sec * run_->fps());
  int64_t labelled = 0;
  run_->ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (frame >= limit) {
      return;
    }
    labelled += static_cast<int64_t>(dets.size());
  });
  *train_cost = static_cast<double>(labelled) * gt_cnn_->inference_cost_millis();

  // The binary specialized model: class X vs OTHER. Variability follows the stream
  // (a NoScope model is as stream-specialized as a Focus one).
  cnn::ModelDesc desc;
  desc.name = "noscope_" + catalog_->Name(cls);
  desc.layers = options_.layers;
  desc.input_px = options_.input_px;
  desc.classes = {cls};
  desc.has_other_class = true;
  desc.training_variability = run_->profile().appearance_variability;
  desc.weights_seed = common::DeriveSeed(run_->seed(), common::HashString(desc.name));

  auto [inserted, unused] = models_.emplace(cls, cnn::Cnn(desc, catalog_));
  return inserted->second;
}

NoScopeQueryResult NoScopeSession::Query(common::ClassId cls, common::TimeRange range) {
  NoScopeQueryResult result;
  result.query.queried = cls;

  const cnn::Cnn& binary = ModelFor(cls, &result.train_gpu_millis);

  // Difference-detector state: last verdict per object.
  std::unordered_map<common::ObjectId, bool> last_verdict;
  std::vector<std::pair<common::FrameIndex, common::FrameIndex>> hit_runs;

  run_->ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (!range.ContainsFrame(frame, run_->fps())) {
      return;
    }
    for (const video::Detection& d : dets) {
      bool positive = false;
      auto it = last_verdict.find(d.object_id);
      if (options_.use_difference_detector && d.pixel_diff_suppressed &&
          it != last_verdict.end()) {
        positive = it->second;  // Crop unchanged: reuse the previous verdict.
      } else {
        // Stage 1: the binary model filters.
        ++result.binary_invocations;
        result.filter_gpu_millis += binary.inference_cost_millis();
        if (binary.Top1(d) == cls) {
          // Stage 2: GT-CNN verifies every binary positive.
          ++result.verified_detections;
          result.verify_gpu_millis += gt_cnn_->inference_cost_millis();
          positive = gt_cnn_->Top1(d) == cls;
        }
        last_verdict[d.object_id] = positive;
      }
      if (positive) {
        hit_runs.emplace_back(d.frame, d.frame);
      }
    }
  });

  result.query.frame_runs = core::MergeFrameRuns(std::move(hit_runs));
  for (const auto& [first, last] : result.query.frame_runs) {
    result.query.frames_returned += last - first + 1;
  }
  result.query.gpu_millis = result.total_gpu_millis();
  return result;
}

}  // namespace focus::baseline
