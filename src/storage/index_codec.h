// Versioned binary snapshot format for the top-K ingest index.
//
// The paper persists its index in MongoDB (§5); the KvStore path (TopKIndex::SaveTo)
// covers that access pattern. This codec is the complementary bulk format: one
// compact blob per stream that an operator can ship between machines or archive with
// the recording. Layout:
//
//   [magic "FIDX"] [version u32] [header: stream name, k, model name, cluster count]
//   [cluster records...] [crc32 of everything before it]
//
// Decoding validates magic, version, CRC and internal counts, and fails soft
// (Result) on any mismatch — a truncated or corrupted snapshot must never crash a
// query server at startup.
#ifndef FOCUS_SRC_STORAGE_INDEX_CODEC_H_
#define FOCUS_SRC_STORAGE_INDEX_CODEC_H_

#include <string>

#include "src/cnn/model_desc.h"
#include "src/common/result.h"
#include "src/index/topk_index.h"

namespace focus::storage {

// Metadata stored alongside the clusters — enough to stand up a query server from
// the snapshot alone: the full ingest ModelDesc (for label-space mapping of queried
// classes, §4.3 OTHER semantics) and the world seed (to reconstruct the catalog and
// the GT-CNN).
struct IndexSnapshotHeader {
  std::string stream_name;
  std::string model_name;
  int32_t k = 0;
  double cluster_threshold = 0.0;
  uint64_t world_seed = 0;
  double fps = 30.0;  // Native frame rate of the indexed recording.
  cnn::ModelDesc model;
};

inline constexpr uint32_t kIndexCodecVersion = 1;

// Serializes |index| with |header| into a self-validating blob.
std::string EncodeIndexSnapshot(const IndexSnapshotHeader& header, const index::TopKIndex& index);

// Parses a blob produced by EncodeIndexSnapshot. On success fills both outputs;
// errors carry the reason (bad magic, version skew, CRC mismatch, truncation).
common::Result<bool> DecodeIndexSnapshot(const std::string& blob, IndexSnapshotHeader* header,
                                         index::TopKIndex* index);

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_INDEX_CODEC_H_
