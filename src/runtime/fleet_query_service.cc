#include "src/runtime/fleet_query_service.h"

#include <algorithm>
#include <functional>

#include "src/common/logging.h"

namespace focus::runtime {

namespace {

// Splitmix-style combine; the camera string dominates, epoch/cluster spread it.
size_t MixHash(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t FleetQueryService::CacheKeyHash::operator()(const CacheKey& key) const {
  size_t h = std::hash<std::string>{}(key.camera);
  h = MixHash(h, std::hash<uint64_t>{}(key.epoch));
  h = MixHash(h, std::hash<int64_t>{}(static_cast<int64_t>(key.cluster_id)));
  return h;
}

FleetQueryService::FleetQueryService(FleetQueryServiceOptions options,
                                     MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics != nullptr ? metrics : &GlobalMetrics()),
      cluster_(options.num_gpus) {
  FOCUS_CHECK(options.batch_size >= 1);
}

FleetQueryService::Unit FleetQueryService::UnitFromRequest(const FleetQueryRequest& request) {
  FOCUS_CHECK(!request.camera.empty());
  const QueryRequest& query = request.query;
  FOCUS_CHECK((query.stream != nullptr) != (query.snapshot != nullptr));
  Unit unit;
  unit.camera = request.camera;
  if (query.stream != nullptr) {
    unit.plan = query.stream->Plan(query.cls, query.kx, query.range);
    unit.gt = &query.stream->gt_cnn();
    unit.stream = query.stream;
  } else {
    FOCUS_CHECK(query.ingest_cnn != nullptr && query.gt_cnn != nullptr);
    unit.epoch = query.snapshot->epoch;
    unit.plan = core::QueryEngine(query.snapshot.get(), query.ingest_cnn, query.gt_cnn)
                    .Plan(query.cls, query.kx, query.range, query.fps);
    unit.gt = query.gt_cnn;
    unit.snapshot = query.snapshot;
    unit.ingest_cnn = query.ingest_cnn;
  }
  return unit;
}

FleetQueryService::Unit FleetQueryService::UnitFromFederated(
    const core::FederatedCameraPlan& camera) {
  Unit unit;
  unit.camera = camera.camera;
  unit.epoch = camera.epoch;
  unit.plan = camera.plan;
  if (camera.stream != nullptr) {
    unit.gt = &camera.stream->gt_cnn();
    unit.stream = camera.stream;
  } else {
    FOCUS_CHECK(camera.snapshot != nullptr);
    unit.gt = camera.gt_cnn;
    unit.snapshot = camera.snapshot;
    unit.ingest_cnn = camera.ingest_cnn;
  }
  return unit;
}

const common::ClassId* FleetQueryService::CacheLookupLocked(const CacheKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh: most recently used.
  return &it->second->second;
}

void FleetQueryService::CacheInsertLocked(CacheKey key, common::ClassId top1) {
  if (options_.verdict_cache_capacity == 0) {
    return;
  }
  FOCUS_CHECK(!cache_.contains(key));  // Only misses are inserted.
  lru_.emplace_front(std::move(key), top1);
  cache_.emplace(lru_.front().first, lru_.begin());
  while (cache_.size() > options_.verdict_cache_capacity) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.cache_evicted;
  }
}

void FleetQueryService::RetireEpochsLocked(const std::string& camera, uint64_t newest_epoch) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.camera == camera && it->first.epoch < newest_epoch) {
      cache_.erase(it->first);
      it = lru_.erase(it);
      ++stats_.cache_retired;
    } else {
      ++it;
    }
  }
}

std::vector<FleetQueryService::UnitOutcome> FleetQueryService::ExecuteUnitsLocked(
    const std::vector<Unit>& units, common::GpuMillis* submit_out) {
  const common::GpuMillis submit = cluster_.EarliestFree();
  *submit_out = submit;
  const int64_t cache_hits_before = stats_.cache_hits;
  const int64_t cache_misses_before = stats_.cache_misses;

  // Epoch advance first, across the whole admission: the first sighting of a
  // newer epoch of a camera retires every cached verdict of its older epochs
  // (a unit still pinning a stale snapshot in this same admission simply
  // re-pays — its entries re-enter the cache under the old epoch and age out
  // by LRU).
  for (const Unit& unit : units) {
    uint64_t& newest = newest_epoch_[unit.camera];
    if (unit.epoch > newest) {
      RetireEpochsLocked(unit.camera, unit.epoch);
      newest = unit.epoch;
    }
  }

  // Phase 1 — resolve every work item against the global cache and deduplicate
  // within the admission. |local| pins this admission's verdict per key so that
  // concurrent duplicates are counted (and paid) once; fresh keys are marked
  // pending until their launch lands.
  struct LocalVerdict {
    common::ClassId top1 = common::kInvalidClass;
    common::GpuMillis finish_millis = 0.0;
    bool failed = false;
    bool pending = false;
  };
  struct FreshItem {
    size_t unit = 0;
    int64_t cluster_id = -1;
    const video::Detection* centroid = nullptr;
  };
  std::unordered_map<CacheKey, LocalVerdict, CacheKeyHash> local;
  std::vector<FreshItem> fresh;
  for (size_t u = 0; u < units.size(); ++u) {
    for (const core::CentroidWorkItem& item : units[u].plan.work) {
      ++stats_.work_items;
      CacheKey key{units[u].camera, units[u].epoch, item.cluster_id};
      if (local.contains(key)) {
        ++stats_.dedup_hits;
        continue;
      }
      if (const common::ClassId* hit = CacheLookupLocked(key)) {
        // A cached verdict costs nothing and waits on nothing: it contributes
        // the admission instant as its finish time.
        ++stats_.cache_hits;
        local.emplace(std::move(key), LocalVerdict{*hit, submit, false, false});
        continue;
      }
      ++stats_.cache_misses;
      fresh.push_back(FreshItem{u, item.cluster_id, item.centroid});
      local.emplace(std::move(key), LocalVerdict{common::kInvalidClass, 0.0, false, true});
    }
  }

  // Phase 2 — group fresh items by model architecture (cnn::ModelPackKey): one
  // launch runs one architecture, but per-camera instances of the same
  // architecture pool freely (each item is still classified through its own
  // Cnn instance — identical outputs to per-element classification). Groups
  // keep first-appearance order; items within a group keep admission order.
  struct PackGroup {
    const cnn::Cnn* cost_rep = nullptr;  // Any member; the key pins the cost curve.
    std::vector<size_t> items;           // Indices into |fresh|.
  };
  std::vector<PackGroup> groups;
  std::map<cnn::ModelPackKey, size_t> group_of;
  for (size_t f = 0; f < fresh.size(); ++f) {
    const cnn::Cnn* gt = units[fresh[f].unit].gt;
    auto [it, inserted] = group_of.try_emplace(gt->pack_key(), groups.size());
    if (inserted) {
      groups.push_back(PackGroup{gt, {}});
    }
    groups[it->second].items.push_back(f);
  }

  // Phase 3 — pack each group into launches (parallelism first, then
  // amortization up to batch_size: the query_service.h schedule), then order
  // submission across groups by estimated launch cost, heaviest first:
  // longest-processing-time onto the least-loaded device keeps heterogeneous
  // GT-CNN mixes balanced. Submission order affects the schedule (latency)
  // only — verdict values are launch-order independent.
  struct Launch {
    size_t group = 0;
    int64_t offset = 0;
    int64_t count = 0;
    common::GpuMillis estimate = 0.0;
  };
  std::vector<Launch> launches;
  for (size_t g = 0; g < groups.size(); ++g) {
    const int64_t n = static_cast<int64_t>(groups[g].items.size());
    const cnn::BatchCostModel cost_model = groups[g].cost_rep->batch_cost_model();
    const int64_t by_amortization =
        (n + options_.batch_size - 1) / static_cast<int64_t>(options_.batch_size);
    const int64_t rounds =
        (by_amortization + options_.num_gpus - 1) / static_cast<int64_t>(options_.num_gpus);
    const int64_t num_launches =
        std::min<int64_t>(n, rounds * static_cast<int64_t>(options_.num_gpus));
    const int64_t base = n / num_launches;
    const int64_t remainder = n % num_launches;
    int64_t offset = 0;
    for (int64_t launch = 0; launch < num_launches; ++launch) {
      const int64_t count = base + (launch < remainder ? 1 : 0);
      launches.push_back(Launch{g, offset, count, cost_model.EstimateMillis(count)});
      offset += count;
    }
  }
  std::stable_sort(launches.begin(), launches.end(),
                   [](const Launch& a, const Launch& b) { return a.estimate > b.estimate; });

  std::vector<const video::Detection*> crops;
  std::vector<cnn::TopKResult> classified;
  std::vector<common::ClassId> launch_verdicts;
  for (const Launch& launch : launches) {
    const PackGroup& group = groups[launch.group];
    // Classify the launch's items. Members may come from different cameras
    // (different Cnn instances of the one architecture): classify each
    // consecutive same-instance segment through its own instance.
    launch_verdicts.clear();
    int64_t seg_begin = launch.offset;
    while (seg_begin < launch.offset + launch.count) {
      const cnn::Cnn* gt = units[fresh[group.items[static_cast<size_t>(seg_begin)]].unit].gt;
      int64_t seg_end = seg_begin;
      crops.clear();
      while (seg_end < launch.offset + launch.count &&
             units[fresh[group.items[static_cast<size_t>(seg_end)]].unit].gt == gt) {
        crops.push_back(fresh[group.items[static_cast<size_t>(seg_end)]].centroid);
        ++seg_end;
      }
      gt->ClassifyBatch(crops, /*k=*/1, &classified);
      for (const cnn::TopKResult& result : classified) {
        launch_verdicts.push_back(result.Top1());
      }
      seg_begin = seg_end;
    }
    const common::GpuMillis cost = group.cost_rep->BatchCostMillis(launch.count);
    // Bounded-retry launch (docs/robustness.md), same loop as QueryService:
    // re-submit at the then-current frontier plus exponential backoff; a
    // timeout occupied a device for the full cost (wasted and accounted).
    const common::RetryPolicy& policy = options_.launch_retry;
    const int max_attempts = std::max(1, policy.max_attempts);
    double backoff = policy.initial_backoff_millis;
    common::GpuMillis at = submit;
    common::Result<GpuJobTicket> ticket = cluster_.TrySubmit(at, cost);
    for (int attempt = 1; !ticket.ok(); ++attempt) {
      if (ticket.error().code == common::ErrorCode::kTimeout) {
        stats_.wasted_gpu_millis += cost;
      }
      if (attempt >= max_attempts || !common::IsRetryable(ticket.error().code)) {
        break;
      }
      ++stats_.launch_retries;
      at = std::max(at, cluster_.EarliestFree()) + backoff;
      backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_millis);
      ticket = cluster_.TrySubmit(at, cost);
    }
    for (int64_t i = 0; i < launch.count; ++i) {
      const FreshItem& item = fresh[group.items[static_cast<size_t>(launch.offset + i)]];
      CacheKey key{units[item.unit].camera, units[item.unit].epoch, item.cluster_id};
      LocalVerdict& verdict = local.at(key);
      FOCUS_CHECK(verdict.pending);
      verdict.pending = false;
      if (ticket.ok()) {
        verdict.top1 = launch_verdicts[static_cast<size_t>(i)];
        verdict.finish_millis = ticket->finish_millis;
        // Only successful verdicts enter the global cache; a failure is not a
        // fact about the centroid.
        CacheInsertLocked(std::move(key), verdict.top1);
      } else {
        verdict.failed = true;
        verdict.finish_millis = at;
      }
    }
    if (ticket.ok()) {
      ++stats_.launches;
      stats_.gpu_millis += cost;
    } else {
      ++stats_.launches_failed;
    }
  }

  // Phase 4 — fold verdicts back per unit, in plan order. A unit finishes when
  // the last launch carrying one of its verdicts finishes; a fully-cached (or
  // empty) unit finishes at the admission instant — zero added latency.
  std::vector<UnitOutcome> outcomes;
  outcomes.reserve(units.size());
  for (const Unit& unit : units) {
    UnitOutcome outcome;
    outcome.verdicts.reserve(unit.plan.work.size());
    outcome.finish_millis = submit;
    for (const core::CentroidWorkItem& item : unit.plan.work) {
      const LocalVerdict& verdict = local.at(CacheKey{unit.camera, unit.epoch, item.cluster_id});
      outcome.verdicts.push_back(verdict.top1);
      outcome.finish_millis = std::max(outcome.finish_millis, verdict.finish_millis);
      outcome.failed = outcome.failed || verdict.failed;
    }
    outcomes.push_back(std::move(outcome));
  }

  stats_.cache_size = cache_.size();
  metrics_->IncrementCounter("fleet.admissions");
  metrics_->IncrementCounter("fleet.cache_hits", stats_.cache_hits - cache_hits_before);
  metrics_->IncrementCounter("fleet.cache_misses", stats_.cache_misses - cache_misses_before);
  metrics_->Observe("fleet.admission_launches", static_cast<double>(launches.size()));
  return outcomes;
}

QueryExecution FleetQueryService::ResolveUnit(const Unit& unit, const UnitOutcome& outcome,
                                              common::GpuMillis submit) const {
  QueryExecution execution;
  execution.submit_millis = submit;
  execution.finish_millis = outcome.finish_millis;
  if (outcome.failed) {
    execution.error = common::Unavailable(
        "GT-CNN launch failed after " +
        std::to_string(std::max(1, options_.launch_retry.max_attempts)) + " attempts");
    return execution;
  }
  execution.result = unit.stream != nullptr
                         ? unit.stream->Resolve(unit.plan, outcome.verdicts)
                         : core::QueryEngine(unit.snapshot.get(), unit.ingest_cnn, unit.gt)
                               .Resolve(unit.plan, outcome.verdicts);
  return execution;
}

QueryExecution FleetQueryService::Execute(const FleetQueryRequest& request) {
  return ExecuteConcurrently({request})[0];
}

std::vector<QueryExecution> FleetQueryService::ExecuteConcurrently(
    const std::vector<FleetQueryRequest>& requests) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Unit> units;
  units.reserve(requests.size());
  for (const FleetQueryRequest& request : requests) {
    units.push_back(UnitFromRequest(request));
  }
  stats_.requests += static_cast<int64_t>(requests.size());
  common::GpuMillis submit = 0.0;
  const std::vector<UnitOutcome> outcomes = ExecuteUnitsLocked(units, &submit);
  std::vector<QueryExecution> executions;
  executions.reserve(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    QueryExecution execution = ResolveUnit(units[u], outcomes[u], submit);
    metrics_->IncrementCounter("fleet.requests");
    if (execution.error.has_value()) {
      metrics_->IncrementCounter("fleet.requests_failed");
    } else {
      metrics_->Observe("fleet.latency_millis", execution.latency_millis());
    }
    executions.push_back(std::move(execution));
  }
  return executions;
}

FederatedExecution FleetQueryService::ExecuteFederated(const core::FederatedPlan& plan,
                                                       const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Unit> units;
  units.reserve(plan.cameras.size());
  for (const core::FederatedCameraPlan& camera : plan.cameras) {
    units.push_back(UnitFromFederated(camera));
  }
  stats_.requests += 1;
  common::GpuMillis submit = 0.0;
  const std::vector<UnitOutcome> outcomes = ExecuteUnitsLocked(units, &submit);

  FederatedExecution federated;
  federated.submit_millis = submit;
  federated.finish_millis = submit;
  std::vector<core::QueryResult> per_camera;
  per_camera.reserve(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    QueryExecution execution = ResolveUnit(units[u], outcomes[u], submit);
    federated.finish_millis = std::max(federated.finish_millis, execution.finish_millis);
    if (execution.error.has_value() && !federated.error.has_value()) {
      federated.error = execution.error;
    }
    per_camera.push_back(std::move(execution.result));
  }
  federated.result = core::MergeFederatedResults(plan, std::move(per_camera));
  metrics_->IncrementCounter("fleet.federated_queries");
  metrics_->IncrementCounter("fleet.federated_cameras", static_cast<int64_t>(units.size()));
  if (federated.error.has_value()) {
    metrics_->IncrementCounter("fleet.requests_failed");
  } else {
    metrics_->Observe("fleet.latency_millis", federated.latency_millis());
  }
  (void)tenant;  // Federated admission is immediate; tenancy shapes queued work.
  return federated;
}

std::vector<common::ClassId> FleetQueryService::ClassifySessionPlan(
    const std::string& camera, const core::FocusStream& stream, const core::QueryPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  Unit unit;
  unit.camera = camera;
  unit.plan = plan;
  unit.gt = &stream.gt_cnn();
  stats_.requests += 1;
  common::GpuMillis submit = 0.0;
  std::vector<UnitOutcome> outcomes = ExecuteUnitsLocked({std::move(unit)}, &submit);
  metrics_->IncrementCounter("fleet.session_expansions");
  return std::move(outcomes[0].verdicts);
}

void FleetQueryService::SetTenantWeight(const std::string& tenant, double weight) {
  FOCUS_CHECK(weight > 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  tenant_weights_[tenant] = weight;
}

uint64_t FleetQueryService::Enqueue(FleetQueryRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  const std::string tenant = request.tenant;
  queues_[tenant].emplace_back(ticket, std::move(request));
  metrics_->IncrementCounter("fleet.enqueued");
  return ticket;
}

std::vector<std::pair<uint64_t, QueryExecution>> FleetQueryService::DrainAdmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, QueryExecution>> drained;
  // Deficit round robin over tenants in name order: each round a tenant earns
  // its weight in credits and dequeues one request per whole credit (FIFO
  // within the tenant). Every round executes as ONE pooled admission — its
  // requests share dedup, cache, and launches, and later rounds submit at the
  // advanced cluster frontier with earlier rounds' verdicts already cached.
  std::map<std::string, double> credit;
  bool work_left = true;
  while (work_left) {
    std::vector<uint64_t> tickets;
    std::vector<FleetQueryRequest> round;
    work_left = false;
    for (auto& [tenant, queue] : queues_) {
      if (queue.empty()) {
        continue;
      }
      auto weight_it = tenant_weights_.find(tenant);
      credit[tenant] += weight_it != tenant_weights_.end() ? weight_it->second : 1.0;
      while (credit[tenant] >= 1.0 && !queue.empty()) {
        credit[tenant] -= 1.0;
        tickets.push_back(queue.front().first);
        round.push_back(std::move(queue.front().second));
        queue.pop_front();
      }
      work_left = work_left || !queue.empty();
    }
    if (round.empty()) {
      continue;  // All fractional weights this round; credits accumulate.
    }
    std::vector<Unit> units;
    units.reserve(round.size());
    for (const FleetQueryRequest& request : round) {
      units.push_back(UnitFromRequest(request));
    }
    stats_.requests += static_cast<int64_t>(round.size());
    common::GpuMillis submit = 0.0;
    const std::vector<UnitOutcome> outcomes = ExecuteUnitsLocked(units, &submit);
    for (size_t u = 0; u < units.size(); ++u) {
      QueryExecution execution = ResolveUnit(units[u], outcomes[u], submit);
      metrics_->IncrementCounter("fleet.requests");
      if (execution.error.has_value()) {
        metrics_->IncrementCounter("fleet.requests_failed");
      } else {
        metrics_->Observe("fleet.latency_millis", execution.latency_millis());
      }
      drained.emplace_back(tickets[u], std::move(execution));
    }
  }
  for (auto it = queues_.begin(); it != queues_.end();) {
    it = it->second.empty() ? queues_.erase(it) : std::next(it);
  }
  return drained;
}

std::map<std::string, size_t> FleetQueryService::QueueDepths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, size_t> depths;
  for (const auto& [tenant, queue] : queues_) {
    if (!queue.empty()) {
      depths[tenant] = queue.size();
    }
  }
  return depths;
}

FleetServiceStats FleetQueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetServiceStats snapshot = stats_;
  snapshot.cache_size = cache_.size();
  return snapshot;
}

}  // namespace focus::runtime
