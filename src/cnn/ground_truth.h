// Ground-truth machinery: the GT-CNN and segment-level truth construction.
//
// Following the paper (§6.1), ground truth is *defined* as what the GT-CNN
// (ResNet152) reports, smoothed over one-second segments: a class is present in a
// segment when the GT-CNN reports it in at least 50% of the segment's frames, which
// filters the GT-CNN's own frame-to-frame flicker.
#ifndef FOCUS_SRC_CNN_GROUND_TRUTH_H_
#define FOCUS_SRC_CNN_GROUND_TRUTH_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/cnn/cnn.h"
#include "src/common/time_types.h"
#include "src/video/stream_generator.h"

namespace focus::cnn {

// Builds the GT-CNN descriptor (ResNet152 @ 224, generic 1000-class space).
ModelDesc GtCnnDesc(uint64_t weights_seed);

// Per-segment ground truth for one stream: for each segment, the set of classes
// present under the 50%-of-frames rule.
class SegmentGroundTruth {
 public:
  // Sweeps |run| once, labelling every detection with |gt_cnn|'s top-1 output.
  SegmentGroundTruth(const video::StreamRun& run, const Cnn& gt_cnn);

  // Segments in which |cls| is present.
  const std::set<common::SegmentId>& SegmentsWithClass(common::ClassId cls) const;

  // All classes present in at least one segment, with the number of segments each
  // covers (the basis for choosing "dominant" classes in the evaluation).
  const std::map<common::ClassId, int64_t>& segments_per_class() const {
    return segments_per_class_;
  }

  // Object counts per GT label (the distribution the specialization trainer also
  // estimates from samples).
  const std::map<common::ClassId, int64_t>& objects_per_class() const {
    return objects_per_class_;
  }

  // The dominant classes: most frequent classes covering |coverage| of all objects
  // (capped at |max_classes|), ordered most-frequent first. The paper evaluates query
  // metrics over these (§6.1 "Metrics").
  std::vector<common::ClassId> DominantClasses(double coverage, size_t max_classes) const;

  int64_t num_segments() const { return num_segments_; }

  // Detections the GT-CNN labelled while building the truth (one inference each).
  int64_t total_detections() const { return total_detections_; }

 private:
  int64_t total_detections_ = 0;
  std::map<common::ClassId, std::set<common::SegmentId>> segments_with_class_;
  std::map<common::ClassId, int64_t> segments_per_class_;
  std::map<common::ClassId, int64_t> objects_per_class_;
  std::set<common::SegmentId> empty_;
  int64_t num_segments_ = 0;
};

}  // namespace focus::cnn

#endif  // FOCUS_SRC_CNN_GROUND_TRUTH_H_
