#include "src/cnn/accuracy_model.h"

#include <algorithm>
#include <cmath>

namespace focus::cnn {

namespace {

// Calibration constants (see file comment in accuracy_model.h for the anchors).
constexpr double kTop1Intercept = 0.06;
constexpr double kTop1Slope = 0.9;
constexpr double kTop1Max = 0.96;
constexpr double kTop1Min = 0.02;
constexpr double kTailShrink = 1.02;
constexpr double kFeatureNoiseFloor = 0.04;
constexpr double kFeatureNoiseScale = 0.30;
constexpr double kFlickerFloor = 0.10;
constexpr double kFlickerScale = 0.25;

}  // namespace

double ModelCapacity(const ModelDesc& desc) {
  double depth = static_cast<double>(desc.layers) / kGtCnnLayers;
  double res = static_cast<double>(desc.input_px) / kGtCnnInputPx;
  return std::sqrt(std::max(1e-6, depth)) * std::sqrt(std::max(1e-6, res));
}

double TaskDifficulty(const ModelDesc& desc) {
  double n = static_cast<double>(std::max(2, desc.label_space_size()));
  double breadth = std::log(n) / std::log(static_cast<double>(video::kNumClasses));
  return std::max(0.05, breadth * desc.training_variability);
}

AccuracyParams ComputeAccuracy(const ModelDesc& desc) {
  double s = ModelCapacity(desc) / TaskDifficulty(desc);
  AccuracyParams params;
  params.top1_accuracy = std::clamp(kTop1Intercept + kTop1Slope * s, kTop1Min, kTop1Max);
  double n = static_cast<double>(std::max(2, desc.label_space_size()));
  params.log_rank_tail = std::max(std::log(2.0), std::log(n) * (kTailShrink - s));
  params.feature_noise = kFeatureNoiseFloor + kFeatureNoiseScale * std::exp(-3.0 * s);
  params.flicker_prob = kFlickerFloor + kFlickerScale * std::exp(-2.0 * s);
  return params;
}

double RecallAtK(const AccuracyParams& params, int k, int label_space) {
  k = std::clamp(k, 1, std::max(1, label_space));
  if (k == label_space) {
    return 1.0;
  }
  double tail = params.log_rank_tail;
  double recall = params.top1_accuracy +
                  (1.0 - params.top1_accuracy) * std::log(static_cast<double>(k)) / tail;
  return std::clamp(recall, 0.0, 1.0);
}

int SampleRank(const AccuracyParams& params, int label_space, common::Pcg32& rng) {
  if (label_space <= 1) {
    return 1;
  }
  if (rng.NextBool(params.top1_accuracy)) {
    return 1;
  }
  // Log-uniform tail: rank = ceil(exp(u)), u ~ U(0, log_rank_tail], clamped to the
  // label space. exp(u) >= 1, and ceil of values in (1, 2] is rank 2, so a miss never
  // silently lands back on rank 1.
  double u = rng.NextDouble() * params.log_rank_tail;
  double r = std::exp(u);
  int rank = static_cast<int>(std::ceil(std::max(2.0, r + 1e-12)));
  return std::min(rank, label_space);
}

}  // namespace focus::cnn
