#include "src/storage/serializer.h"

#include <cstring>

namespace focus::storage {

namespace {

// Table-driven CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xEDB88320u : 0u);
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = ~seed;
  for (char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xFF];
  }
  return ~crc;
}

void Encoder::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  bytes_.push_back(static_cast<char>(v));
}

void Encoder::PutSignedVarint(int64_t v) {
  // ZigZag: small magnitudes of either sign stay short.
  PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void Encoder::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutFloat(float v) {
  uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  bytes_.append(s.data(), s.size());
}

bool Decoder::Take(size_t n, const char** out) {
  if (remaining() < n) {
    return false;
  }
  *out = bytes_.data() + offset_;
  offset_ += n;
  return true;
}

bool Decoder::GetU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) {
    return false;
  }
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Decoder::GetU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return true;
}

bool Decoder::GetU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return true;
}

bool Decoder::GetVarint(uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (true) {
    // 10 bytes encode up to 70 bits; reject longer (malformed) sequences.
    if (shift >= 64) {
      return false;
    }
    uint8_t byte = 0;
    if (!GetU8(&byte)) {
      return false;
    }
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
  }
}

bool Decoder::GetSignedVarint(int64_t* v) {
  uint64_t raw = 0;
  if (!GetVarint(&raw)) {
    return false;
  }
  *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

bool Decoder::GetDouble(double* v) {
  uint64_t bits = 0;
  if (!GetU64(&bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool Decoder::GetFloat(float* v) {
  uint32_t bits = 0;
  if (!GetU32(&bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool Decoder::GetString(std::string* s) {
  uint64_t len = 0;
  if (!GetVarint(&len) || len > remaining()) {
    return false;
  }
  const char* p = nullptr;
  if (!Take(static_cast<size_t>(len), &p)) {
    return false;
  }
  s->assign(p, static_cast<size_t>(len));
  return true;
}

}  // namespace focus::storage
