#include "src/runtime/gpu_device.h"

#include <algorithm>

#include "src/common/fault_injection.h"
#include "src/common/logging.h"

namespace focus::runtime {

GpuJobTicket GpuDevice::Submit(common::GpuMillis now_millis, common::GpuMillis cost_millis) {
  FOCUS_CHECK(cost_millis >= 0.0);
  GpuJobTicket ticket;
  ticket.start_millis = std::max(now_millis, free_at_);
  ticket.finish_millis = ticket.start_millis + cost_millis;
  free_at_ = ticket.finish_millis;
  busy_millis_ += cost_millis;
  ++jobs_executed_;
  return ticket;
}

double GpuDevice::UtilizationOver(common::GpuMillis horizon_millis) const {
  if (horizon_millis <= 0.0) {
    return 0.0;
  }
  return std::min(1.0, busy_millis_ / horizon_millis);
}

void GpuDevice::Reset() {
  free_at_ = 0;
  busy_millis_ = 0;
  jobs_executed_ = 0;
}

GpuCluster::GpuCluster(int num_devices) {
  FOCUS_CHECK(num_devices >= 1);
  devices_.resize(static_cast<size_t>(num_devices));
}

GpuJobTicket GpuCluster::Submit(common::GpuMillis now_millis, common::GpuMillis cost_millis) {
  size_t best = 0;
  for (size_t i = 1; i < devices_.size(); ++i) {
    if (devices_[i].free_at() < devices_[best].free_at()) {
      best = i;
    }
  }
  GpuJobTicket ticket = devices_[best].Submit(now_millis, cost_millis);
  ticket.device = static_cast<int>(best);
  return ticket;
}

common::Result<GpuJobTicket> GpuCluster::TrySubmit(common::GpuMillis now_millis,
                                                   common::GpuMillis cost_millis) {
  if (common::FaultPoint("gpu.launch")) {
    // Rejected before dispatch: no device was occupied, a retry is free.
    return common::Unavailable("injected gpu.launch failure");
  }
  GpuJobTicket ticket = Submit(now_millis, cost_millis);
  if (common::FaultPoint("gpu.timeout")) {
    // The job ran (the device stays busy until finish_millis — that virtual
    // GPU time is wasted) but produced nothing usable.
    return common::Timeout("injected gpu.timeout after " + std::to_string(cost_millis) + "ms");
  }
  return ticket;
}

common::GpuMillis GpuCluster::SubmitBatch(common::GpuMillis now_millis, int64_t count,
                                          common::GpuMillis cost_each_millis) {
  common::GpuMillis last_finish = now_millis;
  for (int64_t i = 0; i < count; ++i) {
    last_finish = std::max(last_finish, Submit(now_millis, cost_each_millis).finish_millis);
  }
  return last_finish;
}

common::GpuMillis GpuCluster::EarliestFree() const {
  common::GpuMillis earliest = devices_[0].free_at();
  for (const GpuDevice& d : devices_) {
    earliest = std::min(earliest, d.free_at());
  }
  return earliest;
}

GpuClusterStats GpuCluster::Stats() const {
  GpuClusterStats stats;
  stats.num_devices = num_devices();
  common::GpuMillis max_busy = 0;
  for (const GpuDevice& d : devices_) {
    stats.jobs_executed += d.jobs_executed();
    stats.total_busy_millis += d.busy_millis();
    stats.makespan_millis = std::max(stats.makespan_millis, d.free_at());
    max_busy = std::max(max_busy, d.busy_millis());
  }
  double mean_busy = stats.total_busy_millis / static_cast<double>(stats.num_devices);
  stats.imbalance = mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
  return stats;
}

void GpuCluster::Reset() {
  for (GpuDevice& d : devices_) {
    d.Reset();
  }
}

common::GpuMillis ParallelLatencyMillis(int64_t count, common::GpuMillis cost_each_millis,
                                        int num_gpus) {
  GpuCluster cluster(num_gpus);
  return cluster.SubmitBatch(0.0, count, cost_each_millis);
}

}  // namespace focus::runtime
