// Request/response vocabulary and text framing for the Focus query server.
//
// The wire format is a deliberately simple line protocol (one request line in, one
// framed response out) so any transport — a socket, a pipe, a REPL — can carry it
// and tests can drive the server with plain strings:
//
//   QUERY <camera>[,<camera>...] <class> [BEGIN <sec>] [END <sec>] [KX <n>] [TENANT <t>]
//   QUERY REGION <region> <class> [BEGIN <sec>] [END <sec>] [KX <n>] [TENANT <t>]
//   CAMERAS
//   CLASSES <substring>
//   STATS [camera]
//   HEALTH [camera]
//   SHM ATTACH <segment> | SHM STATUS [segment]
//   SHM SERVE <segment> [WORKERS <n>]
//   SHM QUERY <segment> <class> [BEGIN <sec>] [END <sec>] [KX <n>]
//   PING
//
// A QUERY naming one camera answers from that camera; a comma-separated list or
// a REGION form fans out as one federated query (docs/fleet_serving.md) whose
// response aggregates per-camera hits with provenance. STATS with a camera
// reports that stream's ingest figures; bare STATS reports the process-wide
// fleet query service (cache hit rate, dedup, launches, tenant queue depths).
// TENANT tags the request for the service's per-tenant accounting.
//
// Responses are "OK <payload...>" on success, "ERR <code> <message>" on failure.
// Parsing is strict: unknown verbs, missing arguments, or trailing junk are errors —
// a query frontend that guesses is a frontend that silently answers the wrong
// question.
#ifndef FOCUS_SRC_SERVER_PROTOCOL_H_
#define FOCUS_SRC_SERVER_PROTOCOL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/time_types.h"

namespace focus::server {

enum class Verb { kQuery, kCameras, kClasses, kStats, kHealth, kPing, kShm };

struct Request {
  Verb verb = Verb::kPing;
  // SHM fields: |shm_op| is "ATTACH", "STATUS", "SERVE", or "QUERY";
  // |shm_name| the segment name (required except for STATUS — empty lists
  // every attach). SERVE may set |shm_workers| (0 = server default); QUERY
  // reuses class_name/range/kx below.
  std::string shm_op;
  std::string shm_name;
  int shm_workers = 0;
  // QUERY fields (HEALTH and STATS reuse |camera|; for both it is optional —
  // empty asks for the whole fleet / the shared query service).
  std::string camera;
  // Federated QUERY forms: a comma-separated camera list lands in |cameras|
  // (|camera| stays empty), REGION lands in |region|. At most one of
  // camera/cameras/region is set for a QUERY.
  std::vector<std::string> cameras;
  std::string region;
  std::string class_name;
  common::TimeRange range{};
  int kx = -1;
  std::string tenant = "default";  // TENANT option.
  // CLASSES field.
  std::string class_filter;
};

// Parses one request line. Errors carry a human-readable reason.
common::Result<Request> ParseRequest(const std::string& line);

// Response helpers (the server composes payloads; these add the framing).
std::string OkResponse(const std::string& payload);
std::string ErrResponse(common::ErrorCode code, const std::string& message);

// Splits on single spaces, ignoring leading/trailing whitespace.
std::vector<std::string> Tokenize(const std::string& line);

}  // namespace focus::server

#endif  // FOCUS_SRC_SERVER_PROTOCOL_H_
