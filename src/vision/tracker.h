// Multi-object tracking by IoU association.
//
// Everything downstream of detection reasons about *objects*, not boxes: pixel
// differencing reuses the same object's previous classification (§4.2), member runs
// in the top-K index are per-object frame ranges, and the clusterer's fast path keys
// on the object id. When detections come from a pixel pipeline (background
// subtraction + blob extraction) rather than from the simulator's ground-truth ids,
// something must link boxes across frames into tracks — this tracker.
//
// The association rule is the standard greedy IoU matcher: predict each live track's
// box one frame ahead with a constant-velocity model, match tracks to detections in
// decreasing IoU order (one-to-one), spawn new tracks for unmatched detections, and
// retire tracks unseen for |max_coast_frames|. Greedy matching is O(T·D) per frame
// with small constants — the right cost profile for an ingest-side component that
// must keep up with live video.
#ifndef FOCUS_SRC_VISION_TRACKER_H_
#define FOCUS_SRC_VISION_TRACKER_H_

#include <cstdint>
#include <vector>

#include "src/common/time_types.h"
#include "src/video/detection.h"

namespace focus::vision {

struct TrackerOptions {
  // Minimum IoU between a predicted track box and a detection to associate them.
  double min_iou = 0.25;
  // Frames a track may go undetected before it is retired (occlusion tolerance).
  int max_coast_frames = 8;
  // Blend factor for the constant-velocity estimate (1.0 = instantaneous velocity,
  // lower = smoother).
  double velocity_alpha = 0.5;
};

// One box association produced by Update().
struct TrackedBox {
  common::ObjectId track_id = 0;
  video::BBox bbox;
  bool is_new_track = false;  // First observation of this track.
};

class IouTracker {
 public:
  explicit IouTracker(TrackerOptions options = {});

  // Associates |boxes| (detections of frame |frame|) with live tracks; frames must
  // be fed in increasing order. Returns one TrackedBox per input box, in input
  // order, with stable track ids.
  std::vector<TrackedBox> Update(common::FrameIndex frame, const std::vector<video::BBox>& boxes);

  // Tracks still alive (matched or coasting within max_coast_frames).
  int64_t live_tracks() const;
  int64_t tracks_started() const { return next_id_; }

 private:
  struct Track {
    common::ObjectId id = 0;
    video::BBox bbox;
    float vx = 0.0f;  // Pixels per frame.
    float vy = 0.0f;
    common::FrameIndex last_seen = 0;
    bool alive = true;
  };

  // The track's box extrapolated to |frame|.
  static video::BBox PredictTo(const Track& track, common::FrameIndex frame);

  TrackerOptions options_;
  std::vector<Track> tracks_;
  common::ObjectId next_id_ = 0;
  common::FrameIndex last_frame_ = -1;
};

}  // namespace focus::vision

#endif  // FOCUS_SRC_VISION_TRACKER_H_
