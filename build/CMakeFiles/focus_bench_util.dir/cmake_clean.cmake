file(REMOVE_RECURSE
  "CMakeFiles/focus_bench_util.dir/bench/bench_util.cc.o"
  "CMakeFiles/focus_bench_util.dir/bench/bench_util.cc.o.d"
  "libfocus_bench_util.a"
  "libfocus_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
