file(REMOVE_RECURSE
  "CMakeFiles/example_pixels_to_query.dir/examples/pixels_to_query.cpp.o"
  "CMakeFiles/example_pixels_to_query.dir/examples/pixels_to_query.cpp.o.d"
  "example_pixels_to_query"
  "example_pixels_to_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pixels_to_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
