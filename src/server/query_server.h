// The Focus query frontend: serves protocol requests against a camera fleet.
//
// Transport-agnostic by design — HandleLine(request) -> response string — so the
// same server backs a REPL, a pipe, or a socket loop. The fleet's indexes and
// models are read-only at query time; the one mutable piece is the process-wide
// runtime::FleetQueryService every QUERY executes through (internally locked),
// so concurrent HandleLine calls are safe — and share its global verdict cache:
// a centroid any request classified is never re-paid by a later request
// against the same camera and epoch (docs/fleet_serving.md).
//
// QUERY requests execute through the batched plan/execute path (§5,
// query_engine.h / fleet_query_service.h): the plan's centroid classifications
// are packed into GT-CNN launches on the shared virtual GPU cluster. The
// result payload (FRAMES/RUNS/CENTROIDS/GPU_MS) is byte-identical to
// per-camera sequential execution regardless of packing, caching, or who
// queried before; LATENCY_MS is the request's wall-clock on the shared
// cluster — a warm-cache repeat reports 0 (nothing left to launch).
//
// Federated QUERY (comma-separated cameras, or REGION <r>): fans out through
// core::FocusFleet::PlanFederated and executes all cameras as one pooled
// admission — cross-camera work shares launches and the cache — answering
// with per-camera provenance lines.
//
// Live query-over-ingest: with a |live| runtime::IngestService attached, a
// QUERY for a camera not (yet) in the fleet is answered from the stream's
// newest published canonical snapshot while its ingest is still running — the
// response carries EPOCH and WATERMARK, and the frame runs are byte-identical
// to what halting ingest at that watermark and finalizing would return
// (docs/live_query.md). Verdicts cache per epoch; superseded epochs are
// retired from the cache as new ones are first queried.
//
// Degraded serving (docs/robustness.md): a live stream whose ingest worker is
// Degraded or Down still answers from its last-good epoch snapshot, framed
// "STALE EPOCH <e> WATERMARK <w>" instead of "LIVE ..." so the client knows
// the answer lags the recording. A Down stream with no published snapshot
// errs Unavailable. The HEALTH verb reports per-stream supervision state;
// bare STATS reports the shared service (hit rate, dedup, launches, queues).
//
// Supervised shm serving (docs/shm_serving.md): SHM SERVE starts a
// runtime::SupervisedWorkerPool of crash-isolated worker processes over an
// attached plane; SHM QUERY then answers from a worker under a call deadline,
// with hung/dead workers killed and respawned within a restart budget and the
// request retried once on a sibling. When the whole pool is Down the server
// falls back to its own in-process reader and frames the answer
// "DEGRADED INPROC" (counted in server.degraded_queries) — the process-pool
// twin of the STALE discipline above. Worker health joins HEALTH and
// SHM STATUS.
#ifndef FOCUS_SRC_SERVER_QUERY_SERVER_H_
#define FOCUS_SRC_SERVER_QUERY_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/fleet.h"
#include "src/runtime/fleet_query_service.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/metrics.h"
#include "src/runtime/query_service.h"
#include "src/runtime/supervised_worker_pool.h"
#include "src/server/protocol.h"
#include "src/shm/epoch_plane.h"
#include "src/video/class_catalog.h"

namespace focus::server {

class QueryServer {
 public:
  // |fleet| and |catalog| must outlive the server; |metrics| may be null
  // (global). |service_options| configures the shared service's virtual GPU
  // cluster and batching (defaults: 10 GPUs, batch_size 32); the server builds
  // ONE FleetQueryService from it for its whole lifetime. |live| (optional,
  // must outlive the server) serves QUERYs on cameras whose ingest is still
  // running, from their published live snapshots; fleet cameras win on a name
  // collision (a finalized index covers the whole recording).
  QueryServer(const core::FocusFleet* fleet, const video::ClassCatalog* catalog,
              runtime::MetricsRegistry* metrics = nullptr,
              runtime::QueryServiceOptions service_options = {},
              const runtime::IngestService* live = nullptr);

  // Parses and executes one request line; always returns a framed response
  // ("OK ..." or "ERR <code> ...") and never throws. Thread-safe.
  std::string HandleLine(const std::string& line);

  // Structured entry point (for callers that already hold a Request).
  std::string Handle(const Request& request);

  // The shared query service (e.g., to set tenant weights or read stats).
  runtime::FleetQueryService& service() { return service_; }

  // Supervision knobs for pools started by SHM SERVE (deadline, restart
  // budget, sibling retry). Takes effect for pools started after the call;
  // a SERVE's WORKERS argument overrides num_workers per pool.
  void set_shm_serve_options(runtime::SupervisedPoolOptions options) {
    std::lock_guard<std::mutex> lock(shm_mu_);
    shm_serve_options_ = options;
  }

 private:
  // One attached shared-memory epoch plane: the server's own reader (degraded
  // / unserved fallback path), models rebuilt lazily from the plane's
  // provenance, and — after SHM SERVE — the supervised worker pool.
  struct ShmPlane {
    std::unique_ptr<shm::ShmSnapshotReader> reader;
    std::unique_ptr<video::ClassCatalog> catalog;
    std::unique_ptr<cnn::Cnn> cheap;
    std::unique_ptr<cnn::Cnn> gt;
    std::unique_ptr<runtime::SupervisedWorkerPool> pool;
  };

  std::string HandleQuery(const Request& request);
  // QUERY against a camera whose ingest is still running: plans over the
  // newest published epoch snapshot.
  std::string HandleLiveQuery(const Request& request, common::ClassId cls);
  // Federated QUERY (camera list or REGION): one pooled admission.
  std::string HandleFederatedQuery(const Request& request, common::ClassId cls);
  std::string HandleCameras();
  std::string HandleClasses(const std::string& filter);
  // STATS <camera>: the stream's ingest figures. Bare STATS: the shared
  // service's cache/dedup/launch counters and per-tenant queue depths.
  std::string HandleStats(const std::string& camera);
  // HEALTH [camera]: supervision state of one stream, or of every stream that
  // has registered a failure or restart (clean streams read Healthy and are
  // omitted from the fleet listing).
  std::string HandleHealth(const std::string& camera);
  // SHM ATTACH <segment>: attaches a ShmSnapshotReader to a shared-memory
  // epoch plane (docs/shm_serving.md) and reports its newest epoch. SHM
  // STATUS [segment]: plane stats of one (or every) attached segment, plus
  // worker-pool health when serving. SHM SERVE: starts the supervised pool.
  // SHM QUERY: answers from a worker (or degrades to in-process).
  std::string HandleShm(const Request& request);
  std::string HandleShmServe(const Request& request, ShmPlane& plane);
  std::string HandleShmQuery(const Request& request, ShmPlane& plane);
  // Rebuilds the plane's catalog/CNNs from its mapped provenance (lazy; needs
  // at least one published epoch).
  common::Result<std::monostate> EnsurePlaneModels(ShmPlane& plane);

  const core::FocusFleet* fleet_;
  const video::ClassCatalog* catalog_;
  runtime::MetricsRegistry* metrics_;
  const runtime::IngestService* live_;
  runtime::FleetQueryService service_;  // One per server; internally locked.

  // Attached shm planes, by segment name (SHM verb). The reader objects hold
  // one reader slot each in their plane for the server's lifetime.
  std::mutex shm_mu_;
  std::map<std::string, ShmPlane> shm_planes_;
  runtime::SupervisedPoolOptions shm_serve_options_;
};

}  // namespace focus::server

#endif  // FOCUS_SRC_SERVER_QUERY_SERVER_H_
