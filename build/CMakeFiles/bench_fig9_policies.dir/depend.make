# Empty dependencies file for bench_fig9_policies.
# This may be replaced when dependencies are built.
