// Shared harness for the per-figure/table benchmark binaries.
//
// Each bench binary regenerates one table or figure from the paper's evaluation
// (§6): it simulates the relevant streams, runs Focus and the baselines, and prints
// the same rows/series the paper reports. Simulated duration per stream defaults to
// 0.15 hours and can be raised with FOCUS_BENCH_HOURS (the reported quantities are
// ratios and are duration-stable); FOCUS_BENCH_SEED overrides the world seed.
#ifndef FOCUS_BENCH_BENCH_UTIL_H_
#define FOCUS_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/baselines.h"
#include "src/cnn/ground_truth.h"
#include "src/core/focus_stream.h"
#include "src/video/dataset.h"

namespace focus::bench {

struct BenchConfig {
  double hours = 0.15;
  double fps = 30.0;
  uint64_t world_seed = 42;
  uint64_t stream_seed_base = 1000;

  double duration_sec() const { return hours * 3600.0; }
};

// Reads FOCUS_BENCH_HOURS / FOCUS_BENCH_SEED from the environment.
BenchConfig ConfigFromEnv();

// Per-stream end-to-end outcome, in the units the paper reports.
struct StreamOutcome {
  std::string stream;
  core::Policy policy = core::Policy::kBalance;
  // Chosen configuration.
  std::string model;
  int k = 0;
  double threshold = 0.0;
  // Paper metrics.
  double ingest_cheaper_by = 0.0;  // Ingest-all GPU time / Focus ingest GPU time.
  double query_faster_by = 0.0;    // Query-all GPU time / mean Focus query GPU time.
  double precision = 0.0;          // Mean over dominant classes, full run.
  double recall = 0.0;
  // Raw quantities.
  int64_t detections = 0;
  int64_t clusters = 0;
  int64_t dominant_classes = 0;
  common::GpuMillis focus_ingest_millis = 0.0;
  common::GpuMillis tuning_millis = 0.0;
  common::GpuMillis gt_all_millis = 0.0;       // = Ingest-all = Query-all cost.
  common::GpuMillis mean_query_millis = 0.0;
  common::GpuMillis total_query_millis = 0.0;  // Sum over dominant classes.
};

// Runs Focus end-to-end on one Table 1 stream and measures the paper's metrics
// against ground truth over the full run. Aborts the process on setup errors (bench
// binaries are not recoverable contexts).
StreamOutcome RunFocusOnStream(const video::ClassCatalog& catalog, const std::string& stream_name,
                               const BenchConfig& config, const core::FocusOptions& options);

// Non-aborting variant: returns false when tuning finds no usable configuration
// (e.g., a very short or very quiet sample window).
bool TryRunFocusOnStream(const video::ClassCatalog& catalog, const std::string& stream_name,
                         const BenchConfig& config, const core::FocusOptions& options,
                         StreamOutcome* out);

// Same, reusing an already-built FocusStream (for multi-policy studies).
StreamOutcome MeasureOutcome(const video::ClassCatalog& catalog, const core::FocusStream& focus,
                             core::Policy policy);

// Deploys an explicit configuration on |run| (full ingest + dominant-class queries)
// and measures the paper metrics. Used by benches that tune once via
// ParameterTuner::EvaluateGrid and then deploy several selections.
StreamOutcome DeployConfig(const video::ClassCatalog& catalog, const video::StreamRun& run,
                           const core::IngestParams& params, const cnn::Cnn& gt_cnn,
                           core::Policy policy);

// Builds the stream run for a Table 1 stream (seed derived from the config).
video::StreamRun MakeRun(const video::ClassCatalog& catalog, const std::string& stream_name,
                         const BenchConfig& config, double fps_override = -1.0);

// Pretty printing helpers.
void PrintHeader(const std::string& title);
std::string FormatFactor(double factor);

}  // namespace focus::bench

#endif  // FOCUS_BENCH_BENCH_UTIL_H_
