#!/bin/sh
# Runs the perf-tracking microbenches and leaves BENCH_*.json files in the
# build directory, so the perf trajectory of the hot paths is recorded per PR.
# Each run also refreshes the tracked copies under bench/results/ so the
# numbers survive build-directory cleanups.
#
#   bench/run_benches.sh [--check] [build_dir]   (or: cmake --build build --target bench)
#
# --check compares the fresh BENCH_*.json against the tracked baselines in
# bench/results/ instead of overwriting them, and exits non-zero on a >15%
# regression of the guardrail rows (cluster_assign/sharded_ingest `speedup`,
# query_batch `gpu_millis`, arena_resume `gpu_ratio`, live_query
# `publish_overhead`, chaos `wrapped_over_direct`, fleet_serving `saving`,
# shm_serving `shm_over_inproc`, proc_serving `supervised_over_direct`) or on
# any bench whose
# `identical` flag went false — the perf trajectory is enforceable, not just
# recorded (see bench/check_bench_regression.py). A failed check re-runs the
# benches once and only fails if the regression reproduces: wall-clock ratios
# on shared/virtualized hosts flake past 15% on single runs, and a transient
# spike does not hit the same config twice. Correctness (`identical: false`)
# and genuine regressions fail both passes.
#
# FOCUS_BENCH_FULL=1 additionally runs the google-benchmark micro suites
# (slower; per-operation costs rather than the tracked hot-path comparisons).
set -e

SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
CHECK=0
if [ "$1" = "--check" ]; then
  CHECK=1
  shift
fi
BUILD_DIR="${1:-build}"
cd "$BUILD_DIR"

run_benches() {
  ./bench_cluster_assign
  ./bench_sharded_ingest
  ./bench_query_batch
  ./bench_arena_resume
  ./bench_live_query
  ./bench_chaos
  ./bench_fleet_serving
  ./bench_shm_serving
  ./bench_proc_serving
}
run_benches

if [ "${FOCUS_BENCH_FULL:-0}" = "1" ]; then
  if [ -x ./bench_micro_substrates ]; then
    ./bench_micro_substrates --benchmark_format=json >BENCH_micro_substrates.json
    echo "wrote $PWD/BENCH_micro_substrates.json"
  fi
  if [ -x ./bench_micro_runtime ]; then
    ./bench_micro_runtime --benchmark_format=json >BENCH_micro_runtime.json
    echo "wrote $PWD/BENCH_micro_runtime.json"
  fi
fi

if [ "$CHECK" = "1" ]; then
  if ! python3 "$SCRIPT_DIR/check_bench_regression.py" "$PWD" "$SCRIPT_DIR/results"; then
    echo "guardrail check failed; re-running benches once to rule out a transient spike"
    run_benches
    python3 "$SCRIPT_DIR/check_bench_regression.py" "$PWD" "$SCRIPT_DIR/results"
  fi
else
  mkdir -p "$SCRIPT_DIR/results"
  cp BENCH_*.json "$SCRIPT_DIR/results/"
  echo "copied BENCH_*.json to $SCRIPT_DIR/results/"
fi
