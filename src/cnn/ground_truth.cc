#include "src/cnn/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "src/common/hashing.h"

namespace focus::cnn {

ModelDesc GtCnnDesc(uint64_t weights_seed) {
  ModelDesc desc;
  desc.name = "resnet152";
  desc.layers = kGtCnnLayers;
  desc.input_px = kGtCnnInputPx;
  desc.training_variability = 1.0;
  desc.weights_seed = common::DeriveSeed(weights_seed, common::HashString("gt-cnn"));
  return desc;
}

SegmentGroundTruth::SegmentGroundTruth(const video::StreamRun& run, const Cnn& gt_cnn) {
  const double fps = run.fps();
  const int64_t frames_per_segment = std::max<int64_t>(1, static_cast<int64_t>(std::lround(fps)));
  num_segments_ = (run.num_frames() + frames_per_segment - 1) / frames_per_segment;

  // Count, per (segment, class), the number of frames in which the GT-CNN reported
  // the class for at least one object.
  std::map<std::pair<common::SegmentId, common::ClassId>, int64_t> frame_counts;
  std::set<std::pair<common::SegmentId, common::ClassId>> seen_this_frame;

  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (dets.empty()) {
      return;
    }
    common::SegmentId seg = frame / frames_per_segment;
    seen_this_frame.clear();
    for (const video::Detection& d : dets) {
      ++total_detections_;
      common::ClassId label = gt_cnn.Top1(d);
      if (d.first_observation) {
        // Object counts use the GT label at first sight (one count per track).
        ++objects_per_class_[label];
      }
      if (seen_this_frame.insert({seg, label}).second) {
        ++frame_counts[{seg, label}];
      }
    }
  });

  for (const auto& [key, count] : frame_counts) {
    const auto& [seg, cls] = key;
    if (count * 2 >= frames_per_segment) {
      segments_with_class_[cls].insert(seg);
    }
  }
  for (const auto& [cls, segs] : segments_with_class_) {
    segments_per_class_[cls] = static_cast<int64_t>(segs.size());
  }
}

const std::set<common::SegmentId>& SegmentGroundTruth::SegmentsWithClass(
    common::ClassId cls) const {
  auto it = segments_with_class_.find(cls);
  return it == segments_with_class_.end() ? empty_ : it->second;
}

std::vector<common::ClassId> SegmentGroundTruth::DominantClasses(double coverage,
                                                                 size_t max_classes) const {
  std::vector<std::pair<int64_t, common::ClassId>> by_count;
  int64_t total = 0;
  for (const auto& [cls, count] : objects_per_class_) {
    by_count.emplace_back(count, cls);
    total += count;
  }
  std::sort(by_count.begin(), by_count.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<common::ClassId> dominant;
  int64_t covered = 0;
  // A class needs a handful of objects before per-class precision/recall is
  // meaningful; singletons are noise, not "dominant classes".
  const int64_t min_count = std::max<int64_t>(3, total / 500);
  for (const auto& [count, cls] : by_count) {
    if (dominant.size() >= max_classes) {
      break;
    }
    if (total > 0 && static_cast<double>(covered) >= coverage * static_cast<double>(total)) {
      break;
    }
    if (count < min_count) {
      break;
    }
    dominant.push_back(cls);
    covered += count;
  }
  return dominant;
}

}  // namespace focus::cnn
