// Binary (de)serialization of the cluster-side value types, shared by the
// clusterer checkpoint metadata (incremental_clusterer, sharded_clusterer).
// Built on the storage/serializer primitives so the byte layout follows the
// same little-endian + varint conventions as every other on-disk format.
#ifndef FOCUS_SRC_CLUSTER_CLUSTER_CODEC_H_
#define FOCUS_SRC_CLUSTER_CLUSTER_CODEC_H_

#include "src/common/feature_vector.h"
#include "src/storage/serializer.h"
#include "src/video/detection.h"

namespace focus::cluster {

void EncodeFeatureVec(storage::Encoder& enc, const common::FeatureVec& v);
bool DecodeFeatureVec(storage::Decoder& dec, common::FeatureVec* v);

void EncodeDetection(storage::Encoder& enc, const video::Detection& d);
bool DecodeDetection(storage::Decoder& dec, video::Detection* d);

}  // namespace focus::cluster

#endif  // FOCUS_SRC_CLUSTER_CLUSTER_CODEC_H_
