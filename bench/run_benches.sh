#!/bin/sh
# Runs the perf-tracking microbenches and leaves BENCH_*.json files in the
# build directory, so the perf trajectory of the hot paths is recorded per PR.
# Each run also refreshes the tracked copies under bench/results/ so the
# numbers survive build-directory cleanups.
#
#   bench/run_benches.sh [build_dir]      (or: cmake --build build --target bench)
#
# FOCUS_BENCH_FULL=1 additionally runs the google-benchmark micro suites
# (slower; per-operation costs rather than the tracked hot-path comparisons).
set -e

SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
BUILD_DIR="${1:-build}"
cd "$BUILD_DIR"

./bench_cluster_assign
./bench_sharded_ingest
./bench_query_batch

if [ "${FOCUS_BENCH_FULL:-0}" = "1" ]; then
  if [ -x ./bench_micro_substrates ]; then
    ./bench_micro_substrates --benchmark_format=json >BENCH_micro_substrates.json
    echo "wrote $PWD/BENCH_micro_substrates.json"
  fi
  if [ -x ./bench_micro_runtime ]; then
    ./bench_micro_runtime --benchmark_format=json >BENCH_micro_runtime.json
    echo "wrote $PWD/BENCH_micro_runtime.json"
  fi
fi

mkdir -p "$SCRIPT_DIR/results"
cp BENCH_*.json "$SCRIPT_DIR/results/"
echo "copied BENCH_*.json to $SCRIPT_DIR/results/"
