#include "bench/bench_util.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "src/common/hashing.h"
#include "src/common/logging.h"

namespace focus::bench {

BenchConfig ConfigFromEnv() {
  BenchConfig config;
  if (const char* hours = std::getenv("FOCUS_BENCH_HOURS")) {
    double v = std::atof(hours);
    if (v > 0.0) {
      config.hours = v;
    }
  }
  if (const char* seed = std::getenv("FOCUS_BENCH_SEED")) {
    config.world_seed = static_cast<uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  return config;
}

video::StreamRun MakeRun(const video::ClassCatalog& catalog, const std::string& stream_name,
                         const BenchConfig& config, double fps_override) {
  video::StreamProfile profile;
  if (!video::FindProfile(stream_name, &profile)) {
    std::fprintf(stderr, "unknown stream %s\n", stream_name.c_str());
    std::abort();
  }
  uint64_t seed = common::DeriveSeed(config.stream_seed_base, common::HashString(stream_name));
  double fps = fps_override > 0.0 ? fps_override : config.fps;
  return video::StreamRun(&catalog, profile, config.duration_sec(), fps, seed);
}

StreamOutcome MeasureOutcome(const video::ClassCatalog& catalog, const core::FocusStream& focus,
                             core::Policy policy) {
  const video::StreamRun& run = focus.run();
  StreamOutcome out;
  out.stream = run.profile().name;
  out.policy = policy;
  const core::IngestParams& params = focus.chosen_params();
  out.model = params.model.name;
  out.k = params.k;
  out.threshold = params.cluster_threshold;
  out.detections = focus.ingest().detections;
  out.clusters = focus.ingest().num_clusters;
  out.focus_ingest_millis = focus.ingest().gpu_millis;
  out.tuning_millis = focus.tuning_gpu_millis();
  out.gt_all_millis =
      static_cast<double>(out.detections) * focus.gt_cnn().inference_cost_millis();

  // Full-run ground truth and dominant classes (§6.1 metrics).
  cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  core::AccuracyEvaluator evaluator(&truth, run.fps());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 12);
  out.dominant_classes = static_cast<int64_t>(dominant.size());

  double sum_p = 0.0;
  double sum_r = 0.0;
  for (common::ClassId cls : dominant) {
    core::QueryResult qr = focus.Query(cls);
    core::PrecisionRecall pr = evaluator.Evaluate(cls, qr);
    sum_p += pr.precision;
    sum_r += pr.recall;
    out.total_query_millis += qr.gpu_millis;
  }
  if (!dominant.empty()) {
    out.precision = sum_p / static_cast<double>(dominant.size());
    out.recall = sum_r / static_cast<double>(dominant.size());
    out.mean_query_millis = out.total_query_millis / static_cast<double>(dominant.size());
  }
  out.ingest_cheaper_by =
      out.focus_ingest_millis > 0.0 ? out.gt_all_millis / out.focus_ingest_millis : 0.0;
  out.query_faster_by =
      out.mean_query_millis > 0.0 ? out.gt_all_millis / out.mean_query_millis : 0.0;
  return out;
}

StreamOutcome DeployConfig(const video::ClassCatalog& catalog, const video::StreamRun& run,
                           const core::IngestParams& params, const cnn::Cnn& gt_cnn,
                           core::Policy policy) {
  StreamOutcome out;
  out.stream = run.profile().name;
  out.policy = policy;
  out.model = params.model.name;
  out.k = params.k;
  out.threshold = params.cluster_threshold;

  cnn::Cnn cheap(params.model, &catalog);
  core::IngestResult ingest = core::RunIngest(run, cheap, params);
  out.detections = ingest.detections;
  out.clusters = ingest.num_clusters;
  out.focus_ingest_millis = ingest.gpu_millis;
  out.gt_all_millis = static_cast<double>(ingest.detections) * gt_cnn.inference_cost_millis();

  cnn::SegmentGroundTruth truth(run, gt_cnn);
  core::AccuracyEvaluator evaluator(&truth, run.fps());
  core::QueryEngine engine(&ingest.index, &cheap, &gt_cnn);
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 12);
  out.dominant_classes = static_cast<int64_t>(dominant.size());
  double sum_p = 0.0;
  double sum_r = 0.0;
  for (common::ClassId cls : dominant) {
    core::QueryResult qr = engine.Query(cls, params.k, {}, run.fps());
    core::PrecisionRecall pr = evaluator.Evaluate(cls, qr);
    sum_p += pr.precision;
    sum_r += pr.recall;
    out.total_query_millis += qr.gpu_millis;
  }
  if (!dominant.empty()) {
    out.precision = sum_p / static_cast<double>(dominant.size());
    out.recall = sum_r / static_cast<double>(dominant.size());
    out.mean_query_millis = out.total_query_millis / static_cast<double>(dominant.size());
  }
  out.ingest_cheaper_by =
      out.focus_ingest_millis > 0.0 ? out.gt_all_millis / out.focus_ingest_millis : 0.0;
  out.query_faster_by =
      out.mean_query_millis > 0.0 ? out.gt_all_millis / out.mean_query_millis : 0.0;
  return out;
}

StreamOutcome RunFocusOnStream(const video::ClassCatalog& catalog, const std::string& stream_name,
                               const BenchConfig& config, const core::FocusOptions& options) {
  StreamOutcome out;
  if (!TryRunFocusOnStream(catalog, stream_name, config, options, &out)) {
    std::fprintf(stderr, "FocusStream::Build(%s) failed\n", stream_name.c_str());
    std::abort();
  }
  return out;
}

bool TryRunFocusOnStream(const video::ClassCatalog& catalog, const std::string& stream_name,
                         const BenchConfig& config, const core::FocusOptions& options,
                         StreamOutcome* out) {
  video::StreamRun run = MakeRun(catalog, stream_name, config);
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::fprintf(stderr, "FocusStream::Build(%s): %s\n", stream_name.c_str(),
                 focus_or.error().message.c_str());
    return false;
  }
  *out = MeasureOutcome(catalog, **focus_or, options.policy);
  return true;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string FormatFactor(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", factor);
  return buf;
}

}  // namespace focus::bench
