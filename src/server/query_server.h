// The Focus query frontend: serves protocol requests against a camera fleet.
//
// Transport-agnostic by design — HandleLine(request) -> response string — so the
// same server backs a REPL, a pipe, or a socket loop. All state it serves (the
// fleet's indexes and models) is read-only at query time, so concurrent HandleLine
// calls from a worker pool are safe.
#ifndef FOCUS_SRC_SERVER_QUERY_SERVER_H_
#define FOCUS_SRC_SERVER_QUERY_SERVER_H_

#include <string>

#include "src/core/fleet.h"
#include "src/runtime/metrics.h"
#include "src/server/protocol.h"
#include "src/video/class_catalog.h"

namespace focus::server {

class QueryServer {
 public:
  // |fleet| and |catalog| must outlive the server; |metrics| may be null (global).
  QueryServer(const core::FocusFleet* fleet, const video::ClassCatalog* catalog,
              runtime::MetricsRegistry* metrics = nullptr);

  // Parses and executes one request line; always returns a framed response
  // ("OK ..." or "ERR <code> ...") and never throws.
  std::string HandleLine(const std::string& line);

  // Structured entry point (for callers that already hold a Request).
  std::string Handle(const Request& request);

 private:
  std::string HandleQuery(const Request& request);
  std::string HandleCameras();
  std::string HandleClasses(const std::string& filter);
  std::string HandleStats(const std::string& camera);

  const core::FocusFleet* fleet_;
  const video::ClassCatalog* catalog_;
  runtime::MetricsRegistry* metrics_;
};

}  // namespace focus::server

#endif  // FOCUS_SRC_SERVER_QUERY_SERVER_H_
