file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ls.dir/bench/bench_ablation_ls.cc.o"
  "CMakeFiles/bench_ablation_ls.dir/bench/bench_ablation_ls.cc.o.d"
  "bench_ablation_ls"
  "bench_ablation_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
