// FlakyStreamRun semantics and the camera-flap convergence property (S3,
// docs/robustness.md): a stream whose delivery restarts mid-recording at
// random frames, ingested through the supervised checkpoint-resuming path,
// must converge to a result byte-identical to the uninterrupted run — the
// restarts change *when* frames arrive, never *what* the recording contains.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/cnn/model_zoo.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/core/ingest_pipeline.h"
#include "src/video/flaky_stream.h"
#include "src/video/stream_generator.h"

namespace focus::video {
namespace {

namespace fs = std::filesystem;

class FlakyStreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new ClassCatalog(23);
    StreamProfile profile;
    ASSERT_TRUE(FindProfile("auburn_c", &profile));
    base_ = new StreamRun(catalog_, profile, 20.0, 10.0, 11);
  }
  static void TearDownTestSuite() {
    delete base_;
    delete catalog_;
    base_ = nullptr;
    catalog_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("flaky_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static ClassCatalog* catalog_;
  static StreamRun* base_;
  fs::path dir_;
};

ClassCatalog* FlakyStreamTest::catalog_ = nullptr;
StreamRun* FlakyStreamTest::base_ = nullptr;

// One delivered frame: index plus detection count, enough to fingerprint a
// delivery sequence exactly.
std::vector<std::pair<common::FrameIndex, size_t>> Delivered(const StreamRun& run) {
  std::vector<std::pair<common::FrameIndex, size_t>> frames;
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<Detection>& dets) {
    frames.emplace_back(frame, dets.size());
  });
  return frames;
}

TEST_F(FlakyStreamTest, RestartAbortsAttemptThenRunsClean) {
  FlakyStreamOptions options;
  options.restart_at_frames = {50};
  FlakyStreamRun flaky(*base_, options);

  std::vector<common::FrameIndex> first;
  SweepStats aborted = flaky.ForEachFrame(
      [&](common::FrameIndex frame, const std::vector<Detection>&) { first.push_back(frame); });
  EXPECT_TRUE(aborted.aborted);
  ASSERT_FALSE(first.empty());
  EXPECT_LT(first.back(), 50);  // Nothing at or past the cut.

  // Attempt 1 is beyond the restart list: clean, full delivery.
  SweepStats clean = flaky.ForEachFrame(
      [](common::FrameIndex, const std::vector<Detection>&) {});
  EXPECT_FALSE(clean.aborted);
  EXPECT_EQ(clean.total_frames, base_->num_frames());
  EXPECT_EQ(flaky.attempts(), 2);
}

TEST_F(FlakyStreamTest, RestartsOnlyModeLeavesContentUntouched) {
  FlakyStreamOptions options;
  options.restart_at_frames = {};  // No faults at all.
  FlakyStreamRun flaky(*base_, options);
  EXPECT_EQ(Delivered(flaky), Delivered(*base_));
}

TEST_F(FlakyStreamTest, ContentFaultsAreDeterministicPerAttempt) {
  FlakyStreamOptions options;
  options.drop_probability = 0.2;
  options.duplicate_probability = 0.1;
  options.flap_probability = 0.02;
  options.flap_length_frames = 7;
  options.seed = 99;
  // Two decorators over the same base with the same seed: attempt k of one
  // matches attempt k of the other frame for frame.
  FlakyStreamRun a(*base_, options);
  FlakyStreamRun b(*base_, options);
  EXPECT_EQ(Delivered(a), Delivered(b));  // Attempt 0 vs attempt 0.
  const auto a1 = Delivered(a);
  EXPECT_EQ(a1, Delivered(b));  // Attempt 1 vs attempt 1.
  // A dropping stream delivers strictly less than the recording (with
  // p = 0.2 over 200 frames, all-delivered has probability ~1e-20).
  EXPECT_LT(Delivered(a).size(), static_cast<size_t>(base_->num_frames()));
}

// The S3 property: random mid-recording restarts, supervised resumable ingest,
// byte-identical convergence. Each trial draws 1-3 restart frames from the
// trial seed, runs the checkpoint-resuming pipeline until it succeeds (every
// aborted attempt surfaces as a typed retryable error, never a crash), and
// compares against the uninterrupted volatile run.
TEST_F(FlakyStreamTest, RandomRestartsConvergeByteIdenticalUnderSupervision) {
  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 8;
  params.cluster_threshold = 0.5;
  cnn::Cnn cheap(params.model, catalog_);

  const core::IngestResult reference = core::RunIngest(*base_, cheap, params);

  for (uint64_t trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    common::Pcg32 rng(common::DeriveSeed(0xF1A4, trial));
    FlakyStreamOptions options;
    const int restarts = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < restarts; ++i) {
      options.restart_at_frames.push_back(static_cast<common::FrameIndex>(
          1 + rng.NextBounded(static_cast<uint32_t>(base_->num_frames() - 1))));
    }
    FlakyStreamRun flaky(*base_, options);

    core::IngestOptions opts;
    opts.persist_dir = (dir_ / ("trial" + std::to_string(trial))).string();
    opts.checkpoint_every_frames = 16;

    core::IngestResult converged;
    bool ok = false;
    for (int attempt = 0; attempt <= restarts; ++attempt) {
      auto outcome = core::RunIngestResumableChecked(flaky, cheap, params, opts);
      if (outcome.ok()) {
        converged = *std::move(outcome);
        ok = true;
        break;
      }
      ASSERT_TRUE(common::IsRetryable(outcome.error().code)) << outcome.error().message;
    }
    ASSERT_TRUE(ok) << "never converged within the restart budget";

    // Byte-identity with the uninterrupted run: counters cover the whole
    // stream and the final index is identical entry for entry.
    EXPECT_EQ(converged.detections, reference.detections);
    EXPECT_EQ(converged.cnn_invocations, reference.cnn_invocations);
    EXPECT_EQ(converged.suppressed, reference.suppressed);
    EXPECT_DOUBLE_EQ(converged.gpu_millis, reference.gpu_millis);
    ASSERT_EQ(converged.index.num_clusters(), reference.index.num_clusters());
    for (size_t i = 0; i < reference.index.num_clusters(); ++i) {
      const index::ClusterEntry& got = converged.index.clusters()[i];
      const index::ClusterEntry& want = reference.index.clusters()[i];
      EXPECT_EQ(got.cluster_id, want.cluster_id);
      EXPECT_EQ(got.size, want.size);
      EXPECT_EQ(got.topk_classes, want.topk_classes);
      EXPECT_EQ(got.topk_ranks, want.topk_ranks);
      ASSERT_EQ(got.members.size(), want.members.size());
      for (size_t m = 0; m < want.members.size(); ++m) {
        EXPECT_EQ(got.members[m].object, want.members[m].object);
        EXPECT_EQ(got.members[m].first_frame, want.members[m].first_frame);
        EXPECT_EQ(got.members[m].last_frame, want.members[m].last_frame);
      }
    }
  }
}

}  // namespace
}  // namespace focus::video
