file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_tradeoff.dir/bench/bench_fig1_tradeoff.cc.o"
  "CMakeFiles/bench_fig1_tradeoff.dir/bench/bench_fig1_tradeoff.cc.o.d"
  "bench_fig1_tradeoff"
  "bench_fig1_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
