#include "src/cnn/specialization.h"

#include <algorithm>
#include <cstdio>

#include "src/common/hashing.h"

namespace focus::cnn {

std::vector<common::ClassId> ClassDistributionEstimate::TopClasses(size_t ls) const {
  std::vector<std::pair<int64_t, common::ClassId>> by_count;
  by_count.reserve(objects_per_class.size());
  for (const auto& [cls, count] : objects_per_class) {
    by_count.emplace_back(count, cls);
  }
  std::sort(by_count.begin(), by_count.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<common::ClassId> top;
  top.reserve(std::min(ls, by_count.size()));
  for (const auto& [count, cls] : by_count) {
    if (top.size() >= ls) {
      break;
    }
    top.push_back(cls);
  }
  return top;
}

double ClassDistributionEstimate::CoverageOfTop(size_t ls) const {
  if (total_objects <= 0) {
    return 0.0;
  }
  std::vector<common::ClassId> top = TopClasses(ls);
  int64_t covered = 0;
  for (common::ClassId cls : top) {
    auto it = objects_per_class.find(cls);
    if (it != objects_per_class.end()) {
      covered += it->second;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(total_objects);
}

ClassDistributionEstimate EstimateClassDistribution(const video::StreamRun& run,
                                                    const Cnn& gt_cnn, double sample_sec,
                                                    int frame_stride) {
  ClassDistributionEstimate est;
  frame_stride = std::max(1, frame_stride);
  const common::FrameIndex max_frame =
      static_cast<common::FrameIndex>(sample_sec * run.fps());
  run.ForEachFrame([&](common::FrameIndex frame, const std::vector<video::Detection>& dets) {
    if (frame >= max_frame || frame % frame_stride != 0) {
      return;
    }
    for (const video::Detection& d : dets) {
      common::ClassId label = gt_cnn.Top1(d);
      ++est.objects_per_class[label];
      ++est.total_objects;
      est.gpu_cost_millis += gt_cnn.inference_cost_millis();
    }
  });
  return est;
}

ModelDesc TrainSpecializedModel(const ClassDistributionEstimate& distribution,
                                const SpecializationOptions& options, double stream_variability,
                                uint64_t weights_seed) {
  ModelDesc desc;
  desc.layers = options.layers;
  desc.input_px = options.input_px;
  desc.classes = distribution.TopClasses(static_cast<size_t>(std::max(1, options.ls)));
  desc.has_other_class = true;
  desc.training_variability = stream_variability;
  desc.weights_seed = common::DeriveSeed(
      weights_seed, common::HashCombine(common::HashString("specialized"),
                                        static_cast<uint64_t>(options.layers),
                                        static_cast<uint64_t>(options.input_px),
                                        static_cast<uint64_t>(desc.classes.size())));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "spec%d_px%d_ls%zu", desc.layers, desc.input_px,
                desc.classes.size());
  desc.name = buf;
  return desc;
}

}  // namespace focus::cnn
