#include "src/server/query_server.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace focus::server {

namespace {

runtime::FleetQueryServiceOptions FleetOptionsFrom(
    const runtime::QueryServiceOptions& options) {
  runtime::FleetQueryServiceOptions fleet_options;
  fleet_options.num_gpus = options.num_gpus;
  fleet_options.batch_size = options.batch_size;
  fleet_options.launch_retry = options.launch_retry;
  return fleet_options;
}

}  // namespace

QueryServer::QueryServer(const core::FocusFleet* fleet, const video::ClassCatalog* catalog,
                         runtime::MetricsRegistry* metrics,
                         runtime::QueryServiceOptions service_options,
                         const runtime::IngestService* live)
    : fleet_(fleet),
      catalog_(catalog),
      metrics_(metrics != nullptr ? metrics : &runtime::GlobalMetrics()),
      live_(live),
      service_(FleetOptionsFrom(service_options), metrics) {}

std::string QueryServer::HandleLine(const std::string& line) {
  metrics_->IncrementCounter("server.requests");
  auto request = ParseRequest(line);
  if (!request.ok()) {
    metrics_->IncrementCounter("server.parse_errors");
    return ErrResponse(request.error().code, request.error().message);
  }
  return Handle(*request);
}

std::string QueryServer::Handle(const Request& request) {
  switch (request.verb) {
    case Verb::kPing:
      return OkResponse("PONG");
    case Verb::kCameras:
      return HandleCameras();
    case Verb::kClasses:
      return HandleClasses(request.class_filter);
    case Verb::kStats:
      return HandleStats(request.camera);
    case Verb::kHealth:
      return HandleHealth(request.camera);
    case Verb::kQuery:
      return HandleQuery(request);
    case Verb::kShm:
      return HandleShm(request);
  }
  return ErrResponse(common::ErrorCode::kInternal, "unhandled verb");
}

std::string QueryServer::HandleShm(const Request& request) {
  // One line per plane: segment name, published generation/epoch progress,
  // and the pin-protocol accounting (docs/shm_serving.md).
  const auto plane_line = [](const std::string& name, const shm::ShmPlaneStats& stats) {
    std::ostringstream line;
    line << name << " GEN " << stats.published_generation << " EPOCHS "
         << stats.epochs_published << " READERS " << stats.live_readers << " ATTACHES "
         << stats.reader_attaches << " RECLAIMED " << stats.stale_pins_reclaimed
         << " VIOLATIONS " << stats.pin_violations << " ARENA " << stats.arena_used_bytes
         << "/" << stats.segment_bytes;
    return line.str();
  };

  std::lock_guard<std::mutex> lock(shm_mu_);
  if (request.shm_op == "ATTACH") {
    if (shm_readers_.contains(request.shm_name)) {
      return ErrResponse(common::ErrorCode::kFailedPrecondition,
                         "already attached to " + request.shm_name);
    }
    auto reader = shm::ShmSnapshotReader::Attach(request.shm_name, metrics_);
    if (!reader.ok()) {
      metrics_->IncrementCounter("server.shm_attach_errors");
      return ErrResponse(reader.error().code, reader.error().message);
    }
    const shm::ShmPlaneStats stats = (*reader)->stats();
    shm_readers_.emplace(request.shm_name, std::move(*reader));
    metrics_->IncrementCounter("server.shm_attaches");
    return OkResponse("ATTACHED " + plane_line(request.shm_name, stats));
  }
  if (!request.shm_name.empty()) {
    const auto it = shm_readers_.find(request.shm_name);
    if (it == shm_readers_.end()) {
      return ErrResponse(common::ErrorCode::kNotFound,
                         "not attached to " + request.shm_name);
    }
    return OkResponse(plane_line(it->first, it->second->stats()));
  }
  std::ostringstream out;
  out << shm_readers_.size();
  for (const auto& [name, reader] : shm_readers_) {
    out << "\n" << plane_line(name, reader->stats());
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleQuery(const Request& request) {
  const common::ClassId cls = catalog_->IdForName(request.class_name);
  if (cls == common::kInvalidClass) {
    return ErrResponse(common::ErrorCode::kNotFound,
                       "unknown class " + request.class_name);
  }
  if (!request.region.empty() || !request.cameras.empty()) {
    return HandleFederatedQuery(request, cls);
  }
  const core::FocusStream* stream = fleet_->Find(request.camera);
  if (stream == nullptr) {
    if (live_ != nullptr && live_->LiveContext(request.camera) != nullptr) {
      return HandleLiveQuery(request, cls);
    }
    return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + request.camera);
  }

  // Execute through the shared fleet service (§5, docs/fleet_serving.md): the
  // plan's centroid classifications run launch-packed on the process-wide
  // virtual cluster, and their verdicts land in the global cache keyed on
  // (camera, epoch, centroid) — a repeat of this query, by anyone, pays
  // nothing. The result payload is identical either way; only LATENCY_MS
  // reflects the cache (0 on a fully warm repeat).
  runtime::FleetQueryRequest fleet_request;
  fleet_request.camera = request.camera;
  fleet_request.tenant = request.tenant;
  fleet_request.query = runtime::QueryRequest{stream, cls, request.kx, request.range};
  const runtime::QueryExecution execution = service_.Execute(fleet_request);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  // Payload: summary line, then one "RUN first last" per frame run.
  const core::QueryResult& qr = execution.result;
  std::ostringstream out;
  out << "FRAMES " << qr.frames_returned << " RUNS " << qr.frame_runs.size() << " CENTROIDS "
      << qr.centroids_classified << " GPU_MS " << qr.gpu_millis << " LATENCY_MS "
      << execution.latency_millis();
  for (const auto& [first, last] : qr.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleLiveQuery(const Request& request, common::ClassId cls) {
  const runtime::LiveStreamContext* context = live_->LiveContext(request.camera);
  // Pin the newest epoch for the whole request: the shared_ptr keeps the
  // snapshot's index entries alive even if ingest publishes a newer epoch
  // mid-query, and the response is byte-identical to halting ingest at the
  // snapshot's watermark and finalizing (docs/live_query.md).
  std::shared_ptr<const core::LiveSnapshot> snapshot = context->slot.Latest();
  // Degraded serving (docs/robustness.md): a stream whose ingest worker has
  // failed still answers from its last-good epoch — framed STALE, never
  // silently passed off as live — because an index that lags the recording is
  // still a correct index over the frames it covers.
  const runtime::StreamHealth health = live_->Health(request.camera);
  if (snapshot == nullptr) {
    if (health.state == runtime::StreamState::kDown) {
      return ErrResponse(common::ErrorCode::kUnavailable,
                         "stream " + request.camera + " is down with no published snapshot: " +
                             health.last_error);
    }
    return ErrResponse(common::ErrorCode::kFailedPrecondition,
                       "no snapshot published yet for " + request.camera);
  }
  runtime::FleetQueryRequest fleet_request;
  fleet_request.camera = request.camera;
  fleet_request.tenant = request.tenant;
  fleet_request.query.cls = cls;
  fleet_request.query.kx = request.kx;
  fleet_request.query.range = request.range;
  fleet_request.query.snapshot = snapshot;
  fleet_request.query.ingest_cnn = context->ingest_cnn.get();
  fleet_request.query.gt_cnn = context->gt_cnn.get();
  fleet_request.query.fps = context->fps;
  const runtime::QueryExecution execution = service_.Execute(fleet_request);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.live_queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  const bool stale = health.state != runtime::StreamState::kHealthy;
  if (stale) {
    metrics_->IncrementCounter("server.stale_queries");
  }
  const core::QueryResult& qr = execution.result;
  std::ostringstream out;
  out << (stale ? "STALE" : "LIVE") << " EPOCH " << snapshot->epoch << " WATERMARK "
      << snapshot->watermark << " FRAMES " << qr.frames_returned << " RUNS "
      << qr.frame_runs.size() << " CENTROIDS " << qr.centroids_classified << " GPU_MS "
      << qr.gpu_millis << " LATENCY_MS " << execution.latency_millis();
  for (const auto& [first, last] : qr.frame_runs) {
    out << "\nRUN " << first << " " << last;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleFederatedQuery(const Request& request, common::ClassId cls) {
  core::FederatedSelector selector;
  selector.cameras = request.cameras;
  selector.region = request.region;
  auto plan = fleet_->PlanFederated(cls, selector, request.range, request.kx);
  if (!plan.ok()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(plan.error().code, plan.error().message);
  }
  const runtime::FederatedExecution execution =
      service_.ExecuteFederated(*plan, request.tenant);
  if (execution.error.has_value()) {
    metrics_->IncrementCounter("server.query_errors");
    return ErrResponse(execution.error->code, execution.error->message);
  }
  metrics_->IncrementCounter("server.federated_queries");
  metrics_->Observe("server.query_gpu_millis", execution.result.total_gpu_millis);
  metrics_->Observe("server.query_latency_millis", execution.latency_millis());

  // Payload: fleet summary, then per camera one "CAM ..." provenance line
  // (EPOCH/WATERMARK for live members) followed by its "RUN first last" lines.
  const core::FleetQueryResult& fr = execution.result;
  std::ostringstream out;
  out << "FEDERATED " << fr.hits.size() << " FRAMES " << fr.total_frames << " CENTROIDS "
      << fr.total_centroids_classified << " GPU_MS " << fr.total_gpu_millis << " LATENCY_MS "
      << execution.latency_millis();
  for (const core::CameraHits& hits : fr.hits) {
    out << "\nCAM " << hits.camera << " FRAMES " << hits.result.frames_returned << " RUNS "
        << hits.result.frame_runs.size();
    if (hits.live) {
      out << " EPOCH " << hits.epoch << " WATERMARK " << hits.watermark;
    }
    for (const auto& [first, last] : hits.result.frame_runs) {
      out << "\nRUN " << first << " " << last;
    }
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleHealth(const std::string& camera) {
  // One line per stream: name, supervision state, restart/failure counters,
  // and — for live streams with a published epoch — how far the queryable
  // snapshot reaches. The last failure's code and message close the line.
  const auto stream_line = [this](const std::string& name,
                                  const runtime::StreamHealth& health) {
    std::ostringstream line;
    line << name << " STATE " << runtime::StreamStateName(health.state) << " RESTARTS "
         << health.restarts << " FAILURES " << health.consecutive_failures;
    if (live_ != nullptr) {
      if (auto snapshot = live_->LatestSnapshot(name); snapshot != nullptr) {
        line << " EPOCH " << snapshot->epoch << " WATERMARK " << snapshot->watermark;
      }
    }
    if (!health.last_error.empty()) {
      line << " LAST " << common::ErrorCodeName(health.last_code) << " "
           << health.last_error;
    }
    return line.str();
  };

  if (!camera.empty()) {
    const bool known =
        fleet_->Find(camera) != nullptr ||
        (live_ != nullptr && live_->LiveContext(camera) != nullptr);
    if (!known) {
      return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + camera);
    }
    // A fleet camera (or a live stream that never failed) reads Healthy.
    const runtime::StreamHealth health =
        live_ != nullptr ? live_->Health(camera) : runtime::StreamHealth{};
    return OkResponse(stream_line(camera, health));
  }

  // Fleet listing: every stream with a registered failure or restart. Streams
  // running clean are implicitly Healthy and omitted — an empty listing means
  // the whole fleet is healthy.
  const std::map<std::string, runtime::StreamHealth> fleet =
      live_ != nullptr ? live_->FleetHealth() : std::map<std::string, runtime::StreamHealth>{};
  std::ostringstream out;
  out << fleet.size();
  for (const auto& [name, health] : fleet) {
    out << "\n" << stream_line(name, health);
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleCameras() {
  std::ostringstream out;
  const std::vector<std::string> names = fleet_->CameraNames();
  out << names.size();
  for (const std::string& name : names) {
    out << "\n" << name;
  }
  return OkResponse(out.str());
}

std::string QueryServer::HandleClasses(const std::string& filter) {
  std::ostringstream out;
  int matches = 0;
  std::ostringstream list;
  for (common::ClassId cls = 0; cls < video::kNumClasses; ++cls) {
    const std::string& name = catalog_->Name(cls);
    if (!filter.empty() && name.find(filter) == std::string::npos) {
      continue;
    }
    ++matches;
    if (matches <= 50) {  // Bounded payload; the filter narrows further.
      list << "\n" << name;
    }
  }
  out << matches << (matches > 50 ? " (first 50 shown)" : "") << list.str();
  return OkResponse(out.str());
}

std::string QueryServer::HandleStats(const std::string& camera) {
  if (camera.empty()) {
    // Bare STATS: the shared fleet query service. One summary line, then one
    // "TENANT <name> DEPTH <d>" line per tenant with queued work.
    const runtime::FleetServiceStats stats = service_.stats();
    const std::map<std::string, size_t> depths = service_.QueueDepths();
    std::ostringstream out;
    out << "SERVICE REQUESTS " << stats.requests << " CACHE_HITS " << stats.cache_hits
        << " CACHE_MISSES " << stats.cache_misses << " HIT_RATE " << stats.CacheHitRate()
        << " DEDUP " << stats.dedup_hits << " LAUNCHES " << stats.launches << " GPU_MS "
        << stats.gpu_millis << " CACHE_SIZE " << stats.cache_size << " EVICTED "
        << stats.cache_evicted << " RETIRED " << stats.cache_retired << " QUEUED_TENANTS "
        << depths.size();
    for (const auto& [tenant, depth] : depths) {
      out << "\nTENANT " << tenant << " DEPTH " << depth;
    }
    return OkResponse(out.str());
  }
  const core::FocusStream* stream = fleet_->Find(camera);
  if (stream == nullptr) {
    return ErrResponse(common::ErrorCode::kNotFound, "unknown camera " + camera);
  }
  std::ostringstream out;
  out << "MODEL " << stream->chosen_params().model.name << " K " << stream->chosen_params().k
      << " T " << stream->chosen_params().cluster_threshold << " CLUSTERS "
      << stream->ingest().num_clusters << " DETECTIONS " << stream->ingest().detections
      << " INGEST_GPU_MS " << stream->total_ingest_gpu_millis();
  return OkResponse(out.str());
}

}  // namespace focus::server
