#include "src/cluster/sharded_clusterer.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <utility>

#include "src/cluster/cluster_codec.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/runtime/worker_pool.h"
#include "src/storage/arena_file.h"
#include "src/storage/record_log.h"
#include "src/storage/serializer.h"
#include "src/storage/snapshot_store.h"

namespace focus::cluster {

namespace {

// Version tag of the sharded.meta checkpoint snapshot.
constexpr uint32_t kShardedMetaVersion = 1;

}  // namespace

ShardedClusterer::ShardedClusterer(ShardedClustererOptions options)
    : options_(options) {
  FOCUS_CHECK(options_.num_shards >= 1);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<IncrementalClusterer>(options_.base));
    if (options_.num_shards > 1) {
      // Cross-shard merges must see retired centroids as targets: a duplicate
      // of a retired cluster can appear in another shard after the retirement
      // (at one shard there is no cross-shard pair, so skip the bookkeeping).
      shards_.back()->EnableRetiredMergeTargets();
    }
  }
  shard_items_.resize(options_.num_shards);
  merge_scanned_.resize(options_.num_shards, 0);
  merge_considered_.resize(options_.num_shards);
}

size_t ShardedClusterer::ShardOf(common::ObjectId object) const {
  if (options_.num_shards <= 1) {
    return 0;
  }
  // SplitMix64 rather than object % num_shards: object ids are often assigned
  // sequentially, and a modulo partition of a sequential range correlates with
  // arrival order (bursts land on one shard).
  return static_cast<size_t>(common::SplitMix64(static_cast<uint64_t>(object)) %
                             static_cast<uint64_t>(options_.num_shards));
}

int64_t ShardedClusterer::Add(const video::Detection& detection,
                              const common::FeatureVec& feature) {
  const size_t s = ShardOf(detection.object_id);
  const int64_t local = shards_[s]->Add(detection, feature);
  AfterAssignments(1);
  return GlobalId(s, local);
}

int64_t ShardedClusterer::AddSuppressed(const video::Detection& detection,
                                        const common::FeatureVec& feature) {
  const size_t s = ShardOf(detection.object_id);
  const int64_t local = shards_[s]->AddSuppressed(detection, feature);
  AfterAssignments(1);
  return GlobalId(s, local);
}

void ShardedClusterer::AssignBatch(const WorkItem* items, size_t count,
                                   runtime::WorkerPool* pool, int64_t* out) {
  const size_t num_shards = options_.num_shards;
  for (std::vector<size_t>& v : shard_items_) {
    v.clear();
  }
  for (size_t i = 0; i < count; ++i) {
    FOCUS_CHECK(items[i].detection != nullptr && items[i].feature != nullptr);
    shard_items_[ShardOf(items[i].detection->object_id)].push_back(i);
  }

  // One ordered task per shard: assignment order within a shard must follow
  // stream order (the clusterer is stateful), so the shard is the finest safe
  // work item. Out-slots are disjoint per item, so no synchronization beyond
  // the pool's Drain() is needed.
  auto run_shard = [this, items, out](size_t s) {
    IncrementalClusterer& shard = *shards_[s];
    for (size_t i : shard_items_[s]) {
      const WorkItem& item = items[i];
      const int64_t local = item.suppressed
                                ? shard.AddSuppressed(*item.detection, *item.feature)
                                : shard.Add(*item.detection, *item.feature);
      out[i] = GlobalId(s, local);
    }
  };

  if (pool == nullptr || num_shards == 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      run_shard(s);
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_items_[s].empty()) {
        continue;
      }
      FOCUS_CHECK(pool->Submit([run_shard, s] { run_shard(s); }));
    }
    pool->Drain();
  }
  AfterAssignments(static_cast<int64_t>(count));
}

void ShardedClusterer::AfterAssignments(int64_t count) {
  if (options_.merge_interval <= 0) {
    return;
  }
  assignments_since_merge_ += count;
  if (assignments_since_merge_ >= options_.merge_interval) {
    RunMergePass(/*full=*/false);
    assignments_since_merge_ = 0;
  }
}

int64_t ShardedClusterer::Find(int64_t global_id) const {
  const int64_t n = static_cast<int64_t>(parent_.size());
  int64_t root = global_id;
  while (root < n && parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  // Path compression toward the root keeps repeated canonical lookups cheap.
  int64_t walk = global_id;
  while (walk < n && parent_[static_cast<size_t>(walk)] != root) {
    const int64_t next = parent_[static_cast<size_t>(walk)];
    parent_[static_cast<size_t>(walk)] = root;
    walk = next;
  }
  return root;
}

void ShardedClusterer::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) {
    return;
  }
  if (ra > rb) {
    std::swap(ra, rb);
  }
  // Attach the larger root under the smaller so every component's root is its
  // minimum global id (the canonical id).
  if (rb >= static_cast<int64_t>(parent_.size())) {
    const size_t old = parent_.size();
    parent_.resize(static_cast<size_t>(rb) + 1);
    for (size_t g = old; g < parent_.size(); ++g) {
      parent_[g] = static_cast<int64_t>(g);
    }
  }
  parent_[static_cast<size_t>(rb)] = ra;
  ++merges_folded_;
}

void ShardedClusterer::MergePass() { RunMergePass(/*full=*/true); }

void ShardedClusterer::RunMergePass(bool full) {
  if (options_.num_shards <= 1) {
    return;
  }
  const float threshold_sq =
      static_cast<float>(options_.base.threshold * options_.base.threshold);
  // Re-queue radius: an already-considered cluster whose centroid moved more
  // than this (squared) distance since its last consideration is queried
  // again — its neighbourhood changed enough that a fold it previously missed
  // may now be in range.
  const double requeue_radius = options_.merge_requeue_fraction * options_.base.threshold;
  const double requeue_dist_sq = requeue_radius * requeue_radius;
  // Fixed scan order (shard ascending, local id ascending, other shards
  // ascending as targets) plus CentroidStore's smallest-id tie break keep the
  // union-find a pure function of the stream. Targets cover the active working
  // set and the frozen retired centroids (retired_store): a retired cluster
  // can no longer drift, but its appearance can re-arise in another shard
  // after the retirement, and the pair must still fold — each such pair is
  // captured from the later cluster's side when it queries as a new cluster.
  // Incremental passes (full == false) use clusters
  // created since the previous pass as queries, plus active clusters that
  // drifted past the re-queue radius since they were last considered. The
  // drift sweep itself costs one L2 distance per already-considered active
  // cluster per pass — about one assignment-scan equivalent per
  // merge_interval assignments — so the *merge query* cost stays proportional
  // to churn and drift, not to the active working set; the full pass
  // restricts targets to earlier shards (every unordered cross-shard pair is
  // still covered, from its higher-shard side). Tracking cumulative
  // displacement at Join time instead of snapshot vectors would drop both the
  // sweep and the snapshot copies from the checkpoint meta (ROADMAP).
  for (size_t s = 0; s < options_.num_shards; ++s) {
    const std::vector<Cluster>& clusters = shards_[s]->clusters();
    std::vector<MergeCandidate>& considered = merge_considered_[s];

    auto run_queries = [&](size_t l, const Cluster& c) {
      for (size_t t = 0; t < (full ? s : options_.num_shards); ++t) {
        if (t == s) {
          continue;
        }
        // Nearest target within T across the shard's active centroids AND its
        // frozen retired ones: a cluster that retired before this query's
        // cluster even existed is still the same real-world appearance and
        // must fold. Ties between the two stores resolve toward the smaller
        // local id, matching the single-store smallest-id semantics.
        int64_t target = -1;
        float target_dist = 0.0f;
        for (const CentroidStore* store :
             {&shards_[t]->centroid_store(), &shards_[t]->retired_store()}) {
          if (store->empty() || store->dim() != c.centroid.size()) {
            continue;
          }
          float dist_sq = 0.0f;
          const int64_t found = store->FindNearest(c.centroid.data(), c.centroid.size(),
                                                   threshold_sq, &dist_sq);
          if (found < 0) {
            continue;
          }
          if (target < 0 || dist_sq < target_dist ||
              (dist_sq == target_dist && found < target)) {
            target = found;
            target_dist = dist_sq;
          }
        }
        if (target >= 0) {
          Union(GlobalId(s, static_cast<int64_t>(l)), GlobalId(t, target));
        }
      }
    };

    // Previously considered clusters, ascending local id: drop retired ones
    // (their centroids never merge again), re-query drifted or full-pass
    // ones. The union-find's final components are independent of query order
    // within a pass (stores do not change mid-pass), so splitting old and new
    // candidates into two ascending sweeps preserves determinism.
    size_t keep = 0;
    for (size_t i = 0; i < considered.size(); ++i) {
      MergeCandidate& candidate = considered[i];
      const Cluster& c = clusters[candidate.local_id];
      if (!c.active) {
        // Retired since last considered: one final query with the frozen
        // centroid (it may have drifted into range of another shard's cluster
        // between its last consideration and its retirement), then drop — the
        // frozen centroid stays reachable as a merge *target* through
        // retired_store() forever.
        run_queries(candidate.local_id, c);
        continue;
      }
      bool query = full;
      if (!query && requeue_dist_sq > 0.0) {
        query = common::SquaredL2Distance(c.centroid, candidate.snapshot) > requeue_dist_sq;
      }
      if (query) {
        run_queries(candidate.local_id, c);
        candidate.snapshot = c.centroid;  // Drift measures from here now.
      }
      if (keep != i) {  // Guard the self-move: it would empty the snapshot.
        considered[keep] = std::move(candidate);
      }
      ++keep;
    }
    considered.resize(keep);
    // Clusters created since the previous pass. A cluster that already retired
    // (created and evicted within one interval) still queries once with its
    // frozen centroid — its duplicate may be live in another shard — but is
    // not tracked for drift: frozen centroids never move, and other shards'
    // later clusters find it through the retired target store.
    for (size_t l = merge_scanned_[s]; l < clusters.size(); ++l) {
      const Cluster& c = clusters[l];
      run_queries(l, c);
      if (c.active) {
        considered.push_back({l, c.centroid});
      }
    }
    merge_scanned_[s] = clusters.size();
  }
}

int64_t ShardedClusterer::CanonicalOf(int64_t global_id) const { return Find(global_id); }

std::vector<Cluster> ShardedClusterer::FinalizeClusters() {
  MergePass();
  const size_t num_shards = options_.num_shards;
  size_t max_locals = 0;
  for (const auto& shard : shards_) {
    max_locals = std::max(max_locals, shard->clusters().size());
  }

  std::vector<Cluster> table;
  std::unordered_map<int64_t, size_t> slot_of_root;
  // Global ids ascend over (local asc, shard asc), and every component's root
  // is its minimum id, so a component's canonical cluster is always created
  // before any cluster folds into it.
  for (size_t l = 0; l < max_locals; ++l) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (l >= shards_[s]->clusters().size()) {
        continue;
      }
      const Cluster& src = shards_[s]->clusters()[l];
      const int64_t g = GlobalId(s, static_cast<int64_t>(l));
      const int64_t root = Find(g);
      if (root == g) {
        table.push_back(src);
        table.back().id = g;
        slot_of_root.emplace(root, table.size() - 1);
        continue;
      }
      Cluster& dst = table[slot_of_root.at(root)];
      const double total = static_cast<double>(dst.size + src.size);
      const double ws = static_cast<double>(src.size) / total;
      for (size_t i = 0; i < dst.centroid.size(); ++i) {
        dst.centroid[i] =
            static_cast<float>(dst.centroid[i] * (1.0 - ws) + src.centroid[i] * ws);
      }
      dst.size += src.size;
      dst.members.insert(dst.members.end(), src.members.begin(), src.members.end());
      dst.active = dst.active || src.active;
    }
  }
  return table;
}

common::Result<bool> ShardedClusterer::Checkpoint(int64_t position,
                                                  std::string_view user_state) {
  FOCUS_CHECK(persistent());
  // Step 1: commit every shard's arena (msync + header). Shard arenas may end
  // up a generation ahead of the meta if we crash below — recovery rolls each
  // back to the generation recorded here.
  std::vector<uint64_t> generations(options_.num_shards, 0);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    auto generation = shards_[s]->CommitArena();
    if (!generation.ok()) {
      return generation.error();
    }
    generations[s] = *generation;
  }

  // Step 2: one meta snapshot for every shard's bookkeeping plus the merge
  // state; its atomic rename commits the whole multi-shard checkpoint at once.
  storage::Encoder enc;
  enc.PutU32(kShardedMetaVersion);
  enc.PutVarint(options_.num_shards);
  enc.PutSignedVarint(options_.merge_interval);
  enc.PutDouble(options_.merge_requeue_fraction);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    enc.PutU64(generations[s]);
    enc.PutString(shards_[s]->EncodeBookkeeping());
  }
  enc.PutVarint(parent_.size());
  for (int64_t p : parent_) {
    enc.PutSignedVarint(p);
  }
  for (size_t s = 0; s < options_.num_shards; ++s) {
    enc.PutVarint(merge_scanned_[s]);
  }
  for (size_t s = 0; s < options_.num_shards; ++s) {
    enc.PutVarint(merge_considered_[s].size());
    for (const MergeCandidate& candidate : merge_considered_[s]) {
      enc.PutVarint(candidate.local_id);
      EncodeFeatureVec(enc, candidate.snapshot);
    }
  }
  enc.PutSignedVarint(assignments_since_merge_);
  enc.PutSignedVarint(merges_folded_);
  enc.PutSignedVarint(position);
  enc.PutString(user_state);
  enc.PutU32(storage::Crc32(enc.bytes()));
  if (auto wrote = storage::WriteFileAtomic(meta_path_, enc.bytes()); !wrote.ok()) {
    return wrote;
  }

  // Step 3: open every shard's fresh undo window.
  for (size_t s = 0; s < options_.num_shards; ++s) {
    if (auto rotated = shards_[s]->RotateUndoLog(generations[s]); !rotated.ok()) {
      return rotated;
    }
  }
  return true;
}

common::Result<ClustererRecovery> ShardedClusterer::OpenOrRecover(const std::string& dir) {
  FOCUS_CHECK(!persistent() && total_assignments() == 0);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return common::Error{common::ErrorCode::kIo,
                         "create persist dir: " + dir + ": " + ec.message()};
  }
  persist_dir_ = dir;
  meta_path_ = dir + "/sharded.meta";
  auto arena_path = [&](size_t s) { return dir + "/shard-" + std::to_string(s) + ".arena"; };
  auto undo_path = [&](size_t s) { return dir + "/shard-" + std::to_string(s) + ".undo"; };

  if (!storage::FileExists(meta_path_)) {
    // No committed checkpoint: fresh persistent state, stale shard files dropped.
    for (size_t s = 0; s < options_.num_shards; ++s) {
      std::filesystem::remove(arena_path(s), ec);
      std::filesystem::remove(undo_path(s), ec);
      auto arena = storage::ArenaFile::Open(arena_path(s));
      if (!arena.ok()) {
        return arena.error();
      }
      if (auto attached =
              shards_[s]->AttachPersistence(std::move(arena).value(), undo_path(s));
          !attached.ok()) {
        return attached.error();
      }
    }
    return ClustererRecovery{};
  }

  auto blob = storage::ReadFile(meta_path_);
  if (!blob.ok()) {
    return blob.error();
  }
  auto corrupt = [&] {
    return common::Error{common::ErrorCode::kIo, "sharded meta corrupt: " + meta_path_};
  };
  storage::Decoder dec(*blob);
  uint32_t version = 0;
  uint64_t num_shards = 0;
  int64_t merge_interval = 0;
  double requeue_fraction = 0.0;
  if (!dec.GetU32(&version) || version != kShardedMetaVersion ||
      !dec.GetVarint(&num_shards) || !dec.GetSignedVarint(&merge_interval) ||
      !dec.GetDouble(&requeue_fraction)) {
    return corrupt();
  }
  if (num_shards != options_.num_shards || merge_interval != options_.merge_interval ||
      requeue_fraction != options_.merge_requeue_fraction) {
    return common::FailedPrecondition(
        "sharded clusterer options do not match the checkpointed run");
  }
  std::vector<uint64_t> generations(options_.num_shards, 0);
  std::vector<std::string> bookkeeping(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    if (!dec.GetU64(&generations[s]) || !dec.GetString(&bookkeeping[s])) {
      return corrupt();
    }
  }
  uint64_t parent_len = 0;
  if (!dec.GetVarint(&parent_len) || parent_len > dec.remaining()) {
    return corrupt();
  }
  std::vector<int64_t> parent(static_cast<size_t>(parent_len));
  for (int64_t& p : parent) {
    if (!dec.GetSignedVarint(&p)) {
      return corrupt();
    }
  }
  std::vector<size_t> merge_scanned(options_.num_shards, 0);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    uint64_t scanned = 0;
    if (!dec.GetVarint(&scanned)) {
      return corrupt();
    }
    merge_scanned[s] = static_cast<size_t>(scanned);
  }
  std::vector<std::vector<MergeCandidate>> merge_considered(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    uint64_t count = 0;
    if (!dec.GetVarint(&count) || count > dec.remaining()) {
      return corrupt();
    }
    merge_considered[s].resize(static_cast<size_t>(count));
    for (MergeCandidate& candidate : merge_considered[s]) {
      uint64_t local = 0;
      if (!dec.GetVarint(&local) || !DecodeFeatureVec(dec, &candidate.snapshot)) {
        return corrupt();
      }
      candidate.local_id = static_cast<size_t>(local);
    }
  }
  int64_t assignments_since_merge = 0;
  int64_t merges_folded = 0;
  int64_t position = 0;
  std::string user_state;
  size_t payload_end = 0;
  uint32_t crc = 0;
  if (!dec.GetSignedVarint(&assignments_since_merge) || !dec.GetSignedVarint(&merges_folded) ||
      !dec.GetSignedVarint(&position) || !dec.GetString(&user_state) ||
      (payload_end = dec.offset(), !dec.GetU32(&crc)) ||
      storage::Crc32(std::string_view(blob->data(), payload_end)) != crc) {
    return corrupt();
  }

  // Roll every shard arena back to the committed cut (the shared protocol in
  // storage::OpenArenaAtCheckpoint), then hand it to its shard. A shard is
  // re-sealed along with all the others if any of them had to be repaired.
  bool needs_reseal = false;
  for (size_t s = 0; s < options_.num_shards; ++s) {
    bool shard_needs_reseal = false;
    auto arena = storage::OpenArenaAtCheckpoint(arena_path(s), undo_path(s), generations[s],
                                                &shard_needs_reseal);
    if (!arena.ok()) {
      return arena.error();
    }
    needs_reseal = needs_reseal || shard_needs_reseal;
    if (auto restored = shards_[s]->RestorePersistent(std::move(arena).value(), undo_path(s),
                                                      bookkeeping[s]);
        !restored.ok()) {
      return restored.error();
    }
  }
  parent_ = std::move(parent);
  merge_scanned_ = std::move(merge_scanned);
  merge_considered_ = std::move(merge_considered);
  assignments_since_merge_ = assignments_since_merge;
  merges_folded_ = merges_folded;

  // Re-seal when any shard rolled back (headers, meta, and undo windows must
  // be mutually consistent before any mutation); a clean recovery of every
  // shard skips the rewrite — the on-disk cut already is the checkpoint.
  if (needs_reseal) {
    if (auto sealed = Checkpoint(position, user_state); !sealed.ok()) {
      return sealed.error();
    }
  }
  ClustererRecovery out;
  out.recovered = true;
  out.position = position;
  out.user_state = std::move(user_state);
  return out;
}

int64_t ShardedClusterer::total_assignments() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->total_assignments();
  }
  return total;
}

double ShardedClusterer::FastHitRate() const {
  int64_t hits = 0;
  int64_t lookups = 0;
  for (const auto& shard : shards_) {
    hits += shard->fast_hits();
    lookups += shard->fast_lookups();
  }
  return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
}

}  // namespace focus::cluster
