file(REMOVE_RECURSE
  "CMakeFiles/example_surveillance_sweep.dir/examples/surveillance_sweep.cpp.o"
  "CMakeFiles/example_surveillance_sweep.dir/examples/surveillance_sweep.cpp.o.d"
  "example_surveillance_sweep"
  "example_surveillance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_surveillance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
