// End-to-end integration tests: FocusStream over full simulated recordings, checking
// the paper's headline claims hold qualitatively (accuracy targets met, order-of-
// magnitude cheaper ingest than Ingest-all, order-of-magnitude faster queries than
// Query-all), plus tuner behaviour and index persistence round-trips.
#include <gtest/gtest.h>

#include "src/baseline/baselines.h"
#include "src/cnn/ground_truth.h"
#include "src/core/focus_stream.h"
#include "src/index/kv_store.h"
#include "src/video/stream_generator.h"

namespace focus::core {
namespace {

constexpr uint64_t kSeed = 42;

class FocusE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(kSeed);
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    run_ = new video::StreamRun(catalog_, profile, 600.0, 30.0, 7);
    FocusOptions options;
    auto built = FocusStream::Build(run_, catalog_, options);
    ASSERT_TRUE(built.ok()) << built.error().message;
    focus_ = built.value().release();
    truth_ = new cnn::SegmentGroundTruth(*run_, focus_->gt_cnn());
  }

  static void TearDownTestSuite() {
    delete truth_;
    delete focus_;
    delete run_;
    delete catalog_;
    truth_ = nullptr;
    focus_ = nullptr;
    run_ = nullptr;
    catalog_ = nullptr;
  }

  static video::ClassCatalog* catalog_;
  static video::StreamRun* run_;
  static FocusStream* focus_;
  static cnn::SegmentGroundTruth* truth_;
};

video::ClassCatalog* FocusE2eTest::catalog_ = nullptr;
video::StreamRun* FocusE2eTest::run_ = nullptr;
FocusStream* FocusE2eTest::focus_ = nullptr;
cnn::SegmentGroundTruth* FocusE2eTest::truth_ = nullptr;

TEST_F(FocusE2eTest, TunerPicksViableSpecializedConfig) {
  const TuningResult& tuning = focus_->tuning();
  ASSERT_TRUE(tuning.found);
  EXPECT_FALSE(tuning.viable_indices.empty());
  EXPECT_FALSE(tuning.pareto_indices.empty());
  // A busy traffic stream should end up on a specialized model with small K (§4.3).
  EXPECT_TRUE(focus_->chosen_params().model.specialized());
  EXPECT_LE(focus_->chosen_params().k, 16);
}

TEST_F(FocusE2eTest, MeetsAccuracyTargetsOnDominantClasses) {
  AccuracyEvaluator evaluator(truth_, run_->fps());
  std::vector<common::ClassId> dominant = truth_->DominantClasses(0.95, 10);
  ASSERT_FALSE(dominant.empty());
  double sum_p = 0.0;
  double sum_r = 0.0;
  for (common::ClassId cls : dominant) {
    PrecisionRecall pr = evaluator.Evaluate(cls, focus_->Query(cls));
    sum_p += pr.precision;
    sum_r += pr.recall;
  }
  // Targets are enforced on the tuning sample; the full run may wobble slightly, so
  // allow a small generalization slack below the 0.95 targets.
  EXPECT_GE(sum_p / dominant.size(), 0.93);
  EXPECT_GE(sum_r / dominant.size(), 0.93);
}

TEST_F(FocusE2eTest, IngestFarCheaperThanIngestAll) {
  double ingest_all = static_cast<double>(focus_->ingest().detections) *
                      focus_->gt_cnn().inference_cost_millis();
  ASSERT_GT(focus_->ingest().gpu_millis, 0.0);
  // Paper: 43x-98x. Require at least an order of magnitude here.
  EXPECT_GT(ingest_all / focus_->ingest().gpu_millis, 10.0);
}

TEST_F(FocusE2eTest, QueriesFarFasterThanQueryAll) {
  std::vector<common::ClassId> dominant = truth_->DominantClasses(0.95, 10);
  ASSERT_FALSE(dominant.empty());
  double query_all = static_cast<double>(focus_->ingest().detections) *
                     focus_->gt_cnn().inference_cost_millis();
  double total = 0.0;
  for (common::ClassId cls : dominant) {
    total += focus_->Query(cls).gpu_millis;
  }
  double mean = total / static_cast<double>(dominant.size());
  ASSERT_GT(mean, 0.0);
  // Paper: 11x-57x. Require at least an order of magnitude.
  EXPECT_GT(query_all / mean, 10.0);
}

TEST_F(FocusE2eTest, DynamicKxTradesRecallForLatency) {
  std::vector<common::ClassId> dominant = truth_->DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());
  QueryResult narrow = focus_->Query(dominant[0], 1);
  QueryResult wide = focus_->Query(dominant[0], focus_->chosen_params().k);
  EXPECT_LE(narrow.centroids_classified, wide.centroids_classified);
  EXPECT_LE(narrow.frames_returned, wide.frames_returned);
}

TEST_F(FocusE2eTest, IndexRoundTripsThroughKvStoreAndAnswersIdentically) {
  std::vector<common::ClassId> dominant = truth_->DominantClasses(0.5, 1);
  ASSERT_FALSE(dominant.empty());

  index::KvStore store;
  ASSERT_TRUE(focus_->ingest().index.SaveTo(store, "e2e").ok());
  index::TopKIndex reloaded;
  ASSERT_TRUE(reloaded.LoadFrom(store, "e2e").ok());

  QueryEngine original(&focus_->ingest().index, &focus_->ingest_cnn(), &focus_->gt_cnn());
  QueryEngine restored(&reloaded, &focus_->ingest_cnn(), &focus_->gt_cnn());
  QueryResult a = original.Query(dominant[0], -1, {}, run_->fps());
  QueryResult b = restored.Query(dominant[0], -1, {}, run_->fps());
  EXPECT_EQ(a.frame_runs, b.frame_runs);
  EXPECT_EQ(a.centroids_classified, b.centroids_classified);
}

TEST_F(FocusE2eTest, OtherClassQueriesWork) {
  // Find a class outside the specialized model's Ls set that truly occurs.
  const cnn::ModelDesc& model = focus_->chosen_params().model;
  ASSERT_TRUE(model.specialized());
  common::ClassId rare = common::kInvalidClass;
  for (const auto& [cls, segments] : truth_->segments_per_class()) {
    bool in_model = std::find(model.classes.begin(), model.classes.end(), cls) !=
                    model.classes.end();
    if (!in_model && segments >= 3) {
      rare = cls;
      break;
    }
  }
  if (rare == common::kInvalidClass) {
    GTEST_SKIP() << "no OTHER-class candidates in this run";
  }
  QueryResult qr = focus_->Query(rare);
  // OTHER-class queries inspect the OTHER postings and can return genuine results.
  EXPECT_GT(qr.centroids_classified, 0);
}

TEST_F(FocusE2eTest, DeterministicAcrossRebuilds) {
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run_b(catalog_, profile, 600.0, 30.0, 7);
  FocusOptions options;
  auto rebuilt = FocusStream::Build(&run_b, catalog_, options);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->chosen_params().model.name, focus_->chosen_params().model.name);
  EXPECT_EQ((*rebuilt)->chosen_params().k, focus_->chosen_params().k);
  EXPECT_EQ((*rebuilt)->ingest().num_clusters, focus_->ingest().num_clusters);
  EXPECT_DOUBLE_EQ((*rebuilt)->ingest().gpu_millis, focus_->ingest().gpu_millis);
}

}  // namespace
}  // namespace focus::core
