// Unit tests for the runtime substrate: virtual GPU scheduling, the task queue and
// worker pool, metrics, and the ingest/query services over small streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/cnn/model_zoo.h"
#include "src/core/focus_stream.h"
#include "src/runtime/gpu_device.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/metrics.h"
#include "src/runtime/query_service.h"
#include "src/runtime/task_queue.h"
#include "src/runtime/worker_pool.h"

namespace focus::runtime {
namespace {

// --- GpuDevice ---

TEST(GpuDeviceTest, JobsRunBackToBackInFifoOrder) {
  GpuDevice device;
  GpuJobTicket a = device.Submit(0.0, 10.0);
  GpuJobTicket b = device.Submit(0.0, 5.0);
  EXPECT_DOUBLE_EQ(a.start_millis, 0.0);
  EXPECT_DOUBLE_EQ(a.finish_millis, 10.0);
  EXPECT_DOUBLE_EQ(b.start_millis, 10.0);  // Queued behind a.
  EXPECT_DOUBLE_EQ(b.finish_millis, 15.0);
  EXPECT_DOUBLE_EQ(device.free_at(), 15.0);
  EXPECT_DOUBLE_EQ(device.busy_millis(), 15.0);
  EXPECT_EQ(device.jobs_executed(), 2);
}

TEST(GpuDeviceTest, LateSubmissionStartsAtSubmitTime) {
  GpuDevice device;
  device.Submit(0.0, 10.0);
  GpuJobTicket late = device.Submit(100.0, 5.0);
  EXPECT_DOUBLE_EQ(late.start_millis, 100.0);  // Device idle since t=10.
  EXPECT_DOUBLE_EQ(late.finish_millis, 105.0);
}

TEST(GpuDeviceTest, ZeroCostJobIsLegalAndInstant) {
  GpuDevice device;
  GpuJobTicket t = device.Submit(3.0, 0.0);
  EXPECT_DOUBLE_EQ(t.start_millis, 3.0);
  EXPECT_DOUBLE_EQ(t.finish_millis, 3.0);
}

TEST(GpuDeviceTest, UtilizationIsBusyOverHorizon) {
  GpuDevice device;
  device.Submit(0.0, 25.0);
  EXPECT_DOUBLE_EQ(device.UtilizationOver(100.0), 0.25);
  EXPECT_DOUBLE_EQ(device.UtilizationOver(0.0), 0.0);
  EXPECT_DOUBLE_EQ(device.UtilizationOver(10.0), 1.0);  // Clamped.
}

TEST(GpuDeviceTest, ResetForgetsEverything) {
  GpuDevice device;
  device.Submit(0.0, 10.0);
  device.Reset();
  EXPECT_DOUBLE_EQ(device.free_at(), 0.0);
  EXPECT_DOUBLE_EQ(device.busy_millis(), 0.0);
  EXPECT_EQ(device.jobs_executed(), 0);
}

// --- GpuCluster ---

TEST(GpuClusterTest, DispatchesToLeastLoadedDevice) {
  GpuCluster cluster(2);
  GpuJobTicket a = cluster.Submit(0.0, 10.0);
  GpuJobTicket b = cluster.Submit(0.0, 10.0);
  GpuJobTicket c = cluster.Submit(0.0, 10.0);
  EXPECT_EQ(a.device, 0);
  EXPECT_EQ(b.device, 1);  // Device 0 busy until t=10.
  EXPECT_EQ(c.device, 0);  // Both busy; ties go to the lowest index... device 0 frees first.
  EXPECT_DOUBLE_EQ(c.start_millis, 10.0);
}

TEST(GpuClusterTest, BatchLatencyScalesInverselyWithDevices) {
  // 100 unit jobs: 1 GPU -> 100, 10 GPUs -> 10, 100 GPUs -> 1.
  EXPECT_DOUBLE_EQ(ParallelLatencyMillis(100, 1.0, 1), 100.0);
  EXPECT_DOUBLE_EQ(ParallelLatencyMillis(100, 1.0, 10), 10.0);
  EXPECT_DOUBLE_EQ(ParallelLatencyMillis(100, 1.0, 100), 1.0);
}

TEST(GpuClusterTest, BatchWithFewerJobsThanDevicesTakesOneJobTime) {
  EXPECT_DOUBLE_EQ(ParallelLatencyMillis(3, 7.0, 10), 7.0);
}

TEST(GpuClusterTest, EmptyBatchFinishesImmediately) {
  GpuCluster cluster(4);
  EXPECT_DOUBLE_EQ(cluster.SubmitBatch(5.0, 0, 1.0), 5.0);
}

TEST(GpuClusterTest, StatsAggregateAcrossDevices) {
  GpuCluster cluster(3);
  cluster.SubmitBatch(0.0, 9, 2.0);
  GpuClusterStats stats = cluster.Stats();
  EXPECT_EQ(stats.num_devices, 3);
  EXPECT_EQ(stats.jobs_executed, 9);
  EXPECT_DOUBLE_EQ(stats.total_busy_millis, 18.0);
  EXPECT_DOUBLE_EQ(stats.makespan_millis, 6.0);
  EXPECT_NEAR(stats.imbalance, 1.0, 1e-9);  // 9 jobs split 3/3/3.
}

TEST(GpuClusterTest, SchedulesAreDeterministic) {
  GpuCluster a(4);
  GpuCluster b(4);
  for (int i = 0; i < 50; ++i) {
    GpuJobTicket ta = a.Submit(static_cast<double>(i), 3.0);
    GpuJobTicket tb = b.Submit(static_cast<double>(i), 3.0);
    EXPECT_EQ(ta.device, tb.device);
    EXPECT_DOUBLE_EQ(ta.finish_millis, tb.finish_millis);
  }
}

// --- TaskQueue ---

TEST(TaskQueueTest, FifoWithinSingleThread) {
  TaskQueue<int> queue(8);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  ASSERT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(TaskQueueTest, TryPushFailsWhenFull) {
  TaskQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(TaskQueueTest, CloseDrainsBacklogThenSignalsEnd) {
  TaskQueue<int> queue(4);
  queue.Push(7);
  queue.Close();
  EXPECT_FALSE(queue.Push(8));  // Rejected after close.
  EXPECT_EQ(queue.Pop().value(), 7);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(TaskQueueTest, BlockedConsumerWakesOnPush) {
  TaskQueue<int> queue(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] { got.store(queue.Pop().value_or(-2)); });
  queue.Push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(TaskQueueTest, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  TaskQueue<int> queue(16);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  consumers.reserve(3);
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second);  // Each item delivered exactly once.
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  queue.Close();
  for (std::thread& t : consumers) {
    t.join();
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

TEST(TaskQueueTest, PopBatchDrainsFifoUpToMax) {
  TaskQueue<int> queue(8);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(queue.Push(i));
  }
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.PopBatch(out, 10), 2u);  // Appends the remainder.
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskQueueTest, PopBatchReturnsZeroWhenClosedAndEmpty) {
  TaskQueue<int> queue(4);
  queue.Push(1);
  queue.Close();
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(out, 8), 1u);  // Backlog drains first.
  EXPECT_EQ(queue.PopBatch(out, 8), 0u);  // Then closed-and-empty.
}

TEST(TaskQueueTest, PopBatchEdgeCases) {
  TaskQueue<int> queue(4);
  std::vector<int> out;
  // max_items == 1 is the smallest legal batch and behaves like Pop().
  ASSERT_TRUE(queue.Push(9));
  EXPECT_EQ(queue.PopBatch(out, 1), 1u);
  EXPECT_EQ(out, (std::vector<int>{9}));
  // A batch wider than the backlog takes what is there without blocking.
  ASSERT_TRUE(queue.Push(10));
  EXPECT_EQ(queue.PopBatch(out, 100), 1u);
  EXPECT_EQ(out, (std::vector<int>{9, 10}));
  // max_items == 0 is a programmer error: its return value would be
  // indistinguishable from the closed-and-empty sentinel on an open queue.
  EXPECT_DEATH_IF_SUPPORTED(queue.PopBatch(out, 0), "max_items");
}

TEST(TaskQueueTest, PopBatchWakesBlockedProducers) {
  TaskQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3));  // Blocks until the batch pop frees capacity.
    EXPECT_TRUE(queue.Push(4));
  });
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(out, 2), 2u);
  producer.join();
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(TaskQueueTest, PopBatchDeliversEverythingOnceAcrossConsumers) {
  constexpr int kItems = 1000;
  TaskQueue<int> queue(16);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      queue.Push(i);
    }
    queue.Close();
  });
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (true) {
        batch.clear();
        if (queue.PopBatch(batch, 7) == 0) {
          return;
        }
        std::lock_guard<std::mutex> lock(seen_mutex);
        for (int item : batch) {
          EXPECT_TRUE(seen.insert(item).second);
        }
      }
    });
  }
  producer.join();
  for (std::thread& t : consumers) {
    t.join();
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kItems));
}

// --- WorkerPool ---

TEST(WorkerPoolTest, BatchedWorkersExecuteAllTasks) {
  WorkerPool pool(4, 1024, /*pop_batch=*/8);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 500);
  EXPECT_EQ(pool.tasks_completed(), 500);
}

TEST(WorkerPoolTest, ExecutesAllSubmittedTasks) {
  WorkerPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100);
}

TEST(WorkerPoolTest, DrainWithNoTasksReturnsImmediately) {
  WorkerPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.tasks_completed(), 0);
}

TEST(WorkerPoolTest, ShutdownRejectsFurtherWork) {
  WorkerPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(WorkerPoolTest, DestructorDrainsBacklog) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 32);
}

// --- MetricsRegistry ---

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry metrics;
  metrics.IncrementCounter("a");
  metrics.IncrementCounter("a", 4);
  EXPECT_EQ(metrics.counter("a"), 5);
  EXPECT_EQ(metrics.counter("missing"), 0);
}

TEST(MetricsTest, GaugesKeepLastValue) {
  MetricsRegistry metrics;
  metrics.SetGauge("g", 1.5);
  metrics.SetGauge("g", 2.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("g"), 2.5);
}

TEST(MetricsTest, DistributionsTrackCountSumMinMax) {
  MetricsRegistry metrics;
  metrics.Observe("d", 2.0);
  metrics.Observe("d", 6.0);
  metrics.Observe("d", 4.0);
  MetricsRegistry::Distribution d = metrics.distribution("d");
  EXPECT_EQ(d.count, 3);
  EXPECT_DOUBLE_EQ(d.sum, 12.0);
  EXPECT_DOUBLE_EQ(d.min, 2.0);
  EXPECT_DOUBLE_EQ(d.max, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
}

TEST(MetricsTest, ConcurrentUpdatesDoNotLoseIncrements) {
  MetricsRegistry metrics;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        metrics.IncrementCounter("c");
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(metrics.counter("c"), 4000);
}

TEST(MetricsTest, RenderListsAllMetrics) {
  MetricsRegistry metrics;
  metrics.IncrementCounter("requests", 3);
  metrics.SetGauge("load", 0.5);
  std::string rendered = metrics.Render();
  EXPECT_NE(rendered.find("requests=3"), std::string::npos);
  EXPECT_NE(rendered.find("load=0.5"), std::string::npos);
}

// --- IngestService / QueryService over a real (small) stream ---

class RuntimeServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new video::ClassCatalog(21);
    video::StreamProfile profile;
    ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
    run_ = new video::StreamRun(catalog_, profile, 120.0, 30.0, 5);
  }

  static void TearDownTestSuite() {
    delete run_;
    delete catalog_;
    run_ = nullptr;
    catalog_ = nullptr;
  }

  static core::IngestParams GenericParams() {
    core::IngestParams params;
    params.model = cnn::GenericCheapCandidates(33)[0];  // ResNet18 @ 224.
    params.k = 40;
    params.cluster_threshold = 0.6;
    return params;
  }

  static video::ClassCatalog* catalog_;
  static video::StreamRun* run_;
};

video::ClassCatalog* RuntimeServiceTest::catalog_ = nullptr;
video::StreamRun* RuntimeServiceTest::run_ = nullptr;

TEST_F(RuntimeServiceTest, IngestServiceMatchesDirectPipelineRun) {
  IngestServiceOptions options;
  options.num_worker_threads = 2;
  MetricsRegistry metrics;
  IngestService service(options, &metrics);
  IngestJob job;
  job.name = "auburn_c";
  job.run = run_;
  job.params = GenericParams();
  service.AddStream(job);
  FleetIngestSummary summary = service.RunAll();
  ASSERT_EQ(summary.reports.size(), 1u);

  cnn::Cnn cheap(GenericParams().model, catalog_);
  core::IngestResult direct = core::RunIngest(*run_, cheap, GenericParams());
  EXPECT_EQ(summary.reports[0].result.detections, direct.detections);
  EXPECT_EQ(summary.reports[0].result.cnn_invocations, direct.cnn_invocations);
  EXPECT_DOUBLE_EQ(summary.reports[0].result.gpu_millis, direct.gpu_millis);
  EXPECT_EQ(metrics.counter("ingest.detections"), direct.detections);
}

TEST_F(RuntimeServiceTest, ShardedIngestMatchesSequentialAccounting) {
  IngestServiceOptions options;
  options.num_worker_threads = 2;
  options.num_shards = 4;  // Service-level override of the jobs' default of 1.
  MetricsRegistry metrics;
  IngestService service(options, &metrics);
  IngestJob job;
  job.name = "auburn_c";
  job.run = run_;
  job.params = GenericParams();
  service.AddStream(job);
  FleetIngestSummary summary = service.RunAll();
  ASSERT_EQ(summary.reports.size(), 1u);

  // Classification (the GPU-bearing stage) is untouched by sharding: detection,
  // invocation, and GPU accounting match the sequential pipeline exactly.
  cnn::Cnn cheap(GenericParams().model, catalog_);
  core::IngestResult direct = core::RunIngest(*run_, cheap, GenericParams());
  EXPECT_EQ(summary.reports[0].result.detections, direct.detections);
  EXPECT_EQ(summary.reports[0].result.cnn_invocations, direct.cnn_invocations);
  EXPECT_EQ(summary.reports[0].result.suppressed, direct.suppressed);
  EXPECT_DOUBLE_EQ(summary.reports[0].result.gpu_millis, direct.gpu_millis);
  EXPECT_GT(summary.reports[0].result.num_clusters, 0);
  EXPECT_EQ(summary.reports[0].result.index.total_indexed_detections(), direct.detections);
}

TEST_F(RuntimeServiceTest, ParallelIngestOfClonedStreamsIsDeterministic) {
  auto run_fleet = [&] {
    IngestServiceOptions options;
    options.num_worker_threads = 3;
    MetricsRegistry metrics;
    IngestService service(options, &metrics);
    for (int i = 0; i < 3; ++i) {
      IngestJob job;
      job.name = "clone" + std::to_string(i);
      job.run = run_;
      job.params = GenericParams();
      service.AddStream(job);
    }
    return service.RunAll();
  };
  FleetIngestSummary a = run_fleet();
  FleetIngestSummary b = run_fleet();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.reports[i].result.gpu_millis, b.reports[i].result.gpu_millis);
    EXPECT_DOUBLE_EQ(a.reports[i].cluster_finish_millis, b.reports[i].cluster_finish_millis);
  }
  EXPECT_DOUBLE_EQ(a.total_gpu_occupancy, b.total_gpu_occupancy);
}

TEST_F(RuntimeServiceTest, OccupancyAnswersRealtimeProvisioning) {
  IngestServiceOptions options;
  MetricsRegistry metrics;
  IngestService service(options, &metrics);
  IngestJob job;
  job.name = "auburn_c";
  job.run = run_;
  job.params = GenericParams();
  service.AddStream(job);
  FleetIngestSummary summary = service.RunAll();
  // A cheap CNN ingesting one stream must need (far) less than one full GPU.
  EXPECT_GT(summary.reports[0].gpu_occupancy, 0.0);
  EXPECT_LT(summary.reports[0].gpu_occupancy, 1.0);
  EXPECT_EQ(summary.min_gpus_for_realtime, 1);
  // Monthly cost scales linearly with occupancy.
  EXPECT_NEAR(service.CostPerStreamMonthly(summary.reports[0].gpu_occupancy),
              summary.reports[0].gpu_occupancy * 250.0, 1e-9);
}

TEST_F(RuntimeServiceTest, QueryServiceLatencyDropsWithMoreGpus) {
  core::FocusOptions focus_options;
  auto focus_or = core::FocusStream::Build(run_, catalog_, focus_options);
  ASSERT_TRUE(focus_or.ok()) << focus_or.error().message;
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(*run_, focus.gt_cnn());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 3);
  ASSERT_FALSE(dominant.empty());

  QueryRequest request;
  request.stream = &focus;
  request.cls = dominant[0];

  // batch_size = 1 pins the per-centroid fan-out (one launch per centroid at
  // full single-inference cost), so the speedup from adding GPUs is pure
  // parallelism — the seed service's contract. Batched launches trade some of
  // that scaling for launch amortization; see the batching tests below.
  QueryService one_gpu(QueryServiceOptions{.num_gpus = 1, .batch_size = 1});
  QueryService ten_gpus(QueryServiceOptions{.num_gpus = 10, .batch_size = 1});
  QueryExecution on_one = one_gpu.Execute(request);
  QueryExecution on_ten = ten_gpus.Execute(request);
  EXPECT_EQ(on_one.result.centroids_classified, on_ten.result.centroids_classified);
  if (on_one.result.centroids_classified >= 10) {
    EXPECT_LT(on_ten.latency_millis(), on_one.latency_millis());
    // Perfect parallelism within rounding: one GPU's latency is ~10x ten GPUs'.
    EXPECT_NEAR(on_one.latency_millis() / on_ten.latency_millis(), 10.0, 2.0);
  }
}

TEST_F(RuntimeServiceTest, ConcurrentQueriesShareTheCluster) {
  core::FocusOptions focus_options;
  auto focus_or = core::FocusStream::Build(run_, catalog_, focus_options);
  ASSERT_TRUE(focus_or.ok()) << focus_or.error().message;
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(*run_, focus.gt_cnn());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 4);
  ASSERT_GE(dominant.size(), 2u);

  std::vector<QueryRequest> batch;
  for (common::ClassId cls : dominant) {
    batch.push_back(QueryRequest{.stream = &focus, .cls = cls});
  }
  QueryService service(QueryServiceOptions{.num_gpus = 4});
  std::vector<QueryExecution> executions = service.ExecuteConcurrently(batch);
  ASSERT_EQ(executions.size(), batch.size());
  // All requests were admitted at the same instant and share the cluster. The
  // time actually charged to the cluster is the launch-amortized batched cost
  // (last_stats), never more than the logical per-centroid sum — batching and
  // cross-query dedup only remove work.
  common::GpuMillis total_work = 0;
  for (const QueryExecution& e : executions) {
    total_work += e.result.gpu_millis;
  }
  const QueryBatchStats& stats = service.last_stats();
  EXPECT_EQ(stats.requests, static_cast<int64_t>(batch.size()));
  EXPECT_EQ(stats.unique_items + stats.dedup_hits, stats.work_items);
  EXPECT_NEAR(service.cluster().Stats().total_busy_millis, stats.gpu_millis, 1e-6);
  EXPECT_LE(service.cluster().Stats().total_busy_millis, total_work + 1e-6);
}

TEST_F(RuntimeServiceTest, BatchedExecutionIsResultIdenticalToPerCentroid) {
  core::FocusOptions focus_options;
  auto focus_or = core::FocusStream::Build(run_, catalog_, focus_options);
  ASSERT_TRUE(focus_or.ok()) << focus_or.error().message;
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(*run_, focus.gt_cnn());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 4);
  ASSERT_FALSE(dominant.empty());

  std::vector<QueryRequest> batch;
  for (common::ClassId cls : dominant) {
    batch.push_back(QueryRequest{.stream = &focus, .cls = cls});
  }
  // The direct engine query is the per-centroid reference; every batch_size must
  // reproduce it bit for bit (including the execution-independent gpu_millis).
  for (int batch_size : {1, 4, 32}) {
    QueryService service(QueryServiceOptions{.num_gpus = 3, .batch_size = batch_size});
    std::vector<QueryExecution> executions = service.ExecuteConcurrently(batch);
    ASSERT_EQ(executions.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const core::QueryResult direct = focus.Query(dominant[i]);
      EXPECT_EQ(executions[i].result.frame_runs, direct.frame_runs) << batch_size;
      EXPECT_EQ(executions[i].result.frames_returned, direct.frames_returned);
      EXPECT_EQ(executions[i].result.clusters_matched, direct.clusters_matched);
      EXPECT_EQ(executions[i].result.centroids_classified, direct.centroids_classified);
      EXPECT_DOUBLE_EQ(executions[i].result.gpu_millis, direct.gpu_millis);
    }
  }
}

TEST_F(RuntimeServiceTest, DuplicateConcurrentQueriesClassifyEachCentroidOnce) {
  core::FocusOptions focus_options;
  auto focus_or = core::FocusStream::Build(run_, catalog_, focus_options);
  ASSERT_TRUE(focus_or.ok()) << focus_or.error().message;
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(*run_, focus.gt_cnn());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 1);
  ASSERT_FALSE(dominant.empty());
  const core::QueryResult direct = focus.Query(dominant[0]);
  ASSERT_GT(direct.centroids_classified, 0);

  // Three analysts ask the identical question at once: the shared (stream,
  // centroid) classifications run once and all three resolve from the shared
  // verdict table, with identical results.
  std::vector<QueryRequest> batch(3, QueryRequest{.stream = &focus, .cls = dominant[0]});
  QueryService service(QueryServiceOptions{.num_gpus = 4});
  std::vector<QueryExecution> executions = service.ExecuteConcurrently(batch);
  ASSERT_EQ(executions.size(), batch.size());

  const QueryBatchStats& stats = service.last_stats();
  EXPECT_EQ(stats.work_items, 3 * direct.centroids_classified);
  EXPECT_EQ(stats.unique_items, direct.centroids_classified);
  EXPECT_EQ(stats.dedup_hits, 2 * direct.centroids_classified);
  for (const QueryExecution& e : executions) {
    EXPECT_EQ(e.result.frame_runs, direct.frame_runs);
    // Logical accounting stays per-request even though the GPU work was shared.
    EXPECT_DOUBLE_EQ(e.result.gpu_millis, direct.gpu_millis);
  }
  // The cluster was charged for one query's worth of (batched) work, not three.
  EXPECT_NEAR(service.cluster().Stats().total_busy_millis, stats.gpu_millis, 1e-6);
  EXPECT_LT(stats.gpu_millis, 3 * direct.gpu_millis);
}

TEST_F(RuntimeServiceTest, BatchingReducesGpuTimeWithoutChangingResults) {
  core::FocusOptions focus_options;
  auto focus_or = core::FocusStream::Build(run_, catalog_, focus_options);
  ASSERT_TRUE(focus_or.ok()) << focus_or.error().message;
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(*run_, focus.gt_cnn());
  std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 4);
  ASSERT_FALSE(dominant.empty());

  std::vector<QueryRequest> batch;
  for (common::ClassId cls : dominant) {
    batch.push_back(QueryRequest{.stream = &focus, .cls = cls});
  }

  QueryService unbatched(QueryServiceOptions{.num_gpus = 2, .batch_size = 1});
  QueryService batched(QueryServiceOptions{.num_gpus = 2, .batch_size = 32});
  std::vector<QueryExecution> a = unbatched.ExecuteConcurrently(batch);
  std::vector<QueryExecution> b = batched.ExecuteConcurrently(batch);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.frame_runs, b[i].result.frame_runs);
  }
  // Same unique work either way; batching packs it into fewer launches whose
  // amortized cost is strictly lower once launches carry more than one image.
  EXPECT_EQ(unbatched.last_stats().unique_items, batched.last_stats().unique_items);
  if (batched.last_stats().unique_items > 2) {
    EXPECT_LT(batched.last_stats().launches, unbatched.last_stats().launches);
    EXPECT_LT(batched.cluster().Stats().total_busy_millis,
              unbatched.cluster().Stats().total_busy_millis);
    common::GpuMillis max_a = 0.0;
    common::GpuMillis max_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      max_a = std::max(max_a, a[i].latency_millis());
      max_b = std::max(max_b, b[i].latency_millis());
    }
    EXPECT_LE(max_b, max_a);
  }
}

}  // namespace
}  // namespace focus::runtime
