#include "src/vision/tracker.h"

#include <algorithm>

#include "src/common/logging.h"

namespace focus::vision {

IouTracker::IouTracker(TrackerOptions options) : options_(options) {}

video::BBox IouTracker::PredictTo(const Track& track, common::FrameIndex frame) {
  const float dt = static_cast<float>(frame - track.last_seen);
  video::BBox predicted = track.bbox;
  predicted.x += track.vx * dt;
  predicted.y += track.vy * dt;
  return predicted;
}

std::vector<TrackedBox> IouTracker::Update(common::FrameIndex frame,
                                           const std::vector<video::BBox>& boxes) {
  FOCUS_CHECK(frame > last_frame_);
  last_frame_ = frame;

  // Retire tracks that coasted too long.
  for (Track& track : tracks_) {
    if (track.alive && frame - track.last_seen > options_.max_coast_frames) {
      track.alive = false;
    }
  }

  // Score all (live track, detection) pairs above the IoU floor.
  struct Candidate {
    double iou;
    size_t track_index;
    size_t box_index;
  };
  std::vector<Candidate> candidates;
  for (size_t t = 0; t < tracks_.size(); ++t) {
    if (!tracks_[t].alive) {
      continue;
    }
    const video::BBox predicted = PredictTo(tracks_[t], frame);
    for (size_t b = 0; b < boxes.size(); ++b) {
      const double iou = video::IoU(predicted, boxes[b]);
      if (iou >= options_.min_iou) {
        candidates.push_back({iou, t, b});
      }
    }
  }
  // Greedy one-to-one in decreasing IoU; index tie-breaks keep it deterministic.
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.iou != b.iou) {
      return a.iou > b.iou;
    }
    if (a.track_index != b.track_index) {
      return a.track_index < b.track_index;
    }
    return a.box_index < b.box_index;
  });

  std::vector<TrackedBox> out(boxes.size());
  std::vector<bool> track_taken(tracks_.size(), false);
  std::vector<bool> box_taken(boxes.size(), false);
  for (const Candidate& c : candidates) {
    if (track_taken[c.track_index] || box_taken[c.box_index]) {
      continue;
    }
    track_taken[c.track_index] = true;
    box_taken[c.box_index] = true;

    Track& track = tracks_[c.track_index];
    const video::BBox& observed = boxes[c.box_index];
    const float dt = static_cast<float>(frame - track.last_seen);
    if (dt > 0) {
      const float a = static_cast<float>(options_.velocity_alpha);
      track.vx = (1.0f - a) * track.vx + a * (observed.x - track.bbox.x) / dt;
      track.vy = (1.0f - a) * track.vy + a * (observed.y - track.bbox.y) / dt;
    }
    track.bbox = observed;
    track.last_seen = frame;
    out[c.box_index] = {track.id, observed, /*is_new_track=*/false};
  }

  // Unmatched detections start new tracks.
  for (size_t b = 0; b < boxes.size(); ++b) {
    if (box_taken[b]) {
      continue;
    }
    Track track;
    track.id = next_id_++;
    track.bbox = boxes[b];
    track.last_seen = frame;
    tracks_.push_back(track);
    out[b] = {track.id, boxes[b], /*is_new_track=*/true};
  }

  // Compact retired tracks occasionally so long runs stay O(live).
  if (tracks_.size() > 64 && live_tracks() * 4 < static_cast<int64_t>(tracks_.size())) {
    std::vector<Track> live;
    live.reserve(tracks_.size() / 2);
    for (Track& track : tracks_) {
      if (track.alive) {
        live.push_back(track);
      }
    }
    tracks_ = std::move(live);
  }
  return out;
}

int64_t IouTracker::live_tracks() const {
  int64_t n = 0;
  for (const Track& track : tracks_) {
    if (track.alive) {
      ++n;
    }
  }
  return n;
}

}  // namespace focus::vision
