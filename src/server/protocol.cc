#include "src/server/protocol.h"

#include <cstdlib>
#include <sstream>

namespace focus::server {

namespace {

common::Error BadRequest(const std::string& what) {
  return common::Error{common::ErrorCode::kInvalidArgument, what};
}

// Splits "a,b,c" on commas; empty segments are preserved (caller rejects them).
std::vector<std::string> SplitCameraList(const std::string& token) {
  std::vector<std::string> names;
  size_t begin = 0;
  while (true) {
    const size_t comma = token.find(',', begin);
    if (comma == std::string::npos) {
      names.push_back(token.substr(begin));
      return names;
    }
    names.push_back(token.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

// Parses the optional [BEGIN s] [END s] [KX n] [TENANT t] tail of QUERY.
common::Result<bool> ParseQueryOptions(const std::vector<std::string>& tokens, size_t from,
                                       Request* request) {
  size_t i = from;
  while (i < tokens.size()) {
    const std::string& key = tokens[i];
    if (i + 1 >= tokens.size()) {
      return BadRequest("option " + key + " needs a value");
    }
    const std::string& value = tokens[i + 1];
    if (key == "TENANT") {
      request->tenant = value;
      i += 2;
      continue;
    }
    char* end = nullptr;
    if (key == "BEGIN") {
      request->range.begin_sec = std::strtod(value.c_str(), &end);
    } else if (key == "END") {
      request->range.end_sec = std::strtod(value.c_str(), &end);
    } else if (key == "KX") {
      request->kx = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (request->kx <= 0) {
        return BadRequest("KX must be positive");
      }
    } else {
      return BadRequest("unknown option " + key);
    }
    if (end == value.c_str() || *end != '\0') {
      return BadRequest("bad number for " + key + ": " + value);
    }
    i += 2;
  }
  if (request->range.end_sec >= 0.0 && request->range.end_sec <= request->range.begin_sec) {
    return BadRequest("END must be after BEGIN");
  }
  return true;
}

}  // namespace

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

common::Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return BadRequest("empty request");
  }
  Request request;
  const std::string& verb = tokens[0];
  if (verb == "PING") {
    if (tokens.size() != 1) {
      return BadRequest("PING takes no arguments");
    }
    request.verb = Verb::kPing;
    return request;
  }
  if (verb == "CAMERAS") {
    if (tokens.size() != 1) {
      return BadRequest("CAMERAS takes no arguments");
    }
    request.verb = Verb::kCameras;
    return request;
  }
  if (verb == "CLASSES") {
    if (tokens.size() > 2) {
      return BadRequest("CLASSES takes at most one filter");
    }
    request.verb = Verb::kClasses;
    request.class_filter = tokens.size() == 2 ? tokens[1] : "";
    return request;
  }
  if (verb == "HEALTH") {
    if (tokens.size() > 2) {
      return BadRequest("usage: HEALTH [camera]");
    }
    request.verb = Verb::kHealth;
    request.camera = tokens.size() == 2 ? tokens[1] : "";
    return request;
  }
  if (verb == "SHM") {
    if (tokens.size() < 2) {
      return BadRequest(
          "usage: SHM ATTACH <segment> | SHM STATUS [segment] | "
          "SHM SERVE <segment> [WORKERS <n>] | SHM QUERY <segment> <class> [options]");
    }
    request.verb = Verb::kShm;
    request.shm_op = tokens[1];
    if (request.shm_op == "ATTACH") {
      if (tokens.size() != 3) {
        return BadRequest("usage: SHM ATTACH <segment>");
      }
      request.shm_name = tokens[2];
      return request;
    }
    if (request.shm_op == "STATUS") {
      if (tokens.size() > 3) {
        return BadRequest("usage: SHM STATUS [segment]");
      }
      request.shm_name = tokens.size() == 3 ? tokens[2] : "";
      return request;
    }
    if (request.shm_op == "SERVE") {
      if (tokens.size() != 3 && tokens.size() != 5) {
        return BadRequest("usage: SHM SERVE <segment> [WORKERS <n>]");
      }
      request.shm_name = tokens[2];
      if (tokens.size() == 5) {
        if (tokens[3] != "WORKERS") {
          return BadRequest("unknown option " + tokens[3]);
        }
        char* end = nullptr;
        request.shm_workers = static_cast<int>(std::strtol(tokens[4].c_str(), &end, 10));
        if (end == tokens[4].c_str() || *end != '\0' || request.shm_workers <= 0) {
          return BadRequest("WORKERS must be a positive integer");
        }
      }
      return request;
    }
    if (request.shm_op == "QUERY") {
      if (tokens.size() < 4) {
        return BadRequest("usage: SHM QUERY <segment> <class> [BEGIN s] [END s] [KX n]");
      }
      request.shm_name = tokens[2];
      request.class_name = tokens[3];
      for (size_t i = 4; i < tokens.size(); i += 2) {
        if (tokens[i] == "TENANT") {
          return BadRequest("SHM QUERY does not take TENANT");
        }
      }
      auto options = ParseQueryOptions(tokens, 4, &request);
      if (!options.ok()) {
        return options.error();
      }
      return request;
    }
    return BadRequest("unknown SHM operation " + request.shm_op);
  }
  if (verb == "STATS") {
    if (tokens.size() > 2) {
      return BadRequest("usage: STATS [camera]");
    }
    request.verb = Verb::kStats;
    request.camera = tokens.size() == 2 ? tokens[1] : "";
    return request;
  }
  if (verb == "QUERY") {
    if (tokens.size() < 3) {
      return BadRequest(
          "usage: QUERY <camera>[,<camera>...] <class> | QUERY REGION <region> <class>");
    }
    request.verb = Verb::kQuery;
    size_t class_at = 2;
    if (tokens[1] == "REGION") {
      if (tokens.size() < 4) {
        return BadRequest("usage: QUERY REGION <region> <class> [options]");
      }
      request.region = tokens[2];
      class_at = 3;
    } else if (tokens[1].find(',') != std::string::npos) {
      request.cameras = SplitCameraList(tokens[1]);
      for (const std::string& name : request.cameras) {
        if (name.empty()) {
          return BadRequest("empty camera name in list: " + tokens[1]);
        }
      }
    } else {
      request.camera = tokens[1];
    }
    request.class_name = tokens[class_at];
    auto options = ParseQueryOptions(tokens, class_at + 1, &request);
    if (!options.ok()) {
      return options.error();
    }
    return request;
  }
  return BadRequest("unknown verb " + verb);
}

std::string OkResponse(const std::string& payload) {
  return payload.empty() ? "OK" : "OK " + payload;
}

std::string ErrResponse(common::ErrorCode code, const std::string& message) {
  return std::string("ERR ") + common::ErrorCodeName(code) + " " + message;
}

}  // namespace focus::server
