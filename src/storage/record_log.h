// Append-only record log with checksummed framing and crash recovery.
//
// Live ingest produces index updates continuously; losing a day of indexing to a
// crash would force re-running the cheap CNN over the backlog. The record log is the
// write-ahead structure that prevents that: each appended record is framed as
//
//   [length u32] [crc32 u32] [payload bytes]
//
// and appended with a flush. On restart, ReadAll() replays records until the first
// frame that fails its length or CRC check — a torn tail from a crash mid-append is
// truncated away rather than treated as corruption of the whole log.
//
// Durability is governed by an FsyncOptions cadence (see fsync_policy.h): the default
// kNever matches the log's advisory role — its records are superseded by the next
// checkpoint, so the loss window is already bounded by the checkpoint cadence.
#ifndef FOCUS_SRC_STORAGE_RECORD_LOG_H_
#define FOCUS_SRC_STORAGE_RECORD_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/storage/fsync_policy.h"

namespace focus::storage {

class RecordLogWriter {
 public:
  // Opens |path| for append, creating it when absent. With |truncate| the
  // existing contents are discarded first — the checkpoint-time rotation of a
  // delta log whose records are superseded by the checkpoint they led up to.
  static common::Result<RecordLogWriter> Open(const std::string& path, bool truncate = false,
                                              FsyncOptions fsync = FsyncOptions::Never());

  RecordLogWriter(RecordLogWriter&& other) noexcept;
  RecordLogWriter& operator=(RecordLogWriter&& other) noexcept;
  RecordLogWriter(const RecordLogWriter&) = delete;
  RecordLogWriter& operator=(const RecordLogWriter&) = delete;
  ~RecordLogWriter();

  // Appends one record, then syncs per the fsync policy. Injection site
  // "record_log.append" produces a genuinely torn tail: half the frame reaches the
  // file before the error returns, exercising the ReadRecordLog recovery path.
  common::Result<bool> Append(const std::string& payload);

  int64_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  RecordLogWriter() = default;

  std::string path_;
  int fd_ = -1;
  FsyncOptions fsync_;
  int64_t records_written_ = 0;
};

struct RecordLogContents {
  std::vector<std::string> records;
  // True when the file ended with a torn or corrupt frame that was dropped (the
  // expected state after a crash mid-append).
  bool truncated_tail = false;
};

// Replays every valid record of the log at |path|. A missing file yields an empty
// contents (a fresh deployment has no log yet).
common::Result<RecordLogContents> ReadRecordLog(const std::string& path);

}  // namespace focus::storage

#endif  // FOCUS_SRC_STORAGE_RECORD_LOG_H_
