// Ablation: clustering distance threshold T (§4.2, §4.4).
//
// T is the only Focus parameter that affects precision: a loose threshold merges
// visually similar objects of different classes into one cluster, so the centroid's
// GT-CNN verdict is wrong for part of the cluster's members (lost precision when the
// centroid matches the query, lost recall when it doesn't). A tight threshold keeps
// clusters pure but multiplies their number, and query latency is proportional to the
// number of candidate centroids. This bench fixes the Balance-policy model/K for
// auburn_c and sweeps T, printing the precision/recall/latency trade-off the tuner
// navigates in its second selection step.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cnn/ground_truth.h"
#include "src/common/logging.h"
#include "src/core/focus_stream.h"

int main() {
  using namespace focus;
  common::SetLogLevel(common::LogLevel::kWarning);
  bench::BenchConfig config = bench::ConfigFromEnv();
  video::ClassCatalog catalog(config.world_seed);
  video::StreamRun run = bench::MakeRun(catalog, "auburn_c", config);
  cnn::Cnn gt(cnn::GtCnnDesc(catalog.world_seed()), &catalog);

  // Baseline configuration: whatever Balance picks for this stream.
  core::FocusOptions options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, options);
  if (!focus_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n", focus_or.error().message.c_str());
    return 1;
  }
  core::IngestParams params = (*focus_or)->chosen_params();

  bench::PrintHeader("Ablation: clustering threshold T (auburn_c, model=" + params.model.name +
                     ", K=" + std::to_string(params.k) + ")");
  std::printf("%6s %10s %10s %10s %12s %14s\n", "T", "Clusters", "Prec", "Recall",
              "QueryFaster", "IngestCheaper");

  const std::vector<double> thresholds = {0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0, 1.3};
  for (double t : thresholds) {
    core::IngestParams swept = params;
    swept.cluster_threshold = t;
    bench::StreamOutcome out =
        bench::DeployConfig(catalog, run, swept, gt, core::Policy::kBalance);
    std::printf("%6.2f %10lld %10.3f %10.3f %12s %14s\n", t,
                static_cast<long long>(out.clusters), out.precision, out.recall,
                bench::FormatFactor(out.query_faster_by).c_str(),
                bench::FormatFactor(out.ingest_cheaper_by).c_str());
  }

  std::printf(
      "\nExpected shape: cluster count and query speedup fall as T grows (fewer,\n"
      "larger clusters -> fewer centroids to classify); precision degrades once T\n"
      "admits mixed-class clusters; recall peaks at moderate T and drops when\n"
      "centroids of mixed clusters stop matching the queried class.\n");
  return 0;
}
