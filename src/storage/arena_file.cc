#include "src/storage/arena_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/common/fault_injection.h"
#include "src/storage/record_log.h"
#include "src/storage/serializer.h"

namespace focus::storage {

namespace {

constexpr uint64_t kMagic = 0x414E4552'41434F46ULL;  // "FOCARENA" little-endian.
constexpr uint32_t kVersion = 1;
constexpr uint64_t kMinCapacityRows = 64;
constexpr size_t kSectionAlign = 64;  // SIMD-friendly section starts.

size_t AlignUp(size_t n, size_t align) { return (n + align - 1) / align * align; }

common::Error Errno(const std::string& what, const std::string& path) {
  return common::Error{common::ErrorCode::kIo, what + ": " + path + ": " + std::strerror(errno)};
}

// Fixed-size header image serialized into a slot. The CRC covers every field
// before it, so a torn slot write is detected and the other slot adopted.
// Section offsets are stored explicitly (not derived from the capacity):
// growth relocates sections into fresh space beyond the old file end, and the
// old header's offsets must keep describing valid bytes until the new header
// is published — that is what makes a crash mid-growth recoverable.
struct HeaderImage {
  uint32_t dim = 0;
  uint32_t head_dim = 0;
  uint64_t capacity_rows = 0;
  uint64_t committed_rows = 0;
  uint64_t generation = 0;
  uint64_t file_bytes = 0;
  uint64_t arena_off = 0;
  uint64_t head_off = 0;
  uint64_t norms_off = 0;
  uint64_t sizes_off = 0;
  uint64_t ids_off = 0;

  std::string Encode() const {
    Encoder enc;
    enc.PutU64(kMagic);
    enc.PutU32(kVersion);
    enc.PutU32(dim);
    enc.PutU32(head_dim);
    enc.PutU64(capacity_rows);
    enc.PutU64(committed_rows);
    enc.PutU64(generation);
    enc.PutU64(file_bytes);
    enc.PutU64(arena_off);
    enc.PutU64(head_off);
    enc.PutU64(norms_off);
    enc.PutU64(sizes_off);
    enc.PutU64(ids_off);
    std::string bytes = enc.TakeBytes();
    Encoder crc;
    crc.PutU32(Crc32(bytes));
    return bytes + crc.bytes();
  }

  static bool Decode(std::string_view slot, HeaderImage* out) {
    Decoder dec(slot);
    uint64_t magic = 0;
    uint32_t version = 0;
    if (!dec.GetU64(&magic) || magic != kMagic || !dec.GetU32(&version) ||
        version != kVersion) {
      return false;
    }
    if (!dec.GetU32(&out->dim) || !dec.GetU32(&out->head_dim) ||
        !dec.GetU64(&out->capacity_rows) || !dec.GetU64(&out->committed_rows) ||
        !dec.GetU64(&out->generation) || !dec.GetU64(&out->file_bytes) ||
        !dec.GetU64(&out->arena_off) || !dec.GetU64(&out->head_off) ||
        !dec.GetU64(&out->norms_off) || !dec.GetU64(&out->sizes_off) ||
        !dec.GetU64(&out->ids_off)) {
      return false;
    }
    const size_t payload_end = dec.offset();
    uint32_t crc = 0;
    if (!dec.GetU32(&crc)) {
      return false;
    }
    return Crc32(slot.substr(0, payload_end)) == crc;
  }
};

}  // namespace

std::string ArenaUndo::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(kind));
  if (kind == Kind::kMarker) {
    enc.PutU64(generation);
    enc.PutU64(rows);
    return enc.TakeBytes();
  }
  enc.PutU64(row);
  enc.PutSignedVarint(id);
  enc.PutSignedVarint(size);
  enc.PutFloat(norm);
  enc.PutVarint(centroid.size());
  for (float v : centroid) {
    enc.PutFloat(v);
  }
  return enc.TakeBytes();
}

bool ArenaUndo::Decode(std::string_view bytes, ArenaUndo* out) {
  Decoder dec(bytes);
  uint8_t kind = 0;
  if (!dec.GetU8(&kind)) {
    return false;
  }
  if (kind == static_cast<uint8_t>(Kind::kMarker)) {
    out->kind = Kind::kMarker;
    return dec.GetU64(&out->generation) && dec.GetU64(&out->rows) && dec.Done();
  }
  if (kind != static_cast<uint8_t>(Kind::kRow)) {
    return false;
  }
  out->kind = Kind::kRow;
  uint64_t dim = 0;
  // Divide instead of multiplying: dim * sizeof(float) can wrap for a corrupt
  // length, and the guard exists precisely to reject those before resize.
  if (!dec.GetU64(&out->row) || !dec.GetSignedVarint(&out->id) ||
      !dec.GetSignedVarint(&out->size) || !dec.GetFloat(&out->norm) ||
      !dec.GetVarint(&dim) || dim > dec.remaining() / sizeof(float)) {
    return false;
  }
  out->centroid.resize(static_cast<size_t>(dim));
  for (size_t i = 0; i < out->centroid.size(); ++i) {
    if (!dec.GetFloat(&out->centroid[i])) {
      return false;
    }
  }
  return dec.Done();
}

common::Result<std::unique_ptr<ArenaFile>> ArenaFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Errno("arena open", path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("arena stat", path);
  }

  std::unique_ptr<ArenaFile> file(new ArenaFile());
  file->path_ = path;
  file->fd_ = fd;
  if (st.st_size < static_cast<off_t>(2 * kHeaderSlotBytes)) {
    // Fresh (or never-initialized) file: shape fixed later by Initialize().
    return file;
  }

  // Validate both header slots and adopt the newest committed one.
  char slots[2 * kHeaderSlotBytes];
  if (::pread(fd, slots, sizeof(slots), 0) != static_cast<ssize_t>(sizeof(slots))) {
    return Errno("arena header read", path);
  }
  HeaderImage header;
  int active = -1;
  for (int s = 0; s < 2; ++s) {
    HeaderImage candidate;
    if (HeaderImage::Decode(std::string_view(slots + s * kHeaderSlotBytes, kHeaderSlotBytes),
                            &candidate) &&
        (active < 0 || candidate.generation > header.generation)) {
      header = candidate;
      active = s;
    }
  }
  if (active < 0) {
    return common::Error{common::ErrorCode::kIo, "arena header corrupt (both slots): " + path};
  }
  const uint64_t rows = header.capacity_rows;
  if (header.dim == 0 || header.head_dim == 0 || header.head_dim > header.dim ||
      header.committed_rows > rows ||
      header.arena_off + rows * header.dim * sizeof(float) > header.file_bytes ||
      header.head_off + rows * header.head_dim * sizeof(float) > header.file_bytes ||
      header.norms_off + rows * sizeof(float) > header.file_bytes ||
      header.sizes_off + rows * sizeof(int64_t) > header.file_bytes ||
      header.ids_off + rows * sizeof(int64_t) > header.file_bytes) {
    return common::Error{common::ErrorCode::kIo, "arena header invalid: " + path};
  }
  file->dim_ = header.dim;
  file->head_dim_ = header.head_dim;
  file->capacity_rows_ = rows;
  file->committed_rows_ = header.committed_rows;
  file->generation_ = header.generation;
  file->active_slot_ = active;
  file->arena_off_ = header.arena_off;
  file->head_off_ = header.head_off;
  file->norms_off_ = header.norms_off;
  file->sizes_off_ = header.sizes_off;
  file->ids_off_ = header.ids_off;
  if (auto mapped = file->MapBytes(header.file_bytes); !mapped.ok()) {
    return mapped.error();
  }
  return file;
}

ArenaFile::~ArenaFile() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ArenaFile::ComputeSectionPointers() {
  arena_base_ = reinterpret_cast<float*>(map_ + arena_off_);
  head_base_ = reinterpret_cast<float*>(map_ + head_off_);
  norms_base_ = reinterpret_cast<float*>(map_ + norms_off_);
  sizes_base_ = reinterpret_cast<int64_t*>(map_ + sizes_off_);
  ids_base_ = reinterpret_cast<int64_t*>(map_ + ids_off_);
}

common::Result<bool> ArenaFile::MapBytes(size_t bytes) {
  if (common::FaultPoint("arena.truncate")) {
    return common::Unavailable("injected arena.truncate failure: " + path_);
  }
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    return Errno("arena truncate", path_);
  }
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    return Errno("arena mmap", path_);
  }
  map_ = static_cast<uint8_t*>(map);
  map_bytes_ = bytes;
  ComputeSectionPointers();
  return true;
}

common::Result<bool> ArenaFile::WriteHeaderSlot(int slot, bool sync) {
  HeaderImage header;
  header.dim = static_cast<uint32_t>(dim_);
  header.head_dim = static_cast<uint32_t>(head_dim_);
  header.capacity_rows = capacity_rows_;
  header.committed_rows = committed_rows_;
  header.generation = generation_;
  header.file_bytes = map_bytes_;
  header.arena_off = arena_off_;
  header.head_off = head_off_;
  header.norms_off = norms_off_;
  header.sizes_off = sizes_off_;
  header.ids_off = ids_off_;
  const std::string image = header.Encode();
  uint8_t* dst = map_ + static_cast<size_t>(slot) * kHeaderSlotBytes;
  if (common::FaultPoint("arena.header_write")) {
    // Tear the slot for real: half the image lands, the CRC can't match, and
    // active_slot_ stays put — Open must adopt the surviving slot, and a retry
    // rewrites this one from scratch.
    std::memcpy(dst, image.data(), image.size() / 2);
    return common::Unavailable("injected arena.header_write torn slot: " + path_);
  }
  std::memcpy(dst, image.data(), image.size());
  std::memset(dst + image.size(), 0, kHeaderSlotBytes - image.size());
  if (sync && ::msync(map_, 2 * kHeaderSlotBytes, MS_SYNC) != 0) {
    return Errno("arena header msync", path_);
  }
  active_slot_ = slot;
  return true;
}

common::Result<bool> ArenaFile::Initialize(size_t dim, size_t head_dim) {
  if (initialized()) {
    return common::FailedPrecondition("arena already initialized: " + path_);
  }
  if (dim == 0 || head_dim == 0 || head_dim > dim) {
    return common::InvalidArgument("arena shape: dim=" + std::to_string(dim) +
                                   " head_dim=" + std::to_string(head_dim));
  }
  dim_ = dim;
  head_dim_ = head_dim;
  committed_rows_ = 0;
  generation_ = 0;
  capacity_rows_ = kMinCapacityRows;
  size_t offset = 2 * kHeaderSlotBytes;
  arena_off_ = offset;
  offset = AlignUp(offset + capacity_rows_ * dim_ * sizeof(float), kSectionAlign);
  head_off_ = offset;
  offset = AlignUp(offset + capacity_rows_ * head_dim_ * sizeof(float), kSectionAlign);
  norms_off_ = offset;
  offset = AlignUp(offset + capacity_rows_ * sizeof(float), kSectionAlign);
  sizes_off_ = offset;
  offset = AlignUp(offset + capacity_rows_ * sizeof(int64_t), kSectionAlign);
  ids_off_ = offset;
  offset += capacity_rows_ * sizeof(int64_t);
  if (auto mapped = MapBytes(offset); !mapped.ok()) {
    return mapped;
  }
  // Seed both slots so a later torn commit always leaves one valid header.
  if (auto a = WriteHeaderSlot(0); !a.ok()) {
    return a;
  }
  return WriteHeaderSlot(1);
}

common::Result<bool> ArenaFile::Reserve(uint64_t rows) {
  if (!initialized()) {
    return common::FailedPrecondition("arena not initialized: " + path_);
  }
  if (rows <= capacity_rows_) {
    return true;
  }
  uint64_t new_capacity = std::max(capacity_rows_, kMinCapacityRows);
  while (new_capacity < rows) {
    new_capacity *= 2;
  }

  // Lay the grown sections out entirely *beyond* the current end of file:
  // nothing the still-active old header describes is overwritten, so a crash
  // at any point before the new header publishes recovers through the old
  // layout, and one after it recovers through the new (the copies below are
  // msync'd first). The abandoned regions are geometric-series slack.
  const uint64_t old_capacity = capacity_rows_;
  const size_t old_arena = arena_off_;
  const size_t old_head = head_off_;
  const size_t old_norms = norms_off_;
  const size_t old_sizes = sizes_off_;
  const size_t old_ids = ids_off_;
  size_t offset = AlignUp(map_bytes_, kSectionAlign);
  arena_off_ = offset;
  offset = AlignUp(offset + new_capacity * dim_ * sizeof(float), kSectionAlign);
  head_off_ = offset;
  offset = AlignUp(offset + new_capacity * head_dim_ * sizeof(float), kSectionAlign);
  norms_off_ = offset;
  offset = AlignUp(offset + new_capacity * sizeof(float), kSectionAlign);
  sizes_off_ = offset;
  offset = AlignUp(offset + new_capacity * sizeof(int64_t), kSectionAlign);
  ids_off_ = offset;
  offset += new_capacity * sizeof(int64_t);
  capacity_rows_ = new_capacity;
  if (auto mapped = MapBytes(offset); !mapped.ok()) {
    return mapped;
  }
  std::memcpy(arena_base_, map_ + old_arena, old_capacity * dim_ * sizeof(float));
  std::memcpy(head_base_, map_ + old_head, old_capacity * head_dim_ * sizeof(float));
  std::memcpy(norms_base_, map_ + old_norms, old_capacity * sizeof(float));
  std::memcpy(sizes_base_, map_ + old_sizes, old_capacity * sizeof(int64_t));
  std::memcpy(ids_base_, map_ + old_ids, old_capacity * sizeof(int64_t));
  // Publish the new layout like a commit: msync the copies, then bump the
  // generation through the inactive slot — two slots must never claim the
  // same generation with different layouts. committed_rows is unchanged
  // (growth is not a checkpoint), and undo-log pre-images are row-indexed,
  // so RollBackTo works identically across the relocation.
  if (::msync(map_, map_bytes_, MS_SYNC) != 0) {
    return Errno("arena msync", path_);
  }
  ++generation_;
  return WriteHeaderSlot(1 - active_slot_);
}

common::Result<uint64_t> ArenaFile::Commit(uint64_t rows) {
  if (!initialized()) {
    return common::Error(common::FailedPrecondition("arena not initialized: " + path_));
  }
  if (rows > capacity_rows_) {
    return common::Error(common::InvalidArgument("commit rows beyond capacity"));
  }
  const bool sync = fsync_.ShouldSync(++commit_count_);
  if (common::FaultPoint("arena.commit.msync")) {
    return common::Error(common::Unavailable("injected arena.commit.msync failure: " + path_));
  }
  if (sync && ::msync(map_, map_bytes_, MS_SYNC) != 0) {
    return common::Error(Errno("arena msync", path_));
  }
  committed_rows_ = rows;
  ++generation_;
  if (auto wrote = WriteHeaderSlot(1 - active_slot_, sync); !wrote.ok()) {
    return wrote.error();
  }
  return generation_;
}

void ArenaFile::WriteRow(uint64_t row, int64_t id, int64_t size, float norm,
                         const float* centroid) {
  std::memcpy(arena_base_ + row * dim_, centroid, dim_ * sizeof(float));
  std::memcpy(head_base_ + row * head_dim_, centroid, head_dim_ * sizeof(float));
  norms_base_[row] = norm;
  sizes_base_[row] = size;
  ids_base_[row] = id;
}

common::Result<bool> ArenaFile::RollBackTo(uint64_t generation,
                                           const std::vector<std::string>& log_records) {
  if (!initialized()) {
    return common::FailedPrecondition("arena not initialized: " + path_);
  }
  if (generation > generation_) {
    return common::FailedPrecondition("arena behind recovery target: " + path_);
  }
  std::vector<ArenaUndo> undo;
  undo.reserve(log_records.size());
  for (const std::string& record : log_records) {
    ArenaUndo parsed;
    if (!ArenaUndo::Decode(record, &parsed)) {
      return common::Error{common::ErrorCode::kIo, "arena undo record corrupt: " + path_};
    }
    undo.push_back(std::move(parsed));
  }
  // Locate the last marker of the target checkpoint; everything after it is a
  // pre-image of a post-checkpoint mutation and gets applied in reverse. No
  // marker means no rows were mutated after that commit (the marker is the
  // first record of every window), so the header state is already exact.
  size_t marker = undo.size();
  for (size_t i = undo.size(); i-- > 0;) {
    if (undo[i].kind == ArenaUndo::Kind::kMarker && undo[i].generation == generation) {
      marker = i;
      break;
    }
  }
  if (marker == undo.size()) {
    if (generation == 0) {
      // The empty state needs no undo data: whatever the rows hold is
      // uncommitted. (Reachable when the first Add initialized — and possibly
      // grew — the arena after an empty checkpoint whose marker is gone.)
      committed_rows_ = 0;
      return true;
    }
    if (generation_ != generation) {
      return common::FailedPrecondition("arena undo log missing checkpoint marker: " + path_);
    }
    // Header already at the target but its window marker is absent: the crash
    // hit between the meta commit and the log rotation. The log then still
    // holds the *previous* window (an older marker plus pre-images that led
    // up to this commit and are baked into it) — stale, nothing to undo. Row
    // records before any marker at all, though, cannot be attributed to a
    // checkpoint and mean the log does not describe this arena.
    bool seen_marker = false;
    for (const ArenaUndo& record : undo) {
      if (record.kind == ArenaUndo::Kind::kMarker) {
        seen_marker = true;
      } else if (!seen_marker) {
        return common::Error{common::ErrorCode::kIo,
                             "arena undo pre-images before any checkpoint marker: " + path_};
      }
    }
    // Report "undone" so the caller re-seals: the rotation re-establishes the
    // marker this generation's future pre-images will hang off.
    return true;
  }
  bool undid = generation_ != generation;
  for (size_t i = undo.size(); i-- > marker + 1;) {
    const ArenaUndo& record = undo[i];
    if (record.kind != ArenaUndo::Kind::kRow) {
      continue;
    }
    if (record.centroid.size() != dim_ || record.row >= capacity_rows_) {
      return common::Error{common::ErrorCode::kIo, "arena undo record shape mismatch: " + path_};
    }
    WriteRow(record.row, record.id, record.size, record.norm, record.centroid.data());
    undid = true;
  }
  committed_rows_ = undo[marker].rows;
  // generation_ deliberately stays at the header's value (>= the target): the
  // caller re-commits immediately after recovery, and the next generation must
  // exceed every slot already on disk to stay unambiguous.
  return undid;
}

common::Result<std::unique_ptr<ArenaFile>> OpenArenaAtCheckpoint(
    const std::string& arena_path, const std::string& undo_path, uint64_t generation,
    bool* needs_reseal) {
  *needs_reseal = false;
  auto arena = ArenaFile::Open(arena_path);
  if (!arena.ok()) {
    if (generation > 0) {
      return arena;
    }
    // Generation 0 committed the *empty* state, so a torn arena (e.g. a crash
    // inside Initialize left zero-filled or half-written header slots) is
    // disposable: recreate it — and re-seal, so the undo rotation restores
    // the window marker — rather than failing recovery forever.
    std::error_code ec;
    std::filesystem::remove(arena_path, ec);
    std::filesystem::remove(undo_path, ec);
    arena = ArenaFile::Open(arena_path);
    if (arena.ok()) {
      *needs_reseal = true;
    }
    return arena;
  }
  // An initialized arena rolls back to the meta's generation — including
  // generation 0 (the first detection arrived after an empty-checkpoint
  // commit and the crash preceded the next one). Only an *uninitialized*
  // arena may skip the rollback, and only for generation 0.
  if ((*arena)->initialized()) {
    auto log = ReadRecordLog(undo_path);
    if (!log.ok()) {
      return log.error();
    }
    // Torn undo tails are expected after a crash: an append interrupted
    // mid-write belongs to a row mutation that never executed. A torn tail
    // does force a re-seal, though — new appends must not land after
    // unreadable garbage.
    auto rolled = (*arena)->RollBackTo(generation, log->records);
    if (!rolled.ok()) {
      return rolled.error();
    }
    *needs_reseal = *rolled || log->truncated_tail;
  } else if (generation > 0) {
    return common::Error{common::ErrorCode::kIo,
                         "meta records generation " + std::to_string(generation) +
                             " but the arena is uninitialized: " + arena_path};
  }
  return arena;
}

}  // namespace focus::storage
