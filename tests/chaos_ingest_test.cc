// Chaos suite (docs/robustness.md): deterministic fault injection through the
// persistent ingest path, worker supervision in IngestService, degraded-mode
// serving through the query server, and GT-CNN launch retry in QueryService.
//
// The core property under test: for any injected fault plan, ingest either
// converges to the byte-identical no-fault result (after in-place retries or
// supervised restarts) or surfaces a typed error and a well-formed degraded
// answer — never a crash, a hang, or a silently wrong result.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/cnn/ground_truth.h"
#include "src/cnn/model_zoo.h"
#include "src/common/fault_injection.h"
#include "src/common/result.h"
#include "src/core/focus_stream.h"
#include "src/core/ingest_pipeline.h"
#include "src/runtime/ingest_service.h"
#include "src/runtime/query_service.h"
#include "src/server/query_server.h"
#include "src/video/flaky_stream.h"
#include "src/video/stream_generator.h"

namespace focus {
namespace {

namespace fs = std::filesystem;

core::IngestParams CheapParams() {
  core::IngestParams params;
  params.model = cnn::GenericCheapCandidates(5)[1];
  params.k = 3;
  params.cluster_threshold = 0.6;
  return params;
}

void ExpectSameResult(const core::IngestResult& a, const core::IngestResult& b) {
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.cnn_invocations, b.cnn_invocations);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_DOUBLE_EQ(a.gpu_millis, b.gpu_millis);
  ASSERT_EQ(a.index.num_clusters(), b.index.num_clusters());
  for (size_t i = 0; i < a.index.num_clusters(); ++i) {
    const index::ClusterEntry& ea = a.index.clusters()[i];
    const index::ClusterEntry& eb = b.index.clusters()[i];
    EXPECT_EQ(ea.cluster_id, eb.cluster_id);
    EXPECT_EQ(ea.size, eb.size);
    EXPECT_EQ(ea.topk_classes, eb.topk_classes);
    EXPECT_EQ(ea.topk_ranks, eb.topk_ranks);
    ASSERT_EQ(ea.members.size(), eb.members.size());
    for (size_t m = 0; m < ea.members.size(); ++m) {
      EXPECT_EQ(ea.members[m].object, eb.members[m].object);
      EXPECT_EQ(ea.members[m].first_frame, eb.members[m].first_frame);
      EXPECT_EQ(ea.members[m].last_frame, eb.members[m].last_frame);
    }
  }
}

class ChaosIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("chaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// --- S1: the pixel-diff reuse-map eviction gap is a knob ---

// A scripted recording with one continuously tracked anchor object and one
// object that is occluded for 12 sampled frames and then returns *suppressed*
// (its crop matches the pre-occlusion frame — a parked car the camera loses
// behind a truck). Only checkpoint-time eviction distinguishes the persistent
// run from the volatile one, so the eviction gap decides whether the returning
// suppressed detection still finds its reuse-map entry.
class ScriptedStreamRun : public video::StreamRun {
 public:
  ScriptedStreamRun(const video::StreamRun& shape,
                    std::vector<std::vector<video::Detection>> frames)
      : StreamRun(shape), frames_(std::move(frames)) {}

  video::SweepStats ForEachFrame(const FrameCallback& callback) const override {
    video::SweepStats stats;
    for (size_t f = 0; f < frames_.size(); ++f) {
      ++stats.total_frames;
      if (!frames_[f].empty()) {
        ++stats.frames_with_moving_objects;
      }
      stats.total_detections += static_cast<int64_t>(frames_[f].size());
      for (const video::Detection& d : frames_[f]) {
        if (d.pixel_diff_suppressed) {
          ++stats.suppressed_detections;
        }
      }
      callback(static_cast<common::FrameIndex>(f), frames_[f]);
    }
    return stats;
  }

 private:
  std::vector<std::vector<video::Detection>> frames_;
};

TEST_F(ChaosIngestTest, ReuseEvictGapKnobControlsOcclusionSurvival) {
  video::ClassCatalog catalog(23);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));

  // A real detection supplies a valid class + appearance vector; the script
  // only rewrites identity, timing, and suppression flags.
  video::StreamRun donor(&catalog, profile, 20.0, 10.0, 11);
  video::Detection proto;
  bool have_proto = false;
  donor.ForEachFrame([&](common::FrameIndex, const std::vector<video::Detection>& dets) {
    if (!have_proto && !dets.empty()) {
      proto = dets.front();
      have_proto = true;
    }
  });
  ASSERT_TRUE(have_proto);

  const auto det = [&](common::FrameIndex frame, common::ObjectId id, bool first,
                       bool suppressed) {
    video::Detection d = proto;
    d.frame = frame;
    d.object_id = id;
    d.first_observation = first;
    d.pixel_diff_suppressed = suppressed;
    return d;
  };
  // 20 sampled frames. Anchor object 9001 is present in all of them; object
  // 9002 is present in frames 0-2, occluded through frame 14, and returns
  // suppressed for frames 15-19.
  std::vector<std::vector<video::Detection>> frames(20);
  for (int f = 0; f < 20; ++f) {
    frames[f].push_back(det(f, 9001, f == 0, f > 0));
  }
  for (int f = 0; f < 3; ++f) {
    frames[f].push_back(det(f, 9002, f == 0, f > 0));
  }
  for (int f = 15; f < 20; ++f) {
    frames[f].push_back(det(f, 9002, false, true));
  }
  video::StreamRun shape(&catalog, profile, 2.0, 10.0, 11);  // 20 frames @ 10 fps.
  ScriptedStreamRun run(shape, std::move(frames));

  const core::IngestParams params = CheapParams();
  cnn::Cnn cheap(params.model, &catalog);
  // Volatile reference: reuse maps are never evicted, so the returning
  // suppressed detections of 9002 all reuse the frame-2 classification.
  const core::IngestResult reference = core::RunIngest(run, cheap, params);

  // Checkpoints land on frames 3, 7, 11, 15, 19. At the frame-11 checkpoint
  // object 9002 has been idle 9 frames: the default gap of 8 evicts it, so its
  // frame-15 return is re-classified — the persistent run diverges from the
  // volatile one in its CNN accounting.
  core::IngestOptions tight;
  tight.persist_dir = (dir_ / "gap8").string();
  tight.checkpoint_every_frames = 4;
  tight.reuse_evict_gap_frames = 8;
  const core::IngestResult evicted = core::RunIngestResumable(run, cheap, params, tight);
  EXPECT_EQ(evicted.detections, reference.detections);
  EXPECT_EQ(evicted.cnn_invocations, reference.cnn_invocations + 1);
  EXPECT_EQ(evicted.suppressed, reference.suppressed - 1);

  // A gap covering the occlusion (16 > 12 idle frames at every checkpoint)
  // keeps the entry, and the persistent run is byte-identical to the volatile
  // one — the regression this knob exists to make fixable per deployment.
  core::IngestOptions wide;
  wide.persist_dir = (dir_ / "gap16").string();
  wide.checkpoint_every_frames = 4;
  wide.reuse_evict_gap_frames = 16;
  const core::IngestResult kept = core::RunIngestResumable(run, cheap, params, wide);
  ExpectSameResult(kept, reference);
}

// --- The per-site fire-point sweep ---
//
// Arm an empty plan, run a clean persistent ingest once to learn how often
// each storage site is reached, then re-run with FireOnHit(site, n) across the
// hit range. Every faulted run must either converge in place (absorbed by a
// retry) or fail typed-and-retryable and converge after supervised restarts —
// and the converged result must match the no-fault run exactly.
TEST_F(ChaosIngestTest, StorageFaultSweepConvergesByteIdentical) {
  video::ClassCatalog catalog(21);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 8.0, 10.0, 13);
  const core::IngestParams params = CheapParams();
  cnn::Cnn cheap(params.model, &catalog);

  core::IngestOptions base;
  base.checkpoint_every_frames = 16;
  // One commit attempt, no in-place absorption: every injected storage fault
  // must surface to the supervisor, which is the path under test.
  base.checkpoint_retry.max_attempts = 1;

  // No-fault reference through the same persistent configuration.
  core::IngestOptions clean = base;
  clean.persist_dir = (dir_ / "clean").string();
  auto reference = core::RunIngestResumableChecked(run, cheap, params, clean);
  ASSERT_TRUE(reference.ok()) << reference.error().message;

  // Counting pass: an empty armed plan records per-site hit counts.
  const std::vector<std::string> kSites = {
      "record_log.append", "arena.commit.msync", "arena.header_write",
      "arena.truncate",    "snapshot.write",     "snapshot.rename"};
  std::map<std::string, int64_t> hits;
  {
    common::FaultPlan count_plan;
    common::ScopedFaultPlan armed(&count_plan);
    core::IngestOptions counting = base;
    counting.persist_dir = (dir_ / "count").string();
    auto counted = core::RunIngestResumableChecked(run, cheap, params, counting);
    ASSERT_TRUE(counted.ok()) << counted.error().message;
    for (const std::string& site : kSites) {
      hits[site] = count_plan.HitCount(site);
      EXPECT_EQ(count_plan.FireCount(site), 0);
    }
  }

  int fire_points = 0;
  for (const std::string& site : kSites) {
    const int64_t site_hits = hits[site];
    ASSERT_GT(site_hits, 0) << site << " never reached — dead injection site";
    const int64_t stride = std::max<int64_t>(1, site_hits / 5);
    for (int64_t n = 1; n <= site_hits; n += stride) {
      SCOPED_TRACE(site + " hit " + std::to_string(n) + "/" + std::to_string(site_hits));
      common::FaultPlan plan;
      plan.FireOnHit(site, n);
      common::ScopedFaultPlan armed(&plan);

      core::IngestOptions opts = base;
      opts.persist_dir =
          (dir_ / (site + "." + std::to_string(n))).string();
      bool converged = false;
      for (int attempt = 0; attempt < 6 && !converged; ++attempt) {
        auto outcome = core::RunIngestResumableChecked(run, cheap, params, opts);
        if (outcome.ok()) {
          ExpectSameResult(*outcome, *reference);
          converged = true;
          break;
        }
        // The never-crash contract: a fault surfaces as a typed retryable
        // error, and a restarted worker recovers from the checkpoint.
        EXPECT_TRUE(common::IsRetryable(outcome.error().code))
            << common::ErrorCodeName(outcome.error().code) << ": "
            << outcome.error().message;
      }
      EXPECT_TRUE(converged) << "did not converge within the restart budget";
      ++fire_points;
    }
  }
  EXPECT_GE(fire_points, static_cast<int>(kSites.size()));
}

// A persistent failure (dead disk under the checkpoint msync) exhausts the
// restart budget and stays a typed error — the process never crashes and never
// reports a bogus success.
TEST_F(ChaosIngestTest, StickyStorageFaultStaysTypedError) {
  video::ClassCatalog catalog(21);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 6.0, 10.0, 17);
  const core::IngestParams params = CheapParams();
  cnn::Cnn cheap(params.model, &catalog);

  common::FaultPlan plan;
  plan.FireAlwaysFrom("arena.commit.msync", 1);
  common::ScopedFaultPlan armed(&plan);

  core::IngestOptions opts;
  opts.persist_dir = (dir_ / "sticky").string();
  opts.checkpoint_every_frames = 16;
  opts.checkpoint_retry.max_attempts = 1;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto outcome = core::RunIngestResumableChecked(run, cheap, params, opts);
    ASSERT_FALSE(outcome.ok()) << "succeeded under a dead disk";
    EXPECT_TRUE(common::IsRetryable(outcome.error().code));
    EXPECT_FALSE(outcome.error().message.empty());
  }
  EXPECT_GT(plan.FireCount("arena.commit.msync"), 0);
}

// The default checkpoint_retry policy absorbs a transient commit failure in
// place: the run succeeds on its first supervision attempt and matches the
// no-fault result.
TEST_F(ChaosIngestTest, DefaultRetryPolicyAbsorbsTransientCommitFault) {
  video::ClassCatalog catalog(21);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 8.0, 10.0, 13);
  const core::IngestParams params = CheapParams();
  cnn::Cnn cheap(params.model, &catalog);

  core::IngestOptions clean;
  clean.persist_dir = (dir_ / "clean").string();
  clean.checkpoint_every_frames = 16;
  auto reference = core::RunIngestResumableChecked(run, cheap, params, clean);
  ASSERT_TRUE(reference.ok());

  common::FaultPlan plan;
  plan.FireOnHit("arena.commit.msync", 2);
  common::ScopedFaultPlan armed(&plan);
  core::IngestOptions opts = clean;
  opts.persist_dir = (dir_ / "faulted").string();
  auto outcome = core::RunIngestResumableChecked(run, cheap, params, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(plan.FireCount("arena.commit.msync"), 1);
  ExpectSameResult(*outcome, *reference);
}

// --- IngestService worker supervision ---

TEST_F(ChaosIngestTest, SupervisorRestartsFlakyWorkerWithinBudget) {
  video::ClassCatalog catalog(21);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 20.0, 10.0, 5);
  const core::IngestParams params = CheapParams();
  cnn::Cnn cheap(params.model, &catalog);
  const core::IngestResult reference = core::RunIngest(run, cheap, params);

  video::FlakyStreamOptions flaky_options;
  flaky_options.restart_at_frames = {50};  // Attempt 0 aborts; attempt 1 is clean.
  video::FlakyStreamRun flaky(run, flaky_options);

  runtime::IngestServiceOptions service_options;
  service_options.num_worker_threads = 1;
  service_options.max_worker_restarts = 3;
  service_options.persist_dir = (dir_ / "fleet").string();
  runtime::MetricsRegistry metrics;
  runtime::IngestService service(service_options, &metrics);
  runtime::IngestJob job;
  job.name = "cam";
  job.run = &flaky;
  job.params = params;
  service.AddStream(job);
  const runtime::FleetIngestSummary summary = service.RunAll();

  ASSERT_EQ(summary.reports.size(), 1u);
  const runtime::IngestReport& report = summary.reports[0];
  EXPECT_EQ(report.health.state, runtime::StreamState::kHealthy);
  EXPECT_EQ(report.health.restarts, 1);
  EXPECT_EQ(report.health.consecutive_failures, 0);  // Reset on success.
  EXPECT_FALSE(report.error.has_value());
  ExpectSameResult(report.result, reference);
  EXPECT_EQ(metrics.counter("ingest.worker_restarts"), 1);
  EXPECT_EQ(metrics.counter("ingest.streams_down"), 0);
}

TEST_F(ChaosIngestTest, ExhaustedRestartBudgetMarksStreamDown) {
  video::ClassCatalog catalog(21);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 20.0, 10.0, 5);

  video::FlakyStreamOptions flaky_options;
  flaky_options.restart_at_frames = {30, 30, 30, 30};  // Outlasts the budget.
  video::FlakyStreamRun flaky(run, flaky_options);

  runtime::IngestServiceOptions service_options;
  service_options.num_worker_threads = 1;
  service_options.max_worker_restarts = 2;
  runtime::MetricsRegistry metrics;
  runtime::IngestService service(service_options, &metrics);
  runtime::IngestJob job;
  job.name = "cam";
  job.run = &flaky;
  job.params = CheapParams();
  service.AddStream(job);
  const runtime::FleetIngestSummary summary = service.RunAll();

  ASSERT_EQ(summary.reports.size(), 1u);
  const runtime::IngestReport& report = summary.reports[0];
  EXPECT_EQ(report.health.state, runtime::StreamState::kDown);
  EXPECT_EQ(report.health.restarts, 2);
  EXPECT_EQ(report.health.consecutive_failures, 3);  // Initial try + 2 restarts.
  ASSERT_TRUE(report.error.has_value());
  EXPECT_TRUE(common::IsRetryable(report.error->code));
  EXPECT_EQ(report.result.detections, 0);  // No bogus partial result.
  EXPECT_EQ(metrics.counter("ingest.streams_down"), 1);
  EXPECT_EQ(service.Health("cam").state, runtime::StreamState::kDown);
  EXPECT_EQ(service.FleetHealth().count("cam"), 1u);
}

// --- Degraded-mode serving through the query server ---

TEST_F(ChaosIngestTest, ServerServesStaleSnapshotsAndHealthForDownStreams) {
  video::ClassCatalog catalog(29);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 20.0, 10.0, 7);

  // "gate" publishes its epoch-1 snapshot (watermark 32) on every attempt,
  // then dies at frame 40; the budget of 1 restart leaves it Down with a
  // last-good snapshot. "dead" dies at frame 5 — before any epoch — with no
  // restart budget at all.
  video::FlakyStreamOptions gate_faults;
  gate_faults.restart_at_frames = {40, 40, 40, 40};
  video::FlakyStreamRun gate(run, gate_faults);
  video::FlakyStreamOptions dead_faults;
  dead_faults.restart_at_frames = {5, 5};
  video::FlakyStreamRun dead(run, dead_faults);

  runtime::IngestServiceOptions service_options;
  service_options.num_worker_threads = 1;
  service_options.max_worker_restarts = 1;
  service_options.finalize_every_frames = 32;
  runtime::MetricsRegistry metrics;
  runtime::IngestService service(service_options, &metrics);
  runtime::IngestJob job;
  job.name = "gate";
  job.run = &gate;
  job.params = CheapParams();
  service.AddStream(job);
  job.name = "dead";
  job.run = &dead;
  service.AddStream(job);
  service.RunAll();

  ASSERT_NE(service.LatestSnapshot("gate"), nullptr);
  EXPECT_EQ(service.LatestSnapshot("dead"), nullptr);
  EXPECT_EQ(service.Health("gate").state, runtime::StreamState::kDown);

  core::FocusFleet fleet;  // Empty: both cameras resolve through the service.
  server::QueryServer server(&fleet, &catalog, &metrics, {}, &service);
  const std::string cls = catalog.Name(run.present_classes().front());

  // A down stream with a published epoch answers STALE from its last-good
  // snapshot instead of erroring.
  const std::string stale = server.HandleLine("QUERY gate " + cls);
  ASSERT_EQ(stale.rfind("OK STALE EPOCH ", 0), 0u) << stale;
  EXPECT_NE(stale.find("WATERMARK 32"), std::string::npos) << stale;
  EXPECT_EQ(metrics.counter("server.stale_queries"), 1);

  // A down stream with nothing published errs Unavailable — typed, not a crash
  // and not an empty "OK".
  const std::string down = server.HandleLine("QUERY dead " + cls);
  EXPECT_EQ(down.rfind("ERR Unavailable", 0), 0u) << down;

  // HEALTH: per-stream and fleet listings.
  const std::string gate_health = server.HandleLine("HEALTH gate");
  EXPECT_EQ(gate_health.rfind("OK gate STATE Down", 0), 0u) << gate_health;
  EXPECT_NE(gate_health.find("RESTARTS 1"), std::string::npos) << gate_health;
  EXPECT_NE(gate_health.find("EPOCH "), std::string::npos) << gate_health;
  EXPECT_NE(gate_health.find(" LAST "), std::string::npos) << gate_health;

  const std::string fleet_health = server.HandleLine("HEALTH");
  EXPECT_EQ(fleet_health.rfind("OK 2\n", 0), 0u) << fleet_health;
  EXPECT_NE(fleet_health.find("gate STATE Down"), std::string::npos) << fleet_health;
  EXPECT_NE(fleet_health.find("dead STATE Down"), std::string::npos) << fleet_health;

  EXPECT_EQ(server.HandleLine("HEALTH nowhere").rfind("ERR NotFound", 0), 0u);
}

// --- QueryService GT-CNN launch retry ---

TEST_F(ChaosIngestTest, GpuLaunchFaultsRetryOrSurfaceTypedError) {
  video::ClassCatalog catalog(21);
  video::StreamProfile profile;
  ASSERT_TRUE(video::FindProfile("auburn_c", &profile));
  video::StreamRun run(&catalog, profile, 120.0, 30.0, 5);
  core::FocusOptions focus_options;
  auto focus_or = core::FocusStream::Build(&run, &catalog, focus_options);
  ASSERT_TRUE(focus_or.ok()) << focus_or.error().message;
  const core::FocusStream& focus = **focus_or;

  cnn::SegmentGroundTruth truth(run, focus.gt_cnn());
  const std::vector<common::ClassId> dominant = truth.DominantClasses(0.95, 1);
  ASSERT_FALSE(dominant.empty());
  runtime::QueryRequest request;
  request.stream = &focus;
  request.cls = dominant[0];

  const runtime::QueryServiceOptions qopts{.num_gpus = 2, .batch_size = 8};
  runtime::QueryService reference_service(qopts);
  const runtime::QueryExecution reference = reference_service.Execute(request);
  ASSERT_FALSE(reference.error.has_value());
  ASSERT_GT(reference_service.last_stats().launches, 0);

  {
    // One failed launch: the retry policy re-submits and the answer is
    // byte-identical to the no-fault execution.
    common::FaultPlan plan;
    plan.FireOnHit("gpu.launch", 1);
    common::ScopedFaultPlan armed(&plan);
    runtime::QueryService service(qopts);
    const runtime::QueryExecution execution = service.Execute(request);
    EXPECT_FALSE(execution.error.has_value());
    EXPECT_EQ(execution.result.frame_runs, reference.result.frame_runs);
    EXPECT_EQ(execution.result.frames_returned, reference.result.frames_returned);
    EXPECT_GE(service.last_stats().launch_retries, 1);
    EXPECT_EQ(service.last_stats().launches_failed, 0);
  }
  {
    // A timeout burns the launch's full device cost, then the retry recovers.
    common::FaultPlan plan;
    plan.FireOnHit("gpu.timeout", 1);
    common::ScopedFaultPlan armed(&plan);
    runtime::QueryService service(qopts);
    const runtime::QueryExecution execution = service.Execute(request);
    EXPECT_FALSE(execution.error.has_value());
    EXPECT_EQ(execution.result.frame_runs, reference.result.frame_runs);
    EXPECT_GT(service.last_stats().wasted_gpu_millis, 0.0);
  }
  {
    // A wedged GPU exhausts the retry budget: the execution carries a typed
    // error and an empty (non-authoritative) result, never a partial answer.
    common::FaultPlan plan;
    plan.FireAlwaysFrom("gpu.launch", 1);
    common::ScopedFaultPlan armed(&plan);
    runtime::QueryService service(qopts);
    const runtime::QueryExecution execution = service.Execute(request);
    ASSERT_TRUE(execution.error.has_value());
    EXPECT_EQ(execution.error->code, common::ErrorCode::kUnavailable);
    EXPECT_EQ(execution.result.frames_returned, 0);
    EXPECT_GE(service.last_stats().launches_failed, 1);
  }
}

}  // namespace
}  // namespace focus
