// Minimal leveled logging for library and harness code.
//
// Deliberately tiny: streams to stderr, level filtered by a process-global threshold.
// Benches set the level to kWarning so experiment tables stay clean on stdout.
#ifndef FOCUS_SRC_COMMON_LOGGING_H_
#define FOCUS_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace focus::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr (thread-safe at the line level).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace focus::common

#define FOCUS_LOG(level) ::focus::common::internal::LogLine(::focus::common::LogLevel::level)

namespace focus::common::internal {

// Out-of-line failure path keeps the macro's happy path branch-only.
[[noreturn]] void CheckFailed(const char* condition, const char* file, int line);

}  // namespace focus::common::internal

// Aborts on violated invariants. For programmer errors only — recoverable conditions
// (bad user input, missing files) return common::Result instead (see result.h).
#define FOCUS_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::focus::common::internal::CheckFailed(#condition, __FILE__, __LINE__); \
    }                                                                       \
  } while (false)

#endif  // FOCUS_SRC_COMMON_LOGGING_H_
