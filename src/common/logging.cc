#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace focus::common {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_log_level.load()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

namespace internal {

void CheckFailed(const char* condition, const char* file, int line) {
  std::fprintf(stderr, "[FATAL] %s:%d: FOCUS_CHECK(%s) failed\n", file, line, condition);
  std::abort();
}

}  // namespace internal

}  // namespace focus::common
