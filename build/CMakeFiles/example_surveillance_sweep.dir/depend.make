# Empty dependencies file for example_surveillance_sweep.
# This may be replaced when dependencies are built.
